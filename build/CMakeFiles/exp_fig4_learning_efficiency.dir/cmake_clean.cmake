file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_learning_efficiency.dir/bench/exp_fig4_learning_efficiency.cc.o"
  "CMakeFiles/exp_fig4_learning_efficiency.dir/bench/exp_fig4_learning_efficiency.cc.o.d"
  "bench/exp_fig4_learning_efficiency"
  "bench/exp_fig4_learning_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_learning_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
