# Empty dependencies file for exp_fig4_learning_efficiency.
# This may be replaced when dependencies are built.
