
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_fig4_learning_efficiency.cc" "CMakeFiles/exp_fig4_learning_efficiency.dir/bench/exp_fig4_learning_efficiency.cc.o" "gcc" "CMakeFiles/exp_fig4_learning_efficiency.dir/bench/exp_fig4_learning_efficiency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
