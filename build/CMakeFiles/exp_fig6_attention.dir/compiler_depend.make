# Empty compiler generated dependencies file for exp_fig6_attention.
# This may be replaced when dependencies are built.
