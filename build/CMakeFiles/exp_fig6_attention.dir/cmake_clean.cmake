file(REMOVE_RECURSE
  "CMakeFiles/exp_fig6_attention.dir/bench/exp_fig6_attention.cc.o"
  "CMakeFiles/exp_fig6_attention.dir/bench/exp_fig6_attention.cc.o.d"
  "bench/exp_fig6_attention"
  "bench/exp_fig6_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig6_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
