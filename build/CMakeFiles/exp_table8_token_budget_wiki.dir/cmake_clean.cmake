file(REMOVE_RECURSE
  "CMakeFiles/exp_table8_token_budget_wiki.dir/bench/exp_table8_token_budget_wiki.cc.o"
  "CMakeFiles/exp_table8_token_budget_wiki.dir/bench/exp_table8_token_budget_wiki.cc.o.d"
  "bench/exp_table8_token_budget_wiki"
  "bench/exp_table8_token_budget_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table8_token_budget_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
