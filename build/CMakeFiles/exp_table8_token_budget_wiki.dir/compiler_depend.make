# Empty compiler generated dependencies file for exp_table8_token_budget_wiki.
# This may be replaced when dependencies are built.
