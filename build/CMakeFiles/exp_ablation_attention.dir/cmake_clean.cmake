file(REMOVE_RECURSE
  "CMakeFiles/exp_ablation_attention.dir/bench/exp_ablation_attention.cc.o"
  "CMakeFiles/exp_ablation_attention.dir/bench/exp_ablation_attention.cc.o.d"
  "bench/exp_ablation_attention"
  "bench/exp_ablation_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
