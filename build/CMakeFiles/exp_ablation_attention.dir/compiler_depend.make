# Empty compiler generated dependencies file for exp_ablation_attention.
# This may be replaced when dependencies are built.
