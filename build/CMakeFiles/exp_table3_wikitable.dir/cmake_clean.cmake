file(REMOVE_RECURSE
  "CMakeFiles/exp_table3_wikitable.dir/bench/exp_table3_wikitable.cc.o"
  "CMakeFiles/exp_table3_wikitable.dir/bench/exp_table3_wikitable.cc.o.d"
  "bench/exp_table3_wikitable"
  "bench/exp_table3_wikitable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table3_wikitable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
