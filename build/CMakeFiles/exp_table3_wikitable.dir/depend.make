# Empty dependencies file for exp_table3_wikitable.
# This may be replaced when dependencies are built.
