# Empty dependencies file for exp_table6_ablation_wiki.
# This may be replaced when dependencies are built.
