file(REMOVE_RECURSE
  "CMakeFiles/exp_table5_numeric.dir/bench/exp_table5_numeric.cc.o"
  "CMakeFiles/exp_table5_numeric.dir/bench/exp_table5_numeric.cc.o.d"
  "bench/exp_table5_numeric"
  "bench/exp_table5_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table5_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
