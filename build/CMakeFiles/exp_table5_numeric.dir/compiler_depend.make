# Empty compiler generated dependencies file for exp_table5_numeric.
# This may be replaced when dependencies are built.
