# Empty dependencies file for exp_table7_ablation_viznet.
# This may be replaced when dependencies are built.
