# Empty dependencies file for exp_fig5_per_class.
# This may be replaced when dependencies are built.
