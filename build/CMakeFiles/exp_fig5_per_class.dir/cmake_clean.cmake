file(REMOVE_RECURSE
  "CMakeFiles/exp_fig5_per_class.dir/bench/exp_fig5_per_class.cc.o"
  "CMakeFiles/exp_fig5_per_class.dir/bench/exp_fig5_per_class.cc.o.d"
  "bench/exp_fig5_per_class"
  "bench/exp_fig5_per_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig5_per_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
