file(REMOVE_RECURSE
  "CMakeFiles/exp_table11_token_budget_viznet.dir/bench/exp_table11_token_budget_viznet.cc.o"
  "CMakeFiles/exp_table11_token_budget_viznet.dir/bench/exp_table11_token_budget_viznet.cc.o.d"
  "bench/exp_table11_token_budget_viznet"
  "bench/exp_table11_token_budget_viznet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table11_token_budget_viznet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
