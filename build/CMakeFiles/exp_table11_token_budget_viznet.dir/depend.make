# Empty dependencies file for exp_table11_token_budget_viznet.
# This may be replaced when dependencies are built.
