# Empty dependencies file for doduo_cli.
# This may be replaced when dependencies are built.
