file(REMOVE_RECURSE
  "CMakeFiles/doduo_cli.dir/tools/doduo_cli.cc.o"
  "CMakeFiles/doduo_cli.dir/tools/doduo_cli.cc.o.d"
  "tools/doduo_cli"
  "tools/doduo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
