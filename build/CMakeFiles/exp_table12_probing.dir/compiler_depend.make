# Empty compiler generated dependencies file for exp_table12_probing.
# This may be replaced when dependencies are built.
