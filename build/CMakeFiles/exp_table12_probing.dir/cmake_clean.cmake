file(REMOVE_RECURSE
  "CMakeFiles/exp_table12_probing.dir/bench/exp_table12_probing.cc.o"
  "CMakeFiles/exp_table12_probing.dir/bench/exp_table12_probing.cc.o.d"
  "bench/exp_table12_probing"
  "bench/exp_table12_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table12_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
