file(REMOVE_RECURSE
  "CMakeFiles/exp_table9_case_study.dir/bench/exp_table9_case_study.cc.o"
  "CMakeFiles/exp_table9_case_study.dir/bench/exp_table9_case_study.cc.o.d"
  "bench/exp_table9_case_study"
  "bench/exp_table9_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table9_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
