# Empty compiler generated dependencies file for exp_table9_case_study.
# This may be replaced when dependencies are built.
