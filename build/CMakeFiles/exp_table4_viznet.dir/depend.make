# Empty dependencies file for exp_table4_viznet.
# This may be replaced when dependencies are built.
