file(REMOVE_RECURSE
  "CMakeFiles/exp_table4_viznet.dir/bench/exp_table4_viznet.cc.o"
  "CMakeFiles/exp_table4_viznet.dir/bench/exp_table4_viznet.cc.o.d"
  "bench/exp_table4_viznet"
  "bench/exp_table4_viznet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table4_viznet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
