
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/table/dataset_test.cc" "tests/CMakeFiles/table_test.dir/table/dataset_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/dataset_test.cc.o.d"
  "/root/repo/tests/table/render_test.cc" "tests/CMakeFiles/table_test.dir/table/render_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/render_test.cc.o.d"
  "/root/repo/tests/table/serializer_property_test.cc" "tests/CMakeFiles/table_test.dir/table/serializer_property_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/serializer_property_test.cc.o.d"
  "/root/repo/tests/table/serializer_test.cc" "tests/CMakeFiles/table_test.dir/table/serializer_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/serializer_test.cc.o.d"
  "/root/repo/tests/table/table_test.cc" "tests/CMakeFiles/table_test.dir/table/table_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
