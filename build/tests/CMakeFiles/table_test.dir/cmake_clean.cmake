file(REMOVE_RECURSE
  "CMakeFiles/table_test.dir/table/dataset_test.cc.o"
  "CMakeFiles/table_test.dir/table/dataset_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/render_test.cc.o"
  "CMakeFiles/table_test.dir/table/render_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/serializer_property_test.cc.o"
  "CMakeFiles/table_test.dir/table/serializer_property_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/serializer_test.cc.o"
  "CMakeFiles/table_test.dir/table/serializer_test.cc.o.d"
  "CMakeFiles/table_test.dir/table/table_test.cc.o"
  "CMakeFiles/table_test.dir/table/table_test.cc.o.d"
  "table_test"
  "table_test.pdb"
  "table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
