file(REMOVE_RECURSE
  "CMakeFiles/transformer_test.dir/transformer/attention_test.cc.o"
  "CMakeFiles/transformer_test.dir/transformer/attention_test.cc.o.d"
  "CMakeFiles/transformer_test.dir/transformer/bert_test.cc.o"
  "CMakeFiles/transformer_test.dir/transformer/bert_test.cc.o.d"
  "CMakeFiles/transformer_test.dir/transformer/mlm_test.cc.o"
  "CMakeFiles/transformer_test.dir/transformer/mlm_test.cc.o.d"
  "CMakeFiles/transformer_test.dir/transformer/transformer_property_test.cc.o"
  "CMakeFiles/transformer_test.dir/transformer/transformer_property_test.cc.o.d"
  "transformer_test"
  "transformer_test.pdb"
  "transformer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
