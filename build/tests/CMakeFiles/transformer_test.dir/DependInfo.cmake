
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transformer/attention_test.cc" "tests/CMakeFiles/transformer_test.dir/transformer/attention_test.cc.o" "gcc" "tests/CMakeFiles/transformer_test.dir/transformer/attention_test.cc.o.d"
  "/root/repo/tests/transformer/bert_test.cc" "tests/CMakeFiles/transformer_test.dir/transformer/bert_test.cc.o" "gcc" "tests/CMakeFiles/transformer_test.dir/transformer/bert_test.cc.o.d"
  "/root/repo/tests/transformer/mlm_test.cc" "tests/CMakeFiles/transformer_test.dir/transformer/mlm_test.cc.o" "gcc" "tests/CMakeFiles/transformer_test.dir/transformer/mlm_test.cc.o.d"
  "/root/repo/tests/transformer/transformer_property_test.cc" "tests/CMakeFiles/transformer_test.dir/transformer/transformer_property_test.cc.o" "gcc" "tests/CMakeFiles/transformer_test.dir/transformer/transformer_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
