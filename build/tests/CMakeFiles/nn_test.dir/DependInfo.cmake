
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/layers_test.cc" "tests/CMakeFiles/nn_test.dir/nn/layers_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/layers_test.cc.o.d"
  "/root/repo/tests/nn/losses_property_test.cc" "tests/CMakeFiles/nn_test.dir/nn/losses_property_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/losses_property_test.cc.o.d"
  "/root/repo/tests/nn/losses_test.cc" "tests/CMakeFiles/nn_test.dir/nn/losses_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/losses_test.cc.o.d"
  "/root/repo/tests/nn/ops_property_test.cc" "tests/CMakeFiles/nn_test.dir/nn/ops_property_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/ops_property_test.cc.o.d"
  "/root/repo/tests/nn/ops_test.cc" "tests/CMakeFiles/nn_test.dir/nn/ops_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/ops_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_property_test.cc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_property_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_property_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_test.cc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/optimizer_test.cc.o.d"
  "/root/repo/tests/nn/serialize_test.cc" "tests/CMakeFiles/nn_test.dir/nn/serialize_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/serialize_test.cc.o.d"
  "/root/repo/tests/nn/tensor_test.cc" "tests/CMakeFiles/nn_test.dir/nn/tensor_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/tensor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
