
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/synth/case_study_test.cc" "tests/CMakeFiles/synth_test.dir/synth/case_study_test.cc.o" "gcc" "tests/CMakeFiles/synth_test.dir/synth/case_study_test.cc.o.d"
  "/root/repo/tests/synth/corruption_test.cc" "tests/CMakeFiles/synth_test.dir/synth/corruption_test.cc.o" "gcc" "tests/CMakeFiles/synth_test.dir/synth/corruption_test.cc.o.d"
  "/root/repo/tests/synth/generator_property_test.cc" "tests/CMakeFiles/synth_test.dir/synth/generator_property_test.cc.o" "gcc" "tests/CMakeFiles/synth_test.dir/synth/generator_property_test.cc.o.d"
  "/root/repo/tests/synth/knowledge_base_test.cc" "tests/CMakeFiles/synth_test.dir/synth/knowledge_base_test.cc.o" "gcc" "tests/CMakeFiles/synth_test.dir/synth/knowledge_base_test.cc.o.d"
  "/root/repo/tests/synth/statistics_test.cc" "tests/CMakeFiles/synth_test.dir/synth/statistics_test.cc.o" "gcc" "tests/CMakeFiles/synth_test.dir/synth/statistics_test.cc.o.d"
  "/root/repo/tests/synth/table_generator_test.cc" "tests/CMakeFiles/synth_test.dir/synth/table_generator_test.cc.o" "gcc" "tests/CMakeFiles/synth_test.dir/synth/table_generator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
