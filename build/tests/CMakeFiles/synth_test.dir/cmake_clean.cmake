file(REMOVE_RECURSE
  "CMakeFiles/synth_test.dir/synth/case_study_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/case_study_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/corruption_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/corruption_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/generator_property_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/generator_property_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/knowledge_base_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/knowledge_base_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/statistics_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/statistics_test.cc.o.d"
  "CMakeFiles/synth_test.dir/synth/table_generator_test.cc.o"
  "CMakeFiles/synth_test.dir/synth/table_generator_test.cc.o.d"
  "synth_test"
  "synth_test.pdb"
  "synth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
