
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/lda_crf_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/lda_crf_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/lda_crf_test.cc.o.d"
  "/root/repo/tests/baselines/sato_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/sato_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/sato_test.cc.o.d"
  "/root/repo/tests/baselines/sherlock_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/sherlock_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/sherlock_test.cc.o.d"
  "/root/repo/tests/baselines/turl_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/turl_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/turl_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
