file(REMOVE_RECURSE
  "CMakeFiles/dirty_data.dir/dirty_data.cpp.o"
  "CMakeFiles/dirty_data.dir/dirty_data.cpp.o.d"
  "dirty_data"
  "dirty_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirty_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
