# Empty compiler generated dependencies file for dirty_data.
# This may be replaced when dependencies are built.
