# Empty compiler generated dependencies file for cluster_columns.
# This may be replaced when dependencies are built.
