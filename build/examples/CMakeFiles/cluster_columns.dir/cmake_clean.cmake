file(REMOVE_RECURSE
  "CMakeFiles/cluster_columns.dir/cluster_columns.cpp.o"
  "CMakeFiles/cluster_columns.dir/cluster_columns.cpp.o.d"
  "cluster_columns"
  "cluster_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
