# Empty dependencies file for probe_lm.
# This may be replaced when dependencies are built.
