file(REMOVE_RECURSE
  "CMakeFiles/probe_lm.dir/probe_lm.cpp.o"
  "CMakeFiles/probe_lm.dir/probe_lm.cpp.o.d"
  "probe_lm"
  "probe_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
