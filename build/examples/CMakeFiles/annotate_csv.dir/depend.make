# Empty dependencies file for annotate_csv.
# This may be replaced when dependencies are built.
