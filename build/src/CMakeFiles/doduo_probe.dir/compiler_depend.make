# Empty compiler generated dependencies file for doduo_probe.
# This may be replaced when dependencies are built.
