file(REMOVE_RECURSE
  "libdoduo_probe.a"
)
