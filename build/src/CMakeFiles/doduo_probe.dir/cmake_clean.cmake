file(REMOVE_RECURSE
  "CMakeFiles/doduo_probe.dir/doduo/probe/prober.cc.o"
  "CMakeFiles/doduo_probe.dir/doduo/probe/prober.cc.o.d"
  "CMakeFiles/doduo_probe.dir/doduo/probe/templates.cc.o"
  "CMakeFiles/doduo_probe.dir/doduo/probe/templates.cc.o.d"
  "libdoduo_probe.a"
  "libdoduo_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
