file(REMOVE_RECURSE
  "libdoduo_eval.a"
)
