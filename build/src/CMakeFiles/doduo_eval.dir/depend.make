# Empty dependencies file for doduo_eval.
# This may be replaced when dependencies are built.
