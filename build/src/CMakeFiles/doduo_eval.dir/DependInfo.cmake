
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/eval/confusion.cc" "src/CMakeFiles/doduo_eval.dir/doduo/eval/confusion.cc.o" "gcc" "src/CMakeFiles/doduo_eval.dir/doduo/eval/confusion.cc.o.d"
  "/root/repo/src/doduo/eval/metrics.cc" "src/CMakeFiles/doduo_eval.dir/doduo/eval/metrics.cc.o" "gcc" "src/CMakeFiles/doduo_eval.dir/doduo/eval/metrics.cc.o.d"
  "/root/repo/src/doduo/eval/report.cc" "src/CMakeFiles/doduo_eval.dir/doduo/eval/report.cc.o" "gcc" "src/CMakeFiles/doduo_eval.dir/doduo/eval/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
