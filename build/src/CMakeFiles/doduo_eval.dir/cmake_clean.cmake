file(REMOVE_RECURSE
  "CMakeFiles/doduo_eval.dir/doduo/eval/confusion.cc.o"
  "CMakeFiles/doduo_eval.dir/doduo/eval/confusion.cc.o.d"
  "CMakeFiles/doduo_eval.dir/doduo/eval/metrics.cc.o"
  "CMakeFiles/doduo_eval.dir/doduo/eval/metrics.cc.o.d"
  "CMakeFiles/doduo_eval.dir/doduo/eval/report.cc.o"
  "CMakeFiles/doduo_eval.dir/doduo/eval/report.cc.o.d"
  "libdoduo_eval.a"
  "libdoduo_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
