file(REMOVE_RECURSE
  "libdoduo_baselines.a"
)
