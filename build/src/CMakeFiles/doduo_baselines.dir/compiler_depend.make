# Empty compiler generated dependencies file for doduo_baselines.
# This may be replaced when dependencies are built.
