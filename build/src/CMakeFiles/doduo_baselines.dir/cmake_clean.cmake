file(REMOVE_RECURSE
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/crf.cc.o"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/crf.cc.o.d"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/lda.cc.o"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/lda.cc.o.d"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/sato.cc.o"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/sato.cc.o.d"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock.cc.o"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock.cc.o.d"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock_features.cc.o"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock_features.cc.o.d"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/turl.cc.o"
  "CMakeFiles/doduo_baselines.dir/doduo/baselines/turl.cc.o.d"
  "libdoduo_baselines.a"
  "libdoduo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
