
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/baselines/crf.cc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/crf.cc.o" "gcc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/crf.cc.o.d"
  "/root/repo/src/doduo/baselines/lda.cc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/lda.cc.o" "gcc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/lda.cc.o.d"
  "/root/repo/src/doduo/baselines/sato.cc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/sato.cc.o" "gcc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/sato.cc.o.d"
  "/root/repo/src/doduo/baselines/sherlock.cc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock.cc.o" "gcc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock.cc.o.d"
  "/root/repo/src/doduo/baselines/sherlock_features.cc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock_features.cc.o" "gcc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/sherlock_features.cc.o.d"
  "/root/repo/src/doduo/baselines/turl.cc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/turl.cc.o" "gcc" "src/CMakeFiles/doduo_baselines.dir/doduo/baselines/turl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
