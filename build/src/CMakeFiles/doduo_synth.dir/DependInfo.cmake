
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/synth/case_study.cc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/case_study.cc.o" "gcc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/case_study.cc.o.d"
  "/root/repo/src/doduo/synth/corpus_generator.cc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/corpus_generator.cc.o" "gcc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/corpus_generator.cc.o.d"
  "/root/repo/src/doduo/synth/corruption.cc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/corruption.cc.o" "gcc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/corruption.cc.o.d"
  "/root/repo/src/doduo/synth/knowledge_base.cc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/knowledge_base.cc.o" "gcc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/knowledge_base.cc.o.d"
  "/root/repo/src/doduo/synth/statistics.cc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/statistics.cc.o" "gcc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/statistics.cc.o.d"
  "/root/repo/src/doduo/synth/table_generator.cc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/table_generator.cc.o" "gcc" "src/CMakeFiles/doduo_synth.dir/doduo/synth/table_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
