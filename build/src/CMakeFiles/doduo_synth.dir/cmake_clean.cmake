file(REMOVE_RECURSE
  "CMakeFiles/doduo_synth.dir/doduo/synth/case_study.cc.o"
  "CMakeFiles/doduo_synth.dir/doduo/synth/case_study.cc.o.d"
  "CMakeFiles/doduo_synth.dir/doduo/synth/corpus_generator.cc.o"
  "CMakeFiles/doduo_synth.dir/doduo/synth/corpus_generator.cc.o.d"
  "CMakeFiles/doduo_synth.dir/doduo/synth/corruption.cc.o"
  "CMakeFiles/doduo_synth.dir/doduo/synth/corruption.cc.o.d"
  "CMakeFiles/doduo_synth.dir/doduo/synth/knowledge_base.cc.o"
  "CMakeFiles/doduo_synth.dir/doduo/synth/knowledge_base.cc.o.d"
  "CMakeFiles/doduo_synth.dir/doduo/synth/statistics.cc.o"
  "CMakeFiles/doduo_synth.dir/doduo/synth/statistics.cc.o.d"
  "CMakeFiles/doduo_synth.dir/doduo/synth/table_generator.cc.o"
  "CMakeFiles/doduo_synth.dir/doduo/synth/table_generator.cc.o.d"
  "libdoduo_synth.a"
  "libdoduo_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
