file(REMOVE_RECURSE
  "libdoduo_synth.a"
)
