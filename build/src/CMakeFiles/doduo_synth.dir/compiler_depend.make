# Empty compiler generated dependencies file for doduo_synth.
# This may be replaced when dependencies are built.
