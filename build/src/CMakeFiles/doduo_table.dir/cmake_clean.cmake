file(REMOVE_RECURSE
  "CMakeFiles/doduo_table.dir/doduo/table/dataset.cc.o"
  "CMakeFiles/doduo_table.dir/doduo/table/dataset.cc.o.d"
  "CMakeFiles/doduo_table.dir/doduo/table/render.cc.o"
  "CMakeFiles/doduo_table.dir/doduo/table/render.cc.o.d"
  "CMakeFiles/doduo_table.dir/doduo/table/serializer.cc.o"
  "CMakeFiles/doduo_table.dir/doduo/table/serializer.cc.o.d"
  "CMakeFiles/doduo_table.dir/doduo/table/table.cc.o"
  "CMakeFiles/doduo_table.dir/doduo/table/table.cc.o.d"
  "libdoduo_table.a"
  "libdoduo_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
