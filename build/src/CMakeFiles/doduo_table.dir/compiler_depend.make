# Empty compiler generated dependencies file for doduo_table.
# This may be replaced when dependencies are built.
