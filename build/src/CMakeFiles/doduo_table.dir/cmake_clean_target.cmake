file(REMOVE_RECURSE
  "libdoduo_table.a"
)
