
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/table/dataset.cc" "src/CMakeFiles/doduo_table.dir/doduo/table/dataset.cc.o" "gcc" "src/CMakeFiles/doduo_table.dir/doduo/table/dataset.cc.o.d"
  "/root/repo/src/doduo/table/render.cc" "src/CMakeFiles/doduo_table.dir/doduo/table/render.cc.o" "gcc" "src/CMakeFiles/doduo_table.dir/doduo/table/render.cc.o.d"
  "/root/repo/src/doduo/table/serializer.cc" "src/CMakeFiles/doduo_table.dir/doduo/table/serializer.cc.o" "gcc" "src/CMakeFiles/doduo_table.dir/doduo/table/serializer.cc.o.d"
  "/root/repo/src/doduo/table/table.cc" "src/CMakeFiles/doduo_table.dir/doduo/table/table.cc.o" "gcc" "src/CMakeFiles/doduo_table.dir/doduo/table/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
