# Empty dependencies file for doduo_analysis.
# This may be replaced when dependencies are built.
