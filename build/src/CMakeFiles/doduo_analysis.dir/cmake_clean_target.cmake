file(REMOVE_RECURSE
  "libdoduo_analysis.a"
)
