file(REMOVE_RECURSE
  "CMakeFiles/doduo_analysis.dir/doduo/analysis/attention_analysis.cc.o"
  "CMakeFiles/doduo_analysis.dir/doduo/analysis/attention_analysis.cc.o.d"
  "libdoduo_analysis.a"
  "libdoduo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
