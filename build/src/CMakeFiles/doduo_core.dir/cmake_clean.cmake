file(REMOVE_RECURSE
  "CMakeFiles/doduo_core.dir/doduo/core/annotator.cc.o"
  "CMakeFiles/doduo_core.dir/doduo/core/annotator.cc.o.d"
  "CMakeFiles/doduo_core.dir/doduo/core/config.cc.o"
  "CMakeFiles/doduo_core.dir/doduo/core/config.cc.o.d"
  "CMakeFiles/doduo_core.dir/doduo/core/model.cc.o"
  "CMakeFiles/doduo_core.dir/doduo/core/model.cc.o.d"
  "CMakeFiles/doduo_core.dir/doduo/core/trainer.cc.o"
  "CMakeFiles/doduo_core.dir/doduo/core/trainer.cc.o.d"
  "libdoduo_core.a"
  "libdoduo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
