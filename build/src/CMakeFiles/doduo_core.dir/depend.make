# Empty dependencies file for doduo_core.
# This may be replaced when dependencies are built.
