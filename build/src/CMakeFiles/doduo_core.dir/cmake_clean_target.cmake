file(REMOVE_RECURSE
  "libdoduo_core.a"
)
