file(REMOVE_RECURSE
  "CMakeFiles/doduo_experiments.dir/doduo/experiments/env.cc.o"
  "CMakeFiles/doduo_experiments.dir/doduo/experiments/env.cc.o.d"
  "CMakeFiles/doduo_experiments.dir/doduo/experiments/runners.cc.o"
  "CMakeFiles/doduo_experiments.dir/doduo/experiments/runners.cc.o.d"
  "libdoduo_experiments.a"
  "libdoduo_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
