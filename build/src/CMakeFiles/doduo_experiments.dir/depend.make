# Empty dependencies file for doduo_experiments.
# This may be replaced when dependencies are built.
