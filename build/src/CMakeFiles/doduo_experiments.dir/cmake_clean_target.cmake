file(REMOVE_RECURSE
  "libdoduo_experiments.a"
)
