
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/util/csv.cc" "src/CMakeFiles/doduo_util.dir/doduo/util/csv.cc.o" "gcc" "src/CMakeFiles/doduo_util.dir/doduo/util/csv.cc.o.d"
  "/root/repo/src/doduo/util/env.cc" "src/CMakeFiles/doduo_util.dir/doduo/util/env.cc.o" "gcc" "src/CMakeFiles/doduo_util.dir/doduo/util/env.cc.o.d"
  "/root/repo/src/doduo/util/logging.cc" "src/CMakeFiles/doduo_util.dir/doduo/util/logging.cc.o" "gcc" "src/CMakeFiles/doduo_util.dir/doduo/util/logging.cc.o.d"
  "/root/repo/src/doduo/util/rng.cc" "src/CMakeFiles/doduo_util.dir/doduo/util/rng.cc.o" "gcc" "src/CMakeFiles/doduo_util.dir/doduo/util/rng.cc.o.d"
  "/root/repo/src/doduo/util/status.cc" "src/CMakeFiles/doduo_util.dir/doduo/util/status.cc.o" "gcc" "src/CMakeFiles/doduo_util.dir/doduo/util/status.cc.o.d"
  "/root/repo/src/doduo/util/string_util.cc" "src/CMakeFiles/doduo_util.dir/doduo/util/string_util.cc.o" "gcc" "src/CMakeFiles/doduo_util.dir/doduo/util/string_util.cc.o.d"
  "/root/repo/src/doduo/util/table_printer.cc" "src/CMakeFiles/doduo_util.dir/doduo/util/table_printer.cc.o" "gcc" "src/CMakeFiles/doduo_util.dir/doduo/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
