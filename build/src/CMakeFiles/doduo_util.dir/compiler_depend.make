# Empty compiler generated dependencies file for doduo_util.
# This may be replaced when dependencies are built.
