file(REMOVE_RECURSE
  "libdoduo_util.a"
)
