file(REMOVE_RECURSE
  "CMakeFiles/doduo_util.dir/doduo/util/csv.cc.o"
  "CMakeFiles/doduo_util.dir/doduo/util/csv.cc.o.d"
  "CMakeFiles/doduo_util.dir/doduo/util/env.cc.o"
  "CMakeFiles/doduo_util.dir/doduo/util/env.cc.o.d"
  "CMakeFiles/doduo_util.dir/doduo/util/logging.cc.o"
  "CMakeFiles/doduo_util.dir/doduo/util/logging.cc.o.d"
  "CMakeFiles/doduo_util.dir/doduo/util/rng.cc.o"
  "CMakeFiles/doduo_util.dir/doduo/util/rng.cc.o.d"
  "CMakeFiles/doduo_util.dir/doduo/util/status.cc.o"
  "CMakeFiles/doduo_util.dir/doduo/util/status.cc.o.d"
  "CMakeFiles/doduo_util.dir/doduo/util/string_util.cc.o"
  "CMakeFiles/doduo_util.dir/doduo/util/string_util.cc.o.d"
  "CMakeFiles/doduo_util.dir/doduo/util/table_printer.cc.o"
  "CMakeFiles/doduo_util.dir/doduo/util/table_printer.cc.o.d"
  "libdoduo_util.a"
  "libdoduo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
