# Empty dependencies file for doduo_transformer.
# This may be replaced when dependencies are built.
