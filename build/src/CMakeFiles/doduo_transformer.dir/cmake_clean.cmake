file(REMOVE_RECURSE
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/attention.cc.o"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/attention.cc.o.d"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/bert.cc.o"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/bert.cc.o.d"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/block.cc.o"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/block.cc.o.d"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/config.cc.o"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/config.cc.o.d"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/encoder.cc.o"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/encoder.cc.o.d"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/mlm.cc.o"
  "CMakeFiles/doduo_transformer.dir/doduo/transformer/mlm.cc.o.d"
  "libdoduo_transformer.a"
  "libdoduo_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
