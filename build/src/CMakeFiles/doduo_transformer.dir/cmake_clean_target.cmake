file(REMOVE_RECURSE
  "libdoduo_transformer.a"
)
