
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/transformer/attention.cc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/attention.cc.o" "gcc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/attention.cc.o.d"
  "/root/repo/src/doduo/transformer/bert.cc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/bert.cc.o" "gcc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/bert.cc.o.d"
  "/root/repo/src/doduo/transformer/block.cc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/block.cc.o" "gcc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/block.cc.o.d"
  "/root/repo/src/doduo/transformer/config.cc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/config.cc.o" "gcc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/config.cc.o.d"
  "/root/repo/src/doduo/transformer/encoder.cc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/encoder.cc.o" "gcc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/encoder.cc.o.d"
  "/root/repo/src/doduo/transformer/mlm.cc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/mlm.cc.o" "gcc" "src/CMakeFiles/doduo_transformer.dir/doduo/transformer/mlm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
