# Empty compiler generated dependencies file for doduo_nn.
# This may be replaced when dependencies are built.
