file(REMOVE_RECURSE
  "CMakeFiles/doduo_nn.dir/doduo/nn/activations.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/activations.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/dropout.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/dropout.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/embedding.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/embedding.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/layer_norm.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/layer_norm.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/linear.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/linear.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/losses.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/losses.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/ops.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/ops.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/optimizer.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/optimizer.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/parameter.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/parameter.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/serialize.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/serialize.cc.o.d"
  "CMakeFiles/doduo_nn.dir/doduo/nn/tensor.cc.o"
  "CMakeFiles/doduo_nn.dir/doduo/nn/tensor.cc.o.d"
  "libdoduo_nn.a"
  "libdoduo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
