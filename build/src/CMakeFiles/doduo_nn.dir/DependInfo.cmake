
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/nn/activations.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/activations.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/activations.cc.o.d"
  "/root/repo/src/doduo/nn/dropout.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/dropout.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/dropout.cc.o.d"
  "/root/repo/src/doduo/nn/embedding.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/embedding.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/embedding.cc.o.d"
  "/root/repo/src/doduo/nn/layer_norm.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/layer_norm.cc.o.d"
  "/root/repo/src/doduo/nn/linear.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/linear.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/linear.cc.o.d"
  "/root/repo/src/doduo/nn/losses.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/losses.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/losses.cc.o.d"
  "/root/repo/src/doduo/nn/ops.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/ops.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/ops.cc.o.d"
  "/root/repo/src/doduo/nn/optimizer.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/optimizer.cc.o.d"
  "/root/repo/src/doduo/nn/parameter.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/parameter.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/parameter.cc.o.d"
  "/root/repo/src/doduo/nn/serialize.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/serialize.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/serialize.cc.o.d"
  "/root/repo/src/doduo/nn/tensor.cc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/tensor.cc.o" "gcc" "src/CMakeFiles/doduo_nn.dir/doduo/nn/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
