file(REMOVE_RECURSE
  "libdoduo_nn.a"
)
