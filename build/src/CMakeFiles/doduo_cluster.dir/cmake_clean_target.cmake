file(REMOVE_RECURSE
  "libdoduo_cluster.a"
)
