file(REMOVE_RECURSE
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/kmeans.cc.o"
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/kmeans.cc.o.d"
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/matchers.cc.o"
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/matchers.cc.o.d"
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/metrics.cc.o"
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/metrics.cc.o.d"
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/union_find.cc.o"
  "CMakeFiles/doduo_cluster.dir/doduo/cluster/union_find.cc.o.d"
  "libdoduo_cluster.a"
  "libdoduo_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
