# Empty compiler generated dependencies file for doduo_cluster.
# This may be replaced when dependencies are built.
