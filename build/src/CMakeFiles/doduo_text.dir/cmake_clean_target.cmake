file(REMOVE_RECURSE
  "libdoduo_text.a"
)
