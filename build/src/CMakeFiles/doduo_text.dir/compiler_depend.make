# Empty compiler generated dependencies file for doduo_text.
# This may be replaced when dependencies are built.
