file(REMOVE_RECURSE
  "CMakeFiles/doduo_text.dir/doduo/text/basic_tokenizer.cc.o"
  "CMakeFiles/doduo_text.dir/doduo/text/basic_tokenizer.cc.o.d"
  "CMakeFiles/doduo_text.dir/doduo/text/vocab.cc.o"
  "CMakeFiles/doduo_text.dir/doduo/text/vocab.cc.o.d"
  "CMakeFiles/doduo_text.dir/doduo/text/wordpiece_tokenizer.cc.o"
  "CMakeFiles/doduo_text.dir/doduo/text/wordpiece_tokenizer.cc.o.d"
  "CMakeFiles/doduo_text.dir/doduo/text/wordpiece_trainer.cc.o"
  "CMakeFiles/doduo_text.dir/doduo/text/wordpiece_trainer.cc.o.d"
  "libdoduo_text.a"
  "libdoduo_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doduo_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
