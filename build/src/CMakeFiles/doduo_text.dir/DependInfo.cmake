
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doduo/text/basic_tokenizer.cc" "src/CMakeFiles/doduo_text.dir/doduo/text/basic_tokenizer.cc.o" "gcc" "src/CMakeFiles/doduo_text.dir/doduo/text/basic_tokenizer.cc.o.d"
  "/root/repo/src/doduo/text/vocab.cc" "src/CMakeFiles/doduo_text.dir/doduo/text/vocab.cc.o" "gcc" "src/CMakeFiles/doduo_text.dir/doduo/text/vocab.cc.o.d"
  "/root/repo/src/doduo/text/wordpiece_tokenizer.cc" "src/CMakeFiles/doduo_text.dir/doduo/text/wordpiece_tokenizer.cc.o" "gcc" "src/CMakeFiles/doduo_text.dir/doduo/text/wordpiece_tokenizer.cc.o.d"
  "/root/repo/src/doduo/text/wordpiece_trainer.cc" "src/CMakeFiles/doduo_text.dir/doduo/text/wordpiece_trainer.cc.o" "gcc" "src/CMakeFiles/doduo_text.dir/doduo/text/wordpiece_trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doduo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
