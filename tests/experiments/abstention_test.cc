// End-to-end dirty-input regression (DESIGN §15): train on clean tables,
// corrupt the test split, and verify that (a) the calibrated-confidence
// abstention knob trades coverage for precision monotonically at fixed
// abstention rates {0%, 5%, 10%}, and (b) the fitted calibration
// temperature survives a SaveModelDir/LoadModelDir round trip.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/core/model_io.h"
#include "doduo/experiments/runners.h"
#include "doduo/synth/corruption.h"
#include "gtest/gtest.h"

namespace doduo::experiments {
namespace {

/// One scored prediction: its calibrated confidence and whether the top
/// predicted label is among the column's gold types.
struct Scored {
  double confidence = 0.0;
  bool correct = false;
};

double Precision(const std::vector<Scored>& kept) {
  if (kept.empty()) return 0.0;
  size_t correct = 0;
  for (const Scored& s : kept) correct += s.correct ? 1u : 0u;
  return static_cast<double>(correct) / static_cast<double>(kept.size());
}

TEST(AbstentionTest, CoverageTradesForPrecisionAndTemperaturePersists) {
  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = 250;
  options.vocab_size = 900;
  options.hidden_dim = 32;
  options.num_layers = 1;
  options.num_heads = 2;
  options.ffn_dim = 64;
  options.max_positions = 96;
  options.pretrain_epochs = 3;
  options.corpus_fact_mentions = 1;
  options.corpus_list_mentions = 10;
  options.use_cache = false;
  options.seed = 17;
  Env env(options);

  DoduoVariant variant;
  variant.epochs = 15;
  DoduoRun run = RunDoduo(&env, variant);
  ASSERT_GT(run.types.micro.f1, 0.30) << "model failed to train at all";

  // RunDoduo fits temperature scaling on the validation split; the result
  // must be a usable positive temperature inside the search bracket.
  const double temperature = run.model->config().calibration_temperature;
  EXPECT_GT(temperature, 0.05);
  EXPECT_LT(temperature, 20.0);

  // The temperature is part of the model directory contract: save, load,
  // and read the exact same value back.
  const std::string dir = ::testing::TempDir() + "/abstention_model";
  const auto saved = core::SaveModelDir(dir, run.model.get(), env.vocab(),
                                        env.dataset().type_vocab,
                                        env.dataset().relation_vocab);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  auto loaded = core::LoadModelDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded.value()->config.calibration_temperature,
                   temperature);

  // Corrupt the test split and score every robustly-annotated column.
  util::Rng rng(24);
  synth::CorruptionOptions corruption;
  corruption.missing_prob = 0.15;
  corruption.typo_prob = 0.10;
  const auto dirty = synth::CorruptDataset(env.dataset(), corruption, &rng);
  core::Annotator annotator(run.model.get(), run.serializer.get(),
                            &env.dataset().type_vocab,
                            /*relation_vocab=*/nullptr);
  std::vector<Scored> scored;
  for (const size_t t : env.splits().test) {
    const table::AnnotatedTable& gold = dirty.tables[t];
    const auto outcomes = annotator.AnnotateTypesRobust(gold.table);
    ASSERT_EQ(outcomes.size(), gold.column_types.size());
    for (size_t c = 0; c < outcomes.size(); ++c) {
      if (!outcomes[c].annotated()) continue;  // sanitizer-skipped column
      Scored s;
      s.confidence = outcomes[c].confidence;
      for (const int type_id : gold.column_types[c]) {
        if (outcomes[c].labels.front() ==
            env.dataset().type_vocab.Name(type_id)) {
          s.correct = true;
          break;
        }
      }
      scored.push_back(s);
    }
  }
  ASSERT_GE(scored.size(), 50u) << "too few annotated columns to measure";

  // Precision at fixed abstention rates: drop the lowest-confidence k% of
  // predictions and measure precision of what remains. The regression
  // claim is the trade itself — abstaining on low-confidence predictions
  // must never buy NEGATIVE precision (beyond statistical jitter), and
  // coverage must shrink by exactly the abstained fraction.
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.confidence < b.confidence;
            });
  std::vector<double> precisions;
  for (const double rate : {0.0, 0.05, 0.10}) {
    const size_t drop = static_cast<size_t>(
        std::floor(rate * static_cast<double>(scored.size())));
    const std::vector<Scored> kept(scored.begin() +
                                       static_cast<ptrdiff_t>(drop),
                                   scored.end());
    EXPECT_EQ(kept.size(), scored.size() - drop);
    precisions.push_back(Precision(kept));
  }
  // Monotone trade with a small jitter allowance: each extra 5% of
  // abstention may not cost more than 2 points of precision, and 10%
  // abstention must not land below the 0% baseline.
  EXPECT_GE(precisions[1], precisions[0] - 0.02);
  EXPECT_GE(precisions[2], precisions[1] - 0.02);
  EXPECT_GE(precisions[2], precisions[0]);
}

}  // namespace
}  // namespace doduo::experiments
