// Accuracy-parity contract for the int8 inference path (DESIGN §14): on
// both paper benchmarks (WikiTable / Table 3 and VizNet / Table 4 scale
// models), evaluating a trained model with DODUO_QUANT on must land within
// half an F1 point of the fp32 path. This is the lock that lets the int8
// GEMM family evolve freely — any quantization bug that moves accuracy
// shows up here as a hard failure.

#include <cmath>

#include "doduo/experiments/runners.h"
#include "doduo/nn/quant.h"
#include "gtest/gtest.h"

namespace doduo::experiments {
namespace {

// Train once in fp32, then evaluate the SAME trained model twice — fp32 vs
// int8 — so the delta isolates inference quantization error (training is
// never quantized).
void ExpectQuantParity(BenchmarkMode mode, uint64_t seed, double min_f1) {
  EnvOptions options;
  options.mode = mode;
  options.num_tables = 250;
  options.vocab_size = 900;
  options.hidden_dim = 32;
  options.num_layers = 1;
  options.num_heads = 2;
  options.ffn_dim = 64;
  options.max_positions = 96;
  options.pretrain_epochs = 3;
  options.corpus_fact_mentions = 1;
  options.corpus_list_mentions = 10;
  options.use_cache = false;
  options.seed = seed;
  Env env(options);

  DoduoVariant variant;
  variant.epochs = 15;
  DoduoRun run = RunDoduo(&env, variant);

  nn::SetQuantEnabled(false);
  const double fp32_f1 =
      run.trainer->EvaluateTypes(env.dataset(), env.splits().test).micro.f1;
  // Anti-degenerate guard only (per-mode: the miniature encoder plateaus
  // lower on numeric-heavy VizNet — see env.cc's tokens/col note). The
  // acceptance criterion is the parity bound below, not absolute F1.
  ASSERT_GT(fp32_f1, min_f1) << "model failed to train at all";

  nn::SetQuantEnabled(true);
  const double int8_f1 =
      run.trainer->EvaluateTypes(env.dataset(), env.splits().test).micro.f1;
  nn::SetQuantEnabled(false);

  // The acceptance bound: |ΔF1| ≤ 0.5 points (0.005 absolute).
  EXPECT_LE(std::fabs(int8_f1 - fp32_f1), 0.005)
      << "fp32 F1=" << fp32_f1 << " int8 F1=" << int8_f1;
}

TEST(QuantParityTest, WikiTableInt8MatchesFp32) {
  ExpectQuantParity(BenchmarkMode::kWikiTable, 21, 0.30);
}

TEST(QuantParityTest, VizNetInt8MatchesFp32) {
  ExpectQuantParity(BenchmarkMode::kVizNet, 22, 0.10);
}

}  // namespace
}  // namespace doduo::experiments
