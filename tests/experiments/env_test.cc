// Integration tests of the experiments harness: environment construction,
// configuration plumbing, pre-trained checkpoint caching, and the scale
// helper. Kept at miniature sizes so the suite stays fast.

#include "doduo/experiments/env.h"

#include <cstdlib>
#include <filesystem>

#include "doduo/experiments/runners.h"
#include "gtest/gtest.h"

namespace doduo::experiments {
namespace {

EnvOptions TinyOptions(BenchmarkMode mode) {
  EnvOptions options;
  options.mode = mode;
  options.num_tables = 40;
  options.vocab_size = 700;
  options.hidden_dim = 16;
  options.num_layers = 1;
  options.num_heads = 2;
  options.ffn_dim = 32;
  options.max_positions = 96;
  options.pretrain_epochs = 1;
  options.corpus_fact_mentions = 1;
  options.corpus_type_mentions = 1;
  options.corpus_list_mentions = 2;
  options.use_cache = false;
  options.seed = 7;
  return options;
}

TEST(EnvTest, WikiTableEnvironmentIsConsistent) {
  Env env(TinyOptions(BenchmarkMode::kWikiTable));
  EXPECT_EQ(env.dataset().tables.size(), 40u);
  EXPECT_TRUE(env.dataset().multi_label);
  EXPECT_GT(env.dataset().relation_vocab.size(), 0);
  EXPECT_GT(env.vocab().size(), text::Vocab::kNumSpecialTokens);

  const auto config = env.MakeDoduoConfig();
  EXPECT_EQ(config.encoder.vocab_size, env.vocab().size());
  EXPECT_EQ(config.num_types, env.dataset().type_vocab.size());
  EXPECT_EQ(config.tasks, core::TaskSet::kTypesAndRelations);
  // Splits partition the tables.
  EXPECT_EQ(env.splits().train.size() + env.splits().valid.size() +
                env.splits().test.size(),
            env.dataset().tables.size());
}

TEST(EnvTest, VizNetEnvironmentDisablesRelations) {
  Env env(TinyOptions(BenchmarkMode::kVizNet));
  EXPECT_FALSE(env.dataset().multi_label);
  const auto config = env.MakeDoduoConfig();
  EXPECT_EQ(config.tasks, core::TaskSet::kTypesOnly);
  EXPECT_EQ(config.num_relations, 0);
  // Mode-specific serializer budget (see EXPERIMENTS.md).
  EXPECT_EQ(config.serializer.max_tokens_per_column, 8);
}

TEST(EnvTest, PretrainedInitializationCopiesWeights) {
  Env env(TinyOptions(BenchmarkMode::kWikiTable));
  auto config = env.MakeDoduoConfig();
  util::Rng rng(1);
  core::DoduoModel model(config, &rng);
  const auto before = model.SnapshotWeights();
  env.InitializeFromPretrained(&model);
  const auto after = model.SnapshotWeights();
  // Encoder weights changed; shapes identical.
  double diff = 0.0;
  for (size_t i = 0; i < before.size(); ++i) {
    ASSERT_TRUE(nn::SameShape(before[i], after[i]));
    for (int64_t j = 0; j < before[i].size(); ++j) {
      diff += static_cast<double>(
          std::abs(before[i].data()[j] - after[i].data()[j]));
    }
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(EnvTest, CheckpointCacheRoundTrips) {
  const std::string cache_dir = ::testing::TempDir() + "/doduo_env_cache";
  std::filesystem::remove_all(cache_dir);
  setenv("DODUO_CACHE_DIR", cache_dir.c_str(), 1);

  EnvOptions options = TinyOptions(BenchmarkMode::kWikiTable);
  options.use_cache = true;
  nn::Tensor first_weights;
  {
    Env env(options);
    env.PretrainedLm();  // trains and writes the cache
    EXPECT_FALSE(std::filesystem::is_empty(cache_dir));
    auto config = env.MakeDoduoConfig();
    util::Rng rng(2);
    core::DoduoModel model(config, &rng);
    env.InitializeFromPretrained(&model);
    first_weights = model.SnapshotWeights()[0];
  }
  {
    Env env(options);  // second environment loads from the cache
    auto config = env.MakeDoduoConfig();
    util::Rng rng(3);
    core::DoduoModel model(config, &rng);
    env.InitializeFromPretrained(&model);
    const nn::Tensor second_weights = model.SnapshotWeights()[0];
    ASSERT_TRUE(nn::SameShape(first_weights, second_weights));
    for (int64_t i = 0; i < first_weights.size(); ++i) {
      ASSERT_FLOAT_EQ(first_weights.data()[i], second_weights.data()[i]);
    }
  }
  unsetenv("DODUO_CACHE_DIR");
  std::filesystem::remove_all(cache_dir);
}

TEST(EnvTest, RunDoduoSmokeTest) {
  Env env(TinyOptions(BenchmarkMode::kWikiTable));
  DoduoVariant variant;
  variant.epochs = 2;
  const DoduoRun run = RunDoduo(&env, variant);
  EXPECT_GT(run.types.micro.f1, 0.0);
  EXPECT_TRUE(run.has_relations);
  EXPECT_EQ(run.history.valid_type_f1.size(), 2u);
}

TEST(ScaledTest, RespectsScaleEnvVar) {
  unsetenv("DODUO_SCALE");
  EXPECT_EQ(Scaled(100), 100);
  setenv("DODUO_SCALE", "0.25", 1);
  EXPECT_EQ(Scaled(100), 25);
  setenv("DODUO_SCALE", "0.001", 1);
  EXPECT_EQ(Scaled(100), 1);  // floor of 1
  unsetenv("DODUO_SCALE");
}

}  // namespace
}  // namespace doduo::experiments
