// Failure-injection integration test (the paper's "clean vs dirty data"
// future-work scenario): a model trained on clean tables must degrade
// gracefully — not collapse — when evaluated on corrupted tables.

#include "doduo/experiments/runners.h"
#include "doduo/synth/corruption.h"
#include "gtest/gtest.h"

namespace doduo::experiments {
namespace {

TEST(RobustnessTest, DirtyEvaluationDegradesGracefully) {
  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = 250;
  options.vocab_size = 900;
  options.hidden_dim = 32;
  options.num_layers = 1;
  options.num_heads = 2;
  options.ffn_dim = 64;
  options.max_positions = 96;
  options.pretrain_epochs = 3;
  options.corpus_fact_mentions = 1;
  options.corpus_list_mentions = 10;
  options.use_cache = false;
  options.seed = 17;
  Env env(options);

  DoduoVariant variant;
  variant.epochs = 15;
  DoduoRun run = RunDoduo(&env, variant);
  const double clean_f1 = run.types.micro.f1;
  ASSERT_GT(clean_f1, 0.30) << "model failed to train at all";

  // Corrupt the test tables: 15% missing cells + 10% typos.
  util::Rng rng(18);
  synth::CorruptionOptions corruption;
  corruption.missing_prob = 0.15;
  corruption.typo_prob = 0.10;
  const auto dirty =
      synth::CorruptDataset(env.dataset(), corruption, &rng);
  const auto dirty_result =
      run.trainer->EvaluateTypes(dirty, env.splits().test);

  // Graceful degradation: dirty F1 may drop but must stay well above
  // chance (~1/25) and within a bounded fraction of the clean score.
  EXPECT_GT(dirty_result.micro.f1, 0.25);
  EXPECT_GT(dirty_result.micro.f1, clean_f1 * 0.5);
  EXPECT_LE(dirty_result.micro.f1, clean_f1 + 0.05);
}

TEST(RobustnessTest, HeavyCorruptionHurtsMoreThanLight) {
  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = 250;
  options.vocab_size = 900;
  options.hidden_dim = 32;
  options.num_layers = 1;
  options.num_heads = 2;
  options.ffn_dim = 64;
  options.max_positions = 96;
  options.pretrain_epochs = 3;
  options.corpus_fact_mentions = 1;
  options.corpus_list_mentions = 10;
  options.use_cache = false;
  options.seed = 19;
  Env env(options);

  DoduoVariant variant;
  variant.epochs = 15;
  DoduoRun run = RunDoduo(&env, variant);

  util::Rng rng(20);
  synth::CorruptionOptions light;
  light.missing_prob = 0.05;
  synth::CorruptionOptions heavy;
  heavy.missing_prob = 0.6;
  heavy.misplace_prob = 0.3;
  const auto light_dirty = synth::CorruptDataset(env.dataset(), light, &rng);
  const auto heavy_dirty = synth::CorruptDataset(env.dataset(), heavy, &rng);
  const double light_f1 =
      run.trainer->EvaluateTypes(light_dirty, env.splits().test).micro.f1;
  const double heavy_f1 =
      run.trainer->EvaluateTypes(heavy_dirty, env.splits().test).micro.f1;
  EXPECT_GT(light_f1, heavy_f1);
}

}  // namespace
}  // namespace doduo::experiments
