#ifndef DODUO_TESTS_TESTING_GRADCHECK_H_
#define DODUO_TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>

#include "doduo/nn/tensor.h"
#include "gtest/gtest.h"

namespace doduo::testing {

/// Numerically verifies d(scalar loss)/d(input) against an analytic
/// gradient via central differences. `loss_fn` must be a pure function of
/// `*input` (it may run a layer forward internally each call).
///
/// Tolerances are loose because the stack is float32.
inline void ExpectInputGradientsClose(
    nn::Tensor* input, const std::function<double()>& loss_fn,
    const nn::Tensor& analytic_grad, double epsilon = 1e-3,
    double abs_tol = 2e-2, double rel_tol = 2e-2) {
  ASSERT_TRUE(nn::SameShape(*input, analytic_grad));
  float* data = input->data();
  for (int64_t i = 0; i < input->size(); ++i) {
    const float original = data[i];
    data[i] = original + static_cast<float>(epsilon);
    const double loss_plus = loss_fn();
    data[i] = original - static_cast<float>(epsilon);
    const double loss_minus = loss_fn();
    data[i] = original;
    const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    const double analytic = analytic_grad.data()[i];
    const double diff = std::fabs(numeric - analytic);
    const double scale = std::max({1.0, std::fabs(numeric),
                                   std::fabs(analytic)});
    EXPECT_LE(diff, abs_tol + rel_tol * scale)
        << "gradient mismatch at flat index " << i << ": numeric=" << numeric
        << " analytic=" << analytic;
  }
}

}  // namespace doduo::testing

#endif  // DODUO_TESTS_TESTING_GRADCHECK_H_
