// Golden skip reasons for the checked-in malformed-CSV corpus
// (tests/data/dirty): each fixture exercises one layer of the dirty-input
// pipeline — BOM stripping and bare-CR parsing in util::ParseCsv, UTF-8
// repair and null/header heuristics in table::ColumnSanitizer — and every
// column's classification is pinned here. tools/check.sh runs this suite
// under UBSan so the raw fixture bytes also double as a sanitizer workload.

#include <string>
#include <vector>

#include "doduo/table/sanitizer.h"
#include "doduo/table/table.h"
#include "doduo/util/csv.h"
#include "doduo/util/string_util.h"
#include "gtest/gtest.h"

namespace doduo::table {
namespace {

Table LoadFixture(const std::string& name) {
  const std::string path =
      std::string(DODUO_TEST_DATA_DIR) + "/dirty/" + name;
  auto rows = util::ReadCsvFile(path);
  EXPECT_TRUE(rows.ok()) << path << ": " << rows.status().ToString();
  auto table = TableFromCsvRows(rows.value(), /*has_header=*/true, name);
  EXPECT_TRUE(table.ok()) << path << ": " << table.status().ToString();
  return std::move(table).value();
}

std::vector<std::string> Reasons(const SanitizeResult& result) {
  std::vector<std::string> reasons;
  reasons.reserve(result.columns.size());
  for (const ColumnReport& report : result.columns) {
    reasons.emplace_back(SkipReasonName(report.skip));
  }
  return reasons;
}

TEST(DirtyFixturesTest, CatalogGetsBomStrippedAndNullHeaderColumnsSkipped) {
  const Table table = LoadFixture("catalog.csv");
  ASSERT_EQ(table.num_columns(), 4);
  // The UTF-8 BOM must not leak into the first header.
  EXPECT_EQ(table.column(0).name, "product");
  const auto result = ColumnSanitizer().Sanitize(table);
  EXPECT_EQ(Reasons(result),
            (std::vector<std::string>{"", "", "mostly_null", "header_like"}));
  EXPECT_EQ(result.num_skipped(), 2u);
}

TEST(DirtyFixturesTest, MojibakeParsesBareCrAndRepairsAllColumns) {
  const Table table = LoadFixture("mojibake.csv");
  ASSERT_EQ(table.num_columns(), 2);
  // Bare-CR line endings: two data rows, not one glued line.
  ASSERT_EQ(table.column(0).values.size(), 2u);
  EXPECT_EQ(table.column(1).values,
            (std::vector<std::string>{"paris", "lyon"}));
  const auto result = ColumnSanitizer().Sanitize(table);
  // Nothing is skipped — the invalid bytes are repaired, not fatal.
  EXPECT_EQ(Reasons(result), (std::vector<std::string>{"", ""}));
  ASSERT_TRUE(result.any_modified);
  EXPECT_TRUE(result.columns[0].name_repaired);   // latin-1 "café" header
  EXPECT_EQ(result.columns[0].cells_repaired, 1u);  // stray 0x80 in a cell
  for (const Column& column : result.table.columns()) {
    EXPECT_TRUE(util::Utf8IsValid(column.name));
    for (const std::string& value : column.values) {
      EXPECT_TRUE(util::Utf8IsValid(value));
    }
  }
}

TEST(DirtyFixturesTest, GhostHeaderOnlyFileSkipsEveryColumnAsEmpty) {
  const Table table = LoadFixture("ghost.csv");
  ASSERT_EQ(table.num_columns(), 3);
  const auto result = ColumnSanitizer().Sanitize(table);
  EXPECT_EQ(Reasons(result),
            (std::vector<std::string>{"empty_column", "empty_column",
                                      "empty_column"}));
  EXPECT_EQ(result.num_skipped(), 3u);
}

}  // namespace
}  // namespace doduo::table
