#include "doduo/table/render.h"

#include "gtest/gtest.h"

namespace doduo::table {
namespace {

Table MakeTable() {
  Table t("t");
  t.AddColumn({"film", {"happy feet", "cars"}});
  t.AddColumn({"year", {"2006", "2006"}});
  return t;
}

TEST(RenderTableTest, ContainsHeaderSeparatorAndValues) {
  const std::string out = RenderTable(MakeTable());
  EXPECT_NE(out.find("| film"), std::string::npos);
  EXPECT_NE(out.find("| year"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
  EXPECT_NE(out.find("happy feet"), std::string::npos);
  EXPECT_NE(out.find("2006"), std::string::npos);
}

TEST(RenderTableTest, TruncatesLongTables) {
  Table t("t");
  Column column;
  column.name = "n";
  for (int i = 0; i < 50; ++i) column.values.push_back(std::to_string(i));
  t.AddColumn(std::move(column));
  const std::string out = RenderTable(t, /*max_rows=*/3);
  EXPECT_NE(out.find("| 2"), std::string::npos);
  EXPECT_EQ(out.find("| 3 "), std::string::npos);
  EXPECT_NE(out.find("..."), std::string::npos);
}

TEST(RenderTableTest, ClipsWideCells) {
  Table t("t");
  t.AddColumn({"c", {"a very very very long cell value indeed"}});
  const std::string out = RenderTable(t, 5, /*max_cell_width=*/10);
  EXPECT_EQ(out.find("indeed"), std::string::npos);
}

TEST(RenderTableTest, RaggedColumnsPadWithEmpty) {
  Table t("t");
  t.AddColumn({"a", {"1", "2", "3"}});
  t.AddColumn({"b", {"x"}});
  const std::string out = RenderTable(t);
  EXPECT_NE(out.find("| 3"), std::string::npos);  // no crash on ragged rows
}

TEST(RenderTableTest, EmptyTable) {
  Table t("t");
  EXPECT_EQ(RenderTable(t), "(empty table)\n");
}

}  // namespace
}  // namespace doduo::table
