#include "doduo/table/serializer.h"

#include <algorithm>
#include <string>

#include "doduo/util/metrics.h"
#include "gtest/gtest.h"

namespace doduo::table {
namespace {

using text::Vocab;

class SerializerTest : public ::testing::Test {
 protected:
  SerializerTest() {
    for (const char* token :
         {"happy", "feet", "cars", "george", "miller", "john", "lasseter",
          "usa", "uk", "film", "director", "country"}) {
      vocab_.AddToken(token);
    }
  }

  Table MakeTable() const {
    Table t("t");
    t.AddColumn({"film", {"Happy Feet", "Cars"}});
    t.AddColumn({"director", {"George Miller", "John Lasseter"}});
    t.AddColumn({"country", {"USA", "UK"}});
    return t;
  }

  Vocab vocab_;
};

TEST_F(SerializerTest, TableWiseHasOneClsPerColumnAndTrailingSep) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  SerializedTable s = serializer.SerializeTable(MakeTable()).value();
  ASSERT_EQ(s.cls_positions.size(), 3u);
  for (int64_t pos : s.cls_positions) {
    EXPECT_EQ(s.token_ids[static_cast<size_t>(pos)], Vocab::kClsId);
  }
  EXPECT_EQ(s.token_ids.back(), Vocab::kSepId);
  // Exactly 3 CLS markers and 1 SEP in the whole sequence.
  EXPECT_EQ(std::count(s.token_ids.begin(), s.token_ids.end(),
                       Vocab::kClsId),
            3);
  EXPECT_EQ(std::count(s.token_ids.begin(), s.token_ids.end(),
                       Vocab::kSepId),
            1);
}

TEST_F(SerializerTest, OversizedSingleCellIsTruncatedWithMetricBump) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  // Budget: max_total_tokens=8, one column -> 6 content tokens.
  TableSerializer serializer(&tokenizer,
                             {.max_tokens_per_column = 32,
                              .max_total_tokens = 8});
  Table t("big");
  // One cell holding far more words than the whole budget.
  std::string huge;
  for (int i = 0; i < 50; ++i) huge += "happy feet ";
  t.AddColumn({"film", {huge}});
  auto* truncations =
      util::GetCounter("serializer.spans_truncated_total");
  const uint64_t before = truncations->value();
  SerializedTable s = serializer.SerializeTable(t).value();
  // [CLS] + 6 content tokens + [SEP]: the giant cell is cut, not an error.
  ASSERT_EQ(s.token_ids.size(), 8u);
  EXPECT_EQ(s.token_ids.front(), Vocab::kClsId);
  EXPECT_EQ(s.token_ids.back(), Vocab::kSepId);
  EXPECT_EQ(s.token_ids[1], vocab_.Id("happy"));
  EXPECT_EQ(truncations->value(), before + 1);
}

TEST_F(SerializerTest, BudgetedTokenizationMatchesFullTokenization) {
  // The budget-aware path must be byte-identical to tokenize-then-cut.
  text::WordPieceTokenizer tokenizer(&vocab_);
  Table t = MakeTable();
  for (int budget : {8, 12, 20, 160}) {
    TableSerializer serializer(&tokenizer,
                               {.max_total_tokens = budget});
    SerializedTable s = serializer.SerializeTable(t).value();
    // Reference: full per-cell encode, cut at the per-column budget.
    const int per_column = std::min(
        32, (budget - t.num_columns() - 1) / t.num_columns());
    std::vector<int> want;
    for (const Column& column : t.columns()) {
      want.push_back(Vocab::kClsId);
      std::vector<int> content;
      for (const std::string& value : column.values) {
        const auto ids = tokenizer.Encode(value);
        content.insert(content.end(), ids.begin(), ids.end());
        if (content.size() >= static_cast<size_t>(per_column)) break;
      }
      if (content.size() > static_cast<size_t>(per_column)) {
        content.resize(static_cast<size_t>(per_column));
      }
      want.insert(want.end(), content.begin(), content.end());
    }
    want.push_back(Vocab::kSepId);
    EXPECT_EQ(s.token_ids, want) << "budget=" << budget;
  }
}

TEST_F(SerializerTest, TableWiseContainsColumnValuesInOrder) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  SerializedTable s = serializer.SerializeTable(MakeTable()).value();
  // Column 0 tokens appear between cls_positions[0] and cls_positions[1].
  std::vector<int> col0(s.token_ids.begin() + s.cls_positions[0] + 1,
                        s.token_ids.begin() + s.cls_positions[1]);
  EXPECT_EQ(col0, (std::vector<int>{vocab_.Id("happy"), vocab_.Id("feet"),
                                    vocab_.Id("cars")}));
}

TEST_F(SerializerTest, MaxTokensPerColumnTruncates) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  SerializerOptions options;
  options.max_tokens_per_column = 1;
  TableSerializer serializer(&tokenizer, options);
  SerializedTable s = serializer.SerializeTable(MakeTable()).value();
  // 3 × ([CLS] + 1 token) + [SEP].
  EXPECT_EQ(s.token_ids.size(), 7u);
}

TEST_F(SerializerTest, TotalBudgetShrinksPerColumnShare) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  SerializerOptions options;
  options.max_tokens_per_column = 100;
  options.max_total_tokens = 10;  // 3 cols: (10 - 3 - 1)/3 = 2 tokens each
  TableSerializer serializer(&tokenizer, options);
  SerializedTable s = serializer.SerializeTable(MakeTable()).value();
  EXPECT_LE(s.token_ids.size(), 10u);
  ASSERT_EQ(s.cls_positions.size(), 3u);
  EXPECT_EQ(s.cls_positions[1] - s.cls_positions[0], 3);  // CLS + 2 tokens
}

TEST_F(SerializerTest, MetadataPrependsColumnName) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  SerializerOptions options;
  options.include_metadata = true;
  TableSerializer serializer(&tokenizer, options);
  SerializedTable s = serializer.SerializeTable(MakeTable()).value();
  EXPECT_EQ(s.token_ids[static_cast<size_t>(s.cls_positions[0]) + 1],
            vocab_.Id("film"));
  EXPECT_EQ(s.token_ids[static_cast<size_t>(s.cls_positions[1]) + 1],
            vocab_.Id("director"));
}

TEST_F(SerializerTest, SingleColumnSerialization) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  SerializedTable s = serializer.SerializeColumn(MakeTable(), 1).value();
  ASSERT_EQ(s.cls_positions.size(), 1u);
  EXPECT_EQ(s.token_ids.front(), Vocab::kClsId);
  EXPECT_EQ(s.token_ids.back(), Vocab::kSepId);
  EXPECT_EQ(s.token_ids[1], vocab_.Id("george"));
}

TEST_F(SerializerTest, ColumnPairSerialization) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  SerializedTable s = serializer.SerializeColumnPair(MakeTable(), 0, 2).value();
  ASSERT_EQ(s.cls_positions.size(), 2u);
  EXPECT_EQ(s.token_ids[static_cast<size_t>(s.cls_positions[0])],
            Vocab::kClsId);
  EXPECT_EQ(s.token_ids[static_cast<size_t>(s.cls_positions[1])],
            Vocab::kClsId);
  // Two [SEP]s: one after each column.
  EXPECT_EQ(std::count(s.token_ids.begin(), s.token_ids.end(),
                       Vocab::kSepId),
            2);
  EXPECT_EQ(s.token_ids.back(), Vocab::kSepId);
}

TEST_F(SerializerTest, MaxSupportedColumnsMatchesPaperFormula) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  // Paper Table 8 with 512-token BERT: 8 tokens/col → 56 cols,
  // 16 → 30, 32 → 15.
  for (const auto& [per_col, expected] :
       std::vector<std::pair<int, int>>{{8, 56}, {16, 30}, {32, 15}}) {
    SerializerOptions options;
    options.max_tokens_per_column = per_col;
    options.max_total_tokens = 512;
    TableSerializer serializer(&tokenizer, options);
    EXPECT_EQ(serializer.MaxSupportedColumns(), expected) << per_col;
  }
}

TEST_F(SerializerTest, UnknownValuesBecomeUnk) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  Table t("t");
  t.AddColumn({"x", {"zzzunknownzzz"}});
  SerializedTable s = serializer.SerializeTable(t).value();
  EXPECT_EQ(s.token_ids[1], Vocab::kUnkId);
}

TEST_F(SerializerTest, EmptyColumnStillGetsCls) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  Table t("t");
  t.AddColumn({"empty", {}});
  t.AddColumn({"film", {"Cars"}});
  SerializedTable s = serializer.SerializeTable(t).value();
  ASSERT_EQ(s.cls_positions.size(), 2u);
  EXPECT_EQ(s.cls_positions[1] - s.cls_positions[0], 1);  // only the CLS
}

TEST_F(SerializerTest, ZeroColumnTableIsInvalidArgument) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  auto result = serializer.SerializeTable(Table("no_cols"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("no_cols"), std::string::npos);
}

TEST_F(SerializerTest, TooManyColumnsForBudgetIsInvalidArgument) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  SerializerOptions options;
  options.max_total_tokens = 8;  // fits at most 7 CLS markers + SEP
  TableSerializer serializer(&tokenizer, options);
  Table t("too_wide");
  for (int c = 0; c < 8; ++c) t.AddColumn({"x", {"usa"}});
  auto result = serializer.SerializeTable(t);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("max_total_tokens"),
            std::string::npos);
  // One fewer column still fits (with a zero value budget).
  Table ok_table("just_fits");
  for (int c = 0; c < 7; ++c) ok_table.AddColumn({"x", {"usa"}});
  EXPECT_TRUE(serializer.SerializeTable(ok_table).ok());
}

TEST_F(SerializerTest, BadColumnIndexIsInvalidArgument) {
  text::WordPieceTokenizer tokenizer(&vocab_);
  TableSerializer serializer(&tokenizer, {});
  const Table t = MakeTable();
  for (int bad : {-1, 3, 100}) {
    auto single = serializer.SerializeColumn(t, bad);
    ASSERT_FALSE(single.ok()) << bad;
    EXPECT_EQ(single.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(single.status().message().find(std::to_string(bad)),
              std::string::npos);
    EXPECT_FALSE(serializer.SerializeColumnPair(t, 0, bad).ok()) << bad;
    EXPECT_FALSE(serializer.SerializeColumnPair(t, bad, 0).ok()) << bad;
  }
}

}  // namespace
}  // namespace doduo::table
