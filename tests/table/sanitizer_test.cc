#include "doduo/table/sanitizer.h"

#include <string>
#include <vector>

#include "doduo/util/string_util.h"
#include "gtest/gtest.h"

namespace doduo::table {
namespace {

Column MakeColumn(std::string name, std::vector<std::string> values) {
  Column column;
  column.name = std::move(name);
  column.values = std::move(values);
  return column;
}

TEST(SkipReasonTest, NamesAreStable) {
  EXPECT_STREQ(SkipReasonName(SkipReason::kNone), "");
  EXPECT_STREQ(SkipReasonName(SkipReason::kEmptyColumn), "empty_column");
  EXPECT_STREQ(SkipReasonName(SkipReason::kMostlyNull), "mostly_null");
  EXPECT_STREQ(SkipReasonName(SkipReason::kHeaderLike), "header_like");
}

TEST(NullMarkerTest, RecognizesConventionalMarkers) {
  EXPECT_TRUE(IsNullMarker(""));
  EXPECT_TRUE(IsNullMarker("   "));
  EXPECT_TRUE(IsNullMarker("NULL"));
  EXPECT_TRUE(IsNullMarker("n/a"));
  EXPECT_TRUE(IsNullMarker(" NaN "));
  EXPECT_TRUE(IsNullMarker("-"));
  EXPECT_FALSE(IsNullMarker("0"));
  EXPECT_FALSE(IsNullMarker("nope"));
  EXPECT_FALSE(IsNullMarker("--"));
}

TEST(ColumnSanitizerTest, CleanColumnIsAnnotatable) {
  ColumnSanitizer sanitizer;
  EXPECT_EQ(sanitizer.Classify(
                MakeColumn("city", {"oslo", "bergen", "tromso"})),
            SkipReason::kNone);
}

TEST(ColumnSanitizerTest, EmptyColumnIsSkipped) {
  ColumnSanitizer sanitizer;
  EXPECT_EQ(sanitizer.Classify(MakeColumn("ghost", {})),
            SkipReason::kEmptyColumn);
}

TEST(ColumnSanitizerTest, MostlyNullColumnIsSkipped) {
  ColumnSanitizer sanitizer({.max_null_ratio = 0.5});
  EXPECT_EQ(sanitizer.Classify(
                MakeColumn("sparse", {"", "null", "N/A", "x"})),
            SkipReason::kMostlyNull);
  // Exactly at the ratio is allowed; the skip needs a strict majority.
  EXPECT_EQ(sanitizer.Classify(MakeColumn("half", {"", "x"})),
            SkipReason::kNone);
}

TEST(ColumnSanitizerTest, AllNullColumnIsSkippedAtDefaultRatio) {
  ColumnSanitizer sanitizer;
  EXPECT_EQ(sanitizer.Classify(
                MakeColumn("void", {"", "null", "-", "n/a"})),
            SkipReason::kMostlyNull);
}

TEST(ColumnSanitizerTest, HeaderEchoColumnIsSkipped) {
  ColumnSanitizer sanitizer;
  // Concatenated exports repeat the header row inside the data region.
  EXPECT_EQ(sanitizer.Classify(
                MakeColumn("City", {"city", "CITY ", "oslo"})),
            SkipReason::kHeaderLike);
  // Headerless columns can never be header-like.
  EXPECT_EQ(sanitizer.Classify(MakeColumn("", {"", "x", "y"})),
            SkipReason::kNone);
}

TEST(ColumnSanitizerTest, CleanTableIsNotCopied) {
  Table table("t1");
  table.AddColumn(MakeColumn("name", {"alice", "bob"}));
  table.AddColumn(MakeColumn("age", {"3", "5"}));
  ColumnSanitizer sanitizer;
  const SanitizeResult result = sanitizer.Sanitize(table);
  EXPECT_FALSE(result.any_modified);
  EXPECT_EQ(result.num_skipped(), 0u);
  ASSERT_EQ(result.columns.size(), 2u);
  for (const ColumnReport& report : result.columns) {
    EXPECT_EQ(report.skip, SkipReason::kNone);
    EXPECT_FALSE(report.modified());
  }
  // The sanitized table is only populated on modification.
  EXPECT_EQ(result.table.num_columns(), 0);
}

TEST(ColumnSanitizerTest, InvalidUtf8CellsAreRepaired) {
  Table table("t2");
  table.AddColumn(MakeColumn("name", {"ok", "bad\xC3", "caf\xC3\xA9"}));
  ColumnSanitizer sanitizer;
  const SanitizeResult result = sanitizer.Sanitize(table);
  ASSERT_TRUE(result.any_modified);
  EXPECT_EQ(result.columns[0].cells_repaired, 1u);
  const Column& fixed = result.table.column(0);
  EXPECT_EQ(fixed.values[1], "bad\xEF\xBF\xBD");
  EXPECT_EQ(fixed.values[2], "caf\xC3\xA9");  // valid cell untouched
  EXPECT_TRUE(util::Utf8IsValid(fixed.values[1]));
}

TEST(ColumnSanitizerTest, InvalidHeaderIsRepaired) {
  Table table("t3");
  table.AddColumn(MakeColumn("hdr\xFF", {"a", "b"}));
  ColumnSanitizer sanitizer;
  const SanitizeResult result = sanitizer.Sanitize(table);
  ASSERT_TRUE(result.any_modified);
  EXPECT_TRUE(result.columns[0].name_repaired);
  EXPECT_EQ(result.table.column(0).name, "hdr\xEF\xBF\xBD");
}

TEST(ColumnSanitizerTest, OversizedCellsAreClampedOnCodePointBoundary) {
  Table table("t4");
  // 8-byte budget; the second cell is 9 bytes ending in a 2-byte sequence
  // that straddles the cut.
  table.AddColumn(MakeColumn("c", {"short", "1234567\xC3\xA9"}));
  ColumnSanitizer sanitizer({.max_cell_bytes = 8});
  const SanitizeResult result = sanitizer.Sanitize(table);
  ASSERT_TRUE(result.any_modified);
  EXPECT_EQ(result.columns[0].cells_clamped, 1u);
  EXPECT_EQ(result.table.column(0).values[1], "1234567");
  EXPECT_EQ(result.table.column(0).values[0], "short");
}

TEST(ColumnSanitizerTest, RepairedCellThatGrowsPastBudgetIsAlsoClamped) {
  Table table("t5");
  // Six invalid bytes repair to six U+FFFD (18 bytes), over an 8-byte cap.
  table.AddColumn(MakeColumn("c", {std::string(6, '\xFF'), "x"}));
  ColumnSanitizer sanitizer({.max_cell_bytes = 8});
  const SanitizeResult result = sanitizer.Sanitize(table);
  ASSERT_TRUE(result.any_modified);
  EXPECT_EQ(result.columns[0].cells_repaired, 1u);
  EXPECT_EQ(result.columns[0].cells_clamped, 1u);
  EXPECT_EQ(result.table.column(0).values[0], "\xEF\xBF\xBD\xEF\xBF\xBD");
}

TEST(ColumnSanitizerTest, SkippedColumnsAreLeftAsIs) {
  Table table("t6");
  table.AddColumn(MakeColumn("junk\xFF", {"", "null", "-"}));  // mostly null
  table.AddColumn(MakeColumn("name", {"bad\xC3", "ok"}));
  ColumnSanitizer sanitizer;
  const SanitizeResult result = sanitizer.Sanitize(table);
  ASSERT_TRUE(result.any_modified);
  EXPECT_EQ(result.columns[0].skip, SkipReason::kMostlyNull);
  EXPECT_FALSE(result.columns[0].modified());
  // The skipped column (including its bad header) is byte-for-byte intact.
  EXPECT_EQ(result.table.column(0).name, "junk\xFF");
  EXPECT_EQ(result.columns[1].cells_repaired, 1u);
  EXPECT_EQ(result.num_skipped(), 1u);
}

TEST(ColumnSanitizerTest, RepairCanBeDisabled) {
  Table table("t7");
  table.AddColumn(MakeColumn("c", {"bad\xC3"}));
  ColumnSanitizer sanitizer({.repair_utf8 = false});
  const SanitizeResult result = sanitizer.Sanitize(table);
  EXPECT_FALSE(result.any_modified);
}

}  // namespace
}  // namespace doduo::table
