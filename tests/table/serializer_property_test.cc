// Property sweeps for the table serializer: for any table and any budget,
// the output must respect the hard invariants the model depends on —
// one [CLS] per column at the recorded positions, the total-token cap,
// aligned row ids, and budget monotonicity.

#include <tuple>

#include "doduo/synth/table_generator.h"
#include "doduo/table/serializer.h"
#include "doduo/text/wordpiece_trainer.h"
#include "gtest/gtest.h"

namespace doduo::table {
namespace {

// Parameter: (max_tokens_per_column, max_total_tokens, include_metadata).
class SerializerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {
 protected:
  SerializerPropertyTest()
      : kb_(synth::KnowledgeBase::BuildWikiTableKb(5)) {
    synth::TableGeneratorOptions options;
    options.num_tables = 30;
    synth::TableGenerator generator(&kb_, options);
    util::Rng rng(6);
    dataset_ = generator.Generate(&rng);

    std::vector<std::string> lines;
    for (const auto& annotated : dataset_.tables) {
      for (const auto& column : annotated.table.columns()) {
        for (const auto& value : column.values) lines.push_back(value);
      }
    }
    text::WordPieceTrainer trainer({.vocab_size = 600,
                                    .min_pair_frequency = 2});
    vocab_ = trainer.TrainFromLines(lines);
  }

  synth::KnowledgeBase kb_;
  ColumnAnnotationDataset dataset_;
  text::Vocab vocab_;
};

TEST_P(SerializerPropertyTest, InvariantsHoldForEveryTable) {
  const auto [per_column, total, metadata] = GetParam();
  text::WordPieceTokenizer tokenizer(&vocab_);
  SerializerOptions options;
  options.max_tokens_per_column = per_column;
  options.max_total_tokens = total;
  options.include_metadata = metadata;
  TableSerializer serializer(&tokenizer, options);

  for (const auto& annotated : dataset_.tables) {
    const Table& table = annotated.table;
    const SerializedTable s = serializer.SerializeTable(table).value();

    // Hard cap respected.
    ASSERT_LE(static_cast<int>(s.token_ids.size()), total);
    // Aligned auxiliary arrays.
    ASSERT_EQ(s.row_ids.size(), s.token_ids.size());
    // One [CLS] per column, exactly at the recorded positions.
    ASSERT_EQ(s.cls_positions.size(),
              static_cast<size_t>(table.num_columns()));
    int cls_count = 0;
    for (int id : s.token_ids) {
      if (id == text::Vocab::kClsId) ++cls_count;
    }
    ASSERT_EQ(cls_count, table.num_columns());
    for (size_t c = 0; c < s.cls_positions.size(); ++c) {
      ASSERT_EQ(s.token_ids[static_cast<size_t>(s.cls_positions[c])],
                text::Vocab::kClsId);
      if (c > 0) {
        ASSERT_GT(s.cls_positions[c], s.cls_positions[c - 1]);
      }
    }
    // Trailing separator, and structural tokens carry row -1.
    ASSERT_EQ(s.token_ids.back(), text::Vocab::kSepId);
    for (size_t p = 0; p < s.token_ids.size(); ++p) {
      if (s.token_ids[p] == text::Vocab::kClsId ||
          s.token_ids[p] == text::Vocab::kSepId) {
        ASSERT_EQ(s.row_ids[p], -1);
      }
    }
  }
}

TEST_P(SerializerPropertyTest, SingleColumnAndPairShareInvariants) {
  const auto [per_column, total, metadata] = GetParam();
  text::WordPieceTokenizer tokenizer(&vocab_);
  SerializerOptions options;
  options.max_tokens_per_column = per_column;
  options.max_total_tokens = total;
  options.include_metadata = metadata;
  TableSerializer serializer(&tokenizer, options);

  for (const auto& annotated : dataset_.tables) {
    const Table& table = annotated.table;
    const SerializedTable single =
        serializer.SerializeColumn(table, 0).value();
    ASSERT_EQ(single.cls_positions.size(), 1u);
    ASSERT_LE(static_cast<int>(single.token_ids.size()), total);
    if (table.num_columns() >= 2) {
      const SerializedTable pair =
          serializer.SerializeColumnPair(table, 0, 1).value();
      ASSERT_EQ(pair.cls_positions.size(), 2u);
      ASSERT_LE(static_cast<int>(pair.token_ids.size()), total);
    }
  }
}

TEST_P(SerializerPropertyTest, BudgetMonotonicity) {
  const auto [per_column, total, metadata] = GetParam();
  text::WordPieceTokenizer tokenizer(&vocab_);
  SerializerOptions small_options;
  small_options.max_tokens_per_column = per_column;
  small_options.max_total_tokens = total;
  small_options.include_metadata = metadata;
  SerializerOptions big_options = small_options;
  big_options.max_tokens_per_column = per_column * 2;
  TableSerializer small_serializer(&tokenizer, small_options);
  TableSerializer big_serializer(&tokenizer, big_options);

  for (const auto& annotated : dataset_.tables) {
    ASSERT_GE(big_serializer.SerializeTable(annotated.table)
                  .value()
                  .token_ids.size(),
              small_serializer.SerializeTable(annotated.table)
                  .value()
                  .token_ids.size());
  }
  EXPECT_LE(big_serializer.MaxSupportedColumns(),
            small_serializer.MaxSupportedColumns());
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, SerializerPropertyTest,
    ::testing::Combine(::testing::Values(1, 4, 8, 32),
                       ::testing::Values(48, 96, 192),
                       ::testing::Bool()));

}  // namespace
}  // namespace doduo::table
