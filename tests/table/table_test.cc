#include "doduo/table/table.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace doduo::table {
namespace {

Table MakeTable() {
  Table t("t1");
  t.AddColumn({"film", {"Happy Feet", "Cars", "Flushed Away"}});
  t.AddColumn({"director", {"George Miller", "John Lasseter", "David Bowers"}});
  t.AddColumn({"country", {"USA", "UK", "France"}});
  return t;
}

TEST(TableTest, BasicAccessors) {
  Table t = MakeTable();
  EXPECT_EQ(t.id(), "t1");
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.column(1).name, "director");
  EXPECT_EQ(t.column(2).values[0], "USA");
}

TEST(TableTest, RaggedRowCount) {
  Table t;
  t.AddColumn({"a", {"1", "2"}});
  t.AddColumn({"b", {"1", "2", "3", "4"}});
  EXPECT_EQ(t.num_rows(), 4);
}

TEST(TableTest, ShuffleRowsKeepsRowsAligned) {
  Table t = MakeTable();
  util::Rng rng(1);
  t.ShuffleRows(&rng);
  // Each (film, director) pair must still co-occur on the same row.
  for (int r = 0; r < 3; ++r) {
    const std::string& film = t.column(0).values[static_cast<size_t>(r)];
    const std::string& director =
        t.column(1).values[static_cast<size_t>(r)];
    if (film == "Happy Feet") {
      EXPECT_EQ(director, "George Miller");
    }
    if (film == "Cars") {
      EXPECT_EQ(director, "John Lasseter");
    }
    if (film == "Flushed Away") {
      EXPECT_EQ(director, "David Bowers");
    }
  }
}

TEST(TableTest, ShuffleRowsPreservesMultiset) {
  Table t = MakeTable();
  util::Rng rng(2);
  auto before = t.column(0).values;
  t.ShuffleRows(&rng);
  auto after = t.column(0).values;
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(TableTest, PermuteColumns) {
  Table t = MakeTable();
  t.PermuteColumns({2, 0, 1});
  EXPECT_EQ(t.column(0).name, "country");
  EXPECT_EQ(t.column(1).name, "film");
  EXPECT_EQ(t.column(2).name, "director");
}

TEST(TableFromCsvTest, WithHeader) {
  auto result = TableFromCsvRows({{"name", "age"}, {"ada", "36"}},
                                 /*has_header=*/true, "csv1");
  ASSERT_TRUE(result.ok());
  const Table& t = result.value();
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.column(0).name, "name");
  EXPECT_EQ(t.column(1).values[0], "36");
}

TEST(TableFromCsvTest, WithoutHeader) {
  auto result = TableFromCsvRows({{"ada", "36"}}, /*has_header=*/false, "c");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().column(0).name, "");
  EXPECT_EQ(result.value().column(0).values[0], "ada");
}

TEST(TableFromCsvTest, EmptyFails) {
  EXPECT_FALSE(TableFromCsvRows({}, true, "x").ok());
  EXPECT_FALSE(TableFromCsvRows({{}}, false, "x").ok());
}

TEST(TableFromCsvTest, ShortRowsTolerated) {
  auto result = TableFromCsvRows({{"a", "b"}, {"1"}}, /*has_header=*/true,
                                 "x");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().column(0).values.size(), 1u);
  EXPECT_TRUE(result.value().column(1).values.empty());
}

}  // namespace
}  // namespace doduo::table
