#include "doduo/table/dataset.h"

#include <set>

#include "gtest/gtest.h"

namespace doduo::table {
namespace {

AnnotatedTable MakeAnnotated() {
  AnnotatedTable at;
  at.table.AddColumn({"film", {"Happy Feet", "Cars"}});
  at.table.AddColumn({"director", {"George Miller", "John Lasseter"}});
  at.table.AddColumn({"country", {"USA", "UK"}});
  at.column_types = {{0}, {1, 2}, {3}};
  at.relations = {{0, 1, {0}}, {0, 2, {1}}};
  return at;
}

TEST(LabelVocabTest, AddAndLookup) {
  LabelVocab vocab;
  EXPECT_EQ(vocab.AddLabel("film"), 0);
  EXPECT_EQ(vocab.AddLabel("person"), 1);
  EXPECT_EQ(vocab.AddLabel("film"), 0);  // idempotent
  EXPECT_EQ(vocab.Id("person"), 1);
  EXPECT_EQ(vocab.Id("missing"), -1);
  EXPECT_EQ(vocab.Name(1), "person");
  EXPECT_EQ(vocab.size(), 2);
}

TEST(SplitDatasetTest, PartitionIsDisjointAndComplete) {
  util::Rng rng(1);
  DatasetSplits splits = SplitDataset(100, 0.7, 0.1, &rng);
  EXPECT_EQ(splits.train.size(), 70u);
  EXPECT_EQ(splits.valid.size(), 10u);
  EXPECT_EQ(splits.test.size(), 20u);
  std::set<size_t> all;
  for (const auto* part : {&splits.train, &splits.valid, &splits.test}) {
    for (size_t idx : *part) {
      EXPECT_TRUE(all.insert(idx).second) << "duplicate index " << idx;
      EXPECT_LT(idx, 100u);
    }
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitDatasetTest, DeterministicGivenSeed) {
  util::Rng rng1(5);
  util::Rng rng2(5);
  DatasetSplits a = SplitDataset(50, 0.8, 0.1, &rng1);
  DatasetSplits b = SplitDataset(50, 0.8, 0.1, &rng2);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

TEST(SubsampleIndicesTest, TakesPrefix) {
  std::vector<size_t> indices = {5, 3, 9, 1};
  EXPECT_EQ(SubsampleIndices(indices, 0.5),
            (std::vector<size_t>{5, 3}));
  EXPECT_EQ(SubsampleIndices(indices, 1.0), indices);
  // Never empty.
  EXPECT_EQ(SubsampleIndices(indices, 0.01).size(), 1u);
}

TEST(ShuffleAllRowsTest, LabelsUntouched) {
  std::vector<AnnotatedTable> tables = {MakeAnnotated()};
  util::Rng rng(2);
  ShuffleAllRows(&tables, &rng);
  EXPECT_EQ(tables[0].column_types[1], (std::vector<int>{1, 2}));
  // Row alignment preserved.
  for (size_t r = 0; r < 2; ++r) {
    const std::string& film = tables[0].table.column(0).values[r];
    const std::string& director = tables[0].table.column(1).values[r];
    if (film == "Happy Feet") {
      EXPECT_EQ(director, "George Miller");
    }
    if (film == "Cars") {
      EXPECT_EQ(director, "John Lasseter");
    }
  }
}

TEST(ShuffleAllColumnsTest, LabelsFollowColumns) {
  std::vector<AnnotatedTable> tables = {MakeAnnotated()};
  util::Rng rng(3);
  ShuffleAllColumns(&tables, &rng);
  const AnnotatedTable& t = tables[0];
  for (int c = 0; c < 3; ++c) {
    const std::string& name = t.table.column(c).name;
    const std::vector<int>& types =
        t.column_types[static_cast<size_t>(c)];
    if (name == "film") {
      EXPECT_EQ(types, (std::vector<int>{0}));
    }
    if (name == "director") {
      EXPECT_EQ(types, (std::vector<int>{1, 2}));
    }
    if (name == "country") {
      EXPECT_EQ(types, (std::vector<int>{3}));
    }
  }
  // Relations still connect film→director and film→country.
  for (const RelationAnnotation& rel : t.relations) {
    EXPECT_EQ(t.table.column(rel.column_a).name, "film");
    if (rel.labels[0] == 0) {
      EXPECT_EQ(t.table.column(rel.column_b).name, "director");
    } else {
      EXPECT_EQ(t.table.column(rel.column_b).name, "country");
    }
  }
}

TEST(DatasetCountsTest, ColumnsAndRelations) {
  ColumnAnnotationDataset dataset;
  dataset.tables.push_back(MakeAnnotated());
  dataset.tables.push_back(MakeAnnotated());
  EXPECT_EQ(dataset.num_columns(), 6);
  EXPECT_EQ(dataset.num_relations(), 4);
}

}  // namespace
}  // namespace doduo::table
