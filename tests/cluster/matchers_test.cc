#include "doduo/cluster/matchers.h"

#include "doduo/cluster/union_find.h"
#include "gtest/gtest.h"

namespace doduo::cluster {
namespace {

std::vector<table::Table> MakeTables() {
  table::Table a("a");
  a.AddColumn({"user_id", {"u1", "u2", "u3"}});
  a.AddColumn({"rating", {"4.5", "3.0", "5.0"}});
  table::Table b("b");
  b.AddColumn({"uid", {"u2", "u4"}});
  b.AddColumn({"score", {"2.0", "4.0"}});
  b.AddColumn({"user_identifier", {"u9", "u8"}});
  return {a, b};
}

TEST(UnionFindTest, Basics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(3, 4));
  EXPECT_EQ(uf.num_components(), 3);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(3));
  const auto ids = uf.ComponentIds();
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[3], ids[4]);
  EXPECT_NE(ids[0], ids[2]);
}

TEST(ComaNameSimilarityTest, OrderingMakesSense) {
  EXPECT_DOUBLE_EQ(ComaMatcher::NameSimilarity("user_id", "USER_ID"), 1.0);
  const double close =
      ComaMatcher::NameSimilarity("user_id", "user_identifier");
  const double far = ComaMatcher::NameSimilarity("user_id", "rating");
  EXPECT_GT(close, far);
  EXPECT_GT(close, 0.4);
  EXPECT_LT(far, 0.3);
}

TEST(ComaMatcherTest, MatchesSimilarNamesAcrossTables) {
  ComaMatcher matcher(0.4);
  const auto matches = matcher.Match(MakeTables());
  // Flat indices: a.user_id=0, a.rating=1, b.uid=2, b.score=3,
  // b.user_identifier=4. Expect (0, 4) matched.
  bool found = false;
  for (const auto& [i, j] : matches) {
    if (i == 0 && j == 4) found = true;
    // Cross-table only: flat indices 0-1 are table a, 2-4 are table b.
    EXPECT_TRUE((i < 2) != (j < 2)) << i << "," << j;
  }
  EXPECT_TRUE(found);
}

TEST(ComaMatcherTest, NoWithinTableMatches) {
  table::Table t("t");
  t.AddColumn({"same", {"x"}});
  t.AddColumn({"same", {"y"}});
  ComaMatcher matcher(0.5);
  EXPECT_TRUE(matcher.Match({t}).empty());
}

TEST(ValueOverlapTest, SetOverlapAndNumericRanges) {
  table::Column a{"a", {"red", "green", "blue"}};
  table::Column b{"b", {"green", "blue", "yellow"}};
  EXPECT_GT(DistributionBasedMatcher::ValueOverlap(a, b), 0.6);

  table::Column c{"c", {"cat", "dog"}};
  EXPECT_EQ(DistributionBasedMatcher::ValueOverlap(a, c), 0.0);

  table::Column n1{"n", {"10", "20", "30"}};
  table::Column n2{"n", {"15", "25"}};
  table::Column n3{"n", {"1000", "2000"}};
  EXPECT_GT(DistributionBasedMatcher::ValueOverlap(n1, n2), 0.4);
  EXPECT_LT(DistributionBasedMatcher::ValueOverlap(n1, n3), 0.05);
}

TEST(DistributionBasedMatcherTest, MatchesOverlappingValueColumns) {
  DistributionBasedMatcher matcher(0.3);
  const auto matches = matcher.Match(MakeTables());
  // a.user_id ({u1,u2,u3}) overlaps b.uid ({u2,u4}) → indices (0, 2).
  bool found = false;
  for (const auto& [i, j] : matches) {
    if (i == 0 && j == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ClustersFromMatchesTest, ComponentsBecomeClusters) {
  const auto clusters = ClustersFromMatches(5, {{0, 2}, {2, 4}});
  EXPECT_EQ(clusters[0], clusters[2]);
  EXPECT_EQ(clusters[2], clusters[4]);
  EXPECT_NE(clusters[0], clusters[1]);
  EXPECT_NE(clusters[1], clusters[3]);
}

TEST(TotalColumnsTest, Counts) {
  EXPECT_EQ(TotalColumns(MakeTables()), 5);
  EXPECT_EQ(TotalColumns({}), 0);
}

}  // namespace
}  // namespace doduo::cluster
