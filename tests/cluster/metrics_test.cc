#include "doduo/cluster/metrics.h"

#include "gtest/gtest.h"

namespace doduo::cluster {
namespace {

TEST(ClusteringScoresTest, PerfectClusteringScoresOne) {
  const auto scores = ScoreClustering({0, 0, 1, 1, 2}, {5, 5, 7, 7, 9});
  EXPECT_NEAR(scores.homogeneity, 1.0, 1e-9);
  EXPECT_NEAR(scores.completeness, 1.0, 1e-9);
  EXPECT_NEAR(scores.v_measure, 1.0, 1e-9);
}

TEST(ClusteringScoresTest, LabelPermutationInvariant) {
  const auto a = ScoreClustering({0, 0, 1, 1}, {0, 0, 1, 1});
  const auto b = ScoreClustering({9, 9, 3, 3}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(a.v_measure, b.v_measure);
}

TEST(ClusteringScoresTest, SingleClusterIsCompleteButNotHomogeneous) {
  const auto scores = ScoreClustering({0, 0, 0, 0}, {0, 0, 1, 1});
  EXPECT_NEAR(scores.completeness, 1.0, 1e-9);
  EXPECT_NEAR(scores.homogeneity, 0.0, 1e-9);
  EXPECT_NEAR(scores.v_measure, 0.0, 1e-9);
}

TEST(ClusteringScoresTest, SingletonsAreHomogeneousButIncomplete) {
  // Each class of size 2 splits into two singletons: H(K|C) = ln 2 and
  // H(K) = ln 4, so completeness = 1 - ln2/ln4 = 0.5 exactly.
  const auto scores = ScoreClustering({0, 1, 2, 3}, {0, 0, 1, 1});
  EXPECT_NEAR(scores.homogeneity, 1.0, 1e-9);
  EXPECT_NEAR(scores.completeness, 0.5, 1e-9);
}

TEST(ClusteringScoresTest, SplittingOneClassHurtsCompletenessOnly) {
  // Classes {0,0,1,1}; prediction splits class 0 into two clusters.
  const auto scores = ScoreClustering({0, 2, 1, 1}, {0, 0, 1, 1});
  EXPECT_NEAR(scores.homogeneity, 1.0, 1e-9);
  EXPECT_LT(scores.completeness, 1.0);
  EXPECT_GT(scores.completeness, 0.3);
}

TEST(ClusteringScoresTest, MergingTwoClassesHurtsHomogeneityOnly) {
  const auto scores = ScoreClustering({0, 0, 0, 0, 1, 1},
                                      {0, 0, 1, 1, 2, 2});
  EXPECT_LT(scores.homogeneity, 1.0);
  EXPECT_NEAR(scores.completeness, 1.0, 1e-9);
}

TEST(ClusteringScoresTest, VMeasureIsHarmonicMean) {
  const auto scores = ScoreClustering({0, 0, 0, 1, 2, 2},
                                      {0, 0, 1, 1, 2, 2});
  const double expected =
      2.0 * scores.homogeneity * scores.completeness /
      (scores.homogeneity + scores.completeness);
  EXPECT_NEAR(scores.v_measure, expected, 1e-12);
}

}  // namespace
}  // namespace doduo::cluster
