// Property sweeps for k-means: valid assignments, non-increasing inertia
// in k, determinism — across point distributions and cluster counts.

#include <set>
#include <tuple>

#include "doduo/cluster/kmeans.h"
#include "gtest/gtest.h"

namespace doduo::cluster {
namespace {

// Parameter: (num_points, dims, k, seed).
class KMeansPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(KMeansPropertyTest, AssignmentsValidAndAllowedRange) {
  const auto [n, d, k, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed));
  nn::Tensor points({n, d});
  points.FillNormal(&rng, 1.0f);
  KMeans::Options options;
  options.k = k;
  options.seed = static_cast<uint64_t>(seed) + 1;
  KMeans kmeans(options);
  const auto assignment = kmeans.Cluster(points);
  ASSERT_EQ(assignment.size(), static_cast<size_t>(n));
  for (int label : assignment) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, k);
  }
  EXPECT_GE(kmeans.last_inertia(), 0.0);
}

TEST_P(KMeansPropertyTest, MoreClustersNeverIncreaseInertia) {
  const auto [n, d, k, seed] = GetParam();
  if (k + 2 > n) GTEST_SKIP() << "not enough points for k+2";
  util::Rng rng(static_cast<uint64_t>(seed) + 7);
  nn::Tensor points({n, d});
  points.FillNormal(&rng, 1.0f);

  KMeans::Options small_options;
  small_options.k = k;
  small_options.restarts = 6;
  small_options.seed = 3;
  KMeans small(small_options);
  small.Cluster(points);
  const double small_inertia = small.last_inertia();

  KMeans::Options big_options = small_options;
  big_options.k = k + 2;
  KMeans big(big_options);
  big.Cluster(points);
  // Lloyd's with restarts is a heuristic; allow a small tolerance.
  EXPECT_LE(big.last_inertia(), small_inertia * 1.05 + 1e-9);
}

TEST_P(KMeansPropertyTest, DeterministicAcrossCalls) {
  const auto [n, d, k, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 11);
  nn::Tensor points({n, d});
  points.FillNormal(&rng, 1.0f);
  KMeans::Options options;
  options.k = k;
  options.seed = 5;
  KMeans kmeans(options);
  EXPECT_EQ(kmeans.Cluster(points), kmeans.Cluster(points));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KMeansPropertyTest,
    ::testing::Combine(::testing::Values(30, 100),
                       ::testing::Values(2, 16),
                       ::testing::Values(2, 5, 10),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace doduo::cluster
