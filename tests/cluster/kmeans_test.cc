#include "doduo/cluster/kmeans.h"

#include <set>

#include "gtest/gtest.h"

namespace doduo::cluster {
namespace {

TEST(KMeansTest, SeparatesWellSeparatedBlobs) {
  util::Rng rng(1);
  const int per_cluster = 30;
  nn::Tensor points({3 * per_cluster, 2});
  for (int c = 0; c < 3; ++c) {
    const double cx = c * 20.0;
    for (int i = 0; i < per_cluster; ++i) {
      const int row = c * per_cluster + i;
      points.at(row, 0) = static_cast<float>(rng.Normal(cx, 0.5));
      points.at(row, 1) = static_cast<float>(rng.Normal(0.0, 0.5));
    }
  }
  KMeans::Options options;
  options.k = 3;
  KMeans kmeans(options);
  const std::vector<int> assignment = kmeans.Cluster(points);

  // Every blob maps to exactly one cluster id, and ids differ per blob.
  std::set<int> blob_ids;
  for (int c = 0; c < 3; ++c) {
    const int first = assignment[static_cast<size_t>(c * per_cluster)];
    for (int i = 0; i < per_cluster; ++i) {
      EXPECT_EQ(assignment[static_cast<size_t>(c * per_cluster + i)], first);
    }
    blob_ids.insert(first);
  }
  EXPECT_EQ(blob_ids.size(), 3u);
}

TEST(KMeansTest, AssignmentsInRange) {
  util::Rng rng(2);
  nn::Tensor points({50, 4});
  points.FillNormal(&rng, 1.0f);
  KMeans::Options options;
  options.k = 7;
  KMeans kmeans(options);
  for (int label : kmeans.Cluster(points)) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 7);
  }
  EXPECT_GT(kmeans.last_inertia(), 0.0);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  util::Rng rng(3);
  nn::Tensor points({40, 3});
  points.FillNormal(&rng, 1.0f);
  KMeans::Options options;
  options.k = 4;
  options.seed = 9;
  KMeans a(options);
  KMeans b(options);
  EXPECT_EQ(a.Cluster(points), b.Cluster(points));
}

TEST(KMeansTest, DuplicatePointsHandled) {
  nn::Tensor points = nn::Tensor::Full({10, 2}, 1.0f);
  KMeans::Options options;
  options.k = 2;
  KMeans kmeans(options);
  const auto assignment = kmeans.Cluster(points);
  EXPECT_EQ(assignment.size(), 10u);
  EXPECT_NEAR(kmeans.last_inertia(), 0.0, 1e-9);
}

TEST(NormalizeRowsTest, UnitNormsAndZeroRowsStay) {
  nn::Tensor points = nn::Tensor::FromVector({2, 2}, {3, 4, 0, 0});
  NormalizeRows(&points);
  EXPECT_FLOAT_EQ(points.at(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(points.at(0, 1), 0.8f);
  EXPECT_FLOAT_EQ(points.at(1, 0), 0.0f);
}

}  // namespace
}  // namespace doduo::cluster
