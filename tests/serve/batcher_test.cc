// Deterministic unit tests for the dynamic batcher (DESIGN §12): the
// BatchQueue state machine is driven with an explicit synthetic timeline,
// and DynamicBatcher runs in manual_drain mode with an injected clock — no
// real sockets, no real sleeps, no wall-clock dependence anywhere.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "doduo/serve/batcher.h"
#include "doduo/util/status.h"
#include "gtest/gtest.h"
#include "serve/serve_test_util.h"

namespace doduo::serve {
namespace {

PendingRequest Request(uint64_t id) {
  PendingRequest request;
  request.id = id;
  request.table = testing::MakeTable(static_cast<int>(id));
  return request;
}

std::vector<uint64_t> Ids(const std::vector<PendingRequest>& batch) {
  std::vector<uint64_t> ids;
  ids.reserve(batch.size());
  for (const PendingRequest& request : batch) ids.push_back(request.id);
  return ids;
}

// -- BatchQueue ---------------------------------------------------------------

TEST(BatchQueueTest, FlushesWhenBatchFills) {
  BatchQueue queue(/*max_batch_size=*/3, /*max_wait_us=*/1000,
                   /*max_queue_depth=*/16);
  ASSERT_TRUE(queue.Enqueue(Request(1), 10).ok());
  ASSERT_TRUE(queue.Enqueue(Request(2), 11).ok());
  EXPECT_FALSE(queue.Ready(12));  // neither full nor expired
  EXPECT_TRUE(queue.CutBatch(12, /*force=*/false).empty());
  ASSERT_TRUE(queue.Enqueue(Request(3), 12).ok());
  EXPECT_TRUE(queue.Ready(12));  // full, regardless of elapsed time
  const auto batch = queue.CutBatch(12, /*force=*/false);
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BatchQueueTest, FlushesWhenOldestRequestExpires) {
  BatchQueue queue(/*max_batch_size=*/8, /*max_wait_us=*/1000,
                   /*max_queue_depth=*/16);
  ASSERT_TRUE(queue.Enqueue(Request(1), 100).ok());
  ASSERT_TRUE(queue.Enqueue(Request(2), 600).ok());
  EXPECT_EQ(queue.NextDeadlineUs(), 1100);  // oldest request's deadline
  EXPECT_FALSE(queue.Ready(1099));
  EXPECT_TRUE(queue.Ready(1100));
  // The deadline flush takes every waiting request, not just the expired
  // one.
  EXPECT_EQ(Ids(queue.CutBatch(1100, /*force=*/false)),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(queue.NextDeadlineUs(), -1);
}

TEST(BatchQueueTest, CutBatchKeepsFifoOrderAndCapsAtBatchSize) {
  BatchQueue queue(/*max_batch_size=*/2, /*max_wait_us=*/0,
                   /*max_queue_depth=*/16);
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(queue.Enqueue(Request(id), static_cast<int64_t>(id)).ok());
  }
  EXPECT_EQ(Ids(queue.CutBatch(10, false)), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(Ids(queue.CutBatch(10, false)), (std::vector<uint64_t>{3, 4}));
  EXPECT_EQ(Ids(queue.CutBatch(10, false)), (std::vector<uint64_t>{5}));
  EXPECT_TRUE(queue.CutBatch(10, false).empty());
}

TEST(BatchQueueTest, RejectsWhenFullAndLeavesRequestIntact) {
  BatchQueue queue(/*max_batch_size=*/4, /*max_wait_us=*/1000,
                   /*max_queue_depth=*/2);
  ASSERT_TRUE(queue.Enqueue(Request(1), 0).ok());
  ASSERT_TRUE(queue.Enqueue(Request(2), 0).ok());
  PendingRequest rejected = Request(3);
  bool callback_alive = false;
  rejected.callback = [&callback_alive](util::Result<TypePrediction>) {
    callback_alive = true;
  };
  const util::Status status = queue.Enqueue(std::move(rejected), 0);
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2u);
  // On rejection the request must NOT have been moved from: the caller
  // still owns the callback and can deliver the backpressure error.
  ASSERT_TRUE(rejected.callback != nullptr);
  rejected.callback(status);
  EXPECT_TRUE(callback_alive);
  // Draining frees capacity again.
  EXPECT_EQ(queue.CutBatch(0, /*force=*/true).size(), 2u);
  EXPECT_TRUE(queue.Enqueue(Request(4), 1).ok());
}

TEST(BatchQueueTest, ForceFlushesPartialBatch) {
  BatchQueue queue(/*max_batch_size=*/8, /*max_wait_us=*/1000000,
                   /*max_queue_depth=*/16);
  ASSERT_TRUE(queue.Enqueue(Request(1), 0).ok());
  EXPECT_TRUE(queue.CutBatch(1, /*force=*/false).empty());
  EXPECT_EQ(Ids(queue.CutBatch(1, /*force=*/true)),
            (std::vector<uint64_t>{1}));
}

// -- DynamicBatcher (manual drain, injected clock) ---------------------------

class DynamicBatcherTest : public ::testing::Test {
 protected:
  DynamicBatcherTest() : pool_(model_.MakePool(1)) {}

  BatcherOptions Options(int max_batch, int64_t max_wait, int depth) {
    BatcherOptions options;
    options.max_batch_size = max_batch;
    options.max_wait_us = max_wait;
    options.max_queue_depth = depth;
    options.manual_drain = true;
    options.clock_us = [this] { return now_us_; };
    return options;
  }

  testing::TestModel model_;
  std::unique_ptr<core::ReplicaPool> pool_;
  int64_t now_us_ = 0;
};

TEST_F(DynamicBatcherTest, DrainMatchesSequentialAnnotatorExactly) {
  DynamicBatcher batcher(pool_.get(), Options(4, 1000, 16));
  std::vector<uint64_t> completed;
  std::vector<util::Result<TypePrediction>> results;
  for (uint64_t id = 0; id < 4; ++id) {
    batcher.Submit(id, testing::MakeTable(static_cast<int>(id)),
                   [&, id](util::Result<TypePrediction> result) {
                     completed.push_back(id);
                     results.push_back(std::move(result));
                   });
  }
  EXPECT_EQ(batcher.queue_depth(), 4u);
  ASSERT_EQ(batcher.DrainOnce(/*force=*/false), 4u);  // batch is full
  ASSERT_EQ(completed, (std::vector<uint64_t>{0, 1, 2, 3}));  // FIFO
  core::Annotator annotator = model_.MakeAnnotator();
  for (uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(results[id].ok()) << results[id].status().ToString();
    auto expected = annotator.AnnotateTypes(testing::MakeTable(
        static_cast<int>(id)));
    ASSERT_TRUE(expected.ok());
    // Batched-through-the-server output must be byte-identical to the
    // sequential path (same weights, bit-deterministic kernels).
    EXPECT_EQ(results[id].value(), expected.value()) << "request " << id;
  }
}

TEST_F(DynamicBatcherTest, DeadlineFlushUsesInjectedClock) {
  DynamicBatcher batcher(pool_.get(), Options(8, 500, 16));
  int completions = 0;
  now_us_ = 1000;
  batcher.Submit(1, testing::MakeTable(1),
                 [&](util::Result<TypePrediction> result) {
                   EXPECT_TRUE(result.ok());
                   ++completions;
                 });
  EXPECT_EQ(batcher.DrainOnce(/*force=*/false), 0u);  // not expired yet
  now_us_ = 1499;
  EXPECT_EQ(batcher.DrainOnce(/*force=*/false), 0u);
  now_us_ = 1500;  // enqueue + max_wait reached
  EXPECT_EQ(batcher.DrainOnce(/*force=*/false), 1u);
  EXPECT_EQ(completions, 1);
}

TEST_F(DynamicBatcherTest, RejectsWithResourceExhaustedWhenQueueFull) {
  DynamicBatcher batcher(pool_.get(), Options(8, 1000, /*depth=*/2));
  int ok_callbacks = 0;
  int rejections = 0;
  for (uint64_t id = 0; id < 5; ++id) {
    batcher.Submit(id, testing::MakeTable(static_cast<int>(id)),
                   [&](util::Result<TypePrediction> result) {
                     if (result.ok()) {
                       ++ok_callbacks;
                     } else {
                       EXPECT_EQ(result.status().code(),
                                 util::StatusCode::kResourceExhausted);
                       ++rejections;
                     }
                   });
  }
  // Backpressure is synchronous: the three overflow submits were already
  // answered, the two accepted ones complete on drain.
  EXPECT_EQ(rejections, 3);
  EXPECT_EQ(ok_callbacks, 0);
  EXPECT_EQ(batcher.DrainOnce(/*force=*/true), 2u);
  EXPECT_EQ(ok_callbacks, 2);
  EXPECT_EQ(rejections, 3);
}

TEST_F(DynamicBatcherTest, BadTableFailsAloneViaPerRequestFallback) {
  DynamicBatcher batcher(pool_.get(), Options(4, 1000, 16));
  std::vector<bool> ok_by_request;
  auto record = [&](util::Result<TypePrediction> result) {
    ok_by_request.push_back(result.ok());
  };
  batcher.Submit(0, testing::MakeTable(0), record);
  batcher.Submit(1, testing::MakeBadTable(), record);
  batcher.Submit(2, testing::MakeTable(2), record);
  EXPECT_EQ(batcher.DrainOnce(/*force=*/true), 3u);
  // The malformed table fails the whole-batch call; the fallback retries
  // each request alone so only the offender is rejected.
  EXPECT_EQ(ok_by_request, (std::vector<bool>{true, false, true}));
}

TEST_F(DynamicBatcherTest, StopDrainsEveryAcceptedRequest) {
  DynamicBatcher batcher(pool_.get(), Options(4, 1000000, 64));
  int completions = 0;
  for (uint64_t id = 0; id < 10; ++id) {
    batcher.Submit(id, testing::MakeTable(static_cast<int>(id)),
                   [&](util::Result<TypePrediction> result) {
                     EXPECT_TRUE(result.ok());
                     ++completions;
                   });
  }
  batcher.Stop();  // exactly one callback per accepted request, no losses
  EXPECT_EQ(completions, 10);
  // After Stop, new submits are rejected rather than silently dropped.
  int late_status_ok = -1;
  batcher.Submit(99, testing::MakeTable(0),
                 [&](util::Result<TypePrediction> result) {
                   late_status_ok = result.ok() ? 1 : 0;
                   EXPECT_EQ(result.status().code(),
                             util::StatusCode::kResourceExhausted);
                 });
  EXPECT_EQ(late_status_ok, 0);
}

TEST_F(DynamicBatcherTest, MixedBatchRoutesPlainAndRobustRequests) {
  // One batch carrying every request kind: plain, robust sanitized, robust
  // unsanitized, and robust with a per-request abstention threshold. Each
  // must match its own scalar-path ground truth — co-batching changes
  // nothing.
  DynamicBatcher batcher(pool_.get(), Options(8, 1000, 16));
  table::Table dirty("dirty");
  dirty.AddColumn({"void", {"", "null", "-"}});
  dirty.AddColumn({"a", {"alpha", "beta"}});

  util::Result<TypePrediction> plain_result =
      util::Status::FailedPrecondition("callback never fired");
  // Keyed by request id: groups fire in (plain, sanitized, raw) order, not
  // submission order, and this test is about routing, not ordering.
  std::map<uint64_t, util::Result<RobustPrediction>> robust_results;
  batcher.Submit(0, testing::MakeTable(0),
                 [&](util::Result<TypePrediction> result) {
                   plain_result = std::move(result);
                 });
  auto record = [&](uint64_t id) {
    return [&, id](util::Result<RobustPrediction> result) {
      robust_results.emplace(id, std::move(result));
    };
  };
  batcher.SubmitRobust(1, dirty, /*sanitize=*/true, /*abstain_below=*/0.0,
                       record(1));
  batcher.SubmitRobust(2, dirty, /*sanitize=*/false, /*abstain_below=*/0.0,
                       record(2));
  batcher.SubmitRobust(3, testing::MakeTable(0), /*sanitize=*/true,
                       /*abstain_below=*/1.01, record(3));
  EXPECT_EQ(batcher.DrainOnce(/*force=*/true), 4u);

  core::Annotator annotator = model_.MakeAnnotator();
  auto expected_plain = annotator.AnnotateTypes(testing::MakeTable(0));
  ASSERT_TRUE(expected_plain.ok());
  ASSERT_TRUE(plain_result.ok()) << plain_result.status().ToString();
  EXPECT_EQ(plain_result.value(), expected_plain.value());

  ASSERT_EQ(robust_results.size(), 3u);
  for (const auto& [id, result] : robust_results) {
    ASSERT_TRUE(result.ok()) << "id " << id << ": "
                             << result.status().ToString();
  }
  // Sanitized: the mostly-null column is skipped, the clean one annotated.
  ASSERT_EQ(robust_results.at(1).value().size(), 2u);
  EXPECT_EQ(robust_results.at(1).value()[0].skipped_reason, "mostly_null");
  EXPECT_TRUE(robust_results.at(1).value()[1].annotated());
  // Unsanitized: no skip classification, both columns annotated as-is.
  ASSERT_EQ(robust_results.at(2).value().size(), 2u);
  EXPECT_TRUE(robust_results.at(2).value()[0].annotated());
  EXPECT_TRUE(robust_results.at(2).value()[1].annotated());
  // Threshold above 1.0: every annotatable column abstains, and the
  // threshold applied to THIS request did not leak onto its co-batched
  // neighbours (checked above: their columns stayed annotated).
  for (const core::ColumnOutcome& outcome : robust_results.at(3).value()) {
    EXPECT_TRUE(outcome.abstained);
    EXPECT_TRUE(outcome.labels.empty());
  }
  // Scalar ground truth for the sanitized request.
  const auto scalar = annotator.AnnotateTypesRobust(dirty);
  ASSERT_EQ(scalar.size(), 2u);
  EXPECT_EQ(robust_results.at(1).value()[1].labels, scalar[1].labels);
  EXPECT_EQ(robust_results.at(1).value()[1].confidence,
            scalar[1].confidence);
}

TEST_F(DynamicBatcherTest, RobustRequestsSeeBackpressureAndStopDrain) {
  DynamicBatcher batcher(pool_.get(), Options(8, 1000000, /*depth=*/2));
  int completions = 0;
  int rejections = 0;
  for (uint64_t id = 0; id < 4; ++id) {
    batcher.SubmitRobust(id, testing::MakeTable(static_cast<int>(id)),
                         /*sanitize=*/true, /*abstain_below=*/0.0,
                         [&](util::Result<RobustPrediction> result) {
                           if (result.ok()) {
                             ++completions;
                           } else {
                             EXPECT_EQ(result.status().code(),
                                       util::StatusCode::kResourceExhausted);
                             ++rejections;
                           }
                         });
  }
  EXPECT_EQ(rejections, 2);  // synchronous backpressure past depth 2
  batcher.Stop();            // drains the two accepted requests
  EXPECT_EQ(completions, 2);
}

TEST_F(DynamicBatcherTest, ThreadedWorkersDrainWithRealClock) {
  // The one non-manual case in this file: worker threads with the default
  // steady clock, validated purely through completion counting (Stop is
  // the barrier — still no test-side sleeps or sockets).
  auto pool = model_.MakePool(2);
  BatcherOptions options;
  options.max_batch_size = 4;
  options.max_wait_us = 200;
  options.max_queue_depth = 64;
  options.num_workers = 2;
  std::atomic<int> completions{0};
  {
    DynamicBatcher batcher(pool.get(), options);
    for (uint64_t id = 0; id < 32; ++id) {
      batcher.Submit(id, testing::MakeTable(static_cast<int>(id)),
                     [&](util::Result<TypePrediction> result) {
                       EXPECT_TRUE(result.ok())
                           << result.status().ToString();
                       completions.fetch_add(1);
                     });
    }
  }  // destructor == Stop(): joins workers after the queue drains
  EXPECT_EQ(completions.load(), 32);
}

}  // namespace
}  // namespace doduo::serve
