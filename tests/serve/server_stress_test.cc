// Loopback integration tests for the annotation server (DESIGN §12): N
// concurrent client threads hammer one Server instance; every request must
// get exactly one response, byte-identical to what a sequential Annotator
// produces for the same table. Runs clean under -DDODUO_TSAN=ON
// (tools/check.sh wires this binary into the TSan stage).

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "doduo/serve/client.h"
#include "doduo/serve/server.h"
#include "doduo/serve/socket_io.h"
#include "doduo/util/metrics.h"
#include "gtest/gtest.h"
#include "serve/serve_test_util.h"

namespace doduo::serve {
namespace {

constexpr int kNumVariants = 4;

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(int replicas, BatcherOptions batcher) {
    pool_ = model_.MakePool(replicas);
    ServerOptions options;
    options.port = 0;  // ephemeral
    options.batcher = batcher;
    options.batcher.num_workers = replicas;
    server_ = std::make_unique<Server>(pool_.get(), options);
    auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    ASSERT_GT(server_->port(), 0);
  }

  /// Sequential ground truth, computed once per table variant.
  std::vector<std::vector<std::vector<std::string>>> GroundTruth() {
    std::vector<std::vector<std::vector<std::string>>> expected;
    core::Annotator annotator = model_.MakeAnnotator();
    for (int v = 0; v < kNumVariants; ++v) {
      auto types = annotator.AnnotateTypes(testing::MakeTable(v));
      EXPECT_TRUE(types.ok()) << types.status().ToString();
      expected.push_back(std::move(types).value());
    }
    return expected;
  }

  testing::TestModel model_;
  std::unique_ptr<core::ReplicaPool> pool_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingStatsAndAnnotateOverOneConnection) {
  BatcherOptions batcher;
  batcher.max_batch_size = 4;
  batcher.max_wait_us = 500;
  StartServer(/*replicas=*/1, batcher);
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value().Ping().ok());

  const auto expected = GroundTruth();
  for (int v = 0; v < kNumVariants; ++v) {
    auto types = client.value().AnnotateTypes(testing::MakeTable(v));
    ASSERT_TRUE(types.ok()) << types.status().ToString();
    EXPECT_EQ(types.value(), expected[static_cast<size_t>(v)]);
  }

  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // The per-stage batching histograms must be visible through STATS.
  EXPECT_NE(stats.value().find("serve.queue_wait_us"), std::string::npos);
  EXPECT_NE(stats.value().find("serve.inference_us"), std::string::npos);
  EXPECT_NE(stats.value().find("serve.e2e_us"), std::string::npos);
}

TEST_F(ServerTest, RobustAnnotateRoundTripsOutcomesAndThreshold) {
  BatcherOptions batcher;
  batcher.max_batch_size = 4;
  batcher.max_wait_us = 500;
  StartServer(/*replicas=*/1, batcher);
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // A dirty table annotates per column over the wire: skip reason for the
  // null column, labels + confidence for the clean one, matching the local
  // robust path byte for byte.
  table::Table dirty("dirty");
  dirty.AddColumn({"void", {"", "null", "-"}});
  dirty.AddColumn({"a", {"alpha", "beta"}});
  core::Annotator annotator = model_.MakeAnnotator();
  const auto expected = annotator.AnnotateTypesRobust(dirty);
  auto outcomes = client.value().AnnotateTypesRobust(dirty);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes.value().size(), expected.size());
  for (size_t c = 0; c < expected.size(); ++c) {
    EXPECT_EQ(outcomes.value()[c].labels, expected[c].labels);
    EXPECT_EQ(outcomes.value()[c].confidence, expected[c].confidence);
    EXPECT_EQ(outcomes.value()[c].skipped_reason, expected[c].skipped_reason);
  }

  // The abstention threshold travels on the wire: above 1.0 every
  // annotatable column must come back abstained.
  auto abstained = client.value().AnnotateTypesRobust(
      testing::MakeTable(0), /*sanitize=*/true, /*abstain_below=*/1.01);
  ASSERT_TRUE(abstained.ok()) << abstained.status().ToString();
  ASSERT_FALSE(abstained.value().empty());
  for (const core::ColumnOutcome& outcome : abstained.value()) {
    EXPECT_TRUE(outcome.abstained);
    EXPECT_TRUE(outcome.labels.empty());
  }

  // A zero-column table is a request-level annotate error on the plain
  // path; the robust path answers with zero outcomes instead.
  auto empty = client.value().AnnotateTypesRobust(testing::MakeBadTable());
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty.value().empty());
}

TEST_F(ServerTest, MalformedTableGetsErrorAndConnectionStaysUsable) {
  BatcherOptions batcher;
  batcher.max_wait_us = 200;
  StartServer(/*replicas=*/1, batcher);
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto bad = client.value().AnnotateTypes(testing::MakeBadTable());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
  // Request-level failure, not connection-level: the next request works.
  auto good = client.value().AnnotateTypes(testing::MakeTable(0));
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST_F(ServerTest, GarbageBytesCloseTheConnectionButNotTheServer) {
  BatcherOptions batcher;
  StartServer(/*replicas=*/1, batcher);
  {
    // Raw socket: send non-protocol garbage, expect the server to hang up
    // without dying.
    auto fd = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(fd.ok());
    const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(SendAll(fd.value().get(), garbage.data(), garbage.size())
                    .ok());
    char buffer[1024];
    // Drain whatever error frame arrives until EOF — the close is the
    // contract, the best-effort error frame is a bonus.
    for (int i = 0; i < 100; ++i) {
      auto received =
          RecvSome(fd.value().get(), buffer, sizeof(buffer), 1000);
      ASSERT_TRUE(received.ok()) << received.status().ToString();
      if (received.value().event == IoEvent::kEof) break;
      ASSERT_NE(received.value().event, IoEvent::kTimeout) << "no close";
    }
  }
  {
    // Mid-frame disconnect: a valid header, then hang up before the
    // payload. The server must treat it as a clean truncation.
    Frame frame;
    frame.type = FrameType::kAnnotateRequest;
    frame.request_id = 9;
    EncodeTablePayload(testing::MakeTable(1), &frame.payload);
    std::string wire;
    ASSERT_TRUE(EncodeFrame(frame, &wire).ok());
    auto fd = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        SendAll(fd.value().get(), wire.data(), kFrameHeaderBytes + 3).ok());
  }  // abrupt close
  // The server is still healthy for a well-behaved client.
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value().Ping().ok());
}

TEST_F(ServerTest, ConcurrentClientsGetExactlyOneCorrectResponseEach) {
  // The acceptance bar: >= 8 concurrent clients, >= 500 total requests,
  // zero lost or duplicated responses, byte-identical output, TSan-clean.
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 64;  // 512 total
  BatcherOptions batcher;
  batcher.max_batch_size = 8;
  batcher.max_wait_us = 300;
  batcher.max_queue_depth = 1024;  // no rejections in this test
  StartServer(/*replicas=*/3, batcher);
  const auto expected = GroundTruth();

  std::atomic<int> correct{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        wrong.fetch_add(kRequestsPerClient);
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int variant = (c + r) % kNumVariants;
        auto types = client.value().AnnotateTypes(testing::MakeTable(variant));
        const bool match =
            types.ok() &&
            types.value() == expected[static_cast<size_t>(variant)];
        (match ? correct : wrong).fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  // Exactly one response per request (the synchronous client would hang,
  // not double-count, on a lost response — so completing all 512 with the
  // right bytes is the whole invariant).
  EXPECT_EQ(correct.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(server_->connections_accepted(), static_cast<uint64_t>(kClients));

  // The batcher actually batched: with 8 clients racing a 300µs window,
  // batches must have formed (weaker than an exact count on purpose —
  // scheduling noise must not flake this test).
  auto stats = core::Annotator::StatsSnapshot();
  uint64_t batches = 0;
  uint64_t requests = 0;
  for (const auto& counter : stats.counters) {
    if (counter.name == "serve.batches_total") batches = counter.value;
    if (counter.name == "serve.requests_total") requests = counter.value;
  }
  EXPECT_GE(requests, static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_GT(batches, 0u);
}

TEST_F(ServerTest, BackpressureRejectsWithResourceExhausted) {
  BatcherOptions batcher;
  batcher.max_batch_size = 2;
  batcher.max_wait_us = 50;
  batcher.max_queue_depth = 1;
  StartServer(/*replicas=*/1, batcher);

  // Hammer from several threads; with queue depth 1 some requests MUST be
  // rejected, and every rejection must carry kResourceExhausted while
  // every acceptance returns correct bytes.
  const auto expected = GroundTruth();
  std::atomic<int> ok_count{0};
  std::atomic<int> rejected{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        other.fetch_add(32);
        return;
      }
      for (int r = 0; r < 32; ++r) {
        auto types = client.value().AnnotateTypes(testing::MakeTable(0));
        if (types.ok() && types.value() == expected[0]) {
          ok_count.fetch_add(1);
        } else if (types.status().code() ==
                   util::StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load() + rejected.load(), 4 * 32);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
}

TEST_F(ServerTest, StopDrainsInFlightRequestsBeforeExiting) {
  BatcherOptions batcher;
  batcher.max_batch_size = 16;
  batcher.max_wait_us = 100000;  // long window: Stop must flush, not wait
  batcher.max_queue_depth = 64;
  StartServer(/*replicas=*/1, batcher);
  const auto expected = GroundTruth();

  const uint64_t requests_before =
      util::GetCounter("serve.requests_total")->value();
  std::atomic<int> answered{0};
  std::thread client_thread([&] {
    auto client = Client::Connect("127.0.0.1", server_->port());
    if (!client.ok()) return;
    // One in-flight request; the server is stopped while it sits in the
    // batching window, and the drain must still answer it.
    auto types = client.value().AnnotateTypes(testing::MakeTable(2));
    if (types.ok() && types.value() == expected[2]) answered.fetch_add(1);
  });
  // Wait until the request has been accepted by the batcher, then stop:
  // drain-on-stop must answer the parked request rather than dropping it.
  while (util::GetCounter("serve.requests_total")->value() ==
         requests_before) {
    std::this_thread::yield();
  }
  server_->Stop();
  client_thread.join();
  EXPECT_EQ(answered.load(), 1);
}

}  // namespace
}  // namespace doduo::serve
