// Wire-format fuzzing for the serve protocol (DESIGN §12): truncated
// frames, mutated length prefixes, oversized payload claims, reserved-byte
// abuse, and arbitrary garbage. The decoder must return a clean error (or
// report an incomplete frame) for every input — never crash, and never
// size a buffer from an unvalidated claim. Mirrors the checkpoint-loader
// fuzz discipline of tests/nn/serialize_fuzz_test.cc.

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "doduo/serve/protocol.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"
#include "serve/serve_test_util.h"

namespace doduo::serve {
namespace {

std::string EncodedFrame(FrameType type, uint64_t id,
                         const std::string& payload) {
  Frame frame;
  frame.type = type;
  frame.request_id = id;
  frame.payload = payload;
  std::string wire;
  EXPECT_TRUE(EncodeFrame(frame, &wire).ok());
  return wire;
}

std::string EncodedAnnotateRequest() {
  Frame frame;
  frame.type = FrameType::kAnnotateRequest;
  frame.request_id = 7;
  EncodeTablePayload(testing::MakeTable(1), &frame.payload);
  std::string wire;
  EXPECT_TRUE(EncodeFrame(frame, &wire).ok());
  return wire;
}

/// Feeds `wire` and drains every complete frame; returns the final status
/// (OK even if frames remain incomplete). Must never crash.
util::Status DrainAll(FrameDecoder* decoder, const std::string& wire,
                      int* frames_out = nullptr) {
  decoder->Feed(wire);
  for (;;) {
    Frame frame;
    auto more = decoder->Next(&frame);
    if (!more.ok()) return more.status();
    if (!more.value()) return util::Status::Ok();
    if (frames_out != nullptr) ++*frames_out;
  }
}

TEST(ProtocolTest, RoundTripsAllFrameFields) {
  const std::string wire =
      EncodedFrame(FrameType::kPingRequest, 0xDEADBEEFCAFE1234ull, "hello");
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  auto more = decoder.Next(&frame);
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  ASSERT_TRUE(more.value());
  EXPECT_EQ(frame.type, FrameType::kPingRequest);
  EXPECT_EQ(frame.request_id, 0xDEADBEEFCAFE1234ull);
  EXPECT_EQ(frame.payload, "hello");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(ProtocolTest, EveryFrameTypeRoundTripsThroughTheDecoder) {
  // Every id the protocol defines, request and response side alike — the
  // frame-symmetry lint pass (doduo_lint --all) holds this list and the
  // FrameType enum to each other.
  const FrameType kAllFrameTypes[] = {
      FrameType::kAnnotateRequest,       FrameType::kAnnotateResponse,
      FrameType::kStatsRequest,          FrameType::kStatsResponse,
      FrameType::kPingRequest,           FrameType::kPingResponse,
      FrameType::kErrorResponse,         FrameType::kAnnotateRobustRequest,
      FrameType::kAnnotateRobustResponse};
  uint64_t id = 100;
  for (const FrameType type : kAllFrameTypes) {
    ASSERT_TRUE(IsKnownFrameType(static_cast<uint8_t>(type)))
        << static_cast<int>(type);
    const std::string wire = EncodedFrame(type, ++id, "payload-bytes");
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame frame;
    auto more = decoder.Next(&frame);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(more.value());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.payload, "payload-bytes");
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(ProtocolTest, TablePayloadRoundTrips) {
  const table::Table table = testing::MakeTable(2);
  std::string payload;
  EncodeTablePayload(table, &payload);
  auto decoded = DecodeTablePayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id(), table.id());
  ASSERT_EQ(decoded.value().num_columns(), table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) {
    EXPECT_EQ(decoded.value().column(c).name, table.column(c).name);
    EXPECT_EQ(decoded.value().column(c).values, table.column(c).values);
  }
}

TEST(ProtocolTest, TypesPayloadRoundTrips) {
  const std::vector<std::vector<std::string>> types = {
      {"type1"}, {"type2", "type4"}, {}};
  std::string payload;
  EncodeTypesPayload(types, &payload);
  auto decoded = DecodeTypesPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), types);
}

/// One of each outcome shape: annotated, abstained, skipped.
std::vector<core::ColumnOutcome> MakeOutcomes() {
  std::vector<core::ColumnOutcome> outcomes(3);
  outcomes[0].labels = {"type1", "type3"};
  outcomes[0].confidence = 0.875;
  outcomes[1].confidence = 0.25;
  outcomes[1].abstained = true;
  outcomes[2].skipped_reason = "mostly_null";
  return outcomes;
}

TEST(ProtocolTest, RobustRequestPayloadRoundTrips) {
  const table::Table table = testing::MakeTable(2);
  for (const bool sanitize : {true, false}) {
    std::string payload;
    EncodeRobustRequestPayload(table, sanitize, 0.75, &payload);
    auto decoded = DecodeRobustRequestPayload(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().sanitize, sanitize);
    EXPECT_EQ(decoded.value().abstain_below, 0.75);
    EXPECT_EQ(decoded.value().table.id(), table.id());
    ASSERT_EQ(decoded.value().table.num_columns(), table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      EXPECT_EQ(decoded.value().table.column(c).values,
                table.column(c).values);
    }
  }
}

TEST(ProtocolTest, OutcomesPayloadRoundTrips) {
  const std::vector<core::ColumnOutcome> outcomes = MakeOutcomes();
  std::string payload;
  EncodeOutcomesPayload(outcomes, &payload);
  auto decoded = DecodeOutcomesPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), outcomes.size());
  for (size_t c = 0; c < outcomes.size(); ++c) {
    EXPECT_EQ(decoded.value()[c].labels, outcomes[c].labels);
    EXPECT_EQ(decoded.value()[c].confidence, outcomes[c].confidence);
    EXPECT_EQ(decoded.value()[c].skipped_reason, outcomes[c].skipped_reason);
    EXPECT_EQ(decoded.value()[c].abstained, outcomes[c].abstained);
  }
}

TEST(ProtocolTest, RobustRequestRejectsBadFlagsAndThresholds) {
  std::string payload;
  EncodeRobustRequestPayload(testing::MakeTable(0), true, 0.5, &payload);
  // Unknown flag bit (bit 1).
  std::string bad_flags = payload;
  bad_flags[0] = static_cast<char>(
      static_cast<uint8_t>(bad_flags[0]) | 0x02);
  EXPECT_FALSE(DecodeRobustRequestPayload(bad_flags).ok());
  // Negative and non-finite thresholds (the f64 sits at bytes [4, 12)).
  for (const double bad : {-0.5, std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    std::string mutated = payload;
    uint64_t bits = 0;
    std::memcpy(&bits, &bad, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      mutated[4 + b] = static_cast<char>((bits >> (8 * b)) & 0xFF);
    }
    EXPECT_FALSE(DecodeRobustRequestPayload(mutated).ok()) << bad;
  }
}

TEST(ProtocolTest, OutcomesRejectOutOfRangeConfidence) {
  std::vector<core::ColumnOutcome> outcomes(1);
  outcomes[0].labels = {"type0"};
  outcomes[0].confidence = 0.5;
  std::string payload;
  EncodeOutcomesPayload(outcomes, &payload);
  // The confidence f64 sits after outcome count, label count, and the one
  // length-prefixed 5-byte label: offset 4 + 4 + (4 + 5) = 17.
  const size_t offset = 17;
  for (const double bad : {-0.25, 1.5,
                           std::numeric_limits<double>::quiet_NaN()}) {
    std::string mutated = payload;
    uint64_t bits = 0;
    std::memcpy(&bits, &bad, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      mutated[offset + b] = static_cast<char>((bits >> (8 * b)) & 0xFF);
    }
    EXPECT_FALSE(DecodeOutcomesPayload(mutated).ok()) << bad;
  }
}

// -- Truncation ---------------------------------------------------------------

TEST(ProtocolFuzzTest, EveryFramePrefixIsIncompleteNotAnError) {
  const std::string wire = EncodedAnnotateRequest();
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.substr(0, cut));
    Frame frame;
    auto more = decoder.Next(&frame);
    ASSERT_TRUE(more.ok()) << "cut at " << cut << ": "
                           << more.status().ToString();
    EXPECT_FALSE(more.value()) << "cut at " << cut;
    // A mid-frame disconnect leaves a resumable decoder: feeding the rest
    // completes the frame.
    decoder.Feed(wire.substr(cut));
    auto rest = decoder.Next(&frame);
    ASSERT_TRUE(rest.ok()) << "resume at " << cut;
    EXPECT_TRUE(rest.value()) << "resume at " << cut;
  }
}

TEST(ProtocolFuzzTest, EveryTablePayloadPrefixFailsCleanly) {
  std::string payload;
  EncodeTablePayload(testing::MakeTable(3), &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = DecodeTablePayload(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
  for (size_t cut = 0; cut + 4 < payload.size(); ++cut) {
    auto decoded = DecodeTypesPayload(payload.substr(0, cut));
    (void)decoded.ok();  // arbitrary bytes: any Status, just no crash
  }
}

TEST(ProtocolFuzzTest, EveryRobustPayloadPrefixFailsCleanly) {
  std::string request;
  EncodeRobustRequestPayload(testing::MakeTable(3), true, 0.5, &request);
  for (size_t cut = 0; cut < request.size(); ++cut) {
    EXPECT_FALSE(DecodeRobustRequestPayload(request.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  std::string outcomes;
  EncodeOutcomesPayload(MakeOutcomes(), &outcomes);
  for (size_t cut = 0; cut < outcomes.size(); ++cut) {
    EXPECT_FALSE(DecodeOutcomesPayload(outcomes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

// -- Mutated length prefixes and headers --------------------------------------

TEST(ProtocolFuzzTest, OversizedPayloadClaimIsRejectedBeforeBuffering) {
  std::string wire = EncodedFrame(FrameType::kPingRequest, 1, "x");
  // Rewrite the length field (offset 16, LE u32) to claim > 16 MiB.
  const uint32_t huge = kMaxPayloadBytes + 1;
  for (int b = 0; b < 4; ++b) {
    wire[16 + b] = static_cast<char>((huge >> (8 * b)) & 0xFF);
  }
  FrameDecoder decoder;
  decoder.Feed(wire.substr(0, kFrameHeaderBytes));
  Frame frame;
  auto more = decoder.Next(&frame);
  ASSERT_FALSE(more.ok());
  // The claim was bounded by the limit, not trusted: the decoder holds
  // only the header bytes it was fed, no 16 MiB buffer was sized.
  EXPECT_LE(decoder.buffered_bytes(), kFrameHeaderBytes);
  // Poisoning is sticky — the connection is dead to the decoder.
  decoder.Feed(EncodedFrame(FrameType::kPingRequest, 2, "ok"));
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(ProtocolFuzzTest, MutatedPayloadCountsNeverCauseRunawayAllocation) {
  std::string payload;
  EncodeTablePayload(testing::MakeTable(0), &payload);
  // Overwrite every 4-byte window with a ~2^31 claim. Windows that land on
  // a length/count field must fail (the claim exceeds the bytes present);
  // windows inside string bytes may still decode — but then the decoded
  // strings came from the payload, so their total size is bounded by it.
  for (size_t pos = 0; pos + 4 <= payload.size(); ++pos) {
    std::string mutated = payload;
    mutated[pos] = '\xFF';
    mutated[pos + 1] = '\xFF';
    mutated[pos + 2] = '\xFF';
    mutated[pos + 3] = '\x7F';
    auto table = DecodeTablePayload(mutated);
    if (table.ok()) {
      size_t decoded_bytes = table.value().id().size();
      for (const table::Column& column : table.value().columns()) {
        decoded_bytes += column.name.size();
        for (const std::string& value : column.values) {
          decoded_bytes += value.size();
        }
      }
      EXPECT_LE(decoded_bytes, mutated.size()) << "u32 at " << pos;
    }
    auto types = DecodeTypesPayload(mutated);
    if (types.ok()) {
      size_t decoded_bytes = 0;
      for (const auto& labels : types.value()) {
        for (const std::string& label : labels) {
          decoded_bytes += label.size();
        }
      }
      EXPECT_LE(decoded_bytes, mutated.size()) << "u32 at " << pos;
    }
  }
  // The unambiguous case: a huge claim in the leading count field fails.
  std::string huge_count = payload;
  huge_count[0] = '\xFF';
  huge_count[1] = '\xFF';
  huge_count[2] = '\xFF';
  huge_count[3] = '\x7F';
  EXPECT_FALSE(DecodeTablePayload(huge_count).ok());
  EXPECT_FALSE(DecodeTypesPayload(huge_count).ok());
}

TEST(ProtocolFuzzTest, EverySingleByteHeaderMutationIsHandled) {
  const std::string wire = EncodedFrame(FrameType::kStatsRequest, 42, "");
  for (size_t pos = 0; pos < kFrameHeaderBytes; ++pos) {
    for (int delta : {1, 0x53, 0xFF}) {
      std::string mutated = wire;
      mutated[pos] = static_cast<char>(
          (static_cast<uint8_t>(mutated[pos]) + delta) & 0xFF);
      FrameDecoder decoder;
      int frames = 0;
      // Either a clean protocol error or a (possibly different) decodable
      // frame; ids/status of a corrupted-but-valid header may differ, but
      // nothing crashes and nothing hangs.
      const util::Status status = DrainAll(&decoder, mutated, &frames);
      if (status.ok() && frames == 0) {
        // Interpreted as incomplete: only possible when the mutation grew
        // the length field within bounds.
        EXPECT_TRUE(pos >= 16 && pos < 20) << "pos " << pos;
      }
    }
  }
}

// -- Random garbage -----------------------------------------------------------

class ProtocolGarbageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProtocolGarbageFuzzTest, RandomBytesNeverCrashTheDecoder) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    // Random chunk sizes model arbitrary TCP segmentation.
    std::string garbage;
    const int len = 1 + static_cast<int>(rng.NextUint64(64));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextUint64(256)));
    }
    util::Status first = DrainAll(&decoder, garbage);
    // Whatever happened, the decoder stays consistent: a poisoned decoder
    // repeats its error, a healthy one keeps accepting bytes.
    Frame frame;
    auto again = decoder.Next(&frame);
    EXPECT_EQ(again.ok(), first.ok());
  }
}

TEST_P(ProtocolGarbageFuzzTest, RandomPayloadMutationsNeverCrashCodecs) {
  util::Rng rng(GetParam());
  std::vector<std::string> payloads(4);
  EncodeTablePayload(testing::MakeTable(1), &payloads[0]);
  std::vector<std::vector<std::string>> types = {{"a", "b"}, {"c"}};
  EncodeTypesPayload(types, &payloads[1]);
  EncodeRobustRequestPayload(testing::MakeTable(1), true, 0.5, &payloads[2]);
  EncodeOutcomesPayload(MakeOutcomes(), &payloads[3]);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = payloads[static_cast<size_t>(round & 3)];
    const int flips = 1 + static_cast<int>(rng.NextUint64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextUint64(
          static_cast<uint64_t>(mutated.size())));
      mutated[pos] = static_cast<char>(rng.NextUint64(256));
    }
    // Success or precise failure both fine; crashes and runaway
    // allocations are the only wrong answers.
    (void)DecodeTablePayload(mutated).ok();
    (void)DecodeTypesPayload(mutated).ok();
    (void)DecodeRobustRequestPayload(mutated).ok();
    (void)DecodeOutcomesPayload(mutated).ok();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolGarbageFuzzTest,
                         ::testing::Values(1u, 42u, 777u, 31337u));

}  // namespace
}  // namespace doduo::serve
