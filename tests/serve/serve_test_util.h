#ifndef DODUO_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define DODUO_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/core/model.h"
#include "doduo/core/replica_pool.h"
#include "doduo/table/serializer.h"
#include "doduo/table/table.h"
#include "doduo/text/vocab.h"
#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/util/rng.h"

namespace doduo::serve::testing {

/// A tiny trained-shape model (1 layer, hidden 16) with everything the
/// serve stack needs, mirroring the annotator_error_test fixture. Small
/// enough that a 500-request stress run stays fast under TSan.
struct TestModel {
  TestModel() {
    config.encoder.vocab_size = 60;
    config.encoder.max_positions = 64;
    config.encoder.hidden_dim = 16;
    config.encoder.num_heads = 2;
    config.encoder.ffn_dim = 32;
    config.encoder.num_layers = 1;
    config.encoder.dropout = 0.0f;
    config.serializer.max_total_tokens = 64;
    config.num_types = 5;
    config.num_relations = 0;
    config.tasks = core::TaskSet::kTypesOnly;
    for (const char* word : {"alpha", "beta", "gamma", "delta"}) {
      vocab.AddToken(word);
    }
    for (int i = 0; i < config.num_types; ++i) {
      type_vocab.AddLabel("type" + std::to_string(i));
    }
    util::Rng rng(1);
    model = std::make_unique<core::DoduoModel>(config, &rng);
    model->set_training(false);
    tokenizer = std::make_unique<text::WordPieceTokenizer>(&vocab);
    serializer = std::make_unique<table::TableSerializer>(
        tokenizer.get(), config.serializer);
  }

  core::Annotator MakeAnnotator() {
    return core::Annotator(model.get(), serializer.get(), &type_vocab,
                           nullptr);
  }

  std::unique_ptr<core::ReplicaPool> MakePool(int num_replicas) {
    return std::make_unique<core::ReplicaPool>(
        model.get(), serializer.get(), &type_vocab, nullptr, num_replicas);
  }

  core::DoduoConfig config;
  text::Vocab vocab;
  table::LabelVocab type_vocab;
  std::unique_ptr<core::DoduoModel> model;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<table::TableSerializer> serializer;
};

/// One of four distinct well-formed tables; `variant` also salts the id.
inline table::Table MakeTable(int variant) {
  const char* words[] = {"alpha", "beta", "gamma", "delta"};
  table::Table table("table-" + std::to_string(variant));
  const int v = variant & 3;
  table.AddColumn({"a", {words[v], words[(v + 1) & 3]}});
  table.AddColumn({"b", {words[(v + 2) & 3]}});
  table.AddColumn({"c", {words[(v + 3) & 3], words[v]}});
  return table;
}

/// A table every Annotator entry point rejects (zero columns).
inline table::Table MakeBadTable() { return table::Table("bad"); }

}  // namespace doduo::serve::testing

#endif  // DODUO_TESTS_SERVE_SERVE_TEST_UTIL_H_
