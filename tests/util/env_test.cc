#include "doduo/util/env.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(EnvTest, FallbackWhenUnset) {
  unsetenv("DODUO_TEST_VAR");
  EXPECT_EQ(GetEnvString("DODUO_TEST_VAR", "fb"), "fb");
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 2.5), 2.5);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 7), 7);
}

TEST(EnvTest, ReadsSetValues) {
  setenv("DODUO_TEST_VAR", "3.5", 1);
  EXPECT_EQ(GetEnvString("DODUO_TEST_VAR", "fb"), "3.5");
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 1.0), 3.5);
  setenv("DODUO_TEST_VAR", "42", 1);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 1), 42);
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 1.0), 42.0);
  setenv("DODUO_TEST_VAR", "-8", 1);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 1), -8);
  unsetenv("DODUO_TEST_VAR");
}

TEST(EnvTest, UnparsableFallsBack) {
  setenv("DODUO_TEST_VAR", "not_a_number", 1);
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 9.0), 9.0);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 9), 9);
  unsetenv("DODUO_TEST_VAR");
}

TEST(EnvTest, RejectsTrailingGarbage) {
  // "4abc" used to parse as 4 via strtol's partial parse; the full string
  // must now be numeric.
  setenv("DODUO_TEST_VAR", "4abc", 1);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 9), 9);
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 9.0), 9.0);
  // A fractional value is not a valid integer either.
  setenv("DODUO_TEST_VAR", "3.5", 1);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 9), 9);
  setenv("DODUO_TEST_VAR", "", 1);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 9), 9);
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 9.0), 9.0);
  unsetenv("DODUO_TEST_VAR");
}

TEST(EnvTest, RejectsOutOfRangeValues) {
  setenv("DODUO_TEST_VAR", "99999999999999999999999999", 1);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 9), 9);
  setenv("DODUO_TEST_VAR", "1e999", 1);
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 9.0), 9.0);
  unsetenv("DODUO_TEST_VAR");
}

}  // namespace
}  // namespace doduo::util
