#include "doduo/util/env.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(EnvTest, FallbackWhenUnset) {
  unsetenv("DODUO_TEST_VAR");
  EXPECT_EQ(GetEnvString("DODUO_TEST_VAR", "fb"), "fb");
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 2.5), 2.5);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 7), 7);
}

TEST(EnvTest, ReadsSetValues) {
  setenv("DODUO_TEST_VAR", "3.5", 1);
  EXPECT_EQ(GetEnvString("DODUO_TEST_VAR", "fb"), "3.5");
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 1.0), 3.5);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 1), 3);
  unsetenv("DODUO_TEST_VAR");
}

TEST(EnvTest, UnparsableFallsBack) {
  setenv("DODUO_TEST_VAR", "not_a_number", 1);
  EXPECT_EQ(GetEnvDouble("DODUO_TEST_VAR", 9.0), 9.0);
  EXPECT_EQ(GetEnvInt("DODUO_TEST_VAR", 9), 9);
  unsetenv("DODUO_TEST_VAR");
}

}  // namespace
}  // namespace doduo::util
