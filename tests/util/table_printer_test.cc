#include "doduo/util/table_printer.h"

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"Method", "F1"});
  printer.AddRow({"Doduo", "92.45"});
  printer.AddRow({"X", "1"});
  const std::string out = printer.ToString();
  EXPECT_EQ(out,
            "| Method | F1    |\n"
            "|--------|-------|\n"
            "| Doduo  | 92.45 |\n"
            "| X      | 1     |\n");
}

TEST(TablePrinterTest, HeaderWiderThanBody) {
  TablePrinter printer({"A wide header", "B"});
  printer.AddRow({"x", "y"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("| A wide header | B |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyBodyStillRendersHeader) {
  TablePrinter printer({"Only", "Header"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("Only"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace doduo::util
