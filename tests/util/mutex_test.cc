// util::Mutex / MutexLock / CondVar and the lock-order deadlock detector
// (DESIGN §13). The detector tests pin the two behaviors the rest of the
// tree relies on: a consistent lock hierarchy stays silent, and the first
// traversal of both orders of any two locks aborts with a report whose
// first line names the whole cycle — whether or not the deadlock fired.

#include "doduo/util/mutex.h"

#include <thread>
#include <vector>

#include "doduo/util/thread_annotations.h"
#include "gtest/gtest.h"

namespace doduo::util {
namespace {

// Restores the process-wide detector flag on scope exit so detector tests
// cannot leak their setting into unrelated tests in this binary.
class DeadlockCheckScope {
 public:
  explicit DeadlockCheckScope(bool enabled) : prev_(DeadlockCheckEnabled()) {
    SetDeadlockCheckEnabled(enabled);
  }
  ~DeadlockCheckScope() { SetDeadlockCheckEnabled(prev_); }

 private:
  const bool prev_;
};

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu{"test.counter"};
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu{"test.try"};
  mu.Lock();
  std::thread contender([&mu] {
    EXPECT_FALSE(mu.TryLock());
  });
  contender.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, NameIsRetained) {
  Mutex mu{"test.name"};
  EXPECT_STREQ(mu.name(), "test.name");
}

TEST(CondVarTest, WaitReleasesTheMutexAndSeesTheNotification) {
  // Detector on: CondVar waits through Mutex's BasicLockable interface, so
  // the release/reacquire must keep the held-stack bookkeeping exact (a
  // stale entry would make the reacquire abort as "recursive").
  DeadlockCheckScope scope(true);
  Mutex mu{"test.cv"};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitForReturnsFalseOnTimeout) {
  Mutex mu{"test.cv_timeout"};
  CondVar cv;
  MutexLock lock(&mu);
  // Nothing ever notifies; spurious wakeups may return early a bounded
  // number of times, but the final wait must report a timeout.
  bool signaled = cv.WaitFor(&mu, /*timeout_us=*/1000);
  for (int budget = 3; signaled && budget > 0; --budget) {
    signaled = cv.WaitFor(&mu, /*timeout_us=*/1000);
  }
  EXPECT_FALSE(signaled);
}

TEST(DeadlockDetectorTest, ConsistentOrderStaysSilent) {
  DeadlockCheckScope scope(true);
  Mutex outer{"test.consistent_outer"};
  Mutex inner{"test.consistent_inner"};
  auto nested = [&outer, &inner] {
    MutexLock lock_outer(&outer);
    MutexLock lock_inner(&inner);
  };
  nested();  // records the edge outer -> inner
  std::thread same_order(nested);
  same_order.join();  // re-traverses the proven edge: silent
}

TEST(DeadlockDetectorTest, TryLockAddsNoOrderingEdge) {
  // A try-acquire cannot block, so taking it "out of order" is not a
  // deadlock risk and must not poison the graph.
  DeadlockCheckScope scope(true);
  Mutex a{"test.try_edge_a"};
  Mutex b{"test.try_edge_b"};
  {
    MutexLock lock(&a);
    ASSERT_TRUE(b.TryLock());
    b.Unlock();
  }
  {
    MutexLock lock(&b);
    ASSERT_TRUE(a.TryLock());
    a.Unlock();
  }
}

TEST(DeadlockDetectorTest, DisabledDetectorIgnoresInversion) {
  DeadlockCheckScope scope(false);
  Mutex a{"test.disabled_a"};
  Mutex b{"test.disabled_b"};
  // Both orders, one thread, no contention: only the detector could object,
  // and it is off.
  {
    MutexLock lock_a(&a);
    MutexLock lock_b(&b);
  }
  {
    MutexLock lock_b(&b);
    MutexLock lock_a(&a);
  }
}

// Deliberately violates the no-recursive-acquisition contract to drive the
// detector's abort path; the static analysis would (correctly) reject this
// at compile time, hence the escape.
void AcquireTwice(Mutex* mu) DODUO_NO_THREAD_SAFETY_ANALYSIS {
  mu->Lock();
  mu->Lock();
}

TEST(DeadlockDetectorDeathTest, LockOrderInversionAbortsNamingBothLocks) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Thread 1 establishes order_a -> order_b and exits cleanly; the parent
  // then takes the opposite order. No deadlock actually fires — the
  // detector aborts on the inversion alone, and its first report line must
  // carry the full cycle so this single-line matcher sees both names.
  EXPECT_DEATH(
      {
        SetDeadlockCheckEnabled(true);
        Mutex a{"order_a"};
        Mutex b{"order_b"};
        std::thread forward([&a, &b] {
          MutexLock lock_a(&a);
          MutexLock lock_b(&b);
        });
        forward.join();
        MutexLock lock_b(&b);
        MutexLock lock_a(&a);  // inversion: aborts before blocking
      },
      "lock-order inversion .potential deadlock.: "
      "cycle \"order_a\" -> \"order_b\" -> \"order_a\"");
}

TEST(DeadlockDetectorDeathTest, RecursiveAcquisitionAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetDeadlockCheckEnabled(true);
        Mutex mu{"test.recursive"};
        AcquireTwice(&mu);
      },
      "recursive acquisition of mutex \"test.recursive\"");
}

}  // namespace
}  // namespace doduo::util
