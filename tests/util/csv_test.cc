#include "doduo/util/csv.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(CsvParseTest, SimpleRows) {
  auto result = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(result.ok());
  const CsvRows& rows = result.value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvParseTest, NoTrailingNewline) {
  auto result = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(CsvParseTest, QuotedCells) {
  auto result = ParseCsv("\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0][0], "hello, world");
  EXPECT_EQ(result.value()[0][1], "say \"hi\"");
}

TEST(CsvParseTest, QuotedNewline) {
  auto result = ParseCsv("\"line1\nline2\",x\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto result = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[1][0], "c");
}

TEST(CsvParseTest, EmptyCells) {
  auto result = ParseCsv(",\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0], (std::vector<std::string>{"", ""}));
}

TEST(CsvParseTest, EmptyInputHasNoRows) {
  auto result = ParseCsv("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  auto result = ParseCsv("\"unclosed\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, MidCellQuoteIsError) {
  auto result = ParseCsv("ab\"cd\n");
  EXPECT_FALSE(result.ok());
}

TEST(CsvParseTest, TextAfterClosingQuoteIsError) {
  // RFC 4180: after the closing quote only a delimiter or end of record may
  // follow. "ab"cd used to silently parse as "abcd".
  auto result = ParseCsv("\"ab\"cd\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The message pinpoints the offending character.
  EXPECT_NE(result.status().message().find("closing quote"),
            std::string::npos);

  EXPECT_FALSE(ParseCsv("\"ab\" ,x\n").ok());        // space after quote
  EXPECT_FALSE(ParseCsv("x,\"ab\"y\n").ok());        // non-first cell
  EXPECT_TRUE(ParseCsv("\"ab\",cd\n").ok());         // delimiter is fine
  EXPECT_TRUE(ParseCsv("\"ab\"\r\ncd\n").ok());      // CRLF is fine
  EXPECT_TRUE(ParseCsv("\"ab\"").ok());              // EOF is fine
  EXPECT_TRUE(ParseCsv("\"ab\"\"cd\"\n").ok());      // escaped quote is fine
}

TEST(CsvWriteTest, RoundTrip) {
  CsvRows rows = {{"plain", "with,comma", "with\"quote", "with\nnewline"},
                  {"", "x", "", ""}};
  const std::string text = WriteCsvString(rows);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvFileTest, WriteThenRead) {
  const std::string path = ::testing::TempDir() + "/doduo_csv_test.csv";
  CsvRows rows = {{"h1", "h2"}, {"a", "b"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  auto read = ReadCsvFile("/nonexistent/path/data.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace doduo::util
