#include "doduo/util/csv.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(CsvParseTest, SimpleRows) {
  auto result = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(result.ok());
  const CsvRows& rows = result.value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvParseTest, NoTrailingNewline) {
  auto result = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(CsvParseTest, QuotedCells) {
  auto result = ParseCsv("\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0][0], "hello, world");
  EXPECT_EQ(result.value()[0][1], "say \"hi\"");
}

TEST(CsvParseTest, QuotedNewline) {
  auto result = ParseCsv("\"line1\nline2\",x\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto result = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[1][0], "c");
}

TEST(CsvParseTest, EmptyCells) {
  auto result = ParseCsv(",\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0], (std::vector<std::string>{"", ""}));
}

TEST(CsvParseTest, EmptyInputHasNoRows) {
  auto result = ParseCsv("");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  auto result = ParseCsv("\"unclosed\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, MidCellQuoteIsError) {
  auto result = ParseCsv("ab\"cd\n");
  EXPECT_FALSE(result.ok());
}

TEST(CsvParseTest, TextAfterClosingQuoteIsError) {
  // RFC 4180: after the closing quote only a delimiter or end of record may
  // follow. "ab"cd used to silently parse as "abcd".
  auto result = ParseCsv("\"ab\"cd\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The message pinpoints the offending character.
  EXPECT_NE(result.status().message().find("closing quote"),
            std::string::npos);

  EXPECT_FALSE(ParseCsv("\"ab\" ,x\n").ok());        // space after quote
  EXPECT_FALSE(ParseCsv("x,\"ab\"y\n").ok());        // non-first cell
  EXPECT_TRUE(ParseCsv("\"ab\",cd\n").ok());         // delimiter is fine
  EXPECT_TRUE(ParseCsv("\"ab\"\r\ncd\n").ok());      // CRLF is fine
  EXPECT_TRUE(ParseCsv("\"ab\"").ok());              // EOF is fine
  EXPECT_TRUE(ParseCsv("\"ab\"\"cd\"\n").ok());      // escaped quote is fine
}

TEST(CsvParseTest, LeadingUtf8BomIsStripped) {
  auto rows = ParseCsv("\xEF\xBB\xBFname,age\nalice,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  // Without the strip the BOM bytes would corrupt the first header name.
  EXPECT_EQ(rows.value()[0][0], "name");
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"name", "age"}));
}

TEST(CsvParseTest, BomOnlyInFirstPositionIsStripped) {
  // A BOM mid-file is data, not a marker.
  auto rows = ParseCsv("a,\xEF\xBB\xBF\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0][1], "\xEF\xBB\xBF");
}

TEST(CsvParseTest, BareCrLineEndings) {
  // Classic-Mac exports end rows with a lone CR.
  auto rows = ParseCsv("h1,h2\ra,b\rc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows.value()[2], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParseTest, CrlfInsideQuotedFieldIsCellContent) {
  // A quoted cell may span lines; the CRLF belongs to the cell and must
  // not split it into two rows.
  auto rows = ParseCsv("h1,h2\r\n\"line1\r\nline2\",x\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  ASSERT_EQ(rows.value()[1].size(), 2u);
  EXPECT_EQ(rows.value()[1][0], "line1\r\nline2");
  EXPECT_EQ(rows.value()[1][1], "x");
}

TEST(CsvParseTest, BareCrInsideQuotedFieldIsCellContent) {
  auto rows = ParseCsv("\"a\rb\",c\r\"d\",e");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][0], "a\rb");
  EXPECT_EQ(rows.value()[1][0], "d");
}

TEST(CsvParseTest, BomThenQuotedHeader) {
  auto rows = ParseCsv("\xEF\xBB\xBF\"name\",\"city\"\r\nbob,oslo\r\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"name", "city"}));
}

TEST(CsvWriteTest, RoundTrip) {
  CsvRows rows = {{"plain", "with,comma", "with\"quote", "with\nnewline"},
                  {"", "x", "", ""}};
  const std::string text = WriteCsvString(rows);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvFileTest, WriteThenRead) {
  const std::string path = ::testing::TempDir() + "/doduo_csv_test.csv";
  CsvRows rows = {{"h1", "h2"}, {"a", "b"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIoError) {
  auto read = ReadCsvFile("/nonexistent/path/data.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace doduo::util
