#include "doduo/util/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(&items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  std::vector<int> before = items;
  rng.Shuffle(&items);
  EXPECT_NE(items, before);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(29);
  auto sample = rng.SampleIndices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng(31);
  auto sample = rng.SampleIndices(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(37);
  Rng child = parent.Fork();
  // Child's stream differs from what the parent produces next.
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

}  // namespace
}  // namespace doduo::util
