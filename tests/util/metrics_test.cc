#include "doduo/util/metrics.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

// Each test uses its own metric names: the registry is process-wide, so
// names shared across tests would see each other's counts.

TEST(MetricsTest, CounterIncrementsAndResets) {
  Counter* counter = GetCounter("test.counter_basic");
  counter->Reset();
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  counter->Reset();
  EXPECT_EQ(counter->value(), 0u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = GetCounter("test.registry_stable");
  Counter* b = GetCounter("test.registry_stable");
  EXPECT_EQ(a, b);
  Histogram* h1 = GetHistogram("test.registry_stable_h");
  Histogram* h2 = GetHistogram("test.registry_stable_h");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwoMicros) {
  Histogram* histogram = GetHistogram("test.histogram_buckets");
  histogram->Reset();
  histogram->Record(0);    // bucket 0: [0, 1]
  histogram->Record(1);    // bucket 0
  histogram->Record(2);    // bucket 1: (1, 2]
  histogram->Record(3);    // bucket 2: (2, 4]
  histogram->Record(100);  // bucket 7: (64, 128]
  EXPECT_EQ(histogram->count(), 5u);
  EXPECT_EQ(histogram->sum_micros(), 106u);
  EXPECT_EQ(histogram->bucket_count(0), 2u);
  EXPECT_EQ(histogram->bucket_count(1), 1u);
  EXPECT_EQ(histogram->bucket_count(2), 1u);
  EXPECT_EQ(histogram->bucket_count(7), 1u);
  // A sample beyond the largest bound lands in the final bucket.
  histogram->Record(~uint64_t{0});
  EXPECT_EQ(histogram->bucket_count(Histogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(Histogram::BucketUpperMicros(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperMicros(10), 1024u);
}

TEST(MetricsTest, DisablingStopsRecording) {
  Counter* counter = GetCounter("test.disable_counter");
  Histogram* histogram = GetHistogram("test.disable_histogram");
  counter->Reset();
  histogram->Reset();
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  counter->Increment();
  histogram->Record(10);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  counter->Increment();
  histogram->Record(10);
  EXPECT_EQ(counter->value(), 1u);
  EXPECT_EQ(histogram->count(), 1u);
}

TEST(MetricsTest, SnapshotContainsRegisteredMetrics) {
  Counter* counter = GetCounter("test.snapshot_counter");
  Histogram* histogram = GetHistogram("test.snapshot_histogram");
  counter->Reset();
  histogram->Reset();
  counter->Increment(7);
  histogram->Record(3);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  bool found_counter = false;
  for (const CounterSnapshot& c : snapshot.counters) {
    if (c.name == "test.snapshot_counter") {
      found_counter = true;
      EXPECT_EQ(c.value, 7u);
    }
  }
  EXPECT_TRUE(found_counter);
  bool found_histogram = false;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == "test.snapshot_histogram") {
      found_histogram = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum_micros, 3u);
      // Only non-empty buckets appear: one entry, upper bound 4 µs.
      ASSERT_EQ(h.buckets.size(), 1u);
      EXPECT_EQ(h.buckets[0].first, 4u);
      EXPECT_EQ(h.buckets[0].second, 1u);
    }
  }
  EXPECT_TRUE(found_histogram);
}

TEST(MetricsTest, JsonExportContainsValues) {
  Counter* counter = GetCounter("test.json_counter");
  counter->Reset();
  counter->Increment(5);
  const std::string json = MetricsToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":5"), std::string::npos);
}

TEST(MetricsTest, ScopedTimerRecordsIntoHistogram) {
  Histogram* histogram = GetHistogram("test.scoped_timer");
  histogram->Reset();
  { ScopedTimer timer(histogram, "test.span"); }
  EXPECT_EQ(histogram->count(), 1u);
}

TEST(MetricsTest, TraceHookSeesSpans) {
  Histogram* histogram = GetHistogram("test.trace_hook");
  histogram->Reset();
  std::vector<std::string> spans;
  SetTraceHook([&spans](std::string_view span, uint64_t) {
    spans.emplace_back(span);
  });
  { ScopedTimer timer(histogram, "test.traced_span"); }
  SetTraceHook(nullptr);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], "test.traced_span");
  // With the hook uninstalled, spans stop flowing but recording continues.
  { ScopedTimer timer(histogram, "test.traced_span"); }
  EXPECT_EQ(spans.size(), 1u);
  EXPECT_EQ(histogram->count(), 2u);
}

TEST(MetricsTest, ResetMetricsZeroesEverything) {
  Counter* counter = GetCounter("test.reset_all_counter");
  Histogram* histogram = GetHistogram("test.reset_all_histogram");
  counter->Increment(3);
  histogram->Record(9);
  ResetMetrics();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(histogram->sum_micros(), 0u);
}

TEST(MetricsTest, ApproxQuantileWalksBuckets) {
  Histogram* histogram = GetHistogram("test.quantile_histogram");
  histogram->Reset();
  EXPECT_EQ(ApproxQuantileMicros(*histogram, 0.5), 0u);  // empty
  // 90 fast samples in (2,4]us, 10 slow ones in (512,1024]us.
  for (int i = 0; i < 90; ++i) histogram->Record(3);
  for (int i = 0; i < 10; ++i) histogram->Record(700);
  // p50 lands in the fast bucket, p99 in the slow one; the estimate is the
  // bucket's inclusive upper bound (<= 2x the true value).
  EXPECT_EQ(ApproxQuantileMicros(*histogram, 0.50), 4u);
  EXPECT_EQ(ApproxQuantileMicros(*histogram, 0.90), 4u);
  EXPECT_EQ(ApproxQuantileMicros(*histogram, 0.91), 1024u);
  EXPECT_EQ(ApproxQuantileMicros(*histogram, 0.99), 1024u);
  EXPECT_EQ(ApproxQuantileMicros(*histogram, 1.0), 1024u);
  // q=0 still needs one sample: rank is clamped to the first sample.
  EXPECT_EQ(ApproxQuantileMicros(*histogram, 0.0), 4u);
}

TEST(MetricsTest, ApproxQuantileFromSnapshotMatchesLive) {
  Histogram* histogram = GetHistogram("test.quantile_snapshot_histogram");
  histogram->Reset();
  for (int i = 0; i < 8; ++i) histogram->Record(100);
  const MetricsSnapshot snapshot = SnapshotMetrics();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.name == "test.quantile_snapshot_histogram") {
      EXPECT_EQ(ApproxQuantileMicros(h, 0.5),
                ApproxQuantileMicros(*histogram, 0.5));
      return;
    }
  }
  FAIL() << "snapshot missing the test histogram";
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter* counter = GetCounter("test.concurrent_counter");
  Histogram* histogram = GetHistogram("test.concurrent_histogram");
  counter->Reset();
  histogram->Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(static_cast<uint64_t>(i % 64));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace doduo::util
