#include "doduo/util/logging.h"

#include "doduo/util/stopwatch.h"
#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These are filtered out; the statement must still be safe to evaluate.
  DODUO_LOG(Debug) << "hidden " << 1;
  DODUO_LOG(Info) << "hidden " << 2.5;
  DODUO_LOG(Warning) << "hidden " << "three";
  SetLogLevel(original);
}

TEST(LoggingTest, EmittedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  DODUO_LOG(Debug) << "visible debug";
  DODUO_LOG(Error) << "visible error " << 42;
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresForwardProgress) {
  Stopwatch stopwatch;
  const double first = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Busy-wait a tiny amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double second = stopwatch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(stopwatch.ElapsedMillis(), second * 1000.0,
              second * 1000.0 * 0.5 + 5.0);
  stopwatch.Restart();
  EXPECT_LT(stopwatch.ElapsedSeconds(), second + 1.0);
}

}  // namespace
}  // namespace doduo::util
