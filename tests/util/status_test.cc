#include "doduo/util/status.h"

#include <string>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IoError("disk on fire"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, MutableValue) {
  Result<std::string> r(std::string("a"));
  r.value() += "b";
  EXPECT_EQ(r.value(), "ab");
}

}  // namespace
}  // namespace doduo::util
