// CSV round-trip fuzzing: any grid of arbitrary cell bytes must survive
// Write → Parse exactly — quotes, commas, newlines, high bytes and all.

#include "doduo/util/csv.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::util {
namespace {

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomGridsRoundTrip) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t num_rows = 1 + rng.NextUint64(6);
    const size_t num_cols = 1 + rng.NextUint64(5);
    CsvRows rows(num_rows, std::vector<std::string>(num_cols));
    for (auto& row : rows) {
      for (auto& cell : row) {
        const size_t length = rng.NextUint64(12);
        for (size_t i = 0; i < length; ++i) {
          // Bias toward the characters that stress the quoting logic.
          switch (rng.NextUint64(6)) {
            case 0:
              cell.push_back(',');
              break;
            case 1:
              cell.push_back('"');
              break;
            case 2:
              cell.push_back('\n');
              break;
            default:
              cell.push_back(
                  static_cast<char>('a' + rng.NextUint64(26)));
          }
        }
      }
    }
    const std::string text = WriteCsvString(rows);
    const auto parsed = ParseCsv(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed.value(), rows) << "trial " << trial;
  }
}

TEST_P(CsvFuzzTest, ParserNeverCrashesOnRandomBytes) {
  util::Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t length = rng.NextUint64(200);
    std::string text;
    for (size_t i = 0; i < length; ++i) {
      text.push_back(static_cast<char>(rng.NextUint64(256)));
    }
    // Must return either OK rows or a clean error — never crash.
    const auto parsed = ParseCsv(text);
    if (parsed.ok()) {
      for (const auto& row : parsed.value()) {
        ASSERT_FALSE(row.empty());
      }
    } else {
      ASSERT_FALSE(parsed.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Values(1u, 42u, 777u, 31337u));

}  // namespace
}  // namespace doduo::util
