#include "doduo/util/string_util.h"

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(SplitTest, BasicAndEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123!"), "hello 123!");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(PrefixSuffixTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(IsAsciiDigitsTest, Basic) {
  EXPECT_TRUE(IsAsciiDigits("0123456789"));
  EXPECT_FALSE(IsAsciiDigits(""));
  EXPECT_FALSE(IsAsciiDigits("12a"));
  EXPECT_FALSE(IsAsciiDigits("-12"));
}

TEST(LooksNumericTest, AcceptsNumbers) {
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_TRUE(LooksNumeric("-42"));
  EXPECT_TRUE(LooksNumeric("+3.14"));
  EXPECT_TRUE(LooksNumeric("1,234,567"));
  EXPECT_TRUE(LooksNumeric("  19.99 "));
}

TEST(LooksNumericTest, RejectsNonNumbers) {
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("abc"));
  EXPECT_FALSE(LooksNumeric("1.2.3"));
  EXPECT_FALSE(LooksNumeric(",5"));
  EXPECT_FALSE(LooksNumeric("-"));
  EXPECT_FALSE(LooksNumeric("12e4"));  // scientific notation not accepted
}

TEST(FormatTest, DoubleAndPercent) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatPercent(0.9245, 2), "92.45");
  EXPECT_EQ(FormatPercent(1.0, 1), "100.0");
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("ab", "ba"), 2u);
}

TEST(CharNgramsTest, PaddedAndUnpadded) {
  auto grams = CharNgrams("ab", 2, /*pad=*/true);  // "^ab$"
  EXPECT_EQ(grams, (std::vector<std::string>{"^a", "ab", "b$"}));
  auto unpadded = CharNgrams("abc", 2, /*pad=*/false);
  EXPECT_EQ(unpadded, (std::vector<std::string>{"ab", "bc"}));
  EXPECT_TRUE(CharNgrams("a", 4, /*pad=*/true).empty());
}

}  // namespace
}  // namespace doduo::util
