#include "doduo/util/string_util.h"

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(SplitTest, BasicAndEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123!"), "hello 123!");
}

TEST(TrimTest, Basic) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(PrefixSuffixTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(IsAsciiDigitsTest, Basic) {
  EXPECT_TRUE(IsAsciiDigits("0123456789"));
  EXPECT_FALSE(IsAsciiDigits(""));
  EXPECT_FALSE(IsAsciiDigits("12a"));
  EXPECT_FALSE(IsAsciiDigits("-12"));
}

TEST(LooksNumericTest, AcceptsNumbers) {
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_TRUE(LooksNumeric("-42"));
  EXPECT_TRUE(LooksNumeric("+3.14"));
  EXPECT_TRUE(LooksNumeric("1,234,567"));
  EXPECT_TRUE(LooksNumeric("  19.99 "));
}

TEST(LooksNumericTest, RejectsNonNumbers) {
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("abc"));
  EXPECT_FALSE(LooksNumeric("1.2.3"));
  EXPECT_FALSE(LooksNumeric(",5"));
  EXPECT_FALSE(LooksNumeric("-"));
  EXPECT_FALSE(LooksNumeric("12e4"));  // scientific notation not accepted
}

TEST(FormatTest, DoubleAndPercent) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatPercent(0.9245, 2), "92.45");
  EXPECT_EQ(FormatPercent(1.0, 1), "100.0");
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("ab", "ba"), 2u);
}

TEST(Utf8ValidityTest, RecognizesWellAndIllFormedSequences) {
  EXPECT_TRUE(Utf8IsValid(""));
  EXPECT_TRUE(Utf8IsValid("plain ascii"));
  EXPECT_TRUE(Utf8IsValid("caf\xC3\xA9"));              // U+00E9
  EXPECT_TRUE(Utf8IsValid("\xE4\xB8\xAD\xE6\x96\x87"));  // 中文
  EXPECT_TRUE(Utf8IsValid("\xF0\x9F\x98\x80"));          // U+1F600
  EXPECT_FALSE(Utf8IsValid("\xC3"));              // truncated 2-byte
  EXPECT_FALSE(Utf8IsValid("abc\xE4\xB8"));       // truncated 3-byte
  EXPECT_FALSE(Utf8IsValid("\x80"));              // stray continuation
  EXPECT_FALSE(Utf8IsValid("\xC0\xAF"));          // overlong '/'
  EXPECT_FALSE(Utf8IsValid("\xE0\x80\xAF"));      // overlong 3-byte
  EXPECT_FALSE(Utf8IsValid("\xED\xA0\x80"));      // UTF-16 surrogate
  EXPECT_FALSE(Utf8IsValid("\xF4\x90\x80\x80"));  // above U+10FFFF
  EXPECT_FALSE(Utf8IsValid("\xFF"));              // invalid lead byte
}

TEST(Utf8RepairTest, ValidTextIsUntouched) {
  EXPECT_EQ(Utf8Repair("plain"), "plain");
  EXPECT_EQ(Utf8Repair("caf\xC3\xA9"), "caf\xC3\xA9");
  EXPECT_EQ(Utf8Repair(""), "");
}

TEST(Utf8RepairTest, InvalidSequencesBecomeReplacementChar) {
  const std::string fffd = "\xEF\xBF\xBD";
  EXPECT_EQ(Utf8Repair("\xC3"), fffd);                   // truncated at end
  EXPECT_EQ(Utf8Repair("a\xC3z"), "a" + fffd + "z");     // truncated mid-text
  EXPECT_EQ(Utf8Repair("\xC0\xAF"), fffd);               // overlong, one FFFD
  EXPECT_EQ(Utf8Repair("\x80\x80x"), fffd + "x");        // stray continuations
  EXPECT_EQ(Utf8Repair("\xED\xA0\x80!"), fffd + "!");    // surrogate
  EXPECT_TRUE(Utf8IsValid(Utf8Repair("\xF5\x9F\x98\x80\xE4\xB8")));
}

TEST(Utf8RepairTest, RepairedTextAlwaysValidates) {
  // Every 2-byte combination repairs to well-formed UTF-8.
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      const char bytes[2] = {static_cast<char>(a), static_cast<char>(b)};
      EXPECT_TRUE(Utf8IsValid(Utf8Repair(std::string_view(bytes, 2))));
    }
  }
}

TEST(Utf8ClampBytesTest, NeverSplitsASequence) {
  EXPECT_EQ(Utf8ClampBytes("abcdef", 3), "abc");
  EXPECT_EQ(Utf8ClampBytes("ab", 10), "ab");
  // "caf\xC3\xA9" clamped to 4 bytes must drop the whole 2-byte sequence.
  EXPECT_EQ(Utf8ClampBytes("caf\xC3\xA9", 4), "caf");
  EXPECT_EQ(Utf8ClampBytes("caf\xC3\xA9", 5), "caf\xC3\xA9");
  // 4-byte emoji: any cut inside it backs off to its start.
  const std::string emoji = "x\xF0\x9F\x98\x80";
  for (size_t cut = 1; cut < 5; ++cut) {
    EXPECT_EQ(Utf8ClampBytes(emoji, cut), "x") << "cut=" << cut;
  }
}

TEST(CharNgramsTest, PaddedAndUnpadded) {
  auto grams = CharNgrams("ab", 2, /*pad=*/true);  // "^ab$"
  EXPECT_EQ(grams, (std::vector<std::string>{"^a", "ab", "b$"}));
  auto unpadded = CharNgrams("abc", 2, /*pad=*/false);
  EXPECT_EQ(unpadded, (std::vector<std::string>{"ab", "bc"}));
  EXPECT_TRUE(CharNgrams("a", 4, /*pad=*/true).empty());
}

}  // namespace
}  // namespace doduo::util
