// ThreadPool unit tests: task completion, ParallelFor coverage and
// exception propagation, nested-call safety, and clean shutdown while work
// is still queued.

#include "doduo/util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace doduo::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  // Give the single worker a moment; the destructor drains regardless.
  while (!ran.load()) std::this_thread::yield();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t range : {0, 1, 3, 7, 64, 1000, 1001}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(range));
    pool.ParallelFor(0, range, /*grain=*/1,
                     [&hits](int64_t begin, int64_t end) {
                       for (int64_t i = begin; i < end; ++i) {
                         hits[static_cast<size_t>(i)].fetch_add(1);
                       }
                     });
    for (int64_t i = 0; i < range; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&calls](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&calls](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForRespectsGrain) {
  ThreadPool pool(8);
  // range 10 with grain 5 → at most 2 chunks, each at least 5 long.
  std::atomic<int> chunks{0};
  pool.ParallelFor(0, 10, /*grain=*/5,
                   [&chunks](int64_t begin, int64_t end) {
                     EXPECT_GE(end - begin, 5);
                     chunks.fetch_add(1);
                   });
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](int64_t begin, int64_t) {
                         if (begin >= 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);

  // The pool survives and stays usable after a throwing ParallelFor.
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 100, 1, [&total](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) total.fetch_add(i);
  });
  EXPECT_EQ(total.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, ParallelForExceptionFromSingleChunk) {
  ThreadPool pool(4);
  // Only one chunk throws; the others complete and the error still
  // surfaces on the calling thread.
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(0, 4, 1,
                                [&completed](int64_t begin, int64_t) {
                                  if (begin == 2) {
                                    throw std::runtime_error("chunk 2");
                                  }
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  // A nested ParallelFor issued from inside a chunk must not deadlock; it
  // runs inline on the worker.
  pool.ParallelFor(0, 8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(0, 10, 1, [&total](int64_t inner_begin,
                                          int64_t inner_end) {
        for (int64_t j = inner_begin; j < inner_end; ++j) total.fetch_add(1);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 10);
}

TEST(ThreadPoolTest, SubmitFromWorkerIsSafe) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&pool, &counter] {
        pool.Submit([&counter] { counter.fetch_add(1); });
      });
    }
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ShutdownCompletesPendingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1);
      });
    }
    // Destroy immediately: most tasks are still queued.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ComputePoolTest, SetComputeThreadsResizesGlobalPool) {
  SetComputeThreads(3);
  EXPECT_EQ(ComputeThreads(), 3);
  EXPECT_EQ(ComputePool()->num_threads(), 3);
  SetComputeThreads(1);
  EXPECT_EQ(ComputeThreads(), 1);
}

}  // namespace
}  // namespace doduo::util
