#include "doduo/probe/prober.h"

#include "gtest/gtest.h"

namespace doduo::probe {
namespace {

TEST(TemplatesTest, TypeAndRelationShapes) {
  const Template type_tmpl = MakeTypeTemplate("judy morris");
  EXPECT_EQ(type_tmpl.prefix, "judy morris is");
  EXPECT_EQ(type_tmpl.suffix, ".");
  const Template rel_tmpl = MakeRelationTemplate("happy feet", "usa");
  EXPECT_EQ(rel_tmpl.prefix, "happy feet");
  EXPECT_EQ(rel_tmpl.suffix, "usa .");
}

TEST(TemplatesTest, CandidatesCoverTheKb) {
  synth::KnowledgeBase kb = synth::KnowledgeBase::BuildWikiTableKb(1);
  const auto types = TypeCandidates(kb);
  ASSERT_EQ(static_cast<int>(types.size()), kb.num_types());
  EXPECT_EQ(types[0].label_id, 0);
  // Leaf words, not dotted names.
  for (const auto& candidate : types) {
    EXPECT_EQ(candidate.completion.find('.'), std::string::npos);
  }
  const auto relations = RelationCandidates(kb);
  ASSERT_EQ(static_cast<int>(relations.size()), kb.num_relations());
  EXPECT_EQ(relations[0].completion, kb.relation(0).phrase);
}

// Fixture with a deliberately trained toy LM: "alpha is red ." and
// "beta is blue ." are drilled in, so probing must rank the right color
// first.
class ProberTest : public ::testing::Test {
 protected:
  ProberTest() {
    for (const char* token : {"alpha", "beta", "is", "red", "blue", "."}) {
      vocab_.AddToken(token);
    }
    config_.vocab_size = vocab_.size();
    config_.max_positions = 12;
    config_.hidden_dim = 16;
    config_.num_heads = 2;
    config_.ffn_dim = 32;
    config_.num_layers = 1;
    config_.dropout = 0.0f;
    rng_ = std::make_unique<util::Rng>(7);
    model_ = std::make_unique<transformer::BertModel>("m", config_,
                                                      rng_.get());
    head_ = std::make_unique<transformer::MlmHead>("h", config_, rng_.get());
    transformer::MlmPretrainer::Options options;
    options.epochs = 40;
    options.batch_size = 4;
    options.learning_rate = 2e-3;
    scorer_ = std::make_unique<transformer::MlmPretrainer>(
        model_.get(), head_.get(), options);
    tokenizer_ = std::make_unique<text::WordPieceTokenizer>(&vocab_);

    std::vector<std::vector<int>> corpus;
    for (int i = 0; i < 20; ++i) {
      corpus.push_back(Encode("alpha is red ."));
      corpus.push_back(Encode("beta is blue ."));
    }
    scorer_->Train(corpus);
  }

  std::vector<int> Encode(const std::string& sentence) const {
    std::vector<int> ids = {text::Vocab::kClsId};
    for (int id : tokenizer_->Encode(sentence)) ids.push_back(id);
    ids.push_back(text::Vocab::kSepId);
    return ids;
  }

  text::Vocab vocab_;
  transformer::TransformerConfig config_;
  std::unique_ptr<util::Rng> rng_;
  std::unique_ptr<transformer::BertModel> model_;
  std::unique_ptr<transformer::MlmHead> head_;
  std::unique_ptr<transformer::MlmPretrainer> scorer_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;
};

TEST_F(ProberTest, TrueCompletionHasLowerPerplexity) {
  LmProber prober(scorer_.get(), tokenizer_.get());
  const Template tmpl = MakeTypeTemplate("alpha");
  const double ppl_red = prober.ScoreCompletion(tmpl, "red");
  const double ppl_blue = prober.ScoreCompletion(tmpl, "blue");
  EXPECT_LT(ppl_red, ppl_blue);
}

TEST_F(ProberTest, RankCandidatesIdentifiesTruth) {
  LmProber prober(scorer_.get(), tokenizer_.get());
  const std::vector<Candidate> candidates = {{0, "red"}, {1, "blue"}};
  int rank = 0;
  double ppl_ratio = 0.0;
  prober.RankCandidates(MakeTypeTemplate("alpha"), candidates, 0, &rank,
                        &ppl_ratio);
  EXPECT_EQ(rank, 1);
  EXPECT_LT(ppl_ratio, 1.0);  // better than the candidate average
  prober.RankCandidates(MakeTypeTemplate("beta"), candidates, 1, &rank,
                        &ppl_ratio);
  EXPECT_EQ(rank, 1);
}

}  // namespace
}  // namespace doduo::probe
