#include "doduo/analysis/attention_analysis.h"

#include "doduo/text/wordpiece_trainer.h"
#include "gtest/gtest.h"

namespace doduo::analysis {
namespace {

class AttentionAnalysisTest : public ::testing::Test {
 protected:
  AttentionAnalysisTest() {
    for (const char* token : {"aa", "bb", "cc", "dd"}) {
      vocab_.AddToken(token);
    }
    tokenizer_ = std::make_unique<text::WordPieceTokenizer>(&vocab_);

    config_.encoder.vocab_size = vocab_.size();
    config_.encoder.max_positions = 32;
    config_.encoder.hidden_dim = 16;
    config_.encoder.num_heads = 2;
    config_.encoder.ffn_dim = 32;
    config_.encoder.num_layers = 1;
    config_.encoder.dropout = 0.0f;
    config_.serializer.max_total_tokens = 32;
    config_.num_types = 3;
    config_.num_relations = 0;
    config_.tasks = core::TaskSet::kTypesOnly;
    util::Rng rng(1);
    model_ = std::make_unique<core::DoduoModel>(config_, &rng);
    model_->set_training(false);
    serializer_ = std::make_unique<table::TableSerializer>(
        tokenizer_.get(), config_.serializer);

    dataset_.multi_label = false;
    dataset_.type_vocab.AddLabel("t0");
    dataset_.type_vocab.AddLabel("t1");
    dataset_.type_vocab.AddLabel("t2");
    for (int i = 0; i < 4; ++i) {
      table::AnnotatedTable annotated;
      annotated.table.AddColumn({"", {"aa", "bb"}});
      annotated.table.AddColumn({"", {"cc", "dd"}});
      annotated.column_types = {{0}, {1}};
      dataset_.tables.push_back(std::move(annotated));
    }
    // One single-column table: must be skipped by the analysis.
    table::AnnotatedTable single;
    single.table.AddColumn({"", {"aa"}});
    single.column_types = {{2}};
    dataset_.tables.push_back(std::move(single));
  }

  text::Vocab vocab_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;
  core::DoduoConfig config_;
  std::unique_ptr<core::DoduoModel> model_;
  std::unique_ptr<table::TableSerializer> serializer_;
  table::ColumnAnnotationDataset dataset_;
};

TEST_F(AttentionAnalysisTest, MatrixCoversObservedTypesOnly) {
  const auto dependency = AnalyzeInterColumnDependency(
      model_.get(), *serializer_, dataset_, {0, 1, 2, 3, 4});
  // Type t2 only appears in a single-column table → excluded.
  ASSERT_EQ(dependency.type_names.size(), 2u);
  EXPECT_EQ(dependency.type_names[0], "t0");
  EXPECT_EQ(dependency.type_names[1], "t1");
  // Off-diagonal co-occurrence counted for all 4 two-column tables.
  EXPECT_EQ(dependency.cooccurrence[0][1], 4);
  EXPECT_EQ(dependency.cooccurrence[1][0], 4);
  EXPECT_EQ(dependency.cooccurrence[0][0], 0);
}

TEST_F(AttentionAnalysisTest, ValuesAreCooccurrenceNormalized) {
  const auto dependency = AnalyzeInterColumnDependency(
      model_.get(), *serializer_, dataset_, {0, 1, 2, 3});
  // attention(i→j) − 1/2 is bounded by the attention simplex.
  for (const auto& row : dependency.matrix) {
    for (double value : row) {
      EXPECT_GE(value, -0.5);
      EXPECT_LE(value, 0.5);
    }
  }
}

TEST_F(AttentionAnalysisTest, RenderProducesMatrixText) {
  const auto dependency = AnalyzeInterColumnDependency(
      model_.get(), *serializer_, dataset_, {0, 1});
  const std::string rendered = RenderDependencyMatrix(dependency);
  EXPECT_NE(rendered.find("t0"), std::string::npos);
  EXPECT_NE(rendered.find("t1"), std::string::npos);
  EXPECT_NE(rendered.find("rely"), std::string::npos);
}

TEST_F(AttentionAnalysisTest, ColumnAttentionRowsAreSubStochastic) {
  // [CLS]→[CLS] attention is a sub-block of a stochastic matrix: entries
  // in [0,1], row sums ≤ 1.
  const auto serialized =
      serializer_->SerializeTable(dataset_.tables[0].table).value();
  const nn::Tensor attention = model_->ColumnAttention(serialized);
  for (int64_t i = 0; i < attention.rows(); ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < attention.cols(); ++j) {
      EXPECT_GE(attention.at(i, j), 0.0f);
      EXPECT_LE(attention.at(i, j), 1.0f);
      row_sum += static_cast<double>(attention.at(i, j));
    }
    EXPECT_LE(row_sum, 1.0 + 1e-5);
  }
}

}  // namespace
}  // namespace doduo::analysis
