// Whole-program passes (DESIGN §16) against synthetic in-memory
// repositories: every rule must fire on a seeded violation of its class —
// an upward include, an include cycle, a decoder-less frame id, a typo'd
// metric name, an allocation on the forward path — and stay quiet on the
// clean shape of the same tree.

#include "lint/graph_rules.h"

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace doduo::lint {
namespace {

using Files = std::vector<std::pair<std::string, std::string>>;

std::vector<Violation> RunRule(Files files, std::string_view rule) {
  const ProjectModel model = ProjectModel::Build(std::move(files));
  std::vector<Violation> out;
  for (Violation& v : RunGraphRules(model, GraphRuleOptions{})) {
    if (v.rule == rule) out.push_back(std::move(v));
  }
  return out;
}

bool AnyMessageContains(const std::vector<Violation>& vs,
                        std::string_view needle) {
  for (const Violation& v : vs) {
    if (v.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// -- layering ---------------------------------------------------------------

TEST(LayeringTest, UpwardIncludeFires) {
  const auto vs = RunRule(
      {{"src/doduo/core/annotator.cc", "#include \"doduo/serve/server.h\"\n"},
       {"src/doduo/serve/server.h", ""}},
      kRuleLayering);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].file, "src/doduo/core/annotator.cc");
  EXPECT_EQ(vs[0].line, 1);
  EXPECT_NE(vs[0].message.find("serve"), std::string::npos);
}

TEST(LayeringTest, SameRankSiblingIncludeFires) {
  // nn and eval share a rank: neither may see the other.
  const auto vs = RunRule(
      {{"src/doduo/nn/ops.cc", "#include \"doduo/eval/metrics.h\"\n"},
       {"src/doduo/eval/metrics.h", ""}},
      kRuleLayering);
  ASSERT_EQ(vs.size(), 1u);
}

TEST(LayeringTest, DownwardAndSameModuleIncludesAreQuiet) {
  const auto vs = RunRule(
      {{"src/doduo/serve/server.cc",
        "#include \"doduo/serve/protocol.h\"\n"
        "#include \"doduo/core/annotator.h\"\n"
        "#include \"doduo/util/status.h\"\n"
        "#include <vector>\n"},
       {"src/doduo/serve/protocol.h", ""},
       {"src/doduo/core/annotator.h", ""},
       {"src/doduo/util/status.h", ""}},
      kRuleLayering);
  EXPECT_TRUE(vs.empty());
}

TEST(LayeringTest, SrcIncludingToolsFires) {
  const auto vs = RunRule(
      {{"src/doduo/util/status.cc", "#include \"lint/lint_engine.h\"\n"},
       {"tools/lint/lint_engine.h", ""}},
      kRuleLayering);
  ASSERT_EQ(vs.size(), 1u);
}

TEST(LayeringTest, ToolsAndTestsAreUnconstrained) {
  const auto vs = RunRule(
      {{"tools/doduo_cli.cc", "#include \"doduo/serve/server.h\"\n"},
       {"tests/serve/x_test.cc", "#include \"doduo/serve/server.h\"\n"},
       {"src/doduo/serve/server.h", ""}},
      kRuleLayering);
  EXPECT_TRUE(vs.empty());
}

TEST(LayeringTest, UnknownModuleMustJoinTheDag) {
  const auto vs =
      RunRule({{"src/doduo/newthing/x.h", ""}}, kRuleLayering);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_NE(vs[0].message.find("newthing"), std::string::npos);
}

TEST(LayeringTest, NolintEscapesTheEdge) {
  const auto vs = RunRule(
      {{"src/doduo/core/x.cc",
        "#include \"doduo/serve/server.h\"  // NOLINT(layering)\n"},
       {"src/doduo/serve/server.h", ""}},
      kRuleLayering);
  EXPECT_TRUE(vs.empty());
}

// -- include-cycle ----------------------------------------------------------

TEST(IncludeCycleTest, TwoFileCycleFiresOnce) {
  const auto vs = RunRule(
      {{"src/doduo/util/a.h", "#include \"doduo/util/b.h\"\n"},
       {"src/doduo/util/b.h", "#include \"doduo/util/a.h\"\n"}},
      kRuleIncludeCycle);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_NE(vs[0].message.find("src/doduo/util/a.h"), std::string::npos);
  EXPECT_NE(vs[0].message.find("src/doduo/util/b.h"), std::string::npos);
}

TEST(IncludeCycleTest, ThreeFileCycleReportsTheFullPath) {
  const auto vs = RunRule(
      {{"src/doduo/util/a.h", "#include \"doduo/util/b.h\"\n"},
       {"src/doduo/util/b.h", "#include \"doduo/util/c.h\"\n"},
       {"src/doduo/util/c.h", "#include \"doduo/util/a.h\"\n"}},
      kRuleIncludeCycle);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_NE(vs[0].message.find("c.h"), std::string::npos);
}

TEST(IncludeCycleTest, DiamondIsAcyclic) {
  const auto vs = RunRule(
      {{"src/doduo/util/top.h",
        "#include \"doduo/util/left.h\"\n#include \"doduo/util/right.h\"\n"},
       {"src/doduo/util/left.h", "#include \"doduo/util/base.h\"\n"},
       {"src/doduo/util/right.h", "#include \"doduo/util/base.h\"\n"},
       {"src/doduo/util/base.h", ""}},
      kRuleIncludeCycle);
  EXPECT_TRUE(vs.empty());
}

// -- frame-symmetry ---------------------------------------------------------

/// A minimal, fully symmetric protocol: dense ids, paired Request/Response,
/// both wire sides referencing every frame, codecs paired, decoder fuzzed.
Files CleanProtocolTree() {
  return {
      {"src/doduo/serve/protocol.h",
       "enum class FrameType : uint8_t {\n"
       "  kPingRequest = 1,\n"
       "  kPingResponse = 2,\n"
       "  kErrorResponse = 3,\n"
       "};\n"
       "bool IsKnownFrameType(uint8_t type);\n"
       "class FrameDecoder {};\n"
       "void EncodePingPayload(std::string* out);\n"
       "bool DecodePingPayload(std::string_view in);\n"},
      {"src/doduo/serve/client.cc",
       "void C() { Use(kPingRequest, kPingResponse, kErrorResponse); }\n"},
      {"src/doduo/serve/server.cc",
       "void S() { Use(kPingRequest, kPingResponse, kErrorResponse); }\n"},
      {"tests/serve/protocol_fuzz_test.cc",
       "void T() {\n"
       "  Use(kPingRequest, kPingResponse, kErrorResponse);\n"
       "  DecodePingPayload(\"x\");\n"
       "  FrameDecoder d;\n"
       "}\n"},
  };
}

TEST(FrameSymmetryTest, CleanProtocolIsQuiet) {
  EXPECT_TRUE(RunRule(CleanProtocolTree(), kRuleFrameSymmetry).empty());
}

TEST(FrameSymmetryTest, UnpairedRequestFires) {
  Files files = CleanProtocolTree();
  // Add a request with no response (but keep ids dense and wire it up).
  files[0].second =
      "enum class FrameType : uint8_t {\n"
      "  kPingRequest = 1,\n"
      "  kPingResponse = 2,\n"
      "  kErrorResponse = 3,\n"
      "  kStatsRequest = 4,\n"
      "};\n"
      "bool IsKnownFrameType(uint8_t type);\n"
      "class FrameDecoder {};\n"
      "void EncodePingPayload(std::string* out);\n"
      "bool DecodePingPayload(std::string_view in);\n";
  files[1].second = "void C() { Use(kPingRequest, kPingResponse,\n"
                    "               kErrorResponse, kStatsRequest); }\n";
  files[2].second = files[1].second;
  files[3].second =
      "void T() {\n"
      "  Use(kPingRequest, kPingResponse, kErrorResponse, kStatsRequest);\n"
      "  DecodePingPayload(\"x\");\n"
      "  FrameDecoder d;\n"
      "}\n";
  const auto vs = RunRule(std::move(files), kRuleFrameSymmetry);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(vs, "kStatsResponse"));
}

TEST(FrameSymmetryTest, SparseIdsFire) {
  Files files = CleanProtocolTree();
  files[0].second =
      "enum class FrameType : uint8_t {\n"
      "  kPingRequest = 1,\n"
      "  kPingResponse = 2,\n"
      "  kErrorResponse = 7,\n"  // ids 3..6 unused
      "};\n"
      "void EncodePingPayload(std::string* out);\n"
      "bool DecodePingPayload(std::string_view in);\n";
  const auto vs = RunRule(std::move(files), kRuleFrameSymmetry);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(vs, "not dense"));
  EXPECT_TRUE(AnyMessageContains(vs, "3, 4, 5, 6"));
}

TEST(FrameSymmetryTest, DuplicateIdFires) {
  Files files = CleanProtocolTree();
  files[0].second =
      "enum class FrameType : uint8_t {\n"
      "  kPingRequest = 1,\n"
      "  kPingResponse = 2,\n"
      "  kErrorResponse = 2,\n"
      "};\n"
      "void EncodePingPayload(std::string* out);\n"
      "bool DecodePingPayload(std::string_view in);\n";
  const auto vs = RunRule(std::move(files), kRuleFrameSymmetry);
  EXPECT_TRUE(AnyMessageContains(vs, "collides"));
}

TEST(FrameSymmetryTest, FrameMissingFromOneWireSideFires) {
  Files files = CleanProtocolTree();
  files[2].second = "void S() { Use(kPingRequest, kPingResponse); }\n";
  const auto vs = RunRule(std::move(files), kRuleFrameSymmetry);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(vs, "kErrorResponse"));
  EXPECT_TRUE(AnyMessageContains(vs, "server.cc"));
}

TEST(FrameSymmetryTest, UntestedFrameFires) {
  Files files = CleanProtocolTree();
  files[3].second =
      "void T() {\n"
      "  Use(kPingRequest, kPingResponse);\n"
      "  DecodePingPayload(\"x\");\n"
      "  FrameDecoder d;\n"
      "}\n";
  const auto vs = RunRule(std::move(files), kRuleFrameSymmetry);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(vs, "no test reference"));
}

TEST(FrameSymmetryTest, DecoderlessCodecFires) {
  Files files = CleanProtocolTree();
  files[0].second =
      "enum class FrameType : uint8_t {\n"
      "  kPingRequest = 1,\n"
      "  kPingResponse = 2,\n"
      "  kErrorResponse = 3,\n"
      "};\n"
      "class FrameDecoder {};\n"
      "void EncodePingPayload(std::string* out);\n"
      "bool DecodePingPayload(std::string_view in);\n"
      "void EncodeStatsPayload(std::string* out);\n";  // no decoder
  const auto vs = RunRule(std::move(files), kRuleFrameSymmetry);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(vs, "DecodeStatsPayload"));
}

TEST(FrameSymmetryTest, UnfuzzedDecoderFires) {
  Files files = CleanProtocolTree();
  files[3].first = "tests/serve/protocol_test.cc";  // not a fuzz file
  const auto vs = RunRule(std::move(files), kRuleFrameSymmetry);
  EXPECT_TRUE(AnyMessageContains(vs, "fuzz"));
}

// -- metrics-registry -------------------------------------------------------

Files MetricsTree(const std::string& call_site) {
  return {
      {"src/doduo/util/metric_names.h",
       "inline constexpr std::string_view kServeRequestsTotal =\n"
       "    \"serve.requests_total\";\n"},
      {"src/doduo/serve/server.cc", call_site},
  };
}

TEST(MetricsRegistryTest, RegisteredNameIsQuiet) {
  const auto vs = RunRule(
      MetricsTree("void S() { GetCounter(\"serve.requests_total\"); }\n"),
      kRuleMetricsRegistry);
  EXPECT_TRUE(vs.empty());
}

TEST(MetricsRegistryTest, TypoFiresWithSuggestion) {
  const auto vs = RunRule(
      MetricsTree("void S() { GetCounter(\"serve.request_total\"); }\n"),
      kRuleMetricsRegistry);
  // The typo'd use plus the now-unused registered name.
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_TRUE(AnyMessageContains(vs, "did you mean"));
  EXPECT_TRUE(AnyMessageContains(vs, "serve.requests_total"));
}

TEST(MetricsRegistryTest, UnregisteredHistogramFires) {
  const auto vs = RunRule(
      MetricsTree("void S() {\n"
                  "  GetCounter(\"serve.requests_total\");\n"
                  "  GetHistogram(\"brand.new_metric_us\");\n"
                  "}\n"),
      kRuleMetricsRegistry);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 3);
  EXPECT_TRUE(AnyMessageContains(vs, "brand.new_metric_us"));
}

TEST(MetricsRegistryTest, TestPrefixIsExempt) {
  const auto vs = RunRule(
      MetricsTree("void S() {\n"
                  "  GetCounter(\"serve.requests_total\");\n"
                  "  GetCounter(\"test.anything_goes\");\n"
                  "}\n"),
      kRuleMetricsRegistry);
  EXPECT_TRUE(vs.empty());
}

TEST(MetricsRegistryTest, UnusedRegisteredNameFires) {
  Files files = MetricsTree("void S() { GetCounter(name_variable); }\n");
  files[0].second +=
      "inline constexpr std::string_view kDead = \"dead.metric\";\n";
  // The variable-name call is skipped (nothing checkable); only the dead
  // registry entry fires — "serve.requests_total" also has no literal use.
  const auto vs = RunRule(std::move(files), kRuleMetricsRegistry);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].file, "src/doduo/util/metric_names.h");
  EXPECT_TRUE(AnyMessageContains(vs, "dead.metric"));
}

// -- hot-path-alloc ---------------------------------------------------------

Files HotPathTree(const std::string& helper_body) {
  return {
      {"src/doduo/transformer/encoder.cc",
       "const Tensor& Forward(const Tensor& x) {\n"
       "  Helper(x);\n"
       "  return x;\n"
       "}\n"},
      {"src/doduo/nn/ops.cc",
       "void Helper(const Tensor& x) {\n" + helper_body + "}\n"},
  };
}

TEST(HotPathAllocTest, GrowthCallOnForwardPathFires) {
  const auto vs =
      RunRule(HotPathTree("  scratch.push_back(1.0f);\n"), kRuleHotPathAlloc);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].file, "src/doduo/nn/ops.cc");
  EXPECT_EQ(vs[0].line, 2);
  // The diagnostic names the call chain from the root.
  EXPECT_TRUE(AnyMessageContains(vs, "Forward -> Helper"));
}

TEST(HotPathAllocTest, NakedNewOnForwardPathFires) {
  const auto vs =
      RunRule(HotPathTree("  float* p = new float[8];\n  Use(p);\n"),
              kRuleHotPathAlloc);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(vs, "'new'"));
}

TEST(HotPathAllocTest, UnreachableFunctionIsQuiet) {
  Files files = HotPathTree("  Compute(x);\n");
  files.push_back({"src/doduo/nn/setup.cc",
                   "void BuildTables() {\n"
                   "  cache.push_back(1);\n"
                   "}\n"});
  EXPECT_TRUE(RunRule(std::move(files), kRuleHotPathAlloc).empty());
}

TEST(HotPathAllocTest, ExemptArenaFilesAreQuiet) {
  Files files = HotPathTree("  ResizeUninitialized(x);\n");
  // nn/tensor and nn/workspace are the audited choke points themselves.
  files.push_back({"src/doduo/nn/tensor.cc",
                   "void ResizeUninitialized(const Tensor& x) {\n"
                   "  data_.resize(8);\n"
                   "}\n"});
  EXPECT_TRUE(RunRule(std::move(files), kRuleHotPathAlloc).empty());
}

TEST(HotPathAllocTest, NolintEscapesWithJustification) {
  const auto vs = RunRule(
      HotPathTree("  cache.resize(8);  // NOLINT(hot-path-alloc)\n"),
      kRuleHotPathAlloc);
  EXPECT_TRUE(vs.empty());
}

}  // namespace
}  // namespace doduo::lint
