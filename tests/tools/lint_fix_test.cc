// `doduo_lint --fix` (DESIGN §16): the mechanical rules — include-order
// and header-guard — are fixable by construction. The contract under test:
// a fixed source lints clean of the fixed rule, ApplyFixes is idempotent,
// and anything the fixer is not sure about (an include block interleaved
// with code or conditional compilation) is returned byte-identical.

#include "lint/lint_engine.h"

#include <string>

#include "gtest/gtest.h"

namespace doduo::lint {
namespace {

std::string Fixed(std::string_view path, std::string_view source,
                  int* applied = nullptr) {
  int count = 0;
  std::string out = ApplyFixes(path, source, &count);
  if (applied != nullptr) *applied = count;
  return out;
}

bool LintsCleanOf(std::string_view path, std::string_view source,
                  std::string_view rule) {
  for (const Violation& v : LintSource(path, source, LintOptions{})) {
    if (v.rule == rule) return false;
  }
  return true;
}

void ExpectIdempotent(std::string_view path, std::string_view source) {
  const std::string once = Fixed(path, source);
  int second_pass = -1;
  const std::string twice = Fixed(path, once, &second_pass);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(second_pass, 0);
}

TEST(FixIncludeOrderTest, RegroupsOwnSystemProject) {
  const std::string_view src =
      "#include \"doduo/nn/ops.h\"\n"
      "#include \"doduo/util/status.h\"\n"
      "#include <vector>\n"
      "\n"
      "void f() {}\n";
  int applied = 0;
  const std::string fixed = Fixed("src/doduo/nn/ops.cc", src, &applied);
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(fixed,
            "#include \"doduo/nn/ops.h\"\n"
            "\n"
            "#include <vector>\n"
            "\n"
            "#include \"doduo/util/status.h\"\n"
            "\n"
            "void f() {}\n");
  EXPECT_TRUE(LintsCleanOf("src/doduo/nn/ops.cc", fixed, kRuleIncludeOrder));
  ExpectIdempotent("src/doduo/nn/ops.cc", src);
}

TEST(FixIncludeOrderTest, HoistsBuriedOwnHeader) {
  const std::string_view src =
      "#include <vector>\n"
      "#include \"doduo/nn/ops.h\"\n"
      "#include <cmath>\n"
      "\n"
      "void f() {}\n";
  const std::string fixed = Fixed("src/doduo/nn/ops.cc", src);
  EXPECT_EQ(fixed,
            "#include \"doduo/nn/ops.h\"\n"
            "\n"
            "#include <vector>\n"
            "#include <cmath>\n"
            "\n"
            "void f() {}\n");
  ExpectIdempotent("src/doduo/nn/ops.cc", src);
}

TEST(FixIncludeOrderTest, TestFilesKeepTheirFirstQuotedInclude) {
  const std::string_view src =
      "#include \"doduo/nn/ops.h\"\n"
      "#include \"gtest/gtest.h\"\n"
      "#include <vector>\n";
  const std::string fixed = Fixed("tests/nn/ops_test.cc", src);
  EXPECT_EQ(fixed,
            "#include \"doduo/nn/ops.h\"\n"
            "\n"
            "#include <vector>\n"
            "\n"
            "#include \"gtest/gtest.h\"\n");
  ExpectIdempotent("tests/nn/ops_test.cc", src);
}

TEST(FixHeaderGuardTest, InsertsGuardAfterLeadingComment) {
  const std::string_view src =
      "// Doc comment.\n"
      "\n"
      "void f();\n";
  int applied = 0;
  const std::string fixed = Fixed("src/doduo/nn/foo.h", src, &applied);
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(fixed,
            "// Doc comment.\n"
            "\n"
            "#ifndef DODUO_NN_FOO_H_\n"
            "#define DODUO_NN_FOO_H_\n"
            "\n"
            "void f();\n"
            "\n"
            "#endif  // DODUO_NN_FOO_H_\n");
  EXPECT_TRUE(LintsCleanOf("src/doduo/nn/foo.h", fixed, kRuleHeaderGuard));
  ExpectIdempotent("src/doduo/nn/foo.h", src);
}

TEST(FixHeaderGuardTest, ToolsPathsKeepTheirScopeInTheGuard) {
  const std::string fixed =
      Fixed("tools/lint/new_pass.h", "void f();\n");
  EXPECT_NE(fixed.find("#ifndef DODUO_TOOLS_LINT_NEW_PASS_H_"),
            std::string::npos);
}

TEST(ApplyFixesTest, FixesBothRulesInOneHeader) {
  const std::string_view src =
      "#include \"doduo/table/table.h\"\n"
      "#include <string>\n";
  int applied = 0;
  const std::string fixed = Fixed("src/doduo/table/sanitizer.h", src,
                                  &applied);
  EXPECT_EQ(applied, 2);
  EXPECT_EQ(fixed,
            "#ifndef DODUO_TABLE_SANITIZER_H_\n"
            "#define DODUO_TABLE_SANITIZER_H_\n"
            "\n"
            "#include <string>\n"
            "\n"
            "#include \"doduo/table/table.h\"\n"
            "\n"
            "#endif  // DODUO_TABLE_SANITIZER_H_\n");
  EXPECT_TRUE(
      LintsCleanOf("src/doduo/table/sanitizer.h", fixed, kRuleHeaderGuard));
  EXPECT_TRUE(
      LintsCleanOf("src/doduo/table/sanitizer.h", fixed, kRuleIncludeOrder));
  ExpectIdempotent("src/doduo/table/sanitizer.h", src);
}

TEST(ApplyFixesTest, InterleavedIncludeBlockIsLeftAlone) {
  // The ordering violation is real, but code sits inside the block: the
  // fixer must not reorder across it.
  const std::string_view src =
      "#include \"doduo/util/status.h\"\n"
      "static int x = 1;\n"
      "#include <vector>\n";
  ASSERT_FALSE(
      LintsCleanOf("src/doduo/nn/x.cc", src, kRuleIncludeOrder));
  int applied = -1;
  const std::string fixed = Fixed("src/doduo/nn/x.cc", src, &applied);
  EXPECT_EQ(applied, 0);
  EXPECT_EQ(fixed, src);
}

TEST(ApplyFixesTest, CleanSourceIsReturnedByteIdentical) {
  const std::string_view src =
      "#ifndef DODUO_NN_OPS_H_\n"
      "#define DODUO_NN_OPS_H_\n"
      "\n"
      "#include <vector>\n"
      "\n"
      "#include \"doduo/util/status.h\"\n"
      "\n"
      "void f();\n"
      "\n"
      "#endif  // DODUO_NN_OPS_H_\n";
  int applied = -1;
  EXPECT_EQ(Fixed("src/doduo/nn/ops.h", src, &applied), src);
  EXPECT_EQ(applied, 0);
}

}  // namespace
}  // namespace doduo::lint
