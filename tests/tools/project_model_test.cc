// The ProjectModel is the IR every whole-program pass trusts (DESIGN §16):
// if module classification, include parsing, or include resolution is
// wrong, every graph rule silently checks the wrong graph.

#include "lint/project_model.h"

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace doduo::lint {
namespace {

TEST(ModuleForPathTest, ClassifiesEveryScope) {
  EXPECT_EQ(ModuleForPath("src/doduo/util/status.h"), "util");
  EXPECT_EQ(ModuleForPath("src/doduo/serve/protocol.h"), "serve");
  EXPECT_EQ(ModuleForPath("src/doduo/doduo.h"), "src");
  EXPECT_EQ(ModuleForPath("tools/lint/lint_engine.cc"), "tools");
  EXPECT_EQ(ModuleForPath("tests/nn/tensor_test.cc"), "tests");
  EXPECT_EQ(ModuleForPath("bench/bench_kernels.cc"), "bench");
  EXPECT_EQ(ModuleForPath("examples/annotate.cc"), "examples");
  EXPECT_EQ(ModuleForPath("third_party/x/y.h"), "other");
}

TEST(DefaultLayerRanksTest, RanksFormTheDocumentedDag) {
  const auto ranks = DefaultLayerRanks();
  // Spot-check the ordering the DAG depends on.
  EXPECT_LT(ranks.at("util"), ranks.at("text"));
  EXPECT_LT(ranks.at("text"), ranks.at("table"));
  EXPECT_LT(ranks.at("table"), ranks.at("nn"));
  EXPECT_LT(ranks.at("nn"), ranks.at("transformer"));
  EXPECT_LT(ranks.at("transformer"), ranks.at("core"));
  EXPECT_LT(ranks.at("core"), ranks.at("serve"));
  EXPECT_LT(ranks.at("serve"), ranks.at("experiments"));
  // Sibling modules share a rank: neither may include the other.
  EXPECT_EQ(ranks.at("nn"), ranks.at("eval"));
  EXPECT_EQ(ranks.at("serve"), ranks.at("analysis"));
  // Top-of-stack scopes are unconstrained consumers.
  EXPECT_EQ(ranks.at("tools"), kUnconstrainedRank);
  EXPECT_EQ(ranks.at("tests"), kUnconstrainedRank);
}

TEST(ProjectModelTest, ParsesAndResolvesIncludes) {
  auto model = ProjectModel::Build({
      {"src/doduo/util/status.h", "#ifndef A\n#define A\n#endif\n"},
      {"src/doduo/nn/tensor.h",
       "#include <vector>\n"
       "#include \"doduo/util/status.h\"\n"
       "#include \"doduo/util/missing.h\"\n"},
  });
  ASSERT_EQ(model.files.size(), 2u);
  const FileModel& tensor = model.files[1];
  ASSERT_EQ(tensor.includes.size(), 3u);
  EXPECT_TRUE(tensor.includes[0].system);
  EXPECT_EQ(tensor.includes[0].path, "vector");
  EXPECT_EQ(tensor.includes[0].target, -1);
  EXPECT_FALSE(tensor.includes[1].system);
  EXPECT_EQ(tensor.includes[1].line, 2);
  // Quote includes resolve against the src/ root...
  EXPECT_EQ(tensor.includes[1].target, 0);
  // ...and an unresolvable project header stays external.
  EXPECT_EQ(tensor.includes[2].target, -1);
}

TEST(ProjectModelTest, ResolvesToolsRootAndFindsBySuffix) {
  auto model = ProjectModel::Build({
      {"tools/lint/lint_engine.h", ""},
      {"tools/lint/doduo_lint.cc", "#include \"lint/lint_engine.h\"\n"},
  });
  EXPECT_EQ(model.files[1].includes[0].target, 0);
  EXPECT_EQ(model.FindFileBySuffix("lint/lint_engine.h"), 0);
  EXPECT_EQ(model.FindFileBySuffix("no/such/file.h"), -1);
}

TEST(ProjectModelTest, TokensLiteralsAndSuppressionsAreFiled) {
  auto model = ProjectModel::Build({
      {"src/doduo/core/x.cc",
       "void f() {\n"
       "  g(\"lit\");  // NOLINT(some-rule)\n"
       "}\n"},
  });
  const FileModel& f = model.files[0];
  ASSERT_EQ(f.literals.size(), 1u);
  EXPECT_EQ(f.literals[0].text, "lit");
  EXPECT_EQ(f.literals[0].line, 2);
  EXPECT_TRUE(IsSuppressed(f.suppressions, 2, "some-rule"));
  EXPECT_FALSE(IsSuppressed(f.suppressions, 1, "some-rule"));
  bool saw_g = false;
  for (const Token& t : f.tokens) saw_g |= t.text == "g";
  EXPECT_TRUE(saw_g);
}

}  // namespace
}  // namespace doduo::lint
