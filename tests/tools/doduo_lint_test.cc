// The linter is correctness tooling, so it gets the same test discipline as
// the kernels: every rule must fire on a crafted violating snippet, stay
// quiet on the idiomatic form, and honor the `// NOLINT(rule-id)` escape
// hatch (DESIGN §11).

#include "lint/lint_engine.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace doduo::lint {
namespace {

std::vector<Violation> Lint(std::string_view path, std::string_view source,
                           std::vector<std::string> status_functions = {}) {
  LintOptions options;
  for (std::string& name : status_functions) {
    options.status_functions.insert(std::move(name));
  }
  return LintSource(path, source, options);
}

bool HasRule(const std::vector<Violation>& vs, std::string_view rule) {
  for (const Violation& v : vs) {
    if (v.rule == rule) return true;
  }
  return false;
}

// -- discarded-status -------------------------------------------------------

TEST(DiscardedStatusTest, BareCallStatementFires) {
  const auto vs = Lint("src/doduo/core/x.cc",
                      "void f() {\n  LoadParameters(path, params);\n}\n",
                      {"LoadParameters"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, kRuleDiscardedStatus);
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_EQ(vs[0].file, "src/doduo/core/x.cc");
}

TEST(DiscardedStatusTest, MemberChainCallFires) {
  const auto vs = Lint("src/doduo/core/x.cc",
                      "void f() {\n  vocab.Save(path);\n}\n", {"Save"});
  EXPECT_TRUE(HasRule(vs, kRuleDiscardedStatus));
}

TEST(DiscardedStatusTest, SingleStatementIfBodyFires) {
  const auto vs = Lint("src/doduo/core/x.cc",
                      "void f(bool c) {\n  if (c) Save(path);\n}\n", {"Save"});
  EXPECT_TRUE(HasRule(vs, kRuleDiscardedStatus));
}

TEST(DiscardedStatusTest, CheckedAndConsumedCallsAreQuiet) {
  const auto vs = Lint("src/doduo/core/x.cc",
                      "util::Status g() {\n"
                      "  auto s = Save(path);\n"
                      "  if (!Save(path).ok()) return s;\n"
                      "  return Save(path);\n"
                      "}\n",
                      {"Save"});
  EXPECT_TRUE(vs.empty());
}

TEST(DiscardedStatusTest, VoidCastIsAnExplicitDiscard) {
  const auto vs = Lint("src/doduo/core/x.cc",
                      "void f() {\n  (void)Save(path);\n}\n", {"Save"});
  EXPECT_TRUE(vs.empty());
}

TEST(DiscardedStatusTest, DeclarationIsNotACall) {
  const auto vs = Lint("src/doduo/nn/serialize.h",
                      "#pragma once\n"
                      "util::Status SaveParameters(const std::string& path,\n"
                      "                            const ParameterList& p);\n",
                      {"SaveParameters"});
  EXPECT_TRUE(vs.empty());
}

TEST(DiscardedStatusTest, NolintSuppresses) {
  const auto vs =
      Lint("src/doduo/core/x.cc",
          "void f() {\n  Save(path);  // NOLINT(discarded-status)\n}\n",
          {"Save"});
  EXPECT_TRUE(vs.empty());
}

// -- no-abort ---------------------------------------------------------------

TEST(NoAbortTest, AbortExitAssertFire) {
  const auto vs = Lint("src/doduo/core/x.cc",
                      "void f() {\n"
                      "  std::abort();\n"
                      "  exit(1);\n"
                      "  assert(x > 0);\n"
                      "}\n");
  int count = 0;
  for (const Violation& v : vs) {
    if (v.rule == kRuleNoAbort) ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(NoAbortTest, UtilLoggingAndStatusAreExempt) {
  const char* src = "void f() { std::abort(); }\n";
  EXPECT_TRUE(Lint("src/doduo/util/logging.cc", src).empty());
  EXPECT_TRUE(Lint("src/doduo/util/status.cc", src).empty());
  EXPECT_TRUE(Lint("src/doduo/util/check.h",
                  "#pragma once\nvoid f() { std::abort(); }\n")
                  .empty());
  EXPECT_FALSE(Lint("src/doduo/nn/ops.cc", src).empty());
}

TEST(NoAbortTest, MemberNamedExitIsQuiet) {
  EXPECT_TRUE(
      Lint("src/doduo/core/x.cc", "void f() { loop.exit(); }\n").empty());
}

TEST(NoAbortTest, StringAndCommentMentionsAreQuiet) {
  EXPECT_TRUE(Lint("src/doduo/core/x.cc",
                  "// call exit(1) here would be bad\n"
                  "const char* k = \"abort() assert( exit(\";\n")
                  .empty());
}

// -- no-raw-random ----------------------------------------------------------

TEST(NoRawRandomTest, RandSrandTimeRandomDeviceFire) {
  const auto vs = Lint("src/doduo/synth/x.cc",
                      "void f() {\n"
                      "  srand(time(nullptr));\n"
                      "  int x = rand();\n"
                      "  std::random_device rd;\n"
                      "}\n");
  int count = 0;
  for (const Violation& v : vs) {
    if (v.rule == kRuleNoRawRandom) ++count;
  }
  // srand+time share a line (one finding), then rand, then random_device.
  EXPECT_EQ(count, 3);
}

TEST(NoRawRandomTest, UtilRngIsExempt) {
  EXPECT_TRUE(
      Lint("src/doduo/util/rng.cc", "void f() { srand(1); }\n").empty());
}

TEST(NoRawRandomTest, IdentifiersContainingTimeAreQuiet) {
  EXPECT_TRUE(Lint("src/doduo/core/x.cc",
                  "void f() {\n"
                  "  auto t = clock.time_point();\n"
                  "  double time = 0.0;\n"
                  "  stopwatch.time();\n"
                  "}\n")
                  .empty());
}

// -- no-naked-new -----------------------------------------------------------

TEST(NoNakedNewTest, NewDeleteMallocFireInKernelDirs) {
  const auto vs = Lint("src/doduo/nn/x.cc",
                      "void f() {\n"
                      "  float* p = new float[8];\n"
                      "  delete[] p;\n"
                      "  void* q = malloc(8);\n"
                      "  free(q);\n"
                      "}\n");
  int count = 0;
  for (const Violation& v : vs) {
    if (v.rule == kRuleNoNakedNew) ++count;
  }
  EXPECT_EQ(count, 4);
}

TEST(NoNakedNewTest, TransformerDirIsCovered) {
  EXPECT_TRUE(HasRule(
      Lint("src/doduo/transformer/x.cc", "void f() { int* p = new int; }\n"),
      kRuleNoNakedNew));
}

TEST(NoNakedNewTest, OtherDirsAreOutOfScope) {
  EXPECT_TRUE(
      Lint("src/doduo/table/x.cc", "void f() { int* p = new int; }\n").empty());
}

TEST(NoNakedNewTest, DeletedFunctionsAreQuiet) {
  EXPECT_TRUE(Lint("src/doduo/nn/workspace.h",
                  "#pragma once\n"
                  "struct W {\n"
                  "  W(const W&) = delete;\n"
                  "  W& operator=(const W&) = delete;\n"
                  "};\n")
                  .empty());
}

// -- header-guard -----------------------------------------------------------

TEST(HeaderGuardTest, MissingGuardFires) {
  const auto vs = Lint("src/doduo/nn/x.h", "void f();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, kRuleHeaderGuard);
}

TEST(HeaderGuardTest, PragmaOnceAndIfndefGuardPass) {
  EXPECT_TRUE(Lint("src/doduo/nn/x.h", "#pragma once\nvoid f();\n").empty());
  EXPECT_TRUE(Lint("src/doduo/nn/x.h",
                  "#ifndef DODUO_NN_X_H_\n#define DODUO_NN_X_H_\n"
                  "void f();\n#endif\n")
                  .empty());
}

TEST(HeaderGuardTest, LeadingCommentBlockIsSkipped) {
  EXPECT_TRUE(Lint("src/doduo/nn/x.h",
                  "// File comment.\n/* license */\n#pragma once\nvoid f();\n")
                  .empty());
}

TEST(HeaderGuardTest, SourceFilesAreExempt) {
  EXPECT_TRUE(Lint("src/doduo/nn/x.cc", "void f() {}\n").empty());
}

// -- include-order ----------------------------------------------------------

TEST(IncludeOrderTest, SystemAfterProjectFires) {
  const auto vs = Lint("src/doduo/nn/x.cc",
                      "#include \"doduo/nn/x.h\"\n"
                      "#include \"doduo/util/env.h\"\n"
                      "#include <vector>\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, kRuleIncludeOrder);
  EXPECT_EQ(vs[0].line, 3);
}

TEST(IncludeOrderTest, OwnHeaderFirstThenSystemThenProjectPasses) {
  EXPECT_TRUE(Lint("src/doduo/nn/x.cc",
                  "#include \"doduo/nn/x.h\"\n\n"
                  "#include <cmath>\n#include <vector>\n\n"
                  "#include \"doduo/util/env.h\"\n")
                  .empty());
}

TEST(IncludeOrderTest, CommentedOutIncludeIsIgnored) {
  EXPECT_TRUE(Lint("src/doduo/nn/x.cc",
                  "#include \"doduo/nn/x.h\"\n"
                  "// #include \"doduo/util/env.h\"\n"
                  "#include <vector>\n")
                  .empty());
}

TEST(IncludeOrderTest, NonMatchingFirstQuoteIncludeIsNotOwnHeader) {
  EXPECT_TRUE(HasRule(Lint("src/doduo/nn/x.cc",
                          "#include \"doduo/util/env.h\"\n"
                          "#include <vector>\n"),
                      kRuleIncludeOrder));
}

TEST(IncludeOrderTest, TestFileHeaderUnderTestCountsAsOwnHeader) {
  // tests/foo_test.cc opens with the header under test, whose stem does
  // not match the test file's; under tests/ that first include is exempt.
  EXPECT_TRUE(Lint("tests/util/csv_test.cc",
                  "#include \"doduo/util/csv.h\"\n"
                  "#include <cstdio>\n"
                  "#include \"gtest/gtest.h\"\n")
                  .empty());
}

// -- metrics-in-loop --------------------------------------------------------

TEST(MetricsInLoopTest, LookupInsideForLoopFires) {
  const auto vs = Lint("src/doduo/core/x.cc",
                      "void f() {\n"
                      "  for (int i = 0; i < n; ++i) {\n"
                      "    util::GetCounter(\"x\")->Increment();\n"
                      "  }\n"
                      "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, kRuleMetricsInLoop);
  EXPECT_EQ(vs[0].line, 3);
}

TEST(MetricsInLoopTest, BracelessLoopBodyFires) {
  EXPECT_TRUE(HasRule(
      Lint("src/doduo/core/x.cc",
          "void f() {\n"
          "  while (busy()) util::GetHistogram(\"y\")->Record(1);\n"
          "}\n"),
      kRuleMetricsInLoop));
}

TEST(MetricsInLoopTest, CachedPointerPatternIsQuiet) {
  EXPECT_TRUE(Lint("src/doduo/core/x.cc",
                  "void f() {\n"
                  "  static util::Counter* c = util::GetCounter(\"x\");\n"
                  "  for (int i = 0; i < n; ++i) c->Increment();\n"
                  "}\n")
                  .empty());
}

TEST(MetricsInLoopTest, LookupAfterLoopIsQuiet) {
  EXPECT_TRUE(Lint("src/doduo/core/x.cc",
                  "void f() {\n"
                  "  for (int i = 0; i < n; ++i) { work(i); }\n"
                  "  util::GetCounter(\"x\")->Increment();\n"
                  "}\n")
                  .empty());
}

// -- serve-raw-io -----------------------------------------------------------

TEST(ServeRawIoTest, RawPosixCallFiresInServeTree) {
  const auto vs = Lint("src/doduo/serve/server.cc",
                      "void f(int fd) {\n"
                      "  char buf[64];\n"
                      "  recv(fd, buf, sizeof(buf), 0);\n"
                      "}\n");
  ASSERT_TRUE(HasRule(vs, kRuleServeRawIo));
}

TEST(ServeRawIoTest, GloballyQualifiedCallFires) {
  const auto vs = Lint("src/doduo/serve/client.cc",
                      "void f(int fd) {\n  ::close(fd);\n}\n");
  EXPECT_TRUE(HasRule(vs, kRuleServeRawIo));
}

TEST(ServeRawIoTest, SocketIoWrapperFileIsExempt) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/serve/socket_io.cc",
                           "void f(int fd) {\n"
                           "  char buf[64];\n"
                           "  recv(fd, buf, sizeof(buf), 0);\n"
                           "  close(fd);\n"
                           "}\n"),
                       kRuleServeRawIo));
}

TEST(ServeRawIoTest, OtherTreesAreOutOfScope) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/core/trainer.cc",
                           "void f(int fd) {\n  close(fd);\n}\n"),
                       kRuleServeRawIo));
}

TEST(ServeRawIoTest, MemberFunctionsAndNonCallsAreQuiet) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/serve/batcher.cc",
                           "void f(Conn& c) {\n"
                           "  c.close();\n"
                           "  conn->send(frame);\n"
                           "  int poll = 3;\n"
                           "}\n"),
                       kRuleServeRawIo));
}

TEST(ServeRawIoTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/serve/server.cc",
                           "void f(int fd) {\n"
                           "  close(fd);  // NOLINT(serve-raw-io)\n"
                           "}\n"),
                       kRuleServeRawIo));
}

// -- raw-mutex --------------------------------------------------------------

TEST(RawMutexTest, StdMutexLockGuardCondVarFire) {
  const auto vs = Lint("src/doduo/serve/batcher.cc",
                      "std::mutex mu;\n"
                      "std::condition_variable cv;\n"
                      "void f() {\n"
                      "  std::lock_guard<std::mutex> lock(mu);\n"
                      "  std::unique_lock<std::mutex> ul(mu);\n"
                      "}\n");
  int raw_mutex = 0;
  for (const Violation& v : vs) {
    if (v.rule == kRuleRawMutex) ++raw_mutex;
  }
  // One finding per line: mutex decl, cv decl, lock_guard line,
  // unique_lock line (the template argument is the same finding).
  EXPECT_EQ(raw_mutex, 4);
}

TEST(RawMutexTest, DoduoUtilIsExempt) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/util/mutex.cc",
                           "std::mutex mu;\n"
                           "void f() { std::lock_guard<std::mutex> l(mu); }\n"),
                       kRuleRawMutex));
}

TEST(RawMutexTest, UtilMutexWrappersAndUnqualifiedNamesAreQuiet) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/serve/batcher.cc",
                           "util::Mutex mu{\"serve.batcher\"};\n"
                           "void f() {\n"
                           "  util::MutexLock lock(&mu);\n"
                           "  int mutex = 0;  // plain identifier, not std::\n"
                           "}\n"),
                       kRuleRawMutex));
}

TEST(RawMutexTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/core/x.cc",
                           "std::mutex mu;  // NOLINT(raw-mutex)\n"),
                       kRuleRawMutex));
}

// -- detached-thread --------------------------------------------------------

TEST(DetachedThreadTest, DetachCallFires) {
  EXPECT_TRUE(HasRule(Lint("tools/doduo_serve.cc",
                          "void f() {\n"
                          "  std::thread t([] {});\n"
                          "  t.detach();\n"
                          "}\n"),
                      kRuleDetachedThread));
  EXPECT_TRUE(HasRule(Lint("src/doduo/serve/server.cc",
                          "void f(std::thread* t) { t->detach(); }\n"),
                      kRuleDetachedThread));
}

TEST(DetachedThreadTest, JoinAndNonMemberDetachAreQuiet) {
  EXPECT_FALSE(HasRule(Lint("src/doduo/serve/server.cc",
                           "void detach(int);\n"
                           "void f(std::thread& t) {\n"
                           "  t.join();\n"
                           "  detach(3);\n"
                           "}\n"),
                       kRuleDetachedThread));
}

TEST(DetachedThreadTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(Lint("tools/x.cc",
                           "void f(std::thread& t) {\n"
                           "  t.detach();  // NOLINT(detached-thread)\n"
                           "}\n"),
                       kRuleDetachedThread));
}

// -- sleep-sync -------------------------------------------------------------

TEST(SleepSyncTest, SleepForInServeTestsFires) {
  EXPECT_TRUE(HasRule(
      Lint("tests/serve/server_test.cc",
          "void f() {\n"
          "  std::this_thread::sleep_for(std::chrono::milliseconds(50));\n"
          "}\n"),
      kRuleSleepSync));
  EXPECT_TRUE(HasRule(Lint("tests/serve/batcher_test.cc",
                          "void f(auto t) { std::this_thread::sleep_until(t); }\n"),
                      kRuleSleepSync));
}

TEST(SleepSyncTest, OutsideServeTestsIsOutOfScope) {
  EXPECT_FALSE(HasRule(
      Lint("tests/util/thread_pool_test.cc",
          "void f() {\n"
          "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
          "}\n"),
      kRuleSleepSync));
}

TEST(SleepSyncTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(
      Lint("tests/serve/server_test.cc",
          "void f() {\n"
          "  std::this_thread::sleep_for(delay);  // NOLINT(sleep-sync)\n"
          "}\n"),
      kRuleSleepSync));
}

// -- quant-no-float-in-int8-kernel ------------------------------------------

TEST(QuantNoFloatTest, FloatTypeInsideInt8KernelFires) {
  EXPECT_TRUE(HasRule(
      Lint("src/doduo/nn/quant.cc",
          "int32_t Int8DotKernelScalar(const int8_t* a, const int8_t* b,\n"
          "                            int64_t k) {\n"
          "  float acc = 0;\n"
          "  return static_cast<int32_t>(acc);\n"
          "}\n"),
      kRuleQuantNoFloat));
}

TEST(QuantNoFloatTest, FloatLiteralInsideInt8KernelFires) {
  EXPECT_TRUE(HasRule(
      Lint("src/doduo/nn/quant.cc",
          "int32_t Int8DotKernelSse2(const int8_t* a, const int8_t* b,\n"
          "                          int64_t k) {\n"
          "  int32_t acc = static_cast<int32_t>(k * 1.5);\n"
          "  return acc;\n"
          "}\n"),
      kRuleQuantNoFloat));
}

TEST(QuantNoFloatTest, PackedFloatIntrinsicFires) {
  EXPECT_TRUE(HasRule(
      Lint("src/doduo/nn/quant.cc",
          "int32_t Int8DotKernelAvx2(const int8_t* a, const int8_t* b,\n"
          "                          int64_t k) {\n"
          "  __m128 v = _mm_setzero_ps();\n"
          "  return _mm_cvtss_si32(v);\n"
          "}\n"),
      kRuleQuantNoFloat));
}

TEST(QuantNoFloatTest, IntegerOnlyKernelIsClean) {
  EXPECT_FALSE(HasRule(
      Lint("src/doduo/nn/quant.cc",
          "int32_t Int8DotKernelScalar(const int8_t* a, const int8_t* b,\n"
          "                            int64_t k) {\n"
          "  int32_t acc = 0;\n"
          "  for (int64_t i = 0; i < k; ++i) acc += a[i] * b[i];\n"
          "  return acc;\n"
          "}\n"),
      kRuleQuantNoFloat));
}

TEST(QuantNoFloatTest, DequantEpilogueOutsideKernelIsOutOfScope) {
  // Float math in the differently-named caller is the designed split.
  EXPECT_FALSE(HasRule(
      Lint("src/doduo/nn/quant.cc",
          "void Int8Linear(const float* sx, float* y, int64_t n) {\n"
          "  for (int64_t j = 0; j < n; ++j) y[j] = sx[j] * 0.5f;\n"
          "}\n"),
      kRuleQuantNoFloat));
}

TEST(QuantNoFloatTest, DeclarationWithoutBodyIsOutOfScope) {
  EXPECT_FALSE(HasRule(
      Lint("src/doduo/nn/quant.h",
          "int32_t Int8DotKernelScalar(const int8_t* a, const int8_t* b,\n"
          "                            int64_t k);\n"
          "double Unrelated(double x);\n"),
      kRuleQuantNoFloat));
}

TEST(QuantNoFloatTest, NolintSuppresses) {
  EXPECT_FALSE(HasRule(
      Lint("src/doduo/nn/quant.cc",
          "int32_t Int8DotKernelScalar(const int8_t* a, const int8_t* b,\n"
          "                            int64_t k) {\n"
          "  float acc = 0;  // NOLINT(quant-no-float-in-int8-kernel)\n"
          "  return static_cast<int32_t>(acc);\n"
          "}\n"),
      kRuleQuantNoFloat));
}

// -- NOLINT mechanics -------------------------------------------------------

TEST(NolintTest, BareNolintSilencesEveryRuleOnTheLine) {
  EXPECT_TRUE(Lint("src/doduo/nn/x.cc",
                  "void f() { int* p = new int; }  // NOLINT\n")
                  .empty());
}

TEST(NolintTest, ListedRuleSilencesOnlyThatRule) {
  const auto vs = Lint("src/doduo/nn/x.cc",
                      "void f() { int* p = new int; std::abort(); }"
                      "  // NOLINT(no-naked-new)\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, kRuleNoAbort);
}

TEST(NolintTest, MultipleRulesInOneAnnotation) {
  EXPECT_TRUE(Lint("src/doduo/nn/x.cc",
                  "void f() { int* p = new int; std::abort(); }"
                  "  // NOLINT(no-naked-new, no-abort)\n")
                  .empty());
}

// -- CollectStatusFunctions -------------------------------------------------

TEST(CollectStatusFunctionsTest, FindsStatusAndResultDeclarations) {
  std::set<std::string, std::less<>> names;
  CollectStatusFunctions(
      "util::Status SaveParameters(const std::string& path);\n"
      "util::Result<std::vector<int>> Decode(std::string_view bytes);\n"
      "[[nodiscard]] Result<Table> TableFromCsvRows(const CsvRows& rows);\n"
      "void NotThisOne(int x);\n",
      &names);
  EXPECT_EQ(names.count("SaveParameters"), 1u);
  EXPECT_EQ(names.count("Decode"), 1u);
  EXPECT_EQ(names.count("TableFromCsvRows"), 1u);
  EXPECT_EQ(names.count("NotThisOne"), 0u);
}

TEST(CollectStatusFunctionsTest, FindsQualifiedDefinitions) {
  std::set<std::string, std::less<>> names;
  CollectStatusFunctions(
      "util::Status Annotator::ForEachTable(std::span<const Table> t) {\n"
      "  return util::Status::Ok();\n"
      "}\n",
      &names);
  EXPECT_EQ(names.count("ForEachTable"), 1u);
}

TEST(NolintTest, MultiLineStatementAcceptsNolintOnAnyOfItsLines) {
  // The call spans three lines; the escape sits on the last one, where the
  // offending argument actually is. The report anchors to the first line,
  // but the whole statement span honors the annotation.
  const auto vs = Lint("src/doduo/core/x.cc",
                       "void f() {\n"
                       "  Save(\n"
                       "      very_long_path,\n"
                       "      options);  // NOLINT(discarded-status)\n"
                       "}\n",
                       {"Save"});
  EXPECT_FALSE(HasRule(vs, kRuleDiscardedStatus));
}

TEST(NolintTest, MultiLineStatementWithoutNolintStillFires) {
  const auto vs = Lint("src/doduo/core/x.cc",
                       "void f() {\n"
                       "  Save(\n"
                       "      very_long_path,\n"
                       "      options);\n"
                       "}\n",
                       {"Save"});
  ASSERT_TRUE(HasRule(vs, kRuleDiscardedStatus));
  EXPECT_EQ(vs[0].line, 2);  // anchored where the call starts
}

// -- Deduplication ----------------------------------------------------------

TEST(DedupeTest, TwoOffendersOnOneLineAreOneFinding) {
  const auto vs = Lint("src/doduo/core/x.cc",
                       "void f() { Save(a); Save(b); }\n", {"Save"});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, kRuleDiscardedStatus);
}

TEST(DedupeTest, DistinctRulesOnOneLineBothSurvive) {
  const auto vs = Lint("src/doduo/nn/x.cc",
                       "void f() { int* p = new int; std::abort(); }\n");
  EXPECT_TRUE(HasRule(vs, kRuleNoNakedNew));
  EXPECT_TRUE(HasRule(vs, kRuleNoAbort));
}

TEST(DedupeTest, SameRuleOnDistinctLinesBothSurvive) {
  const auto vs = Lint("src/doduo/core/x.cc",
                       "void f() {\n  Save(a);\n  Save(b);\n}\n", {"Save"});
  EXPECT_EQ(vs.size(), 2u);
}

// -- Formatting -------------------------------------------------------------

TEST(FormatViolationTest, MatchesFileLineRuleMessage) {
  Violation v{"src/doduo/nn/x.cc", 7, "no-naked-new", "naked 'new'"};
  EXPECT_EQ(FormatViolation(v), "src/doduo/nn/x.cc:7: no-naked-new naked 'new'");
}

}  // namespace
}  // namespace doduo::lint
