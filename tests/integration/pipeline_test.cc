// Cross-module integration test: the complete pipeline the experiment
// binaries run — knowledge base → corpus → WordPiece vocabulary → MLM
// pre-training → multi-task fine-tuning → annotation → column clustering →
// LM probing — at miniature scale, asserting the contracts between the
// modules rather than any single module's behavior.

#include "doduo/cluster/kmeans.h"
#include "doduo/cluster/metrics.h"
#include "doduo/core/annotator.h"
#include "doduo/experiments/runners.h"
#include "doduo/probe/prober.h"
#include "doduo/synth/case_study.h"
#include "doduo/util/thread_pool.h"
#include "gtest/gtest.h"

namespace doduo {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    experiments::EnvOptions options;
    options.mode = experiments::BenchmarkMode::kWikiTable;
    options.num_tables = 220;
    options.vocab_size = 1000;
    options.hidden_dim = 32;
    options.num_layers = 1;
    options.num_heads = 2;
    options.ffn_dim = 64;
    options.max_positions = 96;
    options.pretrain_epochs = 3;
    options.corpus_fact_mentions = 1;
    options.corpus_list_mentions = 10;
    options.use_cache = false;
    options.seed = 31;
    env_ = std::make_unique<experiments::Env>(options);

    experiments::DoduoVariant variant;
    variant.epochs = 18;
    run_ = std::make_unique<experiments::DoduoRun>(
        experiments::RunDoduo(env_.get(), variant));
  }

  std::unique_ptr<experiments::Env> env_;
  std::unique_ptr<experiments::DoduoRun> run_;
};

TEST_F(PipelineTest, FineTunedModelBeatsChanceOnBothTasks) {
  const int types = env_->dataset().type_vocab.size();
  const int relations = env_->dataset().relation_vocab.size();
  EXPECT_GT(run_->types.micro.f1, 3.0 / types);
  ASSERT_TRUE(run_->has_relations);
  EXPECT_GT(run_->relations.micro.f1, 2.0 / relations);
}

TEST_F(PipelineTest, AnnotatorAgreesWithTrainerEvaluation) {
  // Annotator predictions on a test table must be label names that decode
  // to the same ids the trainer's evaluation produced.
  core::Annotator annotator(run_->model.get(), run_->serializer.get(),
                            &env_->dataset().type_vocab,
                            &env_->dataset().relation_vocab);
  const auto& annotated = env_->dataset().tables[env_->splits().test[0]];
  const auto names = annotator.AnnotateTypes(annotated.table).value();
  ASSERT_EQ(names.size(),
            static_cast<size_t>(annotated.table.num_columns()));
  for (const auto& column_names : names) {
    for (const auto& name : column_names) {
      EXPECT_GE(env_->dataset().type_vocab.Id(name), 0) << name;
    }
  }
}

TEST_F(PipelineTest, EmbeddingsClusterCaseStudyAboveChance) {
  core::Annotator annotator(run_->model.get(), run_->serializer.get(),
                            &env_->dataset().type_vocab,
                            &env_->dataset().relation_vocab);
  const auto data = synth::BuildCaseStudy(99);
  const int hidden = run_->model->config().encoder.hidden_dim;
  nn::Tensor embeddings({data.num_columns(), hidden});
  int flat = 0;
  for (const auto& table : data.tables) {
    const nn::Tensor column_embeddings =
        annotator.ColumnEmbeddings(table).value();
    for (int c = 0; c < table.num_columns(); ++c, ++flat) {
      std::copy(column_embeddings.row(c), column_embeddings.row(c) + hidden,
                embeddings.row(flat));
    }
  }
  cluster::NormalizeRows(&embeddings);
  cluster::KMeans::Options kmeans_options;
  kmeans_options.k = static_cast<int>(data.group_names.size());
  cluster::KMeans kmeans(kmeans_options);
  const auto clusters = kmeans.Cluster(embeddings);
  const auto scores =
      cluster::ScoreClustering(clusters, data.ground_truth);
  // Even an out-of-domain mini model must beat random clustering by a
  // clear margin (random V-measure for 15 groups over 50 items ≈ 0.45
  // due to small-sample effects; structure should push past it).
  EXPECT_GT(scores.v_measure, 0.5);
}

TEST_F(PipelineTest, PretrainedLmKnowsMoreThanChanceInProbing) {
  probe::LmProber prober(env_->PretrainedLm(), &env_->tokenizer());
  util::Rng rng(5);
  const auto rows = prober.ProbeTypes(env_->kb(), /*samples=*/3, &rng);
  ASSERT_EQ(rows.size(), static_cast<size_t>(env_->kb().num_types()));
  const double chance = (env_->kb().num_types() + 1) / 2.0;
  // Mean rank across types must beat chance; the best types must beat it
  // clearly.
  double mean_rank = 0.0;
  for (const auto& row : rows) mean_rank += row.avg_rank;
  mean_rank /= static_cast<double>(rows.size());
  EXPECT_LT(mean_rank, chance);
  EXPECT_LT(rows.front().avg_rank, chance * 0.5);
}

TEST_F(PipelineTest, BatchAnnotationMatchesSequentialLoop) {
  // The batched API fans tables out across model replicas on the compute
  // pool; its results must equal five sequential scalar calls exactly.
  core::Annotator annotator(run_->model.get(), run_->serializer.get(),
                            &env_->dataset().type_vocab,
                            &env_->dataset().relation_vocab);
  std::vector<table::Table> tables;
  for (int t = 0; t < 5; ++t) {
    tables.push_back(
        env_->dataset().tables[env_->splits().test[static_cast<size_t>(t)]]
            .table);
  }

  util::SetComputeThreads(4);
  const auto batch_types = annotator.AnnotateTypesBatch(tables).value();
  const auto batch_embeddings =
      annotator.ColumnEmbeddingsBatch(tables).value();
  util::SetComputeThreads(1);

  ASSERT_EQ(batch_types.size(), tables.size());
  ASSERT_EQ(batch_embeddings.size(), tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    EXPECT_EQ(batch_types[t], annotator.AnnotateTypes(tables[t]).value())
        << "table " << t;
    const nn::Tensor loop_embedding =
        annotator.ColumnEmbeddings(tables[t]).value();
    ASSERT_TRUE(nn::SameShape(batch_embeddings[t], loop_embedding));
    for (int64_t i = 0; i < loop_embedding.size(); ++i) {
      ASSERT_EQ(batch_embeddings[t].data()[i], loop_embedding.data()[i])
          << "table " << t << " element " << i;
    }
  }
}

TEST_F(PipelineTest, ColumnAttentionMatchesColumnCount) {
  const auto& annotated = env_->dataset().tables[env_->splits().test[1]];
  const auto serialized =
      run_->serializer->SerializeTable(annotated.table).value();
  const nn::Tensor attention = run_->model->ColumnAttention(serialized);
  EXPECT_EQ(attention.rows(), annotated.table.num_columns());
  EXPECT_EQ(attention.cols(), annotated.table.num_columns());
}

}  // namespace
}  // namespace doduo
