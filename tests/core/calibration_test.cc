#include "doduo/core/calibration.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace doduo::core {
namespace {

/// 100 single-label examples over 3 classes with identical logits
/// [margin, 0, 0]; the argmax class is correct for `correct` of them and
/// class 1 is gold for the rest.
std::vector<CalibrationExample> MakeSingleLabelExamples(float margin,
                                                        int correct) {
  std::vector<CalibrationExample> examples;
  for (int i = 0; i < 100; ++i) {
    CalibrationExample example;
    example.logits = {margin, 0.0f, 0.0f};
    example.labels = {i < correct ? 0 : 1};
    examples.push_back(std::move(example));
  }
  return examples;
}

TEST(FitTemperatureTest, WellCalibratedLogitsKeepTemperatureNearOne) {
  // softmax([2,0,0])[0] ~= 0.79, and the argmax is right 79% of the time:
  // already calibrated, so the fitted temperature stays near identity.
  const double t = FitTemperature(MakeSingleLabelExamples(2.0f, 79),
                                  /*multi_label=*/false);
  EXPECT_GT(t, 0.7);
  EXPECT_LT(t, 1.4);
}

TEST(FitTemperatureTest, OverconfidentLogitsGetHighTemperature) {
  // Same 79% accuracy but logits scaled 10x: the minimizer must scale
  // them back down, i.e. a temperature near 10.
  const double t = FitTemperature(MakeSingleLabelExamples(20.0f, 79),
                                  /*multi_label=*/false);
  EXPECT_GT(t, 5.0);
  EXPECT_LT(t, 18.0);
}

TEST(FitTemperatureTest, UnderconfidentLogitsGetLowTemperature) {
  // Tiny margins but 79% accuracy: sharpen, temperature well below 1.
  const double t = FitTemperature(MakeSingleLabelExamples(0.2f, 79),
                                  /*multi_label=*/false);
  EXPECT_LT(t, 0.5);
}

TEST(FitTemperatureTest, EmptyOrUnlabeledInputIsIdentity) {
  EXPECT_EQ(FitTemperature({}, false), 1.0);
  std::vector<CalibrationExample> unlabeled(3);
  for (auto& example : unlabeled) example.logits = {1.0f, 0.0f};
  EXPECT_EQ(FitTemperature(unlabeled, false), 1.0);
}

TEST(FitTemperatureTest, MultiLabelUsesBinaryNll) {
  // Class 0 fires with logit 3 but is only present 70% of the time;
  // sigmoid(3/T) = 0.7 at T ~= 3.54.
  std::vector<CalibrationExample> examples;
  for (int i = 0; i < 100; ++i) {
    CalibrationExample example;
    example.logits = {3.0f};
    if (i < 70) example.labels = {0};
    // Multi-label examples with an empty gold set still carry signal for
    // the binary losses, but FitTemperature skips label-less rows to keep
    // the single-label contract; give the negatives an out-of-range class.
    if (i >= 70) example.labels = {1};
    examples.push_back(std::move(example));
  }
  const double t = FitTemperature(examples, /*multi_label=*/true);
  EXPECT_GT(t, 2.5);
  EXPECT_LT(t, 5.0);
}

TEST(CalibratedConfidenceTest, MatchesSoftmaxAtIdentity) {
  const float logits[] = {2.0f, 0.0f, 0.0f};
  const double expected =
      std::exp(2.0) / (std::exp(2.0) + 2.0);
  EXPECT_NEAR(CalibratedConfidence(logits, 3, 1.0, false), expected, 1e-9);
}

TEST(CalibratedConfidenceTest, HigherTemperatureLowersConfidence) {
  const float logits[] = {4.0f, 1.0f, -2.0f};
  double previous = 1.0;
  for (double t : {0.5, 1.0, 2.0, 8.0}) {
    const double confidence = CalibratedConfidence(logits, 3, t, false);
    EXPECT_LT(confidence, previous);
    EXPECT_GT(confidence, 1.0 / 3.0);  // never below uniform
    previous = confidence;
  }
  // As T grows the distribution flattens toward uniform.
  EXPECT_NEAR(CalibratedConfidence(logits, 3, 1e6, false), 1.0 / 3.0, 1e-3);
}

TEST(CalibratedConfidenceTest, MultiLabelIsSigmoidOfMaxLogit) {
  const float logits[] = {-1.0f, 3.0f};
  EXPECT_NEAR(CalibratedConfidence(logits, 2, 1.0, true),
              1.0 / (1.0 + std::exp(-3.0)), 1e-9);
  EXPECT_NEAR(CalibratedConfidence(logits, 2, 3.0, true),
              1.0 / (1.0 + std::exp(-1.0)), 1e-9);
}

}  // namespace
}  // namespace doduo::core
