// The dirty-input contract (DESIGN §15): AnnotateTypesRobust never fails a
// whole table — every column comes back annotated with a calibrated
// confidence, abstained, or skipped with a machine-readable reason — and on
// clean input its labels are byte-identical to AnnotateTypes.

#include <memory>
#include <string>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/util/metrics.h"
#include "gtest/gtest.h"

namespace doduo::core {
namespace {

DoduoConfig SmallConfig() {
  DoduoConfig config;
  config.encoder.vocab_size = 60;
  config.encoder.max_positions = 64;
  config.encoder.hidden_dim = 16;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.encoder.num_layers = 1;
  config.encoder.dropout = 0.0f;
  config.serializer.max_total_tokens = 64;
  config.num_types = 5;
  config.num_relations = 0;
  config.tasks = TaskSet::kTypesOnly;
  return config;
}

class AnnotatorRobustTest : public ::testing::Test {
 protected:
  AnnotatorRobustTest() : config_(SmallConfig()) {
    for (const char* word : {"alpha", "beta", "gamma", "delta"}) {
      vocab_.AddToken(word);
    }
    for (int i = 0; i < config_.num_types; ++i) {
      type_vocab_.AddLabel("type" + std::to_string(i));
    }
    util::Rng rng(1);
    model_ = std::make_unique<DoduoModel>(config_, &rng);
    model_->set_training(false);
    tokenizer_ = std::make_unique<text::WordPieceTokenizer>(&vocab_);
    serializer_ = std::make_unique<table::TableSerializer>(
        tokenizer_.get(), config_.serializer);
    annotator_ = std::make_unique<Annotator>(model_.get(), serializer_.get(),
                                             &type_vocab_,
                                             /*relation_vocab=*/nullptr);
  }

  static table::Table CleanTable(const std::string& id = "clean") {
    table::Table table(id);
    table.AddColumn({"a", {"alpha", "beta"}});
    table.AddColumn({"b", {"gamma"}});
    table.AddColumn({"c", {"delta", "alpha"}});
    return table;
  }

  DoduoConfig config_;
  text::Vocab vocab_;
  table::LabelVocab type_vocab_;
  std::unique_ptr<DoduoModel> model_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;
  std::unique_ptr<table::TableSerializer> serializer_;
  std::unique_ptr<Annotator> annotator_;
};

TEST_F(AnnotatorRobustTest, CleanTableMatchesNonRobustLabels) {
  const auto plain = annotator_->AnnotateTypes(CleanTable());
  ASSERT_TRUE(plain.ok());
  const auto outcomes = annotator_->AnnotateTypesRobust(CleanTable());
  ASSERT_EQ(outcomes.size(), 3u);
  for (size_t c = 0; c < outcomes.size(); ++c) {
    EXPECT_TRUE(outcomes[c].annotated());
    EXPECT_EQ(outcomes[c].labels, plain.value()[c]);
    EXPECT_TRUE(outcomes[c].skipped_reason.empty());
    EXPECT_FALSE(outcomes[c].abstained);
    EXPECT_GT(outcomes[c].confidence, 0.0);
    EXPECT_LE(outcomes[c].confidence, 1.0);
  }
}

TEST_F(AnnotatorRobustTest, ZeroColumnTableYieldsEmptyOutcomes) {
  EXPECT_TRUE(
      annotator_->AnnotateTypesRobust(table::Table("empty")).empty());
}

TEST_F(AnnotatorRobustTest, DirtyColumnsGetSkipReasonsNotFailure) {
  util::ResetMetrics();
  table::Table table("dirty");
  table.AddColumn({"a", {"alpha", "beta"}});
  table.AddColumn({"void", {"", "null", "-"}});       // mostly null
  table.AddColumn({"ghost", {}});                     // empty
  table.AddColumn({"b", {"gamma", "bad\xC3 utf8"}});  // repairable
  const auto outcomes = annotator_->AnnotateTypesRobust(table);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].annotated());
  EXPECT_EQ(outcomes[1].skipped_reason, "mostly_null");
  EXPECT_TRUE(outcomes[1].labels.empty());
  EXPECT_EQ(outcomes[1].confidence, 0.0);
  EXPECT_EQ(outcomes[2].skipped_reason, "empty_column");
  EXPECT_TRUE(outcomes[3].annotated());  // repaired, then annotated
  EXPECT_EQ(util::GetCounter("annotate.skipped_cols")->value(), 2u);
}

TEST_F(AnnotatorRobustTest, WideTableIsChunkedNotRejected) {
  // Column count far beyond max_total_tokens: the non-robust path errors,
  // the robust path chunks and annotates everything.
  table::Table wide("wide");
  const int n = config_.serializer.max_total_tokens + 40;
  for (int c = 0; c < n; ++c) {
    wide.AddColumn({"col" + std::to_string(c), {"alpha", "beta"}});
  }
  ASSERT_FALSE(annotator_->AnnotateTypes(wide).ok());
  const auto outcomes = annotator_->AnnotateTypesRobust(wide);
  ASSERT_EQ(outcomes.size(), static_cast<size_t>(n));
  for (const ColumnOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.annotated());
    EXPECT_TRUE(outcome.skipped_reason.empty());
  }
}

TEST_F(AnnotatorRobustTest, AbstentionThresholdTradesCoverageMonotonically) {
  util::ResetMetrics();
  const table::Table table = CleanTable();
  size_t previous_annotated = 100;
  for (double threshold : {0.0, 0.3, 0.6, 0.9, 1.01}) {
    AnnotateOptions options;
    options.abstain_below = threshold;
    const auto outcomes = annotator_->AnnotateTypesRobust(table, options);
    size_t annotated = 0;
    for (const ColumnOutcome& outcome : outcomes) {
      if (outcome.annotated()) {
        ++annotated;
        EXPECT_GE(outcome.confidence, threshold);
      } else {
        EXPECT_TRUE(outcome.abstained);
        EXPECT_TRUE(outcome.labels.empty());
        EXPECT_LT(outcome.confidence, threshold);
      }
    }
    EXPECT_LE(annotated, previous_annotated) << "threshold=" << threshold;
    previous_annotated = annotated;
  }
  // Above 1.0 everything must abstain (confidences live in [0, 1]).
  EXPECT_EQ(previous_annotated, 0u);
  EXPECT_GT(util::GetCounter("annotate.abstained")->value(), 0u);
}

TEST_F(AnnotatorRobustTest, SanitizeCanBeDisabled) {
  table::Table table("raw");
  table.AddColumn({"void", {"", "null", "-"}});
  AnnotateOptions options;
  options.sanitize = false;
  const auto outcomes = annotator_->AnnotateTypesRobust(table, options);
  ASSERT_EQ(outcomes.size(), 1u);
  // Without the sanitizer pass the column is annotated as-is.
  EXPECT_TRUE(outcomes[0].annotated());
}

TEST_F(AnnotatorRobustTest, BatchMatchesScalarCalls) {
  std::vector<table::Table> tables;
  tables.push_back(CleanTable("t0"));
  table::Table dirty("t1");
  dirty.AddColumn({"void", {"", "-", "null"}});
  dirty.AddColumn({"a", {"alpha"}});
  tables.push_back(dirty);
  tables.push_back(CleanTable("t2"));

  const auto batch = annotator_->AnnotateTypesRobustBatch(tables);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t t = 0; t < tables.size(); ++t) {
    const auto scalar = annotator_->AnnotateTypesRobust(tables[t]);
    ASSERT_EQ(batch[t].size(), scalar.size()) << "table " << t;
    for (size_t c = 0; c < scalar.size(); ++c) {
      EXPECT_EQ(batch[t][c].labels, scalar[c].labels);
      EXPECT_EQ(batch[t][c].skipped_reason, scalar[c].skipped_reason);
      EXPECT_EQ(batch[t][c].confidence, scalar[c].confidence);
    }
  }
}

TEST_F(AnnotatorRobustTest, ApplyAbstentionIsIdempotentAndScoped) {
  util::ResetMetrics();
  ColumnOutcome annotated;
  annotated.labels = {"type1"};
  annotated.confidence = 0.4;
  ApplyAbstention(&annotated, 0.5);
  EXPECT_TRUE(annotated.abstained);
  EXPECT_TRUE(annotated.labels.empty());
  ApplyAbstention(&annotated, 0.5);  // second application is a no-op
  EXPECT_EQ(util::GetCounter("annotate.abstained")->value(), 1u);

  ColumnOutcome confident;
  confident.labels = {"type2"};
  confident.confidence = 0.9;
  ApplyAbstention(&confident, 0.5);
  EXPECT_FALSE(confident.abstained);
  EXPECT_EQ(confident.labels, std::vector<std::string>{"type2"});

  ColumnOutcome skipped;
  skipped.skipped_reason = "empty_column";
  ApplyAbstention(&skipped, 0.5);
  EXPECT_FALSE(skipped.abstained);
  EXPECT_EQ(util::GetCounter("annotate.abstained")->value(), 1u);
}

}  // namespace
}  // namespace doduo::core
