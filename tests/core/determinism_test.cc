// Reproducibility guarantee: identical seeds produce bit-identical
// datasets, training runs, and predictions — the property every
// experiment binary relies on — including across compute-pool sizes
// (the row-sharded kernels keep per-element FP operation order fixed).

#include <cstdlib>

#include "doduo/core/annotator.h"
#include "doduo/core/trainer.h"
#include "doduo/synth/table_generator.h"
#include "doduo/text/wordpiece_trainer.h"
#include "doduo/util/thread_pool.h"
#include "gtest/gtest.h"

namespace doduo::core {
namespace {

struct PipelineResult {
  std::vector<double> valid_curve;
  double test_f1 = 0.0;
  std::vector<float> first_weights;
  std::vector<std::vector<std::string>> annotations;
};

PipelineResult RunPipeline(uint64_t seed) {
  synth::KnowledgeBase kb = synth::KnowledgeBase::BuildWikiTableKb(seed);
  synth::TableGeneratorOptions generator_options;
  generator_options.num_tables = 80;
  synth::TableGenerator generator(&kb, generator_options);
  util::Rng rng(seed + 1);
  auto dataset = generator.Generate(&rng);
  auto splits = table::SplitDataset(dataset.tables.size(), 0.7, 0.15, &rng);

  std::vector<std::string> lines;
  for (const auto& annotated : dataset.tables) {
    for (const auto& column : annotated.table.columns()) {
      for (const auto& value : column.values) lines.push_back(value);
    }
  }
  text::WordPieceTrainer wordpiece({.vocab_size = 600,
                                    .min_pair_frequency = 2});
  text::Vocab vocab = wordpiece.TrainFromLines(lines);
  text::WordPieceTokenizer tokenizer(&vocab);

  DoduoConfig config;
  config.encoder.vocab_size = vocab.size();
  config.encoder.max_positions = 96;
  config.encoder.hidden_dim = 16;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.encoder.num_layers = 1;
  config.encoder.dropout = 0.1f;  // dropout too must be deterministic
  config.serializer.max_total_tokens = 96;
  config.num_types = dataset.type_vocab.size();
  config.num_relations = dataset.relation_vocab.size();
  config.epochs = 3;
  config.seed = seed + 2;

  util::Rng model_rng(config.seed);
  DoduoModel model(config, &model_rng);
  table::TableSerializer serializer(&tokenizer, config.serializer);
  Trainer trainer(&model, &serializer);
  const TrainHistory history = trainer.Train(dataset, splits);

  PipelineResult result;
  result.valid_curve = history.valid_type_f1;
  result.test_f1 = trainer.EvaluateTypes(dataset, splits.test).micro.f1;
  const nn::Tensor& weights = model.Parameters()[0]->value;
  result.first_weights.assign(weights.data(),
                              weights.data() + weights.size());
  const Annotator annotator(&model, &serializer, &dataset.type_vocab,
                            &dataset.relation_vocab);
  result.annotations =
      annotator.AnnotateTypes(dataset.tables[splits.test[0]].table).value();
  return result;
}

void ExpectIdenticalResults(const PipelineResult& a,
                            const PipelineResult& b) {
  ASSERT_EQ(a.valid_curve.size(), b.valid_curve.size());
  for (size_t i = 0; i < a.valid_curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.valid_curve[i], b.valid_curve[i]);
  }
  EXPECT_DOUBLE_EQ(a.test_f1, b.test_f1);
  ASSERT_EQ(a.first_weights.size(), b.first_weights.size());
  for (size_t i = 0; i < a.first_weights.size(); ++i) {
    ASSERT_EQ(a.first_weights[i], b.first_weights[i]) << i;
  }
  EXPECT_EQ(a.annotations, b.annotations);
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  const PipelineResult a = RunPipeline(101);
  const PipelineResult b = RunPipeline(101);
  ExpectIdenticalResults(a, b);
}

TEST(DeterminismTest, ThreadCountDoesNotChangeResults) {
  // Training and annotation must be bit-identical at 1 vs 4 threads. The
  // threshold override forces even this miniature model's GEMMs through
  // the sharded parallel path (cached at first kernel use, which happens
  // inside RunPipeline below).
  setenv("DODUO_PARALLEL_THRESHOLD", "1", 1);
  util::SetComputeThreads(1);
  const PipelineResult serial = RunPipeline(101);
  util::SetComputeThreads(4);
  const PipelineResult parallel = RunPipeline(101);
  util::SetComputeThreads(1);
  ExpectIdenticalResults(serial, parallel);
}

TEST(DeterminismTest, DifferentSeedsDifferentRuns) {
  const PipelineResult a = RunPipeline(101);
  const PipelineResult b = RunPipeline(202);
  double diff = 0.0;
  for (size_t i = 0;
       i < std::min(a.first_weights.size(), b.first_weights.size()); ++i) {
    diff += static_cast<double>(
        std::abs(a.first_weights[i] - b.first_weights[i]));
  }
  EXPECT_GT(diff, 1e-3);
}

}  // namespace
}  // namespace doduo::core
