#include "doduo/core/trainer.h"

#include "doduo/core/annotator.h"
#include "doduo/synth/table_generator.h"
#include "doduo/text/wordpiece_trainer.h"
#include "gtest/gtest.h"

namespace doduo::core {
namespace {

// End-to-end fixture: a tiny WikiTable-style benchmark, a WordPiece vocab
// trained on its cell text, and a small DODUO model.
class TrainerEndToEndTest : public ::testing::Test {
 protected:
  TrainerEndToEndTest()
      : kb_(synth::KnowledgeBase::BuildWikiTableKb(11)) {
    synth::TableGeneratorOptions gen_options;
    gen_options.num_tables = 300;
    gen_options.dataset_name = "mini_wikitable";
    synth::TableGenerator generator(&kb_, gen_options);
    util::Rng rng(12);
    dataset_ = generator.Generate(&rng);
    splits_ = table::SplitDataset(dataset_.tables.size(), 0.7, 0.15, &rng);

    // Vocab from all cell text.
    std::vector<std::string> lines;
    for (const auto& annotated : dataset_.tables) {
      for (const auto& column : annotated.table.columns()) {
        for (const auto& value : column.values) lines.push_back(value);
      }
    }
    text::WordPieceTrainer trainer({.vocab_size = 800,
                                    .min_pair_frequency = 2});
    vocab_ = trainer.TrainFromLines(lines);
  }

  DoduoConfig MakeConfig() const {
    DoduoConfig config;
    config.encoder.vocab_size = vocab_.size();
    config.encoder.max_positions = 96;
    config.encoder.hidden_dim = 32;
    config.encoder.num_heads = 2;
    config.encoder.ffn_dim = 64;
    config.encoder.num_layers = 1;
    config.encoder.dropout = 0.0f;
    config.serializer.max_total_tokens = 96;
    config.serializer.max_tokens_per_column = 12;
    config.num_types = dataset_.type_vocab.size();
    config.num_relations = dataset_.relation_vocab.size();
    config.multi_label = true;
    config.epochs = 30;
    config.learning_rate = 2e-3;
    return config;
  }

  synth::KnowledgeBase kb_;
  table::ColumnAnnotationDataset dataset_;
  table::DatasetSplits splits_;
  text::Vocab vocab_;
};

TEST_F(TrainerEndToEndTest, ExampleBuilderTableWise) {
  DoduoConfig config = MakeConfig();
  text::WordPieceTokenizer tokenizer(&vocab_);
  table::TableSerializer serializer(&tokenizer, config.serializer);
  ExampleBuilder builder(&serializer, &config);

  auto examples = builder.BuildTypeExamples(dataset_, splits_.train);
  EXPECT_EQ(examples.size(), splits_.train.size());
  for (const TypeExample& example : examples) {
    EXPECT_EQ(example.input.cls_positions.size(), example.labels.size());
  }

  auto rel_examples = builder.BuildRelationExamples(dataset_, splits_.train);
  EXPECT_GT(rel_examples.size(), 0u);
  for (const RelationExample& example : rel_examples) {
    EXPECT_EQ(example.pairs.size(), example.labels.size());
    for (const auto& [a, b] : example.pairs) {
      EXPECT_EQ(a, 0);  // key-column relations
      EXPECT_LT(b, static_cast<int>(example.input.cls_positions.size()));
    }
  }
}

TEST_F(TrainerEndToEndTest, ExampleBuilderSingleColumn) {
  DoduoConfig config = MakeConfig();
  config.input_mode = InputMode::kSingleColumn;
  text::WordPieceTokenizer tokenizer(&vocab_);
  table::TableSerializer serializer(&tokenizer, config.serializer);
  ExampleBuilder builder(&serializer, &config);

  auto examples = builder.BuildTypeExamples(dataset_, splits_.train);
  // One example per column, so strictly more than per table.
  EXPECT_GT(examples.size(), splits_.train.size());
  for (const TypeExample& example : examples) {
    EXPECT_EQ(example.input.cls_positions.size(), 1u);
    EXPECT_EQ(example.labels.size(), 1u);
  }

  auto rel_examples = builder.BuildRelationExamples(dataset_, splits_.train);
  for (const RelationExample& example : rel_examples) {
    EXPECT_EQ(example.input.cls_positions.size(), 2u);
    EXPECT_EQ(example.pairs.size(), 1u);
  }
}

TEST_F(TrainerEndToEndTest, MultiTaskTrainingLearnsBothTasks) {
  DoduoConfig config = MakeConfig();
  util::Rng rng(13);
  DoduoModel model(config, &rng);
  text::WordPieceTokenizer tokenizer(&vocab_);
  table::TableSerializer serializer(&tokenizer, config.serializer);
  Trainer trainer(&model, &serializer);

  TrainHistory history = trainer.Train(dataset_, splits_);
  EXPECT_EQ(history.valid_type_f1.size(),
            static_cast<size_t>(config.epochs));
  EXPECT_GE(history.best_epoch, 0);

  EvalResult types = trainer.EvaluateTypes(dataset_, splits_.test);
  EvalResult relations = trainer.EvaluateRelations(dataset_, splits_.test);
  // Well above chance (~1/num_types and ~1/num_relations).
  EXPECT_GT(types.micro.f1, 0.4);
  EXPECT_GT(relations.micro.f1, 0.4);
}

TEST_F(TrainerEndToEndTest, TypesOnlyTrainingSkipsRelations) {
  DoduoConfig config = MakeConfig();
  config.tasks = TaskSet::kTypesOnly;
  config.epochs = 2;
  util::Rng rng(14);
  DoduoModel model(config, &rng);
  text::WordPieceTokenizer tokenizer(&vocab_);
  table::TableSerializer serializer(&tokenizer, config.serializer);
  Trainer trainer(&model, &serializer);
  TrainHistory history = trainer.Train(dataset_, splits_);
  EXPECT_EQ(history.valid_type_f1.size(), 2u);
  EXPECT_TRUE(history.valid_relation_f1.empty());
}

TEST_F(TrainerEndToEndTest, AnnotatorProducesLabelNames) {
  DoduoConfig config = MakeConfig();
  config.epochs = 2;
  util::Rng rng(15);
  DoduoModel model(config, &rng);
  text::WordPieceTokenizer tokenizer(&vocab_);
  table::TableSerializer serializer(&tokenizer, config.serializer);
  Trainer trainer(&model, &serializer);
  trainer.Train(dataset_, splits_);

  Annotator annotator(&model, &serializer, &dataset_.type_vocab,
                      &dataset_.relation_vocab);
  const table::Table& sample = dataset_.tables[splits_.test[0]].table;
  auto types = annotator.AnnotateTypes(sample).value();
  EXPECT_EQ(types.size(), static_cast<size_t>(sample.num_columns()));
  for (const auto& names : types) {
    EXPECT_FALSE(names.empty());
    for (const std::string& name : names) {
      EXPECT_GE(dataset_.type_vocab.Id(name), 0) << name;
    }
  }
  if (sample.num_columns() > 1) {
    auto relations = annotator.AnnotateKeyRelations(sample).value();
    EXPECT_EQ(relations.size(),
              static_cast<size_t>(sample.num_columns() - 1));
  }
  nn::Tensor embeddings = annotator.ColumnEmbeddings(sample).value();
  EXPECT_EQ(embeddings.rows(), sample.num_columns());
  EXPECT_EQ(embeddings.cols(), config.encoder.hidden_dim);
}

TEST_F(TrainerEndToEndTest, SingleLabelModeTrains) {
  DoduoConfig config = MakeConfig();
  config.multi_label = false;
  config.tasks = TaskSet::kTypesOnly;
  config.epochs = 2;
  util::Rng rng(16);
  DoduoModel model(config, &rng);
  text::WordPieceTokenizer tokenizer(&vocab_);
  table::TableSerializer serializer(&tokenizer, config.serializer);
  Trainer trainer(&model, &serializer);
  TrainHistory history = trainer.Train(dataset_, splits_);
  EXPECT_GT(history.best_score, 0.1);
}

}  // namespace
}  // namespace doduo::core
