#include "doduo/core/model.h"

#include "doduo/nn/losses.h"
#include "doduo/nn/optimizer.h"
#include "gtest/gtest.h"

namespace doduo::core {
namespace {

DoduoConfig SmallConfig() {
  DoduoConfig config;
  config.encoder.vocab_size = 60;
  config.encoder.max_positions = 64;
  config.encoder.hidden_dim = 16;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.encoder.num_layers = 1;
  config.encoder.dropout = 0.0f;
  config.serializer.max_total_tokens = 64;
  config.num_types = 5;
  config.num_relations = 4;
  return config;
}

table::SerializedTable MakeInput() {
  table::SerializedTable input;
  input.token_ids = {2, 10, 11, 2, 12, 13, 2, 14, 15, 3};
  input.cls_positions = {0, 3, 6};
  return input;
}

TEST(DoduoModelTest, TypeLogitsShape) {
  DoduoConfig config = SmallConfig();
  util::Rng rng(1);
  DoduoModel model(config, &rng);
  const nn::Tensor& logits = model.ForwardTypes(MakeInput());
  EXPECT_EQ(logits.rows(), 3);  // one row per column
  EXPECT_EQ(logits.cols(), 5);
}

TEST(DoduoModelTest, RelationLogitsShape) {
  DoduoConfig config = SmallConfig();
  util::Rng rng(2);
  DoduoModel model(config, &rng);
  const nn::Tensor& logits =
      model.ForwardRelations(MakeInput(), {{0, 1}, {0, 2}});
  EXPECT_EQ(logits.rows(), 2);
  EXPECT_EQ(logits.cols(), 4);
}

TEST(DoduoModelTest, NoRelationHeadWhenZeroRelations) {
  DoduoConfig config = SmallConfig();
  config.num_relations = 0;
  config.tasks = TaskSet::kTypesOnly;
  util::Rng rng(3);
  DoduoModel model(config, &rng);
  // Type path still works.
  EXPECT_EQ(model.ForwardTypes(MakeInput()).rows(), 3);
}

TEST(DoduoModelTest, TypeTrainingStepReducesLoss) {
  DoduoConfig config = SmallConfig();
  config.multi_label = false;
  util::Rng rng(4);
  DoduoModel model(config, &rng);
  model.set_training(false);
  nn::AdamOptions adam_options;
  adam_options.learning_rate = 1e-2;
  nn::Adam adam(model.Parameters(), adam_options);

  const table::SerializedTable input = MakeInput();
  const std::vector<int> labels = {0, 3, 1};
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 40; ++step) {
    const nn::Tensor& logits = model.ForwardTypes(input);
    nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
    model.BackwardTypes(loss.grad_logits);
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.3);
}

TEST(DoduoModelTest, RelationTrainingStepReducesLoss) {
  DoduoConfig config = SmallConfig();
  config.multi_label = false;
  util::Rng rng(5);
  DoduoModel model(config, &rng);
  model.set_training(false);
  nn::AdamOptions adam_options;
  adam_options.learning_rate = 1e-2;
  nn::Adam adam(model.Parameters(), adam_options);

  const table::SerializedTable input = MakeInput();
  const std::vector<std::pair<int, int>> pairs = {{0, 1}, {0, 2}};
  const std::vector<int> labels = {2, 0};
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 40; ++step) {
    const nn::Tensor& logits = model.ForwardRelations(input, pairs);
    nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
    model.BackwardRelations(loss.grad_logits);
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.3);
}

TEST(DoduoModelTest, ColumnEmbeddingsShapeAndDeterminism) {
  DoduoConfig config = SmallConfig();
  util::Rng rng(6);
  DoduoModel model(config, &rng);
  model.set_training(false);
  nn::Tensor a = model.ColumnEmbeddings(MakeInput());
  nn::Tensor b = model.ColumnEmbeddings(MakeInput());
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 16);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(DoduoModelTest, ColumnAttentionIsColumnSquare) {
  DoduoConfig config = SmallConfig();
  util::Rng rng(7);
  DoduoModel model(config, &rng);
  model.set_training(false);
  nn::Tensor attention = model.ColumnAttention(MakeInput());
  EXPECT_EQ(attention.rows(), 3);
  EXPECT_EQ(attention.cols(), 3);
  for (int64_t i = 0; i < attention.size(); ++i) {
    EXPECT_GE(attention.data()[i], 0.0f);
  }
}

TEST(DoduoModelTest, MaskBuilderIsApplied) {
  DoduoConfig config = SmallConfig();
  util::Rng rng(8);
  DoduoModel model(config, &rng);
  model.set_training(false);
  const table::SerializedTable input = MakeInput();
  const nn::Tensor unmasked = model.ForwardTypes(input);

  // A mask that isolates every position: output must change.
  model.set_mask_builder([](const table::SerializedTable& serialized) {
    const int64_t s = static_cast<int64_t>(serialized.token_ids.size());
    transformer::AttentionMask mask({s, s});
    for (int64_t i = 0; i < s; ++i) {
      for (int64_t j = 0; j < s; ++j) {
        if (i != j) mask.at(i, j) = transformer::kAttentionMaskValue;
      }
    }
    return mask;
  });
  const nn::Tensor masked = model.ForwardTypes(input);
  double diff = 0.0;
  for (int64_t i = 0; i < masked.size(); ++i) {
    diff += static_cast<double>(std::abs(masked.data()[i] - unmasked.data()[i]));
  }
  EXPECT_GT(diff, 1e-3);

  model.set_mask_builder(nullptr);
  const nn::Tensor restored = model.ForwardTypes(input);
  for (int64_t i = 0; i < restored.size(); ++i) {
    EXPECT_FLOAT_EQ(restored.data()[i], unmasked.data()[i]);
  }
}

TEST(DoduoModelTest, SnapshotRestoreRoundTrip) {
  DoduoConfig config = SmallConfig();
  util::Rng rng(9);
  DoduoModel model(config, &rng);
  model.set_training(false);
  const table::SerializedTable input = MakeInput();
  const nn::Tensor before = model.ForwardTypes(input);
  auto snapshot = model.SnapshotWeights();

  // Perturb all parameters.
  for (nn::Parameter* p : model.Parameters()) {
    for (int64_t i = 0; i < p->value.size(); ++i) p->value.data()[i] += 0.1f;
  }
  const nn::Tensor perturbed = model.ForwardTypes(input);
  double diff = 0.0;
  for (int64_t i = 0; i < perturbed.size(); ++i) {
    diff += static_cast<double>(std::abs(perturbed.data()[i] - before.data()[i]));
  }
  EXPECT_GT(diff, 1e-3);

  model.RestoreWeights(snapshot);
  const nn::Tensor restored = model.ForwardTypes(input);
  for (int64_t i = 0; i < restored.size(); ++i) {
    EXPECT_FLOAT_EQ(restored.data()[i], before.data()[i]);
  }
}

}  // namespace
}  // namespace doduo::core
