// Zero-copy weight sharing across a ReplicaPool (DESIGN §14): replicas
// built over a v2 mmap checkpoint must alias ONE physical weight copy —
// asserted by data-pointer identity, which is stronger and less flaky than
// sampling RSS — and still annotate identically to the primary.

#include "doduo/core/replica_pool.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/core/model_io.h"
#include "doduo/nn/parameter.h"
#include "doduo/nn/quant.h"
#include "doduo/table/table.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::core {
namespace {

struct Fixture {
  Fixture() {
    config.encoder.vocab_size = 60;
    config.encoder.max_positions = 64;
    config.encoder.hidden_dim = 16;
    config.encoder.num_heads = 2;
    config.encoder.ffn_dim = 32;
    config.encoder.num_layers = 1;
    config.encoder.dropout = 0.0f;
    config.serializer.max_total_tokens = 64;
    config.num_types = 5;
    config.num_relations = 0;
    config.tasks = TaskSet::kTypesOnly;
    for (const char* word : {"alpha", "beta", "gamma", "delta"}) {
      vocab.AddToken(word);
    }
    for (int i = 0; i < config.num_types; ++i) {
      types.AddLabel("type" + std::to_string(i));
    }
    util::Rng rng(1);
    model = std::make_unique<DoduoModel>(config, &rng);
    model->set_training(false);
  }

  DoduoConfig config;
  text::Vocab vocab;
  table::LabelVocab types;
  table::LabelVocab relations;
  std::unique_ptr<DoduoModel> model;
};

table::Table SmallTable() {
  table::Table table("t");
  table.AddColumn({"a", {"alpha", "beta"}});
  table.AddColumn({"b", {"gamma"}});
  return table;
}

std::string SaveDir(Fixture* fx, const char* name,
                    const SaveModelOptions& options) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  const util::Status saved = SaveModelDir(dir, fx->model.get(), fx->vocab,
                                          fx->types, fx->relations, options);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return dir;
}

TEST(ReplicaSharingTest, ReplicasAliasOneWeightCopyOverV2Mmap) {
  Fixture fx;
  const std::string dir = SaveDir(&fx, "share_v2", {.checkpoint_version = 2});
  auto loaded = LoadModelDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  LoadedModel& m = *loaded.value();

  // The v2 load itself is zero-copy: the primary's weights borrow the map.
  const nn::ParameterList primary_params = m.model->Parameters();
  for (nn::Parameter* p : primary_params) {
    EXPECT_TRUE(p->value.borrowed()) << p->name;
  }

  ReplicaPool pool(m.model.get(), m.serializer.get(), &m.types,
                   m.relation_vocab(), 3);
  ASSERT_EQ(pool.num_replicas(), 3);
  for (int r = 1; r < pool.num_replicas(); ++r) {
    const nn::ParameterList replica_params = pool.model(r)->Parameters();
    ASSERT_EQ(replica_params.size(), primary_params.size());
    for (size_t i = 0; i < primary_params.size(); ++i) {
      // Pointer identity: replica weights ARE the primary's mapped bytes,
      // not a copy of them. (SnapshotWeights of a borrowed model shares
      // the borrow, and AdoptWeights shares it onward.)
      EXPECT_TRUE(replica_params[i]->value.borrowed());
      EXPECT_EQ(std::as_const(replica_params[i]->value).data(),
                std::as_const(primary_params[i]->value).data())
          << primary_params[i]->name;
    }
  }

  // Shared storage must not change behavior: all replicas annotate alike.
  const table::Table table = SmallTable();
  auto want = pool.annotator(0)->AnnotateTypes(table);
  ASSERT_TRUE(want.ok());
  for (int r = 1; r < pool.num_replicas(); ++r) {
    auto got = pool.annotator(r)->AnnotateTypes(table);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), want.value()) << "replica " << r;
  }
  std::filesystem::remove_all(dir);
}

TEST(ReplicaSharingTest, PrequantTablesAreSharedAcrossReplicas) {
  Fixture fx;
  const std::string dir = SaveDir(
      &fx, "share_int8", {.checkpoint_version = 2, .quant_int8 = true});
  auto loaded = LoadModelDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  LoadedModel& m = *loaded.value();

  const nn::ParameterList primary_params = m.model->Parameters();
  int with_prequant = 0;
  for (const nn::Parameter* p : primary_params) {
    if (p->prequant != nullptr) ++with_prequant;
  }
  ASSERT_GT(with_prequant, 0) << "int8 checkpoint attached no tables";

  ReplicaPool pool(m.model.get(), m.serializer.get(), &m.types,
                   m.relation_vocab(), 2);
  const nn::ParameterList replica_params = pool.model(1)->Parameters();
  ASSERT_EQ(replica_params.size(), primary_params.size());
  for (size_t i = 0; i < primary_params.size(); ++i) {
    // One shared table object per parameter, not one per replica.
    EXPECT_EQ(replica_params[i]->prequant.get(),
              primary_params[i]->prequant.get())
        << primary_params[i]->name;
    if (primary_params[i]->prequant != nullptr) {
      EXPECT_EQ(replica_params[i]->prequant_revision,
                replica_params[i]->revision);
    }
  }

  // And the quantized path over shared tables still matches the primary.
  nn::SetQuantEnabled(true);
  const table::Table table = SmallTable();
  auto want = pool.annotator(0)->AnnotateTypes(table);
  auto got = pool.annotator(1)->AnnotateTypes(table);
  nn::SetQuantEnabled(false);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), want.value());
  std::filesystem::remove_all(dir);
}

TEST(ReplicaSharingTest, AdoptedModelRejectsWeightMutation) {
  Fixture fx;
  const std::string dir =
      SaveDir(&fx, "share_readonly", {.checkpoint_version = 2});
  auto loaded = LoadModelDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  nn::ParameterList params = loaded.value()->model->Parameters();
  ASSERT_FALSE(params.empty());
  // Borrowed weights are inference-only: mutable access must trip the
  // CHECK rather than scribble on the shared mapping.
  EXPECT_DEATH((void)params[0]->value.data(), "borrowed");
  std::filesystem::remove_all(dir);
}

TEST(ReplicaSharingTest, RestoreWeightsReownsAfterAdoption) {
  // A model that adopted a snapshot can be made trainable again by
  // RestoreWeights (the copying path) — and its revision moves so stale
  // int8 caches die.
  Fixture fx;
  auto snapshot = std::make_shared<const std::vector<nn::Tensor>>(
      fx.model->SnapshotWeights());
  util::Rng rng(2);
  DoduoModel replica(fx.config, &rng);
  replica.AdoptWeights(snapshot);
  for (nn::Parameter* p : replica.Parameters()) {
    EXPECT_TRUE(p->value.borrowed()) << p->name;
  }
  replica.RestoreWeights(*snapshot);
  for (nn::Parameter* p : replica.Parameters()) {
    EXPECT_FALSE(p->value.borrowed()) << p->name;
    EXPECT_GT(p->revision, 0u);
  }
}

}  // namespace
}  // namespace doduo::core
