// Malformed-input coverage for the Annotator surface (DESIGN §10): every
// public entry point must return a precise non-OK Status — never abort —
// and the pipeline metrics must track successes and failures.

#include <memory>
#include <string>

#include "doduo/core/annotator.h"
#include "doduo/util/metrics.h"
#include "gtest/gtest.h"

namespace doduo::core {
namespace {

DoduoConfig SmallConfig() {
  DoduoConfig config;
  config.encoder.vocab_size = 60;
  config.encoder.max_positions = 64;
  config.encoder.hidden_dim = 16;
  config.encoder.num_heads = 2;
  config.encoder.ffn_dim = 32;
  config.encoder.num_layers = 1;
  config.encoder.dropout = 0.0f;
  config.serializer.max_total_tokens = 64;
  config.num_types = 5;
  config.num_relations = 4;
  return config;
}

class AnnotatorErrorTest : public ::testing::Test {
 protected:
  AnnotatorErrorTest() : config_(SmallConfig()) {
    for (const char* word : {"alpha", "beta", "gamma", "delta"}) {
      vocab_.AddToken(word);
    }
    for (int i = 0; i < config_.num_types; ++i) {
      type_vocab_.AddLabel("type" + std::to_string(i));
    }
    for (int i = 0; i < config_.num_relations; ++i) {
      relation_vocab_.AddLabel("rel" + std::to_string(i));
    }
    util::Rng rng(1);
    model_ = std::make_unique<DoduoModel>(config_, &rng);
    model_->set_training(false);
    tokenizer_ = std::make_unique<text::WordPieceTokenizer>(&vocab_);
    serializer_ = std::make_unique<table::TableSerializer>(
        tokenizer_.get(), config_.serializer);
    annotator_ = std::make_unique<Annotator>(model_.get(), serializer_.get(),
                                             &type_vocab_, &relation_vocab_);
  }

  static table::Table GoodTable(const std::string& id = "good") {
    table::Table table(id);
    table.AddColumn({"a", {"alpha", "beta"}});
    table.AddColumn({"b", {"gamma"}});
    table.AddColumn({"c", {"delta", "alpha"}});
    return table;
  }

  DoduoConfig config_;
  text::Vocab vocab_;
  table::LabelVocab type_vocab_;
  table::LabelVocab relation_vocab_;
  std::unique_ptr<DoduoModel> model_;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer_;
  std::unique_ptr<table::TableSerializer> serializer_;
  std::unique_ptr<Annotator> annotator_;
};

TEST_F(AnnotatorErrorTest, ValidTableAnnotates) {
  auto types = annotator_->AnnotateTypes(GoodTable());
  ASSERT_TRUE(types.ok()) << types.status().ToString();
  ASSERT_EQ(types.value().size(), 3u);
  for (const auto& names : types.value()) {
    ASSERT_FALSE(names.empty());
    for (const std::string& name : names) {
      EXPECT_GE(type_vocab_.Id(name), 0) << name;
    }
  }
}

TEST_F(AnnotatorErrorTest, ZeroColumnTableIsInvalidArgument) {
  const table::Table empty("empty_one");
  auto types = annotator_->AnnotateTypes(empty);
  ASSERT_FALSE(types.ok());
  EXPECT_EQ(types.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(types.status().message().find("empty_one"), std::string::npos);
  EXPECT_NE(types.status().message().find("no columns"), std::string::npos);
  EXPECT_FALSE(annotator_->ColumnEmbeddings(empty).ok());
  EXPECT_FALSE(annotator_->AnnotateKeyRelations(empty).ok());
}

TEST_F(AnnotatorErrorTest, TokenBudgetUnderflowIsInvalidArgument) {
  // More columns than max_total_tokens can carry [CLS] markers for.
  table::Table wide("wide");
  for (int c = 0; c < config_.serializer.max_total_tokens; ++c) {
    wide.AddColumn({"col", {"alpha"}});
  }
  auto types = annotator_->AnnotateTypes(wide);
  ASSERT_FALSE(types.ok());
  EXPECT_EQ(types.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(types.status().message().find("max_total_tokens"),
            std::string::npos);
  EXPECT_NE(types.status().message().find("wide"), std::string::npos);
}

TEST_F(AnnotatorErrorTest, OutOfRangePairIsInvalidArgument) {
  auto relations = annotator_->AnnotateRelations(GoodTable(), {{0, 5}});
  ASSERT_FALSE(relations.ok());
  EXPECT_EQ(relations.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(relations.status().message().find("(0, 5)"), std::string::npos);
  EXPECT_NE(relations.status().message().find("out of range"),
            std::string::npos);
  EXPECT_FALSE(annotator_->AnnotateRelations(GoodTable(), {{-1, 1}}).ok());
}

TEST_F(AnnotatorErrorTest, DuplicatePairIsInvalidArgument) {
  auto relations =
      annotator_->AnnotateRelations(GoodTable(), {{0, 1}, {0, 2}, {0, 1}});
  ASSERT_FALSE(relations.ok());
  EXPECT_EQ(relations.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(relations.status().message().find("duplicate"), std::string::npos);
  EXPECT_NE(relations.status().message().find("positions 0 and 2"),
            std::string::npos);
}

TEST_F(AnnotatorErrorTest, EmptyPairListYieldsEmptyResult) {
  auto relations = annotator_->AnnotateRelations(GoodTable(), {});
  ASSERT_TRUE(relations.ok()) << relations.status().ToString();
  EXPECT_TRUE(relations.value().empty());
}

TEST_F(AnnotatorErrorTest, ValidRelationsAnnotate) {
  auto relations = annotator_->AnnotateRelations(GoodTable(), {{0, 1}, {0, 2}});
  ASSERT_TRUE(relations.ok()) << relations.status().ToString();
  ASSERT_EQ(relations.value().size(), 2u);
  for (const std::string& name : relations.value()) {
    EXPECT_GE(relation_vocab_.Id(name), 0) << name;
  }
}

TEST_F(AnnotatorErrorTest, MissingRelationHeadIsFailedPrecondition) {
  DoduoConfig config = SmallConfig();
  config.num_relations = 0;
  config.tasks = TaskSet::kTypesOnly;
  util::Rng rng(2);
  DoduoModel model(config, &rng);
  model.set_training(false);
  Annotator annotator(&model, serializer_.get(), &type_vocab_,
                      /*relation_vocab=*/nullptr);
  auto relations = annotator.AnnotateRelations(GoodTable(), {{0, 1}});
  ASSERT_FALSE(relations.ok());
  EXPECT_EQ(relations.status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_NE(relations.status().message().find("relation head"),
            std::string::npos);
  // The type path is unaffected.
  EXPECT_TRUE(annotator.AnnotateTypes(GoodTable()).ok());
}

TEST_F(AnnotatorErrorTest, BatchErrorNamesFailingTableIndex) {
  std::vector<table::Table> tables = {GoodTable("t0"),
                                      table::Table("bad_batch_table"),
                                      GoodTable("t2")};
  auto types = annotator_->AnnotateTypesBatch(tables);
  ASSERT_FALSE(types.ok());
  EXPECT_EQ(types.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(types.status().message().find("table 1 of 3"), std::string::npos);
  EXPECT_NE(types.status().message().find("bad_batch_table"),
            std::string::npos);
  EXPECT_FALSE(annotator_->ColumnEmbeddingsBatch(tables).ok());
}

TEST_F(AnnotatorErrorTest, MetricsTrackAnnotationsAndErrors) {
  util::ResetMetrics();
  ASSERT_TRUE(annotator_->AnnotateTypes(GoodTable()).ok());

  EXPECT_EQ(util::GetCounter("annotator.tables_total")->value(), 1u);
  EXPECT_EQ(util::GetCounter("annotator.columns_total")->value(), 3u);
  EXPECT_EQ(util::GetCounter("annotator.errors_total")->value(), 0u);
  EXPECT_EQ(util::GetCounter("serializer.tables_total")->value(), 1u);
  EXPECT_GT(util::GetCounter("serializer.tokens_total")->value(), 0u);
  EXPECT_EQ(util::GetHistogram("annotator.annotate_us")->count(), 1u);
  EXPECT_EQ(util::GetHistogram("model.encoder_forward_us")->count(), 1u);
  EXPECT_EQ(util::GetHistogram("model.heads_us")->count(), 1u);
  EXPECT_GT(util::GetHistogram("serializer.serialize_us")->count(), 0u);

  // A failed call counts as an error, not as an annotated table.
  ASSERT_FALSE(annotator_->AnnotateTypes(table::Table("nope")).ok());
  EXPECT_EQ(util::GetCounter("annotator.errors_total")->value(), 1u);
  EXPECT_EQ(util::GetCounter("annotator.tables_total")->value(), 1u);

  // Batch calls count the batch and each table.
  std::vector<table::Table> tables = {GoodTable("b0"), GoodTable("b1")};
  ASSERT_TRUE(annotator_->AnnotateTypesBatch(tables).ok());
  EXPECT_EQ(util::GetCounter("annotator.batches_total")->value(), 1u);
  EXPECT_EQ(util::GetCounter("annotator.tables_total")->value(), 3u);
  EXPECT_EQ(util::GetCounter("annotator.columns_total")->value(), 9u);
  EXPECT_EQ(util::GetHistogram("annotator.batch_us")->count(), 1u);

  // The annotator's stats snapshot surfaces the same registry.
  const util::MetricsSnapshot snapshot = Annotator::StatsSnapshot();
  bool found = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "annotator.tables_total") {
      found = true;
      EXPECT_EQ(counter.value, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnnotatorErrorTest, ErrorsDoNotDisturbSubsequentAnnotations) {
  // A rejected input must leave the annotator fully usable, and valid-input
  // results must be unaffected by interleaved failures.
  auto before = annotator_->AnnotateTypes(GoodTable());
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(annotator_->AnnotateTypes(table::Table("broken")).ok());
  ASSERT_FALSE(annotator_->AnnotateRelations(GoodTable(), {{9, 9}}).ok());
  auto after = annotator_->AnnotateTypes(GoodTable());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
}

TEST(BatchClampWarningTest, FiresOnlyWhenThreadsExceedTables) {
  // `doduo_cli annotate --batch` regression: the batch fan-out silently
  // clamps to min(pool threads, table count); the CLI must warn when the
  // clamp bites so idle threads are explained, and stay quiet otherwise.
  EXPECT_TRUE(WarnIfBatchClampedToTableCount(/*num_tables=*/2,
                                             /*pool_threads=*/8));
  EXPECT_FALSE(WarnIfBatchClampedToTableCount(8, 8));
  EXPECT_FALSE(WarnIfBatchClampedToTableCount(9, 8));
  EXPECT_FALSE(WarnIfBatchClampedToTableCount(8, 2));
  // Degenerate inputs never warn: nothing useful to say about an empty
  // batch or an unsized pool.
  EXPECT_FALSE(WarnIfBatchClampedToTableCount(0, 8));
  EXPECT_FALSE(WarnIfBatchClampedToTableCount(2, 0));
}

}  // namespace
}  // namespace doduo::core
