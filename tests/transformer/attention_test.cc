#include "doduo/transformer/attention.h"

#include <cmath>

#include "doduo/nn/ops.h"
#include "gtest/gtest.h"
#include "testing/gradcheck.h"

namespace doduo::transformer {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 50;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.ffn_dim = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  return config;
}

double WeightedSum(const nn::Tensor& out, const nn::Tensor& weights) {
  double total = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out.data()[i]) * weights.data()[i];
  }
  return total;
}

TEST(AttentionTest, OutputShapeMatchesInput) {
  util::Rng rng(1);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({5, 8});
  x.FillNormal(&rng, 1.0f);
  const nn::Tensor& y = attn.Forward(x, nullptr);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
}

TEST(AttentionTest, ProbabilitiesAreRowStochastic) {
  util::Rng rng(2);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({4, 8});
  x.FillNormal(&rng, 1.0f);
  attn.Forward(x, nullptr);
  ASSERT_EQ(attn.attention_probs().size(), 2u);
  for (const nn::Tensor& probs : attn.attention_probs()) {
    ASSERT_EQ(probs.rows(), 4);
    ASSERT_EQ(probs.cols(), 4);
    for (int64_t i = 0; i < 4; ++i) {
      double sum = 0.0;
      for (int64_t j = 0; j < 4; ++j) sum += probs.at(i, j);
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(AttentionTest, MaskBlocksAttention) {
  util::Rng rng(3);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({3, 8});
  x.FillNormal(&rng, 1.0f);
  // Forbid position 0 from attending to position 2.
  AttentionMask mask({3, 3});
  mask.at(0, 2) = kAttentionMaskValue;
  attn.Forward(x, &mask);
  for (const nn::Tensor& probs : attn.attention_probs()) {
    EXPECT_LT(probs.at(0, 2), 1e-6);
    EXPECT_GT(probs.at(1, 2), 0.0f);  // other rows unaffected
  }
}

TEST(AttentionTest, InputGradientCheck) {
  util::Rng rng(4);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({3, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({3, 8});
  dy.FillNormal(&rng, 1.0f);

  attn.Forward(x, nullptr);
  nn::Tensor dx = attn.Backward(dy);

  auto loss = [&]() { return WeightedSum(attn.Forward(x, nullptr), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx, 1e-3, 3e-2, 3e-2);
}

TEST(AttentionTest, InputGradientCheckWithMask) {
  util::Rng rng(5);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({3, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({3, 8});
  dy.FillNormal(&rng, 1.0f);
  AttentionMask mask({3, 3});
  mask.at(0, 1) = kAttentionMaskValue;
  mask.at(2, 0) = kAttentionMaskValue;

  attn.Forward(x, &mask);
  nn::Tensor dx = attn.Backward(dy);

  auto loss = [&]() { return WeightedSum(attn.Forward(x, &mask), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx, 1e-3, 3e-2, 3e-2);
}

TEST(AttentionTest, ParameterGradientCheck) {
  util::Rng rng(6);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({2, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({2, 8});
  dy.FillNormal(&rng, 1.0f);

  nn::ParameterList params = attn.Parameters();
  ASSERT_EQ(params.size(), 8u);  // 4 linears × (w, b)
  nn::ZeroAllGrads(params);
  attn.Forward(x, nullptr);
  attn.Backward(dy);

  auto loss = [&]() { return WeightedSum(attn.Forward(x, nullptr), dy); };
  // Check one weight matrix and one bias to keep runtime modest.
  nn::Tensor wq_grad = params[0]->grad;
  testing::ExpectInputGradientsClose(&params[0]->value, loss, wq_grad, 1e-3,
                                     3e-2, 3e-2);
  nn::Tensor wo_bias_grad = params[7]->grad;
  testing::ExpectInputGradientsClose(&params[7]->value, loss, wo_bias_grad,
                                     1e-3, 3e-2, 3e-2);
}

TEST(AttentionTest, ContextChangesOutput) {
  // The same token in different contexts must get different embeddings —
  // the paper's core argument for contextualized representations.
  util::Rng rng(7);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor context_a({3, 8});
  context_a.FillNormal(&rng, 1.0f);
  nn::Tensor context_b = context_a;
  // Perturb a *different* row (the context), keep row 0 identical.
  for (int64_t j = 0; j < 8; ++j) context_b.at(2, j) += 1.0f;

  nn::Tensor out_a = attn.Forward(context_a, nullptr);
  nn::Tensor out_b = attn.Forward(context_b, nullptr);
  double diff = 0.0;
  for (int64_t j = 0; j < 8; ++j) {
    diff += std::fabs(out_a.at(0, j) - out_b.at(0, j));
  }
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace doduo::transformer
