#include "doduo/transformer/attention.h"

#include <cmath>

#include "doduo/nn/ops.h"
#include "gtest/gtest.h"
#include "testing/gradcheck.h"

namespace doduo::transformer {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 50;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.ffn_dim = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  return config;
}

double WeightedSum(const nn::Tensor& out, const nn::Tensor& weights) {
  double total = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out.data()[i]) *
             static_cast<double>(weights.data()[i]);
  }
  return total;
}

TEST(AttentionTest, OutputShapeMatchesInput) {
  util::Rng rng(1);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({5, 8});
  x.FillNormal(&rng, 1.0f);
  const nn::Tensor& y = attn.Forward(x, nullptr);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
}

TEST(AttentionTest, ProbabilitiesAreRowStochastic) {
  util::Rng rng(2);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({4, 8});
  x.FillNormal(&rng, 1.0f);
  attn.Forward(x, nullptr);
  ASSERT_EQ(attn.attention_probs().size(), 2u);
  for (const nn::Tensor& probs : attn.attention_probs()) {
    ASSERT_EQ(probs.rows(), 4);
    ASSERT_EQ(probs.cols(), 4);
    for (int64_t i = 0; i < 4; ++i) {
      double sum = 0.0;
      for (int64_t j = 0; j < 4; ++j)
        sum += static_cast<double>(probs.at(i, j));
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(AttentionTest, MaskBlocksAttention) {
  util::Rng rng(3);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({3, 8});
  x.FillNormal(&rng, 1.0f);
  // Forbid position 0 from attending to position 2.
  AttentionMask mask({3, 3});
  mask.at(0, 2) = kAttentionMaskValue;
  attn.Forward(x, &mask);
  for (const nn::Tensor& probs : attn.attention_probs()) {
    EXPECT_LT(probs.at(0, 2), 1e-6);
    EXPECT_GT(probs.at(1, 2), 0.0f);  // other rows unaffected
  }
}

TEST(AttentionTest, InputGradientCheck) {
  util::Rng rng(4);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({3, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({3, 8});
  dy.FillNormal(&rng, 1.0f);

  attn.Forward(x, nullptr);
  nn::Tensor dx = attn.Backward(dy);

  auto loss = [&]() { return WeightedSum(attn.Forward(x, nullptr), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx, 1e-3, 3e-2, 3e-2);
}

TEST(AttentionTest, InputGradientCheckWithMask) {
  util::Rng rng(5);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({3, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({3, 8});
  dy.FillNormal(&rng, 1.0f);
  AttentionMask mask({3, 3});
  mask.at(0, 1) = kAttentionMaskValue;
  mask.at(2, 0) = kAttentionMaskValue;

  attn.Forward(x, &mask);
  nn::Tensor dx = attn.Backward(dy);

  auto loss = [&]() { return WeightedSum(attn.Forward(x, &mask), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx, 1e-3, 3e-2, 3e-2);
}

TEST(AttentionTest, ParameterGradientCheck) {
  util::Rng rng(6);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({2, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({2, 8});
  dy.FillNormal(&rng, 1.0f);

  nn::ParameterList params = attn.Parameters();
  ASSERT_EQ(params.size(), 4u);  // packed wqkv + wo, × (w, b)
  nn::ZeroAllGrads(params);
  attn.Forward(x, nullptr);
  attn.Backward(dy);

  auto loss = [&]() { return WeightedSum(attn.Forward(x, nullptr), dy); };
  // Check the packed projection weight and the output bias.
  nn::Tensor wqkv_grad = params[0]->grad;
  testing::ExpectInputGradientsClose(&params[0]->value, loss, wqkv_grad, 1e-3,
                                     3e-2, 3e-2);
  nn::Tensor wo_bias_grad = params[3]->grad;
  testing::ExpectInputGradientsClose(&params[3]->value, loss, wo_bias_grad,
                                     1e-3, 3e-2, 3e-2);
}

TEST(AttentionTest, ReferenceParameterGradientCheck) {
  // Same check on the retained copy-based kernels.
  util::Rng rng(6);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  attn.set_use_fused(false);
  nn::Tensor x({2, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({2, 8});
  dy.FillNormal(&rng, 1.0f);

  nn::ParameterList params = attn.Parameters();
  nn::ZeroAllGrads(params);
  attn.Forward(x, nullptr);
  attn.Backward(dy);

  auto loss = [&]() { return WeightedSum(attn.Forward(x, nullptr), dy); };
  nn::Tensor wqkv_grad = params[0]->grad;
  testing::ExpectInputGradientsClose(&params[0]->value, loss, wqkv_grad, 1e-3,
                                     3e-2, 3e-2);
}

TEST(AttentionTest, FusedMatchesReferenceBitwise) {
  // The strided-view kernels must reproduce the copy-based path exactly —
  // forward outputs, attention probabilities, input gradients, and
  // parameter gradients are all required to be bit-identical.
  util::Rng rng(8);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor x({5, 8});
  x.FillNormal(&rng, 0.7f);
  nn::Tensor dy({5, 8});
  dy.FillNormal(&rng, 1.0f);
  AttentionMask mask({5, 5});
  mask.at(0, 3) = kAttentionMaskValue;
  mask.at(4, 1) = kAttentionMaskValue;

  nn::ParameterList params = attn.Parameters();

  attn.set_use_fused(true);
  nn::ZeroAllGrads(params);
  nn::Tensor y_fused = attn.Forward(x, &mask);
  std::vector<nn::Tensor> probs_fused = attn.attention_probs();
  nn::Tensor dx_fused = attn.Backward(dy);
  std::vector<nn::Tensor> grads_fused;
  for (nn::Parameter* p : params) grads_fused.push_back(p->grad);

  attn.set_use_fused(false);
  nn::ZeroAllGrads(params);
  nn::Tensor y_ref = attn.Forward(x, &mask);
  std::vector<nn::Tensor> probs_ref = attn.attention_probs();
  nn::Tensor dx_ref = attn.Backward(dy);

  ASSERT_EQ(y_fused.size(), y_ref.size());
  for (int64_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_fused.data()[i], y_ref.data()[i]) << "output elt " << i;
  }
  for (size_t h = 0; h < probs_ref.size(); ++h) {
    for (int64_t i = 0; i < probs_ref[h].size(); ++i) {
      ASSERT_EQ(probs_fused[h].data()[i], probs_ref[h].data()[i])
          << "head " << h << " elt " << i;
    }
  }
  for (int64_t i = 0; i < dx_ref.size(); ++i) {
    ASSERT_EQ(dx_fused.data()[i], dx_ref.data()[i]) << "dx elt " << i;
  }
  for (size_t p = 0; p < params.size(); ++p) {
    for (int64_t i = 0; i < params[p]->grad.size(); ++i) {
      ASSERT_EQ(grads_fused[p].data()[i], params[p]->grad.data()[i])
          << "param " << p << " elt " << i;
    }
  }
}

TEST(AttentionTest, ContextChangesOutput) {
  // The same token in different contexts must get different embeddings —
  // the paper's core argument for contextualized representations.
  util::Rng rng(7);
  MultiHeadSelfAttention attn("a", SmallConfig(), &rng);
  nn::Tensor context_a({3, 8});
  context_a.FillNormal(&rng, 1.0f);
  nn::Tensor context_b = context_a;
  // Perturb a *different* row (the context), keep row 0 identical.
  for (int64_t j = 0; j < 8; ++j) context_b.at(2, j) += 1.0f;

  nn::Tensor out_a = attn.Forward(context_a, nullptr);
  nn::Tensor out_b = attn.Forward(context_b, nullptr);
  double diff = 0.0;
  for (int64_t j = 0; j < 8; ++j) {
    diff += static_cast<double>(std::fabs(out_a.at(0, j) - out_b.at(0, j)));
  }
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace doduo::transformer
