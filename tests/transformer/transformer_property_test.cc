// Property sweeps over encoder configurations: shape correctness, the
// zero-mask identity, and eval-mode determinism must hold for every
// (layers, heads, hidden) combination.

#include <cmath>
#include <tuple>

#include "doduo/transformer/bert.h"
#include "gtest/gtest.h"

namespace doduo::transformer {
namespace {

// Parameter: (num_layers, num_heads, hidden_dim).
class EncoderPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  TransformerConfig MakeConfig() const {
    const auto [layers, heads, hidden] = GetParam();
    TransformerConfig config;
    config.vocab_size = 50;
    config.max_positions = 32;
    config.hidden_dim = hidden;
    config.num_heads = heads;
    config.num_layers = layers;
    config.ffn_dim = hidden * 2;
    config.dropout = 0.0f;
    return config;
  }
};

TEST_P(EncoderPropertyTest, ForwardShapesAndFiniteness) {
  const TransformerConfig config = MakeConfig();
  util::Rng rng(1);
  BertModel model("m", config, &rng);
  model.set_training(false);
  for (int seq : {1, 5, 17}) {
    std::vector<int> ids(static_cast<size_t>(seq));
    for (int i = 0; i < seq; ++i) {
      ids[static_cast<size_t>(i)] = 5 + static_cast<int>(rng.NextUint64(45));
    }
    const nn::Tensor& hidden = model.Forward(ids);
    ASSERT_EQ(hidden.rows(), seq);
    ASSERT_EQ(hidden.cols(), config.hidden_dim);
    for (int64_t i = 0; i < hidden.size(); ++i) {
      ASSERT_TRUE(std::isfinite(hidden.data()[i]));
    }
  }
}

TEST_P(EncoderPropertyTest, ZeroMaskEqualsNoMask) {
  const TransformerConfig config = MakeConfig();
  util::Rng rng(2);
  BertModel model("m", config, &rng);
  model.set_training(false);
  const std::vector<int> ids = {2, 7, 8, 9, 10, 3};
  const nn::Tensor unmasked = model.Forward(ids, nullptr);
  const AttentionMask zero_mask(
      {static_cast<int64_t>(ids.size()), static_cast<int64_t>(ids.size())});
  const nn::Tensor masked = model.Forward(ids, &zero_mask);
  for (int64_t i = 0; i < unmasked.size(); ++i) {
    ASSERT_FLOAT_EQ(unmasked.data()[i], masked.data()[i]);
  }
}

TEST_P(EncoderPropertyTest, EvalModeIsDeterministic) {
  const TransformerConfig config = MakeConfig();
  util::Rng rng(3);
  BertModel model("m", config, &rng);
  model.set_training(false);
  const std::vector<int> ids = {2, 11, 12, 3};
  const nn::Tensor a = model.Forward(ids);
  const nn::Tensor b = model.Forward(ids);
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST_P(EncoderPropertyTest, GradientsAreFiniteAndNonTrivial) {
  const TransformerConfig config = MakeConfig();
  util::Rng rng(4);
  BertModel model("m", config, &rng);
  model.set_training(false);
  const std::vector<int> ids = {2, 6, 7, 8, 3};
  nn::ParameterList params = model.Parameters();
  nn::ZeroAllGrads(params);
  const nn::Tensor& hidden = model.Forward(ids);
  nn::Tensor grad(hidden.shape());
  grad.FillNormal(&rng, 1.0f);
  model.Backward(grad);
  double total = 0.0;
  for (const nn::Parameter* p : params) {
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      ASSERT_TRUE(std::isfinite(p->grad.data()[i])) << p->name;
      total += static_cast<double>(std::abs(p->grad.data()[i]));
    }
  }
  EXPECT_GT(total, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EncoderPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 8), std::make_tuple(1, 4, 16),
                      std::make_tuple(2, 2, 8), std::make_tuple(3, 2, 12),
                      std::make_tuple(2, 4, 32)));

}  // namespace
}  // namespace doduo::transformer
