// Steady-state allocation contract (DESIGN.md §9): after one warm-up
// iteration, encoder Forward — and Forward + Backward — must perform zero
// Tensor heap allocations on both the fused and the reference kernel paths.
// Requires the DODUO_COUNT_ALLOCS build (the default); without it these
// tests compile to skips.

#include "doduo/nn/ops.h"
#include "doduo/transformer/encoder.h"
#include "gtest/gtest.h"

namespace doduo::transformer {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 50;
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.num_layers = 2;
  config.dropout = 0.0f;
  return config;
}

#ifndef DODUO_COUNT_ALLOCS

TEST(ZeroAllocTest, RequiresCountAllocsBuild) {
  GTEST_SKIP() << "built without DODUO_COUNT_ALLOCS";
}

#else

class ZeroAllocTest : public ::testing::TestWithParam<bool> {};

TEST_P(ZeroAllocTest, EncoderForwardIsAllocationFreeAtSteadyState) {
  util::Rng rng(1);
  Encoder encoder("enc", SmallConfig(), &rng);
  encoder.set_use_fused(GetParam());
  encoder.set_training(false);
  nn::Tensor x({12, 16});
  x.FillNormal(&rng, 1.0f);

  encoder.Forward(x, nullptr);  // warm-up sizes every buffer
  nn::ResetTensorAllocCount();
  encoder.Forward(x, nullptr);
  EXPECT_EQ(nn::TensorAllocCount(), 0u);
}

TEST_P(ZeroAllocTest, EncoderForwardBackwardIsAllocationFreeAtSteadyState) {
  util::Rng rng(2);
  Encoder encoder("enc", SmallConfig(), &rng);
  encoder.set_use_fused(GetParam());
  encoder.set_training(false);
  nn::Tensor x({12, 16});
  x.FillNormal(&rng, 1.0f);
  nn::Tensor dy({12, 16});
  dy.FillNormal(&rng, 1.0f);

  encoder.Forward(x, nullptr);
  encoder.Backward(dy);
  nn::ResetTensorAllocCount();
  encoder.Forward(x, nullptr);
  encoder.Backward(dy);
  EXPECT_EQ(nn::TensorAllocCount(), 0u);
}

TEST_P(ZeroAllocTest, MaskedForwardIsAllocationFreeAtSteadyState) {
  util::Rng rng(3);
  Encoder encoder("enc", SmallConfig(), &rng);
  encoder.set_use_fused(GetParam());
  encoder.set_training(false);
  nn::Tensor x({8, 16});
  x.FillNormal(&rng, 1.0f);
  AttentionMask mask({8, 8});
  mask.at(0, 5) = kAttentionMaskValue;

  encoder.Forward(x, &mask);
  nn::ResetTensorAllocCount();
  encoder.Forward(x, &mask);
  EXPECT_EQ(nn::TensorAllocCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Paths, ZeroAllocTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "fused" : "reference";
                         });

#endif  // DODUO_COUNT_ALLOCS

}  // namespace
}  // namespace doduo::transformer
