#include "doduo/transformer/mlm.h"

#include <cmath>

#include "doduo/text/vocab.h"
#include "gtest/gtest.h"

namespace doduo::transformer {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 40;
  config.max_positions = 16;
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.num_layers = 1;
  config.dropout = 0.0f;
  return config;
}

TEST(MlmHeadTest, LogitsShape) {
  util::Rng rng(1);
  TransformerConfig config = SmallConfig();
  MlmHead head("mlm", config, &rng);
  nn::Tensor hidden({5, 16});
  hidden.FillNormal(&rng, 1.0f);
  const nn::Tensor& logits = head.Forward(hidden);
  EXPECT_EQ(logits.rows(), 5);
  EXPECT_EQ(logits.cols(), 40);
}

TEST(MlmPretrainerTest, MaskingRespectsSpecialsAndRate) {
  util::Rng rng(2);
  TransformerConfig config = SmallConfig();
  BertModel model("bert", config, &rng);
  MlmHead head("mlm", config, &rng);
  MlmPretrainer::Options options;
  options.mask_prob = 0.5f;
  MlmPretrainer pretrainer(&model, &head, options);

  util::Rng mask_rng(3);
  int masked_count = 0;
  int total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> ids = {text::Vocab::kClsId, 10, 11, 12, 13,
                            text::Vocab::kSepId};
    std::vector<int> labels = pretrainer.MaskSequence(&ids, &mask_rng);
    // Specials never selected.
    EXPECT_EQ(labels[0], -1);
    EXPECT_EQ(labels[5], -1);
    EXPECT_EQ(ids[0], text::Vocab::kClsId);
    EXPECT_EQ(ids[5], text::Vocab::kSepId);
    for (size_t i = 1; i <= 4; ++i) {
      ++total;
      if (labels[i] >= 0) {
        ++masked_count;
        EXPECT_EQ(labels[i], static_cast<int>(10 + i - 1));
      } else {
        EXPECT_EQ(ids[i], static_cast<int>(10 + i - 1));  // untouched
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(masked_count) / total, 0.5, 0.08);
}

TEST(MlmPretrainerTest, SelectedTokensFollow801010) {
  util::Rng rng(4);
  TransformerConfig config = SmallConfig();
  BertModel model("bert", config, &rng);
  MlmHead head("mlm", config, &rng);
  MlmPretrainer::Options options;
  options.mask_prob = 1.0f - 1e-6f;  // select (nearly) everything
  MlmPretrainer pretrainer(&model, &head, options);

  util::Rng mask_rng(5);
  int mask_token = 0;
  int kept = 0;
  int randomized = 0;
  int total = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<int> ids = {20, 21, 22, 23};
    std::vector<int> labels = pretrainer.MaskSequence(&ids, &mask_rng);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (labels[i] < 0) continue;
      ++total;
      if (ids[i] == text::Vocab::kMaskId) {
        ++mask_token;
      } else if (ids[i] == labels[i]) {
        ++kept;
      } else {
        ++randomized;
        EXPECT_GE(ids[i], text::Vocab::kNumSpecialTokens);
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(mask_token) / total, 0.8, 0.05);
  EXPECT_NEAR(static_cast<double>(kept) / total, 0.1, 0.04);
  EXPECT_NEAR(static_cast<double>(randomized) / total, 0.1, 0.04);
}

TEST(MlmPretrainerTest, LearnsDeterministicCompletion) {
  // Corpus where token 10 is always followed by 11, and 20 by 21. After
  // pre-training, the masked log-prob of the true completion must beat the
  // wrong one.
  util::Rng rng(6);
  TransformerConfig config = SmallConfig();
  BertModel model("bert", config, &rng);
  MlmHead head("mlm", config, &rng);
  MlmPretrainer::Options options;
  options.epochs = 30;
  options.batch_size = 4;
  options.learning_rate = 2e-3;
  MlmPretrainer pretrainer(&model, &head, options);

  std::vector<std::vector<int>> corpus;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back({text::Vocab::kClsId, 10, 11, text::Vocab::kSepId});
    corpus.push_back({text::Vocab::kClsId, 20, 21, text::Vocab::kSepId});
  }
  const double final_loss = pretrainer.Train(corpus);
  EXPECT_LT(final_loss, 2.5);  // well below uniform log(35) ≈ 3.56

  std::vector<int> probe = {text::Vocab::kClsId, 10, 11,
                            text::Vocab::kSepId};
  const double lp_true = pretrainer.MaskedLogProb(probe, 2, 11);
  const double lp_false = pretrainer.MaskedLogProb(probe, 2, 21);
  EXPECT_GT(lp_true, lp_false);
}

}  // namespace
}  // namespace doduo::transformer
