#include "doduo/transformer/bert.h"

#include <cmath>

#include "doduo/nn/losses.h"
#include "doduo/nn/ops.h"
#include "doduo/nn/optimizer.h"
#include "doduo/transformer/block.h"
#include "gtest/gtest.h"
#include "testing/gradcheck.h"

namespace doduo::transformer {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.vocab_size = 30;
  config.max_positions = 16;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.ffn_dim = 16;
  config.num_layers = 2;
  config.dropout = 0.0f;
  return config;
}

double WeightedSum(const nn::Tensor& out, const nn::Tensor& weights) {
  double total = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out.data()[i]) *
             static_cast<double>(weights.data()[i]);
  }
  return total;
}

TEST(BlockTest, InputGradientCheck) {
  util::Rng rng(1);
  TransformerBlock block("b", SmallConfig(), &rng);
  nn::Tensor x({3, 8});
  x.FillNormal(&rng, 0.5f);
  nn::Tensor dy({3, 8});
  dy.FillNormal(&rng, 1.0f);

  block.Forward(x, nullptr);
  nn::Tensor dx = block.Backward(dy);

  auto loss = [&]() { return WeightedSum(block.Forward(x, nullptr), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx, 1e-3, 4e-2, 4e-2);
}

TEST(BlockTest, ParameterListIsComplete) {
  util::Rng rng(2);
  TransformerConfig config = SmallConfig();
  TransformerBlock block("b", config, &rng);
  // attn (packed wqkv + wo): 4, attn_norm: 2, ffn_in: 2, ffn_out: 2,
  // ffn_norm: 2.
  EXPECT_EQ(block.Parameters().size(), 12u);
}

TEST(BertTest, ForwardShapeAndDeterminism) {
  util::Rng rng(3);
  BertModel model("bert", SmallConfig(), &rng);
  model.set_training(false);
  std::vector<int> ids = {2, 7, 8, 9, 3};
  const nn::Tensor out1 = model.Forward(ids);
  const nn::Tensor out2 = model.Forward(ids);
  EXPECT_EQ(out1.rows(), 5);
  EXPECT_EQ(out1.cols(), 8);
  for (int64_t i = 0; i < out1.size(); ++i) {
    EXPECT_FLOAT_EQ(out1.data()[i], out2.data()[i]);
  }
}

TEST(BertTest, PositionEmbeddingsBreakPermutationInvariance) {
  util::Rng rng(4);
  BertModel model("bert", SmallConfig(), &rng);
  model.set_training(false);
  const nn::Tensor out_ab = model.Forward({7, 8});
  const nn::Tensor out_ba = model.Forward({8, 7});
  // The representation of token 7 differs across positions.
  double diff = 0.0;
  for (int64_t j = 0; j < 8; ++j) {
    diff += static_cast<double>(std::fabs(out_ab.at(0, j) - out_ba.at(1, j)));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(BertTest, EndToEndGradientThroughEmbeddings) {
  util::Rng rng(5);
  BertModel model("bert", SmallConfig(), &rng);
  model.set_training(false);
  std::vector<int> ids = {2, 6, 7, 3};
  nn::Tensor dy({4, 8});
  dy.FillNormal(&rng, 1.0f);

  nn::ParameterList params = model.Parameters();
  nn::ZeroAllGrads(params);
  model.Forward(ids);
  model.Backward(dy);

  // Token-embedding gradient (params[0]) for a used id must be non-zero;
  // verify numerically on one used row.
  nn::Parameter* token_table = params[0];
  auto loss = [&]() { return WeightedSum(model.Forward(ids), dy); };
  // Restrict the check to the rows of used ids to keep it fast: copy the
  // analytic grad and zero all other rows, then compare only those entries.
  const int64_t dim = token_table->value.cols();
  for (int used_id : {6, 7}) {
    for (int64_t j = 0; j < dim; j += 3) {
      float* cell = &token_table->value.at(used_id, j);
      const float original = *cell;
      const double eps = 1e-2;
      *cell = original + static_cast<float>(eps);
      const double plus = loss();
      *cell = original - static_cast<float>(eps);
      const double minus = loss();
      *cell = original;
      const double numeric = (plus - minus) / (2 * eps);
      const double analytic = token_table->grad.at(used_id, j);
      // Tolerance is loose: two stacked LayerNorms amplify float32
      // finite-difference noise; what matters is that sign and magnitude
      // track.
      EXPECT_NEAR(numeric, analytic,
                  0.15 * std::max(1.0, std::fabs(numeric)))
          << "id=" << used_id << " j=" << j;
    }
  }
}

TEST(BertTest, TrainsToClassifyFirstToken) {
  // Tiny end-to-end sanity check: a linear probe on BERT's [CLS] output
  // must learn to predict which of two "content" tokens follows it.
  util::Rng rng(6);
  TransformerConfig config = SmallConfig();
  BertModel model("bert", config, &rng);
  nn::Linear probe("probe", config.hidden_dim, 2, &rng);
  model.set_training(true);

  nn::ParameterList params = model.Parameters();
  nn::AppendParameters(probe.Parameters(), &params);
  nn::AdamOptions adam_options;
  adam_options.learning_rate = 1e-3;
  nn::Adam adam(params, adam_options);

  double final_loss = 1e9;
  for (int step = 0; step < 300; ++step) {
    const int label = static_cast<int>(step % 2);
    std::vector<int> ids = {2, label == 0 ? 10 : 11, 3};
    const nn::Tensor& hidden = model.Forward(ids);
    nn::Tensor cls = hidden.SliceRows(0, 1);
    const nn::Tensor& logits = probe.Forward(cls);
    nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, {label});
    final_loss = loss.loss;
    const nn::Tensor& d_cls = probe.Backward(loss.grad_logits);
    nn::Tensor d_hidden({3, config.hidden_dim});
    for (int64_t j = 0; j < config.hidden_dim; ++j) {
      d_hidden.at(0, j) = d_cls.at(0, j);
    }
    model.Backward(d_hidden);
    adam.Step();
  }
  EXPECT_LT(final_loss, 0.1);
}

TEST(BertTest, StaticEmbeddingIsTokenTableRow) {
  util::Rng rng(7);
  BertModel model("bert", SmallConfig(), &rng);
  const float* row = model.StaticEmbedding(9);
  EXPECT_EQ(row, model.Parameters()[0]->value.row(9));
}

}  // namespace
}  // namespace doduo::transformer
