#include <string>
#include <vector>

#include "doduo/baselines/crf.h"
#include "doduo/baselines/lda.h"
#include "gtest/gtest.h"

namespace doduo::baselines {
namespace {

TEST(LdaTest, SeparatesTwoCleanTopics) {
  // Topic A vocabulary: fruit; topic B: vehicles. Documents are pure.
  std::vector<std::vector<std::string>> documents;
  for (int i = 0; i < 20; ++i) {
    documents.push_back({"apple", "banana", "pear", "apple", "grape"});
    documents.push_back({"car", "truck", "bus", "train", "car"});
  }
  Lda::Options options;
  options.num_topics = 2;
  options.iterations = 60;
  Lda lda(options);
  lda.Fit(documents);

  // Each fitted document must be dominated by one topic, and documents of
  // the same kind must agree on which.
  const auto fruit0 = lda.DocumentTopics(0);
  const auto fruit2 = lda.DocumentTopics(2);
  const auto vehicle1 = lda.DocumentTopics(1);
  const int fruit_topic = fruit0[0] > fruit0[1] ? 0 : 1;
  EXPECT_GT(fruit0[static_cast<size_t>(fruit_topic)], 0.8f);
  EXPECT_GT(fruit2[static_cast<size_t>(fruit_topic)], 0.8f);
  EXPECT_GT(vehicle1[static_cast<size_t>(1 - fruit_topic)], 0.8f);

  // Inference on an unseen fruit document lands in the fruit topic.
  const auto inferred = lda.InferTopics({"apple", "pear", "banana"});
  EXPECT_GT(inferred[static_cast<size_t>(fruit_topic)], 0.7f);
}

TEST(LdaTest, UnknownDocumentIsUniform) {
  std::vector<std::vector<std::string>> documents = {{"a", "b"}, {"c", "d"}};
  Lda::Options options;
  options.num_topics = 4;
  options.iterations = 10;
  Lda lda(options);
  lda.Fit(documents);
  const auto inferred = lda.InferTopics({"zzz", "yyy"});
  for (float p : inferred) EXPECT_FLOAT_EQ(p, 0.25f);
}

TEST(LdaTest, TopicDistributionSumsToOne) {
  std::vector<std::vector<std::string>> documents = {
      {"x", "y", "z"}, {"x", "x"}, {"y", "z", "z", "z"}};
  Lda::Options options;
  options.num_topics = 3;
  options.iterations = 20;
  Lda lda(options);
  lda.Fit(documents);
  for (size_t d = 0; d < documents.size(); ++d) {
    double sum = 0.0;
    for (float p : lda.DocumentTopics(d)) sum += static_cast<double>(p);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(CrfTest, DecodeWithoutTrainingIsUnaryArgmax) {
  PairwiseCrf crf(3, {});
  nn::Tensor unaries = nn::Tensor::FromVector(
      {2, 3}, {0.1f, 0.9f, 0.0f, 0.7f, 0.1f, 0.2f});
  EXPECT_EQ(crf.Decode(unaries), (std::vector<int>{1, 0}));
}

TEST(CrfTest, LearnsPairwiseCompatibility) {
  // Labels 0 and 1 always co-occur in a table; label 2 appears alone.
  // After training, an ambiguous column next to a confident label-0 column
  // should resolve to label 1 rather than 2.
  PairwiseCrf::Options options;
  options.epochs = 30;
  options.learning_rate = 0.2;
  PairwiseCrf crf(3, options);

  std::vector<PairwiseCrf::Instance> instances;
  for (int i = 0; i < 40; ++i) {
    PairwiseCrf::Instance instance;
    instance.unaries = nn::Tensor::FromVector(
        {2, 3}, {2.0f, -1.0f, -1.0f, -1.0f, 2.0f, -1.0f});
    instance.labels = {0, 1};
    instances.push_back(instance);
  }
  crf.Train(instances);
  EXPECT_GT(crf.PairwiseWeight(0, 1), crf.PairwiseWeight(0, 2));

  // Ambiguous second column: unary slightly prefers 2, context flips to 1.
  nn::Tensor unaries = nn::Tensor::FromVector(
      {2, 3}, {4.0f, -2.0f, -2.0f, -1.0f, 0.50f, 0.55f});
  const auto decoded = crf.Decode(unaries);
  EXPECT_EQ(decoded[0], 0);
  EXPECT_EQ(decoded[1], 1);
}

TEST(CrfTest, SingleColumnTableUnaffected) {
  PairwiseCrf crf(2, {});
  nn::Tensor unaries = nn::Tensor::FromVector({1, 2}, {0.2f, 0.8f});
  EXPECT_EQ(crf.Decode(unaries), (std::vector<int>{1}));
}

}  // namespace
}  // namespace doduo::baselines
