#include "doduo/baselines/sherlock.h"

#include "doduo/synth/table_generator.h"
#include "gtest/gtest.h"

namespace doduo::baselines {
namespace {

TEST(SherlockFeaturesTest, DimensionIsStable) {
  table::Column column{"c", {"a", "b"}};
  EXPECT_EQ(static_cast<int>(ExtractSherlockFeatures(column).size()),
            SherlockFeatureDim());
}

TEST(SherlockFeaturesTest, EmptyColumnIsZeroVector) {
  table::Column column{"c", {}};
  for (float v : ExtractSherlockFeatures(column)) EXPECT_EQ(v, 0.0f);
}

TEST(SherlockFeaturesTest, CharDistributionNormalized) {
  table::Column column{"c", {"abc", "abd"}};
  const auto features = ExtractSherlockFeatures(column);
  double sum = 0.0;
  for (int i = 0; i < 40; ++i)
    sum += static_cast<double>(features[static_cast<size_t>(i)]);
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(SherlockFeaturesTest, NumericFractionCaptured) {
  table::Column numeric{"c", {"1", "2", "3", "4"}};
  table::Column textual{"c", {"a", "b", "c", "d"}};
  const auto numeric_features = ExtractSherlockFeatures(numeric);
  const auto textual_features = ExtractSherlockFeatures(textual);
  // stats[3] (offset 40+3) is the numeric-value fraction.
  EXPECT_FLOAT_EQ(numeric_features[43], 1.0f);
  EXPECT_FLOAT_EQ(textual_features[43], 0.0f);
}

TEST(SherlockFeaturesTest, DistinguishesTypes) {
  table::Column years{"c", {"1984", "2001", "1999"}};
  table::Column names{"c", {"george miller", "judy morris"}};
  const auto a = ExtractSherlockFeatures(years);
  const auto b = ExtractSherlockFeatures(names);
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i)
    diff += static_cast<double>(std::abs(a[i] - b[i]));
  EXPECT_GT(diff, 0.5);
}

TEST(SherlockModelTest, LearnsEasySingleLabelTask) {
  // Tiny 2-type problem: years vs person names.
  table::ColumnAnnotationDataset dataset;
  dataset.multi_label = false;
  const int year_type = dataset.type_vocab.AddLabel("year");
  const int name_type = dataset.type_vocab.AddLabel("name");
  util::Rng rng(1);
  for (int i = 0; i < 60; ++i) {
    table::AnnotatedTable annotated;
    table::Column years;
    table::Column names;
    for (int r = 0; r < 4; ++r) {
      years.values.push_back(std::to_string(rng.UniformInt(1900, 2020)));
      names.values.push_back(
          std::string("person") + static_cast<char>('a' + rng.UniformInt(0, 25)));
    }
    annotated.table.AddColumn(std::move(years));
    annotated.table.AddColumn(std::move(names));
    annotated.column_types = {{year_type}, {name_type}};
    dataset.tables.push_back(std::move(annotated));
  }
  table::DatasetSplits splits = table::SplitDataset(60, 0.7, 0.1, &rng);

  SherlockOptions options;
  options.epochs = 20;
  SherlockModel model(dataset.type_vocab.size(), options);
  model.Train(dataset, splits);
  const auto result = model.EvaluateTypes(dataset, splits.test);
  EXPECT_GT(result.micro.f1, 0.95);
}

TEST(SherlockModelTest, MultiLabelModeOnSynthetic) {
  synth::KnowledgeBase kb = synth::KnowledgeBase::BuildWikiTableKb(3);
  synth::TableGeneratorOptions generator_options;
  generator_options.num_tables = 120;
  synth::TableGenerator generator(&kb, generator_options);
  util::Rng rng(4);
  auto dataset = generator.Generate(&rng);
  auto splits = table::SplitDataset(dataset.tables.size(), 0.7, 0.1, &rng);

  SherlockOptions options;
  options.multi_label = true;
  options.epochs = 15;
  SherlockModel model(dataset.type_vocab.size(), options);
  model.Train(dataset, splits);
  const auto result = model.EvaluateTypes(dataset, splits.test);
  // Well above chance on 20+ classes.
  EXPECT_GT(result.micro.f1, 0.4);
}

}  // namespace
}  // namespace doduo::baselines
