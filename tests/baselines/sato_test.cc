#include "doduo/baselines/sato.h"

#include "doduo/synth/table_generator.h"
#include "gtest/gtest.h"

namespace doduo::baselines {
namespace {

class SatoTest : public ::testing::Test {
 protected:
  SatoTest() : kb_(synth::KnowledgeBase::BuildVizNetKb(21)) {
    synth::TableGeneratorOptions options;
    options.num_tables = 150;
    options.multi_label = false;
    options.with_relations = false;
    synth::TableGenerator generator(&kb_, options);
    util::Rng rng(22);
    dataset_ = generator.Generate(&rng);
    splits_ = table::SplitDataset(dataset_.tables.size(), 0.7, 0.1, &rng);
  }

  SatoModel::Options SmallOptions() const {
    SatoModel::Options options;
    options.sherlock.epochs = 12;
    options.sherlock.multi_label = false;
    options.lda.num_topics = 8;
    options.lda.iterations = 30;
    options.crf.epochs = 5;
    return options;
  }

  synth::KnowledgeBase kb_;
  table::ColumnAnnotationDataset dataset_;
  table::DatasetSplits splits_;
};

TEST_F(SatoTest, TrainsWellAboveChance) {
  SatoModel sato(dataset_.type_vocab.size(), SmallOptions());
  sato.Train(dataset_, splits_);
  const auto result = sato.EvaluateTypes(dataset_, splits_.test);
  // Chance is ~1/36; topic features + CRF must do far better.
  EXPECT_GT(result.micro.f1, 0.5);
  EXPECT_GT(result.macro.f1, 0.3);
  // Prediction sets are single labels.
  for (const auto& predicted : result.sets.predicted) {
    ASSERT_EQ(predicted.size(), 1u);
  }
}

TEST_F(SatoTest, TableContextBeatsPlainSherlock) {
  // On a benchmark with pool-identical ambiguous types (birthPlace vs
  // city, origin vs country), Sato's LDA+CRF context must beat the
  // context-free Sherlock on macro F1.
  SherlockOptions sherlock_options;
  sherlock_options.epochs = 12;
  sherlock_options.multi_label = false;
  SherlockModel sherlock(dataset_.type_vocab.size(), sherlock_options);
  sherlock.Train(dataset_, splits_);
  const auto sherlock_result =
      sherlock.EvaluateTypes(dataset_, splits_.test);

  SatoModel sato(dataset_.type_vocab.size(), SmallOptions());
  sato.Train(dataset_, splits_);
  const auto sato_result = sato.EvaluateTypes(dataset_, splits_.test);

  EXPECT_GT(sato_result.macro.f1, sherlock_result.macro.f1 - 0.02);
}

TEST_F(SatoTest, EvaluateBeforeTrainDies) {
  SatoModel sato(dataset_.type_vocab.size(), SmallOptions());
  EXPECT_DEATH(sato.EvaluateTypes(dataset_, splits_.test), "Train");
}

}  // namespace
}  // namespace doduo::baselines
