#include "doduo/baselines/turl.h"

#include "gtest/gtest.h"

namespace doduo::baselines {
namespace {

// Sequence: [CLS] a a [CLS] b [SEP]  (two columns, trailing separator).
table::SerializedTable MakeInput() {
  table::SerializedTable input;
  input.token_ids = {text::Vocab::kClsId, 10, 11, text::Vocab::kClsId, 12,
                     text::Vocab::kSepId};
  input.cls_positions = {0, 3};
  input.row_ids = {-1, 0, 1, -1, 0, -1};
  return input;
}

TEST(ColumnOfPositionTest, AssignsColumnsAndGlobals) {
  const auto column_of = ColumnOfPosition(MakeInput());
  EXPECT_EQ(column_of, (std::vector<int>{0, 0, 0, 1, 1, -1}));
}

TEST(TurlMaskTest, CrossColumnCellEdgesRemoved) {
  const auto builder = MakeTurlVisibilityMaskBuilder();
  const auto mask = builder(MakeInput());
  // Cell of column 0 (pos 1) ↔ cell of column 1 (pos 4): blocked.
  EXPECT_LT(mask.at(1, 4), -1e8f);
  EXPECT_LT(mask.at(4, 1), -1e8f);
  // Cell → other column's CLS: blocked (the paper's description).
  EXPECT_LT(mask.at(1, 3), -1e8f);
  EXPECT_LT(mask.at(4, 0), -1e8f);
}

TEST(TurlMaskTest, SameColumnAndClsChannelOpen) {
  const auto builder = MakeTurlVisibilityMaskBuilder();
  const auto mask = builder(MakeInput());
  // Within column 0.
  EXPECT_EQ(mask.at(1, 2), 0.0f);
  EXPECT_EQ(mask.at(0, 1), 0.0f);
  // CLS ↔ CLS cross-column channel stays open.
  EXPECT_EQ(mask.at(0, 3), 0.0f);
  EXPECT_EQ(mask.at(3, 0), 0.0f);
  // Everything sees the global [SEP].
  EXPECT_EQ(mask.at(1, 5), 0.0f);
  EXPECT_EQ(mask.at(5, 1), 0.0f);
}

TEST(RowMaskTest, SameRowCrossColumnOpenButClsChannelClosed) {
  const auto builder = MakeRowVisibilityMaskBuilder();
  const auto mask = builder(MakeInput());
  // Row 0 of column 0 (pos 1) ↔ row 0 of column 1 (pos 4): open.
  EXPECT_EQ(mask.at(1, 4), 0.0f);
  EXPECT_EQ(mask.at(4, 1), 0.0f);
  // Row 1 of column 0 (pos 2) ↔ row 0 of column 1 (pos 4): blocked.
  EXPECT_LT(mask.at(2, 4), -1e8f);
  // CLS ↔ CLS: blocked in this variant.
  EXPECT_LT(mask.at(0, 3), -1e8f);
  EXPECT_LT(mask.at(3, 0), -1e8f);
}

TEST(TurlMaskTest, DiagonalAlwaysOpen) {
  for (const auto& builder :
       {MakeTurlVisibilityMaskBuilder(), MakeRowVisibilityMaskBuilder()}) {
    const auto mask = builder(MakeInput());
    for (int64_t i = 0; i < mask.rows(); ++i) {
      EXPECT_EQ(mask.at(i, i), 0.0f) << i;
    }
  }
}

}  // namespace
}  // namespace doduo::baselines
