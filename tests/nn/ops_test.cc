#include "doduo/nn/ops.h"

#include <cmath>

#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c;
  MatMul(a, b, &c);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityIsNoop) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor eye = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  Tensor c;
  MatMul(a, eye, &c);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c.data()[i], a.data()[i]);
}

TEST(MatMulAccumTest, AddsOntoExisting) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 1});
  Tensor b = Tensor::FromVector({2, 1}, {2, 3});
  Tensor c = Tensor::FromVector({1, 1}, {10});
  MatMulAccum(a, b, &c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 15.0f);
}

TEST(MatMulTransposedBTest, MatchesExplicitTranspose) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bt = Tensor::FromVector({2, 3}, {7, 9, 11, 8, 10, 12});  // bᵀ rows
  Tensor c;
  MatMulTransposedB(a, bt, &c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTransposedAAccumTest, MatchesExplicitTranspose) {
  // a is [k=2, m=2], b is [k=2, n=3]; out = aᵀ·b is [2, 3].
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 3}, {1, 0, 1, 0, 1, 1});
  Tensor out({2, 3});
  MatMulTransposedAAccum(a, b, &out);
  // aᵀ = [[1,3],[2,4]]; aᵀ·b = [[1, 3, 4], [2, 4, 6]].
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(out.at(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1, 2), 6.0f);
}

TEST(ElementwiseTest, AddVariants) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c;
  Add(a, b, &c);
  EXPECT_FLOAT_EQ(c.at(1), 22.0f);
  AddInPlace(&a, b);
  EXPECT_FLOAT_EQ(a.at(2), 33.0f);
  AddScaled(&a, b, -1.0f);
  EXPECT_FLOAT_EQ(a.at(0), 1.0f);
  Scale(&a, 2.0f);
  EXPECT_FLOAT_EQ(a.at(0), 2.0f);
}

TEST(BroadcastTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {0, 0, 1, 1});
  Tensor bias = Tensor::FromVector({2}, {5, 7});
  AddRowBroadcast(&a, bias);
  EXPECT_FLOAT_EQ(a.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 8.0f);
}

TEST(BroadcastTest, ColumnSumAccum) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor out = Tensor::FromVector({3}, {100, 0, 0});
  ColumnSumAccum(a, &out);
  EXPECT_FLOAT_EQ(out.at(0), 105.0f);
  EXPECT_FLOAT_EQ(out.at(1), 7.0f);
  EXPECT_FLOAT_EQ(out.at(2), 9.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor probs;
  SoftmaxRows(logits, &probs);
  for (int64_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_GT(probs.at(i, j), 0.0f);
      sum += static_cast<double>(probs.at(i, j));
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  // Monotonic in the logits.
  EXPECT_LT(probs.at(0, 0), probs.at(0, 2));
}

TEST(SoftmaxTest, LargeLogitsStable) {
  Tensor logits = Tensor::FromVector({1, 2}, {1000.0f, 1001.0f});
  Tensor probs;
  SoftmaxRows(logits, &probs);
  EXPECT_FALSE(std::isnan(probs.at(0, 0)));
  EXPECT_NEAR(probs.at(0, 0) + probs.at(0, 1), 1.0, 1e-5);
}

TEST(SoftmaxTest, BackwardMatchesFiniteDifference) {
  Tensor logits = Tensor::FromVector({1, 3}, {0.5f, -0.3f, 0.1f});
  Tensor probs;
  SoftmaxRows(logits, &probs);
  // Upstream gradient picks out p[0]; d p0/d z_j = p0 (δ0j - p_j).
  Tensor dy = Tensor::FromVector({1, 3}, {1.0f, 0.0f, 0.0f});
  Tensor dx;
  SoftmaxRowsBackward(probs, dy, &dx);
  const float p0 = probs.at(0, 0);
  EXPECT_NEAR(dx.at(0, 0), p0 * (1.0f - p0), 1e-5);
  EXPECT_NEAR(dx.at(0, 1), -p0 * probs.at(0, 1), 1e-5);
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Tensor logits = Tensor::FromVector({1, 3}, {0.2f, 1.2f, -0.7f});
  Tensor probs, log_probs;
  SoftmaxRows(logits, &probs);
  LogSoftmaxRows(logits, &log_probs);
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(log_probs.at(0, j), std::log(probs.at(0, j)), 1e-5);
  }
}

TEST(DotTest, HandlesRemainder) {
  const float a[5] = {1, 2, 3, 4, 5};
  const float b[5] = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(a, b, 5), 35.0f);
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 22.0f);
  EXPECT_FLOAT_EQ(Dot(a, b, 0), 0.0f);
}

TEST(CosineTest, KnownValues) {
  const float a[2] = {1, 0};
  const float b[2] = {0, 1};
  const float c[2] = {2, 0};
  const float zero[2] = {0, 0};
  EXPECT_NEAR(CosineSimilarity(a, b, 2), 0.0f, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, c, 2), 1.0f, 1e-6);
  EXPECT_EQ(CosineSimilarity(a, zero, 2), 0.0f);
}

}  // namespace
}  // namespace doduo::nn
