#include "doduo/nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void AppendU32(std::string* bytes, uint32_t value) {
  bytes->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void AppendU64(std::string* bytes, uint64_t value) {
  bytes->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

// A syntactically valid header (magic "DODU", version 1) claiming `count`
// parameters, to which tests append corrupt entry bytes.
std::string CheckpointHeader(uint64_t count) {
  std::string bytes;
  AppendU32(&bytes, 0x444F4455u);
  AppendU32(&bytes, 1u);
  AppendU64(&bytes, count);
  return bytes;
}

TEST(SerializeTest, RoundTrip) {
  util::Rng rng(1);
  Parameter a("layer.w", {2, 3});
  Parameter b("layer.b", {3});
  a.value.FillNormal(&rng, 1.0f);
  b.value.FillNormal(&rng, 1.0f);
  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(path, {&a, &b}).ok());

  Parameter a2("layer.w", {2, 3});
  Parameter b2("layer.b", {3});
  ASSERT_TRUE(LoadParameters(path, {&a2, &b2}).ok());
  for (int64_t i = 0; i < a.value.size(); ++i) {
    EXPECT_FLOAT_EQ(a2.value.data()[i], a.value.data()[i]);
  }
  for (int64_t i = 0; i < b.value.size(); ++i) {
    EXPECT_FLOAT_EQ(b2.value.data()[i], b.value.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LegacySplitQkvCheckpointLoadsIntoPackedModel) {
  // Checkpoints written before the packed-QKV attention store separate
  // wq/wk/wv projections; they must load into a model with one wqkv
  // parameter, landing in the right column blocks.
  util::Rng rng(2);
  const int64_t d = 4;
  Parameter wq("enc.attn.wq.w", {d, d});
  Parameter wk("enc.attn.wk.w", {d, d});
  Parameter wv("enc.attn.wv.w", {d, d});
  Parameter bq("enc.attn.wq.b", {d});
  Parameter bk("enc.attn.wk.b", {d});
  Parameter bv("enc.attn.wv.b", {d});
  for (Parameter* p : {&wq, &wk, &wv, &bq, &bk, &bv}) {
    p->value.FillNormal(&rng, 1.0f);
  }
  const std::string path = TempPath("ckpt_legacy_qkv.bin");
  ASSERT_TRUE(SaveParameters(path, {&wq, &wk, &wv, &bq, &bk, &bv}).ok());

  Parameter wqkv("enc.attn.wqkv.w", {d, 3 * d});
  Parameter bqkv("enc.attn.wqkv.b", {3 * d});
  ASSERT_TRUE(LoadParameters(path, {&wqkv, &bqkv}).ok());
  const Parameter* legacy_w[] = {&wq, &wk, &wv};
  const Parameter* legacy_b[] = {&bq, &bk, &bv};
  for (int part = 0; part < 3; ++part) {
    for (int64_t i = 0; i < d; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        EXPECT_FLOAT_EQ(wqkv.value.at(i, part * d + j),
                        legacy_w[part]->value.at(i, j))
            << "part=" << part << " i=" << i << " j=" << j;
      }
      EXPECT_FLOAT_EQ(bqkv.value.data()[part * d + i],
                      legacy_b[part]->value.data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LegacyCheckpointMissingOnePartFails) {
  util::Rng rng(3);
  const int64_t d = 4;
  Parameter wq("enc.attn.wq.w", {d, d});
  Parameter wk("enc.attn.wk.w", {d, d});
  wq.value.FillNormal(&rng, 1.0f);
  wk.value.FillNormal(&rng, 1.0f);
  const std::string path = TempPath("ckpt_legacy_partial.bin");
  ASSERT_TRUE(SaveParameters(path, {&wq, &wk}).ok());
  Parameter wqkv("enc.attn.wqkv.w", {d, 3 * d});
  EXPECT_FALSE(LoadParameters(path, {&wqkv}).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, NameMismatchFails) {
  Parameter a("correct", {2});
  const std::string path = TempPath("ckpt_name.bin");
  ASSERT_TRUE(SaveParameters(path, {&a}).ok());
  Parameter wrong("wrong", {2});
  EXPECT_FALSE(LoadParameters(path, {&wrong}).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  Parameter a("p", {2, 2});
  const std::string path = TempPath("ckpt_shape.bin");
  ASSERT_TRUE(SaveParameters(path, {&a}).ok());
  Parameter wrong("p", {4});
  EXPECT_FALSE(LoadParameters(path, {&wrong}).ok());
  Parameter wrong2("p", {2, 3});
  EXPECT_FALSE(LoadParameters(path, {&wrong2}).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchFails) {
  Parameter a("p", {2});
  const std::string path = TempPath("ckpt_count.bin");
  ASSERT_TRUE(SaveParameters(path, {&a}).ok());
  Parameter b("q", {2});
  EXPECT_FALSE(LoadParameters(path, {&a, &b}).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Parameter a("p", {2});
  EXPECT_FALSE(LoadParameters("/nonexistent/ckpt.bin", {&a}).ok());
}

TEST(SerializeTest, EveryTruncatedPrefixFailsCleanly) {
  // Cutting a valid checkpoint at ANY byte must yield a clean error — never
  // a crash, hang, or silent partial load.
  util::Rng rng(4);
  Parameter a("layer.w", {3, 2});
  a.value.FillNormal(&rng, 1.0f);
  const std::string path = TempPath("ckpt_trunc_src.bin");
  ASSERT_TRUE(SaveParameters(path, {&a}).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 0u);

  const std::string truncated_path = TempPath("ckpt_trunc.bin");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFileBytes(truncated_path, bytes.substr(0, cut));
    Parameter fresh("layer.w", {3, 2});
    const util::Status status = LoadParameters(truncated_path, {&fresh});
    ASSERT_FALSE(status.ok()) << "prefix of " << cut << " bytes loaded";
    ASSERT_FALSE(status.message().empty());
  }
  std::remove(path.c_str());
  std::remove(truncated_path.c_str());
}

TEST(SerializeTest, ImplausibleParameterCountFails) {
  const std::string path = TempPath("ckpt_huge_count.bin");
  WriteFileBytes(path, CheckpointHeader(uint64_t{1} << 40));
  Parameter a("p", {2});
  const util::Status status = LoadParameters(path, {&a});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("parameter count"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, ImplausibleNameLengthFails) {
  // A corrupt name length must be rejected before any allocation attempt.
  std::string bytes = CheckpointHeader(1);
  AppendU64(&bytes, uint64_t{1} << 50);
  const std::string path = TempPath("ckpt_huge_name.bin");
  WriteFileBytes(path, bytes);
  Parameter a("p", {2});
  const util::Status status = LoadParameters(path, {&a});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("name length"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, ImplausibleDimCountFails) {
  std::string bytes = CheckpointHeader(1);
  AppendU64(&bytes, 1);
  bytes.push_back('p');
  AppendU32(&bytes, 1000u);  // ndim
  const std::string path = TempPath("ckpt_huge_ndim.bin");
  WriteFileBytes(path, bytes);
  Parameter a("p", {2});
  const util::Status status = LoadParameters(path, {&a});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("dimensions"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, OverflowingShapeFails) {
  // Two extents whose product overflows must be rejected by the volume
  // check, not allocated.
  std::string bytes = CheckpointHeader(1);
  AppendU64(&bytes, 1);
  bytes.push_back('p');
  AppendU32(&bytes, 2u);
  AppendU64(&bytes, uint64_t{1} << 30);
  AppendU64(&bytes, uint64_t{1} << 30);
  const std::string path = TempPath("ckpt_overflow_shape.bin");
  WriteFileBytes(path, bytes);
  Parameter a("p", {2});
  const util::Status status = LoadParameters(path, {&a});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bad shape"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileFails) {
  const std::string path = TempPath("ckpt_garbage.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  Parameter a("p", {2});
  EXPECT_FALSE(LoadParameters(path, {&a}).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace doduo::nn
