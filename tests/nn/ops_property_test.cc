// Property-based sweeps over the dense kernels: algebraic identities that
// must hold for every shape, checked across a parameter grid.

#include <cmath>
#include <tuple>

#include "doduo/nn/ops.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

class MatMulPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulPropertyTest, MatchesNaiveTripleLoop) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  Tensor a({m, k});
  Tensor b({k, n});
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor c;
  MatMul(a, b, &c);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double expected = 0.0;
      for (int l = 0; l < k; ++l) {
        expected += static_cast<double>(a.at(i, l)) *
                    static_cast<double>(b.at(l, j));
      }
      ASSERT_NEAR(c.at(i, j), expected, 1e-3 * (1.0 + std::fabs(expected)))
          << i << "," << j;
    }
  }
}

TEST_P(MatMulPropertyTest, TransposedVariantsAgree) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m * 31 + k * 7 + n));
  Tensor a({m, k});
  Tensor b({k, n});
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);

  Tensor reference;
  MatMul(a, b, &reference);

  // a · b == a · (bᵀ)ᵀ via MatMulTransposedB.
  Tensor b_transposed({n, k});
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) b_transposed.at(j, i) = b.at(i, j);
  }
  Tensor via_bt;
  MatMulTransposedB(a, b_transposed, &via_bt);
  for (int64_t i = 0; i < reference.size(); ++i) {
    ASSERT_NEAR(via_bt.data()[i], reference.data()[i],
                1e-3 * (1.0 + static_cast<double>(
                                  std::fabs(reference.data()[i]))));
  }

  // a · b == (aᵀ)ᵀ · b via MatMulTransposedA.
  Tensor a_transposed({k, m});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) a_transposed.at(j, i) = a.at(i, j);
  }
  Tensor via_at;
  MatMulTransposedA(a_transposed, b, &via_at);
  for (int64_t i = 0; i < reference.size(); ++i) {
    ASSERT_NEAR(via_at.data()[i], reference.data()[i],
                1e-3 * (1.0 + static_cast<double>(
                                  std::fabs(reference.data()[i]))));
  }
}

TEST_P(MatMulPropertyTest, DistributesOverAddition) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m + k + n));
  Tensor a({m, k});
  Tensor b1({k, n});
  Tensor b2({k, n});
  a.FillNormal(&rng, 1.0f);
  b1.FillNormal(&rng, 1.0f);
  b2.FillNormal(&rng, 1.0f);

  Tensor sum;
  Add(b1, b2, &sum);
  Tensor lhs;
  MatMul(a, sum, &lhs);

  Tensor rhs1, rhs2;
  MatMul(a, b1, &rhs1);
  MatMul(a, b2, &rhs2);
  AddInPlace(&rhs1, rhs2);

  for (int64_t i = 0; i < lhs.size(); ++i) {
    ASSERT_NEAR(lhs.data()[i], rhs1.data()[i],
                2e-3 * (1.0 + static_cast<double>(std::fabs(lhs.data()[i]))));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(5, 1, 5), std::make_tuple(4, 4, 4),
                      std::make_tuple(13, 17, 11),
                      std::make_tuple(32, 8, 64),
                      std::make_tuple(3, 64, 2)));

class SoftmaxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxPropertyTest, ShiftInvariantAndStochastic) {
  const int n = GetParam();
  util::Rng rng(static_cast<uint64_t>(n));
  Tensor logits({3, n});
  logits.FillNormal(&rng, 2.0f);

  Tensor probs;
  SoftmaxRows(logits, &probs);

  Tensor shifted = logits;
  for (int64_t i = 0; i < shifted.rows(); ++i) {
    for (int64_t j = 0; j < n; ++j) shifted.at(i, j) += 100.0f;
  }
  Tensor shifted_probs;
  SoftmaxRows(shifted, &shifted_probs);

  for (int64_t i = 0; i < probs.rows(); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      ASSERT_GE(probs.at(i, j), 0.0f);
      sum += static_cast<double>(probs.at(i, j));
      // Invariance to a constant shift of the logits.
      ASSERT_NEAR(probs.at(i, j), shifted_probs.at(i, j), 1e-4);
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST_P(SoftmaxPropertyTest, LogSoftmaxConsistent) {
  const int n = GetParam();
  util::Rng rng(static_cast<uint64_t>(n) + 99);
  Tensor logits({2, n});
  logits.FillNormal(&rng, 3.0f);
  Tensor probs, log_probs;
  SoftmaxRows(logits, &probs);
  LogSoftmaxRows(logits, &log_probs);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      ASSERT_NEAR(std::exp(log_probs.at(i, j)), probs.at(i, j), 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxPropertyTest,
                         ::testing::Values(1, 2, 3, 8, 33, 128));

}  // namespace
}  // namespace doduo::nn
