#include "doduo/nn/optimizer.h"

#include <cmath>

#include "doduo/nn/losses.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

TEST(LinearDecayScheduleTest, DecaysToZero) {
  LinearDecaySchedule schedule(1.0, 10);
  EXPECT_DOUBLE_EQ(schedule.LearningRate(0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.LearningRate(5), 0.5);
  EXPECT_DOUBLE_EQ(schedule.LearningRate(10), 0.0);
  EXPECT_DOUBLE_EQ(schedule.LearningRate(20), 0.0);  // clamped
}

TEST(LinearDecayScheduleTest, WarmupRampsUp) {
  LinearDecaySchedule schedule(1.0, 100, 10);
  EXPECT_LT(schedule.LearningRate(0), 0.2);
  EXPECT_DOUBLE_EQ(schedule.LearningRate(9), 1.0);
  EXPECT_GT(schedule.LearningRate(10), 0.9);
}

TEST(AdamTest, StepReducesSimpleQuadratic) {
  // Minimize f(w) = (w - 3)^2 elementwise.
  Parameter w("w", {4});
  w.value.Fill(0.0f);
  AdamOptions options;
  options.learning_rate = 0.1;
  options.clip_norm = 0.0;
  Adam adam({&w}, options);
  for (int step = 0; step < 500; ++step) {
    for (int64_t i = 0; i < 4; ++i) {
      w.grad.at(i) = 2.0f * (w.value.at(i) - 3.0f);
    }
    adam.Step();
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(w.value.at(i), 3.0f, 0.05f);
}

TEST(AdamTest, StepZeroesGradients) {
  Parameter w("w", {2});
  w.grad.Fill(1.0f);
  Adam adam({&w}, AdamOptions{});
  adam.Step();
  EXPECT_FLOAT_EQ(w.grad.at(0), 0.0f);
  EXPECT_FLOAT_EQ(w.grad.at(1), 0.0f);
}

TEST(AdamTest, ClipNormBoundsUpdate) {
  Parameter w("w", {1});
  w.grad.at(0) = 1e6f;
  AdamOptions options;
  options.learning_rate = 0.001;
  options.clip_norm = 1.0;
  Adam adam({&w}, options);
  adam.Step();
  // After clipping, |grad| = 1 so the Adam update is ~lr.
  EXPECT_NEAR(std::fabs(w.value.at(0)), 0.001f, 5e-4f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter w("w", {1});
  w.value.at(0) = 10.0f;
  AdamOptions options;
  options.learning_rate = 0.1;
  options.weight_decay = 0.1;
  options.clip_norm = 0.0;
  Adam adam({&w}, options);
  for (int i = 0; i < 100; ++i) {
    // Zero task gradient; only decay acts.
    adam.Step();
  }
  EXPECT_LT(std::fabs(w.value.at(0)), 10.0f);
}

TEST(AdamTest, TrainsLogisticRegressionToSeparateData) {
  // Two separable 2-D classes; one Linear-equivalent parameter pair trained
  // with softmax CE must reach near-zero loss.
  util::Rng rng(7);
  Parameter w("w", {2, 2});
  Parameter b("b", {2});
  w.value.FillNormal(&rng, 0.1f);
  AdamOptions options;
  options.learning_rate = 0.05;
  Adam adam({&w, &b}, options);

  const int n = 40;
  Tensor x({n, 2});
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    labels[static_cast<size_t>(i)] = label;
    x.at(i, 0) = static_cast<float>(rng.Normal(label == 0 ? -2.0 : 2.0, 0.5));
    x.at(i, 1) = static_cast<float>(rng.Normal(label == 0 ? 1.0 : -1.0, 0.5));
  }

  double final_loss = 1e9;
  for (int epoch = 0; epoch < 200; ++epoch) {
    Tensor logits({n, 2});
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < 2; ++j) {
        logits.at(i, j) = x.at(i, 0) * w.value.at(0, j) +
                          x.at(i, 1) * w.value.at(1, j) + b.value.at(j);
      }
    }
    LossResult r = SoftmaxCrossEntropy(logits, labels);
    final_loss = r.loss;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < 2; ++j) {
        w.grad.at(0, j) += x.at(i, 0) * r.grad_logits.at(i, j);
        w.grad.at(1, j) += x.at(i, 1) * r.grad_logits.at(i, j);
        b.grad.at(j) += r.grad_logits.at(i, j);
      }
    }
    adam.Step();
  }
  EXPECT_LT(final_loss, 0.05);
}

TEST(ParameterTest, CountAndZero) {
  Parameter a("a", {2, 3});
  Parameter b("b", {4});
  ParameterList params = {&a, &b};
  EXPECT_EQ(ParameterCount(params), 10);
  a.grad.Fill(1.0f);
  b.grad.Fill(2.0f);
  ZeroAllGrads(params);
  EXPECT_EQ(a.grad.Sum(), 0.0);
  EXPECT_EQ(b.grad.Sum(), 0.0);
}

TEST(ParameterTest, GradientNormAndClip) {
  Parameter a("a", {2});
  a.grad.at(0) = 3.0f;
  a.grad.at(1) = 4.0f;
  ParameterList params = {&a};
  EXPECT_DOUBLE_EQ(GradientNorm(params), 5.0);
  const double pre = ClipGradientNorm(params, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(GradientNorm(params), 1.0, 1e-5);
  // Below the clip threshold nothing changes.
  const double pre2 = ClipGradientNorm(params, 10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-5);
  EXPECT_NEAR(GradientNorm(params), 1.0, 1e-5);
}

}  // namespace
}  // namespace doduo::nn
