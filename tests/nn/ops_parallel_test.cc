// Kernel-parity harness for the parallel GEMM family: on ~200 randomized
// shapes, every kernel must produce bit-identical results at 1, 2, and 8
// threads (the sharded path may not change per-element FP operation order),
// and must stay within tolerance of a double-precision naive reference.
//
// Shape coverage includes minimum extents (m=1, k=1, n=1 — zero extents are
// rejected by Tensor itself; the empty-range edge lives in the ThreadPool
// tests), dimensions that do not divide the kernels' k-block size (65, 97,
// 129), and volumes above the parallel-dispatch threshold so the sharded
// path actually executes.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "doduo/nn/ops.h"
#include "doduo/util/thread_pool.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

// Force the parallel dispatch gate open for every shape (default threshold
// would keep small shapes on the serial path and make the parity check
// vacuous for them). Runs at static-init time, before any kernel call
// caches the threshold.
const bool g_force_parallel = [] {
  setenv("DODUO_PARALLEL_THRESHOLD", "1", 1);
  return true;
}();

struct Shape {
  int64_t m, k, n;
};

// 200 shapes: hand-picked edges (minimum extents, non-divisible block
// sizes, long-and-thin) plus randomized small shapes and randomized large
// shapes that clear the parallel threshold.
std::vector<Shape> TestShapes() {
  std::vector<Shape> shapes = {
      {1, 1, 1},    {1, 1, 7},    {7, 1, 1},    {1, 9, 1},   {2, 1, 2},
      {1, 64, 64},  {64, 1, 64},  {64, 64, 1},  {3, 65, 4},  {5, 97, 3},
      {2, 129, 2},  {65, 65, 65}, {97, 33, 41}, {128, 1, 128},
      {1, 300, 1},  {300, 1, 1},  {2, 2, 300},  {96, 64, 64},
      {64, 96, 64}, {64, 64, 96},
  };
  util::Rng rng(20260806);
  while (shapes.size() < 140) {  // small randomized shapes
    shapes.push_back({static_cast<int64_t>(1 + rng.NextUint64(40)),
                      static_cast<int64_t>(1 + rng.NextUint64(40)),
                      static_cast<int64_t>(1 + rng.NextUint64(40))});
  }
  while (shapes.size() < 200) {  // large: above the parallel threshold
    shapes.push_back({static_cast<int64_t>(48 + rng.NextUint64(60)),
                      static_cast<int64_t>(48 + rng.NextUint64(60)),
                      static_cast<int64_t>(48 + rng.NextUint64(60))});
  }
  return shapes;
}

struct Inputs {
  Tensor a;      // [m, k]
  Tensor b;      // [k, n]
  Tensor b_t;    // [n, k] = bᵀ
  Tensor a_t;    // [k, m] = aᵀ
  Tensor accum;  // [m, n] random accumulator seed
};

Inputs MakeInputs(const Shape& s, uint64_t seed) {
  Inputs in;
  util::Rng rng(seed);
  in.a = Tensor({s.m, s.k});
  in.b = Tensor({s.k, s.n});
  in.accum = Tensor({s.m, s.n});
  in.a.FillNormal(&rng, 1.0f);
  in.b.FillNormal(&rng, 1.0f);
  in.accum.FillNormal(&rng, 1.0f);
  // Plant exact zeros so the kernels' zero-skip branch is exercised.
  in.a.data()[0] = 0.0f;
  if (s.m * s.k > 3) in.a.data()[3] = 0.0f;
  in.b_t = Tensor({s.n, s.k});
  for (int64_t i = 0; i < s.k; ++i) {
    for (int64_t j = 0; j < s.n; ++j) in.b_t.at(j, i) = in.b.at(i, j);
  }
  in.a_t = Tensor({s.k, s.m});
  for (int64_t i = 0; i < s.m; ++i) {
    for (int64_t j = 0; j < s.k; ++j) in.a_t.at(j, i) = in.a.at(i, j);
  }
  return in;
}

struct KernelOutputs {
  Tensor mat_mul;
  Tensor mat_mul_accum;
  Tensor transposed_b;
  Tensor transposed_a;
  Tensor transposed_a_accum;
};

KernelOutputs RunAllKernels(const Inputs& in) {
  KernelOutputs out;
  MatMul(in.a, in.b, &out.mat_mul);
  out.mat_mul_accum = in.accum;
  MatMulAccum(in.a, in.b, &out.mat_mul_accum);
  MatMulTransposedB(in.a, in.b_t, &out.transposed_b);
  MatMulTransposedA(in.a_t, in.b, &out.transposed_a);
  out.transposed_a_accum = in.accum;
  MatMulTransposedAAccum(in.a_t, in.b, &out.transposed_a_accum);
  return out;
}

void ExpectBitIdentical(const Tensor& serial, const Tensor& parallel,
                        const char* kernel, const Shape& s) {
  ASSERT_EQ(serial.shape(), parallel.shape()) << kernel;
  ASSERT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           static_cast<size_t>(serial.size()) * sizeof(float)))
      << kernel << " diverged from serial reference at shape [" << s.m << ","
      << s.k << "," << s.n << "]";
}

class OpsParallelTest : public ::testing::TestWithParam<int> {
 protected:
  ~OpsParallelTest() override { util::SetComputeThreads(1); }
};

TEST_P(OpsParallelTest, AllKernelsMatchSerialReferenceBitForBit) {
  const int threads = GetParam();
  const auto shapes = TestShapes();
  for (size_t idx = 0; idx < shapes.size(); ++idx) {
    const Shape& s = shapes[idx];
    const Inputs in = MakeInputs(s, 1000 + idx);

    util::SetComputeThreads(1);
    const KernelOutputs serial = RunAllKernels(in);

    util::SetComputeThreads(threads);
    const KernelOutputs parallel = RunAllKernels(in);

    ExpectBitIdentical(serial.mat_mul, parallel.mat_mul, "MatMul", s);
    ExpectBitIdentical(serial.mat_mul_accum, parallel.mat_mul_accum,
                       "MatMulAccum", s);
    ExpectBitIdentical(serial.transposed_b, parallel.transposed_b,
                       "MatMulTransposedB", s);
    ExpectBitIdentical(serial.transposed_a, parallel.transposed_a,
                       "MatMulTransposedA", s);
    ExpectBitIdentical(serial.transposed_a_accum,
                       parallel.transposed_a_accum, "MatMulTransposedAAccum",
                       s);
    if (HasFatalFailure()) return;
  }
}

TEST_P(OpsParallelTest, MatMulMatchesDoublePrecisionNaiveReference) {
  util::SetComputeThreads(GetParam());
  const auto shapes = TestShapes();
  for (size_t idx = 0; idx < shapes.size(); ++idx) {
    const Shape& s = shapes[idx];
    const Inputs in = MakeInputs(s, 5000 + idx);
    Tensor c;
    MatMul(in.a, in.b, &c);
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t j = 0; j < s.n; ++j) {
        double expected = 0.0;
        for (int64_t l = 0; l < s.k; ++l) {
          expected +=
              static_cast<double>(in.a.at(i, l)) *
              static_cast<double>(in.b.at(l, j));
        }
        ASSERT_NEAR(c.at(i, j), expected,
                    1e-3 * (1.0 + std::fabs(expected)))
            << "shape [" << s.m << "," << s.k << "," << s.n << "] at (" << i
            << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, OpsParallelTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return std::to_string(param_info.param) +
                                  "threads";
                         });

}  // namespace
}  // namespace doduo::nn
