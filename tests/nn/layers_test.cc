#include <cmath>

#include "doduo/nn/activations.h"
#include "doduo/nn/dropout.h"
#include "doduo/nn/embedding.h"
#include "doduo/nn/layer_norm.h"
#include "doduo/nn/linear.h"
#include "doduo/nn/ops.h"
#include "gtest/gtest.h"
#include "testing/gradcheck.h"

namespace doduo::nn {
namespace {

// Scalar "loss" for gradient checks: weighted sum of the layer output so
// that dLoss/dOutput is a fixed tensor we control.
double WeightedSum(const Tensor& out, const Tensor& weights) {
  double total = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out.data()[i]) *
             static_cast<double>(weights.data()[i]);
  }
  return total;
}

TEST(LinearTest, ForwardMatchesManual) {
  util::Rng rng(1);
  Linear layer("l", 2, 3, &rng);
  // Overwrite with known weights.
  layer.weight().value = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  layer.bias().value = Tensor::FromVector({3}, {0.5f, -0.5f, 1.0f});
  Tensor x = Tensor::FromVector({1, 2}, {1, 1});
  const Tensor& y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 10.0f);
}

TEST(LinearTest, InputGradientCheck) {
  util::Rng rng(2);
  Linear layer("l", 4, 3, &rng);
  Tensor x({2, 4});
  x.FillNormal(&rng, 1.0f);
  Tensor dy({2, 3});
  dy.FillNormal(&rng, 1.0f);

  layer.Forward(x);
  Tensor dx = layer.Backward(dy);

  auto loss = [&]() { return WeightedSum(layer.Forward(x), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx);
}

TEST(LinearTest, WeightGradientCheck) {
  util::Rng rng(3);
  Linear layer("l", 3, 2, &rng);
  Tensor x({2, 3});
  x.FillNormal(&rng, 1.0f);
  Tensor dy({2, 2});
  dy.FillNormal(&rng, 1.0f);

  ZeroAllGrads(layer.Parameters());
  layer.Forward(x);
  layer.Backward(dy);
  Tensor analytic_w = layer.weight().grad;
  Tensor analytic_b = layer.bias().grad;

  auto loss = [&]() { return WeightedSum(layer.Forward(x), dy); };
  testing::ExpectInputGradientsClose(&layer.weight().value, loss,
                                     analytic_w);
  testing::ExpectInputGradientsClose(&layer.bias().value, loss, analytic_b);
}

TEST(LinearTest, GradientsAccumulateAcrossBackwards) {
  util::Rng rng(4);
  Linear layer("l", 2, 2, &rng);
  Tensor x = Tensor::FromVector({1, 2}, {1, 2});
  Tensor dy = Tensor::FromVector({1, 2}, {1, 1});
  ZeroAllGrads(layer.Parameters());
  layer.Forward(x);
  layer.Backward(dy);
  const float first = layer.weight().grad.at(0, 0);
  layer.Forward(x);
  layer.Backward(dy);
  EXPECT_FLOAT_EQ(layer.weight().grad.at(0, 0), 2.0f * first);
}

TEST(LinearTest, ForwardIntoMatchesForward) {
  util::Rng rng(5);
  Linear layer("l", 3, 4, &rng);
  Tensor x({2, 3});
  x.FillNormal(&rng, 1.0f);
  Tensor out;
  layer.ForwardInto(x, &out);
  const Tensor& cached = layer.Forward(x);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], cached.data()[i]);
  }
}

TEST(EmbeddingTest, LookupReturnsRows) {
  util::Rng rng(6);
  Embedding emb("e", 10, 4, &rng);
  const Tensor& out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 4);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), out.at(1, j));  // same id, same row
    EXPECT_FLOAT_EQ(out.at(0, j), emb.Row(3)[j]);
  }
}

TEST(EmbeddingTest, BackwardAccumulatesPerId) {
  util::Rng rng(7);
  Embedding emb("e", 5, 2, &rng);
  ZeroAllGrads(emb.Parameters());
  emb.Forward({1, 1, 2});
  Tensor dy = Tensor::FromVector({3, 2}, {1, 0, 1, 0, 0, 5});
  emb.Backward(dy);
  EXPECT_FLOAT_EQ(emb.table().grad.at(1, 0), 2.0f);  // two hits on id 1
  EXPECT_FLOAT_EQ(emb.table().grad.at(2, 1), 5.0f);
  EXPECT_FLOAT_EQ(emb.table().grad.at(0, 0), 0.0f);
}

TEST(LayerNormTest, OutputIsNormalizedWithUnitGamma) {
  LayerNorm ln("ln", 8);
  util::Rng rng(8);
  Tensor x({3, 8});
  x.FillNormal(&rng, 3.0f);
  const Tensor& y = ln.Forward(x);
  for (int64_t i = 0; i < 3; ++i) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t j = 0; j < 8; ++j) mean += static_cast<double>(y.at(i, j));
    mean /= 8.0;
    for (int64_t j = 0; j < 8; ++j) {
      var += (static_cast<double>(y.at(i, j)) - mean) *
             (static_cast<double>(y.at(i, j)) - mean);
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, InputGradientCheck) {
  LayerNorm ln("ln", 6);
  util::Rng rng(9);
  // Non-trivial gamma/beta.
  ln.Parameters()[0]->value.FillNormal(&rng, 1.0f);
  ln.Parameters()[1]->value.FillNormal(&rng, 1.0f);
  Tensor x({2, 6});
  x.FillNormal(&rng, 1.5f);
  Tensor dy({2, 6});
  dy.FillNormal(&rng, 1.0f);

  ln.Forward(x);
  Tensor dx = ln.Backward(dy);

  auto loss = [&]() { return WeightedSum(ln.Forward(x), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx);
}

TEST(LayerNormTest, GammaBetaGradientCheck) {
  LayerNorm ln("ln", 5);
  util::Rng rng(10);
  Tensor x({2, 5});
  x.FillNormal(&rng, 1.0f);
  Tensor dy({2, 5});
  dy.FillNormal(&rng, 1.0f);

  ZeroAllGrads(ln.Parameters());
  ln.Forward(x);
  ln.Backward(dy);
  Tensor g_gamma = ln.Parameters()[0]->grad;
  Tensor g_beta = ln.Parameters()[1]->grad;

  auto loss = [&]() { return WeightedSum(ln.Forward(x), dy); };
  testing::ExpectInputGradientsClose(&ln.Parameters()[0]->value, loss,
                                     g_gamma);
  testing::ExpectInputGradientsClose(&ln.Parameters()[1]->value, loss,
                                     g_beta);
}

TEST(GeluTest, KnownValues) {
  EXPECT_NEAR(GeluScalar(0.0f), 0.0f, 1e-6);
  EXPECT_NEAR(GeluScalar(100.0f), 100.0f, 1e-3);
  EXPECT_NEAR(GeluScalar(-100.0f), 0.0f, 1e-3);
  // gelu(1) ≈ 0.8412.
  EXPECT_NEAR(GeluScalar(1.0f), 0.8412f, 1e-3);
}

TEST(GeluTest, GradientCheck) {
  Gelu gelu;
  util::Rng rng(11);
  Tensor x({2, 4});
  x.FillNormal(&rng, 1.0f);
  Tensor dy({2, 4});
  dy.FillNormal(&rng, 1.0f);
  gelu.Forward(x);
  Tensor dx = gelu.Backward(dy);
  auto loss = [&]() { return WeightedSum(gelu.Forward(x), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx);
}

TEST(ReluTest, ForwardAndBackward) {
  Relu relu;
  Tensor x = Tensor::FromVector({1, 4}, {-1, 0, 1, 2});
  const Tensor& y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 2.0f);
  Tensor dy = Tensor::FromVector({1, 4}, {5, 5, 5, 5});
  const Tensor& dx = relu.Backward(dy);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 2), 5.0f);
}

TEST(TanhLayerTest, GradientCheck) {
  TanhLayer tanh_layer;
  util::Rng rng(12);
  Tensor x({1, 5});
  x.FillNormal(&rng, 1.0f);
  Tensor dy({1, 5});
  dy.FillNormal(&rng, 1.0f);
  tanh_layer.Forward(x);
  Tensor dx = tanh_layer.Backward(dy);
  auto loss = [&]() { return WeightedSum(tanh_layer.Forward(x), dy); };
  testing::ExpectInputGradientsClose(&x, loss, dx);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  util::Rng rng(13);
  Dropout dropout(0.5f, &rng);
  dropout.set_training(false);
  Tensor x = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
  const Tensor& y = dropout.Forward(x);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

TEST(DropoutTest, TrainingDropsAndRescales) {
  util::Rng rng(14);
  Dropout dropout(0.5f, &rng);
  Tensor x = Tensor::Full({1, 1000}, 1.0f);
  const Tensor& y = dropout.Forward(x);
  int zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.data()[i], 2.0f);  // 1/(1-0.5)
    }
  }
  EXPECT_NEAR(zeros, 500, 60);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  util::Rng rng(15);
  Dropout dropout(0.5f, &rng);
  Tensor x = Tensor::Full({1, 100}, 1.0f);
  const Tensor& y = dropout.Forward(x);
  Tensor dy = Tensor::Full({1, 100}, 1.0f);
  const Tensor& dx = dropout.Backward(dy);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(dx.data()[i], y.data()[i]);  // same 0 / 2.0 pattern
  }
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  util::Rng rng(16);
  Dropout dropout(0.0f, &rng);
  Tensor x = Tensor::FromVector({1, 3}, {1, 2, 3});
  const Tensor& y = dropout.Forward(x);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
}

}  // namespace
}  // namespace doduo::nn
