#include "doduo/nn/tensor.h"

#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, EmptyDefault) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.size(), 0);
}

TEST(TensorTest, ElementAccessRowMajor) {
  Tensor t({2, 3});
  t.at(0, 0) = 1.0f;
  t.at(0, 2) = 2.0f;
  t.at(1, 1) = 3.0f;
  EXPECT_EQ(t.data()[0], 1.0f);
  EXPECT_EQ(t.data()[2], 2.0f);
  EXPECT_EQ(t.data()[4], 3.0f);
}

TEST(TensorTest, ThreeDimensionalAccess) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.data()[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(TensorTest, FromVector) {
  Tensor t = Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(t.at(2), 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.at(0), -1.0f);
  t.Zero();
  EXPECT_EQ(t.at(1), 0.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  t.Reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0f);
}

TEST(TensorTest, SliceRowsCopies) {
  Tensor t = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = t.SliceRows(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.at(0, 0), 3.0f);
  EXPECT_EQ(s.at(1, 1), 6.0f);
  s.at(0, 0) = 100.0f;
  EXPECT_EQ(t.at(1, 0), 3.0f);  // original untouched
}

TEST(TensorTest, SumAndNorm) {
  Tensor t = Tensor::FromVector({2, 2}, {3, 4, 0, 0});
  EXPECT_DOUBLE_EQ(t.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(t.L2Norm(), 5.0);
}

TEST(TensorTest, FillUniformWithinLimit) {
  util::Rng rng(5);
  Tensor t({100});
  t.FillUniform(&rng, 0.5f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.at(i), -0.5f);
    EXPECT_LE(t.at(i), 0.5f);
  }
}

TEST(TensorTest, FillNormalRoughStddev) {
  util::Rng rng(5);
  Tensor t({10000});
  t.FillNormal(&rng, 0.02f);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < t.size(); ++i)
    sum_sq += static_cast<double>(t.at(i)) * static_cast<double>(t.at(i));
  EXPECT_NEAR(sum_sq / static_cast<double>(t.size()), 0.02 * 0.02,
              0.02 * 0.02 * 0.2);
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ShapeString(), "f32[2, 3]");
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a({2});
  a.at(0) = 1.0f;
  Tensor b = a;
  b.at(0) = 2.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(ShapeVolumeTest, Basic) {
  EXPECT_EQ(ShapeVolume({2, 3, 4}), 24);
  EXPECT_EQ(ShapeVolume({}), 1);
}

TEST(SameShapeTest, Basic) {
  EXPECT_TRUE(SameShape(Tensor({2, 3}), Tensor({2, 3})));
  EXPECT_FALSE(SameShape(Tensor({2, 3}), Tensor({3, 2})));
  EXPECT_FALSE(SameShape(Tensor({6}), Tensor({2, 3})));
}

}  // namespace
}  // namespace doduo::nn
