// Property sweeps for the loss functions across widths and batch shapes:
// gradient-vs-finite-difference agreement, reduction invariants, and
// degenerate-input behavior.

#include <cmath>
#include <tuple>

#include "doduo/nn/losses.h"
#include "gtest/gtest.h"
#include "testing/gradcheck.h"

namespace doduo::nn {
namespace {

// Parameter: (rows, classes, seed).
class LossPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LossPropertyTest, SoftmaxCrossEntropyGradcheck) {
  const auto [rows, classes, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed));
  Tensor logits({rows, classes});
  logits.FillNormal(&rng, 1.0f);
  std::vector<int> labels(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    // Sprinkle ignored rows.
    labels[static_cast<size_t>(i)] =
        (i % 3 == 2) ? -1 : static_cast<int>(rng.NextUint64(classes));
  }
  bool any_valid = false;
  for (int label : labels) any_valid |= label >= 0;
  if (!any_valid) labels[0] = 0;

  const LossResult result = SoftmaxCrossEntropy(logits, labels);
  auto loss = [&]() { return SoftmaxCrossEntropy(logits, labels).loss; };
  testing::ExpectInputGradientsClose(&logits, loss, result.grad_logits,
                                     1e-3, 2e-3, 2e-3);
}

TEST_P(LossPropertyTest, BceGradcheck) {
  const auto [rows, classes, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 50);
  Tensor logits({rows, classes});
  logits.FillNormal(&rng, 1.0f);
  Tensor targets({rows, classes});
  for (int64_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  const LossResult result =
      BinaryCrossEntropyWithLogits(logits, targets, {});
  auto loss = [&]() {
    return BinaryCrossEntropyWithLogits(logits, targets, {}).loss;
  };
  testing::ExpectInputGradientsClose(&logits, loss, result.grad_logits,
                                     1e-3, 2e-3, 2e-3);
}

TEST_P(LossPropertyTest, LossesAreNonNegativeAndFinite) {
  const auto [rows, classes, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 99);
  Tensor logits({rows, classes});
  logits.FillNormal(&rng, 5.0f);  // large logits stress stability
  std::vector<int> labels(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    labels[static_cast<size_t>(i)] =
        static_cast<int>(rng.NextUint64(classes));
  }
  const LossResult ce = SoftmaxCrossEntropy(logits, labels);
  EXPECT_GE(ce.loss, 0.0);
  EXPECT_TRUE(std::isfinite(ce.loss));

  Tensor targets({rows, classes});
  const LossResult bce =
      BinaryCrossEntropyWithLogits(logits, targets, {});
  EXPECT_GE(bce.loss, 0.0);
  EXPECT_TRUE(std::isfinite(bce.loss));
  for (int64_t i = 0; i < bce.grad_logits.size(); ++i) {
    EXPECT_TRUE(std::isfinite(bce.grad_logits.data()[i]));
  }
}

TEST_P(LossPropertyTest, GradientStepReducesLoss) {
  const auto [rows, classes, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 7);
  Tensor logits({rows, classes});
  logits.FillNormal(&rng, 1.0f);
  std::vector<int> labels(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    labels[static_cast<size_t>(i)] =
        static_cast<int>(rng.NextUint64(classes));
  }
  const LossResult before = SoftmaxCrossEntropy(logits, labels);
  // One plain gradient-descent step directly on the logits.
  for (int64_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] -= 1.0f * before.grad_logits.data()[i];
  }
  const LossResult after = SoftmaxCrossEntropy(logits, labels);
  EXPECT_LT(after.loss, before.loss + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LossPropertyTest,
    ::testing::Values(std::make_tuple(1, 2, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(6, 3, 3),
                      std::make_tuple(4, 30, 4)));

}  // namespace
}  // namespace doduo::nn
