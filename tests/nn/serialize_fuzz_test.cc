// Checkpoint-loader fuzzing, in the style of csv_fuzz_test/
// tokenizer_fuzz_test: seeded random byte mutations and truncations of a
// valid checkpoint must always come back as a clean util::Status — never a
// crash, hang, or blow-up allocation. Complements serialize_test's
// exhaustive every-byte-prefix sweep (DESIGN §10) with randomized depth.

#include "doduo/nn/serialize.h"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "doduo/nn/parameter.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

// Pid-suffixed: ctest runs the four seed instances of each fuzz test as
// concurrent processes, and a shared victim path would let one process
// truncate a file another has mmapped (SIGBUS), which is a harness
// artifact, not a loader bug.
std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + "." + std::to_string(getpid());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small but structurally interesting model: several named parameters of
/// different ranks, so mutations can land in magic, counts, name bytes,
/// shape dims, or float payload.
std::vector<Parameter> MakeParams() {
  std::vector<Parameter> params;
  params.emplace_back("encoder.layer0.wqkv", std::vector<int64_t>{4, 12});
  params.emplace_back("encoder.layer0.bias", std::vector<int64_t>{12});
  params.emplace_back("head.types.w", std::vector<int64_t>{4, 3});
  params.emplace_back("head.types.b", std::vector<int64_t>{3});
  return params;
}

ParameterList AsList(std::vector<Parameter>& params) {
  ParameterList list;
  for (Parameter& p : params) list.push_back(&p);
  return list;
}

std::string ValidCheckpointBytes(const char* name) {
  util::Rng rng(7);
  std::vector<Parameter> params = MakeParams();
  for (Parameter& p : params) p.value.FillNormal(&rng, 1.0f);
  const std::string path = TempPath(name);
  const auto saved = SaveParameters(path, AsList(params));
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return ReadFileBytes(path);
}

/// v2 corpus: same model, mmap-able format, int8 on so mutations can also
/// land in dtype bytes, scale tables, and the section offset fields.
std::string ValidV2CheckpointBytes(const char* name) {
  util::Rng rng(7);
  std::vector<Parameter> params = MakeParams();
  for (Parameter& p : params) p.value.FillNormal(&rng, 1.0f);
  const std::string path = TempPath(name);
  const auto saved =
      SaveParametersV2(path, AsList(params), {.quant_int8 = true});
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return ReadFileBytes(path);
}

class SerializeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeFuzzTest, RandomByteMutationsNeverCrash) {
  const std::string valid = ValidCheckpointBytes("fuzz_mutate.bin");
  ASSERT_GT(valid.size(), 0u);
  const std::string path = TempPath("fuzz_mutate_victim.bin");
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = valid;
    const size_t flips = 1 + rng.NextUint64(8);
    for (size_t f = 0; f < flips; ++f) {
      const size_t pos = rng.NextUint64(bytes.size());
      bytes[pos] = static_cast<char>(rng.NextUint64(256));
    }
    WriteFileBytes(path, bytes);
    std::vector<Parameter> params = MakeParams();
    // Either the mutation hit float payload (loads fine) or structure
    // (clean, named error). Both are acceptable; crashing is not.
    const util::Status status = LoadParameters(path, AsList(params));
    if (!status.ok()) {
      ASSERT_FALSE(status.message().empty()) << "trial " << trial;
    }
  }
}

TEST_P(SerializeFuzzTest, RandomTruncationsAlwaysFailCleanly) {
  const std::string valid = ValidCheckpointBytes("fuzz_trunc.bin");
  ASSERT_GT(valid.size(), 0u);
  const std::string path = TempPath("fuzz_trunc_victim.bin");
  util::Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.NextUint64(valid.size());  // strict prefix
    WriteFileBytes(path, valid.substr(0, cut));
    std::vector<Parameter> params = MakeParams();
    const util::Status status = LoadParameters(path, AsList(params));
    ASSERT_FALSE(status.ok()) << "prefix of " << cut << " bytes loaded";
    ASSERT_FALSE(status.message().empty());
  }
}

TEST_P(SerializeFuzzTest, MutatedTruncationsNeverCrash) {
  const std::string valid = ValidCheckpointBytes("fuzz_both.bin");
  ASSERT_GT(valid.size(), 0u);
  const std::string path = TempPath("fuzz_both_victim.bin");
  util::Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 100; ++trial) {
    std::string bytes = valid.substr(0, rng.NextUint64(valid.size() + 1));
    for (size_t f = 0, flips = rng.NextUint64(6); f < flips; ++f) {
      if (bytes.empty()) break;
      bytes[rng.NextUint64(bytes.size())] =
          static_cast<char>(rng.NextUint64(256));
    }
    WriteFileBytes(path, bytes);
    std::vector<Parameter> params = MakeParams();
    const util::Status status = LoadParameters(path, AsList(params));
    if (!status.ok()) {
      ASSERT_FALSE(status.message().empty()) << "trial " << trial;
    }
  }
}

#ifdef DODUO_COUNT_ALLOCS
// A mutated size field must not translate into a giant allocation: the
// loader's plausibility caps reject implausible counts/dims BEFORE any
// buffer is sized (DESIGN §10). Allocation growth across a whole fuzzing
// sweep stays within what the small valid model itself needs.
TEST_P(SerializeFuzzTest, MutationsNeverOverAllocate) {
  const std::string valid = ValidCheckpointBytes("fuzz_alloc.bin");
  const std::string path = TempPath("fuzz_alloc_victim.bin");
  util::Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 100; ++trial) {
    std::string bytes = valid;
    // Target the structural prefix (header + first entry descriptor),
    // where size fields live.
    const size_t window = std::min<size_t>(bytes.size(), 64);
    bytes[rng.NextUint64(window)] = static_cast<char>(rng.NextUint64(256));
    WriteFileBytes(path, bytes);
    std::vector<Parameter> params = MakeParams();
    const uint64_t before = TensorAllocCount();
    const util::Status status = LoadParameters(path, AsList(params));
    const uint64_t grown = TensorAllocCount() - before;
    // The legacy-QKV gather shim may allocate a few pack buffers; a
    // runaway (implausible-dim) allocation would be orders of magnitude
    // more. Keep a loose per-trial cap.
    ASSERT_LE(grown, 64u) << "trial " << trial << ": "
                          << (status.ok() ? "ok" : status.ToString());
  }
}
#endif  // DODUO_COUNT_ALLOCS

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzzTest,
                         ::testing::Values(1u, 42u, 777u, 31337u));

// --- v2 (mmap) format ------------------------------------------------------
//
// The v2 loader validates every TOC extent against the fstat size before it
// dereferences the mapping, so the same properties must hold: any mutation,
// truncation, or misalignment yields a clean Status — including offsets that
// point outside the file or scale tables that overlap the end.

class SerializeV2FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeV2FuzzTest, RandomByteMutationsNeverCrash) {
  const std::string valid = ValidV2CheckpointBytes("fuzz_v2_mutate.bin");
  ASSERT_GT(valid.size(), 0u);
  const std::string path = TempPath("fuzz_v2_mutate_victim.bin");
  util::Rng rng(GetParam() + 10);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = valid;
    const size_t flips = 1 + rng.NextUint64(8);
    for (size_t f = 0; f < flips; ++f) {
      bytes[rng.NextUint64(bytes.size())] =
          static_cast<char>(rng.NextUint64(256));
    }
    WriteFileBytes(path, bytes);
    std::vector<Parameter> params = MakeParams();
    const util::Status status = LoadParameters(path, AsList(params));
    if (!status.ok()) {
      ASSERT_FALSE(status.message().empty()) << "trial " << trial;
    }
  }
}

TEST_P(SerializeV2FuzzTest, StructuralMutationsNeverCrash) {
  // Concentrate every flip on the header + TOC region, where offsets, byte
  // counts, dims, and dtypes live — the fields an attacker-controlled file
  // would use to walk the loader out of bounds or misalign a section.
  const std::string valid = ValidV2CheckpointBytes("fuzz_v2_struct.bin");
  ASSERT_GT(valid.size(), 0u);
  const std::string path = TempPath("fuzz_v2_struct_victim.bin");
  const size_t toc_end = std::min<size_t>(valid.size(), 64 + 4 * 136);
  util::Rng rng(GetParam() + 11);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = valid;
    const size_t flips = 1 + rng.NextUint64(12);
    for (size_t f = 0; f < flips; ++f) {
      bytes[rng.NextUint64(toc_end)] = static_cast<char>(rng.NextUint64(256));
    }
    WriteFileBytes(path, bytes);
    std::vector<Parameter> params = MakeParams();
    const util::Status status = LoadParameters(path, AsList(params));
    if (!status.ok()) {
      ASSERT_FALSE(status.message().empty()) << "trial " << trial;
    }
  }
}

TEST_P(SerializeV2FuzzTest, RandomTruncationsAlwaysFailCleanly) {
  // v2 records its own file size, so EVERY strict prefix must be rejected —
  // there is no "lucky" truncation that still parses.
  const std::string valid = ValidV2CheckpointBytes("fuzz_v2_trunc.bin");
  ASSERT_GT(valid.size(), 0u);
  const std::string path = TempPath("fuzz_v2_trunc_victim.bin");
  util::Rng rng(GetParam() + 12);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t cut = rng.NextUint64(valid.size());  // strict prefix
    WriteFileBytes(path, valid.substr(0, cut));
    std::vector<Parameter> params = MakeParams();
    const util::Status status = LoadParameters(path, AsList(params));
    ASSERT_FALSE(status.ok()) << "prefix of " << cut << " bytes loaded";
    ASSERT_FALSE(status.message().empty());
  }
}

#ifdef DODUO_COUNT_ALLOCS
TEST_P(SerializeV2FuzzTest, StructuralMutationsNeverOverAllocate) {
  // A corrupt dim or byte count must be rejected by the overflow-safe
  // extent checks BEFORE the dequant buffer (the only sized allocation on
  // this path) is created.
  const std::string valid = ValidV2CheckpointBytes("fuzz_v2_alloc.bin");
  const std::string path = TempPath("fuzz_v2_alloc_victim.bin");
  const size_t toc_end = std::min<size_t>(valid.size(), 64 + 4 * 136);
  util::Rng rng(GetParam() + 13);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = valid;
    bytes[rng.NextUint64(toc_end)] = static_cast<char>(rng.NextUint64(256));
    WriteFileBytes(path, bytes);
    std::vector<Parameter> params = MakeParams();
    const uint64_t before = TensorAllocCount();
    const util::Status status = LoadParameters(path, AsList(params));
    const uint64_t grown = TensorAllocCount() - before;
    ASSERT_LE(grown, 64u) << "trial " << trial << ": "
                          << (status.ok() ? "ok" : status.ToString());
  }
}
#endif  // DODUO_COUNT_ALLOCS

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeV2FuzzTest,
                         ::testing::Values(1u, 42u, 777u, 31337u));

}  // namespace
}  // namespace doduo::nn
