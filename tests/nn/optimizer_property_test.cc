// Property sweeps for Adam and the LR schedule: convergence on random
// convex problems across dimensions and learning rates, and schedule
// invariants.

#include <cmath>
#include <tuple>

#include "doduo/nn/optimizer.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

// Parameter: (dimension, learning rate scaled by 1e-3, seed).
class AdamPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AdamPropertyTest, ConvergesOnRandomQuadratic) {
  const auto [dim, lr_milli, seed] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed));
  // Minimize sum_i a_i (w_i - t_i)^2 with random positive curvatures.
  Parameter w("w", {dim});
  w.value.FillNormal(&rng, 2.0f);
  std::vector<float> curvature(static_cast<size_t>(dim));
  std::vector<float> target(static_cast<size_t>(dim));
  for (int i = 0; i < dim; ++i) {
    curvature[static_cast<size_t>(i)] = rng.UniformFloat(0.5f, 3.0f);
    target[static_cast<size_t>(i)] = rng.UniformFloat(-2.0f, 2.0f);
  }
  AdamOptions options;
  options.learning_rate = lr_milli * 1e-3;
  options.clip_norm = 0.0;
  Adam adam({&w}, options);
  for (int step = 0; step < 5000; ++step) {
    for (int i = 0; i < dim; ++i) {
      w.grad.at(i) = 2.0f * curvature[static_cast<size_t>(i)] *
                     (w.value.at(i) - target[static_cast<size_t>(i)]);
    }
    adam.Step();
  }
  for (int i = 0; i < dim; ++i) {
    EXPECT_NEAR(w.value.at(i), target[static_cast<size_t>(i)], 0.15f)
        << "dim " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdamPropertyTest,
    ::testing::Combine(::testing::Values(1, 8, 64),
                       ::testing::Values(5, 20),  // 5e-3, 2e-2
                       ::testing::Values(1, 2)));

class SchedulePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulePropertyTest, MonotoneAfterWarmupAndBounded) {
  const int total = GetParam();
  const int warmup = total / 10;
  LinearDecaySchedule schedule(1.0, total, warmup);
  double previous = 0.0;
  for (int step = 0; step <= total + 5; ++step) {
    const double lr = schedule.LearningRate(step);
    EXPECT_GE(lr, 0.0);
    EXPECT_LE(lr, 1.0 + 1e-12);
    if (step > warmup) {
      EXPECT_LE(lr, previous + 1e-12) << "not decaying at step " << step;
    } else if (step > 0 && step < warmup) {
      EXPECT_GE(lr, previous - 1e-12) << "not warming at step " << step;
    }
    previous = lr;
  }
  EXPECT_DOUBLE_EQ(schedule.LearningRate(total + 100), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SchedulePropertyTest,
                         ::testing::Values(10, 100, 997));

}  // namespace
}  // namespace doduo::nn
