#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "doduo/nn/serialize.h"
#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small parameter set exercising 1-D and 2-D shapes plus the ".w" naming
// that makes a matrix int8-eligible.
struct Params {
  Params() : w("enc.dense.w", {12, 8}), b("enc.dense.b", {8}),
             table("emb.table", {10, 8}) {
    util::Rng rng(5);
    w.value.FillNormal(&rng, 0.4f);
    b.value.FillNormal(&rng, 0.4f);
    table.value.FillNormal(&rng, 0.4f);
  }
  ParameterList list() { return {&w, &b, &table}; }
  Parameter w, b, table;
};

TEST(SerializeV2Test, RoundTripThroughGenericLoader) {
  Params src;
  const std::string path = TempPath("v2_roundtrip.bin");
  ASSERT_TRUE(SaveParametersV2(path, src.list()).ok());

  Params dst;
  for (Parameter* p : dst.list()) p->value.Fill(0.0f);
  ASSERT_TRUE(LoadParameters(path, dst.list()).ok());
  for (int64_t i = 0; i < src.w.value.size(); ++i) {
    EXPECT_EQ(std::as_const(dst.w.value).data()[i],
              std::as_const(src.w.value).data()[i]);
  }
  for (int64_t i = 0; i < src.b.value.size(); ++i) {
    EXPECT_EQ(std::as_const(dst.b.value).data()[i],
              std::as_const(src.b.value).data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeV2Test, Fp32TensorsBorrowTheMapping) {
  Params src;
  const std::string path = TempPath("v2_borrow.bin");
  ASSERT_TRUE(SaveParametersV2(path, src.list()).ok());

  Params dst;
  ASSERT_TRUE(LoadParameters(path, dst.list()).ok());
  // Zero-copy: every fp32 value aliases the mapped file instead of owning a
  // heap buffer, and the revision moved so quant caches notice the load.
  for (Parameter* p : dst.list()) {
    EXPECT_TRUE(p->value.borrowed()) << p->name;
    EXPECT_GT(p->revision, 0u) << p->name;
  }
  // Two loads of the same file into two models share nothing with each
  // other (separate mappings) but each is internally consistent.
  Tensor owned = dst.w.value.MaterializeOwned();
  EXPECT_FALSE(owned.borrowed());
  for (int64_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(owned.data()[i], std::as_const(dst.w.value).data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeV2Test, HeapFallbackWhenMmapDisabled) {
  Params src;
  const std::string path = TempPath("v2_no_mmap.bin");
  ASSERT_TRUE(SaveParametersV2(path, src.list()).ok());

  ASSERT_EQ(setenv("DODUO_MMAP", "0", 1), 0);
  Params dst;
  const util::Status status = LoadParameters(path, dst.list());
  ASSERT_EQ(unsetenv("DODUO_MMAP"), 0);
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (int64_t i = 0; i < src.w.value.size(); ++i) {
    EXPECT_EQ(std::as_const(dst.w.value).data()[i],
              std::as_const(src.w.value).data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeV2Test, Int8RoundTripAttachesPrequant) {
  Params src;
  const std::string path = TempPath("v2_int8.bin");
  ASSERT_TRUE(
      SaveParametersV2(path, src.list(), {.quant_int8 = true}).ok());

  Params dst;
  ASSERT_TRUE(LoadParameters(path, dst.list()).ok());
  // The eligible matrix comes back dequantized (owned, close to source) and
  // carries a current prequant view into the mapping.
  EXPECT_FALSE(dst.w.value.borrowed());
  ASSERT_NE(dst.w.prequant, nullptr);
  EXPECT_EQ(dst.w.prequant_revision, dst.w.revision);
  EXPECT_EQ(dst.w.prequant->in, 12);
  EXPECT_EQ(dst.w.prequant->out, 8);
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      const float scale = dst.w.prequant->scale[j];
      EXPECT_NEAR(dst.w.value.at(i, j), src.w.value.at(i, j),
                  scale * 0.5f + 1e-6f);
    }
  }
  // Ineligible tensors stay fp32: zero-copy, bit-exact, no prequant.
  EXPECT_TRUE(dst.b.value.borrowed());
  EXPECT_TRUE(dst.table.value.borrowed());
  EXPECT_EQ(dst.table.prequant, nullptr);
  for (int64_t i = 0; i < src.table.value.size(); ++i) {
    EXPECT_EQ(std::as_const(dst.table.value).data()[i],
              std::as_const(src.table.value).data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeV2Test, EveryTruncatedPrefixFailsCleanly) {
  Params src;
  const std::string path = TempPath("v2_trunc_src.bin");
  ASSERT_TRUE(SaveParametersV2(path, src.list()).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 0u);

  const std::string truncated = TempPath("v2_trunc.bin");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFileBytes(truncated, bytes.substr(0, cut));
    Params fresh;
    const util::Status status = LoadParameters(truncated, fresh.list());
    ASSERT_FALSE(status.ok()) << "prefix of " << cut << " bytes loaded";
    ASSERT_FALSE(status.message().empty());
  }
  std::remove(path.c_str());
  std::remove(truncated.c_str());
}

TEST(SerializeV2Test, NameAndShapeMismatchesFail) {
  Params src;
  const std::string path = TempPath("v2_mismatch.bin");
  ASSERT_TRUE(SaveParametersV2(path, src.list()).ok());

  Parameter renamed("other.w", {12, 8});
  Parameter b("enc.dense.b", {8});
  Parameter table("emb.table", {10, 8});
  EXPECT_FALSE(LoadParameters(path, {&renamed, &b, &table}).ok());

  Parameter w("enc.dense.w", {8, 12});  // transposed shape
  EXPECT_FALSE(LoadParameters(path, {&w, &b, &table}).ok());

  // Unconsumed checkpoint entries are an error too.
  Parameter w2("enc.dense.w", {12, 8});
  EXPECT_FALSE(LoadParameters(path, {&w2, &b}).ok());
  std::remove(path.c_str());
}

TEST(SerializeV2Test, RecordedSizeMismatchFails) {
  // Appending trailing garbage breaks the header's file_size commitment;
  // the loader must refuse rather than trust any internal offset.
  Params src;
  const std::string path = TempPath("v2_size.bin");
  ASSERT_TRUE(SaveParametersV2(path, src.list()).ok());
  std::string bytes = ReadFileBytes(path);
  bytes.append(16, '\0');
  WriteFileBytes(path, bytes);
  Params dst;
  const util::Status status = LoadParameters(path, dst.list());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("size"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeV2Test, CorruptTocOffsetFails) {
  Params src;
  const std::string path = TempPath("v2_toc.bin");
  ASSERT_TRUE(SaveParametersV2(path, src.list()).ok());
  std::string bytes = ReadFileBytes(path);
  // data_offset of entry 0 lives at header(64) + name(64) + dtype/ndim/
  // reserved(8) + dims(32); point it past the end of the file.
  const size_t data_offset_pos = 64 + 64 + 8 + 32;
  ASSERT_LT(data_offset_pos + 8, bytes.size());
  const uint64_t huge = uint64_t{1} << 60;
  bytes.replace(data_offset_pos, sizeof(huge),
                reinterpret_cast<const char*>(&huge), sizeof(huge));
  WriteFileBytes(path, bytes);
  Params dst;
  const util::Status status = LoadParameters(path, dst.list());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("out of bounds"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeV2Test, V1CheckpointsStillLoad) {
  // The dispatch must keep the legacy format working byte-for-byte.
  Params src;
  const std::string path = TempPath("v2_v1compat.bin");
  ASSERT_TRUE(SaveParameters(path, src.list()).ok());
  Params dst;
  ASSERT_TRUE(LoadParameters(path, dst.list()).ok());
  EXPECT_FALSE(dst.w.value.borrowed());
  for (int64_t i = 0; i < src.w.value.size(); ++i) {
    EXPECT_EQ(dst.w.value.data()[i], std::as_const(src.w.value).data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeV2Test, SavingABorrowedModelRoundTrips) {
  // Load (borrow) then re-save: SaveParametersV2 must read through the
  // borrow, so convert-style pipelines never need to materialize.
  Params src;
  const std::string path1 = TempPath("v2_resave1.bin");
  const std::string path2 = TempPath("v2_resave2.bin");
  ASSERT_TRUE(SaveParametersV2(path1, src.list()).ok());
  Params mid;
  ASSERT_TRUE(LoadParameters(path1, mid.list()).ok());
  ASSERT_TRUE(mid.w.value.borrowed());
  ASSERT_TRUE(SaveParametersV2(path2, mid.list()).ok());
  Params dst;
  ASSERT_TRUE(LoadParameters(path2, dst.list()).ok());
  for (int64_t i = 0; i < src.w.value.size(); ++i) {
    EXPECT_EQ(std::as_const(dst.w.value).data()[i],
              std::as_const(src.w.value).data()[i]);
  }
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

}  // namespace
}  // namespace doduo::nn
