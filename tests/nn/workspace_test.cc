#include "doduo/nn/workspace.h"

#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

TEST(WorkspaceTest, SlotsAreStableAndReused) {
  Workspace ws;
  Tensor& a = ws.Get(0, {4, 8});
  const float* a_data = a.data();
  a.Fill(1.0f);

  // Adding later slots must not move earlier ones.
  Tensor& b = ws.Get(5, {16});
  EXPECT_EQ(&ws.Get(0, {4, 8}), &a);
  EXPECT_EQ(a.data(), a_data);
  EXPECT_NE(&a, &b);

  // Same slot, same shape: the exact buffer comes back.
  Tensor& a2 = ws.Get(0, {4, 8});
  EXPECT_EQ(a2.data(), a_data);
}

TEST(WorkspaceTest, BuffersGrowToHighWaterMarkThenStopAllocating) {
  Workspace ws;
  ws.Get(0, {2, 2});
  ws.Get(0, {8, 8});  // grow
#ifdef DODUO_COUNT_ALLOCS
  ResetTensorAllocCount();
  ws.Get(0, {4, 4});  // shrink within capacity
  ws.Get(0, {8, 8});  // back to high-water mark
  EXPECT_EQ(TensorAllocCount(), 0u);
#else
  ws.Get(0, {4, 4});
  ws.Get(0, {8, 8});
#endif
  EXPECT_EQ(ws.Get(0, {8, 8}).size(), 64);
}

TEST(WorkspaceTest, TotalFloatsSumsSlots) {
  Workspace ws;
  ws.Get(0, {4, 8});
  ws.Get(1, {16});
  EXPECT_EQ(ws.TotalFloats(), 4 * 8 + 16);
}

#ifdef DODUO_COUNT_ALLOCS
TEST(AllocCountTest, CountsTensorBufferAllocations) {
  ResetTensorAllocCount();
  Tensor t({8, 8});
  EXPECT_GE(TensorAllocCount(), 1u);

  // Reuse within capacity is free.
  ResetTensorAllocCount();
  t.ResizeUninitialized({4, 4});
  t.ResizeUninitialized({8, 8});
  EXPECT_EQ(TensorAllocCount(), 0u);

  // Copy-assign into a large-enough buffer is free; growth is counted.
  Tensor small({2, 2});
  ResetTensorAllocCount();
  t = small;
  EXPECT_EQ(TensorAllocCount(), 0u);
  Tensor big({32, 32});
  t = big;
  EXPECT_GE(TensorAllocCount(), 1u);
}
#endif

}  // namespace
}  // namespace doduo::nn
