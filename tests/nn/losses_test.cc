#include "doduo/nn/losses.h"

#include <cmath>

#include "gtest/gtest.h"
#include "testing/gradcheck.h"

namespace doduo::nn {
namespace {

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});
  LossResult r = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
  EXPECT_EQ(r.num_examples, 2);
}

TEST(SoftmaxCrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {100.0f, 0.0f, 0.0f});
  LossResult r = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(r.loss, 1e-4);
}

TEST(SoftmaxCrossEntropyTest, IgnoredRowsDoNotContribute) {
  Tensor logits = Tensor::FromVector({2, 2}, {3.0f, -3.0f, 0.0f, 0.0f});
  LossResult with_ignore = SoftmaxCrossEntropy(logits, {0, -1});
  Tensor single = Tensor::FromVector({1, 2}, {3.0f, -3.0f});
  LossResult alone = SoftmaxCrossEntropy(single, {0});
  EXPECT_NEAR(with_ignore.loss, alone.loss, 1e-6);
  EXPECT_EQ(with_ignore.num_examples, 1);
  // Gradient of the ignored row is zero.
  EXPECT_FLOAT_EQ(with_ignore.grad_logits.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(with_ignore.grad_logits.at(1, 1), 0.0f);
}

TEST(SoftmaxCrossEntropyTest, AllIgnoredGivesZero) {
  Tensor logits({2, 3});
  LossResult r = SoftmaxCrossEntropy(logits, {-1, -1});
  EXPECT_EQ(r.loss, 0.0);
  EXPECT_EQ(r.num_examples, 0);
}

TEST(SoftmaxCrossEntropyTest, GradientCheck) {
  util::Rng rng(1);
  Tensor logits({3, 4});
  logits.FillNormal(&rng, 1.0f);
  std::vector<int> labels = {2, -1, 0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  auto loss = [&]() { return SoftmaxCrossEntropy(logits, labels).loss; };
  testing::ExpectInputGradientsClose(&logits, loss, r.grad_logits, 1e-3,
                                     1e-3, 1e-3);
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  util::Rng rng(2);
  Tensor logits({2, 5});
  logits.FillNormal(&rng, 1.0f);
  LossResult r = SoftmaxCrossEntropy(logits, {1, 4});
  for (int64_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 5; ++j)
      sum += static_cast<double>(r.grad_logits.at(i, j));
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(BceTest, UniformLogitsGiveLog2) {
  Tensor logits({2, 3});
  Tensor targets({2, 3});
  targets.at(0, 0) = 1.0f;
  LossResult r = BinaryCrossEntropyWithLogits(logits, targets, {});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-5);
}

TEST(BceTest, ConfidentCorrectIsLowLoss) {
  Tensor logits = Tensor::FromVector({1, 2}, {20.0f, -20.0f});
  Tensor targets = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  LossResult r = BinaryCrossEntropyWithLogits(logits, targets, {});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(BceTest, RowMaskExcludesRows) {
  Tensor logits = Tensor::FromVector({2, 2}, {5.0f, -5.0f, 0.0f, 0.0f});
  Tensor targets = Tensor::FromVector({2, 2}, {1.0f, 0.0f, 1.0f, 1.0f});
  LossResult masked =
      BinaryCrossEntropyWithLogits(logits, targets, {true, false});
  Tensor l1 = Tensor::FromVector({1, 2}, {5.0f, -5.0f});
  Tensor t1 = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  LossResult alone = BinaryCrossEntropyWithLogits(l1, t1, {});
  EXPECT_NEAR(masked.loss, alone.loss, 1e-6);
  EXPECT_FLOAT_EQ(masked.grad_logits.at(1, 0), 0.0f);
}

TEST(BceTest, GradientCheck) {
  util::Rng rng(3);
  Tensor logits({2, 3});
  logits.FillNormal(&rng, 1.0f);
  Tensor targets({2, 3});
  targets.at(0, 1) = 1.0f;
  targets.at(1, 0) = 1.0f;
  targets.at(1, 2) = 1.0f;
  std::vector<bool> mask = {true, true};
  LossResult r = BinaryCrossEntropyWithLogits(logits, targets, mask);
  auto loss = [&]() {
    return BinaryCrossEntropyWithLogits(logits, targets, mask).loss;
  };
  testing::ExpectInputGradientsClose(&logits, loss, r.grad_logits, 1e-3,
                                     1e-3, 1e-3);
}

TEST(BceTest, ExtremeLogitsStable) {
  Tensor logits = Tensor::FromVector({1, 2}, {500.0f, -500.0f});
  Tensor targets = Tensor::FromVector({1, 2}, {0.0f, 1.0f});
  LossResult r = BinaryCrossEntropyWithLogits(logits, targets, {});
  EXPECT_FALSE(std::isnan(r.loss));
  EXPECT_FALSE(std::isinf(r.loss));
  EXPECT_NEAR(r.loss, 500.0, 1.0);
}

}  // namespace
}  // namespace doduo::nn
