#include "doduo/nn/quant.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "doduo/nn/linear.h"
#include "doduo/nn/ops.h"
#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

// Every test leaves the process-wide switch where it found it (off by
// default) so unrelated suites in this binary never see the int8 path.
class QuantTest : public ::testing::Test {
 protected:
  void TearDown() override { SetQuantEnabled(false); }
};

std::vector<int8_t> RandomInt8(util::Rng* rng, int64_t n) {
  std::vector<int8_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<int8_t>(rng->UniformInt(-127, 127));
  return v;
}

TEST_F(QuantTest, KernelsAreBitIdenticalAcrossIsas) {
  // The int32 accumulator is exact, so every dispatched kernel must return
  // the very same integer — this is what makes DODUO_SIMD a pure speed
  // knob on the quant path.
  const std::vector<Int8DotKernelEntry> kernels = Int8DotKernels();
  ASSERT_GE(kernels.size(), 1u);
  EXPECT_STREQ(kernels[0].name, "scalar");
  util::Rng rng(7);
  // Lengths straddling every SIMD width and tail case.
  for (const int64_t k : {0, 1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 257}) {
    const std::vector<int8_t> a = RandomInt8(&rng, k);
    const std::vector<int8_t> b = RandomInt8(&rng, k);
    const int32_t want = kernels[0].fn(a.data(), b.data(), k);
    for (const Int8DotKernelEntry& kernel : kernels) {
      EXPECT_EQ(kernel.fn(a.data(), b.data(), k), want)
          << kernel.name << " k=" << k;
    }
  }
}

TEST_F(QuantTest, KernelsSaturateTheWorstCase) {
  // k * 127^2 for the largest supported k must not overflow int32 in any
  // kernel's partial sums: all-(-127) times all-127 is the adversarial
  // input.
  const int64_t k = 4096;
  const std::vector<int8_t> a(static_cast<size_t>(k), int8_t{-127});
  const std::vector<int8_t> b(static_cast<size_t>(k), int8_t{127});
  const int32_t want = static_cast<int32_t>(k) * (-127 * 127);
  for (const Int8DotKernelEntry& kernel : Int8DotKernels()) {
    EXPECT_EQ(kernel.fn(a.data(), b.data(), k), want) << kernel.name;
  }
}

TEST_F(QuantTest, QuantizeWeightRoundTripWithinHalfStep) {
  util::Rng rng(11);
  Tensor w({24, 10});
  w.FillNormal(&rng, 0.3f);
  QuantizedWeight qw;
  QuantizeWeight(w, &qw);
  ASSERT_EQ(qw.in, 24);
  ASSERT_EQ(qw.out, 10);
  for (int64_t j = 0; j < qw.out; ++j) {
    const float scale = qw.scale[static_cast<size_t>(j)];
    ASSERT_GT(scale, 0.0f);
    for (int64_t i = 0; i < qw.in; ++i) {
      const float back =
          scale * static_cast<float>(qw.q[static_cast<size_t>(j * qw.in + i)]);
      // Round-to-nearest: dequantized value within half a quantization step.
      EXPECT_NEAR(back, w.at(i, j), scale * 0.5f + 1e-6f)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST_F(QuantTest, ZeroChannelGetsUnitScale) {
  Tensor w({4, 2});
  w.Fill(0.0f);
  QuantizedWeight qw;
  QuantizeWeight(w, &qw);
  for (const float s : qw.scale) EXPECT_EQ(s, 1.0f);
  for (const int8_t q : qw.q) EXPECT_EQ(q, 0);
}

TEST_F(QuantTest, Int8LinearTracksFp32MatMul) {
  util::Rng rng(13);
  const int64_t m = 9, k = 64, n = 17;
  Tensor x({m, k}), w({k, n});
  x.FillNormal(&rng, 1.0f);
  w.FillNormal(&rng, 0.5f);
  std::vector<float> bias(static_cast<size_t>(n));
  for (auto& b : bias) b = rng.UniformFloat(-0.5f, 0.5f);

  Tensor want;
  MatMul(x, w, &want);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      want.at(i, j) += bias[static_cast<size_t>(j)];
    }
  }

  QuantizedWeight qw;
  QuantizeWeight(w, &qw);
  Tensor got;
  Int8Linear(x, View(qw), bias.data(), &got);
  ASSERT_EQ(got.rows(), m);
  ASSERT_EQ(got.cols(), n);

  // Error model (DESIGN §14): per product the quantization error is at most
  // half a step on each operand, so relative Frobenius error stays in the
  // low single digits of a percent for well-scaled inputs.
  double err2 = 0.0, ref2 = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const double d = got.at(i, j) - want.at(i, j);
      const double r = want.at(i, j);
      err2 += d * d;
      ref2 += r * r;
    }
  }
  EXPECT_LT(std::sqrt(err2 / ref2), 0.02);
}

TEST_F(QuantTest, Int8LinearNullBias) {
  util::Rng rng(17);
  Tensor x({3, 16}), w({16, 5});
  x.FillNormal(&rng, 1.0f);
  w.FillNormal(&rng, 1.0f);
  QuantizedWeight qw;
  QuantizeWeight(w, &qw);
  Tensor with_zero_bias, without_bias;
  std::vector<float> zeros(5, 0.0f);
  Int8Linear(x, View(qw), zeros.data(), &with_zero_bias);
  Int8Linear(x, View(qw), nullptr, &without_bias);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(without_bias.at(i, j), with_zero_bias.at(i, j));
    }
  }
}

TEST_F(QuantTest, LinearForwardSwitchesPathsWithQuantFlag) {
  util::Rng rng(19);
  Linear layer("q.test", 32, 8, &rng);
  Tensor x({4, 32});
  x.FillNormal(&rng, 1.0f);

  SetQuantEnabled(false);
  const Tensor fp32 = layer.Forward(x);
  SetQuantEnabled(true);
  const Tensor& quant = layer.Forward(x);

  double max_ref = 0.0, max_diff = 0.0;
  for (int64_t i = 0; i < fp32.rows(); ++i) {
    for (int64_t j = 0; j < fp32.cols(); ++j) {
      max_ref = std::max(max_ref, std::fabs(double{fp32.at(i, j)}));
      max_diff =
          std::max(max_diff, std::fabs(double{fp32.at(i, j) - quant.at(i, j)}));
    }
  }
  EXPECT_GT(max_diff, 0.0) << "quant path did not engage";
  EXPECT_LT(max_diff, 0.05 * max_ref + 1e-3);
}

TEST_F(QuantTest, LinearQuantCacheFollowsWeightRevision) {
  util::Rng rng(23);
  Linear layer("q.cache", 8, 4, &rng);
  Tensor x({1, 8});
  x.Fill(1.0f);

  SetQuantEnabled(true);
  Tensor before;
  layer.ForwardInto(x, &before);
  // Mutate the weight the way every writer does: new values + revision
  // bump. A stale int8 cache would keep producing the old output.
  layer.weight().value.Fill(0.25f);
  layer.weight().BumpRevision();
  Tensor after;
  layer.ForwardInto(x, &after);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(after.at(0, j), 8 * 0.25f, 0.05f);
    EXPECT_NE(after.at(0, j), before.at(0, j));
  }
}

TEST_F(QuantTest, PrequantizedViewWinsOverLazyCache) {
  util::Rng rng(29);
  Linear layer("q.pre", 8, 4, &rng);
  Tensor x({1, 8});
  x.Fill(1.0f);

  // Attach a prequantized table that encodes a DIFFERENT weight (all 0.5):
  // the layer must serve it while it is current, proving checkpoints can
  // bypass the lazy cache.
  auto pre = std::make_shared<PrequantizedWeight>();
  auto storage = std::make_shared<QuantizedWeight>();
  Tensor w_alt({8, 4});
  w_alt.Fill(0.5f);
  QuantizeWeight(w_alt, storage.get());
  pre->q = storage->q.data();
  pre->scale = storage->scale.data();
  pre->out = storage->out;
  pre->in = storage->in;
  pre->keepalive = storage;
  layer.weight().AttachPrequant(pre);

  SetQuantEnabled(true);
  Tensor got;
  layer.ForwardInto(x, &got);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(got.at(0, j), 8 * 0.5f, 0.05f);
  }

  // A revision bump invalidates the attached table; the layer must fall
  // back to quantizing its own (random) weight, not keep serving 0.5s.
  layer.weight().BumpRevision();
  Tensor after;
  layer.ForwardInto(x, &after);
  bool differs = false;
  for (int64_t j = 0; j < 4; ++j) {
    if (std::fabs(after.at(0, j) - 8 * 0.5f) > 0.05f) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace doduo::nn
