// Parity harness for the fused attention kernels: ScaleMaskSoftmaxRows must
// be bitwise-identical to the unfused Scale → AddInPlace → SoftmaxRows
// sequence over randomized shapes and masks at 1, 2, and 8 threads, and the
// strided view GEMMs must reproduce the copy-out-then-contiguous-kernel
// results bit for bit (the fused attention path depends on both).

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "doduo/nn/ops.h"
#include "doduo/util/thread_pool.h"
#include "gtest/gtest.h"

namespace doduo::nn {
namespace {

// Open the parallel-dispatch gate for every shape (see ops_parallel_test.cc).
const bool g_force_parallel = [] {
  setenv("DODUO_PARALLEL_THRESHOLD", "1", 1);
  return true;
}();

void ExpectBitIdentical(const Tensor& expected, const Tensor& actual,
                        const char* what) {
  ASSERT_EQ(expected.shape(), actual.shape()) << what;
  ASSERT_EQ(0,
            std::memcmp(expected.data(), actual.data(),
                        static_cast<size_t>(expected.size()) * sizeof(float)))
      << what;
}

// Copies the columns [col_begin, col_begin + ncols) into a fresh tensor —
// the pre-fusion reference for head extraction.
Tensor CopyColumns(const Tensor& src, int64_t col_begin, int64_t ncols) {
  Tensor dst({src.rows(), ncols});
  for (int64_t i = 0; i < src.rows(); ++i) {
    const float* in = src.row(i) + col_begin;
    for (int64_t j = 0; j < ncols; ++j) dst.at(i, j) = in[j];
  }
  return dst;
}

class OpsFusedTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { util::SetComputeThreads(GetParam()); }
  ~OpsFusedTest() override { util::SetComputeThreads(1); }
};

TEST_P(OpsFusedTest, ScaleMaskSoftmaxMatchesUnfusedBitForBit) {
  util::Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const int64_t m = static_cast<int64_t>(1 + rng.NextUint64(33));
    const int64_t n = static_cast<int64_t>(1 + rng.NextUint64(33));
    const float scale =
        trial % 3 == 0 ? 1.0f : rng.UniformFloat(0.05f, 2.0f);
    Tensor logits({m, n});
    logits.FillNormal(&rng, 3.0f);

    const bool with_mask = trial % 2 == 0;
    Tensor mask;
    if (with_mask) {
      mask = Tensor({m, n});
      for (int64_t i = 0; i < m * n; ++i) {
        mask.data()[i] = rng.Bernoulli(0.3) ? -1e9f : 0.0f;
      }
      // Keep one position open per row so no row is fully masked here (the
      // fully-masked contract is covered separately below).
      for (int64_t i = 0; i < m; ++i) {
        mask.at(i, static_cast<int64_t>(rng.NextUint64(
                       static_cast<uint64_t>(n)))) = 0.0f;
      }
    }

    // Unfused reference: materialize t = logits·scale + mask, then softmax.
    Tensor t = logits;
    Scale(&t, scale);
    if (with_mask) AddInPlace(&t, mask);
    Tensor expected;
    SoftmaxRows(t, &expected);

    Tensor actual;
    ScaleMaskSoftmaxRows(logits, scale, with_mask ? &mask : nullptr, &actual);
    ExpectBitIdentical(expected, actual, "ScaleMaskSoftmaxRows");

    // Alias form: probs may be the logits tensor itself.
    Tensor in_place = logits;
    ScaleMaskSoftmaxRows(in_place, scale, with_mask ? &mask : nullptr,
                         &in_place);
    ExpectBitIdentical(expected, in_place, "ScaleMaskSoftmaxRows aliased");
    if (HasFatalFailure()) return;
  }
}

TEST_P(OpsFusedTest, FullyMaskedRowIsUniformNotNaN) {
  Tensor logits({3, 4});
  util::Rng rng(7);
  logits.FillNormal(&rng, 1.0f);
  Tensor mask({3, 4});
  for (int64_t j = 0; j < 4; ++j) mask.at(1, j) = -1e9f;  // row 1 open nowhere

  // -1e9 additive masks do not underflow a max-subtracted softmax on their
  // own; the guard targets rows whose logits reach -inf (e.g. a mask applied
  // twice, or padded rows filled with -inf).
  for (int64_t j = 0; j < 4; ++j) {
    logits.at(1, j) = -std::numeric_limits<float>::infinity();
  }
  Tensor probs;
  ScaleMaskSoftmaxRows(logits, 0.5f, &mask, &probs);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(probs.at(1, j), 0.25f);  // uniform, not NaN
    EXPECT_FALSE(std::isnan(probs.at(0, j)));
    EXPECT_FALSE(std::isnan(probs.at(2, j)));
  }

  // The unfused entry point shares the guard.
  Tensor probs2;
  SoftmaxRows(logits, &probs2);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(probs2.at(1, j), 0.25f);
  }
}

TEST_P(OpsFusedTest, ViewKernelsMatchCopyBasedReferenceBitForBit) {
  util::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    // A packed [s, 3d]-style buffer with band width hd.
    const int64_t s = static_cast<int64_t>(1 + rng.NextUint64(48));
    const int64_t hd = static_cast<int64_t>(1 + rng.NextUint64(24));
    const int64_t bands = 3;
    Tensor packed({s, bands * hd});
    packed.FillNormal(&rng, 1.0f);
    packed.data()[0] = 0.0f;  // exercise the zero-skip branch
    Tensor probs({s, s});
    probs.FillNormal(&rng, 1.0f);

    const int64_t band = static_cast<int64_t>(rng.NextUint64(bands));
    const int64_t off = band * hd;
    const Tensor a = CopyColumns(packed, off, hd);          // [s, hd]
    const Tensor b = CopyColumns(packed, (band == 0 ? 1 : 0) * hd, hd);
    const int64_t b_off = (band == 0 ? 1 : 0) * hd;

    // scores = A · Bᵀ from views vs from copies.
    Tensor scores_ref;
    MatMulTransposedB(a, b, &scores_ref);
    Tensor scores_view;
    MatMulTransposedBView(ColumnsView(packed, off, hd),
                          ColumnsView(packed, b_off, hd), &scores_view);
    ExpectBitIdentical(scores_ref, scores_view, "MatMulTransposedBView");

    // ctx = P · B written into a column band vs contiguous.
    Tensor ctx_ref;
    MatMul(probs, b, &ctx_ref);
    Tensor ctx_out({s, bands * hd});
    ctx_out.FillNormal(&rng, 1.0f);  // stale values must be overwritten
    MatMulView(FullView(probs), ColumnsView(packed, b_off, hd),
               MutColumnsView(&ctx_out, off, hd));
    ExpectBitIdentical(ctx_ref, CopyColumns(ctx_out, off, hd), "MatMulView");

    // grad = Pᵀ · A into a column band vs contiguous.
    Tensor grad_ref;
    MatMulTransposedA(probs, a, &grad_ref);
    Tensor grad_out({s, bands * hd});
    grad_out.FillNormal(&rng, 1.0f);
    MatMulTransposedAView(FullView(probs), ColumnsView(packed, off, hd),
                          MutColumnsView(&grad_out, off, hd));
    ExpectBitIdentical(grad_ref, CopyColumns(grad_out, off, hd),
                       "MatMulTransposedAView");
    if (HasFatalFailure()) return;
  }
}

// Pins the kernels' FP contract to the documented scalar operation order
// (DESIGN.md §9), independent of which dispatch path (scalar, SSE, AVX)
// actually runs: a plain triple loop with kBlockK panels, ascending-k
// accumulation, zero-skip, and the 4-accumulator dot must reproduce the
// kernel output bit for bit. Shapes include non-multiples of the vector
// widths and inputs salted with exact zeros to hit the skip branches.
TEST_P(OpsFusedTest, KernelsMatchScalarOpOrderBitForBit) {
  constexpr int64_t kBlockK = 64;  // must match ops.cc
  util::Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t m = static_cast<int64_t>(1 + rng.NextUint64(40));
    const int64_t k = static_cast<int64_t>(1 + rng.NextUint64(90));
    const int64_t n = static_cast<int64_t>(1 + rng.NextUint64(40));
    Tensor a({m, k}), b({k, n}), bt({n, k});
    a.FillNormal(&rng, 1.0f);
    b.FillNormal(&rng, 1.0f);
    bt.FillNormal(&rng, 1.0f);
    for (int64_t i = 0; i < a.size(); i += 3) a.data()[i] = 0.0f;

    // MatMul: kBlockK panels, ascending-k per element, zero-skip.
    Tensor mm_ref({m, n});
    mm_ref.Zero();
    for (int64_t kb = 0; kb < k; kb += kBlockK) {
      const int64_t k_end = std::min<int64_t>(k, kb + kBlockK);
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t l = kb; l < k_end; ++l) {
          const float av = a.at(i, l);
          if (av == 0.0f) continue;
          for (int64_t j = 0; j < n; ++j) {
            mm_ref.at(i, j) += av * b.at(l, j);
          }
        }
      }
    }
    Tensor mm;
    MatMul(a, b, &mm);
    ExpectBitIdentical(mm_ref, mm, "MatMul vs scalar op order");

    // MatMulTransposedB: the 4-accumulator dot with left-assoc reduction.
    Tensor mtb_ref({m, n});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
        int64_t l = 0;
        for (; l + 4 <= k; l += 4) {
          acc0 += a.at(i, l) * bt.at(j, l);
          acc1 += a.at(i, l + 1) * bt.at(j, l + 1);
          acc2 += a.at(i, l + 2) * bt.at(j, l + 2);
          acc3 += a.at(i, l + 3) * bt.at(j, l + 3);
        }
        for (; l < k; ++l) acc0 += a.at(i, l) * bt.at(j, l);
        mtb_ref.at(i, j) = acc0 + acc1 + acc2 + acc3;
      }
    }
    Tensor mtb;
    MatMulTransposedB(a, bt, &mtb);
    ExpectBitIdentical(mtb_ref, mtb, "MatMulTransposedB vs scalar op order");

    // MatMulTransposedA: same panel structure over aᵀ.
    Tensor b2({m, n});
    b2.FillNormal(&rng, 1.0f);
    Tensor mta_ref2({k, n});
    mta_ref2.Zero();
    for (int64_t kb = 0; kb < m; kb += kBlockK) {
      const int64_t k_end = std::min<int64_t>(m, kb + kBlockK);
      for (int64_t i = 0; i < k; ++i) {
        for (int64_t l = kb; l < k_end; ++l) {
          const float av = a.at(l, i);
          if (av == 0.0f) continue;
          for (int64_t j = 0; j < n; ++j) {
            mta_ref2.at(i, j) += av * b2.at(l, j);
          }
        }
      }
    }
    Tensor mta;
    MatMulTransposedA(a, b2, &mta);
    ExpectBitIdentical(mta_ref2, mta, "MatMulTransposedA vs scalar op order");
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, OpsFusedTest, ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return std::to_string(param_info.param) +
                                  "threads";
                         });

}  // namespace
}  // namespace doduo::nn
