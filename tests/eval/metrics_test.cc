#include "doduo/eval/metrics.h"

#include "doduo/eval/report.h"
#include "gtest/gtest.h"

namespace doduo::eval {
namespace {

TEST(MetricsTest, PerfectPredictionsScoreOne) {
  LabeledSets sets = FromSingleLabels({0, 1, 2, 1}, {0, 1, 2, 1});
  auto counts = CountPerClass(sets, 3);
  EXPECT_DOUBLE_EQ(MicroPrf(counts).f1, 1.0);
  EXPECT_DOUBLE_EQ(MacroPrf(counts).f1, 1.0);
}

TEST(MetricsTest, AllWrongScoresZero) {
  LabeledSets sets = FromSingleLabels({1, 0}, {0, 1});
  auto counts = CountPerClass(sets, 2);
  EXPECT_DOUBLE_EQ(MicroPrf(counts).f1, 0.0);
  EXPECT_DOUBLE_EQ(MacroPrf(counts).f1, 0.0);
}

TEST(MetricsTest, MicroSingleLabelEqualsAccuracy) {
  // For single-label problems micro P = R = F1 = accuracy.
  LabeledSets sets = FromSingleLabels({0, 1, 1, 0}, {0, 1, 0, 0});
  auto counts = CountPerClass(sets, 2);
  Prf micro = MicroPrf(counts);
  EXPECT_DOUBLE_EQ(micro.precision, 0.75);
  EXPECT_DOUBLE_EQ(micro.recall, 0.75);
  EXPECT_DOUBLE_EQ(micro.f1, 0.75);
}

TEST(MetricsTest, MacroWeighsRareClassesEqually) {
  // Class 0: 98 correct of 98; class 1: 0 correct of 2 (predicted as 0).
  std::vector<int> predicted(100, 0);
  std::vector<int> actual(100, 0);
  actual[98] = 1;
  actual[99] = 1;
  LabeledSets sets = FromSingleLabels(predicted, actual);
  auto counts = CountPerClass(sets, 2);
  EXPECT_GT(MicroPrf(counts).f1, 0.95);
  EXPECT_LT(MacroPrf(counts).f1, 0.55);  // rare class drags macro down
}

TEST(MetricsTest, MultiLabelCounts) {
  LabeledSets sets;
  sets.predicted = {{0, 1}, {2}};
  sets.actual = {{0}, {1, 2}};
  auto counts = CountPerClass(sets, 3);
  // tp: 0 (ex0), 2 (ex1). fp: 1 (ex0). fn: 1 (ex1).
  EXPECT_EQ(counts[0].tp, 1);
  EXPECT_EQ(counts[1].fp, 1);
  EXPECT_EQ(counts[1].fn, 1);
  EXPECT_EQ(counts[2].tp, 1);
  Prf micro = MicroPrf(counts);
  EXPECT_DOUBLE_EQ(micro.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(micro.recall, 2.0 / 3.0);
}

TEST(MetricsTest, MacroSkipsAbsentClasses) {
  LabeledSets sets = FromSingleLabels({0, 0}, {0, 0});
  auto counts = CountPerClass(sets, 5);  // classes 1-4 have no support
  EXPECT_DOUBLE_EQ(MacroPrf(counts).f1, 1.0);
}

TEST(MetricsTest, ClassPrfKnownValues) {
  ClassCounts counts;
  counts.tp = 6;
  counts.fp = 2;
  counts.fn = 4;
  Prf prf = ClassPrf(counts);
  EXPECT_DOUBLE_EQ(prf.precision, 0.75);
  EXPECT_DOUBLE_EQ(prf.recall, 0.6);
  EXPECT_NEAR(prf.f1, 2 * 0.75 * 0.6 / 1.35, 1e-9);
}

TEST(MetricsTest, EmptyInputsGiveZeros) {
  LabeledSets sets;
  auto counts = CountPerClass(sets, 3);
  EXPECT_DOUBLE_EQ(MicroPrf(counts).f1, 0.0);
  EXPECT_DOUBLE_EQ(MacroPrf(counts).f1, 0.0);
}

TEST(ReportTest, PerClassRowsSortedBySupport) {
  table::LabelVocab vocab;
  vocab.AddLabel("common");
  vocab.AddLabel("rare");
  LabeledSets sets = FromSingleLabels({0, 0, 0, 1}, {0, 0, 0, 1});
  auto rows = PerClassReport(sets, vocab);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "common");
  EXPECT_EQ(rows[0].support, 3);
  EXPECT_EQ(rows[1].label, "rare");
  EXPECT_DOUBLE_EQ(rows[1].prf.f1, 1.0);
}

TEST(ReportTest, Formatting) {
  Prf prf;
  prf.precision = 0.9269;
  prf.recall = 0.9221;
  prf.f1 = 0.9245;
  EXPECT_EQ(FormatPrf(prf), "92.69 / 92.21 / 92.45");
  EXPECT_EQ(Pct(0.5), "50.00");
}

}  // namespace
}  // namespace doduo::eval
