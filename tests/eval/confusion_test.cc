#include "doduo/eval/confusion.h"

#include "gtest/gtest.h"

namespace doduo::eval {
namespace {

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix matrix(3);
  matrix.AddAll({0, 0, 1, 2, 2}, {0, 1, 1, 2, 0});
  EXPECT_EQ(matrix.total(), 5);
  EXPECT_EQ(matrix.count(0, 0), 1);
  EXPECT_EQ(matrix.count(0, 1), 1);
  EXPECT_EQ(matrix.count(1, 1), 1);
  EXPECT_EQ(matrix.count(2, 2), 1);
  EXPECT_EQ(matrix.count(2, 0), 1);
  EXPECT_EQ(matrix.count(1, 0), 0);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 3.0 / 5.0);
}

TEST(ConfusionMatrixTest, EmptyMatrix) {
  ConfusionMatrix matrix(2);
  EXPECT_EQ(matrix.total(), 0);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 0.0);
  EXPECT_TRUE(matrix.TopConfusions(5).empty());
}

TEST(ConfusionMatrixTest, TopConfusionsSortedAndTruncated) {
  ConfusionMatrix matrix(3);
  // (0→1) ×3, (2→1) ×2, (1→0) ×1.
  for (int i = 0; i < 3; ++i) matrix.Add(0, 1);
  for (int i = 0; i < 2; ++i) matrix.Add(2, 1);
  matrix.Add(1, 0);
  matrix.Add(0, 0);  // diagonal ignored

  const auto top2 = matrix.TopConfusions(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].actual, 0);
  EXPECT_EQ(top2[0].predicted, 1);
  EXPECT_EQ(top2[0].count, 3);
  EXPECT_EQ(top2[1].actual, 2);
  EXPECT_EQ(top2[1].count, 2);

  const auto all = matrix.TopConfusions(10);
  EXPECT_EQ(all.size(), 3u);
}

TEST(ConfusionMatrixTest, RenderUsesLabelNames) {
  table::LabelVocab vocab;
  vocab.AddLabel("rank");
  vocab.AddLabel("ranking");
  ConfusionMatrix matrix(2);
  matrix.Add(1, 0);
  matrix.Add(1, 0);
  const std::string rendered = matrix.RenderTopConfusions(vocab, 5);
  EXPECT_EQ(rendered, "ranking -> rank: 2\n");
}

}  // namespace
}  // namespace doduo::eval
