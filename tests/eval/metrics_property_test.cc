// Property sweeps for the evaluation metrics: bounds, symmetry-breaking,
// and consistency identities that must hold for random prediction sets.

#include <set>
#include <tuple>

#include "doduo/eval/metrics.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::eval {
namespace {

// Parameter: (seed, num_classes).
class MetricsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  LabeledSets RandomSets(util::Rng* rng, int num_classes,
                         int num_examples) const {
    LabeledSets sets;
    for (int i = 0; i < num_examples; ++i) {
      std::vector<int> predicted;
      std::vector<int> actual;
      const int predicted_size = 1 + static_cast<int>(rng->NextUint64(3));
      const int actual_size = 1 + static_cast<int>(rng->NextUint64(2));
      for (int p = 0; p < predicted_size; ++p) {
        predicted.push_back(
            static_cast<int>(rng->NextUint64(num_classes)));
      }
      for (int a = 0; a < actual_size; ++a) {
        actual.push_back(static_cast<int>(rng->NextUint64(num_classes)));
      }
      sets.predicted.push_back(std::move(predicted));
      sets.actual.push_back(std::move(actual));
    }
    return sets;
  }
};

TEST_P(MetricsPropertyTest, ScoresAreBoundedAndF1IsHarmonic) {
  const auto [seed, num_classes] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed));
  const LabeledSets sets = RandomSets(&rng, num_classes, 100);
  const auto counts = CountPerClass(sets, num_classes);

  for (const Prf& prf : {MicroPrf(counts), MacroPrf(counts)}) {
    EXPECT_GE(prf.precision, 0.0);
    EXPECT_LE(prf.precision, 1.0);
    EXPECT_GE(prf.recall, 0.0);
    EXPECT_LE(prf.recall, 1.0);
    EXPECT_GE(prf.f1, 0.0);
    EXPECT_LE(prf.f1, 1.0);
  }
  const Prf micro = MicroPrf(counts);
  if (micro.precision + micro.recall > 0) {
    EXPECT_NEAR(micro.f1,
                2 * micro.precision * micro.recall /
                    (micro.precision + micro.recall),
                1e-12);
  }
}

TEST_P(MetricsPropertyTest, CountsConserveDecisions) {
  const auto [seed, num_classes] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 7);
  const LabeledSets sets = RandomSets(&rng, num_classes, 80);
  const auto counts = CountPerClass(sets, num_classes);

  // tp+fp = total distinct predicted labels; tp+fn = total distinct
  // actual labels (sets deduplicate).
  long predicted_total = 0;
  long actual_total = 0;
  for (const auto& c : counts) {
    predicted_total += c.tp + c.fp;
    actual_total += c.tp + c.fn;
  }
  long expected_predicted = 0;
  long expected_actual = 0;
  for (size_t i = 0; i < sets.predicted.size(); ++i) {
    std::set<int> p(sets.predicted[i].begin(), sets.predicted[i].end());
    std::set<int> a(sets.actual[i].begin(), sets.actual[i].end());
    expected_predicted += static_cast<long>(p.size());
    expected_actual += static_cast<long>(a.size());
  }
  EXPECT_EQ(predicted_total, expected_predicted);
  EXPECT_EQ(actual_total, expected_actual);
}

TEST_P(MetricsPropertyTest, PerfectingPredictionsNeverHurts) {
  const auto [seed, num_classes] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 13);
  LabeledSets sets = RandomSets(&rng, num_classes, 60);
  const double before = MicroPrf(CountPerClass(sets, num_classes)).f1;
  // Fix half of the predictions to the truth.
  for (size_t i = 0; i < sets.predicted.size(); i += 2) {
    sets.predicted[i] = sets.actual[i];
  }
  const double after = MicroPrf(CountPerClass(sets, num_classes)).f1;
  EXPECT_GE(after + 1e-12, before);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, MetricsPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(2, 5, 30)));

}  // namespace
}  // namespace doduo::eval
