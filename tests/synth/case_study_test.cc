#include "doduo/synth/case_study.h"

#include <set>

#include "gtest/gtest.h"

namespace doduo::synth {
namespace {

TEST(CaseStudyTest, MatchesPublishedScenarioStatistics) {
  CaseStudyData data = BuildCaseStudy(42);
  EXPECT_EQ(data.tables.size(), 10u);     // 10 tables
  EXPECT_EQ(data.num_columns(), 50);      // 50 columns
  EXPECT_EQ(data.group_names.size(), 15u);  // 15 ground-truth clusters
}

TEST(CaseStudyTest, EveryGroupAppearsAtLeastTwice) {
  CaseStudyData data = BuildCaseStudy(42);
  std::vector<int> counts(15, 0);
  for (int group : data.ground_truth) {
    ASSERT_GE(group, 0);
    ASSERT_LT(group, 15);
    ++counts[static_cast<size_t>(group)];
  }
  for (size_t g = 0; g < counts.size(); ++g) {
    EXPECT_GE(counts[g], 2) << data.group_names[g];
  }
}

TEST(CaseStudyTest, GroundTruthAlignsWithColumns) {
  CaseStudyData data = BuildCaseStudy(42);
  int total_columns = 0;
  for (const table::Table& table : data.tables) {
    total_columns += table.num_columns();
    for (int c = 0; c < table.num_columns(); ++c) {
      EXPECT_FALSE(table.column(c).name.empty());
      EXPECT_FALSE(table.column(c).values.empty());
    }
  }
  EXPECT_EQ(total_columns, data.num_columns());
}

TEST(CaseStudyTest, SameGroupUsesDivergentNames) {
  CaseStudyData data = BuildCaseStudy(42);
  // Collect names per group; at least one group must have ≥2 distinct
  // names across tables (the premise of the case study).
  std::vector<std::set<std::string>> names(15);
  int flat = 0;
  for (const table::Table& table : data.tables) {
    for (int c = 0; c < table.num_columns(); ++c, ++flat) {
      names[static_cast<size_t>(data.ground_truth[static_cast<size_t>(flat)])]
          .insert(table.column(c).name);
    }
  }
  int divergent = 0;
  for (const auto& group_names : names) {
    if (group_names.size() >= 2) ++divergent;
  }
  EXPECT_GE(divergent, 5);
}

TEST(CaseStudyTest, ValuesLookLikeTheirGroup) {
  CaseStudyData data = BuildCaseStudy(42);
  int flat = 0;
  for (const table::Table& table : data.tables) {
    for (int c = 0; c < table.num_columns(); ++c, ++flat) {
      const int group = data.ground_truth[static_cast<size_t>(flat)];
      const std::string& name = data.group_names[static_cast<size_t>(group)];
      for (const std::string& value : table.column(c).values) {
        if (name == "ip_address") {
          EXPECT_EQ(std::count(value.begin(), value.end(), '.'), 3) << value;
        } else if (name == "timestamp_hhmm") {
          EXPECT_EQ(value.size(), 5u) << value;
          EXPECT_EQ(value[2], ':') << value;
        } else if (name == "user_id") {
          EXPECT_EQ(value[0], 'u') << value;
        } else if (name == "file_path") {
          EXPECT_EQ(value[0], '/') << value;
        }
      }
    }
  }
}

TEST(CaseStudyTest, Deterministic) {
  CaseStudyData a = BuildCaseStudy(7);
  CaseStudyData b = BuildCaseStudy(7);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t t = 0; t < a.tables.size(); ++t) {
    for (int c = 0; c < a.tables[t].num_columns(); ++c) {
      EXPECT_EQ(a.tables[t].column(c).values, b.tables[t].column(c).values);
      EXPECT_EQ(a.tables[t].column(c).name, b.tables[t].column(c).name);
    }
  }
}

}  // namespace
}  // namespace doduo::synth
