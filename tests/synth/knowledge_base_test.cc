#include "doduo/synth/knowledge_base.h"

#include <set>
#include <unordered_set>

#include "gtest/gtest.h"

namespace doduo::synth {
namespace {

TEST(WikiTableKbTest, HasExpectedStructure) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(42);
  EXPECT_GE(kb.num_types(), 20);
  EXPECT_GE(kb.num_relations(), 20);
  EXPECT_GE(kb.topics().size(), 10u);
  EXPECT_GE(kb.TypeId("film.film"), 0);
  EXPECT_GE(kb.TypeId("film.director"), 0);
  EXPECT_GE(kb.RelationId("film.directed_by"), 0);
  EXPECT_EQ(kb.TypeId("no.such.type"), -1);
  EXPECT_EQ(kb.RelationId("no.such.relation"), -1);
}

TEST(WikiTableKbTest, PersonTypesShareSurfaceForms) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(42);
  const auto& directors = kb.type(kb.TypeId("film.director")).entities;
  const auto& producers = kb.type(kb.TypeId("film.producer")).entities;
  std::unordered_set<std::string> director_set(directors.begin(),
                                               directors.end());
  int shared = 0;
  for (const std::string& producer : producers) {
    if (director_set.count(producer) > 0) ++shared;
  }
  // The George Miller problem: substantial but partial overlap.
  EXPECT_GT(shared, 20);
  EXPECT_LT(shared, static_cast<int>(producers.size()));
}

TEST(WikiTableKbTest, PersonTypesCarrySecondaryLabel) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(42);
  const EntityType& director = kb.type(kb.TypeId("film.director"));
  ASSERT_EQ(director.extra_labels.size(), 1u);
  EXPECT_EQ(director.extra_labels[0], "people.person");
  EXPECT_TRUE(kb.type(kb.TypeId("film.film")).extra_labels.empty());
}

TEST(WikiTableKbTest, FactsAreConsistentAndInRange) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(42);
  const int directed_by = kb.RelationId("film.directed_by");
  const RelationType& rel = kb.relation(directed_by);
  EXPECT_EQ(rel.subject_type, kb.TypeId("film.film"));
  EXPECT_EQ(rel.object_type, kb.TypeId("film.director"));
  const int num_films =
      static_cast<int>(kb.type(rel.subject_type).entities.size());
  const int num_directors =
      static_cast<int>(kb.type(rel.object_type).entities.size());
  for (int film = 0; film < num_films; ++film) {
    const int director = kb.FactObject(directed_by, film);
    EXPECT_GE(director, 0);
    EXPECT_LT(director, num_directors);
    // Deterministic: same query, same answer.
    EXPECT_EQ(kb.FactObject(directed_by, film), director);
  }
}

TEST(WikiTableKbTest, DeterministicAcrossBuilds) {
  KnowledgeBase a = KnowledgeBase::BuildWikiTableKb(7);
  KnowledgeBase b = KnowledgeBase::BuildWikiTableKb(7);
  ASSERT_EQ(a.num_types(), b.num_types());
  for (int t = 0; t < a.num_types(); ++t) {
    EXPECT_EQ(a.type(t).name, b.type(t).name);
    EXPECT_EQ(a.type(t).entities, b.type(t).entities);
  }
  for (int r = 0; r < a.num_relations(); ++r) {
    EXPECT_EQ(a.FactObject(r, 0), b.FactObject(r, 0));
  }
}

TEST(WikiTableKbTest, TopicsReferenceValidIds) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(42);
  for (const Topic& topic : kb.topics()) {
    if (topic.key_type >= 0) {
      EXPECT_LT(topic.key_type, kb.num_types());
    }
    ASSERT_EQ(topic.other_types.size(), topic.relations.size())
        << topic.name;
    for (size_t i = 0; i < topic.other_types.size(); ++i) {
      EXPECT_LT(topic.other_types[i], kb.num_types());
      const int rel = topic.relations[i];
      if (rel >= 0) {
        EXPECT_LT(rel, kb.num_relations());
        // Relation endpoints must match the topic's column types.
        EXPECT_EQ(kb.relation(rel).subject_type, topic.key_type);
        EXPECT_EQ(kb.relation(rel).object_type, topic.other_types[i]);
      }
    }
    EXPECT_GT(topic.weight, 0.0);
  }
}

TEST(VizNetKbTest, HasNumericTypesOfTable5) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(42);
  for (const char* type : {"plays", "rank", "depth", "sales", "year",
                           "fileSize", "elevation", "ranking", "age",
                           "birthDate", "grades", "weight", "isbn",
                           "capacity", "code"}) {
    EXPECT_GE(kb.TypeId(type), 0) << type;
  }
  EXPECT_GE(kb.num_types(), 30);
  EXPECT_EQ(kb.num_relations(), 0);
}

TEST(VizNetKbTest, AmbiguousPoolsShared) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(42);
  // birthPlace and city draw from the identical pool; so do origin and
  // country.
  EXPECT_EQ(kb.type(kb.TypeId("birthPlace")).entities,
            kb.type(kb.TypeId("city")).entities);
  EXPECT_EQ(kb.type(kb.TypeId("origin")).entities,
            kb.type(kb.TypeId("country")).entities);
}

TEST(VizNetKbTest, TopicsHaveNoRelations) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(42);
  for (const Topic& topic : kb.topics()) {
    EXPECT_EQ(topic.key_type, -1) << topic.name;
    EXPECT_TRUE(topic.relations.empty()) << topic.name;
    EXPECT_FALSE(topic.other_types.empty()) << topic.name;
  }
}

TEST(VizNetKbTest, RareTopicsHaveLowWeight) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(42);
  double census_weight = -1.0;
  double people_weight = -1.0;
  for (const Topic& topic : kb.topics()) {
    if (topic.name == "census") census_weight = topic.weight;
    if (topic.name == "people") people_weight = topic.weight;
  }
  ASSERT_GT(census_weight, 0.0);
  ASSERT_GT(people_weight, 0.0);
  EXPECT_LT(census_weight, people_weight / 4.0);
}

TEST(LeafWordTest, StripsDottedPrefix) {
  EXPECT_EQ(KnowledgeBase::LeafWord("film.director"), "director");
  EXPECT_EQ(KnowledgeBase::LeafWord("a.b.c"), "c");
  EXPECT_EQ(KnowledgeBase::LeafWord("year"), "year");
}

}  // namespace
}  // namespace doduo::synth
