#include "doduo/synth/table_generator.h"

#include <unordered_set>

#include "doduo/synth/corpus_generator.h"
#include "gtest/gtest.h"

namespace doduo::synth {
namespace {

TEST(TableGeneratorTest, GeneratesRequestedTableCount) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  TableGeneratorOptions options;
  options.num_tables = 50;
  TableGenerator generator(&kb, options);
  util::Rng rng(2);
  table::ColumnAnnotationDataset dataset = generator.Generate(&rng);
  EXPECT_EQ(dataset.tables.size(), 50u);
  EXPECT_TRUE(dataset.multi_label);
  EXPECT_GT(dataset.type_vocab.size(), 20);
  EXPECT_GT(dataset.relation_vocab.size(), 20);
}

TEST(TableGeneratorTest, EveryColumnHasLabelsAndValues) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  TableGeneratorOptions options;
  options.num_tables = 40;
  TableGenerator generator(&kb, options);
  util::Rng rng(3);
  table::ColumnAnnotationDataset dataset = generator.Generate(&rng);
  for (const table::AnnotatedTable& annotated : dataset.tables) {
    ASSERT_EQ(annotated.column_types.size(),
              static_cast<size_t>(annotated.table.num_columns()));
    EXPECT_GE(annotated.table.num_columns(), 2);
    for (int c = 0; c < annotated.table.num_columns(); ++c) {
      EXPECT_FALSE(annotated.column_types[static_cast<size_t>(c)].empty());
      EXPECT_FALSE(annotated.table.column(c).values.empty());
      for (int label : annotated.column_types[static_cast<size_t>(c)]) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, dataset.type_vocab.size());
      }
    }
  }
}

TEST(TableGeneratorTest, RelationalCellsMatchKbFacts) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  TableGeneratorOptions options;
  options.num_tables = 60;
  TableGenerator generator(&kb, options);
  util::Rng rng(4);
  table::ColumnAnnotationDataset dataset = generator.Generate(&rng);

  int checked = 0;
  for (const table::AnnotatedTable& annotated : dataset.tables) {
    for (const table::RelationAnnotation& rel : annotated.relations) {
      ASSERT_EQ(rel.labels.size(), 1u);
      const int kb_rel = kb.RelationId(
          dataset.relation_vocab.Name(rel.labels[0]));
      ASSERT_GE(kb_rel, 0);
      const auto& subjects = kb.type(kb.relation(kb_rel).subject_type);
      const auto& objects = kb.type(kb.relation(kb_rel).object_type);
      const auto& key_values =
          annotated.table.column(rel.column_a).values;
      const auto& other_values =
          annotated.table.column(rel.column_b).values;
      ASSERT_EQ(key_values.size(), other_values.size());
      for (size_t r = 0; r < key_values.size(); ++r) {
        // Find the subject index and check the object matches the fact.
        int subject = -1;
        for (size_t s = 0; s < subjects.entities.size(); ++s) {
          if (subjects.entities[s] == key_values[r]) {
            subject = static_cast<int>(s);
            break;
          }
        }
        ASSERT_GE(subject, 0) << key_values[r];
        const int object = kb.FactObject(kb_rel, subject);
        EXPECT_EQ(other_values[r],
                  objects.entities[static_cast<size_t>(object)]);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100);  // facts actually exercised
}

TEST(TableGeneratorTest, MultiLabelColumnsExist) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  TableGeneratorOptions options;
  options.num_tables = 80;
  TableGenerator generator(&kb, options);
  util::Rng rng(5);
  table::ColumnAnnotationDataset dataset = generator.Generate(&rng);
  bool found_multi = false;
  for (const table::AnnotatedTable& annotated : dataset.tables) {
    for (const auto& labels : annotated.column_types) {
      if (labels.size() > 1) found_multi = true;
    }
  }
  EXPECT_TRUE(found_multi);
}

TEST(TableGeneratorTest, VizNetModeSingleLabelNoRelations) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(1);
  TableGeneratorOptions options;
  options.num_tables = 50;
  options.multi_label = false;
  options.with_relations = false;
  TableGenerator generator(&kb, options);
  util::Rng rng(6);
  table::ColumnAnnotationDataset dataset = generator.Generate(&rng);
  EXPECT_FALSE(dataset.multi_label);
  EXPECT_EQ(dataset.num_relations(), 0);
  for (const table::AnnotatedTable& annotated : dataset.tables) {
    for (const auto& labels : annotated.column_types) {
      EXPECT_EQ(labels.size(), 1u);
    }
  }
}

TEST(TableGeneratorTest, SingleColumnFractionProducesSingles) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(1);
  TableGeneratorOptions options;
  options.num_tables = 100;
  options.multi_label = false;
  options.with_relations = false;
  options.single_column_fraction = 0.4;
  TableGenerator generator(&kb, options);
  util::Rng rng(7);
  table::ColumnAnnotationDataset dataset = generator.Generate(&rng);
  int singles = 0;
  for (const table::AnnotatedTable& annotated : dataset.tables) {
    if (annotated.table.num_columns() == 1) ++singles;
  }
  EXPECT_GT(singles, 20);
  EXPECT_LT(singles, 60);
}

TEST(TableGeneratorTest, DeterministicGivenSeed) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  TableGeneratorOptions options;
  options.num_tables = 20;
  TableGenerator generator(&kb, options);
  util::Rng rng1(9);
  util::Rng rng2(9);
  auto a = generator.Generate(&rng1);
  auto b = generator.Generate(&rng2);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    ASSERT_EQ(a.tables[i].table.num_columns(),
              b.tables[i].table.num_columns());
    for (int c = 0; c < a.tables[i].table.num_columns(); ++c) {
      EXPECT_EQ(a.tables[i].table.column(c).values,
                b.tables[i].table.column(c).values);
    }
  }
}

TEST(TableGeneratorTest, CellMissingProbDropsCells) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  TableGeneratorOptions options;
  options.num_tables = 40;
  options.cell_missing_prob = 0.3;
  TableGenerator generator(&kb, options);
  util::Rng rng(10);
  auto dataset = generator.Generate(&rng);
  int empty = 0;
  int total = 0;
  for (const auto& annotated : dataset.tables) {
    for (const auto& column : annotated.table.columns()) {
      for (const auto& value : column.values) {
        ++total;
        if (value.empty()) ++empty;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(empty) / total, 0.3, 0.08);
}

TEST(CorpusGeneratorTest, ContainsTypeAndFactStatements) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  CorpusGenerator generator(&kb);
  CorpusOptions options;
  options.fact_mentions = 1;
  options.type_mentions = 1;
  std::vector<std::string> corpus = generator.Generate(options);
  EXPECT_GT(corpus.size(), 2000u);

  // A known fact sentence must appear: film 0's director.
  const int directed_by = kb.RelationId("film.directed_by");
  const auto& films = kb.type(kb.TypeId("film.film")).entities;
  const auto& directors = kb.type(kb.TypeId("film.director")).entities;
  const std::string expected = CorpusGenerator::RelationStatement(
      films[0], "is directed by",
      directors[static_cast<size_t>(kb.FactObject(directed_by, 0))]);
  std::unordered_set<std::string> sentences(corpus.begin(), corpus.end());
  EXPECT_TRUE(sentences.count(expected) > 0) << expected;

  // And a type statement for the same film.
  EXPECT_TRUE(sentences.count(
                  CorpusGenerator::TypeStatement(films[0], "film.film")) > 0);
}

TEST(CorpusGeneratorTest, MentionCountsScaleCorpus) {
  KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(1);
  CorpusGenerator generator(&kb);
  CorpusOptions small;
  small.fact_mentions = 1;
  small.type_mentions = 1;
  CorpusOptions large;
  large.fact_mentions = 2;
  large.type_mentions = 2;
  EXPECT_GT(generator.Generate(large).size(),
            generator.Generate(small).size());
}

}  // namespace
}  // namespace doduo::synth
