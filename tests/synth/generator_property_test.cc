// Property sweeps for the knowledge base and table generator across seeds
// and generator settings: structural invariants every generated benchmark
// must satisfy.

#include <tuple>
#include <unordered_set>

#include "doduo/synth/table_generator.h"
#include "gtest/gtest.h"

namespace doduo::synth {
namespace {

class KbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KbPropertyTest, WikiTableKbInvariants) {
  const KnowledgeBase kb = KnowledgeBase::BuildWikiTableKb(GetParam());
  for (int t = 0; t < kb.num_types(); ++t) {
    const EntityType& type = kb.type(t);
    ASSERT_FALSE(type.entities.empty()) << type.name;
    // No duplicate surface forms inside a pool.
    std::unordered_set<std::string> unique(type.entities.begin(),
                                           type.entities.end());
    ASSERT_EQ(unique.size(), type.entities.size()) << type.name;
    // Round-trip through the name index.
    ASSERT_EQ(kb.TypeId(type.name), t);
  }
  for (int r = 0; r < kb.num_relations(); ++r) {
    const RelationType& relation = kb.relation(r);
    ASSERT_GE(relation.subject_type, 0);
    ASSERT_LT(relation.subject_type, kb.num_types());
    ASSERT_GE(relation.object_type, 0);
    ASSERT_LT(relation.object_type, kb.num_types());
    ASSERT_FALSE(relation.phrase.empty());
    const int subjects = static_cast<int>(
        kb.type(relation.subject_type).entities.size());
    const int objects = static_cast<int>(
        kb.type(relation.object_type).entities.size());
    for (int s = 0; s < subjects; ++s) {
      const int object = kb.FactObject(r, s);
      ASSERT_GE(object, 0);
      ASSERT_LT(object, objects);
    }
  }
}

TEST_P(KbPropertyTest, VizNetKbInvariants) {
  const KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(GetParam());
  ASSERT_GE(kb.num_types(), 30);
  for (const Topic& topic : kb.topics()) {
    for (int type : topic.other_types) {
      ASSERT_GE(type, 0);
      ASSERT_LT(type, kb.num_types());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KbPropertyTest,
                         ::testing::Values(1u, 42u, 777u));

// Parameter: (seed, single_column_fraction, distractor_prob).
class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(GeneratorPropertyTest, DatasetInvariantsAcrossSettings) {
  const auto [seed, single_fraction, distractor] = GetParam();
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(11);
  TableGeneratorOptions options;
  options.num_tables = 60;
  options.multi_label = false;
  options.with_relations = false;
  options.single_column_fraction = single_fraction;
  options.distractor_prob = distractor;
  TableGenerator generator(&kb, options);
  util::Rng rng(static_cast<uint64_t>(seed));
  const table::ColumnAnnotationDataset dataset = generator.Generate(&rng);

  ASSERT_EQ(dataset.tables.size(), 60u);
  for (const auto& annotated : dataset.tables) {
    // Labels aligned with columns, all valid single labels.
    ASSERT_EQ(annotated.column_types.size(),
              static_cast<size_t>(annotated.table.num_columns()));
    for (const auto& labels : annotated.column_types) {
      ASSERT_EQ(labels.size(), 1u);
      ASSERT_GE(labels[0], 0);
      ASSERT_LT(labels[0], dataset.type_vocab.size());
    }
    // Column values come from the labeled type's pool.
    for (int c = 0; c < annotated.table.num_columns(); ++c) {
      const int kb_type = kb.TypeId(dataset.type_vocab.Name(
          annotated.column_types[static_cast<size_t>(c)][0]));
      ASSERT_GE(kb_type, 0);
      const auto& pool = kb.type(kb_type).entities;
      std::unordered_set<std::string> pool_set(pool.begin(), pool.end());
      for (const auto& value : annotated.table.column(c).values) {
        ASSERT_TRUE(pool_set.count(value) > 0)
            << value << " not in pool of "
            << dataset.type_vocab.Name(
                   annotated.column_types[static_cast<size_t>(c)][0]);
      }
    }
    // Rows are rectangular within a table.
    const size_t rows = annotated.table.column(0).values.size();
    for (const auto& column : annotated.table.columns()) {
      ASSERT_EQ(column.values.size(), rows);
    }
  }
}

TEST_P(GeneratorPropertyTest, SingleColumnFractionMatches) {
  const auto [seed, single_fraction, distractor] = GetParam();
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(11);
  TableGeneratorOptions options;
  options.num_tables = 300;
  options.multi_label = false;
  options.with_relations = false;
  options.single_column_fraction = single_fraction;
  options.distractor_prob = distractor;
  TableGenerator generator(&kb, options);
  util::Rng rng(static_cast<uint64_t>(seed) + 5);
  const auto dataset = generator.Generate(&rng);
  int singles = 0;
  for (const auto& annotated : dataset.tables) {
    if (annotated.table.num_columns() == 1) ++singles;
  }
  const double fraction = static_cast<double>(singles) / 300.0;
  EXPECT_NEAR(fraction, single_fraction, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    Settings, GeneratorPropertyTest,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(0.0, 0.25),
                       ::testing::Values(0.0, 0.5)));

}  // namespace
}  // namespace doduo::synth
