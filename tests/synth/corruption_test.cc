#include "doduo/synth/corruption.h"

#include "doduo/synth/table_generator.h"
#include "gtest/gtest.h"

namespace doduo::synth {
namespace {

table::Table MakeTable() {
  table::Table t("t");
  t.AddColumn({"a", {"alpha", "bravo", "charlie", "delta"}});
  t.AddColumn({"b", {"one", "two", "three", "four"}});
  return t;
}

TEST(CorruptionTest, ZeroRatesAreIdentity) {
  table::Table t = MakeTable();
  util::Rng rng(1);
  CorruptTable(&t, {}, &rng);
  EXPECT_EQ(t.column(0).values[0], "alpha");
  EXPECT_EQ(t.column(1).values[3], "four");
}

TEST(CorruptionTest, MissingProbBlanksCells) {
  util::Rng rng(2);
  int blanked = 0;
  int total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    table::Table t = MakeTable();
    CorruptionOptions options;
    options.missing_prob = 0.4;
    CorruptTable(&t, options, &rng);
    for (const auto& column : t.columns()) {
      for (const auto& value : column.values) {
        ++total;
        if (value.empty()) ++blanked;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(blanked) / total, 0.4, 0.08);
}

TEST(CorruptionTest, TyposChangeButKeepRoughLength) {
  util::Rng rng(3);
  table::Table t = MakeTable();
  CorruptionOptions options;
  options.typo_prob = 1.0;
  CorruptTable(&t, options, &rng);
  int changed = 0;
  for (int c = 0; c < 2; ++c) {
    const table::Table original = MakeTable();
    for (size_t r = 0; r < 4; ++r) {
      const std::string& corrupted = t.column(c).values[r];
      const std::string& clean = original.column(c).values[r];
      EXPECT_GE(corrupted.size() + 1, clean.size());
      EXPECT_LE(corrupted.size(), clean.size() + 1);
      if (corrupted != clean) ++changed;
    }
  }
  EXPECT_GT(changed, 4);  // replace-with-same-letter can no-op rarely
}

TEST(CorruptionTest, MisplacePreservesCellMultiset) {
  util::Rng rng(4);
  table::Table t = MakeTable();
  CorruptionOptions options;
  options.misplace_prob = 0.8;
  CorruptTable(&t, options, &rng);
  std::multiset<std::string> cells;
  for (const auto& column : t.columns()) {
    for (const auto& value : column.values) cells.insert(value);
  }
  const std::multiset<std::string> expected = {
      "alpha", "bravo", "charlie", "delta", "one", "two", "three", "four"};
  EXPECT_EQ(cells, expected);
  // With rate 0.8 over 8 cells, at least one swap crossed columns.
  bool any_moved = false;
  const table::Table original = MakeTable();
  for (int c = 0; c < 2; ++c) {
    for (size_t r = 0; r < 4; ++r) {
      if (t.column(c).values[r] != original.column(c).values[r]) {
        any_moved = true;
      }
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(CorruptionTest, DatasetCopyLeavesOriginalUntouched) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(5);
  TableGeneratorOptions generator_options;
  generator_options.num_tables = 10;
  generator_options.multi_label = false;
  generator_options.with_relations = false;
  TableGenerator generator(&kb, generator_options);
  util::Rng rng(6);
  const auto dataset = generator.Generate(&rng);

  CorruptionOptions options;
  options.missing_prob = 0.5;
  const auto corrupted = CorruptDataset(dataset, options, &rng);

  ASSERT_EQ(corrupted.tables.size(), dataset.tables.size());
  // Labels preserved; originals untouched; corruption applied.
  int original_blank = 0;
  int corrupted_blank = 0;
  for (size_t t = 0; t < dataset.tables.size(); ++t) {
    EXPECT_EQ(corrupted.tables[t].column_types,
              dataset.tables[t].column_types);
    for (int c = 0; c < dataset.tables[t].table.num_columns(); ++c) {
      for (size_t r = 0;
           r < dataset.tables[t].table.column(c).values.size(); ++r) {
        if (dataset.tables[t].table.column(c).values[r].empty()) {
          ++original_blank;
        }
        if (corrupted.tables[t].table.column(c).values[r].empty()) {
          ++corrupted_blank;
        }
      }
    }
  }
  EXPECT_EQ(original_blank, 0);
  EXPECT_GT(corrupted_blank, 10);
}

}  // namespace
}  // namespace doduo::synth
