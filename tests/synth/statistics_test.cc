#include "doduo/synth/statistics.h"

#include "doduo/synth/table_generator.h"
#include "gtest/gtest.h"

namespace doduo::synth {
namespace {

TEST(StatisticsTest, CountsMatchHandBuiltDataset) {
  table::ColumnAnnotationDataset dataset;
  dataset.type_vocab.AddLabel("year");
  dataset.type_vocab.AddLabel("name");
  dataset.type_vocab.AddLabel("unused");

  table::AnnotatedTable t1;
  t1.table.AddColumn({"y", {"1999", "2004"}});
  t1.table.AddColumn({"n", {"ada", "grace"}});
  t1.column_types = {{0}, {1}};
  t1.relations.push_back({0, 1, {0}});
  dataset.tables.push_back(std::move(t1));

  table::AnnotatedTable t2;
  t2.table.AddColumn({"y", {"1984", "2020", "7"}});
  t2.column_types = {{0}};
  dataset.tables.push_back(std::move(t2));

  const DatasetStatistics stats = ComputeStatistics(dataset);
  EXPECT_EQ(stats.num_tables, 2);
  EXPECT_EQ(stats.num_columns, 3);
  EXPECT_EQ(stats.num_relations, 1);
  EXPECT_EQ(stats.num_types_used, 2);  // "unused" has no support
  EXPECT_DOUBLE_EQ(stats.avg_columns_per_table, 1.5);
  EXPECT_DOUBLE_EQ(stats.avg_rows_per_table, 2.5);

  ASSERT_EQ(stats.types.size(), 2u);
  EXPECT_EQ(stats.types[0].name, "year");  // support 2 > 1
  EXPECT_EQ(stats.types[0].support, 2);
  EXPECT_DOUBLE_EQ(stats.types[0].numeric_fraction, 1.0);
  EXPECT_EQ(stats.types[1].name, "name");
  EXPECT_DOUBLE_EQ(stats.types[1].numeric_fraction, 0.0);
}

TEST(StatisticsTest, RenderListsHeadlineAndTypes) {
  KnowledgeBase kb = KnowledgeBase::BuildVizNetKb(3);
  TableGeneratorOptions options;
  options.num_tables = 40;
  options.multi_label = false;
  options.with_relations = false;
  TableGenerator generator(&kb, options);
  util::Rng rng(4);
  const auto dataset = generator.Generate(&rng);
  const auto stats = ComputeStatistics(dataset);
  EXPECT_EQ(stats.num_tables, 40);
  EXPECT_GT(stats.num_types_used, 5);

  const std::string rendered = RenderStatistics(stats, 5);
  EXPECT_NE(rendered.find("tables: 40"), std::string::npos);
  EXPECT_NE(rendered.find("%num"), std::string::npos);
}

TEST(StatisticsTest, EmptyDataset) {
  table::ColumnAnnotationDataset dataset;
  const auto stats = ComputeStatistics(dataset);
  EXPECT_EQ(stats.num_tables, 0);
  EXPECT_EQ(stats.num_columns, 0);
  EXPECT_TRUE(stats.types.empty());
}

}  // namespace
}  // namespace doduo::synth
