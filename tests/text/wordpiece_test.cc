#include <string>
#include <unordered_map>
#include <vector>

#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/text/wordpiece_trainer.h"
#include "gtest/gtest.h"

namespace doduo::text {
namespace {

TEST(WordPieceTokenizerTest, GreedyLongestMatch) {
  Vocab vocab;
  vocab.AddToken("un");
  vocab.AddToken("##aff");
  vocab.AddToken("##able");
  vocab.AddToken("unaff");
  WordPieceTokenizer tokenizer(&vocab);
  // "unaffable": longest first match is "unaff", then "##able".
  auto ids = tokenizer.TokenizeWord("unaffable");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(vocab.Token(ids[0]), "unaff");
  EXPECT_EQ(vocab.Token(ids[1]), "##able");
}

TEST(WordPieceTokenizerTest, UnknownWhenUndecomposable) {
  Vocab vocab;
  vocab.AddToken("a");
  WordPieceTokenizer tokenizer(&vocab);
  EXPECT_EQ(tokenizer.TokenizeWord("xyz"),
            (std::vector<int>{Vocab::kUnkId}));
  EXPECT_EQ(tokenizer.TokenizeWord(""), (std::vector<int>{Vocab::kUnkId}));
}

TEST(WordPieceTokenizerTest, OverlongWordIsUnk) {
  Vocab vocab;
  vocab.AddToken("a");
  vocab.AddToken("##a");
  WordPieceTokenizer tokenizer(&vocab, /*max_chars_per_word=*/4);
  EXPECT_EQ(tokenizer.TokenizeWord("aaaaa"),
            (std::vector<int>{Vocab::kUnkId}));
  EXPECT_EQ(tokenizer.TokenizeWord("aaaa").size(), 4u);
}

TEST(WordPieceTokenizerTest, WordLengthLimitCountsCodePointsNotBytes) {
  // "héllo" is 5 code points but 6 bytes; with max_chars_per_word=5 it must
  // still be tokenized, not dropped to [UNK] by a byte-length comparison.
  Vocab vocab;
  vocab.AddToken("h\xc3\xa9llo");
  WordPieceTokenizer tokenizer(&vocab, /*max_chars_per_word=*/5);
  const auto ids = tokenizer.TokenizeWord("h\xc3\xa9llo");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(vocab.Token(ids[0]), "h\xc3\xa9llo");
  // Six code points (each two bytes) exceeds the limit regardless of
  // encoding width.
  EXPECT_EQ(tokenizer.TokenizeWord("\xc3\xa9\xc3\xa9\xc3\xa9"
                                   "\xc3\xa9\xc3\xa9\xc3\xa9"),
            (std::vector<int>{Vocab::kUnkId}));
}

TEST(WordPieceTokenizerTest, InvalidUtf8IsRepairedNotSliced) {
  Vocab vocab;
  vocab.AddToken("ab");
  vocab.AddToken("##cd");
  vocab.AddToken("\xEF\xBF\xBD");    // U+FFFD
  vocab.AddToken("##\xEF\xBF\xBD");  // continuation form
  WordPieceTokenizer tokenizer(&vocab);
  // A truncated 3-byte sequence between two matchable chunks becomes one
  // replacement char, and the surrounding pieces still match.
  const auto ids = tokenizer.TokenizeWord("ab\xE4\xB8");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(vocab.Token(ids[0]), "ab");
  EXPECT_EQ(vocab.Token(ids[1]), "##\xEF\xBF\xBD");
  // A lone invalid lead byte is a single replacement char, never [UNK]
  // caused by byte-slicing through it.
  const auto lone = tokenizer.TokenizeWord("\xFF");
  ASSERT_EQ(lone.size(), 1u);
  EXPECT_EQ(vocab.Token(lone[0]), "\xEF\xBF\xBD");
}

TEST(WordPieceTokenizerTest, InvalidUtf8LengthCapCountsRepairedCodePoints) {
  Vocab vocab;
  vocab.AddToken("\xEF\xBF\xBD");
  vocab.AddToken("##\xEF\xBF\xBD");
  WordPieceTokenizer tokenizer(&vocab, /*max_chars_per_word=*/4);
  // Four invalid lead bytes repair to four code points: at the cap, fine.
  EXPECT_EQ(tokenizer.TokenizeWord("\xFF\xFF\xFF\xFF").size(), 4u);
  // Five exceed it.
  EXPECT_EQ(tokenizer.TokenizeWord("\xFF\xFF\xFF\xFF\xFF"),
            (std::vector<int>{Vocab::kUnkId}));
}

TEST(WordPieceTokenizerTest, ValidMultiByteNeverMatchesMidSequence) {
  Vocab vocab;
  // Vocab deliberately holds a fragment equal to the emoji's first byte;
  // the matcher must not consider it because candidates shrink by whole
  // code points.
  vocab.AddToken(std::string(1, '\xF0'));
  vocab.AddToken("\xF0\x9F\x98\x80");
  WordPieceTokenizer tokenizer(&vocab);
  const auto ids = tokenizer.TokenizeWord("\xF0\x9F\x98\x80");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(vocab.Token(ids[0]), "\xF0\x9F\x98\x80");
}

TEST(WordPieceTokenizerTest, EncodeBudgetedIsPrefixOfEncode) {
  Vocab vocab;
  vocab.AddToken("happy");
  vocab.AddToken("feet");
  vocab.AddToken("mad");
  vocab.AddToken("max");
  WordPieceTokenizer tokenizer(&vocab);
  const std::string text = "happy feet mad max";
  const auto full = tokenizer.Encode(text);
  ASSERT_EQ(full.size(), 4u);
  for (size_t budget = 0; budget <= full.size() + 1; ++budget) {
    bool truncated = false;
    const auto got = tokenizer.EncodeBudgeted(text, budget, &truncated);
    const size_t want = std::min(budget, full.size());
    ASSERT_EQ(got.size(), want) << "budget=" << budget;
    EXPECT_TRUE(
        std::equal(got.begin(), got.end(), full.begin()));
    EXPECT_EQ(truncated, budget < full.size()) << "budget=" << budget;
  }
}

TEST(WordPieceTokenizerTest, EncodeBudgetedCutsInsideAWord) {
  Vocab vocab;
  vocab.AddToken("un");
  vocab.AddToken("##aff");
  vocab.AddToken("##able");
  WordPieceTokenizer tokenizer(&vocab);
  // "unaffable unaffable" is 6 pieces; a budget of 4 cuts mid-word.
  bool truncated = false;
  const auto ids =
      tokenizer.EncodeBudgeted("unaffable unaffable", 4, &truncated);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(vocab.Token(ids[3]), "un");
}

TEST(WordPieceTokenizerTest, DecodeBoundsChecksIds) {
  Vocab vocab;
  vocab.AddToken("ok");
  WordPieceTokenizer tokenizer(&vocab);
  const int ok_id = vocab.Id("ok");
  const auto tokens = tokenizer.Decode({ok_id, -1, vocab.size(), 1 << 20});
  EXPECT_EQ(tokens, (std::vector<std::string>{"ok", Vocab::kUnkToken,
                                              Vocab::kUnkToken,
                                              Vocab::kUnkToken}));
}

TEST(WordPieceTokenizerTest, EncodeRunsFullPipeline) {
  Vocab vocab;
  vocab.AddToken("happy");
  vocab.AddToken("feet");
  WordPieceTokenizer tokenizer(&vocab);
  auto ids = tokenizer.Encode("Happy Feet");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(tokenizer.Decode(ids),
            (std::vector<std::string>{"happy", "feet"}));
}

TEST(WordPieceTrainerTest, SeedsAllCharacters) {
  WordPieceTrainer trainer({.vocab_size = 10, .min_pair_frequency = 2});
  std::unordered_map<std::string, int64_t> counts = {{"ab", 1}};
  Vocab vocab = trainer.Train(counts);
  EXPECT_TRUE(vocab.Contains("a"));
  EXPECT_TRUE(vocab.Contains("##b"));
}

TEST(WordPieceTrainerTest, MergesFrequentPairs) {
  WordPieceTrainer trainer({.vocab_size = 100, .min_pair_frequency = 2});
  std::unordered_map<std::string, int64_t> counts = {{"abc", 50},
                                                     {"abd", 50}};
  Vocab vocab = trainer.Train(counts);
  // "a"+"##b" is the most frequent pair and must have merged.
  EXPECT_TRUE(vocab.Contains("ab"));
}

TEST(WordPieceTrainerTest, RespectsVocabSizeLimit) {
  // Character seeding is unconditional (5 specials + 3 word-initial chars +
  // 15 continuation chars = 23 here); with the limit already reached, no
  // merges may be added on top.
  WordPieceTrainer trainer({.vocab_size = 12, .min_pair_frequency = 1});
  std::unordered_map<std::string, int64_t> counts = {
      {"abcdef", 10}, {"ghijkl", 10}, {"mnopqr", 10}};
  Vocab vocab = trainer.Train(counts);
  EXPECT_EQ(vocab.size(), 23);
  // With headroom, merges are added but stay within the limit (+1 for the
  // merge that crosses the threshold).
  WordPieceTrainer bigger({.vocab_size = 30, .min_pair_frequency = 1});
  Vocab vocab2 = bigger.Train(counts);
  EXPECT_GT(vocab2.size(), 23);
  EXPECT_LE(vocab2.size(), 30);
}

TEST(WordPieceTrainerTest, TrainedVocabRoundTripsTrainingWords) {
  WordPieceTrainer trainer({.vocab_size = 200, .min_pair_frequency = 1});
  std::vector<std::string> lines = {
      "george miller directed happy feet",
      "george miller produced mad max",
      "judy morris directed happy feet too",
  };
  Vocab vocab = trainer.TrainFromLines(lines);
  WordPieceTokenizer tokenizer(&vocab);
  // Every training word must tokenize without UNK.
  for (const char* word : {"george", "miller", "directed", "happy", "feet"}) {
    auto ids = tokenizer.TokenizeWord(word);
    for (int id : ids) EXPECT_NE(id, Vocab::kUnkId) << word;
  }
  // A fully out-of-alphabet word degrades to UNK, not a crash.
  auto unk = tokenizer.TokenizeWord("zzz999zzz");
  EXPECT_FALSE(unk.empty());
}

TEST(WordPieceTrainerTest, FrequentWordBecomesSinglePiece) {
  WordPieceTrainer trainer({.vocab_size = 500, .min_pair_frequency = 2});
  std::vector<std::string> lines;
  for (int i = 0; i < 50; ++i) lines.push_back("doduo annotates columns");
  Vocab vocab = trainer.TrainFromLines(lines);
  WordPieceTokenizer tokenizer(&vocab);
  EXPECT_EQ(tokenizer.TokenizeWord("doduo").size(), 1u);
  EXPECT_EQ(tokenizer.TokenizeWord("annotates").size(), 1u);
}

TEST(WordPieceTrainerTest, DeterministicAcrossRuns) {
  WordPieceTrainer trainer({.vocab_size = 60, .min_pair_frequency = 1});
  std::vector<std::string> lines = {"aa bb cc aa bb", "cc dd ee ff"};
  Vocab v1 = trainer.TrainFromLines(lines);
  Vocab v2 = trainer.TrainFromLines(lines);
  ASSERT_EQ(v1.size(), v2.size());
  for (int i = 0; i < v1.size(); ++i) EXPECT_EQ(v1.Token(i), v2.Token(i));
}

}  // namespace
}  // namespace doduo::text
