// Fuzz-style robustness tests: the tokenizer stack must never crash or
// return malformed output for arbitrary byte strings.

#include <string>

#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/text/wordpiece_trainer.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::text {
namespace {

class TokenizerFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  TokenizerFuzzTest() {
    WordPieceTrainer trainer({.vocab_size = 200, .min_pair_frequency = 1});
    vocab_ = trainer.TrainFromLines(
        {"hello world", "numbers 123 and 456", "punct, marks! here?"});
  }
  Vocab vocab_;
};

TEST_P(TokenizerFuzzTest, ArbitraryBytesNeverCrashOrMisindex) {
  util::Rng rng(GetParam());
  WordPieceTokenizer tokenizer(&vocab_);
  BasicTokenizer basic;
  for (int trial = 0; trial < 200; ++trial) {
    const size_t length = rng.NextUint64(40);
    std::string text;
    for (size_t i = 0; i < length; ++i) {
      // Full byte range, including control chars and high bytes.
      text.push_back(static_cast<char>(rng.NextUint64(256)));
    }
    // Basic tokenizer yields non-empty pieces only.
    for (const std::string& word : basic.Tokenize(text)) {
      ASSERT_FALSE(word.empty());
    }
    // Every emitted id is a valid vocab id.
    for (int id : tokenizer.Encode(text)) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, vocab_.size());
    }
  }
}

TEST_P(TokenizerFuzzTest, WhitespaceAndPunctuationSoup) {
  util::Rng rng(GetParam() + 1);
  WordPieceTokenizer tokenizer(&vocab_);
  static const char kSoup[] = " \t\n.,;:!?-_()[]{}'\"";
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    const size_t length = rng.NextUint64(30);
    for (size_t i = 0; i < length; ++i) {
      text.push_back(kSoup[rng.NextUint64(sizeof(kSoup) - 1)]);
    }
    const auto ids = tokenizer.Encode(text);
    // Punctuation-only input yields only known ids; whitespace-only yields
    // nothing.
    for (int id : ids) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, vocab_.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzzTest,
                         ::testing::Values(1u, 99u, 2026u));

}  // namespace
}  // namespace doduo::text
