#include "doduo/text/vocab.h"

#include <cstdio>

#include "gtest/gtest.h"

namespace doduo::text {
namespace {

TEST(VocabTest, SpecialTokensAtFixedIds) {
  Vocab vocab;
  EXPECT_EQ(vocab.size(), 5);
  EXPECT_EQ(vocab.Id("[PAD]"), Vocab::kPadId);
  EXPECT_EQ(vocab.Id("[UNK]"), Vocab::kUnkId);
  EXPECT_EQ(vocab.Id("[CLS]"), Vocab::kClsId);
  EXPECT_EQ(vocab.Id("[SEP]"), Vocab::kSepId);
  EXPECT_EQ(vocab.Id("[MASK]"), Vocab::kMaskId);
  EXPECT_EQ(vocab.Token(Vocab::kClsId), "[CLS]");
}

TEST(VocabTest, AddIsIdempotent) {
  Vocab vocab;
  const int id1 = vocab.AddToken("hello");
  const int id2 = vocab.AddToken("hello");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(vocab.size(), 6);
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab vocab;
  EXPECT_EQ(vocab.Id("never_added"), Vocab::kUnkId);
  EXPECT_FALSE(vocab.Contains("never_added"));
}

TEST(VocabTest, IsSpecial) {
  EXPECT_TRUE(Vocab::IsSpecial(0));
  EXPECT_TRUE(Vocab::IsSpecial(4));
  EXPECT_FALSE(Vocab::IsSpecial(5));
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab vocab;
  vocab.AddToken("alpha");
  vocab.AddToken("##beta");
  const std::string path = ::testing::TempDir() + "/vocab_test.txt";
  ASSERT_TRUE(vocab.Save(path).ok());
  auto loaded = Vocab::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), vocab.size());
  EXPECT_EQ(loaded.value().Id("alpha"), vocab.Id("alpha"));
  EXPECT_EQ(loaded.value().Id("##beta"), vocab.Id("##beta"));
  std::remove(path.c_str());
}

TEST(VocabTest, LoadRejectsNonVocabFile) {
  const std::string path = ::testing::TempDir() + "/not_vocab.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("random\ncontent\n", f);
  std::fclose(f);
  EXPECT_FALSE(Vocab::Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace doduo::text
