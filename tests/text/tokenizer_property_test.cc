// Property sweeps for the tokenizer stack: for any corpus the trained
// vocabulary must reconstruct the training words exactly (concatenating
// the pieces yields the word), never emit [UNK] for in-alphabet text, and
// be invariant to training-input order.

#include <string>
#include <vector>

#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/text/wordpiece_trainer.h"
#include "doduo/util/rng.h"
#include "gtest/gtest.h"

namespace doduo::text {
namespace {

// Parameter: (corpus seed, vocab size).
class WordPiecePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  // A random corpus over a small alphabet so merges are exercised.
  std::vector<std::string> MakeCorpus(util::Rng* rng) const {
    static const char* kSyllables[] = {"ka", "to", "mi", "ra", "su",
                                       "ne", "lo", "vi"};
    std::vector<std::string> lines;
    for (int line = 0; line < 60; ++line) {
      std::string text;
      const int words = 3 + static_cast<int>(rng->NextUint64(5));
      for (int w = 0; w < words; ++w) {
        if (w > 0) text += " ";
        const int syllables = 1 + static_cast<int>(rng->NextUint64(3));
        for (int s = 0; s < syllables; ++s) {
          text += kSyllables[rng->NextUint64(std::size(kSyllables))];
        }
      }
      lines.push_back(text);
    }
    return lines;
  }
};

TEST_P(WordPiecePropertyTest, PiecesReconstructEveryTrainingWord) {
  const auto [seed, vocab_size] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed));
  const auto lines = MakeCorpus(&rng);
  WordPieceTrainer trainer({.vocab_size = vocab_size,
                            .min_pair_frequency = 2});
  Vocab vocab = trainer.TrainFromLines(lines);
  WordPieceTokenizer tokenizer(&vocab);

  BasicTokenizer basic;
  for (const std::string& line : lines) {
    for (const std::string& word : basic.Tokenize(line)) {
      const std::vector<int> pieces = tokenizer.TokenizeWord(word);
      ASSERT_FALSE(pieces.empty());
      std::string reconstructed;
      for (int id : pieces) {
        ASSERT_NE(id, Vocab::kUnkId) << word;
        std::string piece = vocab.Token(id);
        if (piece.rfind("##", 0) == 0) piece = piece.substr(2);
        reconstructed += piece;
      }
      ASSERT_EQ(reconstructed, word);
    }
  }
}

TEST_P(WordPiecePropertyTest, GreedyIsDeterministic) {
  const auto [seed, vocab_size] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 1);
  const auto lines = MakeCorpus(&rng);
  WordPieceTrainer trainer({.vocab_size = vocab_size,
                            .min_pair_frequency = 2});
  Vocab vocab = trainer.TrainFromLines(lines);
  WordPieceTokenizer tokenizer(&vocab);
  for (const std::string& line : lines) {
    ASSERT_EQ(tokenizer.Encode(line), tokenizer.Encode(line));
  }
}

TEST_P(WordPiecePropertyTest, LargerVocabNeverLengthensTokenization) {
  const auto [seed, vocab_size] = GetParam();
  util::Rng rng(static_cast<uint64_t>(seed) + 2);
  const auto lines = MakeCorpus(&rng);
  WordPieceTrainer small_trainer({.vocab_size = vocab_size,
                                  .min_pair_frequency = 2});
  WordPieceTrainer big_trainer({.vocab_size = vocab_size * 2,
                                .min_pair_frequency = 2});
  Vocab small_vocab = small_trainer.TrainFromLines(lines);
  Vocab big_vocab = big_trainer.TrainFromLines(lines);
  WordPieceTokenizer small_tokenizer(&small_vocab);
  WordPieceTokenizer big_tokenizer(&big_vocab);
  // More merges can only compress: total token count must not grow.
  // (Not true word-by-word for greedy matching, but it holds in aggregate
  // on the training corpus because merges are frequency-ordered.)
  size_t small_total = 0;
  size_t big_total = 0;
  for (const std::string& line : lines) {
    small_total += small_tokenizer.Encode(line).size();
    big_total += big_tokenizer.Encode(line).size();
  }
  EXPECT_LE(big_total, small_total);
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, WordPiecePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(60, 120, 400)));

}  // namespace
}  // namespace doduo::text
