#include "doduo/text/basic_tokenizer.h"

#include "gtest/gtest.h"

namespace doduo::text {
namespace {

TEST(BasicTokenizerTest, LowercasesAndSplits) {
  BasicTokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("Happy Feet"),
            (std::vector<std::string>{"happy", "feet"}));
}

TEST(BasicTokenizerTest, SplitsPunctuation) {
  BasicTokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("U.S."),
            (std::vector<std::string>{"u", ".", "s", "."}));
  EXPECT_EQ(tokenizer.Tokenize("don't"),
            (std::vector<std::string>{"don", "'", "t"}));
}

TEST(BasicTokenizerTest, KeepsDigitsInWord) {
  BasicTokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("abc123"),
            (std::vector<std::string>{"abc123"}));
  EXPECT_EQ(tokenizer.Tokenize("1,234"),
            (std::vector<std::string>{"1", ",", "234"}));
}

TEST(BasicTokenizerTest, EmptyAndWhitespaceOnly) {
  BasicTokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  \t\n").empty());
}

TEST(BasicTokenizerTest, CaseSensitiveMode) {
  BasicTokenizer tokenizer(/*lowercase=*/false);
  EXPECT_EQ(tokenizer.Tokenize("Hello World"),
            (std::vector<std::string>{"Hello", "World"}));
}

}  // namespace
}  // namespace doduo::text
