// Annotate a CSV file's columns with semantic types.
//
//   ./build/examples/annotate_csv [path/to/file.csv]
//
// Without an argument, a demo CSV is written to a temporary file first.
// The model is fine-tuned on the synthetic WikiTable benchmark, then
// applied to the CSV — mirroring how the released toolbox is used on
// arbitrary user tables.

#include <cstdio>
#include <string>

#include "doduo/core/annotator.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/csv.h"
#include "doduo/util/env.h"

namespace {

// Returns the demo CSV path, or an empty string when it cannot be written
// (main then exits with an error instead of calling std::exit here — the
// no-abort lint rule keeps process control in main).
std::string WriteDemoCsv() {
  const std::string path = "/tmp/doduo_demo.csv";
  doduo::util::CsvRows rows = {
      {"title", "who", "where"},
      {"golden journey", "max browne", "australia"},
      {"frozen harvest", "thomas tyner", "france"},
      {"lost horizon", "derrick henry", "usa"},
  };
  const auto status = doduo::util::WriteCsvFile(path, rows);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write demo CSV: %s\n",
                 status.ToString().c_str());
    return std::string();
  }
  std::printf("no CSV given; wrote a demo file to %s\n", path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace doduo::experiments;

  const std::string path = argc > 1 ? argv[1] : WriteDemoCsv();
  if (path.empty()) return 1;

  // Load the CSV as a table (first row = header).
  auto rows = doduo::util::ReadCsvFile(path);
  if (!rows.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(),
                 rows.status().ToString().c_str());
    return 1;
  }
  auto table_result = doduo::table::TableFromCsvRows(
      rows.value(), /*has_header=*/true, path);
  if (!table_result.ok()) {
    std::fprintf(stderr, "failed to parse table: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const doduo::table::Table& table = table_result.value();
  std::printf("loaded %s: %d columns x %d rows\n", path.c_str(),
              table.num_columns(), table.num_rows());

  // Train the annotator on the synthetic WikiTable benchmark.
  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(600);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);
  DoduoVariant variant;
  variant.epochs = 20;
  DoduoRun run = RunDoduo(&env, variant);

  doduo::core::Annotator annotator(run.model.get(), run.serializer.get(),
                                   &env.dataset().type_vocab,
                                   &env.dataset().relation_vocab);
  // The CSV came from the user, so surface annotation errors instead of
  // unwrapping with .value().
  auto types_result = annotator.AnnotateTypes(table);
  if (!types_result.ok()) {
    std::fprintf(stderr, "cannot annotate %s: %s\n", path.c_str(),
                 types_result.status().ToString().c_str());
    return 1;
  }
  const auto types = std::move(types_result).value();
  std::printf("\npredicted column types:\n");
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("  %-16s ->", table.column(c).name.c_str());
    for (const std::string& name : types[static_cast<size_t>(c)]) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  if (table.num_columns() > 1) {
    const auto relations = annotator.AnnotateKeyRelations(table).value();
    std::printf("predicted relations from column '%s':\n",
                table.column(0).name.c_str());
    for (size_t c = 0; c < relations.size(); ++c) {
      std::printf("  -> %-16s %s\n",
                  table.column(static_cast<int>(c) + 1).name.c_str(),
                  relations[c].c_str());
    }
  }
  return 0;
}
