// The Section 7 data-scientist workflow ("Sofia's scenario"): gather a
// pile of enterprise tables whose column names disagree, embed every
// column with a DODUO model trained on a *different* domain, and k-means
// the embeddings into semantic groups.
//
//   ./build/examples/cluster_columns

#include <cstdio>
#include <map>

#include "doduo/cluster/kmeans.h"
#include "doduo/cluster/metrics.h"
#include "doduo/core/annotator.h"
#include "doduo/experiments/runners.h"
#include "doduo/synth/case_study.h"
#include "doduo/util/env.h"

int main() {
  using namespace doduo::experiments;

  // Train on WikiTable-style data; the case-study database is an entirely
  // different domain (HR/jobsearch), so this demonstrates transfer.
  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(600);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);
  DoduoVariant variant;
  variant.epochs = 20;
  DoduoRun run = RunDoduo(&env, variant);

  const auto data = doduo::synth::BuildCaseStudy(options.seed + 99);
  std::printf("case-study database: %zu tables, %d columns, %zu true "
              "groups\n",
              data.tables.size(), data.num_columns(),
              data.group_names.size());

  // Contextualized column embeddings for all columns.
  doduo::core::Annotator annotator(run.model.get(), run.serializer.get(),
                                   &env.dataset().type_vocab,
                                   &env.dataset().relation_vocab);
  const int hidden = env.options().hidden_dim;
  doduo::nn::Tensor embeddings({data.num_columns(), hidden});
  std::vector<std::string> column_labels;
  int flat = 0;
  for (const auto& table : data.tables) {
    const doduo::nn::Tensor column_embeddings =
        annotator.ColumnEmbeddings(table).value();
    for (int c = 0; c < table.num_columns(); ++c, ++flat) {
      std::copy(column_embeddings.row(c), column_embeddings.row(c) + hidden,
                embeddings.row(flat));
      column_labels.push_back(table.id() + "." + table.column(c).name);
    }
  }

  // Cluster with k-means (cosine space).
  doduo::cluster::NormalizeRows(&embeddings);
  doduo::cluster::KMeans::Options kmeans_options;
  kmeans_options.k = static_cast<int>(data.group_names.size());
  kmeans_options.seed = options.seed;
  doduo::cluster::KMeans kmeans(kmeans_options);
  const std::vector<int> clusters = kmeans.Cluster(embeddings);

  const auto scores =
      doduo::cluster::ScoreClustering(clusters, data.ground_truth);
  std::printf("clustering quality: homogeneity %.1f%%, completeness "
              "%.1f%%, v-measure %.1f%%\n\n",
              100.0 * scores.homogeneity, 100.0 * scores.completeness,
              100.0 * scores.v_measure);

  // Show the discovered groups.
  std::map<int, std::vector<std::string>> by_cluster;
  for (size_t i = 0; i < clusters.size(); ++i) {
    by_cluster[clusters[i]].push_back(column_labels[i]);
  }
  for (const auto& [cluster, members] : by_cluster) {
    std::printf("group %2d:", cluster);
    for (const std::string& member : members) {
      std::printf(" %s", member.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
