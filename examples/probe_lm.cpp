// Ask the pre-trained (NOT fine-tuned) language model what it knows:
// fill-in-the-blank probing over the knowledge base, as in Appendix A.5
// of the paper.
//
//   ./build/examples/probe_lm

#include <cstdio>

#include "doduo/experiments/env.h"
#include "doduo/probe/prober.h"
#include "doduo/util/env.h"

int main() {
  using namespace doduo::experiments;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = 50;  // probing uses the KB, not the tables
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  doduo::probe::LmProber prober(env.PretrainedLm(), &env.tokenizer());

  // A concrete example first: does the LM prefer "director" for a person
  // that the KB says directs films?
  const auto& directors =
      env.kb().type(env.kb().TypeId("film.director")).entities;
  const doduo::probe::Template tmpl =
      doduo::probe::MakeTypeTemplate(directors[0]);
  std::printf("template: \"%s ____ %s\"\n", tmpl.prefix.c_str(),
              tmpl.suffix.c_str());
  for (const char* candidate : {"director", "producer", "country", "river"}) {
    std::printf("  PPL(%-9s) = %.2f\n", candidate,
                prober.ScoreCompletion(tmpl, candidate));
  }

  // Then the aggregate ranking over all types.
  doduo::util::Rng rng(options.seed + 1);
  std::printf("\naverage rank of the true type among %d candidates "
              "(1 = LM always right, %.1f = chance):\n",
              env.kb().num_types(), (env.kb().num_types() + 1) / 2.0);
  for (const auto& row : prober.ProbeTypes(env.kb(), /*samples=*/5, &rng)) {
    std::printf("  %-28s avg rank %5.2f   PPL/avgPPL %.3f\n",
                row.label.c_str(), row.avg_rank, row.ppl_ratio);
  }
  return 0;
}
