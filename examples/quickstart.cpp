// Quickstart: the toolbox in ~40 effective lines.
//
// Builds a small WikiTable-style benchmark, fine-tunes a DODUO model on it
// (from an MLM-pre-trained encoder), and then annotates a brand-new table
// with column types and column relations — the paper's "few lines of
// Python" toolbox experience, in C++.
//
//   ./build/examples/quickstart
//
// Runtime: a couple of minutes on one CPU core (set DODUO_SCALE=0.5 to
// halve it).

#include <cstdio>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"

int main() {
  using namespace doduo::experiments;

  // 1. A benchmark environment: synthetic knowledge base, labeled tables,
  //    WordPiece vocabulary, and a cached MLM-pre-trained encoder.
  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(600);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  // 2. Fine-tune DODUO (multi-task: column types + column relations).
  DoduoVariant variant;
  variant.epochs = 20;
  DoduoRun run = RunDoduo(&env, variant);
  std::printf("fine-tuned: type micro F1 %.1f%%, relation micro F1 %.1f%%\n",
              100.0 * run.types.micro.f1, 100.0 * run.relations.micro.f1);

  // 3. Annotate a new table the model has never seen.
  doduo::table::Table table("demo");
  table.AddColumn({"", {"happy feet", "silent storm", "hidden valley"}});
  table.AddColumn({"", {"george miller", "judy morris", "warren coleman"}});
  table.AddColumn({"", {"usa", "france", "australia"}});

  doduo::core::Annotator annotator(run.model.get(), run.serializer.get(),
                                   &env.dataset().type_vocab,
                                   &env.dataset().relation_vocab);
  // Annotator calls return util::Result: check .ok()/.status() on untrusted
  // input, or .value() when the table is known-good (aborts on error).
  auto types_result = annotator.AnnotateTypes(table);
  if (!types_result.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 types_result.status().ToString().c_str());
    return 1;
  }
  const auto types = std::move(types_result).value();
  const auto relations = annotator.AnnotateKeyRelations(table).value();

  std::printf("\ncolumn annotations:\n");
  for (size_t c = 0; c < types.size(); ++c) {
    std::printf("  column %zu: ", c);
    for (size_t i = 0; i < types[c].size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "", types[c][i].c_str());
    }
    std::printf("\n");
  }
  std::printf("relations from the key column:\n");
  for (size_t c = 0; c < relations.size(); ++c) {
    std::printf("  (col 0, col %zu): %s\n", c + 1, relations[c].c_str());
  }

  // 4. Bulk annotation: hand the annotator many tables at once and the
  //    forward passes fan out across the compute pool (DODUO_NUM_THREADS).
  //    Results are identical to looping AnnotateTypes table by table.
  std::vector<doduo::table::Table> fleet(4, table);
  const auto batch_types = annotator.AnnotateTypesBatch(fleet).value();
  std::printf("batch of %zu tables annotated; first column of each:\n",
              fleet.size());
  for (size_t t = 0; t < batch_types.size(); ++t) {
    std::printf("  table %zu: %s\n", t, batch_types[t][0][0].c_str());
  }
  return 0;
}
