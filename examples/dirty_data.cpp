// Dirty-data regression workload (the paper's "clean data vs dirty data"
// future-work scenario, Appendix B, grown into DESIGN §15): train on clean
// tables, then exercise the full dirty-input pipeline —
//
//   1. robust-annotate a corrupted test split and measure precision at
//      fixed abstention rates {0%, 5%, 10%} (calibrated confidence must
//      trade coverage for precision);
//   2. run the checked-in malformed-CSV fixtures (tests/data/dirty)
//      through ParseCsv + ColumnSanitizer + Annotator and print every
//      column's outcome: labels, abstention, or machine-readable skip
//      reason.
//
//   ./build/examples/dirty_data [fixture_dir]
//
// fixture_dir defaults to tests/data/dirty relative to the working
// directory; pass it explicitly when running from elsewhere.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/experiments/runners.h"
#include "doduo/synth/corruption.h"
#include "doduo/table/render.h"
#include "doduo/table/sanitizer.h"
#include "doduo/util/csv.h"
#include "doduo/util/env.h"

namespace {

struct Scored {
  double confidence = 0.0;
  bool correct = false;
};

void PrintOutcome(const std::string& column,
                  const doduo::core::ColumnOutcome& outcome) {
  if (!outcome.skipped_reason.empty()) {
    std::printf("    %-12s [skipped: %s]\n", column.c_str(),
                outcome.skipped_reason.c_str());
  } else if (outcome.abstained) {
    std::printf("    %-12s [abstained, confidence=%.3f]\n", column.c_str(),
                outcome.confidence);
  } else {
    std::string labels;
    for (const std::string& label : outcome.labels) {
      if (!labels.empty()) labels += ", ";
      labels += label;
    }
    std::printf("    %-12s %s (confidence=%.3f)\n", column.c_str(),
                labels.c_str(), outcome.confidence);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace doduo::experiments;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(600);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  DoduoVariant variant;
  variant.epochs = 20;
  DoduoRun run = RunDoduo(&env, variant);
  std::printf("clean test tables: type micro F1 %.1f%%\n",
              100.0 * run.types.micro.f1);
  std::printf("fitted calibration temperature: %.4f\n\n",
              run.model->config().calibration_temperature);

  // Corrupt the test split: 20% missing cells + 10% typos.
  doduo::util::Rng rng(options.seed + 44);
  doduo::synth::CorruptionOptions corruption;
  corruption.missing_prob = 0.2;
  corruption.typo_prob = 0.1;
  const auto dirty =
      doduo::synth::CorruptDataset(env.dataset(), corruption, &rng);

  // Robust-annotate every corrupted test table and score each annotated
  // column's calibrated confidence against the gold types.
  doduo::core::Annotator annotator(run.model.get(), run.serializer.get(),
                                   &env.dataset().type_vocab,
                                   /*relation_vocab=*/nullptr);
  std::vector<Scored> scored;
  size_t skipped = 0;
  for (const size_t t : env.splits().test) {
    const auto& gold = dirty.tables[t];
    const auto outcomes = annotator.AnnotateTypesRobust(gold.table);
    for (size_t c = 0; c < outcomes.size(); ++c) {
      if (!outcomes[c].annotated()) {
        ++skipped;
        continue;
      }
      Scored s;
      s.confidence = outcomes[c].confidence;
      for (const int type_id : gold.column_types[c]) {
        if (outcomes[c].labels.front() ==
            env.dataset().type_vocab.Name(type_id)) {
          s.correct = true;
          break;
        }
      }
      scored.push_back(s);
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.confidence < b.confidence;
            });

  // The regression table: abstain on the lowest-confidence k% and report
  // precision of what remains. Calibration is doing its job when the
  // precision column is non-decreasing down the table.
  std::printf("dirty test split (20%% missing + 10%% typos), %zu annotated"
              " columns, %zu sanitizer-skipped\n",
              scored.size(), skipped);
  std::printf("%-12s %-10s %-10s %s\n", "abstention", "kept", "precision",
              "confidence threshold");
  for (const double rate : {0.0, 0.05, 0.10}) {
    const size_t drop =
        static_cast<size_t>(rate * static_cast<double>(scored.size()));
    size_t correct = 0;
    for (size_t i = drop; i < scored.size(); ++i) {
      correct += scored[i].correct ? 1u : 0u;
    }
    const size_t kept = scored.size() - drop;
    std::printf("%-12.0f %-10zu %-10.1f %.3f\n", 100 * rate, kept,
                kept == 0 ? 0.0 : 100.0 * correct / kept,
                drop == 0 ? 0.0 : scored[drop - 1].confidence);
  }

  // Per-column outcomes for the checked-in malformed-CSV corpus.
  const std::string fixture_dir = argc > 1 ? argv[1] : "tests/data/dirty";
  std::printf("\nmalformed-CSV fixtures (%s):\n", fixture_dir.c_str());
  for (const char* name : {"catalog.csv", "mojibake.csv", "ghost.csv"}) {
    const std::string path = fixture_dir + "/" + std::string(name);
    auto rows = doduo::util::ReadCsvFile(path);
    if (!rows.ok()) {
      std::printf("  %s: %s (pass the fixture directory as argv[1])\n", name,
                  rows.status().ToString().c_str());
      continue;
    }
    auto table = doduo::table::TableFromCsvRows(rows.value(),
                                                /*has_header=*/true, name);
    if (!table.ok()) {
      std::printf("  %s: %s\n", name, table.status().ToString().c_str());
      continue;
    }
    std::printf("  %s:\n", name);
    doduo::core::AnnotateOptions annotate;
    annotate.abstain_below = 0.2;
    const auto outcomes =
        annotator.AnnotateTypesRobust(table.value(), annotate);
    for (size_t c = 0; c < outcomes.size(); ++c) {
      PrintOutcome(table.value().column(static_cast<int>(c)).name,
                   outcomes[c]);
    }
  }
  return 0;
}
