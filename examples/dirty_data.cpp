// Dirty-data robustness demo (the paper's "clean data vs dirty data"
// future-work scenario, Appendix B): train on clean tables, then watch how
// prediction quality degrades as cells go missing, suffer typos, or get
// misplaced.
//
//   ./build/examples/dirty_data

#include <cstdio>

#include "doduo/experiments/runners.h"
#include "doduo/synth/corruption.h"
#include "doduo/table/render.h"
#include "doduo/util/env.h"

int main() {
  using namespace doduo::experiments;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(600);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  DoduoVariant variant;
  variant.epochs = 20;
  DoduoRun run = RunDoduo(&env, variant);
  std::printf("clean test tables: type micro F1 %.1f%%\n\n",
              100.0 * run.types.micro.f1);

  // Show one table before/after corruption.
  doduo::util::Rng rng(options.seed + 44);
  doduo::table::Table sample =
      env.dataset().tables[env.splits().test[0]].table;
  std::printf("clean table:\n%s\n",
              doduo::table::RenderTable(sample, 4).c_str());
  doduo::synth::CorruptionOptions preview;
  preview.missing_prob = 0.2;
  preview.typo_prob = 0.2;
  doduo::synth::CorruptTable(&sample, preview, &rng);
  std::printf("after 20%% missing + 20%% typos:\n%s\n",
              doduo::table::RenderTable(sample, 4).c_str());

  // Sweep corruption severity.
  std::printf("%-28s %s\n", "corruption", "type micro F1");
  for (double rate : {0.0, 0.1, 0.2, 0.4}) {
    doduo::synth::CorruptionOptions corruption;
    corruption.missing_prob = rate;
    corruption.typo_prob = rate / 2;
    const auto dirty =
        doduo::synth::CorruptDataset(env.dataset(), corruption, &rng);
    const auto result =
        run.trainer->EvaluateTypes(dirty, env.splits().test);
    std::printf("missing %.0f%% + typos %.0f%%      %.1f%%\n", 100 * rate,
                50 * rate, 100.0 * result.micro.f1);
  }
  return 0;
}
