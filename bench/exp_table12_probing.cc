// Reproduces Tables 12/13 of the paper (Appendix A.5): template-based
// probing of the *pre-trained, not fine-tuned* language model. For every
// column type (and relation), the true label's completion is ranked among
// all candidates by masked pseudo-perplexity.
//
// Expected shape (paper): the LM clearly stores factual knowledge — many
// types rank far above chance; rare/awkward types sit at the bottom; the
// spread for relations is narrower than for types.

#include <cstdio>

#include "doduo/experiments/env.h"
#include "doduo/probe/prober.h"
#include "doduo/util/env.h"
#include "doduo/util/string_util.h"
#include "doduo/util/table_printer.h"

namespace {

void PrintTopBottom(const char* title,
                    const std::vector<doduo::probe::ProbeRow>& rows,
                    int num_candidates) {
  std::printf("%s (%d candidates; chance avg rank %.1f)\n", title,
              num_candidates, (num_candidates + 1) / 2.0);
  doduo::util::TablePrinter printer(
      {"", "Label", "Avg. rank (v)", "PPL / Avg.PPL (v)"});
  const size_t show = std::min<size_t>(5, rows.size());
  for (size_t i = 0; i < show; ++i) {
    printer.AddRow({i == 0 ? "Top" : "", rows[i].label,
                    doduo::util::FormatDouble(rows[i].avg_rank, 2),
                    doduo::util::FormatDouble(rows[i].ppl_ratio, 3)});
  }
  for (size_t i = rows.size() >= show ? rows.size() - show : 0;
       i < rows.size(); ++i) {
    printer.AddRow({i + show == rows.size() ? "Bottom" : "",
                    rows[i].label,
                    doduo::util::FormatDouble(rows[i].avg_rank, 2),
                    doduo::util::FormatDouble(rows[i].ppl_ratio, 3)});
  }
  std::printf("%s", printer.ToString().c_str());
}

}  // namespace

int main() {
  using namespace doduo::experiments;

  const int samples = Scaled(8);
  doduo::util::Rng rng(doduo::util::ExperimentSeed() + 21);

  {
    EnvOptions options;
    options.mode = BenchmarkMode::kWikiTable;
    options.num_tables = 50;  // probing does not use the tables
    options.seed = doduo::util::ExperimentSeed();
    Env env(options);
    doduo::probe::LmProber prober(env.PretrainedLm(), &env.tokenizer());

    std::printf("== Table 12: LM probing on the WikiTable KB ==\n");
    const auto type_rows = prober.ProbeTypes(env.kb(), samples, &rng);
    PrintTopBottom("column types", type_rows, env.kb().num_types());
    const auto relation_rows =
        prober.ProbeRelations(env.kb(), samples, &rng);
    PrintTopBottom("column relations", relation_rows,
                   env.kb().num_relations());
  }
  {
    EnvOptions options;
    options.mode = BenchmarkMode::kVizNet;
    options.num_tables = 50;
    options.seed = doduo::util::ExperimentSeed();
    Env env(options);
    doduo::probe::LmProber prober(env.PretrainedLm(), &env.tokenizer());

    std::printf("== Table 13: LM probing on the VizNet KB ==\n");
    const auto type_rows = prober.ProbeTypes(env.kb(), samples, &rng);
    PrintTopBottom("column types", type_rows, env.kb().num_types());
  }
  return 0;
}
