// Reproduces Table 6 of the paper: the WikiTable ablation — DODUO vs
// row/column-shuffled training data, DOSOLO (no multi-task), and
// DOSOLO_SCol (single-column model).
//
// Expected shape (paper): row shuffle degrades subtly, column shuffle does
// not; DOSOLO slightly below DODUO on both tasks; DOSOLO_SCol far below
// (types hit harder than relations in relative terms on types).

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/string_util.h"
#include "doduo/util/table_printer.h"

namespace {

using doduo::eval::Pct;

std::string Delta(double value, double reference) {
  if (reference <= 0.0) return "-";
  const double drop = 100.0 * (reference - value) / reference;
  return doduo::util::FormatDouble(drop, 1) + "% v";
}

}  // namespace

int main() {
  using namespace doduo::experiments;
  using doduo::core::TaskSet;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);
  doduo::util::Rng shuffle_rng(options.seed + 77);

  std::printf("== Table 6: WikiTable ablation (micro F1) ==\n");

  const DoduoRun doduo = RunDoduo(&env, DoduoVariant{});

  // Row / column shuffles transform a copy of the dataset (labels follow
  // columns; rows are label-invariant).
  auto shuffled_rows = env.dataset();
  doduo::table::ShuffleAllRows(&shuffled_rows.tables, &shuffle_rng);
  const DoduoRun rows_run =
      RunDoduoOn(&env, shuffled_rows, env.splits(), DoduoVariant{});

  auto shuffled_cols = env.dataset();
  doduo::table::ShuffleAllColumns(&shuffled_cols.tables, &shuffle_rng);
  const DoduoRun cols_run =
      RunDoduoOn(&env, shuffled_cols, env.splits(), DoduoVariant{});

  // DOSOLO: one task at a time (no multi-task transfer).
  DoduoVariant dosolo_types;
  dosolo_types.tasks = static_cast<int>(TaskSet::kTypesOnly);
  const DoduoRun dosolo_type_run = RunDoduo(&env, dosolo_types);
  DoduoVariant dosolo_rels;
  dosolo_rels.tasks = static_cast<int>(TaskSet::kRelationsOnly);
  const DoduoRun dosolo_rel_run = RunDoduo(&env, dosolo_rels);

  // DOSOLO_SCol: single-column/-pair inputs, single task.
  DoduoVariant scol_types = dosolo_types;
  scol_types.input_mode = doduo::core::InputMode::kSingleColumn;
  const DoduoRun scol_type_run = RunDoduo(&env, scol_types);
  DoduoVariant scol_rels = dosolo_rels;
  scol_rels.input_mode = doduo::core::InputMode::kSingleColumn;
  const DoduoRun scol_rel_run = RunDoduo(&env, scol_rels);

  const double ref_type = doduo.types.micro.f1;
  const double ref_rel = doduo.relations.micro.f1;

  doduo::util::TablePrinter printer(
      {"Method", "Type F1", "(drop)", "Rel F1", "(drop)"});
  printer.AddRow({"Doduo", Pct(ref_type), "-", Pct(ref_rel), "-"});
  printer.AddRow({"w/ shuffled rows", Pct(rows_run.types.micro.f1),
                  Delta(rows_run.types.micro.f1, ref_type),
                  Pct(rows_run.relations.micro.f1),
                  Delta(rows_run.relations.micro.f1, ref_rel)});
  printer.AddRow({"w/ shuffled cols", Pct(cols_run.types.micro.f1),
                  Delta(cols_run.types.micro.f1, ref_type),
                  Pct(cols_run.relations.micro.f1),
                  Delta(cols_run.relations.micro.f1, ref_rel)});
  printer.AddRow({"Dosolo", Pct(dosolo_type_run.types.micro.f1),
                  Delta(dosolo_type_run.types.micro.f1, ref_type),
                  Pct(dosolo_rel_run.relations.micro.f1),
                  Delta(dosolo_rel_run.relations.micro.f1, ref_rel)});
  printer.AddRow({"Dosolo_SCol", Pct(scol_type_run.types.micro.f1),
                  Delta(scol_type_run.types.micro.f1, ref_type),
                  Pct(scol_rel_run.relations.micro.f1),
                  Delta(scol_rel_run.relations.micro.f1, ref_rel)});
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
