// google-benchmark microbenchmarks of the library's hot kernels: dense
// matmul, attention/encoder forward, WordPiece tokenization, table
// serialization, Sherlock feature extraction, and k-means.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "doduo/baselines/sherlock_features.h"
#include "doduo/cluster/kmeans.h"
#include "doduo/core/annotator.h"
#include "doduo/nn/ops.h"
#include "doduo/table/serializer.h"
#include "doduo/text/wordpiece_trainer.h"
#include "doduo/transformer/bert.h"
#include "doduo/util/env.h"
#include "doduo/util/metrics.h"
#include "doduo/util/thread_pool.h"

namespace {

using doduo::nn::Tensor;

// GEMM at a fixed thread-pool size; Args are (matrix size, threads).
// threads=1 is the serial path (the parallel dispatch gate sees a
// single-thread pool and runs inline), so BM_MatMul/256/1 vs /256/4 is the
// serial-vs-parallel comparison the scaling PRs track.
void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  doduo::util::SetComputeThreads(static_cast<int>(state.range(1)));
  doduo::util::Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    doduo::nn::MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  doduo::util::SetComputeThreads(1);
}
BENCHMARK(BM_MatMul)
    ->ArgPair(64, 1)
    ->ArgPair(128, 1)
    ->ArgPair(256, 1)
    ->ArgPair(256, 2)
    ->ArgPair(256, 4)
    ->ArgPair(256, 8);

void BM_MatMulTransposedB(benchmark::State& state) {
  const int64_t n = state.range(0);
  doduo::util::SetComputeThreads(static_cast<int>(state.range(1)));
  doduo::util::Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    doduo::nn::MatMulTransposedB(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  doduo::util::SetComputeThreads(1);
}
BENCHMARK(BM_MatMulTransposedB)->ArgPair(256, 1)->ArgPair(256, 4);

void BM_SoftmaxRows(benchmark::State& state) {
  doduo::util::Rng rng(2);
  Tensor logits({128, 128});
  logits.FillNormal(&rng, 1.0f);
  Tensor probs;
  for (auto _ : state) {
    doduo::nn::SoftmaxRows(logits, &probs);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

// Attention forward at (seq, fused): fused=1 is the strided-view packed-QKV
// path, fused=0 the retained copy-based reference (the pre-fusion kernel
// sequence). Reports allocs_per_iter — Tensor heap allocations per forward —
// which must be 0 at steady state in DODUO_COUNT_ALLOCS builds.
void BM_AttentionForward(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  const bool fused = state.range(1) != 0;
  doduo::util::Rng rng(11);
  doduo::transformer::TransformerConfig config;
  config.max_positions = seq;
  config.hidden_dim = 64;
  config.num_heads = 4;
  config.ffn_dim = 256;
  config.num_layers = 1;
  config.dropout = 0.0f;
  doduo::transformer::MultiHeadSelfAttention attn("bench", config, &rng);
  attn.set_use_fused(fused);
  Tensor x({seq, config.hidden_dim});
  x.FillNormal(&rng, 1.0f);
  attn.Forward(x, nullptr);  // warm up buffers
  doduo::nn::ResetTensorAllocCount();
  for (auto _ : state) {
    const Tensor& y = attn.Forward(x, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(doduo::nn::TensorAllocCount()),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_AttentionForward)
    ->ArgPair(64, 1)
    ->ArgPair(64, 0)
    ->ArgPair(128, 1)
    ->ArgPair(128, 0)
    ->ArgPair(512, 1)
    ->ArgPair(512, 0);

doduo::transformer::TransformerConfig BenchEncoderConfig() {
  doduo::transformer::TransformerConfig config;
  config.vocab_size = 2000;
  config.max_positions = 192;
  config.hidden_dim = 64;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 256;
  config.dropout = 0.0f;
  return config;
}

// Full encoder stack (attention + fused bias/GELU FFN) at (seq, fused),
// with the allocations-per-forward report.
void BM_EncoderForward(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  const bool fused = state.range(1) != 0;
  doduo::util::Rng rng(12);
  doduo::transformer::TransformerConfig config = BenchEncoderConfig();
  config.max_positions = seq;
  doduo::transformer::Encoder encoder("bench", config, &rng);
  encoder.set_use_fused(fused);
  encoder.set_training(false);
  Tensor x({seq, config.hidden_dim});
  x.FillNormal(&rng, 1.0f);
  encoder.Forward(x, nullptr);  // warm up buffers
  doduo::nn::ResetTensorAllocCount();
  for (auto _ : state) {
    const Tensor& y = encoder.Forward(x, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(doduo::nn::TensorAllocCount()),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_EncoderForward)
    ->ArgPair(64, 1)
    ->ArgPair(64, 0)
    ->ArgPair(128, 1)
    ->ArgPair(128, 0)
    ->ArgPair(512, 1)
    ->ArgPair(512, 0);

void BM_BertForward(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  doduo::util::Rng rng(3);
  doduo::transformer::BertModel model("bench", BenchEncoderConfig(), &rng);
  model.set_training(false);
  std::vector<int> ids(static_cast<size_t>(seq));
  for (int i = 0; i < seq; ++i) {
    ids[static_cast<size_t>(i)] = 5 + static_cast<int>(rng.NextUint64(1900));
  }
  for (auto _ : state) {
    const Tensor& hidden = model.Forward(ids);
    benchmark::DoNotOptimize(hidden.data());
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_BertForward)->Arg(32)->Arg(96)->Arg(160);

void BM_BertForwardBackward(benchmark::State& state) {
  const int seq = 96;
  doduo::util::Rng rng(4);
  doduo::transformer::BertModel model("bench", BenchEncoderConfig(), &rng);
  std::vector<int> ids(static_cast<size_t>(seq));
  for (int i = 0; i < seq; ++i) {
    ids[static_cast<size_t>(i)] = 5 + static_cast<int>(rng.NextUint64(1900));
  }
  Tensor grad({seq, 64});
  grad.FillNormal(&rng, 0.1f);
  for (auto _ : state) {
    model.Forward(ids);
    model.Backward(grad);
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_BertForwardBackward);

struct TokenizerFixture {
  TokenizerFixture() {
    std::vector<std::string> lines;
    for (int i = 0; i < 200; ++i) {
      lines.push_back("george miller directed happy feet in nineteen " +
                      std::to_string(i));
    }
    doduo::text::WordPieceTrainer trainer({.vocab_size = 500,
                                           .min_pair_frequency = 2});
    vocab = trainer.TrainFromLines(lines);
  }
  doduo::text::Vocab vocab;
};

void BM_WordPieceEncode(benchmark::State& state) {
  static TokenizerFixture fixture;
  doduo::text::WordPieceTokenizer tokenizer(&fixture.vocab);
  const std::string text =
      "george miller directed happy feet and produced mad max in 1979";
  for (auto _ : state) {
    auto ids = tokenizer.Encode(text);
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_WordPieceEncode);

void BM_SerializeTable(benchmark::State& state) {
  static TokenizerFixture fixture;
  doduo::text::WordPieceTokenizer tokenizer(&fixture.vocab);
  doduo::table::TableSerializer serializer(&tokenizer, {});
  doduo::table::Table table("bench");
  for (int c = 0; c < 5; ++c) {
    doduo::table::Column column;
    column.name = "col" + std::to_string(c);
    for (int r = 0; r < 6; ++r) {
      column.values.push_back("george miller " + std::to_string(r));
    }
    table.AddColumn(std::move(column));
  }
  for (auto _ : state) {
    auto serialized = serializer.SerializeTable(table).value();
    benchmark::DoNotOptimize(serialized.token_ids.data());
  }
}
BENCHMARK(BM_SerializeTable);

void BM_SherlockFeatures(benchmark::State& state) {
  doduo::table::Column column;
  doduo::util::Rng rng(5);
  for (int r = 0; r < 20; ++r) {
    column.values.push_back("value " + std::to_string(rng.NextUint64(1000)));
  }
  for (auto _ : state) {
    auto features = doduo::baselines::ExtractSherlockFeatures(column);
    benchmark::DoNotOptimize(features.data());
  }
}
BENCHMARK(BM_SherlockFeatures);

// Batched annotation throughput (tables/sec): AnnotateTypesBatch over a
// fleet of tables at a given pool size, vs. the threads=1 row which is the
// sequential-loop equivalent.
struct BatchAnnotateFixture {
  BatchAnnotateFixture() : tokenizer(&shared().vocab) {
    config.encoder.vocab_size = shared().vocab.size();
    config.encoder.max_positions = 128;
    config.encoder.hidden_dim = 64;
    config.encoder.num_layers = 2;
    config.encoder.num_heads = 4;
    config.encoder.ffn_dim = 256;
    config.encoder.dropout = 0.0f;
    config.serializer.max_total_tokens = 128;
    config.num_types = 8;
    config.num_relations = 0;
    config.tasks = doduo::core::TaskSet::kTypesOnly;
    for (int t = 0; t < config.num_types; ++t) {
      types.AddLabel("type" + std::to_string(t));
    }
    doduo::util::Rng rng(7);
    model = std::make_unique<doduo::core::DoduoModel>(config, &rng);
    model->set_training(false);
    serializer = std::make_unique<doduo::table::TableSerializer>(
        &tokenizer, config.serializer);
    for (int t = 0; t < 16; ++t) {
      doduo::table::Table table("bench" + std::to_string(t));
      for (int c = 0; c < 4; ++c) {
        doduo::table::Column column;
        column.name = "col" + std::to_string(c);
        for (int r = 0; r < 6; ++r) {
          column.values.push_back("george miller " + std::to_string(t + r));
        }
        table.AddColumn(std::move(column));
      }
      tables.push_back(std::move(table));
    }
  }

  static TokenizerFixture& shared() {
    static TokenizerFixture fixture;
    return fixture;
  }

  doduo::text::WordPieceTokenizer tokenizer;
  doduo::core::DoduoConfig config;
  doduo::table::LabelVocab types;
  std::unique_ptr<doduo::core::DoduoModel> model;
  std::unique_ptr<doduo::table::TableSerializer> serializer;
  std::vector<doduo::table::Table> tables;
};

void BM_AnnotateTypesBatch(benchmark::State& state) {
  static BatchAnnotateFixture fixture;
  doduo::util::SetComputeThreads(static_cast<int>(state.range(0)));
  doduo::core::Annotator annotator(fixture.model.get(),
                                   fixture.serializer.get(), &fixture.types,
                                   nullptr);
  for (auto _ : state) {
    auto results = annotator.AnnotateTypesBatch(fixture.tables).value();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.tables.size()));
  doduo::util::SetComputeThreads(1);
}
BENCHMARK(BM_AnnotateTypesBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_KMeans(benchmark::State& state) {
  doduo::util::Rng rng(6);
  Tensor points({200, 64});
  points.FillNormal(&rng, 1.0f);
  doduo::cluster::KMeans::Options options;
  options.k = 15;
  options.restarts = 1;
  doduo::cluster::KMeans kmeans(options);
  for (auto _ : state) {
    auto assignment = kmeans.Cluster(points);
    benchmark::DoNotOptimize(assignment.data());
  }
}
BENCHMARK(BM_KMeans);

}  // namespace

// BENCHMARK_MAIN plus an optional pipeline-metrics dump: run with
// DODUO_BENCH_METRICS=1 to get the per-stage latency histograms and
// counters (DESIGN §10) as JSON on stderr after the benchmark table.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (doduo::util::GetEnvInt("DODUO_BENCH_METRICS", 0) != 0) {
    std::fprintf(stderr, "%s\n", doduo::util::MetricsToJson().c_str());
  }
  return 0;
}
