// google-benchmark microbenchmarks of the library's hot kernels: dense
// matmul, attention/encoder forward, WordPiece tokenization, table
// serialization, Sherlock feature extraction, and k-means.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "doduo/baselines/sherlock_features.h"
#include "doduo/cluster/kmeans.h"
#include "doduo/core/annotator.h"
#include "doduo/core/model_io.h"
#include "doduo/core/replica_pool.h"
#include "doduo/nn/ops.h"
#include "doduo/nn/quant.h"
#include "doduo/table/serializer.h"
#include "doduo/text/wordpiece_trainer.h"
#include "doduo/transformer/bert.h"
#include "doduo/util/env.h"
#include "doduo/util/metrics.h"
#include "doduo/util/thread_pool.h"

namespace {

using doduo::nn::Tensor;

// GEMM at a fixed thread-pool size; Args are (matrix size, threads).
// threads=1 is the serial path (the parallel dispatch gate sees a
// single-thread pool and runs inline), so BM_MatMul/256/1 vs /256/4 is the
// serial-vs-parallel comparison the scaling PRs track.
void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  doduo::util::SetComputeThreads(static_cast<int>(state.range(1)));
  doduo::util::Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    doduo::nn::MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  doduo::util::SetComputeThreads(1);
}
BENCHMARK(BM_MatMul)
    ->ArgPair(64, 1)
    ->ArgPair(128, 1)
    ->ArgPair(256, 1)
    ->ArgPair(256, 2)
    ->ArgPair(256, 4)
    ->ArgPair(256, 8);

void BM_MatMulTransposedB(benchmark::State& state) {
  const int64_t n = state.range(0);
  doduo::util::SetComputeThreads(static_cast<int>(state.range(1)));
  doduo::util::Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    doduo::nn::MatMulTransposedB(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  doduo::util::SetComputeThreads(1);
}
BENCHMARK(BM_MatMulTransposedB)->ArgPair(256, 1)->ArgPair(256, 4);

// Bench-local fp32 scalar GEMM. The production dispatcher caches its SIMD
// choice once per process, so the "fp32 with no vector units" baseline the
// int8 speedup claim compares against (DESIGN §14) is computed here rather
// than by flipping DODUO_SIMD mid-run.
void Fp32ScalarGemm(const Tensor& a, const Tensor& b, Tensor* out) {
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  out->ResizeUninitialized({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) pc[i * n + j] = 0.0f;
    for (int64_t l = 0; l < k; ++l) {
      const float av = pa[i * k + l];
      for (int64_t j = 0; j < n; ++j) pc[i * n + j] += av * pb[l * n + j];
    }
  }
}

void BM_MatMulScalarRef(benchmark::State& state) {
  const int64_t n = state.range(0);
  doduo::util::Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  a.FillNormal(&rng, 1.0f);
  b.FillNormal(&rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    Fp32ScalarGemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulScalarRef)->Arg(64)->Arg(128)->Arg(256);

// Int8 GEMM through Int8Linear — the full quantized inference cost per
// call: dynamic per-row activation quantization, the int8 dot kernel, and
// the fused dequant epilogue. Weight quantization happens once outside the
// loop, mirroring Linear's prequantized cache. items_per_second is directly
// comparable to BM_MatMul at the same size.
void BM_Int8Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  doduo::util::SetComputeThreads(static_cast<int>(state.range(1)));
  doduo::util::Rng rng(1);
  Tensor x({n, n});
  Tensor w({n, n});
  x.FillNormal(&rng, 1.0f);
  w.FillNormal(&rng, 1.0f);
  doduo::nn::QuantizedWeight qw;
  doduo::nn::QuantizeWeight(w, &qw);
  Tensor y;
  for (auto _ : state) {
    doduo::nn::Int8Linear(x, doduo::nn::View(qw), nullptr, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(doduo::nn::Int8KernelName());
  doduo::util::SetComputeThreads(1);
}
BENCHMARK(BM_Int8Gemm)
    ->ArgPair(64, 1)
    ->ArgPair(128, 1)
    ->ArgPair(256, 1)
    ->ArgPair(256, 4);

// Raw int8 dot product per available ISA kernel (Arg = index into
// Int8DotKernels(): 0 scalar, then SSE2/AVX2 when the CPU has them).
void BM_Int8Dot(benchmark::State& state) {
  const auto kernels = doduo::nn::Int8DotKernels();
  const auto which = static_cast<size_t>(state.range(0));
  if (which >= kernels.size()) {
    state.SkipWithError("kernel not available on this CPU");
    return;
  }
  const int64_t k = 4096;
  std::vector<int8_t> a(static_cast<size_t>(k));
  std::vector<int8_t> b(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    a[static_cast<size_t>(i)] = static_cast<int8_t>(i * 7 % 255 - 127);
    b[static_cast<size_t>(i)] = static_cast<int8_t>(i * 13 % 255 - 127);
  }
  for (auto _ : state) {
    int32_t dot = kernels[which].fn(a.data(), b.data(), k);
    benchmark::DoNotOptimize(dot);
  }
  state.SetLabel(kernels[which].name);
  state.SetItemsProcessed(state.iterations() * 2 * k);
}
BENCHMARK(BM_Int8Dot)->Arg(0)->Arg(1)->Arg(2);

void BM_SoftmaxRows(benchmark::State& state) {
  doduo::util::Rng rng(2);
  Tensor logits({128, 128});
  logits.FillNormal(&rng, 1.0f);
  Tensor probs;
  for (auto _ : state) {
    doduo::nn::SoftmaxRows(logits, &probs);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

// Attention forward at (seq, fused): fused=1 is the strided-view packed-QKV
// path, fused=0 the retained copy-based reference (the pre-fusion kernel
// sequence). Reports allocs_per_iter — Tensor heap allocations per forward —
// which must be 0 at steady state in DODUO_COUNT_ALLOCS builds.
void BM_AttentionForward(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  const bool fused = state.range(1) != 0;
  doduo::util::Rng rng(11);
  doduo::transformer::TransformerConfig config;
  config.max_positions = seq;
  config.hidden_dim = 64;
  config.num_heads = 4;
  config.ffn_dim = 256;
  config.num_layers = 1;
  config.dropout = 0.0f;
  doduo::transformer::MultiHeadSelfAttention attn("bench", config, &rng);
  attn.set_use_fused(fused);
  Tensor x({seq, config.hidden_dim});
  x.FillNormal(&rng, 1.0f);
  attn.Forward(x, nullptr);  // warm up buffers
  doduo::nn::ResetTensorAllocCount();
  for (auto _ : state) {
    const Tensor& y = attn.Forward(x, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(doduo::nn::TensorAllocCount()),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_AttentionForward)
    ->ArgPair(64, 1)
    ->ArgPair(64, 0)
    ->ArgPair(128, 1)
    ->ArgPair(128, 0)
    ->ArgPair(512, 1)
    ->ArgPair(512, 0);

doduo::transformer::TransformerConfig BenchEncoderConfig() {
  doduo::transformer::TransformerConfig config;
  config.vocab_size = 2000;
  config.max_positions = 192;
  config.hidden_dim = 64;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_dim = 256;
  config.dropout = 0.0f;
  return config;
}

// Full encoder stack (attention + fused bias/GELU FFN) at (seq, fused),
// with the allocations-per-forward report.
void BM_EncoderForward(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  const bool fused = state.range(1) != 0;
  doduo::util::Rng rng(12);
  doduo::transformer::TransformerConfig config = BenchEncoderConfig();
  config.max_positions = seq;
  doduo::transformer::Encoder encoder("bench", config, &rng);
  encoder.set_use_fused(fused);
  encoder.set_training(false);
  Tensor x({seq, config.hidden_dim});
  x.FillNormal(&rng, 1.0f);
  encoder.Forward(x, nullptr);  // warm up buffers
  doduo::nn::ResetTensorAllocCount();
  for (auto _ : state) {
    const Tensor& y = encoder.Forward(x, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(doduo::nn::TensorAllocCount()),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_EncoderForward)
    ->ArgPair(64, 1)
    ->ArgPair(64, 0)
    ->ArgPair(128, 1)
    ->ArgPair(128, 0)
    ->ArgPair(512, 1)
    ->ArgPair(512, 0);

void BM_BertForward(benchmark::State& state) {
  const int seq = static_cast<int>(state.range(0));
  doduo::util::Rng rng(3);
  doduo::transformer::BertModel model("bench", BenchEncoderConfig(), &rng);
  model.set_training(false);
  std::vector<int> ids(static_cast<size_t>(seq));
  for (int i = 0; i < seq; ++i) {
    ids[static_cast<size_t>(i)] = 5 + static_cast<int>(rng.NextUint64(1900));
  }
  for (auto _ : state) {
    const Tensor& hidden = model.Forward(ids);
    benchmark::DoNotOptimize(hidden.data());
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_BertForward)->Arg(32)->Arg(96)->Arg(160);

void BM_BertForwardBackward(benchmark::State& state) {
  const int seq = 96;
  doduo::util::Rng rng(4);
  doduo::transformer::BertModel model("bench", BenchEncoderConfig(), &rng);
  std::vector<int> ids(static_cast<size_t>(seq));
  for (int i = 0; i < seq; ++i) {
    ids[static_cast<size_t>(i)] = 5 + static_cast<int>(rng.NextUint64(1900));
  }
  Tensor grad({seq, 64});
  grad.FillNormal(&rng, 0.1f);
  for (auto _ : state) {
    model.Forward(ids);
    model.Backward(grad);
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_BertForwardBackward);

struct TokenizerFixture {
  TokenizerFixture() {
    std::vector<std::string> lines;
    for (int i = 0; i < 200; ++i) {
      lines.push_back("george miller directed happy feet in nineteen " +
                      std::to_string(i));
    }
    doduo::text::WordPieceTrainer trainer({.vocab_size = 500,
                                           .min_pair_frequency = 2});
    vocab = trainer.TrainFromLines(lines);
  }
  doduo::text::Vocab vocab;
};

void BM_WordPieceEncode(benchmark::State& state) {
  static TokenizerFixture fixture;
  doduo::text::WordPieceTokenizer tokenizer(&fixture.vocab);
  const std::string text =
      "george miller directed happy feet and produced mad max in 1979";
  for (auto _ : state) {
    auto ids = tokenizer.Encode(text);
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_WordPieceEncode);

void BM_SerializeTable(benchmark::State& state) {
  static TokenizerFixture fixture;
  doduo::text::WordPieceTokenizer tokenizer(&fixture.vocab);
  doduo::table::TableSerializer serializer(&tokenizer, {});
  doduo::table::Table table("bench");
  for (int c = 0; c < 5; ++c) {
    doduo::table::Column column;
    column.name = "col" + std::to_string(c);
    for (int r = 0; r < 6; ++r) {
      column.values.push_back("george miller " + std::to_string(r));
    }
    table.AddColumn(std::move(column));
  }
  for (auto _ : state) {
    auto serialized = serializer.SerializeTable(table).value();
    benchmark::DoNotOptimize(serialized.token_ids.data());
  }
}
BENCHMARK(BM_SerializeTable);

void BM_SherlockFeatures(benchmark::State& state) {
  doduo::table::Column column;
  doduo::util::Rng rng(5);
  for (int r = 0; r < 20; ++r) {
    column.values.push_back("value " + std::to_string(rng.NextUint64(1000)));
  }
  for (auto _ : state) {
    auto features = doduo::baselines::ExtractSherlockFeatures(column);
    benchmark::DoNotOptimize(features.data());
  }
}
BENCHMARK(BM_SherlockFeatures);

// Batched annotation throughput (tables/sec): AnnotateTypesBatch over a
// fleet of tables at a given pool size, vs. the threads=1 row which is the
// sequential-loop equivalent.
struct BatchAnnotateFixture {
  BatchAnnotateFixture() : tokenizer(&shared().vocab) {
    config.encoder.vocab_size = shared().vocab.size();
    config.encoder.max_positions = 128;
    config.encoder.hidden_dim = 64;
    config.encoder.num_layers = 2;
    config.encoder.num_heads = 4;
    config.encoder.ffn_dim = 256;
    config.encoder.dropout = 0.0f;
    config.serializer.max_total_tokens = 128;
    config.num_types = 8;
    config.num_relations = 0;
    config.tasks = doduo::core::TaskSet::kTypesOnly;
    for (int t = 0; t < config.num_types; ++t) {
      types.AddLabel("type" + std::to_string(t));
    }
    doduo::util::Rng rng(7);
    model = std::make_unique<doduo::core::DoduoModel>(config, &rng);
    model->set_training(false);
    serializer = std::make_unique<doduo::table::TableSerializer>(
        &tokenizer, config.serializer);
    for (int t = 0; t < 16; ++t) {
      doduo::table::Table table("bench" + std::to_string(t));
      for (int c = 0; c < 4; ++c) {
        doduo::table::Column column;
        column.name = "col" + std::to_string(c);
        for (int r = 0; r < 6; ++r) {
          column.values.push_back("george miller " + std::to_string(t + r));
        }
        table.AddColumn(std::move(column));
      }
      tables.push_back(std::move(table));
    }
  }

  static TokenizerFixture& shared() {
    static TokenizerFixture fixture;
    return fixture;
  }

  doduo::text::WordPieceTokenizer tokenizer;
  doduo::core::DoduoConfig config;
  doduo::table::LabelVocab types;
  std::unique_ptr<doduo::core::DoduoModel> model;
  std::unique_ptr<doduo::table::TableSerializer> serializer;
  std::vector<doduo::table::Table> tables;
};

void BM_AnnotateTypesBatch(benchmark::State& state) {
  static BatchAnnotateFixture fixture;
  doduo::util::SetComputeThreads(static_cast<int>(state.range(0)));
  doduo::core::Annotator annotator(fixture.model.get(),
                                   fixture.serializer.get(), &fixture.types,
                                   nullptr);
  for (auto _ : state) {
    auto results = annotator.AnnotateTypesBatch(fixture.tables).value();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.tables.size()));
  doduo::util::SetComputeThreads(1);
}
BENCHMARK(BM_AnnotateTypesBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// End-to-end annotation with the int8 inference path toggled (Arg: 0 =
// fp32, 1 = DODUO_QUANT on) — the tables/sec comparison DESIGN §14 tracks.
void BM_AnnotateTypesQuant(benchmark::State& state) {
  static BatchAnnotateFixture fixture;
  doduo::nn::SetQuantEnabled(state.range(0) != 0);
  doduo::core::Annotator annotator(fixture.model.get(),
                                   fixture.serializer.get(), &fixture.types,
                                   nullptr);
  for (auto _ : state) {
    auto results = annotator.AnnotateTypesBatch(fixture.tables).value();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fixture.tables.size()));
  doduo::nn::SetQuantEnabled(false);
}
BENCHMARK(BM_AnnotateTypesQuant)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// BENCH_quant.json — machine-readable quantization scorecard (DESIGN §14),
// emitted when DODUO_BENCH_QUANT=1: GEMM GFLOP/s for the dispatched fp32
// path, the fp32 scalar reference, and int8 (with the speedup ratio the
// acceptance gate checks); batched annotation tables/sec with the quant
// path off and on; and the per-worker RSS delta of a ReplicaPool built
// over a v2 mmap checkpoint, next to the bytes the load actually mapped.

template <typename Fn>
double SecondsPerCall(int iters, const Fn& fn) {
  fn();  // warm up (and fault in any lazily built state)
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / iters;
}

// Resident set size in kB from /proc/self/status, or -1 off-Linux.
int64_t VmRssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoll(line.c_str() + 6, nullptr, 10);
    }
  }
  return -1;
}

void EmitQuantBenchJson() {
  const std::string path = doduo::util::GetEnvString("DODUO_BENCH_QUANT_JSON",
                                                     "BENCH_quant.json");
  const int64_t n = 256;
  doduo::util::Rng rng(9);
  Tensor x({n, n});
  Tensor w({n, n});
  x.FillNormal(&rng, 1.0f);
  w.FillNormal(&rng, 1.0f);
  doduo::nn::QuantizedWeight qw;
  doduo::nn::QuantizeWeight(w, &qw);
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);

  Tensor y;
  const double fp32_s =
      SecondsPerCall(20, [&] { doduo::nn::MatMul(x, w, &y); });
  const double scalar_s =
      SecondsPerCall(5, [&] { Fp32ScalarGemm(x, w, &y); });
  const double int8_s = SecondsPerCall(
      20, [&] { doduo::nn::Int8Linear(x, doduo::nn::View(qw), nullptr, &y); });
  const double fp32_gflops = flops / fp32_s / 1e9;
  const double scalar_gflops = flops / scalar_s / 1e9;
  const double int8_gflops = flops / int8_s / 1e9;
  const double speedup = scalar_s / int8_s;

  // End-to-end annotate throughput, fp32 vs int8, same model and tables.
  BatchAnnotateFixture fixture;
  doduo::core::Annotator annotator(fixture.model.get(),
                                   fixture.serializer.get(), &fixture.types,
                                   nullptr);
  const double tables = static_cast<double>(fixture.tables.size());
  doduo::nn::SetQuantEnabled(false);
  const double fp32_batch_s = SecondsPerCall(3, [&] {
    auto results = annotator.AnnotateTypesBatch(fixture.tables).value();
    benchmark::DoNotOptimize(results.data());
  });
  doduo::nn::SetQuantEnabled(true);
  const double int8_batch_s = SecondsPerCall(3, [&] {
    auto results = annotator.AnnotateTypesBatch(fixture.tables).value();
    benchmark::DoNotOptimize(results.data());
  });
  doduo::nn::SetQuantEnabled(false);

  // Replica-pool RSS: save the fixture model as a v2 int8 checkpoint,
  // reload it (weights borrow the mapping), and measure what each extra
  // worker costs in resident memory on top of the shared weights.
  const int kWorkers = 4;
  int64_t bytes_mapped = 0;
  int64_t rss_before_kb = -1;
  int64_t rss_after_kb = -1;
  double rss_per_worker_kb = -1.0;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "doduo_bench_quant_ckpt")
          .string();
  std::filesystem::remove_all(dir);
  doduo::table::LabelVocab relations;
  const doduo::util::Status saved = doduo::core::SaveModelDir(
      dir, fixture.model.get(), BatchAnnotateFixture::shared().vocab,
      fixture.types, relations, {.checkpoint_version = 2, .quant_int8 = true});
  if (saved.ok()) {
    doduo::util::Counter* mapped =
        doduo::util::GetCounter("load.bytes_mapped");
    const uint64_t mapped_before = mapped->value();
    auto loaded = doduo::core::LoadModelDir(dir);
    if (loaded.ok()) {
      doduo::core::LoadedModel& m = *loaded.value();
      bytes_mapped = static_cast<int64_t>(mapped->value() - mapped_before);
      rss_before_kb = VmRssKb();
      doduo::core::ReplicaPool pool(m.model.get(), m.serializer.get(),
                                    &m.types, m.relation_vocab(), kWorkers);
      rss_after_kb = VmRssKb();
      if (rss_before_kb >= 0 && rss_after_kb >= 0) {
        rss_per_worker_kb =
            static_cast<double>(rss_after_kb - rss_before_kb) /
            (pool.num_replicas() - 1);
      }
    } else {
      std::fprintf(stderr, "quant_bench: load failed: %s\n",
                   loaded.status().ToString().c_str());
    }
  } else {
    std::fprintf(stderr, "quant_bench: save failed: %s\n",
                 saved.ToString().c_str());
  }
  std::filesystem::remove_all(dir);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "quant_bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"gemm\": {\"m\": %lld, \"k\": %lld, \"n\": %lld,\n"
               "    \"fp32_gflops\": %.3f, \"fp32_scalar_gflops\": %.3f,\n"
               "    \"int8_gflops\": %.3f, \"int8_kernel\": \"%s\",\n"
               "    \"int8_vs_fp32_scalar\": %.3f},\n",
               static_cast<long long>(n), static_cast<long long>(n),
               static_cast<long long>(n), fp32_gflops, scalar_gflops,
               int8_gflops, doduo::nn::Int8KernelName(), speedup);
  std::fprintf(out,
               "  \"annotate\": {\"tables\": %d,\n"
               "    \"fp32_tables_per_sec\": %.2f,\n"
               "    \"int8_tables_per_sec\": %.2f},\n",
               static_cast<int>(tables), tables / fp32_batch_s,
               tables / int8_batch_s);
  std::fprintf(out,
               "  \"replica_pool\": {\"workers\": %d,\n"
               "    \"bytes_mapped\": %lld, \"rss_before_kb\": %lld,\n"
               "    \"rss_after_kb\": %lld, \"rss_per_worker_kb\": %.1f}\n",
               kWorkers, static_cast<long long>(bytes_mapped),
               static_cast<long long>(rss_before_kb),
               static_cast<long long>(rss_after_kb), rss_per_worker_kb);
  std::fprintf(out, "}\n");
  std::fclose(out);
  // The acceptance line tools/check.sh greps: int8 must beat fp32 scalar
  // by >= 1.5x on this machine.
  std::fprintf(stderr, "quant_bench: int8/fp32-scalar speedup = %.2f\n",
               speedup);
  std::fprintf(stderr, "quant_bench: wrote %s\n", path.c_str());
}

void BM_KMeans(benchmark::State& state) {
  doduo::util::Rng rng(6);
  Tensor points({200, 64});
  points.FillNormal(&rng, 1.0f);
  doduo::cluster::KMeans::Options options;
  options.k = 15;
  options.restarts = 1;
  doduo::cluster::KMeans kmeans(options);
  for (auto _ : state) {
    auto assignment = kmeans.Cluster(points);
    benchmark::DoNotOptimize(assignment.data());
  }
}
BENCHMARK(BM_KMeans);

}  // namespace

// BENCHMARK_MAIN plus an optional pipeline-metrics dump: run with
// DODUO_BENCH_METRICS=1 to get the per-stage latency histograms and
// counters (DESIGN §10) as JSON on stderr after the benchmark table.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (doduo::util::GetEnvInt("DODUO_BENCH_QUANT", 0) != 0) {
    EmitQuantBenchJson();
  }
  if (doduo::util::GetEnvInt("DODUO_BENCH_METRICS", 0) != 0) {
    std::fprintf(stderr, "%s\n", doduo::util::MetricsToJson().c_str());
  }
  return 0;
}
