// Reproduces Figure 4 of the paper: micro F1 as a function of the
// training-set fraction (10/25/50/100%) for the multi-task DODUO and the
// single-task DOSOLO, with the TURL baseline's full-data score as the
// reference line.
//
// Expected shape (paper): DODUO ≥ DOSOLO at every fraction (multi-task
// helps most when data is scarce); DODUO crosses the TURL line at ≤ 50%
// of the training data on the type task.

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/string_util.h"
#include "doduo/util/table_printer.h"

int main() {
  using namespace doduo::experiments;
  using doduo::core::TaskSet;
  using doduo::eval::Pct;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  std::printf("== Figure 4: F1 vs training-set fraction (WikiTable) ==\n");

  // Reference line: TURL trained on the full data.
  DoduoVariant turl;
  turl.turl_visibility_mask = true;
  const DoduoRun turl_run = RunDoduo(&env, turl);

  doduo::util::TablePrinter type_printer(
      {"Train fraction", "Doduo type F1", "Dosolo type F1"});
  doduo::util::TablePrinter rel_printer(
      {"Train fraction", "Doduo rel F1", "Dosolo rel F1"});

  for (double fraction : {0.10, 0.25, 0.50, 1.00}) {
    DoduoVariant multi;
    multi.train_fraction = fraction;
    const DoduoRun doduo = RunDoduo(&env, multi);

    DoduoVariant solo_types;
    solo_types.train_fraction = fraction;
    solo_types.tasks = static_cast<int>(TaskSet::kTypesOnly);
    const DoduoRun dosolo_types = RunDoduo(&env, solo_types);

    DoduoVariant solo_rels;
    solo_rels.train_fraction = fraction;
    solo_rels.tasks = static_cast<int>(TaskSet::kRelationsOnly);
    const DoduoRun dosolo_rels = RunDoduo(&env, solo_rels);

    const std::string label =
        doduo::util::FormatDouble(100.0 * fraction, 0) + "%";
    type_printer.AddRow({label, Pct(doduo.types.micro.f1),
                         Pct(dosolo_types.types.micro.f1)});
    rel_printer.AddRow({label, Pct(doduo.relations.micro.f1),
                        Pct(dosolo_rels.relations.micro.f1)});
  }
  std::printf("%s", type_printer.ToString().c_str());
  std::printf("TURL reference (100%% data): type F1 %s\n\n",
              Pct(turl_run.types.micro.f1).c_str());
  std::printf("%s", rel_printer.ToString().c_str());
  std::printf("TURL reference (100%% data): rel F1 %s\n",
              Pct(turl_run.relations.micro.f1).c_str());
  return 0;
}
