// Reproduces Table 4 of the paper: macro/micro F1 on the VizNet-style
// benchmark for Sherlock, Sato, and DODUO, on both the Full population
// (with single-column tables) and the Multi-column-only population.
//
// Expected shape (paper): Sherlock < Sato < DODUO on both populations;
// macro-F1 gaps larger than micro.

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/table_printer.h"

namespace {

using doduo::eval::Pct;

void RunPopulation(const char* label, double single_column_fraction,
                   doduo::util::TablePrinter* printer) {
  using namespace doduo::experiments;
  EnvOptions options;
  options.mode = BenchmarkMode::kVizNet;
  options.num_tables = Scaled(1000);
  options.single_column_fraction = single_column_fraction;
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  const auto sherlock = RunSherlock(&env);
  const auto sato = RunSato(&env);
  const DoduoRun doduo = RunDoduo(&env, DoduoVariant{});

  printer->AddRow({std::string("Sherlock (") + label + ")",
                   Pct(sherlock.macro.f1), Pct(sherlock.micro.f1)});
  printer->AddRow({std::string("Sato (") + label + ")", Pct(sato.macro.f1),
                   Pct(sato.micro.f1)});
  printer->AddRow({std::string("Doduo (") + label + ")",
                   Pct(doduo.types.macro.f1), Pct(doduo.types.micro.f1)});
}

}  // namespace

int main() {
  std::printf("== Table 4: VizNet column type prediction (macro/micro F1) "
              "==\n");
  doduo::util::TablePrinter printer({"Method", "Macro F1", "Micro F1"});
  RunPopulation("Full", /*single_column_fraction=*/0.25, &printer);
  RunPopulation("Multi-column only", /*single_column_fraction=*/0.0,
                &printer);
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
