// Reproduces Table 11 of the paper (Appendix A.2): MaxToken/col sweep on
// the VizNet benchmark for the multi-column DODUO and the single-column
// DOSOLO_SCol.
//
// Expected shape (paper): DODUO above DOSOLO_SCol at every budget; the
// paper's trend is "more tokens → better". At our miniature encoder scale
// the multi-column model validates best at the smallest budget (long
// numeric sequences are an optimization burden) — recorded as a deviation
// in EXPERIMENTS.md.

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/table_printer.h"

int main() {
  using namespace doduo::experiments;
  using doduo::eval::Pct;

  EnvOptions options;
  options.mode = BenchmarkMode::kVizNet;
  options.num_tables = Scaled(1000);
  options.single_column_fraction = 0.25;
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  std::printf("== Table 11: MaxToken/col on VizNet (Full) ==\n");
  doduo::util::TablePrinter printer(
      {"Method", "MaxToken/col", "Macro F1", "Micro F1"});
  for (int budget : {8, 16, 32}) {
    DoduoVariant variant;
    variant.max_tokens_per_column = budget;
    const DoduoRun run = RunDoduo(&env, variant);
    printer.AddRow({"Doduo", std::to_string(budget),
                    Pct(run.types.macro.f1), Pct(run.types.micro.f1)});
  }
  for (int budget : {8, 16, 32}) {
    DoduoVariant variant;
    variant.max_tokens_per_column = budget;
    variant.input_mode = doduo::core::InputMode::kSingleColumn;
    const DoduoRun run = RunDoduo(&env, variant);
    printer.AddRow({"Dosolo_SCol", std::to_string(budget),
                    Pct(run.types.macro.f1), Pct(run.types.micro.f1)});
  }
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
