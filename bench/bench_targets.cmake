# Experiment binaries: one per table/figure of the paper (see DESIGN.md's
# per-experiment index) plus google-benchmark kernel microbenchmarks. All
# binaries land in build/bench/ and run unattended.

function(doduo_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE doduo benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

doduo_bench(exp_table3_wikitable)
doduo_bench(exp_table4_viznet)
doduo_bench(exp_table5_numeric)
doduo_bench(exp_table6_ablation_wiki)
doduo_bench(exp_table7_ablation_viznet)
doduo_bench(exp_table8_token_budget_wiki)
doduo_bench(exp_table9_case_study)
doduo_bench(exp_table11_token_budget_viznet)
doduo_bench(exp_table12_probing)
doduo_bench(exp_fig4_learning_efficiency)
doduo_bench(exp_fig5_per_class)
doduo_bench(exp_fig6_attention)
doduo_bench(exp_ablation_attention)
doduo_bench(bench_kernels)
doduo_bench(bench_serve)
