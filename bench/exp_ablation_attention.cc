// Design-choice ablation (DESIGN.md): how much of DODUO's behaviour comes
// from the attention topology. Compares, with identical parameters,
// pre-training, and fine-tuning:
//   - full self-attention (DODUO),
//   - the [CLS]-channel visibility matrix (the TURL baseline),
//   - row+column visibility without a [CLS] channel (TURL's original
//     entity visibility).
//
// This isolates the architectural delta the paper credits for DODUO's win
// over TURL, and measures what the structured row prior is worth at
// miniature scale.

#include <cstdio>

#include "doduo/baselines/turl.h"
#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/table_printer.h"

int main() {
  using namespace doduo::experiments;
  using doduo::eval::Pct;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  std::printf("== Ablation: attention topology (WikiTable) ==\n");

  const DoduoRun full = RunDoduo(&env, DoduoVariant{});

  DoduoVariant cls_variant;
  cls_variant.turl_visibility_mask = true;
  const DoduoRun cls_channel = RunDoduo(&env, cls_variant);

  // Row-visibility variant: install the mask manually.
  DoduoRun row_visibility = [&] {
    doduo::core::DoduoConfig config = env.MakeDoduoConfig();
    DoduoRun run;
    doduo::util::Rng rng(config.seed);
    run.model = std::make_unique<doduo::core::DoduoModel>(config, &rng);
    env.InitializeFromPretrained(run.model.get());
    run.model->set_mask_builder(
        doduo::baselines::MakeRowVisibilityMaskBuilder());
    run.serializer = std::make_unique<doduo::table::TableSerializer>(
        &env.tokenizer(), config.serializer);
    run.trainer = std::make_unique<doduo::core::Trainer>(
        run.model.get(), run.serializer.get());
    run.history = run.trainer->Train(env.dataset(), env.splits());
    run.trainer->RestoreBestRelationCheckpoint();
    run.relations =
        run.trainer->EvaluateRelations(env.dataset(), env.splits().test);
    run.trainer->RestoreBestTypeCheckpoint();
    run.types = run.trainer->EvaluateTypes(env.dataset(),
                                           env.splits().test);
    run.has_relations = true;
    return run;
  }();

  doduo::util::TablePrinter printer(
      {"Attention topology", "Type F1", "Rel F1"});
  printer.AddRow({"full self-attention (Doduo)", Pct(full.types.micro.f1),
                  Pct(full.relations.micro.f1)});
  printer.AddRow({"[CLS]-channel visibility (TURL)",
                  Pct(cls_channel.types.micro.f1),
                  Pct(cls_channel.relations.micro.f1)});
  printer.AddRow({"row+column visibility (TURL original)",
                  Pct(row_visibility.types.micro.f1),
                  Pct(row_visibility.relations.micro.f1)});
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
