// Reproduces Table 7 of the paper: the VizNet (Full) ablation — DODUO vs
// the single-column DOSOLO_SCol.
//
// Expected shape (paper): the multi-column model wins on both metrics,
// with a larger relative gap on macro F1 (context types are the rare/hard
// ones).

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/string_util.h"
#include "doduo/util/table_printer.h"

int main() {
  using namespace doduo::experiments;
  using doduo::eval::Pct;

  EnvOptions options;
  options.mode = BenchmarkMode::kVizNet;
  options.num_tables = Scaled(1000);
  options.single_column_fraction = 0.25;  // the "Full" population
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  std::printf("== Table 7: VizNet (Full) ablation ==\n");

  const DoduoRun doduo = RunDoduo(&env, DoduoVariant{});
  DoduoVariant scol;
  scol.input_mode = doduo::core::InputMode::kSingleColumn;
  const DoduoRun scol_run = RunDoduo(&env, scol);

  auto drop = [](double value, double reference) {
    return doduo::util::FormatDouble(
               100.0 * (reference - value) / reference, 1) +
           "% v";
  };

  doduo::util::TablePrinter printer(
      {"Method", "Macro F1", "(drop)", "Micro F1", "(drop)"});
  printer.AddRow({"Doduo", Pct(doduo.types.macro.f1), "-",
                  Pct(doduo.types.micro.f1), "-"});
  printer.AddRow({"Dosolo_SCol", Pct(scol_run.types.macro.f1),
                  drop(scol_run.types.macro.f1, doduo.types.macro.f1),
                  Pct(scol_run.types.micro.f1),
                  drop(scol_run.types.micro.f1, doduo.types.micro.f1)});
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
