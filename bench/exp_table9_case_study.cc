// Reproduces Table 9 / Section 7 of the paper: clustering semantically
// similar columns of an out-of-domain "enterprise" database with a DODUO
// model trained on the WikiTable benchmark, against static-embedding and
// schema-matching baselines. Homogeneity/Completeness/V-measure play the
// role of Precision/Recall/F1.
//
// Expected shape (paper): Doduo column-value embeddings best on
// precision/F1; static value embeddings have high recall but low
// precision; clustering by predicted type lands in between; COMA is a
// solid name-based baseline, DistributionBased falls short on precision.

#include <cstdio>

#include "doduo/cluster/kmeans.h"
#include "doduo/cluster/matchers.h"
#include "doduo/cluster/metrics.h"
#include "doduo/core/annotator.h"
#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/synth/case_study.h"
#include "doduo/util/env.h"
#include "doduo/util/table_printer.h"

namespace {

using doduo::cluster::ClusteringScores;
using doduo::cluster::ScoreClustering;
using doduo::eval::Pct;

void AddRow(doduo::util::TablePrinter* printer, const std::string& method,
            const ClusteringScores& scores) {
  printer->AddRow({method, Pct(scores.homogeneity),
                   Pct(scores.completeness), Pct(scores.v_measure)});
}

}  // namespace

int main() {
  using namespace doduo::experiments;

  // Train DODUO on the WikiTable benchmark — a different domain from the
  // case-study database, which is the point of the transfer test.
  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);
  DoduoRun doduo = RunDoduo(&env, DoduoVariant{});

  const doduo::synth::CaseStudyData data =
      doduo::synth::BuildCaseStudy(options.seed + 99);
  const int n = data.num_columns();
  const int hidden = env.options().hidden_dim;

  doduo::core::Annotator annotator(doduo.model.get(),
                                   doduo.serializer.get(),
                                   &env.dataset().type_vocab,
                                   &env.dataset().relation_vocab);

  // --- Doduo contextualized column embeddings ---------------------------
  doduo::nn::Tensor doduo_embeddings({n, hidden});
  int flat = 0;
  for (const auto& table : data.tables) {
    const doduo::nn::Tensor embeddings =
        annotator.ColumnEmbeddings(table).value();
    for (int c = 0; c < table.num_columns(); ++c, ++flat) {
      std::copy(embeddings.row(c), embeddings.row(c) + hidden,
                doduo_embeddings.row(flat));
    }
  }

  // --- Doduo predicted types as cluster labels ---------------------------
  std::vector<int> predicted_type_clusters;
  for (const auto& table : data.tables) {
    for (const auto& names : annotator.AnnotateTypes(table).value()) {
      predicted_type_clusters.push_back(
          env.dataset().type_vocab.Id(names[0]));
    }
  }

  // --- Static (context-free) embeddings: value and name ------------------
  auto static_embedding = [&](const std::string& text,
                              float* out) {
    for (int j = 0; j < hidden; ++j) out[j] = 0.0f;
    const std::vector<int> ids = env.tokenizer().Encode(text);
    if (ids.empty()) return;
    for (int id : ids) {
      const float* row = doduo.model->encoder()->StaticEmbedding(id);
      for (int j = 0; j < hidden; ++j) out[j] += row[j];
    }
    for (int j = 0; j < hidden; ++j) {
      out[j] /= static_cast<float>(ids.size());
    }
  };
  doduo::nn::Tensor value_embeddings({n, hidden});
  doduo::nn::Tensor name_embeddings({n, hidden});
  flat = 0;
  for (const auto& table : data.tables) {
    for (int c = 0; c < table.num_columns(); ++c, ++flat) {
      std::string joined;
      for (const auto& value : table.column(c).values) {
        joined += value + " ";
      }
      static_embedding(joined, value_embeddings.row(flat));
      static_embedding(table.column(c).name, name_embeddings.row(flat));
    }
  }

  // --- k-means over each embedding space ---------------------------------
  doduo::cluster::KMeans::Options kmeans_options;
  kmeans_options.k = static_cast<int>(data.group_names.size());
  kmeans_options.seed = options.seed + 5;
  doduo::cluster::KMeans kmeans(kmeans_options);
  auto cluster_embeddings = [&](doduo::nn::Tensor* points) {
    doduo::cluster::NormalizeRows(points);
    return kmeans.Cluster(*points);
  };
  const auto doduo_clusters = cluster_embeddings(&doduo_embeddings);
  const auto value_clusters = cluster_embeddings(&value_embeddings);
  const auto name_clusters = cluster_embeddings(&name_embeddings);

  // --- Schema-matching baselines -----------------------------------------
  doduo::cluster::ComaMatcher coma;
  const auto coma_clusters = doduo::cluster::ClustersFromMatches(
      n, coma.Match(data.tables));
  doduo::cluster::DistributionBasedMatcher distribution;
  const auto distribution_clusters = doduo::cluster::ClustersFromMatches(
      n, distribution.Match(data.tables));

  std::printf("== Table 9: case study — clustering 50 columns of 10 "
              "out-of-domain tables into 15 groups ==\n");
  doduo::util::TablePrinter printer(
      {"Method", "Prec. (Homog.)", "Recall (Compl.)", "F1 (V-measure)"});
  AddRow(&printer, "Doduo+column value emb",
         ScoreClustering(doduo_clusters, data.ground_truth));
  AddRow(&printer, "Doduo+predicted type",
         ScoreClustering(predicted_type_clusters, data.ground_truth));
  AddRow(&printer, "static+column value emb",
         ScoreClustering(value_clusters, data.ground_truth));
  AddRow(&printer, "static+column name emb",
         ScoreClustering(name_clusters, data.ground_truth));
  AddRow(&printer, "COMA (with column name)",
         ScoreClustering(coma_clusters, data.ground_truth));
  AddRow(&printer, "DistributionBased (with column name)",
         ScoreClustering(distribution_clusters, data.ground_truth));
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
