// Reproduces Figure 5 of the paper: per-class F1 of DODUO vs Sato on the
// VizNet benchmark (Full population), sorted by support.
//
// Expected shape (paper): DODUO at least matches Sato on the frequent
// classes and is far more robust on the rare ones (religion, education,
// organisation, ...), where Sato drops toward zero.

#include <cstdio>
#include <map>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/table_printer.h"

int main() {
  using namespace doduo::experiments;
  using doduo::eval::Pct;

  EnvOptions options;
  options.mode = BenchmarkMode::kVizNet;
  options.num_tables = Scaled(1000);
  options.single_column_fraction = 0.25;
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  const DoduoRun doduo = RunDoduo(&env, DoduoVariant{});
  const auto sato = RunSato(&env);

  const auto doduo_rows = doduo::eval::PerClassReport(
      doduo.types.sets, env.dataset().type_vocab);
  const auto sato_rows =
      doduo::eval::PerClassReport(sato.sets, env.dataset().type_vocab);
  std::map<std::string, double> sato_f1;
  for (const auto& row : sato_rows) sato_f1[row.label] = row.prf.f1;

  std::printf("== Figure 5: per-class F1, Doduo vs Sato (VizNet Full) "
              "==\n");
  doduo::util::TablePrinter printer(
      {"Class", "Support", "Doduo F1", "Sato F1"});
  int doduo_wins_rare = 0;
  int rare_classes = 0;
  for (const auto& row : doduo_rows) {
    printer.AddRow({row.label, std::to_string(row.support),
                    Pct(row.prf.f1), Pct(sato_f1[row.label])});
    if (row.support <= 8) {
      ++rare_classes;
      if (row.prf.f1 > sato_f1[row.label]) ++doduo_wins_rare;
    }
  }
  std::printf("%s", printer.ToString().c_str());
  std::printf("rare classes (support <= 8): %d; Doduo ahead on %d\n",
              rare_classes, doduo_wins_rare);
  std::printf("macro F1: Doduo %s vs Sato %s\n",
              Pct(doduo.types.macro.f1).c_str(),
              Pct(sato.macro.f1).c_str());
  return 0;
}
