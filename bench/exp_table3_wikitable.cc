// Reproduces Table 3 of the paper: micro precision/recall/F1 for column
// type and column relation prediction on the WikiTable-style benchmark,
// comparing Sherlock, the TURL-style visibility-matrix model, DODUO, and
// the +metadata variants of the latter two.
//
// Expected shape (paper): Sherlock << TURL < DODUO on types; TURL ≤ DODUO
// on relations; +metadata closes most of the TURL-DODUO gap.

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/table_printer.h"

namespace {

using doduo::core::EvalResult;
using doduo::eval::Pct;

std::vector<std::string> Row(const std::string& method,
                             const EvalResult& types,
                             const EvalResult* relations) {
  return {method,
          Pct(types.micro.precision),
          Pct(types.micro.recall),
          Pct(types.micro.f1),
          relations != nullptr ? Pct(relations->micro.precision) : "-",
          relations != nullptr ? Pct(relations->micro.recall) : "-",
          relations != nullptr ? Pct(relations->micro.f1) : "-"};
}

}  // namespace

int main() {
  using namespace doduo::experiments;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  std::printf("== Table 3: WikiTable column type & relation prediction "
              "(micro P/R/F1) ==\n");
  std::printf("dataset: %d tables, %d types, %d relations\n",
              static_cast<int>(env.dataset().tables.size()),
              env.dataset().type_vocab.size(),
              env.dataset().relation_vocab.size());

  const EvalResult sherlock = RunSherlock(&env);

  DoduoVariant turl_variant;
  turl_variant.turl_visibility_mask = true;
  const DoduoRun turl = RunDoduo(&env, turl_variant);

  const DoduoRun doduo = RunDoduo(&env, DoduoVariant{});

  DoduoVariant turl_meta_variant = turl_variant;
  turl_meta_variant.include_metadata = true;
  const DoduoRun turl_meta = RunDoduo(&env, turl_meta_variant);

  DoduoVariant doduo_meta_variant;
  doduo_meta_variant.include_metadata = true;
  const DoduoRun doduo_meta = RunDoduo(&env, doduo_meta_variant);

  doduo::util::TablePrinter printer({"Method", "Type P", "Type R",
                                     "Type F1", "Rel P", "Rel R",
                                     "Rel F1"});
  printer.AddRow(Row("Sherlock", sherlock, nullptr));
  printer.AddRow(Row("TURL", turl.types, &turl.relations));
  printer.AddRow(Row("Doduo", doduo.types, &doduo.relations));
  printer.AddRow(Row("TURL+metadata", turl_meta.types,
                     &turl_meta.relations));
  printer.AddRow(Row("Doduo+metadata", doduo_meta.types,
                     &doduo_meta.relations));
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
