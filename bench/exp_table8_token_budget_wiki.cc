// Reproduces Table 8 of the paper: DODUO under different MaxToken/col
// budgets on the WikiTable benchmark, plus the maximum number of columns
// each budget supports under the encoder's input limit.
//
// Expected shape (paper): more tokens → better F1; relations need more
// tokens than types; even the smallest budget stays competitive.

#include <cstdio>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/table/serializer.h"
#include "doduo/util/env.h"
#include "doduo/util/table_printer.h"

int main() {
  using namespace doduo::experiments;
  using doduo::eval::Pct;

  EnvOptions options;
  options.mode = BenchmarkMode::kWikiTable;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  std::printf("== Table 8: MaxToken/col on WikiTable ==\n");
  doduo::util::TablePrinter printer(
      {"MaxToken/col", "Col type (F1)", "Col rel (F1)", "Max # of cols"});
  for (int budget : {8, 16, 32}) {
    DoduoVariant variant;
    variant.max_tokens_per_column = budget;
    const DoduoRun run = RunDoduo(&env, variant);
    // The paper reports the max column count for BERT's 512-token input;
    // we report it for our encoder's input limit.
    doduo::table::SerializerOptions serializer_options;
    serializer_options.max_tokens_per_column = budget;
    serializer_options.max_total_tokens = options.max_positions;
    doduo::table::TableSerializer serializer(&env.tokenizer(),
                                             serializer_options);
    printer.AddRow({std::to_string(budget), Pct(run.types.micro.f1),
                    Pct(run.relations.micro.f1),
                    std::to_string(serializer.MaxSupportedColumns())});
  }
  std::printf("%s", printer.ToString().c_str());
  std::printf("(max #cols for BERT's 512-token input: 8->56, 16->30, "
              "32->15, matching the paper's formula)\n");
  return 0;
}
