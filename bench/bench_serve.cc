// Serving throughput/latency report (DESIGN §12): a loopback Server with
// its dynamic batcher, hammered by concurrent clients, once per
// max_batch_size in {1, 4, 16}. Reports tables/sec plus p50/p99 latency
// read back from the util::metrics histograms the server itself records
// (serve.e2e_us end-to-end, serve.inference_us per forward pass) — so the
// numbers printed here are the same ones a production STATS request would
// surface. batch=1 is the no-batching baseline; the batched rows show what
// request coalescing buys on the same replica pool.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/core/model.h"
#include "doduo/core/replica_pool.h"
#include "doduo/serve/client.h"
#include "doduo/serve/server.h"
#include "doduo/table/serializer.h"
#include "doduo/table/table.h"
#include "doduo/text/vocab.h"
#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/util/env.h"
#include "doduo/util/metrics.h"
#include "doduo/util/rng.h"
#include "doduo/util/table_printer.h"

namespace {

using doduo::serve::BatcherOptions;
using doduo::serve::Client;
using doduo::serve::Server;
using doduo::serve::ServerOptions;

/// A small but trained-shape model: big enough that inference dominates
/// framing overhead, small enough that the full sweep runs in seconds.
struct BenchModel {
  BenchModel() {
    config.encoder.vocab_size = 120;
    config.encoder.max_positions = 128;
    config.encoder.hidden_dim = 32;
    config.encoder.num_heads = 4;
    config.encoder.ffn_dim = 64;
    config.encoder.num_layers = 2;
    config.encoder.dropout = 0.0f;
    config.serializer.max_total_tokens = 128;
    config.num_types = 8;
    config.num_relations = 0;
    config.tasks = doduo::core::TaskSet::kTypesOnly;
    for (const char* word : {"alpha", "beta", "gamma", "delta", "epsilon",
                             "zeta", "eta", "theta"}) {
      vocab.AddToken(word);
    }
    for (int i = 0; i < config.num_types; ++i) {
      type_vocab.AddLabel("type" + std::to_string(i));
    }
    doduo::util::Rng rng(1);
    model = std::make_unique<doduo::core::DoduoModel>(config, &rng);
    model->set_training(false);
    tokenizer = std::make_unique<doduo::text::WordPieceTokenizer>(&vocab);
    serializer = std::make_unique<doduo::table::TableSerializer>(
        tokenizer.get(), config.serializer);
  }

  doduo::core::DoduoConfig config;
  doduo::text::Vocab vocab;
  doduo::table::LabelVocab type_vocab;
  std::unique_ptr<doduo::core::DoduoModel> model;
  std::unique_ptr<doduo::text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<doduo::table::TableSerializer> serializer;
};

doduo::table::Table MakeTable(int variant) {
  const char* words[] = {"alpha", "beta", "gamma", "delta",
                         "epsilon", "zeta", "eta", "theta"};
  doduo::table::Table table("bench-" + std::to_string(variant));
  const int v = variant & 7;
  table.AddColumn({"a", {words[v], words[(v + 1) & 7], words[(v + 5) & 7]}});
  table.AddColumn({"b", {words[(v + 2) & 7], words[(v + 6) & 7]}});
  table.AddColumn({"c", {words[(v + 3) & 7]}});
  return table;
}

struct RunResult {
  int completed = 0;
  int failed = 0;
  double seconds = 0.0;
  uint64_t p50_e2e_us = 0;
  uint64_t p99_e2e_us = 0;
  uint64_t p50_infer_us = 0;
  uint64_t batches = 0;
};

RunResult RunOnce(BenchModel* bench, int max_batch_size, int num_clients,
                  int requests_per_client) {
  // Fresh metrics per configuration so the histograms hold exactly this
  // run's samples — the quantiles below would otherwise mix batch sizes.
  doduo::util::ResetMetrics();

  doduo::core::ReplicaPool pool(bench->model.get(), bench->serializer.get(),
                                &bench->type_vocab, nullptr,
                                /*num_replicas=*/2);
  ServerOptions options;
  options.port = 0;
  options.batcher.max_batch_size = max_batch_size;
  options.batcher.max_wait_us = 500;
  options.batcher.max_queue_depth = 1024;
  options.batcher.num_workers = pool.num_replicas();
  Server server(&pool, options);
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_serve: server start failed: %s\n",
                 started.ToString().c_str());
    return {};
  }

  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failed.fetch_add(requests_per_client);
        return;
      }
      for (int r = 0; r < requests_per_client; ++r) {
        auto types = client.value().AnnotateTypes(MakeTable(c + r));
        (types.ok() ? completed : failed).fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();
  server.Stop();

  RunResult result;
  result.completed = completed.load();
  result.failed = failed.load();
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - begin)
          .count();
  result.p50_e2e_us =
      doduo::util::ApproxQuantileMicros(
          *doduo::util::GetHistogram("serve.e2e_us"), 0.50);
  result.p99_e2e_us =
      doduo::util::ApproxQuantileMicros(
          *doduo::util::GetHistogram("serve.e2e_us"), 0.99);
  result.p50_infer_us =
      doduo::util::ApproxQuantileMicros(
          *doduo::util::GetHistogram("serve.inference_us"), 0.50);
  result.batches = doduo::util::GetCounter("serve.batches_total")->value();
  return result;
}

}  // namespace

int main() {
  const int num_clients = 8;
  const int requests_per_client = std::max(
      1, static_cast<int>(40 * doduo::util::ExperimentScale()));
  BenchModel bench;

  std::printf("bench_serve: %d clients x %d requests over loopback, "
              "2 replicas, 500us batching window\n",
              num_clients, requests_per_client);
  doduo::util::TablePrinter printer({"max_batch", "requests", "tables/sec",
                                     "p50_e2e_us", "p99_e2e_us",
                                     "p50_infer_us", "batches"});
  for (const int max_batch_size : {1, 4, 16}) {
    const RunResult r =
        RunOnce(&bench, max_batch_size, num_clients, requests_per_client);
    if (r.failed > 0 || r.completed == 0) {
      std::fprintf(stderr,
                   "bench_serve: batch=%d had %d failed responses\n",
                   max_batch_size, r.failed);
      return 1;
    }
    const double tables_per_sec =
        r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f", tables_per_sec);
    printer.AddRow({std::to_string(max_batch_size),
                    std::to_string(r.completed), rate,
                    std::to_string(r.p50_e2e_us),
                    std::to_string(r.p99_e2e_us),
                    std::to_string(r.p50_infer_us),
                    std::to_string(r.batches)});
  }
  std::printf("%s", printer.ToString().c_str());
  return 0;
}
