// Reproduces Table 5 of the paper: DODUO's per-type F1 on the 15 most
// numeric VizNet types, alongside %num (the fraction of that type's cell
// values that parse as numbers).
//
// Expected shape (paper): most numeric types score high (year, age, rank,
// isbn ≥ 90); "ranking" collapses because it collides with the frequent
// "rank"; the average over the 15 types is comparable to the overall macro
// F1.

#include <algorithm>
#include <cstdio>
#include <map>

#include "doduo/eval/report.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"
#include "doduo/util/string_util.h"
#include "doduo/util/table_printer.h"

int main() {
  using namespace doduo::experiments;

  EnvOptions options;
  options.mode = BenchmarkMode::kVizNet;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  const DoduoRun doduo = RunDoduo(&env, DoduoVariant{});

  // %num per type over the whole dataset.
  std::map<std::string, std::pair<long, long>> numeric_counts;
  for (const auto& annotated : env.dataset().tables) {
    for (int c = 0; c < annotated.table.num_columns(); ++c) {
      const std::string& type = env.dataset().type_vocab.Name(
          annotated.column_types[static_cast<size_t>(c)][0]);
      auto& [numeric, total] = numeric_counts[type];
      for (const std::string& value : annotated.table.column(c).values) {
        ++total;
        if (doduo::util::LooksNumeric(value)) ++numeric;
      }
    }
  }

  const auto per_class = doduo::eval::PerClassReport(
      doduo.types.sets, env.dataset().type_vocab);

  static const char* kNumericTypes[] = {
      "plays", "rank",      "depth",  "sales",    "year",
      "fileSize", "elevation", "ranking", "age",   "birthDate",
      "grades", "weight",    "isbn",   "capacity", "code"};

  std::printf("== Table 5: Doduo F1 on the 15 most numeric VizNet types "
              "==\n");
  doduo::util::TablePrinter printer({"type", "%num", "F1", "test support"});
  double f1_sum = 0.0;
  int f1_count = 0;
  for (const char* type : kNumericTypes) {
    const auto& [numeric, total] = numeric_counts[type];
    const double pct_num =
        total > 0 ? 100.0 * static_cast<double>(numeric) / total : 0.0;
    double f1 = 0.0;
    long support = 0;
    for (const auto& row : per_class) {
      if (row.label == type) {
        f1 = row.prf.f1;
        support = row.support;
        break;
      }
    }
    f1_sum += f1;
    ++f1_count;
    printer.AddRow({type, doduo::util::FormatDouble(pct_num, 2),
                    doduo::eval::Pct(f1), std::to_string(support)});
  }
  std::printf("%s", printer.ToString().c_str());
  std::printf("average F1 over the 15 numeric types: %s\n",
              doduo::eval::Pct(f1_sum / std::max(1, f1_count)).c_str());
  std::printf("overall macro F1: %s  micro F1: %s\n",
              doduo::eval::Pct(doduo.types.macro.f1).c_str(),
              doduo::eval::Pct(doduo.types.micro.f1).c_str());
  return 0;
}
