// Reproduces Figure 6 of the paper (Appendix A.4): the inter-column
// dependency heatmap. After fine-tuning DODUO on the VizNet benchmark, the
// last layer's [CLS]→[CLS] attention is aggregated per column-type pair
// and normalized against the uniform (co-occurrence) share.
//
// Expected shape (paper): the matrix is asymmetric (e.g. "age" relies on
// "origin"-like columns far more than the reverse) and has clear
// off-diagonal structure that plain co-occurrence cannot explain.

#include <cstdio>

#include "doduo/analysis/attention_analysis.h"
#include "doduo/experiments/runners.h"
#include "doduo/util/env.h"

int main() {
  using namespace doduo::experiments;

  EnvOptions options;
  options.mode = BenchmarkMode::kVizNet;
  options.num_tables = Scaled(1000);
  options.seed = doduo::util::ExperimentSeed();
  Env env(options);

  const DoduoRun doduo = RunDoduo(&env, DoduoVariant{});

  const doduo::analysis::InterColumnDependency dependency =
      doduo::analysis::AnalyzeInterColumnDependency(
          doduo.model.get(), *doduo.serializer, env.dataset(),
          env.splits().test);

  std::printf("== Figure 6: inter-column dependency from [CLS]->[CLS] "
              "attention (VizNet) ==\n");
  std::printf("%s",
              doduo::analysis::RenderDependencyMatrix(dependency).c_str());

  // Quantify the headline property: asymmetry beyond co-occurrence.
  double asymmetry = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < dependency.matrix.size(); ++i) {
    for (size_t j = i + 1; j < dependency.matrix.size(); ++j) {
      if (dependency.cooccurrence[i][j] == 0 ||
          dependency.cooccurrence[j][i] == 0) {
        continue;
      }
      asymmetry +=
          std::abs(dependency.matrix[i][j] - dependency.matrix[j][i]);
      ++pairs;
    }
  }
  if (pairs > 0) {
    std::printf("mean |dep(i->j) - dep(j->i)| over %d co-occurring pairs: "
                "%.4f (0 would mean symmetric attention)\n",
                pairs, asymmetry / pairs);
  }
  return 0;
}
