#ifndef DODUO_CLUSTER_MATCHERS_H_
#define DODUO_CLUSTER_MATCHERS_H_

#include <utility>
#include <vector>

#include "doduo/table/table.h"

namespace doduo::cluster {

/// A matched pair of columns identified by their flattened indices over a
/// list of tables (columns enumerated table by table).
using MatchedPairs = std::vector<std::pair<int, int>>;

/// COMA-style schema matcher (Do & Rahm, VLDB'02 — the strongest classical
/// matcher in the Valentine study the paper compares with): column-NAME
/// similarity from a combination of character-trigram Jaccard, normalized
/// edit distance, and common prefix/suffix length. Matches every
/// cross-table column pair whose combined similarity clears the threshold.
class ComaMatcher {
 public:
  explicit ComaMatcher(double threshold = 0.55) : threshold_(threshold) {}

  MatchedPairs Match(const std::vector<table::Table>& tables) const;

  /// The combined name-similarity score in [0, 1]; exposed for testing.
  static double NameSimilarity(const std::string& a, const std::string& b);

 private:
  double threshold_;
};

/// DistributionBased matcher (Zhang et al., SIGMOD'11 in the Valentine
/// suite): clusters columns by the overlap of their VALUE distributions —
/// Jaccard containment of the value sets, with a numeric-quantile overlap
/// fallback for numeric columns.
class DistributionBasedMatcher {
 public:
  explicit DistributionBasedMatcher(double threshold = 0.25)
      : threshold_(threshold) {}

  MatchedPairs Match(const std::vector<table::Table>& tables) const;

  /// Value-overlap score in [0, 1]; exposed for testing.
  static double ValueOverlap(const table::Column& a, const table::Column& b);

 private:
  double threshold_;
};

/// Connected components of the matched pairs = cluster assignment per
/// flattened column (how the paper converts matcher output to clusters).
std::vector<int> ClustersFromMatches(int num_columns,
                                     const MatchedPairs& matches);

/// Flattened column count of a table list.
int TotalColumns(const std::vector<table::Table>& tables);

}  // namespace doduo::cluster

#endif  // DODUO_CLUSTER_MATCHERS_H_
