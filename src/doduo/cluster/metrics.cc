#include "doduo/cluster/metrics.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "doduo/util/check.h"

namespace doduo::cluster {

namespace {

// Entropy of a marginal count distribution (natural log).
double Entropy(const std::unordered_map<int, int>& counts, double n) {
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

ClusteringScores ScoreClustering(const std::vector<int>& predicted,
                                 const std::vector<int>& actual) {
  DODUO_CHECK_EQ(predicted.size(), actual.size());
  DODUO_CHECK(!predicted.empty());
  const double n = static_cast<double>(predicted.size());

  std::unordered_map<int, int> cluster_counts;
  std::unordered_map<int, int> class_counts;
  std::map<std::pair<int, int>, int> joint_counts;
  for (size_t i = 0; i < predicted.size(); ++i) {
    ++cluster_counts[predicted[i]];
    ++class_counts[actual[i]];
    ++joint_counts[{predicted[i], actual[i]}];
  }

  const double h_class = Entropy(class_counts, n);
  const double h_cluster = Entropy(cluster_counts, n);

  // Conditional entropies from the joint distribution.
  double h_class_given_cluster = 0.0;
  double h_cluster_given_class = 0.0;
  for (const auto& [pair, count] : joint_counts) {
    const auto& [cluster, klass] = pair;
    const double joint = static_cast<double>(count) / n;
    h_class_given_cluster -=
        joint * std::log(static_cast<double>(count) /
                         cluster_counts[cluster]);
    h_cluster_given_class -=
        joint *
        std::log(static_cast<double>(count) / class_counts[klass]);
  }

  ClusteringScores scores;
  scores.homogeneity =
      h_class > 0.0 ? 1.0 - h_class_given_cluster / h_class : 1.0;
  scores.completeness =
      h_cluster > 0.0 ? 1.0 - h_cluster_given_class / h_cluster : 1.0;
  const double sum = scores.homogeneity + scores.completeness;
  scores.v_measure =
      sum > 0.0 ? 2.0 * scores.homogeneity * scores.completeness / sum : 0.0;
  return scores;
}

}  // namespace doduo::cluster
