#ifndef DODUO_CLUSTER_UNION_FIND_H_
#define DODUO_CLUSTER_UNION_FIND_H_

#include <vector>

namespace doduo::cluster {

/// Disjoint-set forest with path compression and union by size. The
/// schema-matching baselines return matched column pairs; connected
/// components of those pairs become the cluster assignment (as in the
/// paper's Valentine comparison).
class UnionFind {
 public:
  explicit UnionFind(int n);

  /// Representative of x's set.
  int Find(int x);

  /// Merges the sets of a and b; returns true if they were separate.
  bool Union(int a, int b);

  /// Dense component ids in [0, num_components), stable by first
  /// appearance.
  std::vector<int> ComponentIds();

  int num_components() const { return num_components_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_components_;
};

}  // namespace doduo::cluster

#endif  // DODUO_CLUSTER_UNION_FIND_H_
