#ifndef DODUO_CLUSTER_KMEANS_H_
#define DODUO_CLUSTER_KMEANS_H_

#include <vector>

#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"

namespace doduo::cluster {

/// Lloyd's k-means with k-means++ initialization, used to cluster column
/// embeddings in the Section 7 case study. The same algorithm is applied to
/// every embedding method so the comparison isolates embedding quality.
class KMeans {
 public:
  struct Options {
    int k = 15;
    int max_iterations = 100;
    int restarts = 4;  // keep the best-inertia run
    uint64_t seed = 42;
  };

  explicit KMeans(Options options);

  /// points: [n, d]. Returns a cluster id in [0, k) per point.
  std::vector<int> Cluster(const nn::Tensor& points) const;

  /// Sum of squared distances of the last Cluster() call's best run.
  double last_inertia() const { return last_inertia_; }

 private:
  struct RunResult {
    std::vector<int> assignment;
    double inertia = 0.0;
  };
  RunResult RunOnce(const nn::Tensor& points, util::Rng* rng) const;

  Options options_;
  mutable double last_inertia_ = 0.0;
};

/// L2-normalizes every row in place (cosine k-means); zero rows stay zero.
void NormalizeRows(nn::Tensor* points);

}  // namespace doduo::cluster

#endif  // DODUO_CLUSTER_KMEANS_H_
