#include "doduo/cluster/matchers.h"

#include <algorithm>
#include <unordered_set>

#include "doduo/cluster/union_find.h"
#include "doduo/util/string_util.h"

namespace doduo::cluster {

namespace {

// Flattened (table, column) → global index enumeration.
struct FlatColumn {
  int table;
  int column;
};

std::vector<FlatColumn> Flatten(const std::vector<table::Table>& tables) {
  std::vector<FlatColumn> flat;
  for (size_t t = 0; t < tables.size(); ++t) {
    for (int c = 0; c < tables[t].num_columns(); ++c) {
      flat.push_back({static_cast<int>(t), c});
    }
  }
  return flat;
}

double TrigramJaccard(const std::string& a, const std::string& b) {
  const auto grams_a = util::CharNgrams(a, 3, /*pad=*/true);
  const auto grams_b = util::CharNgrams(b, 3, /*pad=*/true);
  if (grams_a.empty() && grams_b.empty()) return a == b ? 1.0 : 0.0;
  std::unordered_set<std::string> set_a(grams_a.begin(), grams_a.end());
  std::unordered_set<std::string> set_b(grams_b.begin(), grams_b.end());
  int intersection = 0;
  for (const std::string& gram : set_a) {
    if (set_b.count(gram) > 0) ++intersection;
  }
  const int uni =
      static_cast<int>(set_a.size() + set_b.size()) - intersection;
  return uni > 0 ? static_cast<double>(intersection) / uni : 0.0;
}

double EditSimilarity(const std::string& a, const std::string& b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(util::EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double AffixSimilarity(const std::string& a, const std::string& b) {
  const size_t shortest = std::min(a.size(), b.size());
  if (shortest == 0) return 0.0;
  size_t prefix = 0;
  while (prefix < shortest && a[prefix] == b[prefix]) ++prefix;
  size_t suffix = 0;
  while (suffix < shortest &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }
  return static_cast<double>(std::max(prefix, suffix)) /
         static_cast<double>(std::max(a.size(), b.size()));
}

}  // namespace

double ComaMatcher::NameSimilarity(const std::string& a,
                                   const std::string& b) {
  const std::string la = util::ToLower(a);
  const std::string lb = util::ToLower(b);
  if (la == lb) return 1.0;
  // COMA's essence: combine several independent name matchers.
  return 0.4 * TrigramJaccard(la, lb) + 0.4 * EditSimilarity(la, lb) +
         0.2 * AffixSimilarity(la, lb);
}

MatchedPairs ComaMatcher::Match(
    const std::vector<table::Table>& tables) const {
  const std::vector<FlatColumn> flat = Flatten(tables);
  MatchedPairs matches;
  for (size_t i = 0; i < flat.size(); ++i) {
    for (size_t j = i + 1; j < flat.size(); ++j) {
      if (flat[i].table == flat[j].table) continue;  // cross-table only
      const std::string& name_a = tables[static_cast<size_t>(flat[i].table)]
                                      .column(flat[i].column)
                                      .name;
      const std::string& name_b = tables[static_cast<size_t>(flat[j].table)]
                                      .column(flat[j].column)
                                      .name;
      if (NameSimilarity(name_a, name_b) >= threshold_) {
        matches.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return matches;
}

double DistributionBasedMatcher::ValueOverlap(const table::Column& a,
                                              const table::Column& b) {
  std::unordered_set<std::string> set_a(a.values.begin(), a.values.end());
  std::unordered_set<std::string> set_b(b.values.begin(), b.values.end());
  if (set_a.empty() || set_b.empty()) return 0.0;

  int intersection = 0;
  for (const std::string& value : set_a) {
    if (set_b.count(value) > 0) ++intersection;
  }
  if (intersection > 0) {
    // Jaccard containment (EMD-like overlap of the supports).
    return static_cast<double>(intersection) /
           static_cast<double>(std::min(set_a.size(), set_b.size()));
  }

  // Numeric fallback: range overlap of numeric columns.
  auto numeric_range = [](const table::Column& column, double* lo,
                          double* hi) {
    bool any = false;
    for (const std::string& value : column.values) {
      if (!util::LooksNumeric(value)) return false;
      std::string digits;
      for (char c : value) {
        if (c != ',') digits.push_back(c);
      }
      const double v = std::strtod(digits.c_str(), nullptr);
      if (!any) {
        *lo = *hi = v;
        any = true;
      } else {
        *lo = std::min(*lo, v);
        *hi = std::max(*hi, v);
      }
    }
    return any;
  };
  double lo_a = 0.0, hi_a = 0.0, lo_b = 0.0, hi_b = 0.0;
  if (numeric_range(a, &lo_a, &hi_a) && numeric_range(b, &lo_b, &hi_b)) {
    const double overlap = std::min(hi_a, hi_b) - std::max(lo_a, lo_b);
    const double span = std::max(hi_a, hi_b) - std::min(lo_a, lo_b);
    if (span <= 0.0) return 1.0;  // identical degenerate ranges
    return std::max(0.0, overlap / span);
  }
  return 0.0;
}

MatchedPairs DistributionBasedMatcher::Match(
    const std::vector<table::Table>& tables) const {
  const std::vector<FlatColumn> flat = Flatten(tables);
  MatchedPairs matches;
  for (size_t i = 0; i < flat.size(); ++i) {
    for (size_t j = i + 1; j < flat.size(); ++j) {
      if (flat[i].table == flat[j].table) continue;
      const table::Column& col_a =
          tables[static_cast<size_t>(flat[i].table)].column(flat[i].column);
      const table::Column& col_b =
          tables[static_cast<size_t>(flat[j].table)].column(flat[j].column);
      if (ValueOverlap(col_a, col_b) >= threshold_) {
        matches.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return matches;
}

std::vector<int> ClustersFromMatches(int num_columns,
                                     const MatchedPairs& matches) {
  UnionFind components(num_columns);
  for (const auto& [a, b] : matches) components.Union(a, b);
  return components.ComponentIds();
}

int TotalColumns(const std::vector<table::Table>& tables) {
  int total = 0;
  for (const table::Table& table : tables) total += table.num_columns();
  return total;
}

}  // namespace doduo::cluster
