#ifndef DODUO_CLUSTER_METRICS_H_
#define DODUO_CLUSTER_METRICS_H_

#include <vector>

namespace doduo::cluster {

/// Entropy-based external clustering metrics (Rosenberg & Hirschberg,
/// 2007), the case study's scoring: Homogeneity plays the role of
/// Precision, Completeness of Recall, and V-Measure (their harmonic mean)
/// of F1.
struct ClusteringScores {
  double homogeneity = 0.0;
  double completeness = 0.0;
  double v_measure = 0.0;
};

/// `predicted` and `actual` assign a cluster id to every item. Ids need not
/// be aligned or contiguous.
ClusteringScores ScoreClustering(const std::vector<int>& predicted,
                                 const std::vector<int>& actual);

}  // namespace doduo::cluster

#endif  // DODUO_CLUSTER_METRICS_H_
