#include "doduo/cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "doduo/util/check.h"

namespace doduo::cluster {

namespace {

double SquaredDistance(const float* a, const float* b, int64_t d) {
  double total = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - static_cast<double>(b[j]);
    total += diff * diff;
  }
  return total;
}

}  // namespace

void NormalizeRows(nn::Tensor* points) {
  DODUO_CHECK_EQ(points->ndim(), 2);
  const int64_t d = points->cols();
  for (int64_t i = 0; i < points->rows(); ++i) {
    float* row = points->row(i);
    double norm = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      norm += static_cast<double>(row[j]) * static_cast<double>(row[j]);
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t j = 0; j < d; ++j) row[j] *= inv;
  }
}

KMeans::KMeans(Options options) : options_(options) {
  DODUO_CHECK_GT(options.k, 0);
  DODUO_CHECK_GT(options.restarts, 0);
}

KMeans::RunResult KMeans::RunOnce(const nn::Tensor& points,
                                  util::Rng* rng) const {
  const int64_t n = points.rows();
  const int64_t d = points.cols();
  const int k = options_.k;

  // k-means++ seeding.
  std::vector<int64_t> center_ids;
  center_ids.push_back(static_cast<int64_t>(rng->NextUint64(
      static_cast<uint64_t>(n))));
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::max());
  while (static_cast<int>(center_ids.size()) < k) {
    const float* last = points.row(center_ids.back());
    std::vector<double> weights(static_cast<size_t>(n));
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      min_dist[static_cast<size_t>(i)] =
          std::min(min_dist[static_cast<size_t>(i)],
                   SquaredDistance(points.row(i), last, d));
      weights[static_cast<size_t>(i)] = min_dist[static_cast<size_t>(i)];
      total += weights[static_cast<size_t>(i)];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a center; pick uniformly.
      center_ids.push_back(static_cast<int64_t>(
          rng->NextUint64(static_cast<uint64_t>(n))));
    } else {
      center_ids.push_back(
          static_cast<int64_t>(rng->Categorical(weights)));
    }
  }

  nn::Tensor centers({k, d});
  for (int c = 0; c < k; ++c) {
    const float* src = points.row(center_ids[static_cast<size_t>(c)]);
    std::copy(src, src + d, centers.row(c));
  }

  RunResult result;
  result.assignment.assign(static_cast<size_t>(n), 0);
  std::vector<int64_t> cluster_sizes(static_cast<size_t>(k), 0);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    bool changed = false;
    result.inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double best_dist = std::numeric_limits<double>::max();
      int best = 0;
      for (int c = 0; c < k; ++c) {
        const double dist =
            SquaredDistance(points.row(i), centers.row(c), d);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (result.assignment[static_cast<size_t>(i)] != best) {
        result.assignment[static_cast<size_t>(i)] = best;
        changed = true;
      }
      result.inertia += best_dist;
    }
    if (!changed && iter > 0) break;

    // Recompute centers; empty clusters keep their previous position.
    centers.Zero();
    cluster_sizes.assign(static_cast<size_t>(k), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int c = result.assignment[static_cast<size_t>(i)];
      ++cluster_sizes[static_cast<size_t>(c)];
      const float* src = points.row(i);
      float* dst = centers.row(c);
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    for (int c = 0; c < k; ++c) {
      const int64_t size = cluster_sizes[static_cast<size_t>(c)];
      if (size == 0) {
        // Re-seed an empty cluster at a random point.
        const float* src = points.row(static_cast<int64_t>(
            rng->NextUint64(static_cast<uint64_t>(n))));
        std::copy(src, src + d, centers.row(c));
        continue;
      }
      float* dst = centers.row(c);
      const float inv = 1.0f / static_cast<float>(size);
      for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
    }
  }
  return result;
}

std::vector<int> KMeans::Cluster(const nn::Tensor& points) const {
  DODUO_CHECK_EQ(points.ndim(), 2);
  DODUO_CHECK_GE(points.rows(), options_.k)
      << "fewer points than clusters";
  util::Rng rng(options_.seed);
  RunResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int restart = 0; restart < options_.restarts; ++restart) {
    RunResult run = RunOnce(points, &rng);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  last_inertia_ = best.inertia;
  return best.assignment;
}

}  // namespace doduo::cluster
