#include "doduo/cluster/union_find.h"

#include "doduo/util/check.h"

namespace doduo::cluster {

UnionFind::UnionFind(int n)
    : parent_(static_cast<size_t>(n)),
      size_(static_cast<size_t>(n), 1),
      num_components_(n) {
  DODUO_CHECK_GT(n, 0);
  for (int i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
}

int UnionFind::Find(int x) {
  DODUO_CHECK(x >= 0 && x < static_cast<int>(parent_.size()));
  int root = x;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  while (parent_[static_cast<size_t>(x)] != root) {
    const int next = parent_[static_cast<size_t>(x)];
    parent_[static_cast<size_t>(x)] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int a, int b) {
  int root_a = Find(a);
  int root_b = Find(b);
  if (root_a == root_b) return false;
  if (size_[static_cast<size_t>(root_a)] <
      size_[static_cast<size_t>(root_b)]) {
    std::swap(root_a, root_b);
  }
  parent_[static_cast<size_t>(root_b)] = root_a;
  size_[static_cast<size_t>(root_a)] +=
      size_[static_cast<size_t>(root_b)];
  --num_components_;
  return true;
}

std::vector<int> UnionFind::ComponentIds() {
  std::vector<int> ids(parent_.size(), -1);
  std::vector<int> root_to_id(parent_.size(), -1);
  int next = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    const int root = Find(static_cast<int>(i));
    if (root_to_id[static_cast<size_t>(root)] < 0) {
      root_to_id[static_cast<size_t>(root)] = next++;
    }
    ids[i] = root_to_id[static_cast<size_t>(root)];
  }
  return ids;
}

}  // namespace doduo::cluster
