#ifndef DODUO_TEXT_WORDPIECE_TRAINER_H_
#define DODUO_TEXT_WORDPIECE_TRAINER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "doduo/text/vocab.h"

namespace doduo::text {

/// Learns a WordPiece vocabulary from a corpus by BPE-style pair merging:
/// every word starts as [c, ##c, ##c, ...]; the most frequent adjacent pair
/// is merged repeatedly until the requested vocabulary size is reached.
/// Merged pieces keep the "##" continuation marker, so the result is
/// directly usable by WordPieceTokenizer's greedy longest-match.
class WordPieceTrainer {
 public:
  struct Options {
    int vocab_size = 2000;  // includes specials and single characters
    int min_pair_frequency = 2;
  };

  explicit WordPieceTrainer(Options options) : options_(options) {}

  /// Trains from pre-tokenized words (BasicTokenizer output) with counts.
  Vocab Train(const std::unordered_map<std::string, int64_t>& word_counts)
      const;

  /// Convenience: basic-tokenizes each line, counts words, and trains.
  Vocab TrainFromLines(const std::vector<std::string>& lines) const;

 private:
  Options options_;
};

}  // namespace doduo::text

#endif  // DODUO_TEXT_WORDPIECE_TRAINER_H_
