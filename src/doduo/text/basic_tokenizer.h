#ifndef DODUO_TEXT_BASIC_TOKENIZER_H_
#define DODUO_TEXT_BASIC_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace doduo::text {

/// BERT-style pre-tokenization: lowercases (optionally), splits on
/// whitespace, and splits ASCII punctuation characters into standalone
/// tokens ("U.S." → "u", ".", "s", ".").
class BasicTokenizer {
 public:
  explicit BasicTokenizer(bool lowercase = true) : lowercase_(lowercase) {}

  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  bool lowercase_;
};

}  // namespace doduo::text

#endif  // DODUO_TEXT_BASIC_TOKENIZER_H_
