#include "doduo/text/wordpiece_tokenizer.h"

#include "doduo/util/check.h"
#include "doduo/util/string_util.h"

namespace doduo::text {

WordPieceTokenizer::WordPieceTokenizer(const Vocab* vocab,
                                       int max_chars_per_word)
    : vocab_(vocab), max_chars_per_word_(max_chars_per_word) {
  DODUO_CHECK(vocab != nullptr);
}

std::vector<int> WordPieceTokenizer::TokenizeWord(
    std::string_view word) const {
  // Ill-formed UTF-8 (truncated multi-byte cells, binary junk in dirty
  // tables) is repaired to U+FFFD up front. After this point every byte
  // position arithmetic below operates on well-formed sequences, and
  // Utf8Length counts real code points rather than garbage lead bytes.
  std::string repaired;
  if (!util::Utf8IsValid(word)) {
    repaired = util::Utf8Repair(word);
    word = repaired;
  }
  // BERT's length cap is in characters, not bytes: a word of multi-byte
  // code points must not become [UNK] early just because UTF-8 inflates
  // its byte count.
  if (word.empty() ||
      util::Utf8Length(word) > static_cast<size_t>(max_chars_per_word_)) {
    return {Vocab::kUnkId};
  }
  std::vector<int> pieces;
  size_t start = 0;
  while (start < word.size()) {
    size_t end = word.size();
    int match = -1;
    // Longest match first, with the "##" continuation prefix after the
    // first piece. Candidates shrink a code point at a time so no piece
    // boundary ever lands inside a multi-byte sequence.
    while (end > start) {
      std::string candidate;
      if (start > 0) candidate = "##";
      candidate.append(word.substr(start, end - start));
      if (vocab_->Contains(candidate)) {
        match = vocab_->Id(candidate);
        break;
      }
      do {
        --end;
      } while (end > start &&
               (static_cast<unsigned char>(word[end]) & 0xC0) == 0x80);
    }
    if (match < 0) return {Vocab::kUnkId};
    pieces.push_back(match);
    start = end;
  }
  return pieces;
}

std::vector<int> WordPieceTokenizer::Encode(std::string_view text) const {
  std::vector<int> ids;
  for (const std::string& word : basic_.Tokenize(text)) {
    const std::vector<int> pieces = TokenizeWord(word);
    ids.insert(ids.end(), pieces.begin(), pieces.end());
  }
  return ids;
}

std::vector<int> WordPieceTokenizer::EncodeBudgeted(std::string_view text,
                                                    size_t max_tokens,
                                                    bool* truncated) const {
  if (truncated) *truncated = false;
  std::vector<int> ids;
  for (const std::string& word : basic_.Tokenize(text)) {
    if (ids.size() >= max_tokens) {
      // Every remaining word would emit at least one piece.
      if (truncated) *truncated = true;
      break;
    }
    const std::vector<int> pieces = TokenizeWord(word);
    ids.insert(ids.end(), pieces.begin(), pieces.end());
  }
  if (ids.size() > max_tokens) {
    ids.resize(max_tokens);
    if (truncated) *truncated = true;
  }
  return ids;
}

std::vector<std::string> WordPieceTokenizer::Decode(
    const std::vector<int>& ids) const {
  std::vector<std::string> tokens;
  tokens.reserve(ids.size());
  for (int id : ids) {
    // Ids can come from untrusted model output or corrupt files; map
    // out-of-range values to [UNK] text instead of dying in Vocab::Token.
    if (id < 0 || id >= vocab_->size()) {
      tokens.emplace_back(Vocab::kUnkToken);
    } else {
      tokens.push_back(vocab_->Token(id));
    }
  }
  return tokens;
}

}  // namespace doduo::text
