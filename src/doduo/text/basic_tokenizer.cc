#include "doduo/text/basic_tokenizer.h"

#include <cctype>

namespace doduo::text {

namespace {

bool IsPunct(unsigned char c) { return std::ispunct(c) != 0; }

}  // namespace

std::vector<std::string> BasicTokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (lowercase_) c = static_cast<unsigned char>(std::tolower(c));
    if (std::isspace(c)) {
      flush();
    } else if (IsPunct(c)) {
      flush();
      tokens.emplace_back(1, static_cast<char>(c));
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  flush();
  return tokens;
}

}  // namespace doduo::text
