#ifndef DODUO_TEXT_WORDPIECE_TOKENIZER_H_
#define DODUO_TEXT_WORDPIECE_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "doduo/text/basic_tokenizer.h"
#include "doduo/text/vocab.h"

namespace doduo::text {

/// Greedy longest-match-first WordPiece tokenization (BERT's algorithm) on
/// top of BasicTokenizer pre-tokenization.
class WordPieceTokenizer {
 public:
  /// `vocab` must outlive the tokenizer.
  explicit WordPieceTokenizer(const Vocab* vocab,
                              int max_chars_per_word = 64);

  /// Splits one pre-tokenized word into piece ids; emits [UNK] when the
  /// word cannot be decomposed (or exceeds max_chars_per_word). Ill-formed
  /// UTF-8 in the word is repaired to U+FFFD first, so the greedy matcher
  /// never slices a multi-byte sequence and the length cap counts real
  /// code points; well-formed words tokenize exactly as before.
  std::vector<int> TokenizeWord(std::string_view word) const;

  /// Full pipeline: basic tokenize then WordPiece each word. No special
  /// tokens are added; serializers do that.
  std::vector<int> Encode(std::string_view text) const;

  /// Like Encode but stops once `max_tokens` ids have been produced,
  /// skipping the WordPiece work for the rest of the text. The result is
  /// always an exact prefix of Encode(text). Sets `*truncated` (when
  /// non-null) if any ids were dropped.
  std::vector<int> EncodeBudgeted(std::string_view text, size_t max_tokens,
                                  bool* truncated = nullptr) const;

  /// Converts ids back to piece strings (debugging and probing).
  std::vector<std::string> Decode(const std::vector<int>& ids) const;

  const Vocab& vocab() const { return *vocab_; }

 private:
  const Vocab* vocab_;
  BasicTokenizer basic_;
  int max_chars_per_word_;
};

}  // namespace doduo::text

#endif  // DODUO_TEXT_WORDPIECE_TOKENIZER_H_
