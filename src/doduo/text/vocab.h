#ifndef DODUO_TEXT_VOCAB_H_
#define DODUO_TEXT_VOCAB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "doduo/util/status.h"

namespace doduo::text {

/// Token-string ↔ id mapping with BERT-style special tokens at fixed ids:
/// [PAD]=0, [UNK]=1, [CLS]=2, [SEP]=3, [MASK]=4.
class Vocab {
 public:
  static constexpr int kPadId = 0;
  static constexpr int kUnkId = 1;
  static constexpr int kClsId = 2;
  static constexpr int kSepId = 3;
  static constexpr int kMaskId = 4;
  static constexpr int kNumSpecialTokens = 5;

  static constexpr const char* kPadToken = "[PAD]";
  static constexpr const char* kUnkToken = "[UNK]";
  static constexpr const char* kClsToken = "[CLS]";
  static constexpr const char* kSepToken = "[SEP]";
  static constexpr const char* kMaskToken = "[MASK]";

  /// Creates a vocab containing only the special tokens.
  Vocab();

  /// Adds `token` if absent; returns its id either way.
  int AddToken(std::string_view token);

  /// Id of `token`, or kUnkId when unknown.
  int Id(std::string_view token) const;

  /// True if `token` is present.
  bool Contains(std::string_view token) const;

  /// Token string for `id`; dies on out-of-range ids.
  const std::string& Token(int id) const;

  /// Number of tokens including the specials.
  int size() const { return static_cast<int>(tokens_.size()); }

  /// True for the five reserved ids.
  static bool IsSpecial(int id) { return id < kNumSpecialTokens; }

  /// Writes one token per line.
  [[nodiscard]] util::Status Save(const std::string& path) const;

  /// Reads a vocab written by Save; the first five lines must be the
  /// special tokens.
  [[nodiscard]] static util::Result<Vocab> Load(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace doduo::text

#endif  // DODUO_TEXT_VOCAB_H_
