#include "doduo/text/wordpiece_trainer.h"

#include <algorithm>
#include <map>

#include "doduo/text/basic_tokenizer.h"
#include "doduo/util/check.h"

namespace doduo::text {

namespace {

// A word as its current piece decomposition plus its corpus count.
struct Word {
  std::vector<std::string> pieces;
  int64_t count = 0;
};

std::string StripMarker(const std::string& piece) {
  return piece.size() > 2 && piece[0] == '#' && piece[1] == '#'
             ? piece.substr(2)
             : piece;
}

// Merging "ab" + "##c" yields "abc"; "##b" + "##c" yields "##bc".
std::string MergePieces(const std::string& left, const std::string& right) {
  return left + StripMarker(right);
}

}  // namespace

Vocab WordPieceTrainer::Train(
    const std::unordered_map<std::string, int64_t>& word_counts) const {
  Vocab vocab;

  // Seed with every single character (word-initial and continuation forms)
  // so any string can always be decomposed.
  std::vector<Word> words;
  words.reserve(word_counts.size());
  // Deterministic iteration: sort words lexicographically.
  std::vector<std::pair<std::string, int64_t>> sorted(word_counts.begin(),
                                                      word_counts.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [word, count] : sorted) {
    if (word.empty()) continue;
    Word w;
    w.count = count;
    for (size_t i = 0; i < word.size(); ++i) {
      std::string piece = (i == 0) ? std::string(1, word[i])
                                   : "##" + std::string(1, word[i]);
      w.pieces.push_back(piece);
      vocab.AddToken(piece);
    }
    words.push_back(std::move(w));
  }

  // Iteratively merge the most frequent adjacent pair. std::map keeps tie
  // breaking deterministic (lexicographically smallest pair wins ties).
  while (vocab.size() < options_.vocab_size) {
    std::map<std::pair<std::string, std::string>, int64_t> pair_counts;
    for (const Word& w : words) {
      for (size_t i = 0; i + 1 < w.pieces.size(); ++i) {
        pair_counts[{w.pieces[i], w.pieces[i + 1]}] += w.count;
      }
    }
    if (pair_counts.empty()) break;
    auto best = pair_counts.begin();
    for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < options_.min_pair_frequency) break;

    const std::string merged = MergePieces(best->first.first,
                                           best->first.second);
    vocab.AddToken(merged);
    for (Word& w : words) {
      for (size_t i = 0; i + 1 < w.pieces.size();) {
        if (w.pieces[i] == best->first.first &&
            w.pieces[i + 1] == best->first.second) {
          w.pieces[i] = merged;
          w.pieces.erase(w.pieces.begin() + static_cast<int64_t>(i) + 1);
        } else {
          ++i;
        }
      }
    }
  }
  return vocab;
}

Vocab WordPieceTrainer::TrainFromLines(
    const std::vector<std::string>& lines) const {
  BasicTokenizer basic;
  std::unordered_map<std::string, int64_t> counts;
  for (const std::string& line : lines) {
    for (std::string& token : basic.Tokenize(line)) {
      ++counts[std::move(token)];
    }
  }
  return Train(counts);
}

}  // namespace doduo::text
