#include "doduo/text/vocab.h"

#include <fstream>

#include "doduo/util/check.h"

namespace doduo::text {

Vocab::Vocab() {
  for (const char* token : {kPadToken, kUnkToken, kClsToken, kSepToken,
                            kMaskToken}) {
    AddToken(token);
  }
}

int Vocab::AddToken(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

int Vocab::Id(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it != ids_.end() ? it->second : kUnkId;
}

bool Vocab::Contains(std::string_view token) const {
  return ids_.find(std::string(token)) != ids_.end();
}

const std::string& Vocab::Token(int id) const {
  DODUO_CHECK(id >= 0 && id < size()) << "vocab id out of range: " << id;
  return tokens_[static_cast<size_t>(id)];
}

util::Status Vocab::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open " + path);
  for (const std::string& token : tokens_) out << token << "\n";
  if (!out) return util::Status::IoError("failed writing " + path);
  return util::Status::Ok();
}

util::Result<Vocab> Vocab::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open " + path);
  Vocab vocab;
  std::string line;
  int index = 0;
  while (std::getline(in, line)) {
    if (index < kNumSpecialTokens) {
      if (line != vocab.Token(index)) {
        return util::Status::InvalidArgument(
            path + " line " + std::to_string(index) +
            " is not the expected special token");
      }
    } else {
      vocab.AddToken(line);
    }
    ++index;
  }
  if (index < kNumSpecialTokens) {
    return util::Status::InvalidArgument(path + " is not a vocab file");
  }
  return vocab;
}

}  // namespace doduo::text
