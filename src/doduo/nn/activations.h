#ifndef DODUO_NN_ACTIVATIONS_H_
#define DODUO_NN_ACTIVATIONS_H_

#include "doduo/nn/tensor.h"

namespace doduo::nn {

/// Scalar GELU (tanh approximation, as in BERT) and its derivative.
float GeluScalar(float x);
float GeluGradScalar(float x);

/// Fused FFN epilogue: adds the 1-D `bias` to every row of `pre_act` [m, n]
/// in place, then writes act = gelu(pre_act) — one pass instead of
/// AddRowBroadcast + a Gelu layer that copies its input for backward. The
/// biased pre-activation stays in `pre_act` for GeluBackward.
void BiasGeluForward(Tensor* pre_act, const Tensor& bias, Tensor* act);

/// grad_pre = grad_act ⊙ gelu'(pre_act), the backward of BiasGeluForward
/// with respect to its (biased) pre-activation. Identical math to
/// Gelu::Backward, minus the cached input copy.
void GeluBackward(const Tensor& pre_act, const Tensor& grad_act,
                  Tensor* grad_pre);

/// Elementwise GELU layer with cached input for backward.
class Gelu {
 public:
  const Tensor& Forward(const Tensor& x);
  const Tensor& Backward(const Tensor& grad_out);

 private:
  Tensor cached_input_;
  Tensor output_;
  Tensor grad_input_;
};

/// Elementwise ReLU layer with cached input for backward.
class Relu {
 public:
  const Tensor& Forward(const Tensor& x);
  const Tensor& Backward(const Tensor& grad_out);

 private:
  Tensor cached_input_;
  Tensor output_;
  Tensor grad_input_;
};

/// Elementwise tanh layer; caches the output (tanh' = 1 - tanh²).
class TanhLayer {
 public:
  const Tensor& Forward(const Tensor& x);
  const Tensor& Backward(const Tensor& grad_out);

 private:
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_ACTIVATIONS_H_
