#ifndef DODUO_NN_ACTIVATIONS_H_
#define DODUO_NN_ACTIVATIONS_H_

#include "doduo/nn/tensor.h"

namespace doduo::nn {

/// Scalar GELU (tanh approximation, as in BERT) and its derivative.
float GeluScalar(float x);
float GeluGradScalar(float x);

/// Elementwise GELU layer with cached input for backward.
class Gelu {
 public:
  const Tensor& Forward(const Tensor& x);
  const Tensor& Backward(const Tensor& grad_out);

 private:
  Tensor cached_input_;
  Tensor output_;
  Tensor grad_input_;
};

/// Elementwise ReLU layer with cached input for backward.
class Relu {
 public:
  const Tensor& Forward(const Tensor& x);
  const Tensor& Backward(const Tensor& grad_out);

 private:
  Tensor cached_input_;
  Tensor output_;
  Tensor grad_input_;
};

/// Elementwise tanh layer; caches the output (tanh' = 1 - tanh²).
class TanhLayer {
 public:
  const Tensor& Forward(const Tensor& x);
  const Tensor& Backward(const Tensor& grad_out);

 private:
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_ACTIVATIONS_H_
