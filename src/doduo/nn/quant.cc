#include "doduo/nn/quant.h"

#include <atomic>
#include <cmath>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define DODUO_X86_SIMD 1
#endif

#include "doduo/util/check.h"
#include "doduo/util/env.h"
#include "doduo/util/thread_pool.h"

namespace doduo::nn {

namespace {

std::atomic<int> g_quant_enabled{-1};  // -1: read DODUO_QUANT on first use

// Same parallel gate as the fp32 GEMM family (ops.cc): shard output rows
// only above a volume where fork/join cost is amortized, overridable via
// DODUO_PARALLEL_THRESHOLD.
int64_t ParallelVolumeThreshold() {
  static const int64_t threshold =
      util::GetEnvInt("DODUO_PARALLEL_THRESHOLD", 64 * 64 * 64);
  return threshold;
}

bool ShouldParallelize(int64_t m, int64_t k, int64_t n) {
  return m > 1 && m * k * n >= ParallelVolumeThreshold() &&
         util::ComputeThreads() > 1;
}

// The int32 accumulator is exact while k · 127² stays below 2³¹; every
// model dimension is orders of magnitude under this.
constexpr int64_t kMaxInt8DotK = int64_t{1} << 20;

// --- int8 inner kernels ---------------------------------------------------
//
// Naming contract (enforced by the quant-no-float-in-int8-kernel lint
// rule): functions matching *Int8*Kernel* are the integer-only core — int8
// operands, int32 accumulation, no fp32 math. The dequant epilogue lives in
// the differently-named callers below. All kernels compute the same exact
// int32 sum, so they are interchangeable bit-for-bit.

int32_t Int8DotKernelScalar(const int8_t* a, const int8_t* b, int64_t k) {
  int32_t acc = 0;
  for (int64_t i = 0; i < k; ++i) {
    acc += int32_t{a[i]} * int32_t{b[i]};
  }
  return acc;
}

#if defined(DODUO_X86_SIMD)

// SSE2 is baseline x86-64, so no target attribute is needed: sign-extend
// int8→int16 with unpack + arithmetic shift (no SSE4.1 cvtepi8), then
// pmaddwd multiplies int16 pairs and sums adjacent products into int32
// lanes — exact, since |a·b| ≤ 127² per product.
int32_t Int8DotKernelSse2(const int8_t* a, const int8_t* b, int64_t k) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = _mm_setzero_si128();
  int64_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i va_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, va), 8);
    const __m128i va_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, va), 8);
    const __m128i vb_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, vb), 8);
    const __m128i vb_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, vb), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(va_lo, vb_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(va_hi, vb_hi));
  }
  __m128i s = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  int32_t total = _mm_cvtsi128_si32(s);
  for (; i < k; ++i) total += int32_t{a[i]} * int32_t{b[i]};
  return total;
}

__attribute__((target("avx2"))) int32_t Int8DotKernelAvx2(const int8_t* a,
                                                          const int8_t* b,
                                                          int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  int32_t total = _mm_cvtsi128_si32(s);
  for (; i < k; ++i) total += int32_t{a[i]} * int32_t{b[i]};
  return total;
}

#endif  // DODUO_X86_SIMD

using Int8DotFn = int32_t (*)(const int8_t*, const int8_t*, int64_t);

// Runtime dispatch, same pattern as ops.cc: pick the widest kernel the CPU
// supports, DODUO_SIMD=0 forces scalar; cached per process.
struct Int8DotChoice {
  const char* name;
  Int8DotFn fn;
};

Int8DotChoice PickInt8Dot() {
  static const Int8DotChoice choice = [] {
#if defined(DODUO_X86_SIMD)
    if (util::GetEnvInt("DODUO_SIMD", 1) != 0) {
      if (__builtin_cpu_supports("avx2") != 0) {
        return Int8DotChoice{"avx2", &Int8DotKernelAvx2};
      }
      return Int8DotChoice{"sse2", &Int8DotKernelSse2};
    }
#endif
    return Int8DotChoice{"scalar", &Int8DotKernelScalar};
  }();
  return choice;
}

// Quantizes one activation row: scale = max|x| / 127 (1.0 for an all-zero
// row, so the dequant multiply stays finite), round-to-nearest, clamped to
// [-127, 127].
float QuantizeRow(const float* x, int64_t k, int8_t* q) {
  float max_abs = 0.0f;
  for (int64_t i = 0; i < k; ++i) {
    const float a = std::fabs(x[i]);
    if (a > max_abs) max_abs = a;
  }
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (int64_t i = 0; i < k; ++i) {
    const long r = std::lrintf(x[i] * inv);
    q[i] = static_cast<int8_t>(r < -127 ? -127 : (r > 127 ? 127 : r));
  }
  return scale;
}

}  // namespace

bool QuantEnabled() {
  int v = g_quant_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = util::GetEnvInt("DODUO_QUANT", 0) != 0 ? 1 : 0;
    g_quant_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetQuantEnabled(bool enabled) {
  g_quant_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

const char* Int8KernelName() { return PickInt8Dot().name; }

std::vector<Int8DotKernelEntry> Int8DotKernels() {
  std::vector<Int8DotKernelEntry> kernels;
  kernels.push_back({"scalar", &Int8DotKernelScalar});
#if defined(DODUO_X86_SIMD)
  kernels.push_back({"sse2", &Int8DotKernelSse2});
  if (__builtin_cpu_supports("avx2") != 0) {
    kernels.push_back({"avx2", &Int8DotKernelAvx2});
  }
#endif
  return kernels;
}

void QuantizeWeight(const Tensor& w, QuantizedWeight* out) {
  DODUO_CHECK_EQ(w.ndim(), 2);
  const int64_t in = w.rows();
  const int64_t out_channels = w.cols();
  out->in = in;
  out->out = out_channels;
  // One-time lazy quantization: Linear::QuantView caches the result per
  // weight revision, so steady-state forwards never reach these resizes.
  out->q.resize(static_cast<size_t>(in * out_channels));  // NOLINT(hot-path-alloc)
  out->scale.resize(static_cast<size_t>(out_channels));   // NOLINT(hot-path-alloc)
  const float* wd = w.data();
  for (int64_t j = 0; j < out_channels; ++j) {
    float max_abs = 0.0f;
    for (int64_t i = 0; i < in; ++i) {
      const float a = std::fabs(wd[i * out_channels + j]);
      if (a > max_abs) max_abs = a;
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    out->scale[static_cast<size_t>(j)] = scale;
    const float inv = 1.0f / scale;
    int8_t* qrow = out->q.data() + j * in;
    for (int64_t i = 0; i < in; ++i) {
      const long r = std::lrintf(wd[i * out_channels + j] * inv);
      qrow[i] = static_cast<int8_t>(r < -127 ? -127 : (r > 127 ? 127 : r));
    }
  }
}

void Int8Linear(const Tensor& x, const Int8WeightView& w, const float* bias,
                Tensor* y) {
  DODUO_CHECK_EQ(x.ndim(), 2);
  DODUO_CHECK(w.q != nullptr && w.scale != nullptr);
  DODUO_CHECK_EQ(x.cols(), w.in);
  DODUO_CHECK_LE(w.in, kMaxInt8DotK);
  const int64_t m = x.rows();
  const int64_t k = w.in;
  const int64_t n = w.out;
  y->ResizeUninitialized({m, n});

  // Dynamic per-row activation quantization. Scratch is per call; the quant
  // path trades the zero-alloc contract for int8 bandwidth.
  std::vector<int8_t> qx(static_cast<size_t>(m * k));
  std::vector<float> sx(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    sx[static_cast<size_t>(i)] = QuantizeRow(x.row(i), k, qx.data() + i * k);
  }

  const Int8DotFn dot = PickInt8Dot().fn;
  auto rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const int8_t* xi = qx.data() + i * k;
      const float sa = sx[static_cast<size_t>(i)];
      float* yi = y->row(i);
      for (int64_t j = 0; j < n; ++j) {
        const int32_t acc = dot(xi, w.q + j * k, k);
        const float v = sa * w.scale[j] * static_cast<float>(acc);
        yi[j] = bias != nullptr ? v + bias[j] : v;
      }
    }
  };
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(0, m, /*grain=*/1, rows);
  } else {
    rows(0, m);
  }
}

}  // namespace doduo::nn
