#include "doduo/nn/ops.h"

#include <algorithm>
#include <cmath>

#include "doduo/util/env.h"
#include "doduo/util/thread_pool.h"

namespace doduo::nn {

namespace {

void CheckMatrix(const Tensor& t, const char* name) {
  DODUO_CHECK_EQ(t.ndim(), 2) << name << " must be 2-D, got "
                              << t.ShapeString();
}

// The GEMM family shards *output rows* across the compute pool. Each output
// element is written by exactly one chunk, and every kernel accumulates its
// k-dimension in ascending order for each element regardless of chunk
// boundaries, so results are bit-identical at any thread count (the
// determinism contract the training/annotation stack relies on).

// k-tile height for the blocked kernels: a kBlockK × n panel of B stays hot
// in cache while a shard of output rows streams over it.
constexpr int64_t kBlockK = 64;

// Kernels go parallel only above this m·k·n volume; below it the fork/join
// cost dominates and the serial path wins. DODUO_PARALLEL_THRESHOLD
// overrides the default (the parity/determinism tests set it to 1 so even
// miniature models exercise the sharded path).
int64_t ParallelVolumeThreshold() {
  static const int64_t threshold =
      util::GetEnvInt("DODUO_PARALLEL_THRESHOLD", 64 * 64 * 64);
  return threshold;
}

bool ShouldParallelize(int64_t m, int64_t k, int64_t n) {
  return m > 1 && m * k * n >= ParallelVolumeThreshold() &&
         util::ComputeThreads() > 1;
}

// C[i,:] (+)= A[i,:] · B for i in [row_begin, row_end). Processes B in
// kBlockK-row panels shared by all rows of the shard; for each element the
// k-loop still runs 0..k-1 ascending.
void MatMulRows(const float* pa, const float* pb, float* pc, int64_t k,
                int64_t n, int64_t row_begin, int64_t row_end) {
  for (int64_t kb = 0; kb < k; kb += kBlockK) {
    const int64_t k_end = std::min<int64_t>(k, kb + kBlockK);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t l = kb; l < k_end; ++l) {
        const float av = arow[l];
        if (av == 0.0f) continue;
        const float* brow = pb + l * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// C[m,n] (+)= A[m,k] · B[k,n].
void MatMulImpl(const Tensor& a, const Tensor& b, Tensor* out,
                bool accumulate) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DODUO_CHECK_EQ(k, b.rows()) << "inner dimensions differ: "
                              << a.ShapeString() << " vs " << b.ShapeString();
  if (accumulate) {
    DODUO_CHECK(out->ndim() == 2 && out->rows() == m && out->cols() == n);
  } else {
    out->ResizeUninitialized({m, n});
    out->Zero();
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(
        0, m, /*grain=*/1, [&](int64_t row_begin, int64_t row_end) {
          MatMulRows(pa, pb, pc, k, n, row_begin, row_end);
        });
  } else {
    MatMulRows(pa, pb, pc, k, n, 0, m);
  }
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  MatMulImpl(a, b, out, /*accumulate=*/false);
}

void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  MatMulImpl(a, b, out, /*accumulate=*/true);
}

void MatMulTransposedB(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DODUO_CHECK_EQ(k, b.cols()) << "inner dimensions differ: "
                              << a.ShapeString() << " vs " << b.ShapeString();
  out->ResizeUninitialized({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  auto rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = pa + i * k;
      for (int64_t j = 0; j < n; ++j) {
        pc[i * n + j] = Dot(arow, pb + j * k, k);
      }
    }
  };
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(0, m, /*grain=*/1, rows);
  } else {
    rows(0, m);
  }
}

namespace {

// C[:, i..] shard for i in [col_begin, col_end), where C[i,j] accumulates
// sum_l a[l,i]·b[l,j] with l ascending — the same per-element order the
// serial rank-1 loop below produces, so serial and parallel paths match
// bit-for-bit. B is walked in kBlockK-row panels for reuse across the
// shard's output rows.
void MatMulTransposedARows(const float* pa, const float* pb, float* pc,
                           int64_t k, int64_t m, int64_t n, int64_t col_begin,
                           int64_t col_end) {
  for (int64_t kb = 0; kb < k; kb += kBlockK) {
    const int64_t k_end = std::min<int64_t>(k, kb + kBlockK);
    for (int64_t i = col_begin; i < col_end; ++i) {
      float* crow = pc + i * n;
      for (int64_t l = kb; l < k_end; ++l) {
        const float av = pa[l * m + i];
        if (av == 0.0f) continue;
        const float* brow = pb + l * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

void MatMulTransposedAAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  DODUO_CHECK_EQ(k, b.rows()) << "leading dimensions differ: "
                              << a.ShapeString() << " vs " << b.ShapeString();
  DODUO_CHECK(out->ndim() == 2 && out->rows() == m && out->cols() == n)
      << "accumulator must be preallocated to [" << m << ", " << n << "]";
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(
        0, m, /*grain=*/1, [&](int64_t col_begin, int64_t col_end) {
          MatMulTransposedARows(pa, pb, pc, k, m, n, col_begin, col_end);
        });
    return;
  }
  // Serial path: rank-1 update per row l of a/b; all three operands are
  // streamed. Per element (i,j) the updates still land in ascending-l
  // order, matching the sharded path above.
  for (int64_t l = 0; l < k; ++l) {
    const float* arow = pa + l * m;
    const float* brow = pb + l * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposedA(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  out->ResizeUninitialized({a.cols(), b.cols()});
  out->Zero();
  MatMulTransposedAAccum(a, b, out);
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  DODUO_CHECK(SameShape(a, b));
  out->ResizeUninitialized(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
}

void AddInPlace(Tensor* a, const Tensor& b) {
  DODUO_CHECK(SameShape(*a, b));
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] += pb[i];
}

void AddScaled(Tensor* a, const Tensor& b, float scale) {
  DODUO_CHECK(SameShape(*a, b));
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] += scale * pb[i];
}

void Scale(Tensor* a, float scale) {
  float* pa = a->data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] *= scale;
}

void AddRowBroadcast(Tensor* a, const Tensor& bias) {
  CheckMatrix(*a, "a");
  DODUO_CHECK_EQ(bias.ndim(), 1);
  DODUO_CHECK_EQ(a->cols(), bias.dim(0));
  const int64_t n = a->cols();
  const float* pb = bias.data();
  for (int64_t i = 0; i < a->rows(); ++i) {
    float* row = a->row(i);
    for (int64_t j = 0; j < n; ++j) row[j] += pb[j];
  }
}

void ColumnSumAccum(const Tensor& a, Tensor* out) {
  CheckMatrix(a, "a");
  DODUO_CHECK_EQ(out->ndim(), 1);
  DODUO_CHECK_EQ(out->dim(0), a.cols());
  const int64_t n = a.cols();
  float* po = out->data();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
}

void SoftmaxRows(const Tensor& logits, Tensor* probs) {
  CheckMatrix(logits, "logits");
  probs->ResizeUninitialized(logits.shape());
  const int64_t n = logits.cols();
  for (int64_t i = 0; i < logits.rows(); ++i) {
    const float* in = logits.row(i);
    float* out = probs->row(i);
    float max_logit = in[0];
    for (int64_t j = 1; j < n; ++j) max_logit = std::max(max_logit, in[j]);
    double total = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      out[j] = std::exp(in[j] - max_logit);
      total += out[j];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (int64_t j = 0; j < n; ++j) out[j] *= inv;
  }
}

void SoftmaxRowsBackward(const Tensor& probs, const Tensor& grad_out,
                         Tensor* grad_in) {
  DODUO_CHECK(SameShape(probs, grad_out));
  grad_in->ResizeUninitialized(probs.shape());
  const int64_t n = probs.cols();
  for (int64_t i = 0; i < probs.rows(); ++i) {
    const float* p = probs.row(i);
    const float* dy = grad_out.row(i);
    float* dx = grad_in->row(i);
    double inner = 0.0;
    for (int64_t j = 0; j < n; ++j) inner += static_cast<double>(dy[j]) * p[j];
    const float inner_f = static_cast<float>(inner);
    for (int64_t j = 0; j < n; ++j) dx[j] = p[j] * (dy[j] - inner_f);
  }
}

void LogSoftmaxRows(const Tensor& logits, Tensor* log_probs) {
  CheckMatrix(logits, "logits");
  log_probs->ResizeUninitialized(logits.shape());
  const int64_t n = logits.cols();
  for (int64_t i = 0; i < logits.rows(); ++i) {
    const float* in = logits.row(i);
    float* out = log_probs->row(i);
    float max_logit = in[0];
    for (int64_t j = 1; j < n; ++j) max_logit = std::max(max_logit, in[j]);
    double total = 0.0;
    for (int64_t j = 0; j < n; ++j) total += std::exp(in[j] - max_logit);
    const float log_z = max_logit + static_cast<float>(std::log(total));
    for (int64_t j = 0; j < n; ++j) out[j] = in[j] - log_z;
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return acc0 + acc1 + acc2 + acc3;
}

float CosineSimilarity(const float* a, const float* b, int64_t n) {
  const float dot = Dot(a, b, n);
  const float na = Dot(a, a, n);
  const float nb = Dot(b, b, n);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace doduo::nn
