#include "doduo/nn/ops.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define DODUO_X86_SIMD 1
#endif

#include "doduo/util/env.h"
#include "doduo/util/thread_pool.h"

namespace doduo::nn {

namespace {

void CheckMatrix(const Tensor& t, const char* name) {
  DODUO_CHECK_EQ(t.ndim(), 2) << name << " must be 2-D, got "
                              << t.ShapeString();
}

// The GEMM family shards *output rows* across the compute pool. Each output
// element is written by exactly one chunk, and every kernel accumulates its
// k-dimension in ascending order for each element regardless of chunk
// boundaries, so results are bit-identical at any thread count (the
// determinism contract the training/annotation stack relies on).

// k-tile height for the blocked kernels: a kBlockK × n panel of B stays hot
// in cache while a shard of output rows streams over it.
constexpr int64_t kBlockK = 64;

// Kernels go parallel only above this m·k·n volume; below it the fork/join
// cost dominates and the serial path wins. DODUO_PARALLEL_THRESHOLD
// overrides the default (the parity/determinism tests set it to 1 so even
// miniature models exercise the sharded path).
int64_t ParallelVolumeThreshold() {
  static const int64_t threshold =
      util::GetEnvInt("DODUO_PARALLEL_THRESHOLD", 64 * 64 * 64);
  return threshold;
}

bool ShouldParallelize(int64_t m, int64_t k, int64_t n) {
  return m > 1 && m * k * n >= ParallelVolumeThreshold() &&
         util::ComputeThreads() > 1;
}

// --- SIMD fast paths ------------------------------------------------------
//
// The vector kernels below are drop-in replacements for the scalar loops
// with the SAME per-element FP operation order, so they are bit-identical to
// the scalar code (and therefore to pre-SIMD checkpoints and goldens):
//  * axpy-style updates (c[j] += a·b[j]) are independent per j, so any
//    vector width is exact; we only unroll the k-loop by 4, which keeps the
//    per-element accumulation in ascending-k order.
//  * Dot's four scalar accumulators map one-to-one onto the four lanes of an
//    SSE register (acc_m sums a[4i+m]·b[4i+m] sequentially), and the final
//    reduction extracts lanes and adds them left-associatively exactly like
//    the scalar `acc0 + acc1 + acc2 + acc3`.
// No FMA: mulps/addps round each op separately, like the scalar code. The
// AVX paths are compiled per-function via target attributes (FMA is *not*
// enabled, so the compiler cannot contract mul+add) and selected at runtime
// with __builtin_cpu_supports; DODUO_SIMD=0 forces the scalar paths.

#if defined(DODUO_X86_SIMD)

bool UseAvx() {
  static const bool avx = __builtin_cpu_supports("avx") != 0 &&
                          util::GetEnvInt("DODUO_SIMD", 1) != 0;
  return avx;
}

// c[j] += av * b[j] for j in [0, n); exact per-j scalar semantics.
__attribute__((target("avx"))) inline void Axpy8(float* c, const float* b,
                                                 float av, int64_t n) {
  const __m256 va = _mm256_set1_ps(av);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 vc = _mm256_loadu_ps(c + j);
    vc = _mm256_add_ps(vc, _mm256_mul_ps(va, _mm256_loadu_ps(b + j)));
    _mm256_storeu_ps(c + j, vc);
  }
  for (; j < n; ++j) c[j] += av * b[j];
}

// Shared body of the two panel kernels: accumulates four consecutive k-rows
// b0..b3 of B (weighted a0..a3) into crow. The all-nonzero fast path chains
// the four updates per element in ascending-k order — the same order the
// scalar kernel produces — and amortizes the load/store of crow 4×; any
// zero weight falls back to per-row updates to preserve the zero-skip
// semantics exactly (0·inf/NaN would otherwise change bits).
__attribute__((target("avx"))) inline void AccumPanel4Avx(
    float* crow, const float* b0, const float* b1, const float* b2,
    const float* b3, float a0, float a1, float a2, float a3, int64_t n) {
  if (a0 != 0.0f && a1 != 0.0f && a2 != 0.0f && a3 != 0.0f) {
    const __m256 va0 = _mm256_set1_ps(a0);
    const __m256 va1 = _mm256_set1_ps(a1);
    const __m256 va2 = _mm256_set1_ps(a2);
    const __m256 va3 = _mm256_set1_ps(a3);
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 vc = _mm256_loadu_ps(crow + j);
      vc = _mm256_add_ps(vc, _mm256_mul_ps(va0, _mm256_loadu_ps(b0 + j)));
      vc = _mm256_add_ps(vc, _mm256_mul_ps(va1, _mm256_loadu_ps(b1 + j)));
      vc = _mm256_add_ps(vc, _mm256_mul_ps(va2, _mm256_loadu_ps(b2 + j)));
      vc = _mm256_add_ps(vc, _mm256_mul_ps(va3, _mm256_loadu_ps(b3 + j)));
      _mm256_storeu_ps(crow + j, vc);
    }
    for (; j < n; ++j) {
      float c = crow[j];
      c += a0 * b0[j];
      c += a1 * b1[j];
      c += a2 * b2[j];
      c += a3 * b3[j];
      crow[j] = c;
    }
  } else {
    if (a0 != 0.0f) Axpy8(crow, b0, a0, n);
    if (a1 != 0.0f) Axpy8(crow, b1, a1, n);
    if (a2 != 0.0f) Axpy8(crow, b2, a2, n);
    if (a3 != 0.0f) Axpy8(crow, b3, a3, n);
  }
}

// Computes four dot products sharing the same left operand. Lane m of each
// accumulator sums a[4i+m]·b[4i+m] in ascending-i order and the reduction
// is left-associative, replicating Dot() bit-for-bit while giving the CPU
// four independent dependency chains (Dot's single chain is latency-bound).
inline void Dot4Sse(const float* a, const float* b0, const float* b1,
                    const float* b2, const float* b3, int64_t n, float* out) {
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  __m128 acc2 = _mm_setzero_ps();
  __m128 acc3 = _mm_setzero_ps();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 va = _mm_loadu_ps(a + i);
    acc0 = _mm_add_ps(acc0, _mm_mul_ps(va, _mm_loadu_ps(b0 + i)));
    acc1 = _mm_add_ps(acc1, _mm_mul_ps(va, _mm_loadu_ps(b1 + i)));
    acc2 = _mm_add_ps(acc2, _mm_mul_ps(va, _mm_loadu_ps(b2 + i)));
    acc3 = _mm_add_ps(acc3, _mm_mul_ps(va, _mm_loadu_ps(b3 + i)));
  }
  alignas(16) float l0[4], l1[4], l2[4], l3[4];
  _mm_store_ps(l0, acc0);
  _mm_store_ps(l1, acc1);
  _mm_store_ps(l2, acc2);
  _mm_store_ps(l3, acc3);
  for (; i < n; ++i) {
    const float av = a[i];
    l0[0] += av * b0[i];
    l1[0] += av * b1[i];
    l2[0] += av * b2[i];
    l3[0] += av * b3[i];
  }
  out[0] = l0[0] + l0[1] + l0[2] + l0[3];
  out[1] = l1[0] + l1[1] + l1[2] + l1[3];
  out[2] = l2[0] + l2[1] + l2[2] + l2[3];
  out[3] = l3[0] + l3[1] + l3[2] + l3[3];
}

#endif  // DODUO_X86_SIMD

// C[i,:] (+)= A[i,:] · B for i in [row_begin, row_end). Processes B in
// kBlockK-row panels shared by all rows of the shard; for each element the
// k-loop still runs 0..k-1 ascending. Row strides are passed explicitly so
// the same kernel (and therefore the same per-element FP order) serves both
// contiguous tensors and strided column-band views.
void MatMulRowsScalar(const float* pa, const float* pb, float* pc, int64_t k,
                      int64_t n, int64_t row_begin, int64_t row_end,
                      int64_t a_stride, int64_t b_stride, int64_t c_stride) {
  for (int64_t kb = 0; kb < k; kb += kBlockK) {
    const int64_t k_end = std::min<int64_t>(k, kb + kBlockK);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = pa + i * a_stride;
      float* crow = pc + i * c_stride;
      for (int64_t l = kb; l < k_end; ++l) {
        const float av = arow[l];
        if (av == 0.0f) continue;
        const float* brow = pb + l * b_stride;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

#if defined(DODUO_X86_SIMD)

// AVX variant of MatMulRowsScalar: k-loop unrolled by 4 with the panel
// helper; per-element accumulation order is unchanged.
__attribute__((target("avx"))) void MatMulRowsAvx(
    const float* pa, const float* pb, float* pc, int64_t k, int64_t n,
    int64_t row_begin, int64_t row_end, int64_t a_stride, int64_t b_stride,
    int64_t c_stride) {
  for (int64_t kb = 0; kb < k; kb += kBlockK) {
    const int64_t k_end = std::min<int64_t>(k, kb + kBlockK);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = pa + i * a_stride;
      float* crow = pc + i * c_stride;
      int64_t l = kb;
      for (; l + 4 <= k_end; l += 4) {
        const float* b0 = pb + l * b_stride;
        AccumPanel4Avx(crow, b0, b0 + b_stride, b0 + 2 * b_stride,
                       b0 + 3 * b_stride, arow[l], arow[l + 1], arow[l + 2],
                       arow[l + 3], n);
      }
      for (; l < k_end; ++l) {
        const float av = arow[l];
        if (av == 0.0f) continue;
        Axpy8(crow, pb + l * b_stride, av, n);
      }
    }
  }
}

#endif  // DODUO_X86_SIMD

void MatMulRows(const float* pa, const float* pb, float* pc, int64_t k,
                int64_t n, int64_t row_begin, int64_t row_end,
                int64_t a_stride, int64_t b_stride, int64_t c_stride) {
#if defined(DODUO_X86_SIMD)
  if (UseAvx()) {
    MatMulRowsAvx(pa, pb, pc, k, n, row_begin, row_end, a_stride, b_stride,
                  c_stride);
    return;
  }
#endif
  MatMulRowsScalar(pa, pb, pc, k, n, row_begin, row_end, a_stride, b_stride,
                   c_stride);
}

// C[m,n] (+)= A[m,k] · B[k,n].
void MatMulImpl(const Tensor& a, const Tensor& b, Tensor* out,
                bool accumulate) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  DODUO_CHECK_EQ(k, b.rows()) << "inner dimensions differ: "
                              << a.ShapeString() << " vs " << b.ShapeString();
  if (accumulate) {
    DODUO_CHECK(out->ndim() == 2 && out->rows() == m && out->cols() == n);
  } else {
    out->ResizeUninitialized({m, n});
    out->Zero();
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(
        0, m, /*grain=*/1, [&](int64_t row_begin, int64_t row_end) {
          MatMulRows(pa, pb, pc, k, n, row_begin, row_end, k, n, n);
        });
  } else {
    MatMulRows(pa, pb, pc, k, n, 0, m, k, n, n);
  }
}

void CheckView(const ConstMatView& v, const char* name) {
  DODUO_CHECK(v.data != nullptr && v.rows > 0 && v.cols > 0 &&
              v.stride >= v.cols)
      << "invalid view " << name;
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  MatMulImpl(a, b, out, /*accumulate=*/false);
}

void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  MatMulImpl(a, b, out, /*accumulate=*/true);
}

void MatMulTransposedB(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  DODUO_CHECK_EQ(k, b.cols()) << "inner dimensions differ: "
                              << a.ShapeString() << " vs " << b.ShapeString();
  out->ResizeUninitialized({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  auto rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = pa + i * k;
      int64_t j = 0;
#if defined(DODUO_X86_SIMD)
      // Four dots per step share arow and run four independent accumulator
      // chains; each dot's bit pattern matches Dot() exactly.
      for (; j + 4 <= n; j += 4) {
        const float* brow = pb + j * k;
        Dot4Sse(arow, brow, brow + k, brow + 2 * k, brow + 3 * k, k,
                pc + i * n + j);
      }
#endif
      for (; j < n; ++j) {
        pc[i * n + j] = Dot(arow, pb + j * k, k);
      }
    }
  };
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(0, m, /*grain=*/1, rows);
  } else {
    rows(0, m);
  }
}

namespace {

// C[:, i..] shard for i in [col_begin, col_end), where C[i,j] accumulates
// sum_l a[l,i]·b[l,j] with l ascending — the same per-element order the
// serial rank-1 loop below produces, so serial and parallel paths match
// bit-for-bit. B is walked in kBlockK-row panels for reuse across the
// shard's output rows. Strided like MatMulRows so views share the kernel.
void MatMulTransposedARowsScalar(const float* pa, const float* pb, float* pc,
                                 int64_t k, int64_t n, int64_t col_begin,
                                 int64_t col_end, int64_t a_stride,
                                 int64_t b_stride, int64_t c_stride) {
  for (int64_t kb = 0; kb < k; kb += kBlockK) {
    const int64_t k_end = std::min<int64_t>(k, kb + kBlockK);
    for (int64_t i = col_begin; i < col_end; ++i) {
      float* crow = pc + i * c_stride;
      for (int64_t l = kb; l < k_end; ++l) {
        const float av = pa[l * a_stride + i];
        if (av == 0.0f) continue;
        const float* brow = pb + l * b_stride;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

#if defined(DODUO_X86_SIMD)

// AVX variant: identical structure, k-loop unrolled by 4 via the panel
// helper (A's weights come from a strided column walk instead of a row).
__attribute__((target("avx"))) void MatMulTransposedARowsAvx(
    const float* pa, const float* pb, float* pc, int64_t k, int64_t n,
    int64_t col_begin, int64_t col_end, int64_t a_stride, int64_t b_stride,
    int64_t c_stride) {
  for (int64_t kb = 0; kb < k; kb += kBlockK) {
    const int64_t k_end = std::min<int64_t>(k, kb + kBlockK);
    for (int64_t i = col_begin; i < col_end; ++i) {
      float* crow = pc + i * c_stride;
      int64_t l = kb;
      for (; l + 4 <= k_end; l += 4) {
        const float* acol = pa + l * a_stride + i;
        const float* b0 = pb + l * b_stride;
        AccumPanel4Avx(crow, b0, b0 + b_stride, b0 + 2 * b_stride,
                       b0 + 3 * b_stride, acol[0], acol[a_stride],
                       acol[2 * a_stride], acol[3 * a_stride], n);
      }
      for (; l < k_end; ++l) {
        const float av = pa[l * a_stride + i];
        if (av == 0.0f) continue;
        Axpy8(crow, pb + l * b_stride, av, n);
      }
    }
  }
}

#endif  // DODUO_X86_SIMD

void MatMulTransposedARows(const float* pa, const float* pb, float* pc,
                           int64_t k, int64_t n, int64_t col_begin,
                           int64_t col_end, int64_t a_stride, int64_t b_stride,
                           int64_t c_stride) {
#if defined(DODUO_X86_SIMD)
  if (UseAvx()) {
    MatMulTransposedARowsAvx(pa, pb, pc, k, n, col_begin, col_end, a_stride,
                             b_stride, c_stride);
    return;
  }
#endif
  MatMulTransposedARowsScalar(pa, pb, pc, k, n, col_begin, col_end, a_stride,
                              b_stride, c_stride);
}

}  // namespace

void MatMulTransposedAAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  DODUO_CHECK_EQ(k, b.rows()) << "leading dimensions differ: "
                              << a.ShapeString() << " vs " << b.ShapeString();
  DODUO_CHECK(out->ndim() == 2 && out->rows() == m && out->cols() == n)
      << "accumulator must be preallocated to [" << m << ", " << n << "]";
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(
        0, m, /*grain=*/1, [&](int64_t col_begin, int64_t col_end) {
          MatMulTransposedARows(pa, pb, pc, k, n, col_begin, col_end, m, n, n);
        });
    return;
  }
#if defined(DODUO_X86_SIMD)
  // The panel kernel produces the same bits as the rank-1 loop below (per
  // element, ascending-l accumulation); its AVX form is faster serially too.
  if (UseAvx()) {
    MatMulTransposedARows(pa, pb, pc, k, n, 0, m, m, n, n);
    return;
  }
#endif
  // Serial path: rank-1 update per row l of a/b; all three operands are
  // streamed. Per element (i,j) the updates still land in ascending-l
  // order, matching the sharded path above.
  for (int64_t l = 0; l < k; ++l) {
    const float* arow = pa + l * m;
    const float* brow = pb + l * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransposedA(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckMatrix(a, "a");
  CheckMatrix(b, "b");
  out->ResizeUninitialized({a.cols(), b.cols()});
  out->Zero();
  MatMulTransposedAAccum(a, b, out);
}

ConstMatView FullView(const Tensor& t) {
  DODUO_CHECK_EQ(t.ndim(), 2);
  return {t.data(), t.rows(), t.cols(), t.cols()};
}

ConstMatView ColumnsView(const Tensor& t, int64_t col_begin, int64_t cols) {
  DODUO_CHECK_EQ(t.ndim(), 2);
  DODUO_CHECK(col_begin >= 0 && cols > 0 && col_begin + cols <= t.cols());
  return {t.data() + col_begin, t.rows(), cols, t.cols()};
}

MutMatView MutColumnsView(Tensor* t, int64_t col_begin, int64_t cols) {
  DODUO_CHECK_EQ(t->ndim(), 2);
  DODUO_CHECK(col_begin >= 0 && cols > 0 && col_begin + cols <= t->cols());
  return {t->data() + col_begin, t->rows(), cols, t->cols()};
}

namespace {

ConstMatView AsConst(const MutMatView& v) {
  return {v.data, v.rows, v.cols, v.stride};
}

// Overwrites the [rows, cols] region addressed by the view with zeros (rows
// may be interleaved with live data of the enclosing buffer).
void ZeroView(const MutMatView& v) {
  for (int64_t i = 0; i < v.rows; ++i) {
    std::fill(v.data + i * v.stride, v.data + i * v.stride + v.cols, 0.0f);
  }
}

}  // namespace

void MatMulView(ConstMatView a, ConstMatView b, MutMatView out) {
  CheckView(a, "a");
  CheckView(b, "b");
  CheckView(AsConst(out), "out");
  const int64_t m = a.rows;
  const int64_t k = a.cols;
  const int64_t n = b.cols;
  DODUO_CHECK_EQ(k, b.rows) << "inner dimensions differ";
  DODUO_CHECK(out.rows == m && out.cols == n);
  ZeroView(out);
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(
        0, m, /*grain=*/1, [&](int64_t row_begin, int64_t row_end) {
          MatMulRows(a.data, b.data, out.data, k, n, row_begin, row_end,
                     a.stride, b.stride, out.stride);
        });
  } else {
    MatMulRows(a.data, b.data, out.data, k, n, 0, m, a.stride, b.stride,
               out.stride);
  }
}

void MatMulTransposedBView(ConstMatView a, ConstMatView b, Tensor* out) {
  CheckView(a, "a");
  CheckView(b, "b");
  const int64_t m = a.rows;
  const int64_t k = a.cols;
  const int64_t n = b.rows;
  DODUO_CHECK_EQ(k, b.cols) << "inner dimensions differ";
  out->ResizeUninitialized({m, n});
  float* pc = out->data();
  auto rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a.data + i * a.stride;
      int64_t j = 0;
#if defined(DODUO_X86_SIMD)
      for (; j + 4 <= n; j += 4) {
        const float* brow = b.data + j * b.stride;
        Dot4Sse(arow, brow, brow + b.stride, brow + 2 * b.stride,
                brow + 3 * b.stride, k, pc + i * n + j);
      }
#endif
      for (; j < n; ++j) {
        pc[i * n + j] = Dot(arow, b.data + j * b.stride, k);
      }
    }
  };
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(0, m, /*grain=*/1, rows);
  } else {
    rows(0, m);
  }
}

void MatMulTransposedAView(ConstMatView a, ConstMatView b, MutMatView out) {
  CheckView(a, "a");
  CheckView(b, "b");
  CheckView(AsConst(out), "out");
  const int64_t k = a.rows;
  const int64_t m = a.cols;
  const int64_t n = b.cols;
  DODUO_CHECK_EQ(k, b.rows) << "leading dimensions differ";
  DODUO_CHECK(out.rows == m && out.cols == n);
  ZeroView(out);
  // Panel kernel on both paths: per element (i,j) the l-loop is ascending,
  // matching the contiguous MatMulTransposedA bit-for-bit.
  if (ShouldParallelize(m, k, n)) {
    util::ComputePool()->ParallelFor(
        0, m, /*grain=*/1, [&](int64_t col_begin, int64_t col_end) {
          MatMulTransposedARows(a.data, b.data, out.data, k, n, col_begin,
                                col_end, a.stride, b.stride, out.stride);
        });
  } else {
    MatMulTransposedARows(a.data, b.data, out.data, k, n, 0, m, a.stride,
                          b.stride, out.stride);
  }
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  DODUO_CHECK(SameShape(a, b));
  out->ResizeUninitialized(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
}

void AddInPlace(Tensor* a, const Tensor& b) {
  DODUO_CHECK(SameShape(*a, b));
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] += pb[i];
}

void AddScaled(Tensor* a, const Tensor& b, float scale) {
  DODUO_CHECK(SameShape(*a, b));
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] += scale * pb[i];
}

void Scale(Tensor* a, float scale) {
  float* pa = a->data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] *= scale;
}

void AddRowBroadcast(Tensor* a, const Tensor& bias) {
  CheckMatrix(*a, "a");
  DODUO_CHECK_EQ(bias.ndim(), 1);
  DODUO_CHECK_EQ(a->cols(), bias.dim(0));
  const int64_t n = a->cols();
  const float* pb = bias.data();
  for (int64_t i = 0; i < a->rows(); ++i) {
    float* row = a->row(i);
    for (int64_t j = 0; j < n; ++j) row[j] += pb[j];
  }
}

void ColumnSumAccum(const Tensor& a, Tensor* out) {
  CheckMatrix(a, "a");
  DODUO_CHECK_EQ(out->ndim(), 1);
  DODUO_CHECK_EQ(out->dim(0), a.cols());
  const int64_t n = a.cols();
  float* po = out->data();
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    for (int64_t j = 0; j < n; ++j) po[j] += row[j];
  }
}

namespace {

// One softmax row of the fused kernel: t_j = in_j * scale + mask_j, then
// max-subtract, exp, normalize. t is recomputed per pass instead of stored;
// the float ops match the unfused Scale → AddInPlace → SoftmaxRows sequence
// exactly, so results are bit-identical to it. A row whose shifted logits
// are all non-finite (fully masked with -inf, or NaN input) falls back to a
// uniform distribution instead of producing NaN.
void ScaleMaskSoftmaxRow(const float* in, const float* mask_row, float scale,
                         int64_t n, float* out) {
  float t0 = in[0] * scale;
  if (mask_row != nullptr) t0 += mask_row[0];
  float max_logit = t0;
  for (int64_t j = 1; j < n; ++j) {
    float t = in[j] * scale;
    if (mask_row != nullptr) t += mask_row[j];
    max_logit = std::max(max_logit, t);
  }
  if (!std::isfinite(max_logit)) {
    const float uniform = 1.0f / static_cast<float>(n);
    for (int64_t j = 0; j < n; ++j) out[j] = uniform;
    return;
  }
  double total = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    float t = in[j] * scale;
    if (mask_row != nullptr) t += mask_row[j];
    out[j] = std::exp(t - max_logit);
    total += static_cast<double>(out[j]);
  }
  const float inv = static_cast<float>(1.0 / total);
  for (int64_t j = 0; j < n; ++j) out[j] *= inv;
}

}  // namespace

void SoftmaxRows(const Tensor& logits, Tensor* probs) {
  ScaleMaskSoftmaxRows(logits, 1.0f, nullptr, probs);
}

void ScaleMaskSoftmaxRows(const Tensor& logits, float scale,
                          const Tensor* mask, Tensor* probs) {
  CheckMatrix(logits, "logits");
  if (mask != nullptr) {
    DODUO_CHECK(SameShape(logits, *mask))
        << "mask must match logits: " << logits.ShapeString() << " vs "
        << mask->ShapeString();
  }
  const int64_t m = logits.rows();
  const int64_t n = logits.cols();
  if (probs != &logits) probs->ResizeUninitialized(logits.shape());
  const float* pin = logits.data();
  const float* pmask = mask != nullptr ? mask->data() : nullptr;
  float* pout = probs->data();
  auto rows = [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      ScaleMaskSoftmaxRow(pin + i * n,
                          pmask != nullptr ? pmask + i * n : nullptr, scale, n,
                          pout + i * n);
    }
  };
  // Rows are independent and each row's FP order is fixed, so sharding
  // preserves the bit-determinism contract.
  if (ShouldParallelize(m, 1, n)) {
    util::ComputePool()->ParallelFor(0, m, /*grain=*/1, rows);
  } else {
    rows(0, m);
  }
}

void SoftmaxRowsBackward(const Tensor& probs, const Tensor& grad_out,
                         Tensor* grad_in) {
  DODUO_CHECK(SameShape(probs, grad_out));
  grad_in->ResizeUninitialized(probs.shape());
  const int64_t n = probs.cols();
  for (int64_t i = 0; i < probs.rows(); ++i) {
    const float* p = probs.row(i);
    const float* dy = grad_out.row(i);
    float* dx = grad_in->row(i);
    double inner = 0.0;
    for (int64_t j = 0; j < n; ++j)
      inner += static_cast<double>(dy[j]) * static_cast<double>(p[j]);
    const float inner_f = static_cast<float>(inner);
    for (int64_t j = 0; j < n; ++j) dx[j] = p[j] * (dy[j] - inner_f);
  }
}

void LogSoftmaxRows(const Tensor& logits, Tensor* log_probs) {
  CheckMatrix(logits, "logits");
  log_probs->ResizeUninitialized(logits.shape());
  const int64_t n = logits.cols();
  for (int64_t i = 0; i < logits.rows(); ++i) {
    const float* in = logits.row(i);
    float* out = log_probs->row(i);
    float max_logit = in[0];
    for (int64_t j = 1; j < n; ++j) max_logit = std::max(max_logit, in[j]);
    double total = 0.0;
    for (int64_t j = 0; j < n; ++j)
      total += static_cast<double>(std::exp(in[j] - max_logit));
    const float log_z = max_logit + static_cast<float>(std::log(total));
    for (int64_t j = 0; j < n; ++j) out[j] = in[j] - log_z;
  }
}

float Dot(const float* a, const float* b, int64_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return acc0 + acc1 + acc2 + acc3;
}

float CosineSimilarity(const float* a, const float* b, int64_t n) {
  const float dot = Dot(a, b, n);
  const float na = Dot(a, a, n);
  const float nb = Dot(b, b, n);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace doduo::nn
