#ifndef DODUO_NN_WORKSPACE_H_
#define DODUO_NN_WORKSPACE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "doduo/nn/tensor.h"

namespace doduo::nn {

/// Per-layer scratch-tensor arena. A layer asks for scratch by stable slot
/// id; each slot's buffer grows to its high-water mark on first use and is
/// reused verbatim afterwards, so steady-state Forward/Backward performs
/// zero heap allocations (asserted by the DODUO_COUNT_ALLOCS tests; see
/// DESIGN.md §9). Slots live in a deque, so references stay valid while new
/// slots are added.
///
/// Ownership: every layer that needs transient buffers (attention heads,
/// FFN activations, gradient scratch) owns one Workspace. Scratch handed out
/// by Get() is valid until the same slot is requested again, which gives
/// Forward→Backward lifetimes for free: forward caches and backward scratch
/// use distinct slots.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Scratch tensor for `slot`, resized (uninitialized) to `shape`. Slot ids
  /// should be small consecutive integers (an enum per layer).
  Tensor& Get(size_t slot, const std::vector<int64_t>& shape) {
    while (slots_.size() <= slot) slots_.emplace_back();
    Tensor& t = slots_[slot];
    t.ResizeUninitialized(shape);
    return t;
  }

  /// Total floats currently held across all slots (capacity diagnostics for
  /// the bench memory report).
  int64_t TotalFloats() const {
    int64_t total = 0;
    for (const Tensor& t : slots_) total += t.size();
    return total;
  }

 private:
  std::deque<Tensor> slots_;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_WORKSPACE_H_
