#include "doduo/nn/dropout.h"

namespace doduo::nn {

Dropout::Dropout(float rate, util::Rng* rng) : rate_(rate), rng_(rng) {
  DODUO_CHECK(rate >= 0.0f && rate < 1.0f);
  DODUO_CHECK(rng != nullptr);
}

const Tensor& Dropout::Forward(const Tensor& x) {
  if (!training_ || rate_ == 0.0f) {
    output_ = x;
    identity_last_forward_ = true;
    return output_;
  }
  identity_last_forward_ = false;
  mask_.ResizeUninitialized(x.shape());
  output_.ResizeUninitialized(x.shape());
  const float keep_scale = 1.0f / (1.0f - rate_);
  const float* in = x.data();
  float* mask = mask_.data();
  float* out = output_.data();
  for (int64_t i = 0; i < x.size(); ++i) {
    const float m = rng_->Bernoulli(rate_) ? 0.0f : keep_scale;
    mask[i] = m;
    out[i] = in[i] * m;
  }
  return output_;
}

const Tensor& Dropout::Backward(const Tensor& grad_out) {
  if (identity_last_forward_) {
    grad_input_ = grad_out;
    return grad_input_;
  }
  DODUO_CHECK(SameShape(grad_out, mask_));
  grad_input_.ResizeUninitialized(grad_out.shape());
  const float* dy = grad_out.data();
  const float* mask = mask_.data();
  float* dx = grad_input_.data();
  for (int64_t i = 0; i < grad_out.size(); ++i) dx[i] = dy[i] * mask[i];
  return grad_input_;
}

}  // namespace doduo::nn
