#include "doduo/nn/optimizer.h"

#include <cmath>

namespace doduo::nn {

LinearDecaySchedule::LinearDecaySchedule(double initial_lr,
                                         int64_t total_steps,
                                         int64_t warmup_steps)
    : initial_lr_(initial_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps) {
  DODUO_CHECK_GT(total_steps, 0);
  DODUO_CHECK_GE(warmup_steps, 0);
}

double LinearDecaySchedule::LearningRate(int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return initial_lr_ * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps_);
  }
  const double remaining =
      static_cast<double>(total_steps_ - step) /
      static_cast<double>(std::max<int64_t>(1, total_steps_ - warmup_steps_));
  return initial_lr_ * std::max(0.0, remaining);
}

Adam::Adam(ParameterList params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  moment1_.reserve(params_.size());
  moment2_.reserve(params_.size());
  for (Parameter* p : params_) {
    DODUO_CHECK(p != nullptr);
    moment1_.emplace_back(p->value.shape());
    moment2_.emplace_back(p->value.shape());
  }
}

void Adam::Step(double learning_rate) {
  if (options_.clip_norm > 0.0) {
    ClipGradientNorm(params_, options_.clip_norm);
  }
  ++step_count_;
  const double bias1 =
      1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bias2 =
      1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));
  const float beta1 = static_cast<float>(options_.beta1);
  const float beta2 = static_cast<float>(options_.beta2);
  const float one_minus_beta1 = 1.0f - beta1;
  const float one_minus_beta2 = 1.0f - beta2;
  const float eps = static_cast<float>(options_.epsilon);
  const float lr = static_cast<float>(learning_rate);
  const float decay = static_cast<float>(options_.weight_decay);

  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter* p = params_[pi];
    float* value = p->value.data();
    float* grad = p->grad.data();
    float* m = moment1_[pi].data();
    float* v = moment2_[pi].data();
    const int64_t n = p->value.size();
    for (int64_t i = 0; i < n; ++i) {
      float g = grad[i];
      if (decay > 0.0f) g += decay * value[i];  // decoupled L2 (AdamW-style)
      m[i] = beta1 * m[i] + one_minus_beta1 * g;
      v[i] = beta2 * v[i] + one_minus_beta2 * g * g;
      const float m_hat = m[i] / static_cast<float>(bias1);
      const float v_hat = v[i] / static_cast<float>(bias2);
      value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      grad[i] = 0.0f;
    }
    p->BumpRevision();  // invalidates the int8 quantization cache
  }
}

}  // namespace doduo::nn
