#ifndef DODUO_NN_EMBEDDING_H_
#define DODUO_NN_EMBEDDING_H_

#include <string>
#include <vector>

#include "doduo/nn/parameter.h"
#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"

namespace doduo::nn {

/// Lookup-table embedding: ids → rows of a trainable [vocab, dim] matrix.
class Embedding {
 public:
  /// Table initialized Normal(0, 0.02), matching BERT's initializer.
  Embedding(std::string name, int64_t vocab_size, int64_t dim,
            util::Rng* rng);

  /// ids (each in [0, vocab)) → [ids.size(), dim].
  const Tensor& Forward(const std::vector<int>& ids);

  /// Pointer form for callers that keep a precomputed id buffer (e.g. the
  /// position ids 0..max_positions-1 a BertModel fills once): embeds the
  /// first `count` ids without touching the caller's container.
  const Tensor& Forward(const int* ids, int64_t count);

  /// Accumulates grad_out [len, dim] into the rows selected by the cached
  /// ids of the last Forward call.
  void Backward(const Tensor& grad_out);

  /// Read-only row view for id, without caching (inference helpers).
  const float* Row(int id) const;

  ParameterList Parameters() { return {&table_}; }

  int64_t vocab_size() const { return table_.value.rows(); }
  int64_t dim() const { return table_.value.cols(); }

  Parameter& table() { return table_; }

 private:
  Parameter table_;  // [vocab, dim]
  std::vector<int> cached_ids_;
  Tensor output_;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_EMBEDDING_H_
