#ifndef DODUO_NN_LAYER_NORM_H_
#define DODUO_NN_LAYER_NORM_H_

#include <string>

#include "doduo/nn/parameter.h"
#include "doduo/nn/tensor.h"

namespace doduo::nn {

/// Row-wise layer normalization with learned gain/bias, as used after every
/// Transformer sub-layer: y = γ * (x - μ) / sqrt(σ² + ε) + β.
class LayerNorm {
 public:
  LayerNorm(std::string name, int64_t dim, float epsilon = 1e-5f);

  /// x: [m, dim] → [m, dim]; caches normalized activations for backward.
  const Tensor& Forward(const Tensor& x);

  /// grad_out: [m, dim] → d(loss)/dx [m, dim]; accumulates γ/β gradients.
  const Tensor& Backward(const Tensor& grad_out);

  ParameterList Parameters() { return {&gamma_, &beta_}; }

  int64_t dim() const { return gamma_.value.dim(0); }

 private:
  Parameter gamma_;  // [dim], initialized to 1
  Parameter beta_;   // [dim], initialized to 0
  float epsilon_;
  Tensor normalized_;  // cached (x - μ)/σ, shape [m, dim]
  Tensor rstd_;        // cached 1/σ per row, shape [m]
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_LAYER_NORM_H_
