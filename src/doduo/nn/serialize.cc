#include "doduo/nn/serialize.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "doduo/nn/quant.h"
#include "doduo/util/metrics.h"
#include "doduo/util/mmap_file.h"

namespace doduo::nn {

namespace {

constexpr uint32_t kMagic = 0x444F4455;  // "DODU"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kVersionV2 = 2;

// Both formats are little-endian on disk; the v2 loader aliases the mapped
// bytes directly, which only works on a little-endian host.
static_assert(std::endian::native == std::endian::little,
              "doduo checkpoints assume a little-endian host");

// Plausibility caps for checkpoint headers. A corrupt or truncated file can
// present arbitrary 64-bit lengths; without these caps a bad name length or
// tensor shape turns into a multi-gigabyte allocation (or std::bad_alloc)
// before the real read fails.
constexpr uint64_t kMaxParameters = 1u << 20;
constexpr uint64_t kMaxNameLength = 4096;
constexpr uint32_t kMaxDims = 8;
constexpr int64_t kMaxElements = int64_t{1} << 31;

void WriteU32(std::ofstream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU32(std::ifstream& in, uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadU64(std::ifstream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

util::Status SaveParameters(const std::string& path,
                            const ParameterList& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, static_cast<uint64_t>(params.size()));
  for (const Parameter* p : params) {
    WriteU64(out, static_cast<uint64_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU32(out, static_cast<uint32_t>(p->value.ndim()));
    for (int i = 0; i < p->value.ndim(); ++i) {
      WriteU64(out, static_cast<uint64_t>(p->value.dim(i)));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) return util::Status::IoError("failed writing " + path);
  return util::Status::Ok();
}

namespace {

// One checkpoint entry held in memory while LoadParameters matches it
// against the model. Entries are indexed by name so loading tolerates order
// changes and can re-pack legacy layouts (see the QKV shim below).
struct RawEntry {
  std::vector<int64_t> shape;
  std::vector<float> data;
  bool used = false;
};

// Defined with the rest of the v2 code below; LoadParameters dispatches to
// it when the version field reads 2.
util::Status LoadParametersV2(const std::string& path,
                              const ParameterList& params);

// Cold-start observability (DESIGN §14): how many checkpoint bytes each
// load path touched. Mapped bytes cost page faults on first access; copied
// bytes cost read+allocate up front.
util::Counter* BytesMappedCounter() {
  static util::Counter* counter = util::GetCounter("load.bytes_mapped");
  return counter;
}

util::Counter* BytesCopiedCounter() {
  static util::Counter* counter = util::GetCounter("load.bytes_copied");
  return counter;
}

bool SameExtents(const std::vector<int64_t>& shape, const Tensor& value) {
  if (static_cast<int>(shape.size()) != value.ndim()) return false;
  for (int i = 0; i < value.ndim(); ++i) {
    if (shape[static_cast<size_t>(i)] != value.dim(i)) return false;
  }
  return true;
}

// Weight-layout shim: checkpoints written before the packed-QKV attention
// store three [d, d] projections "<attn>.wq.w" / ".wk.w" / ".wv.w" (and
// three [d] biases) where the current model has one "<attn>.wqkv.w" of
// shape [d, 3d] (bias [3d]) with Q/K/V side by side in the columns. When the
// packed name is absent from the checkpoint, gather the three legacy parts
// into the packed layout so pre-refactor checkpoints keep loading.
util::Status LoadPackedQkv(const std::string& packed_name, Parameter* p,
                           std::map<std::string, RawEntry>* entries,
                           bool is_weight) {
  const std::string suffix = is_weight ? ".wqkv.w" : ".wqkv.b";
  const std::string base =
      packed_name.substr(0, packed_name.size() - suffix.size());
  const int64_t d3 = is_weight ? p->value.cols() : p->value.dim(0);
  if (d3 % 3 != 0) {
    return util::Status::InvalidArgument("bad packed shape for " + packed_name);
  }
  const int64_t d = d3 / 3;
  const char* parts[] = {".wq", ".wk", ".wv"};
  for (int part = 0; part < 3; ++part) {
    const std::string legacy =
        base + parts[part] + (is_weight ? ".w" : ".b");
    auto it = entries->find(legacy);
    if (it == entries->end()) {
      return util::Status::InvalidArgument(
          "checkpoint is missing parameter '" + packed_name +
          "' and legacy part '" + legacy + "'");
    }
    RawEntry& entry = it->second;
    const bool shape_ok =
        is_weight ? (entry.shape.size() == 2 && entry.shape[0] == p->value.rows() &&
                     entry.shape[1] == d)
                  : (entry.shape.size() == 1 && entry.shape[0] == d);
    if (!shape_ok) {
      return util::Status::InvalidArgument("shape mismatch for " + legacy);
    }
    if (is_weight) {
      // Scatter the legacy [rows, d] block into columns [part·d, (part+1)·d).
      const int64_t rows = p->value.rows();
      for (int64_t r = 0; r < rows; ++r) {
        float* dst = p->value.row(r) + part * d;
        const float* src = entry.data.data() + r * d;
        for (int64_t c = 0; c < d; ++c) dst[c] = src[c];
      }
    } else {
      float* dst = p->value.data() + part * d;
      for (int64_t c = 0; c < d; ++c) dst[c] = entry.data[static_cast<size_t>(c)];
    }
    entry.used = true;
  }
  return util::Status::Ok();
}

}  // namespace

util::Status LoadParameters(const std::string& path,
                            const ParameterList& params) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return util::Status::IoError("cannot open " + path);
  const int64_t file_size = static_cast<int64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return util::Status::InvalidArgument(path + " is not a doduo checkpoint");
  }
  if (!ReadU32(in, &version)) {
    return util::Status::IoError("truncated checkpoint " + path);
  }
  if (version == kVersionV2) {
    in.close();
    return LoadParametersV2(path, params);
  }
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadU64(in, &count)) {
    return util::Status::IoError("truncated checkpoint " + path);
  }
  if (count > kMaxParameters) {
    return util::Status::InvalidArgument(
        "corrupt checkpoint " + path + ": implausible parameter count " +
        std::to_string(count));
  }
  // Read every entry up front, indexed by name: loading is then insensitive
  // to parameter order and can re-pack legacy layouts.
  std::map<std::string, RawEntry> entries;
  for (uint64_t e = 0; e < count; ++e) {
    const std::string where =
        " (entry " + std::to_string(e) + " of " + std::to_string(count) + ")";
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len)) {
      return util::Status::IoError("truncated checkpoint " + path + where);
    }
    if (name_len == 0 || name_len > kMaxNameLength) {
      return util::Status::InvalidArgument(
          "corrupt checkpoint " + path + ": implausible name length " +
          std::to_string(name_len) + where);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint32_t ndim = 0;
    if (!in || !ReadU32(in, &ndim)) {
      return util::Status::IoError("truncated checkpoint " + path + where);
    }
    if (ndim > kMaxDims) {
      return util::Status::InvalidArgument(
          "corrupt checkpoint " + path + ": parameter '" + name + "' claims " +
          std::to_string(ndim) + " dimensions" + where);
    }
    RawEntry entry;
    int64_t volume = 1;
    for (uint32_t i = 0; i < ndim; ++i) {
      uint64_t extent = 0;
      if (!ReadU64(in, &extent) || extent == 0 ||
          extent > static_cast<uint64_t>(kMaxElements) ||
          volume > kMaxElements / static_cast<int64_t>(extent)) {
        return util::Status::InvalidArgument(
            "corrupt checkpoint " + path + ": bad shape for '" + name + "'" +
            where);
      }
      entry.shape.push_back(static_cast<int64_t>(extent));
      volume *= static_cast<int64_t>(extent);
    }
    // A corrupt extent can claim up to kMaxElements (8 GiB of floats) and
    // previously caused a giant zero-filled allocation before the short read
    // below failed. The payload cannot exceed what is left in the file, so
    // bound the claim by the actual byte count before sizing any buffer.
    const int64_t remaining = file_size - static_cast<int64_t>(in.tellg());
    if (volume > remaining / static_cast<int64_t>(sizeof(float))) {
      return util::Status::IoError("truncated checkpoint data in " + path +
                                   " for '" + name + "'" + where);
    }
    entry.data.resize(static_cast<size_t>(volume));
    in.read(reinterpret_cast<char*>(entry.data.data()),
            static_cast<std::streamsize>(volume * sizeof(float)));
    if (!in) {
      return util::Status::IoError("truncated checkpoint data in " + path +
                                   " for '" + name + "'" + where);
    }
    if (!entries.emplace(std::move(name), std::move(entry)).second) {
      return util::Status::InvalidArgument(
          "duplicate checkpoint parameter in " + path + where);
    }
  }
  for (Parameter* p : params) {
    // A model previously pointed at an mmap-ed v2 checkpoint holds borrowed
    // (read-only) values; re-own before writing into them.
    if (p->value.borrowed()) p->value = Tensor(p->value.shape());
    auto it = entries.find(p->name);
    if (it != entries.end()) {
      RawEntry& entry = it->second;
      if (!SameExtents(entry.shape, p->value)) {
        return util::Status::InvalidArgument("shape mismatch for " + p->name);
      }
      std::copy(entry.data.begin(), entry.data.end(), p->value.data());
      p->BumpRevision();
      entry.used = true;
      continue;
    }
    const bool packed_w = p->name.ends_with(".wqkv.w") && p->value.ndim() == 2;
    const bool packed_b = p->name.ends_with(".wqkv.b") && p->value.ndim() == 1;
    if (packed_w || packed_b) {
      util::Status status = LoadPackedQkv(p->name, p, &entries, packed_w);
      if (!status.ok()) return status;
      p->BumpRevision();
      continue;
    }
    return util::Status::InvalidArgument(
        "parameter name mismatch: model '" + p->name +
        "' not found in checkpoint");
  }
  for (const auto& [name, entry] : entries) {
    if (!entry.used) {
      return util::Status::InvalidArgument(
          "checkpoint parameter '" + name + "' has no matching model parameter");
    }
  }
  BytesCopiedCounter()->Increment(static_cast<uint64_t>(file_size));
  return util::Status::Ok();
}

// --- v2 format (DESIGN §14) -----------------------------------------------
//
// Fixed-size little-endian header + table of contents, then 64-byte-aligned
// tensor sections. Every field a loader dereferences is validated against
// the fstat-reported file size *before* any allocation or access, so a
// truncated or corrupt file fails with a Status instead of a fault; the
// payload itself is never parsed — fp32 tensors borrow the mapping in
// place, which is what makes cold start O(page faults) and lets N workers
// share one physical copy.

namespace {

constexpr uint64_t kV2Align = 64;
constexpr uint64_t kV2NameBytes = 64;  // NUL-terminated, so max length 63
constexpr uint32_t kV2MaxDims = 4;
constexpr uint8_t kV2DtypeF32 = 0;
constexpr uint8_t kV2DtypeI8 = 1;

struct V2Header {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t param_count = 0;
  uint64_t file_size = 0;   // must equal the on-disk size (truncation check)
  uint64_t toc_offset = 0;  // always 64 today, but recorded for evolution
  uint64_t toc_size = 0;    // param_count * sizeof(V2Entry)
  uint8_t reserved[24] = {};
};
static_assert(sizeof(V2Header) == 64);

struct V2Entry {
  char name[kV2NameBytes] = {};
  uint8_t dtype = 0;
  uint8_t ndim = 0;
  uint16_t reserved0 = 0;
  uint32_t reserved1 = 0;
  uint64_t dims[kV2MaxDims] = {};  // logical fp32 extents; unused are 0
  uint64_t data_offset = 0;        // 64-aligned section start
  uint64_t data_bytes = 0;
  uint64_t scale_offset = 0;       // i8 only: fp32 scale table, 64-aligned
  uint64_t scale_bytes = 0;
};
static_assert(sizeof(V2Entry) == 136);

uint64_t AlignUp64(uint64_t value) {
  return (value + (kV2Align - 1)) & ~(kV2Align - 1);
}

// Int8 storage eligibility: exactly the Linear weight matrices (embedding
// tables end in ".table", biases and LayerNorm params are 1-D).
bool QuantEligible(const Parameter& p) {
  return p.value.ndim() == 2 && p.name.ends_with(".w");
}

util::Status WriteZeroPadding(std::ofstream& out, uint64_t count) {
  static const char zeros[kV2Align] = {};
  while (count > 0) {
    const uint64_t chunk = count < kV2Align ? count : kV2Align;
    out.write(zeros, static_cast<std::streamsize>(chunk));
    count -= chunk;
  }
  if (!out) return util::Status::IoError("failed writing padding");
  return util::Status::Ok();
}

}  // namespace

util::Status SaveParametersV2(const std::string& path,
                              const ParameterList& params,
                              const SaveV2Options& options) {
  // Lay out the file first: header, TOC, then per-parameter sections in
  // list order, each 64-aligned.
  std::vector<V2Entry> toc(params.size());
  std::vector<QuantizedWeight> quantized(params.size());
  uint64_t cursor =
      AlignUp64(sizeof(V2Header) + params.size() * sizeof(V2Entry));
  for (size_t i = 0; i < params.size(); ++i) {
    const Parameter* p = params[i];
    V2Entry& entry = toc[i];
    if (p->name.empty() || p->name.size() >= kV2NameBytes) {
      return util::Status::InvalidArgument(
          "parameter name does not fit the v2 name field: '" + p->name + "'");
    }
    if (p->value.ndim() < 1 ||
        p->value.ndim() > static_cast<int>(kV2MaxDims)) {
      return util::Status::InvalidArgument(
          "v2 checkpoints support 1-4 dims, got " + p->value.ShapeString() +
          " for '" + p->name + "'");
    }
    std::memcpy(entry.name, p->name.data(), p->name.size());
    entry.ndim = static_cast<uint8_t>(p->value.ndim());
    for (int d = 0; d < p->value.ndim(); ++d) {
      entry.dims[d] = static_cast<uint64_t>(p->value.dim(d));
    }
    const uint64_t volume = static_cast<uint64_t>(p->value.size());
    if (options.quant_int8 && QuantEligible(*p)) {
      QuantizeWeight(p->value, &quantized[i]);
      entry.dtype = kV2DtypeI8;
      entry.data_offset = cursor;
      entry.data_bytes = volume;  // one byte per element, transposed
      cursor = AlignUp64(cursor + entry.data_bytes);
      entry.scale_offset = cursor;
      entry.scale_bytes =
          static_cast<uint64_t>(quantized[i].out) * sizeof(float);
      cursor = AlignUp64(cursor + entry.scale_bytes);
    } else {
      entry.dtype = kV2DtypeF32;
      entry.data_offset = cursor;
      entry.data_bytes = volume * sizeof(float);
      cursor = AlignUp64(cursor + entry.data_bytes);
    }
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  V2Header header;
  header.magic = kMagic;
  header.version = kVersionV2;
  header.param_count = params.size();
  header.file_size = cursor;
  header.toc_offset = sizeof(V2Header);
  header.toc_size = params.size() * sizeof(V2Entry);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const V2Entry& entry : toc) {
    out.write(reinterpret_cast<const char*>(&entry), sizeof(entry));
  }
  uint64_t written = sizeof(V2Header) + header.toc_size;
  for (size_t i = 0; i < params.size(); ++i) {
    const V2Entry& entry = toc[i];
    if (util::Status pad = WriteZeroPadding(out, entry.data_offset - written);
        !pad.ok()) {
      return pad;
    }
    if (entry.dtype == kV2DtypeI8) {
      const QuantizedWeight& qw = quantized[i];
      out.write(reinterpret_cast<const char*>(qw.q.data()),
                static_cast<std::streamsize>(qw.q.size()));
      written = entry.data_offset + entry.data_bytes;
      if (util::Status pad = WriteZeroPadding(out, entry.scale_offset - written);
          !pad.ok()) {
        return pad;
      }
      out.write(reinterpret_cast<const char*>(qw.scale.data()),
                static_cast<std::streamsize>(entry.scale_bytes));
      written = entry.scale_offset + entry.scale_bytes;
    } else {
      out.write(
          reinterpret_cast<const char*>(
              std::as_const(params[i]->value).data()),
          static_cast<std::streamsize>(entry.data_bytes));
      written = entry.data_offset + entry.data_bytes;
    }
  }
  if (util::Status pad = WriteZeroPadding(out, cursor - written); !pad.ok()) {
    return pad;
  }
  if (!out) return util::Status::IoError("failed writing " + path);
  return util::Status::Ok();
}

namespace {

// One validated v2 TOC entry, still pointing into the mapping.
struct V2Parsed {
  V2Entry entry;
  std::vector<int64_t> shape;
  bool used = false;
};

util::Status CorruptV2(const std::string& path, const std::string& what) {
  return util::Status::InvalidArgument("corrupt v2 checkpoint " + path +
                                       ": " + what);
}

}  // namespace

namespace {

util::Status LoadParametersV2Impl(const std::string& path,
                                  const ParameterList& params) {
  auto opened = util::MmapFile::Open(path);
  if (!opened.ok()) return opened.status();
  std::shared_ptr<util::MmapFile> file = opened.value();
  const uint8_t* base = file->data();
  const uint64_t size = file->size();

  // Header: every downstream extent is checked against `size` (from fstat,
  // the only trusted length) before it is dereferenced.
  if (size < sizeof(V2Header)) {
    return CorruptV2(path, "file smaller than the header");
  }
  V2Header header;
  std::memcpy(&header, base, sizeof(header));
  if (header.magic != kMagic) {
    return util::Status::InvalidArgument(path + " is not a doduo checkpoint");
  }
  if (header.version != kVersionV2) {
    return CorruptV2(path, "unexpected version in v2 loader");
  }
  if (header.param_count > kMaxParameters) {
    return CorruptV2(path, "implausible parameter count " +
                               std::to_string(header.param_count));
  }
  if (header.file_size != size) {
    return CorruptV2(path, "recorded size " +
                               std::to_string(header.file_size) +
                               " != actual size " + std::to_string(size));
  }
  if (header.toc_offset != sizeof(V2Header)) {
    return CorruptV2(path, "unexpected TOC offset");
  }
  if (header.toc_size != header.param_count * sizeof(V2Entry)) {
    return CorruptV2(path, "TOC size does not match parameter count");
  }
  if (header.toc_offset + header.toc_size > size) {
    return CorruptV2(path, "TOC extends past end of file");
  }

  // TOC: validate names, shapes, and byte extents; index by name.
  std::map<std::string, V2Parsed> entries;
  for (uint64_t e = 0; e < header.param_count; ++e) {
    V2Parsed parsed;
    std::memcpy(&parsed.entry, base + header.toc_offset + e * sizeof(V2Entry),
                sizeof(V2Entry));
    const V2Entry& entry = parsed.entry;
    const std::string where = " (entry " + std::to_string(e) + ")";
    const void* nul = std::memchr(entry.name, '\0', kV2NameBytes);
    if (nul == nullptr || nul == entry.name) {
      return CorruptV2(path, "bad parameter name" + where);
    }
    const std::string name(entry.name);
    if (entry.dtype != kV2DtypeF32 && entry.dtype != kV2DtypeI8) {
      return CorruptV2(path, "unknown dtype for '" + name + "'" + where);
    }
    if (entry.ndim < 1 || entry.ndim > kV2MaxDims) {
      return CorruptV2(path, "bad rank for '" + name + "'" + where);
    }
    int64_t volume = 1;
    for (uint32_t d = 0; d < kV2MaxDims; ++d) {
      const uint64_t extent = entry.dims[d];
      if (d >= entry.ndim) {
        if (extent != 0) {
          return CorruptV2(path, "nonzero unused dim for '" + name + "'" +
                                     where);
        }
        continue;
      }
      if (extent == 0 || extent > static_cast<uint64_t>(kMaxElements) ||
          volume > kMaxElements / static_cast<int64_t>(extent)) {
        return CorruptV2(path, "bad shape for '" + name + "'" + where);
      }
      parsed.shape.push_back(static_cast<int64_t>(extent));
      volume *= static_cast<int64_t>(extent);
    }
    // Section extents: aligned, in-bounds, and exactly the size the shape
    // implies. All arithmetic stays in uint64 with the subtraction form of
    // the bound check, so a huge offset cannot wrap.
    if (entry.data_offset % kV2Align != 0 || entry.data_offset > size ||
        entry.data_bytes > size - entry.data_offset) {
      return CorruptV2(path, "data section out of bounds for '" + name +
                                 "'" + where);
    }
    if (entry.dtype == kV2DtypeF32) {
      if (entry.data_bytes != static_cast<uint64_t>(volume) * sizeof(float)) {
        return CorruptV2(path, "data size mismatch for '" + name + "'" +
                                   where);
      }
      if (entry.scale_offset != 0 || entry.scale_bytes != 0) {
        return CorruptV2(path, "fp32 entry with scale table for '" + name +
                                   "'" + where);
      }
    } else {
      if (entry.ndim != 2) {
        return CorruptV2(path, "int8 entry must be 2-D for '" + name + "'" +
                                   where);
      }
      if (entry.data_bytes != static_cast<uint64_t>(volume)) {
        return CorruptV2(path, "data size mismatch for '" + name + "'" +
                                   where);
      }
      const uint64_t out_channels = entry.dims[1];
      if (entry.scale_offset % kV2Align != 0 || entry.scale_offset > size ||
          entry.scale_bytes > size - entry.scale_offset ||
          entry.scale_bytes != out_channels * sizeof(float)) {
        return CorruptV2(path, "scale table out of bounds for '" + name +
                                   "'" + where);
      }
    }
    if (!entries.emplace(name, std::move(parsed)).second) {
      return CorruptV2(path, "duplicate parameter '" + name + "'" + where);
    }
  }

  // Match against the model. No gather shim in v2: names must match 1:1
  // (doduo_convert migrates legacy layouts through the v1 loader).
  for (Parameter* p : params) {
    auto it = entries.find(p->name);
    if (it == entries.end()) {
      return util::Status::InvalidArgument(
          "parameter name mismatch: model '" + p->name +
          "' not found in checkpoint");
    }
    V2Parsed& parsed = it->second;
    if (!SameExtents(parsed.shape, p->value)) {
      return util::Status::InvalidArgument("shape mismatch for " + p->name);
    }
    const V2Entry& entry = parsed.entry;
    if (entry.dtype == kV2DtypeF32) {
      // Zero-copy: the tensor aliases the mapping, pinned by `file`.
      p->value = Tensor::Borrowed(
          parsed.shape,
          reinterpret_cast<const float*>(base + entry.data_offset), file);
      p->BumpRevision();
    } else {
      // Int8: dequantize an owned fp32 value (SnapshotWeights and the fp32
      // fallback path read it), and attach the mapped tables zero-copy for
      // the DODUO_QUANT fast path.
      const int64_t in = parsed.shape[0];
      const int64_t out_channels = parsed.shape[1];
      const int8_t* q =
          reinterpret_cast<const int8_t*>(base + entry.data_offset);
      const float* scale =
          reinterpret_cast<const float*>(base + entry.scale_offset);
      if (p->value.borrowed()) p->value = Tensor(parsed.shape);
      float* w = p->value.data();
      for (int64_t j = 0; j < out_channels; ++j) {
        const float s = scale[j];
        const int8_t* qrow = q + j * in;
        for (int64_t i = 0; i < in; ++i) {
          w[i * out_channels + j] = s * static_cast<float>(qrow[i]);
        }
      }
      p->BumpRevision();
      auto prequant = std::make_shared<PrequantizedWeight>();
      prequant->q = q;
      prequant->scale = scale;
      prequant->out = out_channels;
      prequant->in = in;
      prequant->keepalive = file;
      p->AttachPrequant(std::move(prequant));
    }
    parsed.used = true;
  }
  for (const auto& [name, parsed] : entries) {
    if (!parsed.used) {
      return util::Status::InvalidArgument(
          "checkpoint parameter '" + name +
          "' has no matching model parameter");
    }
  }
  (file->mapped() ? BytesMappedCounter() : BytesCopiedCounter())
      ->Increment(size);
  return util::Status::Ok();
}

util::Status LoadParametersV2(const std::string& path,
                              const ParameterList& params) {
  return LoadParametersV2Impl(path, params);
}

}  // namespace

}  // namespace doduo::nn
