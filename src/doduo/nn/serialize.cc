#include "doduo/nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <vector>

namespace doduo::nn {

namespace {

constexpr uint32_t kMagic = 0x444F4455;  // "DODU"
constexpr uint32_t kVersion = 1;

// Plausibility caps for checkpoint headers. A corrupt or truncated file can
// present arbitrary 64-bit lengths; without these caps a bad name length or
// tensor shape turns into a multi-gigabyte allocation (or std::bad_alloc)
// before the real read fails.
constexpr uint64_t kMaxParameters = 1u << 20;
constexpr uint64_t kMaxNameLength = 4096;
constexpr uint32_t kMaxDims = 8;
constexpr int64_t kMaxElements = int64_t{1} << 31;

void WriteU32(std::ofstream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU32(std::ifstream& in, uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadU64(std::ifstream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

util::Status SaveParameters(const std::string& path,
                            const ParameterList& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, static_cast<uint64_t>(params.size()));
  for (const Parameter* p : params) {
    WriteU64(out, static_cast<uint64_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU32(out, static_cast<uint32_t>(p->value.ndim()));
    for (int i = 0; i < p->value.ndim(); ++i) {
      WriteU64(out, static_cast<uint64_t>(p->value.dim(i)));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) return util::Status::IoError("failed writing " + path);
  return util::Status::Ok();
}

namespace {

// One checkpoint entry held in memory while LoadParameters matches it
// against the model. Entries are indexed by name so loading tolerates order
// changes and can re-pack legacy layouts (see the QKV shim below).
struct RawEntry {
  std::vector<int64_t> shape;
  std::vector<float> data;
  bool used = false;
};

bool SameExtents(const std::vector<int64_t>& shape, const Tensor& value) {
  if (static_cast<int>(shape.size()) != value.ndim()) return false;
  for (int i = 0; i < value.ndim(); ++i) {
    if (shape[static_cast<size_t>(i)] != value.dim(i)) return false;
  }
  return true;
}

// Weight-layout shim: checkpoints written before the packed-QKV attention
// store three [d, d] projections "<attn>.wq.w" / ".wk.w" / ".wv.w" (and
// three [d] biases) where the current model has one "<attn>.wqkv.w" of
// shape [d, 3d] (bias [3d]) with Q/K/V side by side in the columns. When the
// packed name is absent from the checkpoint, gather the three legacy parts
// into the packed layout so pre-refactor checkpoints keep loading.
util::Status LoadPackedQkv(const std::string& packed_name, Parameter* p,
                           std::map<std::string, RawEntry>* entries,
                           bool is_weight) {
  const std::string suffix = is_weight ? ".wqkv.w" : ".wqkv.b";
  const std::string base =
      packed_name.substr(0, packed_name.size() - suffix.size());
  const int64_t d3 = is_weight ? p->value.cols() : p->value.dim(0);
  if (d3 % 3 != 0) {
    return util::Status::InvalidArgument("bad packed shape for " + packed_name);
  }
  const int64_t d = d3 / 3;
  const char* parts[] = {".wq", ".wk", ".wv"};
  for (int part = 0; part < 3; ++part) {
    const std::string legacy =
        base + parts[part] + (is_weight ? ".w" : ".b");
    auto it = entries->find(legacy);
    if (it == entries->end()) {
      return util::Status::InvalidArgument(
          "checkpoint is missing parameter '" + packed_name +
          "' and legacy part '" + legacy + "'");
    }
    RawEntry& entry = it->second;
    const bool shape_ok =
        is_weight ? (entry.shape.size() == 2 && entry.shape[0] == p->value.rows() &&
                     entry.shape[1] == d)
                  : (entry.shape.size() == 1 && entry.shape[0] == d);
    if (!shape_ok) {
      return util::Status::InvalidArgument("shape mismatch for " + legacy);
    }
    if (is_weight) {
      // Scatter the legacy [rows, d] block into columns [part·d, (part+1)·d).
      const int64_t rows = p->value.rows();
      for (int64_t r = 0; r < rows; ++r) {
        float* dst = p->value.row(r) + part * d;
        const float* src = entry.data.data() + r * d;
        for (int64_t c = 0; c < d; ++c) dst[c] = src[c];
      }
    } else {
      float* dst = p->value.data() + part * d;
      for (int64_t c = 0; c < d; ++c) dst[c] = entry.data[static_cast<size_t>(c)];
    }
    entry.used = true;
  }
  return util::Status::Ok();
}

}  // namespace

util::Status LoadParameters(const std::string& path,
                            const ParameterList& params) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return util::Status::IoError("cannot open " + path);
  const int64_t file_size = static_cast<int64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return util::Status::InvalidArgument(path + " is not a doduo checkpoint");
  }
  if (!ReadU32(in, &version) || version != kVersion) {
    return util::Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadU64(in, &count)) {
    return util::Status::IoError("truncated checkpoint " + path);
  }
  if (count > kMaxParameters) {
    return util::Status::InvalidArgument(
        "corrupt checkpoint " + path + ": implausible parameter count " +
        std::to_string(count));
  }
  // Read every entry up front, indexed by name: loading is then insensitive
  // to parameter order and can re-pack legacy layouts.
  std::map<std::string, RawEntry> entries;
  for (uint64_t e = 0; e < count; ++e) {
    const std::string where =
        " (entry " + std::to_string(e) + " of " + std::to_string(count) + ")";
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len)) {
      return util::Status::IoError("truncated checkpoint " + path + where);
    }
    if (name_len == 0 || name_len > kMaxNameLength) {
      return util::Status::InvalidArgument(
          "corrupt checkpoint " + path + ": implausible name length " +
          std::to_string(name_len) + where);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint32_t ndim = 0;
    if (!in || !ReadU32(in, &ndim)) {
      return util::Status::IoError("truncated checkpoint " + path + where);
    }
    if (ndim > kMaxDims) {
      return util::Status::InvalidArgument(
          "corrupt checkpoint " + path + ": parameter '" + name + "' claims " +
          std::to_string(ndim) + " dimensions" + where);
    }
    RawEntry entry;
    int64_t volume = 1;
    for (uint32_t i = 0; i < ndim; ++i) {
      uint64_t extent = 0;
      if (!ReadU64(in, &extent) || extent == 0 ||
          extent > static_cast<uint64_t>(kMaxElements) ||
          volume > kMaxElements / static_cast<int64_t>(extent)) {
        return util::Status::InvalidArgument(
            "corrupt checkpoint " + path + ": bad shape for '" + name + "'" +
            where);
      }
      entry.shape.push_back(static_cast<int64_t>(extent));
      volume *= static_cast<int64_t>(extent);
    }
    // A corrupt extent can claim up to kMaxElements (8 GiB of floats) and
    // previously caused a giant zero-filled allocation before the short read
    // below failed. The payload cannot exceed what is left in the file, so
    // bound the claim by the actual byte count before sizing any buffer.
    const int64_t remaining = file_size - static_cast<int64_t>(in.tellg());
    if (volume > remaining / static_cast<int64_t>(sizeof(float))) {
      return util::Status::IoError("truncated checkpoint data in " + path +
                                   " for '" + name + "'" + where);
    }
    entry.data.resize(static_cast<size_t>(volume));
    in.read(reinterpret_cast<char*>(entry.data.data()),
            static_cast<std::streamsize>(volume * sizeof(float)));
    if (!in) {
      return util::Status::IoError("truncated checkpoint data in " + path +
                                   " for '" + name + "'" + where);
    }
    if (!entries.emplace(std::move(name), std::move(entry)).second) {
      return util::Status::InvalidArgument(
          "duplicate checkpoint parameter in " + path + where);
    }
  }
  for (Parameter* p : params) {
    auto it = entries.find(p->name);
    if (it != entries.end()) {
      RawEntry& entry = it->second;
      if (!SameExtents(entry.shape, p->value)) {
        return util::Status::InvalidArgument("shape mismatch for " + p->name);
      }
      std::copy(entry.data.begin(), entry.data.end(), p->value.data());
      entry.used = true;
      continue;
    }
    const bool packed_w = p->name.ends_with(".wqkv.w") && p->value.ndim() == 2;
    const bool packed_b = p->name.ends_with(".wqkv.b") && p->value.ndim() == 1;
    if (packed_w || packed_b) {
      util::Status status = LoadPackedQkv(p->name, p, &entries, packed_w);
      if (!status.ok()) return status;
      continue;
    }
    return util::Status::InvalidArgument(
        "parameter name mismatch: model '" + p->name +
        "' not found in checkpoint");
  }
  for (const auto& [name, entry] : entries) {
    if (!entry.used) {
      return util::Status::InvalidArgument(
          "checkpoint parameter '" + name + "' has no matching model parameter");
    }
  }
  return util::Status::Ok();
}

}  // namespace doduo::nn
