#include "doduo/nn/serialize.h"

#include <cstdint>
#include <fstream>

namespace doduo::nn {

namespace {

constexpr uint32_t kMagic = 0x444F4455;  // "DODU"
constexpr uint32_t kVersion = 1;

void WriteU32(std::ofstream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU32(std::ifstream& in, uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

bool ReadU64(std::ifstream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

util::Status SaveParameters(const std::string& path,
                            const ParameterList& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, static_cast<uint64_t>(params.size()));
  for (const Parameter* p : params) {
    WriteU64(out, static_cast<uint64_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WriteU32(out, static_cast<uint32_t>(p->value.ndim()));
    for (int i = 0; i < p->value.ndim(); ++i) {
      WriteU64(out, static_cast<uint64_t>(p->value.dim(i)));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) return util::Status::IoError("failed writing " + path);
  return util::Status::Ok();
}

util::Status LoadParameters(const std::string& path,
                            const ParameterList& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return util::Status::InvalidArgument(path + " is not a doduo checkpoint");
  }
  if (!ReadU32(in, &version) || version != kVersion) {
    return util::Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadU64(in, &count) || count != params.size()) {
    return util::Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, model has " +
        std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len)) {
      return util::Status::IoError("truncated checkpoint");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in || name != p->name) {
      return util::Status::InvalidArgument(
          "parameter name mismatch: checkpoint '" + name + "' vs model '" +
          p->name + "'");
    }
    uint32_t ndim = 0;
    if (!ReadU32(in, &ndim) || static_cast<int>(ndim) != p->value.ndim()) {
      return util::Status::InvalidArgument("rank mismatch for " + p->name);
    }
    for (int i = 0; i < p->value.ndim(); ++i) {
      uint64_t extent = 0;
      if (!ReadU64(in, &extent) ||
          static_cast<int64_t>(extent) != p->value.dim(i)) {
        return util::Status::InvalidArgument("shape mismatch for " + p->name);
      }
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in) return util::Status::IoError("truncated checkpoint data");
  }
  return util::Status::Ok();
}

}  // namespace doduo::nn
