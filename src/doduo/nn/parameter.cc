#include "doduo/nn/parameter.h"

#include <cmath>

#include "doduo/nn/ops.h"

namespace doduo::nn {

int64_t ParameterCount(const ParameterList& params) {
  int64_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  return total;
}

void ZeroAllGrads(const ParameterList& params) {
  for (Parameter* p : params) p->ZeroGrad();
}

double GradientNorm(const ParameterList& params) {
  double total = 0.0;
  for (const Parameter* p : params) {
    const double norm = p->grad.L2Norm();
    total += norm * norm;
  }
  return std::sqrt(total);
}

double ClipGradientNorm(const ParameterList& params, double clip_norm) {
  const double norm = GradientNorm(params);
  if (norm > clip_norm && norm > 0.0) {
    const float scale = static_cast<float>(clip_norm / norm);
    for (Parameter* p : params) Scale(&p->grad, scale);
  }
  return norm;
}

}  // namespace doduo::nn
