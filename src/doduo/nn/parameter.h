#ifndef DODUO_NN_PARAMETER_H_
#define DODUO_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "doduo/nn/tensor.h"

namespace doduo::nn {

/// A trainable tensor with its gradient accumulator. Layers own their
/// Parameters; optimizers work on a flat list of pointers collected via
/// ParameterList and keep their own moment state, so several optimizers
/// (e.g. one per task, as in the paper's Algorithm 1) can drive the same
/// parameters.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string param_name, std::vector<int64_t> shape)
      : name(std::move(param_name)), value(shape), grad(std::move(shape)) {}

  /// Zeroes the gradient accumulator.
  void ZeroGrad() { grad.Zero(); }
};

/// Flat, ordered collection of parameter pointers. Layers append their
/// parameters; the order is the (de)serialization order, so it must be
/// deterministic for a given model configuration.
using ParameterList = std::vector<Parameter*>;

/// Appends `params` of one layer to `out`.
inline void AppendParameters(const ParameterList& params, ParameterList* out) {
  out->insert(out->end(), params.begin(), params.end());
}

/// Total number of scalar weights across the list.
int64_t ParameterCount(const ParameterList& params);

/// Zeroes every gradient in the list.
void ZeroAllGrads(const ParameterList& params);

/// Global L2 norm of all gradients (for grad-clipping diagnostics).
double GradientNorm(const ParameterList& params);

/// Scales all gradients by `clip_norm / norm` when norm > clip_norm.
/// Returns the pre-clip norm.
double ClipGradientNorm(const ParameterList& params, double clip_norm);

}  // namespace doduo::nn

#endif  // DODUO_NN_PARAMETER_H_
