#ifndef DODUO_NN_PARAMETER_H_
#define DODUO_NN_PARAMETER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "doduo/nn/tensor.h"

namespace doduo::nn {

/// An int8 rendering of a 2-D weight, precomputed at checkpoint-convert or
/// load time (DESIGN §14). The payload is stored *transposed* relative to
/// the fp32 parameter — row j holds output channel j of a [in, out] weight,
/// so the int8 GEMM streams contiguous rows — with one fp32 scale per
/// output channel (symmetric quantization: w ≈ scale[j] · q[j, :]).
/// The pointers may alias an mmap-ed checkpoint section; `keepalive` pins
/// whatever owns them. Instances are immutable once built and shared across
/// replicas via shared_ptr.
struct PrequantizedWeight {
  const int8_t* q = nullptr;     // [out, in], row per output channel
  const float* scale = nullptr;  // [out]
  int64_t out = 0;
  int64_t in = 0;
  std::shared_ptr<const void> keepalive;
};

/// A trainable tensor with its gradient accumulator. Layers own their
/// Parameters; optimizers work on a flat list of pointers collected via
/// ParameterList and keep their own moment state, so several optimizers
/// (e.g. one per task, as in the paper's Algorithm 1) can drive the same
/// parameters.
///
/// `revision` counts value overwrites: every writer that replaces or steps
/// the weights (checkpoint load, optimizer step, snapshot restore) bumps it,
/// and derived caches — the int8 quantization of the weight above all —
/// record the revision they were built at and rebuild on mismatch. The
/// counter is monotonically increasing and never consulted for anything but
/// equality, so a bump is always safe.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  uint64_t revision = 0;

  /// Optional load-time int8 rendering of `value`; valid only while
  /// `prequant_revision == revision` (any later overwrite of the weight
  /// silently orphans it, and consumers fall back to re-quantizing).
  std::shared_ptr<const PrequantizedWeight> prequant;
  uint64_t prequant_revision = 0;

  Parameter() = default;
  Parameter(std::string param_name, std::vector<int64_t> shape)
      : name(std::move(param_name)), value(shape), grad(std::move(shape)) {}

  /// Records that `value` was overwritten, invalidating derived caches.
  void BumpRevision() { ++revision; }

  /// Attaches a precomputed int8 weight for the value at its current
  /// revision.
  void AttachPrequant(std::shared_ptr<const PrequantizedWeight> pq) {
    prequant = std::move(pq);
    prequant_revision = revision;
  }

  /// Zeroes the gradient accumulator.
  void ZeroGrad() { grad.Zero(); }
};

/// Flat, ordered collection of parameter pointers. Layers append their
/// parameters; the order is the (de)serialization order, so it must be
/// deterministic for a given model configuration.
using ParameterList = std::vector<Parameter*>;

/// Appends `params` of one layer to `out`.
inline void AppendParameters(const ParameterList& params, ParameterList* out) {
  out->insert(out->end(), params.begin(), params.end());
}

/// Total number of scalar weights across the list.
int64_t ParameterCount(const ParameterList& params);

/// Zeroes every gradient in the list.
void ZeroAllGrads(const ParameterList& params);

/// Global L2 norm of all gradients (for grad-clipping diagnostics).
double GradientNorm(const ParameterList& params);

/// Scales all gradients by `clip_norm / norm` when norm > clip_norm.
/// Returns the pre-clip norm.
double ClipGradientNorm(const ParameterList& params, double clip_norm);

}  // namespace doduo::nn

#endif  // DODUO_NN_PARAMETER_H_
