#include "doduo/nn/embedding.h"

#include <algorithm>
#include <utility>

namespace doduo::nn {

Embedding::Embedding(std::string name, int64_t vocab_size, int64_t dim,
                     util::Rng* rng)
    : table_(name + ".table", {vocab_size, dim}) {
  table_.value.FillNormal(rng, 0.02f);
}

const Tensor& Embedding::Forward(const std::vector<int>& ids) {
  DODUO_CHECK(!ids.empty());
  return Forward(ids.data(), static_cast<int64_t>(ids.size()));
}

const Tensor& Embedding::Forward(const int* ids, int64_t count) {
  DODUO_CHECK(ids != nullptr && count > 0);
  // Id cache for Backward. Capacity is reused after warm-up, so the
  // steady-state forward performs no allocation.
  cached_ids_.assign(ids, ids + count);  // NOLINT(hot-path-alloc)
  const int64_t d = dim();
  output_.ResizeUninitialized({count, d});
  for (int64_t i = 0; i < count; ++i) {
    DODUO_DCHECK(ids[i] >= 0 && ids[i] < vocab_size());
    const float* src = std::as_const(table_.value).row(ids[i]);
    std::copy(src, src + d, output_.row(i));
  }
  return output_;
}

void Embedding::Backward(const Tensor& grad_out) {
  DODUO_CHECK(!cached_ids_.empty()) << "Backward before Forward";
  DODUO_CHECK_EQ(grad_out.rows(), static_cast<int64_t>(cached_ids_.size()));
  DODUO_CHECK_EQ(grad_out.cols(), dim());
  const int64_t d = dim();
  for (size_t i = 0; i < cached_ids_.size(); ++i) {
    const float* src = grad_out.row(static_cast<int64_t>(i));
    float* dst = table_.grad.row(cached_ids_[i]);
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
}

const float* Embedding::Row(int id) const {
  DODUO_CHECK(id >= 0 && id < vocab_size());
  return std::as_const(table_.value).row(id);
}

}  // namespace doduo::nn
