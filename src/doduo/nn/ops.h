#ifndef DODUO_NN_OPS_H_
#define DODUO_NN_OPS_H_

#include "doduo/nn/tensor.h"

namespace doduo::nn {

// Dense linear-algebra kernels used by the layers. All functions write into
// caller-provided outputs (resized as needed) and die on shape mismatches.
// Accumulating variants add into the output instead of overwriting, which
// the backward passes use to sum gradients.
//
// The MatMul family is cache-blocked and, above a volume threshold, shards
// output rows across util::ComputePool(). Per-element FP operation order is
// fixed regardless of thread count, so results are bit-identical whether
// DODUO_NUM_THREADS is 1 or N (see DESIGN.md §7).

/// out = a · b for a[m,k], b[k,n]; out resized to [m,n].
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

/// out += a · b.
void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// out = a · bᵀ for a[m,k], b[n,k]; out resized to [m,n].
void MatMulTransposedB(const Tensor& a, const Tensor& b, Tensor* out);

/// out += aᵀ · b for a[k,m], b[k,n]; out must already be [m,n].
void MatMulTransposedAAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// out = aᵀ · b for a[k,m], b[k,n]; out resized to [m,n].
void MatMulTransposedA(const Tensor& a, const Tensor& b, Tensor* out);

/// out = a + b, elementwise; shapes must match.
void Add(const Tensor& a, const Tensor& b, Tensor* out);

/// a += b, elementwise.
void AddInPlace(Tensor* a, const Tensor& b);

/// a += scale * b, elementwise.
void AddScaled(Tensor* a, const Tensor& b, float scale);

/// a *= scale.
void Scale(Tensor* a, float scale);

/// Adds the 1-D `bias` (length n) to every row of the 2-D `a` [m,n].
void AddRowBroadcast(Tensor* a, const Tensor& bias);

/// out[j] += sum over rows i of a[i,j], for a[m,n] and 1-D out[n].
void ColumnSumAccum(const Tensor& a, Tensor* out);

// --- Strided matrix views -------------------------------------------------
//
// A view describes an [rows, cols] matrix embedded in a larger row-major
// buffer: rows are contiguous runs of `cols` floats, `stride` floats apart.
// The attention hot path uses them to address per-head column bands of the
// packed QKV buffer directly, replacing the ExtractHead/InsertHead copies.
// The view kernels replicate the per-element FP operation order of their
// contiguous counterparts exactly, so a fused (view-based) attention pass is
// bit-identical to the copy-based reference path and across thread counts.

struct ConstMatView {
  const float* data;
  int64_t rows;
  int64_t cols;
  int64_t stride;  // floats between consecutive row starts; >= cols
};

struct MutMatView {
  float* data;
  int64_t rows;
  int64_t cols;
  int64_t stride;
};

/// View of the whole 2-D tensor (stride == cols).
ConstMatView FullView(const Tensor& t);

/// View of the column band [col_begin, col_begin + cols) of a 2-D tensor.
ConstMatView ColumnsView(const Tensor& t, int64_t col_begin, int64_t cols);
MutMatView MutColumnsView(Tensor* t, int64_t col_begin, int64_t cols);

/// out = a · b for a[m,k], b[k,n]; the out view region is overwritten.
/// Same blocked kernel (and bit pattern) as MatMul.
void MatMulView(ConstMatView a, ConstMatView b, MutMatView out);

/// out = a · bᵀ for a[m,k], b[n,k]; out resized to [m,n] (contiguous).
/// Same dot-product kernel (and bit pattern) as MatMulTransposedB.
void MatMulTransposedBView(ConstMatView a, ConstMatView b, Tensor* out);

/// out = aᵀ · b for a[k,m], b[k,n]; the out view region is overwritten.
/// Same accumulation order (and bit pattern) as MatMulTransposedA.
void MatMulTransposedAView(ConstMatView a, ConstMatView b, MutMatView out);

// --------------------------------------------------------------------------

/// Row-wise softmax of a 2-D tensor, numerically stabilized. Rows whose
/// logits are all non-finite (e.g. fully masked with -inf) produce a uniform
/// distribution instead of NaN.
void SoftmaxRows(const Tensor& logits, Tensor* probs);

/// Fused scale→additive-mask→softmax over rows: probs = softmax(logits *
/// scale + mask), computed in a single kernel (max, exp, normalize) instead
/// of three passes over the score matrix. `mask` may be nullptr; `probs` may
/// alias `logits` (the attention path runs it in place on the score buffer).
/// Bit-identical to Scale + AddInPlace + SoftmaxRows at any thread count;
/// rows are sharded across the compute pool above the parallel threshold.
/// Fully-masked rows produce a uniform distribution (see SoftmaxRows).
void ScaleMaskSoftmaxRows(const Tensor& logits, float scale,
                          const Tensor* mask, Tensor* probs);

/// Backward of row-wise softmax: given probs p and upstream grad dy,
/// dx_i = p_i * (dy_i - sum_j dy_j p_j), computed per row.
void SoftmaxRowsBackward(const Tensor& probs, const Tensor& grad_out,
                         Tensor* grad_in);

/// Row-wise log-softmax of a 2-D tensor.
void LogSoftmaxRows(const Tensor& logits, Tensor* log_probs);

/// Dot product of two equal-length 1-D float spans.
float Dot(const float* a, const float* b, int64_t n);

/// Cosine similarity between 1-D vectors of length n (0 when either is 0).
float CosineSimilarity(const float* a, const float* b, int64_t n);

}  // namespace doduo::nn

#endif  // DODUO_NN_OPS_H_
