#include "doduo/nn/tensor.h"

#include <atomic>
#include <cmath>
#include <sstream>

namespace doduo::nn {

namespace {
std::atomic<uint64_t> g_tensor_allocs{0};
}  // namespace

uint64_t TensorAllocCount() {
  return g_tensor_allocs.load(std::memory_order_relaxed);
}

void ResetTensorAllocCount() {
  g_tensor_allocs.store(0, std::memory_order_relaxed);
}

#ifdef DODUO_COUNT_ALLOCS
namespace internal {
void CountOneTensorAlloc() {
  g_tensor_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal
#endif

int64_t ShapeVolume(const std::vector<int64_t>& shape) {
  int64_t volume = 1;
  for (int64_t extent : shape) {
    DODUO_CHECK_GT(extent, 0) << "tensor extents must be positive";
    volume *= extent;
  }
  return volume;
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeVolume(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> data) {
  Tensor t;
  DODUO_CHECK_EQ(ShapeVolume(shape), static_cast<int64_t>(data.size()));
  t.shape_ = std::move(shape);
#ifdef DODUO_COUNT_ALLOCS
  t.data_.assign(data.begin(), data.end());
#else
  t.data_ = std::move(data);
#endif
  return t;
}

Tensor Tensor::Borrowed(std::vector<int64_t> shape, const float* data,
                        std::shared_ptr<const void> keepalive) {
  DODUO_CHECK(data != nullptr);
  Tensor t;
  t.view_size_ = ShapeVolume(shape);
  t.shape_ = std::move(shape);
  t.view_ = data;
  t.owner_ = std::move(keepalive);
  return t;
}

Tensor Tensor::MaterializeOwned() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_.assign(data(), data() + static_cast<size_t>(size()));
  return t;
}

void Tensor::FillUniform(util::Rng* rng, float limit) {
  DODUO_CHECK(!borrowed()) << "FillUniform on a borrowed tensor";
  for (float& v : data_) v = rng->UniformFloat(-limit, limit);
}

void Tensor::FillNormal(util::Rng* rng, float stddev) {
  DODUO_CHECK(!borrowed()) << "FillNormal on a borrowed tensor";
  for (float& v : data_) v = static_cast<float>(rng->Normal(0.0, stddev));
}

void Tensor::Fill(float value) {
  DODUO_CHECK(!borrowed()) << "Fill on a borrowed tensor";
  for (float& v : data_) v = value;
}

void Tensor::Reshape(std::vector<int64_t> shape) {
  DODUO_CHECK_EQ(ShapeVolume(shape), size());
  shape_ = std::move(shape);
}

void Tensor::ResizeUninitialized(std::vector<int64_t> shape) {
  DODUO_CHECK(!borrowed()) << "ResizeUninitialized on a borrowed tensor";
  const int64_t volume = ShapeVolume(shape);
  shape_ = std::move(shape);
  data_.resize(static_cast<size_t>(volume));
}

Tensor Tensor::SliceRows(int64_t begin, int64_t end) const {
  DODUO_CHECK_EQ(ndim(), 2);
  DODUO_CHECK(begin >= 0 && begin <= end && end <= rows());
  Tensor out({end - begin > 0 ? end - begin : 1, cols()});
  if (end == begin) {
    // Degenerate empty slice is not representable; callers must not ask.
    DODUO_CHECK(false) << "empty row slice";
  }
  const size_t bytes = static_cast<size_t>((end - begin) * cols());
  std::copy(row(begin), row(begin) + bytes, out.data());
  return out;
}

double Tensor::Sum() const {
  double total = 0.0;
  const float* p = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) total += static_cast<double>(p[i]);
  return total;
}

double Tensor::L2Norm() const {
  double total = 0.0;
  const float* p = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) {
    total += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return std::sqrt(total);
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "f32[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace doduo::nn
