#ifndef DODUO_NN_LINEAR_H_
#define DODUO_NN_LINEAR_H_

#include <string>

#include "doduo/nn/parameter.h"
#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"

namespace doduo::nn {

/// Fully connected layer y = x·W + b with explicit backward.
///
/// Layers cache the most recent forward input, so a given instance must be
/// used at most once per forward pass (the Transformer allocates one
/// instance per call site). Gradients accumulate across Backward calls until
/// the optimizer zeroes them, which implements mini-batching by gradient
/// accumulation.
class Linear {
 public:
  /// Xavier-uniform initialized weight [in, out] and zero bias [out].
  Linear(std::string name, int64_t in_features, int64_t out_features,
         util::Rng* rng);

  /// x: [m, in] → returns [m, out]. The returned reference is owned by the
  /// layer and valid until the next Forward call.
  const Tensor& Forward(const Tensor& x);

  /// Forward without caching, for inference-only paths.
  void ForwardInto(const Tensor& x, Tensor* out) const;

  /// grad_out: [m, out] → returns d(loss)/d(x) [m, in]; accumulates the
  /// weight/bias gradients.
  const Tensor& Backward(const Tensor& grad_out);

  ParameterList Parameters() { return {&w_, &b_}; }

  int64_t in_features() const { return w_.value.rows(); }
  int64_t out_features() const { return w_.value.cols(); }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  Parameter w_;  // [in, out]
  Parameter b_;  // [out]
  Tensor cached_input_;
  Tensor output_;
  Tensor grad_input_;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_LINEAR_H_
