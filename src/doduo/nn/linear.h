#ifndef DODUO_NN_LINEAR_H_
#define DODUO_NN_LINEAR_H_

#include <cstdint>
#include <string>

#include "doduo/nn/parameter.h"
#include "doduo/nn/quant.h"
#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"

namespace doduo::nn {

/// Fully connected layer y = x·W + b with explicit backward.
///
/// Layers cache the most recent forward input, so a given instance must be
/// used at most once per forward pass (the Transformer allocates one
/// instance per call site). Gradients accumulate across Backward calls until
/// the optimizer zeroes them, which implements mini-batching by gradient
/// accumulation.
class Linear {
 public:
  /// Xavier-uniform initialized weight [in, out] and zero bias [out]. Pass
  /// rng == nullptr to skip initialization (weight stays zero and no random
  /// draws are consumed) when the caller applies its own init scheme.
  Linear(std::string name, int64_t in_features, int64_t out_features,
         util::Rng* rng);

  /// x: [m, in] → returns [m, out]. The returned reference is owned by the
  /// layer and valid until the next Forward call.
  const Tensor& Forward(const Tensor& x);

  /// Forward without the bias term: returns x·W and caches x, leaving the
  /// bias to a fused epilogue (see BiasGeluForward). The returned tensor is
  /// mutable so the epilogue can add the bias in place; Backward is
  /// unchanged (db = column-sum of the output gradient either way).
  Tensor& ForwardNoBias(const Tensor& x);

  /// Forward without caching, for inference-only paths.
  void ForwardInto(const Tensor& x, Tensor* out) const;

  /// grad_out: [m, out] → returns d(loss)/d(x) [m, in]; accumulates the
  /// weight/bias gradients.
  const Tensor& Backward(const Tensor& grad_out);

  /// Accumulates only the weight/bias gradients, for callers that compute
  /// d(loss)/d(x) themselves (the packed-QKV attention sums the input
  /// gradient per column band to preserve the split-projection FP order).
  void AccumulateParameterGradients(const Tensor& grad_out);

  ParameterList Parameters() { return {&w_, &b_}; }

  int64_t in_features() const { return w_.value.rows(); }
  int64_t out_features() const { return w_.value.cols(); }

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }

 private:
  /// Fills `view` with the int8 rendering of the weight and returns true
  /// when the quantized path should run (DODUO_QUANT on): a checkpoint's
  /// precomputed table when one is attached and still current, else a lazy
  /// per-layer cache rebuilt whenever the weight revision moves (optimizer
  /// steps and checkpoint loads bump it, so training through a
  /// quant-enabled layer stays correct, just slow). Mutable state touched
  /// from const ForwardInto — safe under the one-thread-per-replica
  /// serving contract (DESIGN §13).
  bool QuantView(Int8WeightView* view) const;

  Parameter w_;  // [in, out]
  Parameter b_;  // [out]
  Tensor cached_input_;
  Tensor output_;
  Tensor grad_input_;

  mutable QuantizedWeight qcache_;
  mutable uint64_t qcache_revision_ = 0;
  mutable bool qcache_valid_ = false;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_LINEAR_H_
