#include "doduo/nn/activations.h"

#include <cmath>

namespace doduo::nn {

namespace {
// Constants of the GELU tanh approximation:
// gelu(x) = 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x³))).
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluCubic = 0.044715f;
}  // namespace

float GeluScalar(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCubic * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float GeluGradScalar(float x) {
  const float x3 = x * x * x;
  const float inner = kSqrt2OverPi * (x + kGeluCubic * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  const float d_inner = kSqrt2OverPi * (1.0f + 3.0f * kGeluCubic * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * d_inner;
}

void BiasGeluForward(Tensor* pre_act, const Tensor& bias, Tensor* act) {
  DODUO_CHECK_EQ(pre_act->ndim(), 2);
  DODUO_CHECK_EQ(bias.ndim(), 1);
  DODUO_CHECK_EQ(pre_act->cols(), bias.dim(0));
  act->ResizeUninitialized(pre_act->shape());
  const int64_t n = pre_act->cols();
  const float* b = bias.data();
  for (int64_t i = 0; i < pre_act->rows(); ++i) {
    float* u = pre_act->row(i);
    float* out = act->row(i);
    for (int64_t j = 0; j < n; ++j) {
      u[j] += b[j];
      out[j] = GeluScalar(u[j]);
    }
  }
}

void GeluBackward(const Tensor& pre_act, const Tensor& grad_act,
                  Tensor* grad_pre) {
  DODUO_CHECK(SameShape(grad_act, pre_act));
  grad_pre->ResizeUninitialized(grad_act.shape());
  const float* dy = grad_act.data();
  const float* in = pre_act.data();
  float* dx = grad_pre->data();
  for (int64_t i = 0; i < grad_act.size(); ++i)
    dx[i] = dy[i] * GeluGradScalar(in[i]);
}

const Tensor& Gelu::Forward(const Tensor& x) {
  cached_input_ = x;
  output_.ResizeUninitialized(x.shape());
  const float* in = x.data();
  float* out = output_.data();
  for (int64_t i = 0; i < x.size(); ++i) out[i] = GeluScalar(in[i]);
  return output_;
}

const Tensor& Gelu::Backward(const Tensor& grad_out) {
  DODUO_CHECK(SameShape(grad_out, cached_input_));
  grad_input_.ResizeUninitialized(grad_out.shape());
  const float* dy = grad_out.data();
  const float* in = cached_input_.data();
  float* dx = grad_input_.data();
  for (int64_t i = 0; i < grad_out.size(); ++i)
    dx[i] = dy[i] * GeluGradScalar(in[i]);
  return grad_input_;
}

const Tensor& Relu::Forward(const Tensor& x) {
  cached_input_ = x;
  output_.ResizeUninitialized(x.shape());
  const float* in = x.data();
  float* out = output_.data();
  for (int64_t i = 0; i < x.size(); ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  return output_;
}

const Tensor& Relu::Backward(const Tensor& grad_out) {
  DODUO_CHECK(SameShape(grad_out, cached_input_));
  grad_input_.ResizeUninitialized(grad_out.shape());
  const float* dy = grad_out.data();
  const float* in = cached_input_.data();
  float* dx = grad_input_.data();
  for (int64_t i = 0; i < grad_out.size(); ++i)
    dx[i] = in[i] > 0.0f ? dy[i] : 0.0f;
  return grad_input_;
}

const Tensor& TanhLayer::Forward(const Tensor& x) {
  output_.ResizeUninitialized(x.shape());
  const float* in = x.data();
  float* out = output_.data();
  for (int64_t i = 0; i < x.size(); ++i) out[i] = std::tanh(in[i]);
  return output_;
}

const Tensor& TanhLayer::Backward(const Tensor& grad_out) {
  DODUO_CHECK(SameShape(grad_out, output_));
  grad_input_.ResizeUninitialized(grad_out.shape());
  const float* dy = grad_out.data();
  const float* y = output_.data();
  float* dx = grad_input_.data();
  for (int64_t i = 0; i < grad_out.size(); ++i)
    dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  return grad_input_;
}

}  // namespace doduo::nn
