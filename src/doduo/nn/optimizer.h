#ifndef DODUO_NN_OPTIMIZER_H_
#define DODUO_NN_OPTIMIZER_H_

#include "doduo/nn/parameter.h"

namespace doduo::nn {

/// Learning-rate schedule: linear decay from `initial_lr` to zero over
/// `total_steps`, with optional linear warmup. The paper fine-tunes with
/// lr=5e-5, linear decay, no warmup.
class LinearDecaySchedule {
 public:
  LinearDecaySchedule(double initial_lr, int64_t total_steps,
                      int64_t warmup_steps = 0);

  /// Learning rate at optimizer step `step` (0-based).
  double LearningRate(int64_t step) const;

 private:
  double initial_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
};

/// Adam settings; defaults match the paper (eps=1e-8).
struct AdamOptions {
  double learning_rate = 5e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
  double clip_norm = 1.0;  // global gradient-norm clip; <=0 disables
};

/// Adam optimizer over a fixed parameter list. Each Step() consumes the
/// accumulated gradients and zeroes them. The caller owns averaging over a
/// mini-batch (gradients here are sums; divide by batch size before Step or
/// scale the loss accordingly — the trainers average in the loss).
///
/// Moment state lives in the optimizer, not the parameters, so multiple
/// optimizers can drive the same parameter list (the paper's multi-task
/// Algorithm 1 uses one optimizer per task).
class Adam {
 public:
  Adam(ParameterList params, AdamOptions options);

  /// Applies one update using `learning_rate` (use the schedule), then
  /// zeroes all gradients.
  void Step(double learning_rate);

  /// Applies one update with options.learning_rate.
  void Step() { Step(options_.learning_rate); }

  int64_t step_count() const { return step_count_; }
  const AdamOptions& options() const { return options_; }

 private:
  ParameterList params_;
  AdamOptions options_;
  std::vector<Tensor> moment1_;
  std::vector<Tensor> moment2_;
  int64_t step_count_ = 0;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_OPTIMIZER_H_
