#include "doduo/nn/layer_norm.h"

#include <cmath>
#include <utility>

namespace doduo::nn {

LayerNorm::LayerNorm(std::string name, int64_t dim, float epsilon)
    : gamma_(name + ".gamma", {dim}),
      beta_(name + ".beta", {dim}),
      epsilon_(epsilon) {
  gamma_.value.Fill(1.0f);
}

const Tensor& LayerNorm::Forward(const Tensor& x) {
  DODUO_CHECK_EQ(x.ndim(), 2);
  DODUO_CHECK_EQ(x.cols(), dim());
  const int64_t m = x.rows();
  const int64_t n = x.cols();
  normalized_.ResizeUninitialized({m, n});
  rstd_.ResizeUninitialized({m});
  output_.ResizeUninitialized({m, n});
  const float* g = std::as_const(gamma_.value).data();
  const float* b = std::as_const(beta_.value).data();
  for (int64_t i = 0; i < m; ++i) {
    const float* in = x.row(i);
    double mean = 0.0;
    for (int64_t j = 0; j < n; ++j) mean += static_cast<double>(in[j]);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const double d = static_cast<double>(in[j]) - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const float rstd =
        static_cast<float>(1.0 / std::sqrt(var + static_cast<double>(epsilon_)));
    rstd_.at(i) = rstd;
    float* norm = normalized_.row(i);
    float* out = output_.row(i);
    for (int64_t j = 0; j < n; ++j) {
      norm[j] = (in[j] - static_cast<float>(mean)) * rstd;
      out[j] = g[j] * norm[j] + b[j];
    }
  }
  return output_;
}

const Tensor& LayerNorm::Backward(const Tensor& grad_out) {
  DODUO_CHECK(!normalized_.empty()) << "Backward before Forward";
  DODUO_CHECK(SameShape(grad_out, normalized_));
  const int64_t m = grad_out.rows();
  const int64_t n = grad_out.cols();
  grad_input_.ResizeUninitialized({m, n});
  const float* g = std::as_const(gamma_.value).data();
  float* g_grad = gamma_.grad.data();
  float* b_grad = beta_.grad.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* dy = grad_out.row(i);
    const float* xn = normalized_.row(i);
    float* dx = grad_input_.row(i);
    // dγ_j += dy_j * x̂_j ; dβ_j += dy_j (summed over rows).
    double mean_dxn = 0.0;   // mean over j of dy_j γ_j
    double mean_dxnx = 0.0;  // mean over j of dy_j γ_j x̂_j
    for (int64_t j = 0; j < n; ++j) {
      g_grad[j] += dy[j] * xn[j];
      b_grad[j] += dy[j];
      const double dxn = static_cast<double>(dy[j]) * static_cast<double>(g[j]);
      mean_dxn += dxn;
      mean_dxnx += dxn * static_cast<double>(xn[j]);
    }
    mean_dxn /= static_cast<double>(n);
    mean_dxnx /= static_cast<double>(n);
    const float rstd = rstd_.at(i);
    for (int64_t j = 0; j < n; ++j) {
      const double dxn = static_cast<double>(dy[j]) * static_cast<double>(g[j]);
      dx[j] = static_cast<float>(
          static_cast<double>(rstd) *
          (dxn - mean_dxn - static_cast<double>(xn[j]) * mean_dxnx));
    }
  }
  return grad_input_;
}

}  // namespace doduo::nn
