#ifndef DODUO_NN_QUANT_H_
#define DODUO_NN_QUANT_H_

#include <cstdint>
#include <vector>

#include "doduo/nn/parameter.h"
#include "doduo/nn/tensor.h"

namespace doduo::nn {

// Int8 quantized inference path (DESIGN §14). Weights are quantized
// symmetrically per output channel (scale[j] = max|w[:, j]| / 127) into a
// transposed [out, in] int8 layout; activations are quantized dynamically
// per row (scale[i] = max|x[i, :]| / 127). The GEMM accumulates in int32 —
// exactly, so the result is bit-identical across the scalar/SSE2/AVX2
// kernels and at any thread count — and a fused epilogue dequantizes and
// adds the bias in fp32:
//
//   y[i, j] = sa[i] · sw[j] · Σ_l qx[i, l] · qw[j, l]  (+ bias[j])
//
// The path is opt-in at runtime (DODUO_QUANT=1, default off) and changes
// numerics only within the quantization error bound; the Table 3/4 parity
// tests pin its F1 to the fp32 path.

/// True when the int8 inference path is enabled. Initialized from
/// DODUO_QUANT (default off) on first use.
bool QuantEnabled();

/// Runtime override of the DODUO_QUANT switch (tests and tools).
void SetQuantEnabled(bool enabled);

/// Owned int8 rendering of one [in, out] fp32 weight in the kernel layout
/// described above. Built by QuantizeWeight (Linear's lazy cache) or read
/// straight out of a v2 int8 checkpoint (Parameter::prequant).
struct QuantizedWeight {
  std::vector<int8_t> q;     // [out * in]; row j = output channel j
  std::vector<float> scale;  // [out]
  int64_t out = 0;
  int64_t in = 0;
};

/// Borrowed view over either storage flavor; what the kernels consume.
struct Int8WeightView {
  const int8_t* q = nullptr;
  const float* scale = nullptr;
  int64_t out = 0;
  int64_t in = 0;
};

inline Int8WeightView View(const QuantizedWeight& w) {
  return {w.q.data(), w.scale.data(), w.out, w.in};
}
inline Int8WeightView View(const PrequantizedWeight& w) {
  return {w.q, w.scale, w.out, w.in};
}

/// Quantizes a 2-D [in, out] fp32 weight per output channel into the
/// transposed int8 layout. Deterministic (round-to-nearest-even).
void QuantizeWeight(const Tensor& w, QuantizedWeight* out);

/// Quantized linear layer: x [m, in] fp32 → y [m, out] fp32 through the
/// int8 GEMM with fused dequant(+bias) epilogue. `bias` ([out]) may be
/// nullptr (the fused bias/GELU epilogue adds it later). Shards output rows
/// across the compute pool above the same volume threshold as the fp32
/// kernels. Unlike the fp32 path this allocates per call (the quantized
/// activation scratch), so it is not part of the zero-alloc contract.
void Int8Linear(const Tensor& x, const Int8WeightView& w, const float* bias,
                Tensor* y);

/// Name of the int8 dot kernel the dispatcher selected for this process
/// ("avx2", "sse2", or "scalar") — for startup logs and bench output.
const char* Int8KernelName();

/// Every int8 dot kernel this binary can run (scalar always; SSE2/AVX2 when
/// the CPU supports them), for the cross-ISA bit-equality tests and the
/// per-kernel benches. Each computes Σ a[i]·b[i] in int32.
struct Int8DotKernelEntry {
  const char* name;
  int32_t (*fn)(const int8_t* a, const int8_t* b, int64_t k);
};
std::vector<Int8DotKernelEntry> Int8DotKernels();

}  // namespace doduo::nn

#endif  // DODUO_NN_QUANT_H_
