#ifndef DODUO_NN_TENSOR_H_
#define DODUO_NN_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "doduo/util/check.h"
#include "doduo/util/rng.h"

namespace doduo::nn {

/// Number of heap buffer allocations performed by Tensor storage since the
/// last ResetTensorAllocCount(). Always 0 when the library is compiled
/// without DODUO_COUNT_ALLOCS (a CMake option, on by default); with it, the
/// zero-allocation tests assert that steady-state encoder Forward/Backward
/// never touches the heap (see DESIGN.md §9).
uint64_t TensorAllocCount();
void ResetTensorAllocCount();

#ifdef DODUO_COUNT_ALLOCS
namespace internal {
/// std::allocator shim that bumps the global Tensor-allocation counter on
/// every allocate(). Stateless, so all instances compare equal and vector
/// moves still steal buffers without counting.
template <typename T>
struct CountingAllocator {
  using value_type = T;
  CountingAllocator() = default;
  template <typename U>
  CountingAllocator(const CountingAllocator<U>&) {}
  T* allocate(size_t n);
  void deallocate(T* p, size_t n) { std::allocator<T>().deallocate(p, n); }
  friend bool operator==(const CountingAllocator&, const CountingAllocator&) {
    return true;
  }
};
void CountOneTensorAlloc();
template <typename T>
T* CountingAllocator<T>::allocate(size_t n) {
  CountOneTensorAlloc();
  return std::allocator<T>().allocate(n);
}
}  // namespace internal
using FloatBuffer = std::vector<float, internal::CountingAllocator<float>>;
#else
using FloatBuffer = std::vector<float>;
#endif

/// Dense row-major float32 tensor. This is the only numeric container used
/// by the neural-network stack; it supports 1-D through 3-D shapes, which is
/// all the Transformer needs (sequences are processed one at a time, so no
/// batch dimension is required).
///
/// Tensor is a value type: copying copies the buffer. Most hot paths pass
/// `const Tensor&` and write into preallocated outputs via the free
/// functions in ops.h.
///
/// A tensor can alternatively *borrow* read-only storage it does not own
/// (Borrowed): the data pointer aliases an external buffer — an mmap-ed v2
/// checkpoint section, or another replica's weight snapshot — kept alive by
/// a type-erased shared_ptr. Copying a borrowed tensor shares the borrow
/// instead of duplicating the floats, which is what lets N serving replicas
/// reference one physical weight copy (DESIGN §14). Borrowed tensors are
/// immutable: every mutating accessor (non-const data()/at()/row(), the
/// Fill family, ResizeUninitialized) CHECK-fails on them; callers that need
/// a writable copy take MaterializeOwned() first.
class Tensor {
 public:
  /// An empty tensor with no elements and no shape.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. All extents must be
  /// positive.
  explicit Tensor(std::vector<int64_t> shape);

  /// Convenience 1-D/2-D/3-D constructors.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// Builds a tensor that takes ownership of `data`; data.size() must match
  /// the shape volume.
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> data);

  /// Builds a read-only tensor over external storage: `data` must stay
  /// valid (and unmodified) for as long as `keepalive` is held. No floats
  /// are copied — the tensor aliases the caller's buffer.
  static Tensor Borrowed(std::vector<int64_t> shape, const float* data,
                         std::shared_ptr<const void> keepalive);

  /// True when this tensor aliases external read-only storage.
  bool borrowed() const { return view_ != nullptr; }

  /// A deep, owned (writable) copy of this tensor's contents.
  Tensor MaterializeOwned() const;

  /// Fills with Uniform(-limit, limit).
  void FillUniform(util::Rng* rng, float limit);

  /// Fills with Normal(0, stddev).
  void FillNormal(util::Rng* rng, float stddev);

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// Number of dimensions (0 for an empty tensor).
  int ndim() const { return static_cast<int>(shape_.size()); }

  /// Extent of dimension `i`.
  int64_t dim(int i) const {
    DODUO_DCHECK(i >= 0 && i < ndim());
    return shape_[static_cast<size_t>(i)];
  }

  const std::vector<int64_t>& shape() const { return shape_; }

  /// Total number of elements.
  int64_t size() const {
    return view_ != nullptr ? view_size_ : static_cast<int64_t>(data_.size());
  }

  bool empty() const { return size() == 0; }

  /// Rows/cols accessors for 2-D tensors.
  int64_t rows() const {
    DODUO_DCHECK_EQ(ndim(), 2);
    return shape_[0];
  }
  int64_t cols() const {
    DODUO_DCHECK_EQ(ndim(), 2);
    return shape_[1];
  }

  float* data() {
    DODUO_CHECK(view_ == nullptr)
        << "mutable access to a borrowed tensor (MaterializeOwned first)";
    return data_.data();
  }
  const float* data() const {
    return view_ != nullptr ? view_ : data_.data();
  }

  /// Element accessors with debug bounds checks.
  float& at(int64_t i) {
    DODUO_DCHECK_EQ(ndim(), 1);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    return data()[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    DODUO_DCHECK_EQ(ndim(), 1);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    return data()[static_cast<size_t>(i)];
  }

  float& at(int64_t i, int64_t j) {
    DODUO_DCHECK_EQ(ndim(), 2);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    DODUO_DCHECK(j >= 0 && j < shape_[1]);
    return data()[static_cast<size_t>(i * shape_[1] + j)];
  }
  float at(int64_t i, int64_t j) const {
    DODUO_DCHECK_EQ(ndim(), 2);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    DODUO_DCHECK(j >= 0 && j < shape_[1]);
    return data()[static_cast<size_t>(i * shape_[1] + j)];
  }

  float& at(int64_t i, int64_t j, int64_t k) {
    DODUO_DCHECK_EQ(ndim(), 3);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    DODUO_DCHECK(j >= 0 && j < shape_[1]);
    DODUO_DCHECK(k >= 0 && k < shape_[2]);
    return data()[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    DODUO_DCHECK_EQ(ndim(), 3);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    DODUO_DCHECK(j >= 0 && j < shape_[1]);
    DODUO_DCHECK(k >= 0 && k < shape_[2]);
    return data()[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }

  /// Pointer to the start of 2-D row `i`.
  float* row(int64_t i) {
    DODUO_DCHECK_EQ(ndim(), 2);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    return data() + static_cast<size_t>(i * shape_[1]);
  }
  const float* row(int64_t i) const {
    DODUO_DCHECK_EQ(ndim(), 2);
    DODUO_DCHECK(i >= 0 && i < shape_[0]);
    return data() + static_cast<size_t>(i * shape_[1]);
  }

  /// Reinterprets the buffer with a new shape of the same volume.
  void Reshape(std::vector<int64_t> shape);

  /// Resizes to `shape`, reallocating if the volume changes; contents are
  /// unspecified afterwards (call Zero() if needed).
  void ResizeUninitialized(std::vector<int64_t> shape);

  /// Returns a copy of row range [begin, end) of a 2-D tensor.
  Tensor SliceRows(int64_t begin, int64_t end) const;

  /// Sum of all elements (double accumulator).
  double Sum() const;

  /// Square root of the sum of squares.
  double L2Norm() const;

  /// "f32[2, 3]"-style debug string.
  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  FloatBuffer data_;  // owned storage; empty when borrowing

  // Borrowed storage: `view_` aliases `view_size_` floats owned elsewhere,
  // pinned by `owner_`. Copying a Tensor copies these three members, so
  // copies of a borrowed tensor share the underlying buffer.
  const float* view_ = nullptr;
  int64_t view_size_ = 0;
  std::shared_ptr<const void> owner_;
};

/// Volume of a shape. Dies on non-positive extents.
int64_t ShapeVolume(const std::vector<int64_t>& shape);

/// True if the two tensors have identical shapes.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace doduo::nn

#endif  // DODUO_NN_TENSOR_H_
