#include "doduo/nn/losses.h"

#include <cmath>

#include "doduo/nn/ops.h"

namespace doduo::nn {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  DODUO_CHECK_EQ(logits.ndim(), 2);
  DODUO_CHECK_EQ(logits.rows(), static_cast<int64_t>(labels.size()));
  const int64_t m = logits.rows();
  const int64_t c = logits.cols();

  LossResult result;
  result.grad_logits = Tensor({m, c});

  Tensor probs;
  SoftmaxRows(logits, &probs);

  int64_t valid = 0;
  double total_loss = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    const int label = labels[static_cast<size_t>(i)];
    if (label < 0) continue;  // ignored row
    DODUO_CHECK_LT(label, c);
    ++valid;
    const float p = probs.at(i, label);
    total_loss += -static_cast<double>(std::log(std::max(p, 1e-12f)));
  }
  if (valid == 0) return result;

  const float inv_valid = 1.0f / static_cast<float>(valid);
  for (int64_t i = 0; i < m; ++i) {
    const int label = labels[static_cast<size_t>(i)];
    if (label < 0) continue;
    const float* p = probs.row(i);
    float* g = result.grad_logits.row(i);
    for (int64_t j = 0; j < c; ++j) g[j] = p[j] * inv_valid;
    g[label] -= inv_valid;
  }
  result.loss = total_loss / static_cast<double>(valid);
  result.num_examples = valid;
  return result;
}

LossResult BinaryCrossEntropyWithLogits(const Tensor& logits,
                                        const Tensor& targets,
                                        const std::vector<bool>& row_mask) {
  DODUO_CHECK_EQ(logits.ndim(), 2);
  DODUO_CHECK(SameShape(logits, targets));
  DODUO_CHECK(row_mask.empty() ||
              row_mask.size() == static_cast<size_t>(logits.rows()));
  const int64_t m = logits.rows();
  const int64_t c = logits.cols();

  LossResult result;
  result.grad_logits = Tensor({m, c});

  int64_t valid_rows = 0;
  double total_loss = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    if (!row_mask.empty() && !row_mask[static_cast<size_t>(i)]) continue;
    ++valid_rows;
    const float* z = logits.row(i);
    const float* t = targets.row(i);
    for (int64_t j = 0; j < c; ++j) {
      // Stable BCE-with-logits: max(z,0) - z*t + log(1 + exp(-|z|)).
      const float zj = z[j];
      const float tj = t[j];
      total_loss += static_cast<double>(std::max(zj, 0.0f) - zj * tj +
                                        std::log1p(std::exp(-std::fabs(zj))));
    }
  }
  if (valid_rows == 0) return result;

  const float denom =
      static_cast<float>(valid_rows) * static_cast<float>(c);
  const float inv = 1.0f / denom;
  for (int64_t i = 0; i < m; ++i) {
    if (!row_mask.empty() && !row_mask[static_cast<size_t>(i)]) continue;
    const float* z = logits.row(i);
    const float* t = targets.row(i);
    float* g = result.grad_logits.row(i);
    for (int64_t j = 0; j < c; ++j) {
      const float sigmoid = 1.0f / (1.0f + std::exp(-z[j]));
      g[j] = (sigmoid - t[j]) * inv;
    }
  }
  result.loss = total_loss / static_cast<double>(denom);
  result.num_examples = valid_rows;
  return result;
}

}  // namespace doduo::nn
