#ifndef DODUO_NN_LOSSES_H_
#define DODUO_NN_LOSSES_H_

#include <vector>

#include "doduo/nn/tensor.h"

namespace doduo::nn {

/// Loss value plus the gradient with respect to the logits.
struct LossResult {
  double loss = 0.0;         // mean loss over the contributing rows
  Tensor grad_logits;        // same shape as the logits
  int64_t num_examples = 0;  // rows that contributed (label != ignore)
};

/// Multi-class softmax cross entropy.
///
/// logits: [m, C]; labels: length m with values in [0, C) or -1 to ignore a
/// row (used for the [CLS]-only rows of the serialized table and for MLM
/// positions that were not masked). The gradient is averaged over the
/// non-ignored rows.
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

/// Multi-label binary cross entropy with logits (the WikiTable objective).
///
/// logits/targets: [m, C] with targets in {0, 1}; row_mask selects which
/// rows contribute (empty mask = all rows). The loss is the mean of the
/// per-element BCE over contributing rows and all classes, matching
/// BCEWithLogitsLoss(reduction="mean").
LossResult BinaryCrossEntropyWithLogits(const Tensor& logits,
                                        const Tensor& targets,
                                        const std::vector<bool>& row_mask);

}  // namespace doduo::nn

#endif  // DODUO_NN_LOSSES_H_
