#include "doduo/nn/linear.h"

#include <cmath>
#include <utility>

#include "doduo/nn/ops.h"

namespace doduo::nn {

Linear::Linear(std::string name, int64_t in_features, int64_t out_features,
               util::Rng* rng)
    : w_(name + ".w", {in_features, out_features}),
      b_(name + ".b", {out_features}) {
  if (rng != nullptr) {
    const float limit = std::sqrt(
        6.0f / static_cast<float>(in_features + out_features));
    w_.value.FillUniform(rng, limit);
  }
}

bool Linear::QuantView(Int8WeightView* view) const {
  if (!QuantEnabled()) return false;
  if (w_.prequant != nullptr && w_.prequant_revision == w_.revision) {
    *view = View(*w_.prequant);
    return true;
  }
  if (!qcache_valid_ || qcache_revision_ != w_.revision) {
    QuantizeWeight(w_.value, &qcache_);
    qcache_revision_ = w_.revision;
    qcache_valid_ = true;
  }
  *view = View(qcache_);
  return true;
}

const Tensor& Linear::Forward(const Tensor& x) {
  cached_input_ = x;
  Int8WeightView qw;
  if (QuantView(&qw)) {
    Int8Linear(x, qw, std::as_const(b_.value).data(), &output_);
    return output_;
  }
  MatMul(x, w_.value, &output_);
  AddRowBroadcast(&output_, b_.value);
  return output_;
}

Tensor& Linear::ForwardNoBias(const Tensor& x) {
  cached_input_ = x;
  Int8WeightView qw;
  if (QuantView(&qw)) {
    Int8Linear(x, qw, /*bias=*/nullptr, &output_);
    return output_;
  }
  MatMul(x, w_.value, &output_);
  return output_;
}

void Linear::ForwardInto(const Tensor& x, Tensor* out) const {
  Int8WeightView qw;
  if (QuantView(&qw)) {
    Int8Linear(x, qw, std::as_const(b_.value).data(), out);
    return;
  }
  MatMul(x, w_.value, out);
  AddRowBroadcast(out, b_.value);
}

const Tensor& Linear::Backward(const Tensor& grad_out) {
  // dW += xᵀ · dy, db += column-sum(dy), dx = dy · Wᵀ.
  AccumulateParameterGradients(grad_out);
  MatMulTransposedB(grad_out, w_.value, &grad_input_);
  return grad_input_;
}

void Linear::AccumulateParameterGradients(const Tensor& grad_out) {
  DODUO_CHECK(!cached_input_.empty()) << "Backward before Forward";
  DODUO_CHECK_EQ(grad_out.rows(), cached_input_.rows());
  DODUO_CHECK_EQ(grad_out.cols(), w_.value.cols());
  MatMulTransposedAAccum(cached_input_, grad_out, &w_.grad);
  ColumnSumAccum(grad_out, &b_.grad);
}

}  // namespace doduo::nn
