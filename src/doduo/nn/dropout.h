#ifndef DODUO_NN_DROPOUT_H_
#define DODUO_NN_DROPOUT_H_

#include "doduo/nn/tensor.h"
#include "doduo/util/rng.h"

namespace doduo::nn {

/// Inverted dropout: during training, zeroes each activation with
/// probability `rate` and scales survivors by 1/(1-rate); identity during
/// evaluation.
class Dropout {
 public:
  /// `rng` must outlive the layer. `rate` in [0, 1).
  Dropout(float rate, util::Rng* rng);

  /// Switches between training (masking) and evaluation (identity) mode.
  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  const Tensor& Forward(const Tensor& x);
  const Tensor& Backward(const Tensor& grad_out);

 private:
  float rate_;
  util::Rng* rng_;
  bool training_ = true;
  Tensor mask_;  // survivor scale per element (0 or 1/(1-rate))
  Tensor output_;
  Tensor grad_input_;
  bool identity_last_forward_ = true;
};

}  // namespace doduo::nn

#endif  // DODUO_NN_DROPOUT_H_
