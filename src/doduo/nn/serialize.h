#ifndef DODUO_NN_SERIALIZE_H_
#define DODUO_NN_SERIALIZE_H_

#include <string>

#include "doduo/nn/parameter.h"
#include "doduo/util/status.h"

namespace doduo::nn {

/// Saves the parameters in list order to a binary checkpoint file (the v1
/// stream format). The format records each parameter's name and shape, so a
/// load verifies that the target model has an identical structure.
[[nodiscard]] util::Status SaveParameters(const std::string& path,
                            const ParameterList& params);

/// Options for the v2 writer.
struct SaveV2Options {
  /// Store eligible weights (2-D Linear ".w" matrices) as int8 with a
  /// per-output-channel fp32 scale table instead of raw fp32 — roughly 4×
  /// smaller and pre-quantized for the DODUO_QUANT inference path.
  bool quant_int8 = false;
};

/// Saves the parameters in the v2 checkpoint format (DESIGN §14): a
/// fixed-size little-endian header and table of contents followed by
/// 64-byte-aligned tensor sections, so a loader can mmap the file and point
/// tensors straight into it — no parse, no copy, no gather shim. With
/// `quant_int8`, eligible weights are stored transposed as int8 plus a
/// scale table (see nn/quant.h).
[[nodiscard]] util::Status SaveParametersV2(const std::string& path,
                                            const ParameterList& params,
                                            const SaveV2Options& options = {});

/// Loads a checkpoint written by SaveParameters or SaveParametersV2 into
/// `params`, dispatching on the version field. Entries are matched by name
/// (order-insensitive); shapes must match exactly, every model parameter
/// must be found, and every checkpoint entry must be consumed.
///
/// v1 checkpoints are parsed and copied; one legacy-layout shim applies
/// (pre-packed-QKV "<attn>.wq/.wk/.wv" projections are re-packed into the
/// model's "<attn>.wqkv" parameter). v2 checkpoints are mmap-ed
/// (MAP_SHARED | PROT_READ; DODUO_MMAP=0 falls back to a heap read) and
/// fp32 tensors *borrow* the mapping — every byte extent is validated
/// against the file size before any allocation or dereference. Int8 entries
/// are dequantized into owned fp32 values and additionally attach their
/// zero-copy scale/payload tables as Parameter::prequant. After a v2 mmap
/// load the model's weights are read-only (inference); training it requires
/// re-owning the values (e.g. a v1 load or RestoreWeights).
[[nodiscard]] util::Status LoadParameters(const std::string& path,
                            const ParameterList& params);

}  // namespace doduo::nn

#endif  // DODUO_NN_SERIALIZE_H_
