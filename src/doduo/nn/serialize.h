#ifndef DODUO_NN_SERIALIZE_H_
#define DODUO_NN_SERIALIZE_H_

#include <string>

#include "doduo/nn/parameter.h"
#include "doduo/util/status.h"

namespace doduo::nn {

/// Saves the parameters in list order to a binary checkpoint file. The
/// format records each parameter's name and shape, so a load verifies that
/// the target model has an identical structure.
[[nodiscard]] util::Status SaveParameters(const std::string& path,
                            const ParameterList& params);

/// Loads a checkpoint written by SaveParameters into `params`. Entries are
/// matched by name (order-insensitive); shapes must match exactly, every
/// model parameter must be found, and every checkpoint entry must be
/// consumed. One legacy-layout shim applies: checkpoints from before the
/// packed-QKV attention, which store separate "<attn>.wq/.wk/.wv"
/// projections, are re-packed into the model's "<attn>.wqkv" parameter.
[[nodiscard]] util::Status LoadParameters(const std::string& path,
                            const ParameterList& params);

}  // namespace doduo::nn

#endif  // DODUO_NN_SERIALIZE_H_
