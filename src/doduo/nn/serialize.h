#ifndef DODUO_NN_SERIALIZE_H_
#define DODUO_NN_SERIALIZE_H_

#include <string>

#include "doduo/nn/parameter.h"
#include "doduo/util/status.h"

namespace doduo::nn {

/// Saves the parameters in list order to a binary checkpoint file. The
/// format records each parameter's name and shape, so a load verifies that
/// the target model has an identical structure.
util::Status SaveParameters(const std::string& path,
                            const ParameterList& params);

/// Loads a checkpoint written by SaveParameters into `params`. Names,
/// order, and shapes must match exactly.
util::Status LoadParameters(const std::string& path,
                            const ParameterList& params);

}  // namespace doduo::nn

#endif  // DODUO_NN_SERIALIZE_H_
