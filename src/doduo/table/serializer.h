#ifndef DODUO_TABLE_SERIALIZER_H_
#define DODUO_TABLE_SERIALIZER_H_

#include <cstdint>
#include <vector>

#include "doduo/table/table.h"
#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/util/status.h"

namespace doduo::table {

/// A table rendered as a token-id sequence plus the positions of the
/// per-column [CLS] markers whose contextual embeddings become the column
/// representations (Section 4.2/4.3 of the paper).
struct SerializedTable {
  std::vector<int> token_ids;
  std::vector<int64_t> cls_positions;  // one entry per serialized column
  /// Row index of the cell each token came from; -1 for structural tokens
  /// ([CLS]/[SEP]) and column-name (metadata) tokens. Used by the TURL
  /// baseline's row-wise visibility matrix.
  std::vector<int> row_ids;
};

/// Serialization knobs. `max_tokens_per_column` is the paper's MaxToken/col
/// (Tables 8/11); `max_total_tokens` models the LM's input limit (512 for
/// BERT; smaller here). When the per-column budget does not fit, it is
/// reduced evenly so every column keeps its [CLS].
struct SerializerOptions {
  int max_tokens_per_column = 32;
  int max_total_tokens = 160;
  bool include_metadata = false;  // prepend the column name to its values
};

/// Converts tables into model input sequences.
///
/// Table-wise (DODUO):    [CLS] col1-tokens [CLS] col2-tokens ... [SEP]
/// Single-column:         [CLS] col-tokens [SEP]
/// Column-pair:           [CLS] colA-tokens [SEP] [CLS] colB-tokens [SEP]
///
/// Every Serialize* entry point validates its input and returns an
/// InvalidArgument Status (naming the table, column index, or token budget)
/// instead of aborting: zero-column tables, out-of-range column indices,
/// and tables with more columns than the token budget can carry all come
/// back as errors the caller can surface (DESIGN §10).
class TableSerializer {
 public:
  /// `tokenizer` must outlive the serializer.
  TableSerializer(const text::WordPieceTokenizer* tokenizer,
                  SerializerOptions options);

  /// DODUO's table-wise serialization: one [CLS] per column.
  [[nodiscard]] util::Result<SerializedTable> SerializeTable(const Table& table) const;

  /// Single-column serialization (the DOSOLO_SCol type model).
  [[nodiscard]] util::Result<SerializedTable> SerializeColumn(const Table& table,
                                                int column) const;

  /// Column-pair serialization (the DOSOLO_SCol relation model); yields two
  /// [CLS] positions so the same relation head applies.
  [[nodiscard]] util::Result<SerializedTable> SerializeColumnPair(const Table& table,
                                                    int column_a,
                                                    int column_b) const;

  /// Largest column count a table may have so that every column keeps at
  /// least one value token under `options` (the "Max # of cols" column of
  /// Table 8).
  int MaxSupportedColumns() const;

  const SerializerOptions& options() const { return options_; }

 private:
  /// Appends one column's content tokens (truncated to `budget`) and their
  /// row ids to the output sequence.
  void AppendColumnTokens(const Column& column, int budget,
                          SerializedTable* out) const;

  const text::WordPieceTokenizer* tokenizer_;
  SerializerOptions options_;
};

}  // namespace doduo::table

#endif  // DODUO_TABLE_SERIALIZER_H_
