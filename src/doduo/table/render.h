#ifndef DODUO_TABLE_RENDER_H_
#define DODUO_TABLE_RENDER_H_

#include <string>

#include "doduo/table/table.h"

namespace doduo::table {

/// Renders a table as an aligned Markdown-style grid (header row from the
/// column names, then values). `max_rows` truncates long tables with an
/// ellipsis row; `max_cell_width` clips long cells.
std::string RenderTable(const Table& table, int max_rows = 10,
                        int max_cell_width = 24);

}  // namespace doduo::table

#endif  // DODUO_TABLE_RENDER_H_
