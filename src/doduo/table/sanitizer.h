#ifndef DODUO_TABLE_SANITIZER_H_
#define DODUO_TABLE_SANITIZER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "doduo/table/table.h"

namespace doduo::table {

/// Why a column was excluded from annotation. Values are part of the wire
/// and CLI contract (doduo_serve encodes them as u32, doduo_cli prints
/// SkipReasonName); only append, never renumber.
enum class SkipReason : int {
  kNone = 0,        // column is annotatable
  kEmptyColumn = 1, // no values at all
  kMostlyNull = 2,  // null/empty marker ratio above max_null_ratio
  kHeaderLike = 3,  // values mostly echo the header name (repeated header
                    // rows glued into the data region)
};

/// Stable machine-readable token for a reason ("", "empty_column",
/// "mostly_null", "header_like"). Unknown values map to "unknown".
const char* SkipReasonName(SkipReason reason);

struct SanitizerOptions {
  /// Cells longer than this many bytes are clamped (on a code-point
  /// boundary, after UTF-8 repair). 0 disables clamping.
  size_t max_cell_bytes = 4096;
  /// Repair ill-formed UTF-8 in headers and cells to U+FFFD.
  bool repair_utf8 = true;
  /// Skip a column when more than this fraction of its cells are empty or
  /// a null marker ("null", "n/a", "nan", "-", ...). 1.0 only skips
  /// all-null columns.
  double max_null_ratio = 0.9;
  /// Skip a column when at least this fraction of its non-null cells
  /// case-insensitively equal the column's own header name.
  double header_like_ratio = 0.5;
};

/// Per-column result of a sanitizer pass.
struct ColumnReport {
  SkipReason skip = SkipReason::kNone;
  size_t cells_repaired = 0;  // ill-formed UTF-8 cells rewritten
  size_t cells_clamped = 0;   // over-length cells truncated
  bool name_repaired = false;

  bool modified() const {
    return cells_repaired > 0 || cells_clamped > 0 || name_repaired;
  }
};

/// Result of sanitizing a whole table. `table` is only populated when
/// `any_modified` is true; callers keep using the original table otherwise,
/// which guarantees clean input flows through byte-identical.
struct SanitizeResult {
  Table table;
  std::vector<ColumnReport> columns;  // one entry per input column
  bool any_modified = false;

  size_t num_skipped() const;
};

/// Classifies each column of a dirty table as annotate / skip-with-reason
/// and cleans the annotatable ones (UTF-8 repair + cell clamping) so the
/// tokenizer and serializer downstream never see ill-formed bytes. The
/// pass never rejects a whole table: the worst outcome for a column is a
/// machine-readable skip reason.
class ColumnSanitizer {
 public:
  explicit ColumnSanitizer(SanitizerOptions options = {});

  /// Sanitizes every column. Skipped columns keep their original content
  /// in the returned table (they are not annotated, so cleaning them would
  /// only churn bytes).
  SanitizeResult Sanitize(const Table& table) const;

  /// Classifies one column without modifying it.
  SkipReason Classify(const Column& column) const;

  const SanitizerOptions& options() const { return options_; }

 private:
  SanitizerOptions options_;
};

/// True when `value`, trimmed and lowercased, is empty or a conventional
/// null marker ("null", "none", "n/a", "na", "nan", "nil", "-", "?").
bool IsNullMarker(const std::string& value);

}  // namespace doduo::table

#endif  // DODUO_TABLE_SANITIZER_H_
