#include "doduo/table/render.h"

#include <algorithm>

#include "doduo/util/check.h"

namespace doduo::table {

namespace {

std::string Clip(const std::string& text, int width) {
  if (static_cast<int>(text.size()) <= width) return text;
  if (width <= 3) return text.substr(0, static_cast<size_t>(width));
  return text.substr(0, static_cast<size_t>(width - 3)) + "...";
}

}  // namespace

std::string RenderTable(const Table& table, int max_rows,
                        int max_cell_width) {
  DODUO_CHECK_GT(max_rows, 0);
  DODUO_CHECK_GT(max_cell_width, 0);
  const int n = table.num_columns();
  if (n == 0) return "(empty table)\n";
  const int rows = std::min(table.num_rows(), max_rows);
  const bool truncated = table.num_rows() > max_rows;

  // Column widths from header + visible cells.
  std::vector<size_t> widths(static_cast<size_t>(n), 1);
  auto cell = [&](int c, int r) -> std::string {
    const auto& values = table.column(c).values;
    return r < static_cast<int>(values.size())
               ? Clip(values[static_cast<size_t>(r)], max_cell_width)
               : "";
  };
  for (int c = 0; c < n; ++c) {
    widths[static_cast<size_t>(c)] =
        Clip(table.column(c).name, max_cell_width).size();
    for (int r = 0; r < rows; ++r) {
      widths[static_cast<size_t>(c)] =
          std::max(widths[static_cast<size_t>(c)], cell(c, r).size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (int c = 0; c < n; ++c) {
      const std::string& value = row[static_cast<size_t>(c)];
      const size_t width = widths[static_cast<size_t>(c)];
      const size_t pad = value.size() < width ? width - value.size() : 0;
      line += " " + value + std::string(pad, ' ') + " |";
    }
    return line + "\n";
  };

  std::vector<std::string> header;
  for (int c = 0; c < n; ++c) {
    header.push_back(Clip(table.column(c).name, max_cell_width));
  }
  std::string out = render_row(header);
  out += "|";
  for (int c = 0; c < n; ++c) {
    out += std::string(widths[static_cast<size_t>(c)] + 2, '-') + "|";
  }
  out += "\n";
  for (int r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < n; ++c) row.push_back(cell(c, r));
    out += render_row(row);
  }
  if (truncated) {
    std::vector<std::string> ellipsis(static_cast<size_t>(n), "...");
    out += render_row(ellipsis);
  }
  return out;
}

}  // namespace doduo::table
