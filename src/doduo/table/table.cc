#include "doduo/table/table.h"

#include <algorithm>

#include "doduo/util/check.h"

namespace doduo::table {

int Table::num_rows() const {
  size_t rows = 0;
  for (const Column& column : columns_) {
    rows = std::max(rows, column.values.size());
  }
  return static_cast<int>(rows);
}

const Column& Table::column(int i) const {
  DODUO_CHECK(i >= 0 && i < num_columns());
  return columns_[static_cast<size_t>(i)];
}

Column& Table::mutable_column(int i) {
  DODUO_CHECK(i >= 0 && i < num_columns());
  return columns_[static_cast<size_t>(i)];
}

void Table::ShuffleRows(util::Rng* rng) {
  const int rows = num_rows();
  if (rows <= 1) return;
  std::vector<size_t> permutation(static_cast<size_t>(rows));
  for (size_t i = 0; i < permutation.size(); ++i) permutation[i] = i;
  rng->Shuffle(&permutation);
  for (Column& column : columns_) {
    std::vector<std::string> shuffled;
    shuffled.reserve(column.values.size());
    for (size_t new_row = 0; new_row < permutation.size(); ++new_row) {
      const size_t old_row = permutation[new_row];
      if (old_row < column.values.size()) {
        shuffled.push_back(column.values[old_row]);
      }
    }
    column.values = std::move(shuffled);
  }
}

void Table::PermuteColumns(const std::vector<int>& permutation) {
  DODUO_CHECK_EQ(static_cast<int>(permutation.size()), num_columns());
  std::vector<Column> reordered;
  reordered.reserve(columns_.size());
  std::vector<bool> seen(columns_.size(), false);
  for (int src : permutation) {
    DODUO_CHECK(src >= 0 && src < num_columns());
    DODUO_CHECK(!seen[static_cast<size_t>(src)])
        << "permutation is not a bijection";
    seen[static_cast<size_t>(src)] = true;
    reordered.push_back(std::move(columns_[static_cast<size_t>(src)]));
  }
  columns_ = std::move(reordered);
}

util::Result<Table> TableFromCsvRows(
    const std::vector<std::vector<std::string>>& rows, bool has_header,
    std::string id) {
  if (rows.empty()) {
    return util::Status::InvalidArgument("no rows");
  }
  const size_t width = rows[0].size();
  if (width == 0) {
    return util::Status::InvalidArgument("zero-width table");
  }
  Table table(std::move(id));
  for (size_t c = 0; c < width; ++c) {
    Column column;
    if (has_header) column.name = rows[0][c];
    table.AddColumn(std::move(column));
  }
  for (size_t r = has_header ? 1 : 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < width && c < rows[r].size(); ++c) {
      table.mutable_column(static_cast<int>(c))
          .values.push_back(rows[r][c]);
    }
  }
  return table;
}

}  // namespace doduo::table
