#include "doduo/table/serializer.h"

#include <algorithm>
#include <string>

#include "doduo/util/check.h"
#include "doduo/util/metrics.h"

namespace doduo::table {

using text::Vocab;

namespace {

void Push(SerializedTable* out, int token_id, int row_id) {
  out->token_ids.push_back(token_id);
  out->row_ids.push_back(row_id);
}

// Stage metrics (DESIGN §10). Resolved once; recording is atomic adds only.
struct SerializerMetrics {
  util::Histogram* serialize_us = util::GetHistogram("serializer.serialize_us");
  util::Counter* tables = util::GetCounter("serializer.tables_total");
  util::Counter* tokens = util::GetCounter("serializer.tokens_total");
  util::Counter* spans_truncated =
      util::GetCounter("serializer.spans_truncated_total");
};

SerializerMetrics& Metrics() {
  static SerializerMetrics metrics;
  return metrics;
}

util::Status BadColumnIndex(const Table& table, int column) {
  return util::Status::InvalidArgument(
      "column index " + std::to_string(column) + " out of range for table '" +
      table.id() + "' with " + std::to_string(table.num_columns()) +
      " columns");
}

}  // namespace

TableSerializer::TableSerializer(const text::WordPieceTokenizer* tokenizer,
                                 SerializerOptions options)
    : tokenizer_(tokenizer), options_(options) {
  DODUO_CHECK(tokenizer != nullptr);
  DODUO_CHECK_GT(options.max_tokens_per_column, 0);
  DODUO_CHECK_GT(options.max_total_tokens, 2);
}

void TableSerializer::AppendColumnTokens(const Column& column, int budget,
                                         SerializedTable* out) const {
  int used = 0;
  // Tokenization stops at the remaining budget: a single enormous header
  // or cell must not be WordPiece'd in full just to throw the tail away.
  // EncodeBudgeted returns an exact prefix of Encode, so output sequences
  // are unchanged; a cut span only shows up in the truncation counter.
  const auto append_span = [&](const std::string& text, int row_id) {
    if (used >= budget) return false;
    bool truncated = false;
    for (int id : tokenizer_->EncodeBudgeted(
             text, static_cast<size_t>(budget - used), &truncated)) {
      Push(out, id, row_id);
      ++used;
    }
    if (truncated) Metrics().spans_truncated->Increment();
    return used < budget;
  };
  if (options_.include_metadata && !column.name.empty()) {
    if (!append_span(column.name, -1)) return;
  }
  for (size_t row = 0; row < column.values.size(); ++row) {
    if (!append_span(column.values[row], static_cast<int>(row))) break;
  }
}

util::Result<SerializedTable> TableSerializer::SerializeTable(
    const Table& table) const {
  util::ScopedTimer timer(Metrics().serialize_us, "serializer.serialize");
  const int n = table.num_columns();
  if (n <= 0) {
    return util::Status::InvalidArgument("table '" + table.id() +
                                         "' has no columns");
  }
  // Budget per column under the total limit: n [CLS] markers + trailing
  // [SEP] are always kept.
  const int available = options_.max_total_tokens - n - 1;
  if (available < 0) {
    return util::Status::InvalidArgument(
        "table '" + table.id() + "' has " + std::to_string(n) +
        " columns but max_total_tokens=" +
        std::to_string(options_.max_total_tokens) + " fits at most " +
        std::to_string(options_.max_total_tokens - 1) +
        " column [CLS] markers plus the trailing [SEP]");
  }
  const int budget =
      std::min(options_.max_tokens_per_column, std::max(0, available / n));

  SerializedTable out;
  out.token_ids.reserve(static_cast<size_t>(options_.max_total_tokens));
  out.row_ids.reserve(static_cast<size_t>(options_.max_total_tokens));
  for (int c = 0; c < n; ++c) {
    out.cls_positions.push_back(
        static_cast<int64_t>(out.token_ids.size()));
    Push(&out, Vocab::kClsId, -1);
    AppendColumnTokens(table.column(c), budget, &out);
  }
  Push(&out, Vocab::kSepId, -1);
  Metrics().tables->Increment();
  Metrics().tokens->Increment(out.token_ids.size());
  return out;
}

util::Result<SerializedTable> TableSerializer::SerializeColumn(
    const Table& table, int column) const {
  util::ScopedTimer timer(Metrics().serialize_us, "serializer.serialize");
  if (column < 0 || column >= table.num_columns()) {
    return BadColumnIndex(table, column);
  }
  const int budget = std::min(options_.max_tokens_per_column,
                              options_.max_total_tokens - 2);
  SerializedTable out;
  out.cls_positions.push_back(0);
  Push(&out, Vocab::kClsId, -1);
  AppendColumnTokens(table.column(column), budget, &out);
  Push(&out, Vocab::kSepId, -1);
  Metrics().tables->Increment();
  Metrics().tokens->Increment(out.token_ids.size());
  return out;
}

util::Result<SerializedTable> TableSerializer::SerializeColumnPair(
    const Table& table, int column_a, int column_b) const {
  util::ScopedTimer timer(Metrics().serialize_us, "serializer.serialize");
  if (column_a < 0 || column_a >= table.num_columns()) {
    return BadColumnIndex(table, column_a);
  }
  if (column_b < 0 || column_b >= table.num_columns()) {
    return BadColumnIndex(table, column_b);
  }
  const int budget = std::min(options_.max_tokens_per_column,
                              std::max(1, (options_.max_total_tokens - 4) / 2));
  SerializedTable out;
  for (int column : {column_a, column_b}) {
    out.cls_positions.push_back(
        static_cast<int64_t>(out.token_ids.size()));
    Push(&out, Vocab::kClsId, -1);
    AppendColumnTokens(table.column(column), budget, &out);
    Push(&out, Vocab::kSepId, -1);
  }
  Metrics().tables->Increment();
  Metrics().tokens->Increment(out.token_ids.size());
  return out;
}

int TableSerializer::MaxSupportedColumns() const {
  // Each column costs [CLS] + max_tokens_per_column; plus the final [SEP].
  return (options_.max_total_tokens - 1) /
         (options_.max_tokens_per_column + 1);
}

}  // namespace doduo::table
