#include "doduo/table/dataset.h"

#include <algorithm>

#include "doduo/util/check.h"

namespace doduo::table {

int LabelVocab::AddLabel(const std::string& label) {
  auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.push_back(label);
  ids_.emplace(label, id);
  return id;
}

int LabelVocab::Id(const std::string& label) const {
  auto it = ids_.find(label);
  return it != ids_.end() ? it->second : -1;
}

const std::string& LabelVocab::Name(int id) const {
  DODUO_CHECK(id >= 0 && id < size()) << "label id out of range: " << id;
  return names_[static_cast<size_t>(id)];
}

int ColumnAnnotationDataset::num_columns() const {
  int total = 0;
  for (const AnnotatedTable& t : tables) total += t.table.num_columns();
  return total;
}

int ColumnAnnotationDataset::num_relations() const {
  int total = 0;
  for (const AnnotatedTable& t : tables) {
    total += static_cast<int>(t.relations.size());
  }
  return total;
}

DatasetSplits SplitDataset(size_t num_tables, double train_fraction,
                           double valid_fraction, util::Rng* rng) {
  DODUO_CHECK(train_fraction > 0.0 && valid_fraction >= 0.0 &&
              train_fraction + valid_fraction < 1.0);
  std::vector<size_t> order(num_tables);
  for (size_t i = 0; i < num_tables; ++i) order[i] = i;
  rng->Shuffle(&order);
  const size_t train_end =
      static_cast<size_t>(static_cast<double>(num_tables) * train_fraction);
  const size_t valid_end =
      train_end + static_cast<size_t>(static_cast<double>(num_tables) *
                                      valid_fraction);
  DatasetSplits splits;
  splits.train.assign(order.begin(), order.begin() + train_end);
  splits.valid.assign(order.begin() + train_end, order.begin() + valid_end);
  splits.test.assign(order.begin() + valid_end, order.end());
  return splits;
}

std::vector<size_t> SubsampleIndices(const std::vector<size_t>& indices,
                                     double fraction) {
  DODUO_CHECK(fraction > 0.0 && fraction <= 1.0);
  const size_t keep = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(indices.size()) * fraction));
  return std::vector<size_t>(indices.begin(),
                             indices.begin() + std::min(keep, indices.size()));
}

void ShuffleAllRows(std::vector<AnnotatedTable>* tables, util::Rng* rng) {
  for (AnnotatedTable& t : *tables) t.table.ShuffleRows(rng);
}

void ShuffleAllColumns(std::vector<AnnotatedTable>* tables, util::Rng* rng) {
  for (AnnotatedTable& t : *tables) {
    const int n = t.table.num_columns();
    if (n <= 1) continue;
    // permutation[new_pos] = old_pos.
    std::vector<int> permutation(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) permutation[static_cast<size_t>(i)] = i;
    rng->Shuffle(&permutation);
    t.table.PermuteColumns(permutation);

    std::vector<std::vector<int>> types(static_cast<size_t>(n));
    std::vector<int> old_to_new(static_cast<size_t>(n));
    for (int new_pos = 0; new_pos < n; ++new_pos) {
      const int old_pos = permutation[static_cast<size_t>(new_pos)];
      types[static_cast<size_t>(new_pos)] =
          std::move(t.column_types[static_cast<size_t>(old_pos)]);
      old_to_new[static_cast<size_t>(old_pos)] = new_pos;
    }
    t.column_types = std::move(types);
    for (RelationAnnotation& rel : t.relations) {
      rel.column_a = old_to_new[static_cast<size_t>(rel.column_a)];
      rel.column_b = old_to_new[static_cast<size_t>(rel.column_b)];
    }
  }
}

}  // namespace doduo::table
