#include "doduo/table/sanitizer.h"

#include <array>

#include "doduo/util/metrics.h"
#include "doduo/util/string_util.h"

namespace doduo::table {
namespace {

struct SanitizerMetrics {
  util::Counter* cells_repaired = util::GetCounter("sanitizer.cells_repaired");
  util::Counter* cells_clamped = util::GetCounter("sanitizer.cells_clamped");
  util::Counter* cols_skipped = util::GetCounter("sanitizer.cols_skipped");
  util::Counter* tables = util::GetCounter("sanitizer.tables");
};

SanitizerMetrics& Metrics() {
  static SanitizerMetrics metrics;
  return metrics;
}

/// Repairs `*cell` in place when ill-formed, then clamps it to
/// `max_bytes`. Returns flags for what happened.
struct CellFix {
  bool repaired = false;
  bool clamped = false;
};

CellFix FixCell(std::string* cell, const SanitizerOptions& options) {
  CellFix fix;
  if (options.repair_utf8 && !util::Utf8IsValid(*cell)) {
    *cell = util::Utf8Repair(*cell);
    fix.repaired = true;
  }
  if (options.max_cell_bytes > 0 && cell->size() > options.max_cell_bytes) {
    *cell = std::string(util::Utf8ClampBytes(*cell, options.max_cell_bytes));
    fix.clamped = true;
  }
  return fix;
}

}  // namespace

const char* SkipReasonName(SkipReason reason) {
  switch (reason) {
    case SkipReason::kNone:
      return "";
    case SkipReason::kEmptyColumn:
      return "empty_column";
    case SkipReason::kMostlyNull:
      return "mostly_null";
    case SkipReason::kHeaderLike:
      return "header_like";
  }
  return "unknown";
}

bool IsNullMarker(const std::string& value) {
  const std::string t = util::ToLower(util::Trim(value));
  if (t.empty()) return true;
  static constexpr std::array<const char*, 8> kMarkers = {
      "null", "none", "n/a", "na", "nan", "nil", "-", "?"};
  for (const char* marker : kMarkers) {
    if (t == marker) return true;
  }
  return false;
}

ColumnSanitizer::ColumnSanitizer(SanitizerOptions options)
    : options_(options) {}

SkipReason ColumnSanitizer::Classify(const Column& column) const {
  if (column.values.empty()) return SkipReason::kEmptyColumn;
  size_t nulls = 0;
  size_t header_echoes = 0;
  const std::string header = util::ToLower(util::Trim(column.name));
  for (const std::string& value : column.values) {
    if (IsNullMarker(value)) {
      ++nulls;
    } else if (!header.empty() &&
               util::ToLower(util::Trim(value)) == header) {
      ++header_echoes;
    }
  }
  const size_t total = column.values.size();
  if (static_cast<double>(nulls) >
      options_.max_null_ratio * static_cast<double>(total)) {
    return SkipReason::kMostlyNull;
  }
  const size_t non_null = total - nulls;
  if (non_null > 0 &&
      static_cast<double>(header_echoes) >=
          options_.header_like_ratio * static_cast<double>(non_null)) {
    return SkipReason::kHeaderLike;
  }
  return SkipReason::kNone;
}

SanitizeResult ColumnSanitizer::Sanitize(const Table& table) const {
  Metrics().tables->Increment();
  SanitizeResult result;
  result.columns.resize(static_cast<size_t>(table.num_columns()));

  // First pass: classify and find out whether anything needs rewriting, so
  // a clean table costs no copy at all.
  for (int i = 0; i < table.num_columns(); ++i) {
    const Column& column = table.column(i);
    ColumnReport& report = result.columns[static_cast<size_t>(i)];
    report.skip = Classify(column);
    if (report.skip != SkipReason::kNone) {
      Metrics().cols_skipped->Increment();
      continue;  // skipped columns are left byte-for-byte as they came in
    }
    if (options_.repair_utf8 && !util::Utf8IsValid(column.name)) {
      report.name_repaired = true;
    }
    for (const std::string& value : column.values) {
      if (options_.repair_utf8 && !util::Utf8IsValid(value)) {
        ++report.cells_repaired;
      } else if (options_.max_cell_bytes > 0 &&
                 value.size() > options_.max_cell_bytes) {
        ++report.cells_clamped;
      }
    }
    // A repaired cell can also need clamping; the counts above only decide
    // whether a rewrite happens, the rewrite below recounts exactly.
    if (report.modified()) result.any_modified = true;
  }
  if (!result.any_modified) return result;

  // Second pass: rewrite only the columns that need it.
  result.table = table;
  for (int i = 0; i < table.num_columns(); ++i) {
    ColumnReport& report = result.columns[static_cast<size_t>(i)];
    if (report.skip != SkipReason::kNone || !report.modified()) continue;
    Column& column = result.table.mutable_column(i);
    report = ColumnReport{};  // recount precisely during the rewrite
    if (options_.repair_utf8 && !util::Utf8IsValid(column.name)) {
      column.name = util::Utf8Repair(column.name);
      report.name_repaired = true;
    }
    for (std::string& value : column.values) {
      const CellFix fix = FixCell(&value, options_);
      if (fix.repaired) ++report.cells_repaired;
      if (fix.clamped) ++report.cells_clamped;
    }
    Metrics().cells_repaired->Increment(report.cells_repaired);
    Metrics().cells_clamped->Increment(report.cells_clamped);
  }
  return result;
}

size_t SanitizeResult::num_skipped() const {
  size_t count = 0;
  for (const ColumnReport& report : columns) {
    if (report.skip != SkipReason::kNone) ++count;
  }
  return count;
}

}  // namespace doduo::table
