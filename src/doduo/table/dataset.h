#ifndef DODUO_TABLE_DATASET_H_
#define DODUO_TABLE_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "doduo/table/table.h"
#include "doduo/util/rng.h"

namespace doduo::table {

/// String-label ↔ id mapping for column types or column relations.
class LabelVocab {
 public:
  /// Adds `label` if absent; returns its id either way.
  int AddLabel(const std::string& label);

  /// Id of `label`, or -1 when unknown.
  int Id(const std::string& label) const;

  const std::string& Name(int id) const;
  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

/// A relation annotation between two columns of one table. Following the
/// paper's WikiTable setup, relations link the table's key column (column
/// 0) to another column, but the representation is general.
struct RelationAnnotation {
  int column_a = 0;
  int column_b = 0;
  std::vector<int> labels;  // ≥1 relation ids (multi-label on WikiTable)
};

/// A table with its ground-truth column-type and column-relation labels.
struct AnnotatedTable {
  Table table;
  /// Per column, ≥1 type ids (exactly 1 in single-label datasets).
  std::vector<std::vector<int>> column_types;
  std::vector<RelationAnnotation> relations;
};

/// Index sets of a train/valid/test partition.
struct DatasetSplits {
  std::vector<size_t> train;
  std::vector<size_t> valid;
  std::vector<size_t> test;
};

/// A column-annotation benchmark: labeled tables plus label vocabularies.
/// `multi_label` distinguishes the WikiTable-style multi-label BCE setting
/// from the VizNet-style single-label CE setting.
struct ColumnAnnotationDataset {
  std::string name;
  bool multi_label = false;
  LabelVocab type_vocab;
  LabelVocab relation_vocab;
  std::vector<AnnotatedTable> tables;

  int num_columns() const;
  int num_relations() const;
};

/// Random split by table with the given fractions (test gets the rest).
DatasetSplits SplitDataset(size_t num_tables, double train_fraction,
                           double valid_fraction, util::Rng* rng);

/// Keeps only the first `fraction` of the (already shuffled) train indices
/// — the Figure 4 learning-efficiency knob.
std::vector<size_t> SubsampleIndices(const std::vector<size_t>& indices,
                                     double fraction);

/// Row-shuffles every table (labels are row-invariant). Table 6 ablation.
void ShuffleAllRows(std::vector<AnnotatedTable>* tables, util::Rng* rng);

/// Column-shuffles every table, permuting type labels and remapping
/// relation endpoints consistently. Table 6 ablation.
void ShuffleAllColumns(std::vector<AnnotatedTable>* tables, util::Rng* rng);

}  // namespace doduo::table

#endif  // DODUO_TABLE_DATASET_H_
