#ifndef DODUO_TABLE_TABLE_H_
#define DODUO_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "doduo/util/rng.h"
#include "doduo/util/status.h"

namespace doduo::table {

/// One column: an optional header name and the cell values as strings. All
/// cell values are strings (the paper casts every cell to text; see
/// Section 3.1 of the paper and the numeric analysis in Table 5).
struct Column {
  std::string name;  // empty when the table has no usable header
  std::vector<std::string> values;
};

/// A relational table: an id and an ordered list of columns.
class Table {
 public:
  Table() = default;
  explicit Table(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Maximum number of values across columns (columns may be ragged).
  int num_rows() const;

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  const Column& column(int i) const;
  Column& mutable_column(int i);
  const std::vector<Column>& columns() const { return columns_; }

  /// Permutes the values of every column with the same row permutation
  /// (only meaningful when columns are aligned; ragged tails stay ragged).
  void ShuffleRows(util::Rng* rng);

  /// Reorders columns by `permutation` (a bijection on [0, num_columns)).
  void PermuteColumns(const std::vector<int>& permutation);

 private:
  std::string id_;
  std::vector<Column> columns_;
};

/// Builds a Table from parsed CSV rows; when `has_header` the first row
/// provides column names. Fails on empty input or ragged header.
[[nodiscard]] util::Result<Table> TableFromCsvRows(
    const std::vector<std::vector<std::string>>& rows, bool has_header,
    std::string id);

}  // namespace doduo::table

#endif  // DODUO_TABLE_TABLE_H_
