#include "doduo/eval/confusion.h"

#include <algorithm>

#include "doduo/util/check.h"

namespace doduo::eval {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes) * num_classes, 0) {
  DODUO_CHECK_GT(num_classes, 0);
}

void ConfusionMatrix::Add(int actual, int predicted) {
  DODUO_CHECK(actual >= 0 && actual < num_classes_);
  DODUO_CHECK(predicted >= 0 && predicted < num_classes_);
  ++counts_[static_cast<size_t>(actual) * num_classes_ + predicted];
  ++total_;
}

void ConfusionMatrix::AddAll(const std::vector<int>& actual,
                             const std::vector<int>& predicted) {
  DODUO_CHECK_EQ(actual.size(), predicted.size());
  for (size_t i = 0; i < actual.size(); ++i) Add(actual[i], predicted[i]);
}

long ConfusionMatrix::count(int actual, int predicted) const {
  DODUO_CHECK(actual >= 0 && actual < num_classes_);
  DODUO_CHECK(predicted >= 0 && predicted < num_classes_);
  return counts_[static_cast<size_t>(actual) * num_classes_ + predicted];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  long correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<ConfusionMatrix::ConfusionPair>
ConfusionMatrix::TopConfusions(int k) const {
  std::vector<ConfusionPair> pairs;
  for (int a = 0; a < num_classes_; ++a) {
    for (int p = 0; p < num_classes_; ++p) {
      if (a == p) continue;
      const long n = count(a, p);
      if (n > 0) pairs.push_back({a, p, n});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const ConfusionPair& x, const ConfusionPair& y) {
              if (x.count != y.count) return x.count > y.count;
              if (x.actual != y.actual) return x.actual < y.actual;
              return x.predicted < y.predicted;
            });
  if (static_cast<int>(pairs.size()) > k) {
    pairs.resize(static_cast<size_t>(k));
  }
  return pairs;
}

std::string ConfusionMatrix::RenderTopConfusions(
    const table::LabelVocab& vocab, int k) const {
  std::string out;
  for (const ConfusionPair& pair : TopConfusions(k)) {
    out += vocab.Name(pair.actual) + " -> " + vocab.Name(pair.predicted) +
           ": " + std::to_string(pair.count) + "\n";
  }
  return out;
}

}  // namespace doduo::eval
