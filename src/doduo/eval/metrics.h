#ifndef DODUO_EVAL_METRICS_H_
#define DODUO_EVAL_METRICS_H_

#include <vector>

namespace doduo::eval {

/// Precision / recall / F1 triple.
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Per-class true/false positive/negative tallies.
struct ClassCounts {
  long tp = 0;
  long fp = 0;
  long fn = 0;
};

/// A multi-label prediction problem instance: for each example, the set of
/// predicted label ids and the set of true label ids. Single-label problems
/// use singleton sets.
struct LabeledSets {
  std::vector<std::vector<int>> predicted;
  std::vector<std::vector<int>> actual;
};

/// Per-class counts over `num_classes` classes.
std::vector<ClassCounts> CountPerClass(const LabeledSets& sets,
                                       int num_classes);

/// Micro-averaged P/R/F1: pool all decisions, then compute once. This is
/// the paper's headline metric on both benchmarks.
Prf MicroPrf(const std::vector<ClassCounts>& counts);

/// Macro-averaged F1: unweighted mean of per-class F1 over classes with
/// support (tp + fn > 0). The paper's secondary VizNet metric.
Prf MacroPrf(const std::vector<ClassCounts>& counts);

/// F1 of one class.
Prf ClassPrf(const ClassCounts& counts);

/// Convenience for single-label problems.
LabeledSets FromSingleLabels(const std::vector<int>& predicted,
                             const std::vector<int>& actual);

}  // namespace doduo::eval

#endif  // DODUO_EVAL_METRICS_H_
