#ifndef DODUO_EVAL_REPORT_H_
#define DODUO_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "doduo/eval/metrics.h"
#include "doduo/table/dataset.h"

namespace doduo::eval {

/// One row of a per-class report (Figure 5 / Table 10 style output).
struct ClassReportRow {
  std::string label;
  long support = 0;  // tp + fn in the test set
  Prf prf;
};

/// Per-class P/R/F1 rows, sorted by descending support.
std::vector<ClassReportRow> PerClassReport(
    const LabeledSets& sets, const table::LabelVocab& vocab);

/// Formats a P/R/F1 as percentages, e.g. "92.69 / 92.21 / 92.45".
std::string FormatPrf(const Prf& prf);

/// Formats a fraction as a two-decimal percentage, e.g. "92.45".
std::string Pct(double fraction);

}  // namespace doduo::eval

#endif  // DODUO_EVAL_REPORT_H_
