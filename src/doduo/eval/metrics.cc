#include "doduo/eval/metrics.h"

#include <unordered_set>

#include "doduo/util/check.h"

namespace doduo::eval {

namespace {

Prf FromCounts(double tp, double fp, double fn) {
  Prf prf;
  prf.precision = tp + fp > 0 ? tp / (tp + fp) : 0.0;
  prf.recall = tp + fn > 0 ? tp / (tp + fn) : 0.0;
  prf.f1 = prf.precision + prf.recall > 0
               ? 2.0 * prf.precision * prf.recall /
                     (prf.precision + prf.recall)
               : 0.0;
  return prf;
}

}  // namespace

std::vector<ClassCounts> CountPerClass(const LabeledSets& sets,
                                       int num_classes) {
  DODUO_CHECK_EQ(sets.predicted.size(), sets.actual.size());
  std::vector<ClassCounts> counts(static_cast<size_t>(num_classes));
  for (size_t i = 0; i < sets.predicted.size(); ++i) {
    std::unordered_set<int> predicted(sets.predicted[i].begin(),
                                      sets.predicted[i].end());
    std::unordered_set<int> actual(sets.actual[i].begin(),
                                   sets.actual[i].end());
    for (int label : predicted) {
      DODUO_CHECK(label >= 0 && label < num_classes);
      if (actual.count(label) > 0) {
        ++counts[static_cast<size_t>(label)].tp;
      } else {
        ++counts[static_cast<size_t>(label)].fp;
      }
    }
    for (int label : actual) {
      DODUO_CHECK(label >= 0 && label < num_classes);
      if (predicted.count(label) == 0) {
        ++counts[static_cast<size_t>(label)].fn;
      }
    }
  }
  return counts;
}

Prf MicroPrf(const std::vector<ClassCounts>& counts) {
  double tp = 0;
  double fp = 0;
  double fn = 0;
  for (const ClassCounts& c : counts) {
    tp += static_cast<double>(c.tp);
    fp += static_cast<double>(c.fp);
    fn += static_cast<double>(c.fn);
  }
  return FromCounts(tp, fp, fn);
}

Prf MacroPrf(const std::vector<ClassCounts>& counts) {
  Prf total;
  int supported = 0;
  for (const ClassCounts& c : counts) {
    if (c.tp + c.fn == 0) continue;  // class absent from the test set
    const Prf prf = ClassPrf(c);
    total.precision += prf.precision;
    total.recall += prf.recall;
    total.f1 += prf.f1;
    ++supported;
  }
  if (supported == 0) return total;
  total.precision /= supported;
  total.recall /= supported;
  total.f1 /= supported;
  return total;
}

Prf ClassPrf(const ClassCounts& counts) {
  return FromCounts(static_cast<double>(counts.tp),
                    static_cast<double>(counts.fp),
                    static_cast<double>(counts.fn));
}

LabeledSets FromSingleLabels(const std::vector<int>& predicted,
                             const std::vector<int>& actual) {
  DODUO_CHECK_EQ(predicted.size(), actual.size());
  LabeledSets sets;
  sets.predicted.reserve(predicted.size());
  sets.actual.reserve(actual.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    sets.predicted.push_back({predicted[i]});
    sets.actual.push_back({actual[i]});
  }
  return sets;
}

}  // namespace doduo::eval
