#include "doduo/eval/report.h"

#include <algorithm>

#include "doduo/util/string_util.h"

namespace doduo::eval {

std::vector<ClassReportRow> PerClassReport(const LabeledSets& sets,
                                           const table::LabelVocab& vocab) {
  const std::vector<ClassCounts> counts = CountPerClass(sets, vocab.size());
  std::vector<ClassReportRow> rows;
  rows.reserve(counts.size());
  for (int label = 0; label < vocab.size(); ++label) {
    const ClassCounts& c = counts[static_cast<size_t>(label)];
    if (c.tp + c.fn == 0) continue;
    rows.push_back({vocab.Name(label), c.tp + c.fn, ClassPrf(c)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const ClassReportRow& a, const ClassReportRow& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.label < b.label;
            });
  return rows;
}

std::string FormatPrf(const Prf& prf) {
  return Pct(prf.precision) + " / " + Pct(prf.recall) + " / " + Pct(prf.f1);
}

std::string Pct(double fraction) {
  return util::FormatPercent(fraction, 2);
}

}  // namespace doduo::eval
