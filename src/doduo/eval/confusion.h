#ifndef DODUO_EVAL_CONFUSION_H_
#define DODUO_EVAL_CONFUSION_H_

#include <string>
#include <vector>

#include "doduo/table/dataset.h"

namespace doduo::eval {

/// A dense confusion matrix over single-label predictions:
/// counts(actual, predicted). Error analysis for the VizNet-style tasks —
/// e.g. which types "ranking" columns get mistaken for.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Records one decision.
  void Add(int actual, int predicted);

  /// Records all decisions of single-label prediction vectors.
  void AddAll(const std::vector<int>& actual,
              const std::vector<int>& predicted);

  long count(int actual, int predicted) const;

  /// Total decisions recorded.
  long total() const { return total_; }

  /// Fraction of decisions on the diagonal.
  double Accuracy() const;

  /// The `k` most frequent off-diagonal (actual, predicted) pairs,
  /// most frequent first.
  struct ConfusionPair {
    int actual = 0;
    int predicted = 0;
    long count = 0;
  };
  std::vector<ConfusionPair> TopConfusions(int k) const;

  /// Renders the top confusions with label names, one per line.
  std::string RenderTopConfusions(const table::LabelVocab& vocab,
                                  int k) const;

  int num_classes() const { return num_classes_; }

 private:
  int num_classes_;
  long total_ = 0;
  std::vector<long> counts_;  // row-major [actual][predicted]
};

}  // namespace doduo::eval

#endif  // DODUO_EVAL_CONFUSION_H_
