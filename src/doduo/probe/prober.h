#ifndef DODUO_PROBE_PROBER_H_
#define DODUO_PROBE_PROBER_H_

#include <string>
#include <vector>

#include "doduo/probe/templates.h"
#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/transformer/mlm.h"

namespace doduo::probe {

/// One row of Tables 12/13: how well the *pre-trained, not fine-tuned* LM
/// ranks the true label among all candidates for that label's entities.
struct ProbeRow {
  std::string label;
  double avg_rank = 0.0;       // 1 = always judged most natural
  double ppl_ratio = 0.0;      // PPL(true) / mean PPL over candidates
  int num_samples = 0;
};

/// Template-based LM probing (Appendix A.5): scores each candidate
/// completion by the masked pseudo-perplexity of the candidate span —
/// every candidate token is masked in turn and the mean NLL of the true
/// tokens is exponentiated. Scoring only the candidate span (rather than
/// the whole sentence) keeps candidates of different lengths comparable,
/// which substitutes for the paper's equal-token-count filtering.
class LmProber {
 public:
  /// All pointers must outlive the prober. The pretrainer supplies masked
  /// log-probabilities from its (pre-trained) model.
  LmProber(transformer::MlmPretrainer* scorer,
           const text::WordPieceTokenizer* tokenizer);

  /// Pseudo-perplexity of `completion` inside `tmpl`.
  double ScoreCompletion(const Template& tmpl,
                         const std::string& completion) const;

  /// Rank (1-based) of candidate `true_index` under the scores, plus the
  /// PPL ratio, written into the output parameters.
  void RankCandidates(const Template& tmpl,
                      const std::vector<Candidate>& candidates,
                      size_t true_index, int* rank, double* ppl_ratio) const;

  /// Probes every KB type over up to `samples_per_label` of its entities;
  /// rows sorted by ascending avg_rank (best-known first).
  std::vector<ProbeRow> ProbeTypes(const synth::KnowledgeBase& kb,
                                   int samples_per_label,
                                   util::Rng* rng) const;

  /// Probes every KB relation over up to `samples_per_label` of its facts.
  std::vector<ProbeRow> ProbeRelations(const synth::KnowledgeBase& kb,
                                       int samples_per_label,
                                       util::Rng* rng) const;

 private:
  transformer::MlmPretrainer* scorer_;
  const text::WordPieceTokenizer* tokenizer_;
};

}  // namespace doduo::probe

#endif  // DODUO_PROBE_PROBER_H_
