#include "doduo/probe/templates.h"

namespace doduo::probe {

Template MakeTypeTemplate(const std::string& entity) {
  return {entity + " is", "."};
}

std::vector<Candidate> TypeCandidates(const synth::KnowledgeBase& kb) {
  std::vector<Candidate> candidates;
  candidates.reserve(static_cast<size_t>(kb.num_types()));
  for (int t = 0; t < kb.num_types(); ++t) {
    candidates.push_back(
        {t, synth::KnowledgeBase::LeafWord(kb.type(t).name)});
  }
  return candidates;
}

Template MakeRelationTemplate(const std::string& subject,
                              const std::string& object) {
  return {subject, object + " ."};
}

std::vector<Candidate> RelationCandidates(const synth::KnowledgeBase& kb) {
  std::vector<Candidate> candidates;
  candidates.reserve(static_cast<size_t>(kb.num_relations()));
  for (int r = 0; r < kb.num_relations(); ++r) {
    candidates.push_back({r, kb.relation(r).phrase});
  }
  return candidates;
}

}  // namespace doduo::probe
