#ifndef DODUO_PROBE_TEMPLATES_H_
#define DODUO_PROBE_TEMPLATES_H_

#include <string>
#include <vector>

#include "doduo/synth/knowledge_base.h"

namespace doduo::probe {

/// A fill-in-the-blank probing template: the fixed prefix/suffix around the
/// candidate span. Types use "<entity> is ____ ."; relations use
/// "<subject> ____ <object> ." with the relation phrase as the candidate,
/// mirroring Appendix A.5 of the paper.
struct Template {
  std::string prefix;  // e.g. "judy morris is"
  std::string suffix;  // e.g. "."
};

/// The candidate completion for one label (type leaf word or relation
/// phrase).
struct Candidate {
  int label_id = 0;        // type id or relation id in the KB
  std::string completion;  // the words filling the blank
};

/// Type-probing template for one entity.
Template MakeTypeTemplate(const std::string& entity);

/// All type candidates of a KB (leaf word per type).
std::vector<Candidate> TypeCandidates(const synth::KnowledgeBase& kb);

/// Relation-probing template for a subject/object pair.
Template MakeRelationTemplate(const std::string& subject,
                              const std::string& object);

/// All relation candidates of a KB (phrase per relation).
std::vector<Candidate> RelationCandidates(const synth::KnowledgeBase& kb);

}  // namespace doduo::probe

#endif  // DODUO_PROBE_TEMPLATES_H_
