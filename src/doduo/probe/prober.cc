#include "doduo/probe/prober.h"

#include <algorithm>
#include <cmath>

#include "doduo/util/check.h"

namespace doduo::probe {

LmProber::LmProber(transformer::MlmPretrainer* scorer,
                   const text::WordPieceTokenizer* tokenizer)
    : scorer_(scorer), tokenizer_(tokenizer) {
  DODUO_CHECK(scorer != nullptr);
  DODUO_CHECK(tokenizer != nullptr);
}

double LmProber::ScoreCompletion(const Template& tmpl,
                                 const std::string& completion) const {
  const std::vector<int> prefix = tokenizer_->Encode(tmpl.prefix);
  const std::vector<int> span = tokenizer_->Encode(completion);
  const std::vector<int> suffix = tokenizer_->Encode(tmpl.suffix);
  DODUO_CHECK(!span.empty()) << "untokenizable completion: " << completion;

  std::vector<int> ids;
  ids.push_back(text::Vocab::kClsId);
  ids.insert(ids.end(), prefix.begin(), prefix.end());
  const size_t span_begin = ids.size();
  ids.insert(ids.end(), span.begin(), span.end());
  const size_t span_end = ids.size();
  ids.insert(ids.end(), suffix.begin(), suffix.end());
  ids.push_back(text::Vocab::kSepId);

  double total_nll = 0.0;
  for (size_t pos = span_begin; pos < span_end; ++pos) {
    total_nll -= scorer_->MaskedLogProb(ids, pos, ids[pos]);
  }
  return std::exp(total_nll / static_cast<double>(span_end - span_begin));
}

void LmProber::RankCandidates(const Template& tmpl,
                              const std::vector<Candidate>& candidates,
                              size_t true_index, int* rank,
                              double* ppl_ratio) const {
  DODUO_CHECK_LT(true_index, candidates.size());
  std::vector<double> scores(candidates.size());
  double total = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = ScoreCompletion(tmpl, candidates[i].completion);
    total += scores[i];
  }
  int better = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i != true_index && scores[i] < scores[true_index]) ++better;
  }
  *rank = better + 1;
  const double mean = total / static_cast<double>(candidates.size());
  *ppl_ratio = mean > 0.0 ? scores[true_index] / mean : 0.0;
}

std::vector<ProbeRow> LmProber::ProbeTypes(const synth::KnowledgeBase& kb,
                                           int samples_per_label,
                                           util::Rng* rng) const {
  const std::vector<Candidate> candidates = TypeCandidates(kb);
  std::vector<ProbeRow> rows;
  for (int t = 0; t < kb.num_types(); ++t) {
    const synth::EntityType& type = kb.type(t);
    const size_t samples = std::min<size_t>(
        static_cast<size_t>(samples_per_label), type.entities.size());
    ProbeRow row;
    row.label = type.name;
    for (size_t index :
         rng->SampleIndices(type.entities.size(), samples)) {
      int rank = 0;
      double ppl_ratio = 0.0;
      RankCandidates(MakeTypeTemplate(type.entities[index]), candidates,
                     static_cast<size_t>(t), &rank, &ppl_ratio);
      row.avg_rank += rank;
      row.ppl_ratio += ppl_ratio;
      ++row.num_samples;
    }
    if (row.num_samples > 0) {
      row.avg_rank /= row.num_samples;
      row.ppl_ratio /= row.num_samples;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProbeRow& a, const ProbeRow& b) {
              return a.avg_rank < b.avg_rank;
            });
  return rows;
}

std::vector<ProbeRow> LmProber::ProbeRelations(
    const synth::KnowledgeBase& kb, int samples_per_label,
    util::Rng* rng) const {
  const std::vector<Candidate> candidates = RelationCandidates(kb);
  std::vector<ProbeRow> rows;
  for (int r = 0; r < kb.num_relations(); ++r) {
    const synth::RelationType& relation = kb.relation(r);
    const auto& subjects = kb.type(relation.subject_type).entities;
    const auto& objects = kb.type(relation.object_type).entities;
    const size_t samples = std::min<size_t>(
        static_cast<size_t>(samples_per_label), subjects.size());
    ProbeRow row;
    row.label = relation.name;
    for (size_t subject : rng->SampleIndices(subjects.size(), samples)) {
      const int object = kb.FactObject(r, static_cast<int>(subject));
      int rank = 0;
      double ppl_ratio = 0.0;
      RankCandidates(
          MakeRelationTemplate(subjects[subject],
                               objects[static_cast<size_t>(object)]),
          candidates, static_cast<size_t>(r), &rank, &ppl_ratio);
      row.avg_rank += rank;
      row.ppl_ratio += ppl_ratio;
      ++row.num_samples;
    }
    if (row.num_samples > 0) {
      row.avg_rank /= row.num_samples;
      row.ppl_ratio /= row.num_samples;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ProbeRow& a, const ProbeRow& b) {
              return a.avg_rank < b.avg_rank;
            });
  return rows;
}

}  // namespace doduo::probe
