#ifndef DODUO_TRANSFORMER_ENCODER_H_
#define DODUO_TRANSFORMER_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "doduo/transformer/block.h"

namespace doduo::transformer {

/// A stack of Transformer blocks.
class Encoder {
 public:
  Encoder(const std::string& name, const TransformerConfig& config,
          util::Rng* rng);

  /// x: [seq, d] → [seq, d] through all blocks (same mask at every layer).
  const nn::Tensor& Forward(const nn::Tensor& x, const AttentionMask* mask);

  /// grad_out: [seq, d] → d(loss)/dx.
  const nn::Tensor& Backward(const nn::Tensor& grad_out);

  nn::ParameterList Parameters();

  void set_training(bool training);

  /// Selects fused or reference kernels in every block (see
  /// TransformerBlock::set_use_fused).
  void set_use_fused(bool fused);

  int num_layers() const { return static_cast<int>(blocks_.size()); }

  /// Attention probabilities of layer `layer` from the last Forward.
  const std::vector<nn::Tensor>& attention_probs(int layer) const;

 private:
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_ENCODER_H_
