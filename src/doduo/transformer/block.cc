#include "doduo/transformer/block.h"

#include "doduo/nn/ops.h"

namespace doduo::transformer {

namespace {

// Workspace slots for the fused FFN path.
enum WsSlot : size_t {
  kFfnAct = 0,   // gelu(W1·h + b1) [seq, ffn_dim]
  kFfnGradPre,   // d(loss)/d(W1·h + b1) [seq, ffn_dim]
};

}  // namespace

TransformerBlock::TransformerBlock(const std::string& name,
                                   const TransformerConfig& config,
                                   util::Rng* rng)
    : attention_(name + ".attn", config, rng),
      attention_dropout_(config.dropout, rng),
      attention_norm_(name + ".attn_norm", config.hidden_dim),
      ffn_in_(name + ".ffn_in", config.hidden_dim, config.ffn_dim, rng),
      ffn_out_(name + ".ffn_out", config.ffn_dim, config.hidden_dim, rng),
      ffn_dropout_(config.dropout, rng),
      ffn_norm_(name + ".ffn_norm", config.hidden_dim),
      use_fused_(attention_.use_fused()),
      forward_was_fused_(use_fused_) {}

void TransformerBlock::set_use_fused(bool fused) {
  use_fused_ = fused;
  attention_.set_use_fused(fused);
}

const nn::Tensor& TransformerBlock::Forward(const nn::Tensor& x,
                                            const AttentionMask* mask) {
  const nn::Tensor& attn = attention_.Forward(x, mask);
  const nn::Tensor& attn_dropped = attention_dropout_.Forward(attn);
  nn::Add(x, attn_dropped, &residual1_);
  const nn::Tensor& hidden = attention_norm_.Forward(residual1_);

  forward_was_fused_ = use_fused_;
  const nn::Tensor* ffn_activated = nullptr;
  if (use_fused_) {
    // W1·h, then bias add + GELU in one epilogue pass; the biased
    // pre-activation stays in ffn_in_'s output for GeluBackward.
    nn::Tensor& pre = ffn_in_.ForwardNoBias(hidden);
    nn::Tensor& act = ws_.Get(kFfnAct, pre.shape());
    nn::BiasGeluForward(&pre, ffn_in_.bias().value, &act);
    ffn_pre_ = &pre;
    ffn_activated = &act;
  } else {
    const nn::Tensor& ffn_hidden = ffn_in_.Forward(hidden);
    ffn_activated = &ffn_act_.Forward(ffn_hidden);
  }
  const nn::Tensor& ffn_projected = ffn_out_.Forward(*ffn_activated);
  const nn::Tensor& ffn_dropped = ffn_dropout_.Forward(ffn_projected);
  nn::Add(hidden, ffn_dropped, &residual2_);
  return ffn_norm_.Forward(residual2_);
}

const nn::Tensor& TransformerBlock::Backward(const nn::Tensor& grad_out) {
  // Through the second LayerNorm; the residual splits the gradient into the
  // FFN branch and the skip connection.
  const nn::Tensor& d_residual2 = ffn_norm_.Backward(grad_out);
  const nn::Tensor& d_ffn_dropped = ffn_dropout_.Backward(d_residual2);
  const nn::Tensor& d_ffn_activated = ffn_out_.Backward(d_ffn_dropped);
  if (forward_was_fused_) {
    DODUO_CHECK(ffn_pre_ != nullptr) << "Backward before Forward";
    nn::Tensor& d_ffn_pre = ws_.Get(kFfnGradPre, d_ffn_activated.shape());
    nn::GeluBackward(*ffn_pre_, d_ffn_activated, &d_ffn_pre);
    grad_hidden_ = ffn_in_.Backward(d_ffn_pre);
  } else {
    const nn::Tensor& d_ffn_hidden = ffn_act_.Backward(d_ffn_activated);
    grad_hidden_ = ffn_in_.Backward(d_ffn_hidden);
  }
  nn::AddInPlace(&grad_hidden_, d_residual2);  // skip path

  const nn::Tensor& d_residual1 = attention_norm_.Backward(grad_hidden_);
  const nn::Tensor& d_attn_dropped = attention_dropout_.Backward(d_residual1);
  grad_input_ = attention_.Backward(d_attn_dropped);
  nn::AddInPlace(&grad_input_, d_residual1);  // skip path
  return grad_input_;
}

nn::ParameterList TransformerBlock::Parameters() {
  nn::ParameterList params;
  nn::AppendParameters(attention_.Parameters(), &params);
  nn::AppendParameters(attention_norm_.Parameters(), &params);
  nn::AppendParameters(ffn_in_.Parameters(), &params);
  nn::AppendParameters(ffn_out_.Parameters(), &params);
  nn::AppendParameters(ffn_norm_.Parameters(), &params);
  return params;
}

void TransformerBlock::set_training(bool training) {
  attention_dropout_.set_training(training);
  ffn_dropout_.set_training(training);
}

}  // namespace doduo::transformer
