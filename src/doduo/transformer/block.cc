#include "doduo/transformer/block.h"

#include "doduo/nn/ops.h"

namespace doduo::transformer {

TransformerBlock::TransformerBlock(const std::string& name,
                                   const TransformerConfig& config,
                                   util::Rng* rng)
    : attention_(name + ".attn", config, rng),
      attention_dropout_(config.dropout, rng),
      attention_norm_(name + ".attn_norm", config.hidden_dim),
      ffn_in_(name + ".ffn_in", config.hidden_dim, config.ffn_dim, rng),
      ffn_out_(name + ".ffn_out", config.ffn_dim, config.hidden_dim, rng),
      ffn_dropout_(config.dropout, rng),
      ffn_norm_(name + ".ffn_norm", config.hidden_dim) {}

const nn::Tensor& TransformerBlock::Forward(const nn::Tensor& x,
                                            const AttentionMask* mask) {
  const nn::Tensor& attn = attention_.Forward(x, mask);
  const nn::Tensor& attn_dropped = attention_dropout_.Forward(attn);
  nn::Add(x, attn_dropped, &residual1_);
  const nn::Tensor& hidden = attention_norm_.Forward(residual1_);

  const nn::Tensor& ffn_hidden = ffn_in_.Forward(hidden);
  const nn::Tensor& ffn_activated = ffn_act_.Forward(ffn_hidden);
  const nn::Tensor& ffn_projected = ffn_out_.Forward(ffn_activated);
  const nn::Tensor& ffn_dropped = ffn_dropout_.Forward(ffn_projected);
  nn::Add(hidden, ffn_dropped, &residual2_);
  return ffn_norm_.Forward(residual2_);
}

const nn::Tensor& TransformerBlock::Backward(const nn::Tensor& grad_out) {
  // Through the second LayerNorm; the residual splits the gradient into the
  // FFN branch and the skip connection.
  const nn::Tensor& d_residual2 = ffn_norm_.Backward(grad_out);
  const nn::Tensor& d_ffn_dropped = ffn_dropout_.Backward(d_residual2);
  const nn::Tensor& d_ffn_activated = ffn_out_.Backward(d_ffn_dropped);
  const nn::Tensor& d_ffn_hidden = ffn_act_.Backward(d_ffn_activated);
  grad_hidden_ = ffn_in_.Backward(d_ffn_hidden);
  nn::AddInPlace(&grad_hidden_, d_residual2);  // skip path

  const nn::Tensor& d_residual1 = attention_norm_.Backward(grad_hidden_);
  const nn::Tensor& d_attn_dropped = attention_dropout_.Backward(d_residual1);
  grad_input_ = attention_.Backward(d_attn_dropped);
  nn::AddInPlace(&grad_input_, d_residual1);  // skip path
  return grad_input_;
}

nn::ParameterList TransformerBlock::Parameters() {
  nn::ParameterList params;
  nn::AppendParameters(attention_.Parameters(), &params);
  nn::AppendParameters(attention_norm_.Parameters(), &params);
  nn::AppendParameters(ffn_in_.Parameters(), &params);
  nn::AppendParameters(ffn_out_.Parameters(), &params);
  nn::AppendParameters(ffn_norm_.Parameters(), &params);
  return params;
}

void TransformerBlock::set_training(bool training) {
  attention_dropout_.set_training(training);
  ffn_dropout_.set_training(training);
}

}  // namespace doduo::transformer
