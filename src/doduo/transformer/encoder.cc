#include "doduo/transformer/encoder.h"

namespace doduo::transformer {

Encoder::Encoder(const std::string& name, const TransformerConfig& config,
                 util::Rng* rng) {
  blocks_.reserve(static_cast<size_t>(config.num_layers));
  for (int i = 0; i < config.num_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        name + ".block" + std::to_string(i), config, rng));
  }
}

const nn::Tensor& Encoder::Forward(const nn::Tensor& x,
                                   const AttentionMask* mask) {
  const nn::Tensor* hidden = &x;
  for (auto& block : blocks_) {
    hidden = &block->Forward(*hidden, mask);
  }
  return *hidden;
}

const nn::Tensor& Encoder::Backward(const nn::Tensor& grad_out) {
  const nn::Tensor* grad = &grad_out;
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    grad = &(*it)->Backward(*grad);
  }
  return *grad;
}

nn::ParameterList Encoder::Parameters() {
  nn::ParameterList params;
  for (auto& block : blocks_) {
    nn::AppendParameters(block->Parameters(), &params);
  }
  return params;
}

void Encoder::set_training(bool training) {
  for (auto& block : blocks_) block->set_training(training);
}

void Encoder::set_use_fused(bool fused) {
  for (auto& block : blocks_) block->set_use_fused(fused);
}

const std::vector<nn::Tensor>& Encoder::attention_probs(int layer) const {
  DODUO_CHECK(layer >= 0 && layer < num_layers());
  return blocks_[static_cast<size_t>(layer)]->attention_probs();
}

}  // namespace doduo::transformer
