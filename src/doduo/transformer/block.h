#ifndef DODUO_TRANSFORMER_BLOCK_H_
#define DODUO_TRANSFORMER_BLOCK_H_

#include <string>

#include "doduo/nn/activations.h"
#include "doduo/nn/dropout.h"
#include "doduo/nn/layer_norm.h"
#include "doduo/nn/linear.h"
#include "doduo/transformer/attention.h"
#include "doduo/transformer/config.h"

namespace doduo::transformer {

/// One post-LN Transformer block (BERT layout):
///   h  = LayerNorm(x + Dropout(SelfAttention(x)))
///   y  = LayerNorm(h + Dropout(W2·GELU(W1·h)))
class TransformerBlock {
 public:
  TransformerBlock(const std::string& name, const TransformerConfig& config,
                   util::Rng* rng);

  /// x: [seq, d] → [seq, d].
  const nn::Tensor& Forward(const nn::Tensor& x, const AttentionMask* mask);

  /// grad_out: [seq, d] → d(loss)/dx [seq, d].
  const nn::Tensor& Backward(const nn::Tensor& grad_out);

  nn::ParameterList Parameters();

  void set_training(bool training);

  /// Attention probabilities of the last Forward (per head).
  const std::vector<nn::Tensor>& attention_probs() const {
    return attention_.attention_probs();
  }

 private:
  MultiHeadSelfAttention attention_;
  nn::Dropout attention_dropout_;
  nn::LayerNorm attention_norm_;
  nn::Linear ffn_in_;
  nn::Gelu ffn_act_;
  nn::Linear ffn_out_;
  nn::Dropout ffn_dropout_;
  nn::LayerNorm ffn_norm_;

  nn::Tensor residual1_;  // x + dropout(attn(x))
  nn::Tensor residual2_;  // h + dropout(ffn(h))
  nn::Tensor grad_hidden_;
  nn::Tensor grad_input_;
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_BLOCK_H_
