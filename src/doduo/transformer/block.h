#ifndef DODUO_TRANSFORMER_BLOCK_H_
#define DODUO_TRANSFORMER_BLOCK_H_

#include <string>

#include "doduo/nn/activations.h"
#include "doduo/nn/dropout.h"
#include "doduo/nn/layer_norm.h"
#include "doduo/nn/linear.h"
#include "doduo/nn/workspace.h"
#include "doduo/transformer/attention.h"
#include "doduo/transformer/config.h"

namespace doduo::transformer {

/// One post-LN Transformer block (BERT layout):
///   h  = LayerNorm(x + Dropout(SelfAttention(x)))
///   y  = LayerNorm(h + Dropout(W2·GELU(W1·h)))
///
/// On the fused path (default) the FFN's bias add and GELU run as one
/// epilogue pass over W1·h (BiasGeluForward) with the activation buffer in a
/// per-block workspace; attention runs its strided-view kernels. The
/// reference path keeps the separate AddRowBroadcast + Gelu-layer sequence.
/// Both paths are bit-identical and allocation-free at steady state.
class TransformerBlock {
 public:
  TransformerBlock(const std::string& name, const TransformerConfig& config,
                   util::Rng* rng);

  /// x: [seq, d] → [seq, d].
  const nn::Tensor& Forward(const nn::Tensor& x, const AttentionMask* mask);

  /// grad_out: [seq, d] → d(loss)/dx [seq, d].
  const nn::Tensor& Backward(const nn::Tensor& grad_out);

  nn::ParameterList Parameters();

  void set_training(bool training);

  /// Selects fused or reference kernels for the attention and FFN of this
  /// block (see MultiHeadSelfAttention::set_use_fused).
  void set_use_fused(bool fused);
  bool use_fused() const { return use_fused_; }

  /// Attention probabilities of the last Forward (per head).
  const std::vector<nn::Tensor>& attention_probs() const {
    return attention_.attention_probs();
  }

 private:
  MultiHeadSelfAttention attention_;
  nn::Dropout attention_dropout_;
  nn::LayerNorm attention_norm_;
  nn::Linear ffn_in_;
  nn::Gelu ffn_act_;  // reference path only; fused path uses BiasGeluForward
  nn::Linear ffn_out_;
  nn::Dropout ffn_dropout_;
  nn::LayerNorm ffn_norm_;

  bool use_fused_;
  bool forward_was_fused_;
  const nn::Tensor* ffn_pre_ = nullptr;  // biased pre-activation (fused path)

  nn::Tensor residual1_;  // x + dropout(attn(x))
  nn::Tensor residual2_;  // h + dropout(ffn(h))
  nn::Tensor grad_hidden_;
  nn::Tensor grad_input_;
  nn::Workspace ws_;  // FFN activation + gradient scratch (fused path)
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_BLOCK_H_
