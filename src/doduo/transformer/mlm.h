#ifndef DODUO_TRANSFORMER_MLM_H_
#define DODUO_TRANSFORMER_MLM_H_

#include <string>
#include <vector>

#include "doduo/nn/activations.h"
#include "doduo/nn/linear.h"
#include "doduo/transformer/bert.h"

namespace doduo::transformer {

/// BERT's masked-language-model head: dense + GELU + LayerNorm + decoder to
/// vocabulary logits.
class MlmHead {
 public:
  MlmHead(const std::string& name, const TransformerConfig& config,
          util::Rng* rng);

  /// hidden: [seq, d] → vocabulary logits [seq, vocab].
  const nn::Tensor& Forward(const nn::Tensor& hidden);

  /// grad_logits: [seq, vocab] → d(loss)/d(hidden) [seq, d].
  const nn::Tensor& Backward(const nn::Tensor& grad_logits);

  nn::ParameterList Parameters();

 private:
  nn::Linear transform_;
  nn::Gelu activation_;
  nn::LayerNorm norm_;
  nn::Linear decoder_;
};

/// Masked-language-model pre-training (BERT's objective) on a corpus of
/// token-id sequences. This stands in for BERT's Wikipedia pre-training:
/// the corpus is generated from the synthetic knowledge base, so the
/// encoder absorbs the same facts the annotation tasks later need.
class MlmPretrainer {
 public:
  struct Options {
    int epochs = 3;
    int batch_size = 8;       // sequences per optimizer step
    double learning_rate = 1e-3;
    float mask_prob = 0.15f;  // fraction of tokens selected for prediction
    uint64_t seed = 42;
    bool verbose = false;
  };

  MlmPretrainer(BertModel* model, MlmHead* head, Options options);

  /// Runs MLM training over `corpus`; returns the mean loss of the final
  /// epoch.
  double Train(const std::vector<std::vector<int>>& corpus);

  /// Applies BERT's 80/10/10 corruption to `ids` in place and returns the
  /// MLM labels (-1 for unselected positions). Exposed for testing.
  std::vector<int> MaskSequence(std::vector<int>* ids, util::Rng* rng) const;

  /// Log-probability of `original_id` at position `pos` when that position
  /// is replaced by [MASK] (the probing primitive). Runs in eval mode.
  double MaskedLogProb(const std::vector<int>& ids, size_t pos,
                       int original_id);

 private:
  BertModel* model_;
  MlmHead* head_;
  Options options_;
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_MLM_H_
