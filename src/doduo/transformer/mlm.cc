#include "doduo/transformer/mlm.h"

#include <cmath>

#include "doduo/nn/losses.h"
#include "doduo/nn/ops.h"
#include "doduo/nn/optimizer.h"
#include "doduo/text/vocab.h"
#include "doduo/util/logging.h"

namespace doduo::transformer {

MlmHead::MlmHead(const std::string& name, const TransformerConfig& config,
                 util::Rng* rng)
    : transform_(name + ".transform", config.hidden_dim, config.hidden_dim,
                 rng),
      norm_(name + ".norm", config.hidden_dim),
      decoder_(name + ".decoder", config.hidden_dim, config.vocab_size,
               rng) {}

const nn::Tensor& MlmHead::Forward(const nn::Tensor& hidden) {
  const nn::Tensor& transformed = transform_.Forward(hidden);
  const nn::Tensor& activated = activation_.Forward(transformed);
  const nn::Tensor& normalized = norm_.Forward(activated);
  return decoder_.Forward(normalized);
}

const nn::Tensor& MlmHead::Backward(const nn::Tensor& grad_logits) {
  const nn::Tensor& d_normalized = decoder_.Backward(grad_logits);
  const nn::Tensor& d_activated = norm_.Backward(d_normalized);
  const nn::Tensor& d_transformed = activation_.Backward(d_activated);
  return transform_.Backward(d_transformed);
}

nn::ParameterList MlmHead::Parameters() {
  nn::ParameterList params;
  nn::AppendParameters(transform_.Parameters(), &params);
  nn::AppendParameters(norm_.Parameters(), &params);
  nn::AppendParameters(decoder_.Parameters(), &params);
  return params;
}

MlmPretrainer::MlmPretrainer(BertModel* model, MlmHead* head,
                             Options options)
    : model_(model), head_(head), options_(options) {
  DODUO_CHECK(model != nullptr);
  DODUO_CHECK(head != nullptr);
}

std::vector<int> MlmPretrainer::MaskSequence(std::vector<int>* ids,
                                             util::Rng* rng) const {
  std::vector<int> labels(ids->size(), -1);
  const int vocab_size = model_->config().vocab_size;
  for (size_t i = 0; i < ids->size(); ++i) {
    const int id = (*ids)[i];
    if (text::Vocab::IsSpecial(id)) continue;
    if (!rng->Bernoulli(options_.mask_prob)) continue;
    labels[i] = id;
    const double roll = rng->UniformDouble();
    if (roll < 0.8) {
      (*ids)[i] = text::Vocab::kMaskId;
    } else if (roll < 0.9) {
      (*ids)[i] = static_cast<int>(
          rng->UniformInt(text::Vocab::kNumSpecialTokens, vocab_size - 1));
    }
    // else: keep the original token (but still predict it).
  }
  return labels;
}

double MlmPretrainer::Train(const std::vector<std::vector<int>>& corpus) {
  DODUO_CHECK(!corpus.empty());
  util::Rng rng(options_.seed);
  nn::ParameterList params = model_->Parameters();
  nn::AppendParameters(head_->Parameters(), &params);

  nn::AdamOptions adam_options;
  adam_options.learning_rate = options_.learning_rate;
  nn::Adam adam(params, adam_options);
  const int64_t steps_per_epoch =
      (static_cast<int64_t>(corpus.size()) + options_.batch_size - 1) /
      options_.batch_size;
  nn::LinearDecaySchedule schedule(options_.learning_rate,
                                   steps_per_epoch * options_.epochs);

  model_->set_training(true);
  double epoch_loss = 0.0;
  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    epoch_loss = 0.0;
    int64_t loss_count = 0;
    int in_batch = 0;
    for (size_t idx : order) {
      std::vector<int> ids = corpus[idx];
      if (ids.empty()) continue;
      const std::vector<int> labels = MaskSequence(&ids, &rng);
      bool any_masked = false;
      for (int label : labels) any_masked |= (label >= 0);
      if (!any_masked) continue;

      const nn::Tensor& hidden = model_->Forward(ids);
      const nn::Tensor& logits = head_->Forward(hidden);
      nn::LossResult loss = nn::SoftmaxCrossEntropy(logits, labels);
      epoch_loss += loss.loss;
      ++loss_count;
      // Average the gradient over the batch.
      nn::Scale(&loss.grad_logits,
                1.0f / static_cast<float>(options_.batch_size));
      model_->Backward(head_->Backward(loss.grad_logits));

      if (++in_batch == options_.batch_size) {
        adam.Step(schedule.LearningRate(adam.step_count()));
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.Step(schedule.LearningRate(adam.step_count()));
    if (loss_count > 0) epoch_loss /= static_cast<double>(loss_count);
    if (options_.verbose) {
      DODUO_LOG(Info) << "MLM epoch " << epoch + 1 << "/" << options_.epochs
                      << " loss=" << epoch_loss;
    }
  }
  model_->set_training(false);
  return epoch_loss;
}

double MlmPretrainer::MaskedLogProb(const std::vector<int>& ids, size_t pos,
                                    int original_id) {
  DODUO_CHECK_LT(pos, ids.size());
  model_->set_training(false);
  std::vector<int> masked = ids;
  masked[pos] = text::Vocab::kMaskId;
  const nn::Tensor& hidden = model_->Forward(masked);
  const nn::Tensor& logits = head_->Forward(hidden);
  nn::Tensor log_probs;
  nn::LogSoftmaxRows(logits, &log_probs);
  return log_probs.at(static_cast<int64_t>(pos), original_id);
}

}  // namespace doduo::transformer
