#include "doduo/transformer/bert.h"

#include "doduo/nn/ops.h"

namespace doduo::transformer {

BertModel::BertModel(const std::string& name,
                     const TransformerConfig& config, util::Rng* rng)
    : config_(config),
      token_embedding_(name + ".tok_emb", config.vocab_size,
                       config.hidden_dim, rng),
      position_embedding_(name + ".pos_emb", config.max_positions,
                          config.hidden_dim, rng),
      embedding_norm_(name + ".emb_norm", config.hidden_dim),
      embedding_dropout_(config.dropout, rng),
      encoder_(name + ".encoder", config, rng) {
  config_.Validate();
  // Position ids are always 0..seq-1, so fill the full 0..max_positions-1
  // ramp once; Forward embeds a prefix of it and never writes it again.
  position_ids_.resize(static_cast<size_t>(config.max_positions));
  for (int i = 0; i < config.max_positions; ++i) position_ids_[i] = i;
}

const nn::Tensor& BertModel::Forward(const std::vector<int>& ids,
                                     const AttentionMask* mask) {
  DODUO_CHECK(!ids.empty());
  DODUO_CHECK_LE(static_cast<int>(ids.size()), config_.max_positions)
      << "sequence longer than max_positions";
  const nn::Tensor& tokens = token_embedding_.Forward(ids);
  const nn::Tensor& positions = position_embedding_.Forward(
      position_ids_.data(), static_cast<int64_t>(ids.size()));
  nn::Add(tokens, positions, &embedded_);
  const nn::Tensor& normalized = embedding_norm_.Forward(embedded_);
  const nn::Tensor& dropped = embedding_dropout_.Forward(normalized);
  return encoder_.Forward(dropped, mask);
}

void BertModel::Backward(const nn::Tensor& grad_hidden) {
  const nn::Tensor& d_dropped = encoder_.Backward(grad_hidden);
  const nn::Tensor& d_normalized = embedding_dropout_.Backward(d_dropped);
  const nn::Tensor& d_embedded = embedding_norm_.Backward(d_normalized);
  // The sum node fans the same gradient to both embedding tables.
  token_embedding_.Backward(d_embedded);
  position_embedding_.Backward(d_embedded);
}

nn::ParameterList BertModel::Parameters() {
  nn::ParameterList params;
  nn::AppendParameters(token_embedding_.Parameters(), &params);
  nn::AppendParameters(position_embedding_.Parameters(), &params);
  nn::AppendParameters(embedding_norm_.Parameters(), &params);
  nn::AppendParameters(encoder_.Parameters(), &params);
  return params;
}

void BertModel::set_training(bool training) {
  embedding_dropout_.set_training(training);
  encoder_.set_training(training);
}

}  // namespace doduo::transformer
