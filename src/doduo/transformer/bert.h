#ifndef DODUO_TRANSFORMER_BERT_H_
#define DODUO_TRANSFORMER_BERT_H_

#include <string>
#include <vector>

#include "doduo/nn/dropout.h"
#include "doduo/nn/embedding.h"
#include "doduo/nn/layer_norm.h"
#include "doduo/transformer/encoder.h"

namespace doduo::transformer {

/// BERT-style encoder: token embeddings + learned position embeddings →
/// embedding LayerNorm + dropout → Transformer stack. Produces one
/// contextual embedding per input token.
///
/// This is the shared "pre-trained LM" of the reproduction: it is MLM
/// pre-trained once (transformer/mlm.h) and then fine-tuned by the DODUO
/// trainer and the TURL baseline.
class BertModel {
 public:
  BertModel(const std::string& name, const TransformerConfig& config,
            util::Rng* rng);

  /// ids: token ids (size ≤ config.max_positions) → hidden states
  /// [ids.size(), hidden_dim].
  const nn::Tensor& Forward(const std::vector<int>& ids,
                            const AttentionMask* mask = nullptr);

  /// grad_hidden: [seq, hidden_dim]; propagates into all parameters.
  void Backward(const nn::Tensor& grad_hidden);

  nn::ParameterList Parameters();

  void set_training(bool training);

  /// Selects fused or reference kernels throughout the encoder stack (see
  /// MultiHeadSelfAttention::set_use_fused).
  void set_use_fused(bool fused) { encoder_.set_use_fused(fused); }

  const TransformerConfig& config() const { return config_; }

  /// Context-free ("static") embedding of a token id: its row of the token
  /// embedding table. Plays the role of fastText vectors in the case study.
  const float* StaticEmbedding(int token_id) const {
    return token_embedding_.Row(token_id);
  }

  /// Attention probabilities per head for `layer` from the last Forward.
  const std::vector<nn::Tensor>& attention_probs(int layer) const {
    return encoder_.attention_probs(layer);
  }

  int num_layers() const { return encoder_.num_layers(); }

 private:
  TransformerConfig config_;
  nn::Embedding token_embedding_;
  nn::Embedding position_embedding_;
  nn::LayerNorm embedding_norm_;
  nn::Dropout embedding_dropout_;
  Encoder encoder_;
  nn::Tensor embedded_;
  std::vector<int> position_ids_;  // 0..max_positions-1, filled in the ctor
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_BERT_H_
