#include "doduo/transformer/config.h"

#include "doduo/util/check.h"

namespace doduo::transformer {

void TransformerConfig::Validate() const {
  DODUO_CHECK_GT(vocab_size, 0) << "set vocab_size from the tokenizer";
  DODUO_CHECK_GT(max_positions, 0);
  DODUO_CHECK_GT(hidden_dim, 0);
  DODUO_CHECK_GT(num_layers, 0);
  DODUO_CHECK_GT(num_heads, 0);
  DODUO_CHECK_EQ(hidden_dim % num_heads, 0)
      << "hidden_dim must be divisible by num_heads";
  DODUO_CHECK_GT(ffn_dim, 0);
  DODUO_CHECK(dropout >= 0.0f && dropout < 1.0f);
}

}  // namespace doduo::transformer
