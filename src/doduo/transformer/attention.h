#ifndef DODUO_TRANSFORMER_ATTENTION_H_
#define DODUO_TRANSFORMER_ATTENTION_H_

#include <string>
#include <vector>

#include "doduo/nn/linear.h"
#include "doduo/nn/tensor.h"
#include "doduo/nn/workspace.h"
#include "doduo/transformer/config.h"
#include "doduo/util/rng.h"

namespace doduo::transformer {

/// Additive attention mask: 0 where attention is allowed, a large negative
/// value where it is forbidden. Shape [seq, seq]; element (i, j) applies to
/// query position i attending to key position j.
///
/// DODUO uses full self-attention (no mask); the TURL baseline supplies a
/// visibility matrix here (see baselines/turl.h).
using AttentionMask = nn::Tensor;

/// Value used for masked-out attention logits.
inline constexpr float kAttentionMaskValue = -1e9f;

/// Multi-head scaled-dot-product self-attention with explicit backward.
///
/// Q, K and V come from a single packed projection wqkv [d, 3d] (one GEMM
/// instead of three); per-head work addresses column bands of the packed
/// [seq, 3d] buffer through strided views, and scale+mask+softmax run as one
/// fused kernel. A copy-based reference path (the pre-fusion kernels:
/// ExtractHead/InsertHead plus unfused Scale → AddInPlace → SoftmaxRows) is
/// retained behind set_use_fused(false) for parity tests and benchmarking;
/// both paths produce bit-identical outputs and share the packed weights.
/// Steady-state Forward/Backward on either path performs zero heap
/// allocations: all scratch lives in a per-layer nn::Workspace (DESIGN.md
/// §9). The DODUO_FUSED env var (default 1) sets the initial path.
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention(const std::string& name,
                         const TransformerConfig& config, util::Rng* rng);

  /// x: [seq, d] → [seq, d]. `mask` is nullptr for full attention, or a
  /// [seq, seq] additive mask.
  const nn::Tensor& Forward(const nn::Tensor& x, const AttentionMask* mask);

  /// grad_out: [seq, d] → d(loss)/dx [seq, d]; accumulates projection
  /// gradients. Runs on the same path (fused or reference) as the preceding
  /// Forward.
  const nn::Tensor& Backward(const nn::Tensor& grad_out);

  nn::ParameterList Parameters();

  /// Selects the fused (strided-view) or reference (copy-based) kernels for
  /// subsequent Forward calls.
  void set_use_fused(bool fused) { use_fused_ = fused; }
  bool use_fused() const { return use_fused_; }

  /// Post-softmax attention probabilities of the last Forward, one [seq,
  /// seq] tensor per head (used by the Figure 6 attention analysis).
  const std::vector<nn::Tensor>& attention_probs() const { return probs_; }

 private:
  void ForwardFused(const nn::Tensor& qkv, const AttentionMask* mask,
                    int64_t s);
  void ForwardReference(const nn::Tensor& qkv, const AttentionMask* mask,
                        int64_t s);
  void BackwardFused(const nn::Tensor& grad_context, int64_t s);
  void BackwardReference(const nn::Tensor& grad_context, int64_t s);

  int num_heads_;
  int head_dim_;
  bool use_fused_;
  bool forward_was_fused_ = true;
  nn::Linear wqkv_;  // packed [d, 3d]: Q | K | V column blocks
  nn::Linear wo_;

  // Forward caches. The packed QKV activations live in wqkv_'s output until
  // the next Forward, so only the derived buffers are owned here.
  std::vector<nn::Tensor> probs_;  // per head [seq, seq]
  nn::Tensor context_;             // concatenated head outputs [seq, d]
  const nn::Tensor* qkv_ = nullptr;
  const nn::Tensor* output_ = nullptr;

  // Backward accumulator for the packed d(loss)/d(QKV) [seq, 3d]. The
  // input gradient is summed per column band (dQ·Wqᵀ + dK·Wkᵀ + dV·Wvᵀ) to
  // reproduce the split-projection FP order bit-for-bit.
  nn::Tensor grad_qkv_;
  nn::Tensor grad_input_;

  // Per-layer scratch arena (head extracts on the reference path, softmax
  // gradient buffers on both); see Workspace for the zero-allocation
  // contract.
  nn::Workspace ws_;
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_ATTENTION_H_
