#ifndef DODUO_TRANSFORMER_ATTENTION_H_
#define DODUO_TRANSFORMER_ATTENTION_H_

#include <string>
#include <vector>

#include "doduo/nn/linear.h"
#include "doduo/nn/tensor.h"
#include "doduo/transformer/config.h"
#include "doduo/util/rng.h"

namespace doduo::transformer {

/// Additive attention mask: 0 where attention is allowed, a large negative
/// value where it is forbidden. Shape [seq, seq]; element (i, j) applies to
/// query position i attending to key position j.
///
/// DODUO uses full self-attention (no mask); the TURL baseline supplies a
/// visibility matrix here (see baselines/turl.h).
using AttentionMask = nn::Tensor;

/// Value used for masked-out attention logits.
inline constexpr float kAttentionMaskValue = -1e9f;

/// Multi-head scaled-dot-product self-attention with explicit backward.
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention(const std::string& name,
                         const TransformerConfig& config, util::Rng* rng);

  /// x: [seq, d] → [seq, d]. `mask` is nullptr for full attention, or a
  /// [seq, seq] additive mask.
  const nn::Tensor& Forward(const nn::Tensor& x, const AttentionMask* mask);

  /// grad_out: [seq, d] → d(loss)/dx [seq, d]; accumulates projection
  /// gradients.
  const nn::Tensor& Backward(const nn::Tensor& grad_out);

  nn::ParameterList Parameters();

  /// Post-softmax attention probabilities of the last Forward, one [seq,
  /// seq] tensor per head (used by the Figure 6 attention analysis).
  const std::vector<nn::Tensor>& attention_probs() const { return probs_; }

 private:
  int num_heads_;
  int head_dim_;
  nn::Linear wq_;
  nn::Linear wk_;
  nn::Linear wv_;
  nn::Linear wo_;

  // Forward caches (per head where applicable).
  std::vector<nn::Tensor> q_heads_;
  std::vector<nn::Tensor> k_heads_;
  std::vector<nn::Tensor> v_heads_;
  std::vector<nn::Tensor> probs_;
  nn::Tensor context_;  // concatenated head outputs [seq, d]
  const nn::Tensor* output_ = nullptr;

  // Backward scratch.
  nn::Tensor grad_q_, grad_k_, grad_v_;
  nn::Tensor grad_input_;
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_ATTENTION_H_
