#ifndef DODUO_TRANSFORMER_CONFIG_H_
#define DODUO_TRANSFORMER_CONFIG_H_

#include <cstdint>

namespace doduo::transformer {

/// Hyperparameters of the Transformer encoder. The defaults are the
/// miniature-BERT scale used throughout the reproduction (see DESIGN.md for
/// why BERT Base is substituted): same architecture as BERT, far fewer
/// parameters, sized to fine-tune on a single CPU core.
struct TransformerConfig {
  int vocab_size = 0;        // must be set from the tokenizer's vocab
  int max_positions = 160;   // maximum input sequence length
  int hidden_dim = 64;       // model width d
  int num_layers = 2;        // Transformer blocks
  int num_heads = 4;         // attention heads (hidden_dim % num_heads == 0)
  int ffn_dim = 256;         // feed-forward inner width
  float dropout = 0.1f;

  int head_dim() const { return hidden_dim / num_heads; }

  /// Dies if the configuration is inconsistent.
  void Validate() const;
};

}  // namespace doduo::transformer

#endif  // DODUO_TRANSFORMER_CONFIG_H_
