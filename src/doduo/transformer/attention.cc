#include "doduo/transformer/attention.h"

#include <cmath>

#include "doduo/nn/ops.h"
#include "doduo/util/env.h"

namespace doduo::transformer {

namespace {

// Initial kernel path: fused strided-view kernels unless DODUO_FUSED=0
// (the reference path is the pre-fusion copy-based implementation).
bool DefaultUseFused() {
  static const bool fused = util::GetEnvInt("DODUO_FUSED", 1) != 0;
  return fused;
}

// Copies the columns [col_begin, col_begin + ncols) of src into dst
// [s, ncols] (reference path only; the fused path uses strided views).
void ExtractBand(const nn::Tensor& src, int64_t col_begin, int64_t ncols,
                 nn::Tensor* dst) {
  const int64_t s = src.rows();
  dst->ResizeUninitialized({s, ncols});
  for (int64_t i = 0; i < s; ++i) {
    const float* in = src.row(i) + col_begin;
    float* out = dst->row(i);
    for (int64_t j = 0; j < ncols; ++j) out[j] = in[j];
  }
}

// Writes src [s, ncols] into the columns of dst starting at col_begin.
void InsertBand(const nn::Tensor& src, int64_t col_begin, nn::Tensor* dst) {
  const int64_t s = src.rows();
  const int64_t ncols = src.cols();
  for (int64_t i = 0; i < s; ++i) {
    const float* in = src.row(i);
    float* out = dst->row(i) + col_begin;
    for (int64_t j = 0; j < ncols; ++j) out[j] = in[j];
  }
}

// Builds the packed [d, 3d] QKV projection with weights drawn in the same
// order as the three separate [d, d] projections it replaces: d² Xavier
// draws (fan in = out = d) into the Q column block row-major, then K, then
// V. A fixed seed therefore yields weights — and downstream RNG state —
// bit-identical to the pre-packing implementation.
nn::Linear MakePackedQkvProjection(const std::string& name, int64_t d,
                                   util::Rng* rng) {
  nn::Linear packed(name, d, 3 * d, nullptr);
  const float limit = std::sqrt(6.0f / static_cast<float>(2 * d));
  nn::Tensor& w = packed.weight().value;
  for (int part = 0; part < 3; ++part) {
    const int64_t col0 = static_cast<int64_t>(part) * d;
    for (int64_t i = 0; i < d; ++i) {
      float* row = w.row(i) + col0;
      for (int64_t j = 0; j < d; ++j) {
        row[j] = rng->UniformFloat(-limit, limit);
      }
    }
  }
  return packed;
}

// Workspace slot ids. Forward and backward scratch use disjoint slots so a
// Forward's leftovers never alias a Backward buffer mid-iteration.
enum WsSlot : size_t {
  kScores = 0,    // reference forward [s, s]
  kQHead,         // reference paths [s, hd]
  kKHead,
  kVHead,
  kHeadCtx,       // reference forward [s, hd]
  kGradProbs,     // both backward paths [s, s]
  kGradScores,    // both backward paths [s, s]
  kGradHeadCtx,   // reference backward [s, hd]
  kGradQHead,     // reference backward [s, hd]
  kGradKHead,
  kGradVHead,
  kGradInputPart,  // both backward paths [s, d]
};

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(
    const std::string& name, const TransformerConfig& config, util::Rng* rng)
    : num_heads_(config.num_heads),
      head_dim_(config.head_dim()),
      use_fused_(DefaultUseFused()),
      wqkv_(MakePackedQkvProjection(name + ".wqkv", config.hidden_dim, rng)),
      wo_(name + ".wo", config.hidden_dim, config.hidden_dim, rng) {
  probs_.resize(static_cast<size_t>(num_heads_));
}

const nn::Tensor& MultiHeadSelfAttention::Forward(const nn::Tensor& x,
                                                  const AttentionMask* mask) {
  DODUO_CHECK_EQ(x.ndim(), 2);
  const int64_t s = x.rows();
  if (mask != nullptr) {
    DODUO_CHECK(mask->ndim() == 2 && mask->rows() == s && mask->cols() == s)
        << "attention mask must be [seq, seq]";
  }
  // One GEMM projects Q, K and V: qkv [s, 3d] with head h of Q in columns
  // [h·hd, (h+1)·hd), K offset by d, V by 2d.
  const nn::Tensor& qkv = wqkv_.Forward(x);
  qkv_ = &qkv;
  forward_was_fused_ = use_fused_;
  if (use_fused_) {
    ForwardFused(qkv, mask, s);
  } else {
    ForwardReference(qkv, mask, s);
  }
  output_ = &wo_.Forward(context_);
  return *output_;
}

void MultiHeadSelfAttention::ForwardFused(const nn::Tensor& qkv,
                                          const AttentionMask* mask,
                                          int64_t s) {
  const int64_t d = static_cast<int64_t>(num_heads_) * head_dim_;
  context_.ResizeUninitialized({s, d});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (int h = 0; h < num_heads_; ++h) {
    const size_t hi = static_cast<size_t>(h);
    const int64_t off = static_cast<int64_t>(h) * head_dim_;
    const nn::ConstMatView qh = nn::ColumnsView(qkv, off, head_dim_);
    const nn::ConstMatView kh = nn::ColumnsView(qkv, d + off, head_dim_);
    const nn::ConstMatView vh = nn::ColumnsView(qkv, 2 * d + off, head_dim_);
    // Scores straight into the probs buffer, then scale+mask+softmax as one
    // in-place kernel — no separate score matrix, no extra passes.
    nn::MatMulTransposedBView(qh, kh, &probs_[hi]);
    nn::ScaleMaskSoftmaxRows(probs_[hi], scale, mask, &probs_[hi]);
    nn::MatMulView(nn::FullView(probs_[hi]), vh,
                   nn::MutColumnsView(&context_, off, head_dim_));
  }
}

void MultiHeadSelfAttention::ForwardReference(const nn::Tensor& qkv,
                                              const AttentionMask* mask,
                                              int64_t s) {
  const int64_t d = static_cast<int64_t>(num_heads_) * head_dim_;
  context_.ResizeUninitialized({s, d});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  for (int h = 0; h < num_heads_; ++h) {
    const size_t hi = static_cast<size_t>(h);
    const int64_t off = static_cast<int64_t>(h) * head_dim_;
    nn::Tensor& q_head = ws_.Get(kQHead, {s, head_dim_});
    nn::Tensor& k_head = ws_.Get(kKHead, {s, head_dim_});
    nn::Tensor& v_head = ws_.Get(kVHead, {s, head_dim_});
    ExtractBand(qkv, off, head_dim_, &q_head);
    ExtractBand(qkv, d + off, head_dim_, &k_head);
    ExtractBand(qkv, 2 * d + off, head_dim_, &v_head);

    nn::Tensor& scores = ws_.Get(kScores, {s, s});
    nn::MatMulTransposedB(q_head, k_head, &scores);
    nn::Scale(&scores, scale);
    if (mask != nullptr) nn::AddInPlace(&scores, *mask);
    nn::SoftmaxRows(scores, &probs_[hi]);

    nn::Tensor& head_context = ws_.Get(kHeadCtx, {s, head_dim_});
    nn::MatMul(probs_[hi], v_head, &head_context);
    InsertBand(head_context, off, &context_);
  }
}

const nn::Tensor& MultiHeadSelfAttention::Backward(
    const nn::Tensor& grad_out) {
  DODUO_CHECK(output_ != nullptr && qkv_ != nullptr)
      << "Backward before Forward";
  const nn::Tensor& grad_context = wo_.Backward(grad_out);
  const int64_t s = grad_context.rows();
  const int64_t d = static_cast<int64_t>(num_heads_) * head_dim_;
  grad_qkv_.ResizeUninitialized({s, 3 * d});
  if (forward_was_fused_) {
    BackwardFused(grad_context, s);
  } else {
    BackwardReference(grad_context, s);
  }
  // Packed weight/bias gradients accumulate per element exactly as the
  // split projections' did. The input gradient is summed band by band —
  // (dQ·Wqᵀ + dK·Wkᵀ) + dV·Wvᵀ — instead of one dot over 3d columns, so
  // its FP order (and therefore every training trajectory) matches the
  // split-projection implementation bit-for-bit.
  wqkv_.AccumulateParameterGradients(grad_qkv_);
  const nn::Tensor& w = wqkv_.weight().value;
  nn::MatMulTransposedBView(nn::ColumnsView(grad_qkv_, 0, d),
                            nn::ColumnsView(w, 0, d), &grad_input_);
  nn::Tensor& part = ws_.Get(kGradInputPart, {s, d});
  nn::MatMulTransposedBView(nn::ColumnsView(grad_qkv_, d, d),
                            nn::ColumnsView(w, d, d), &part);
  nn::AddInPlace(&grad_input_, part);
  nn::MatMulTransposedBView(nn::ColumnsView(grad_qkv_, 2 * d, d),
                            nn::ColumnsView(w, 2 * d, d), &part);
  nn::AddInPlace(&grad_input_, part);
  return grad_input_;
}

void MultiHeadSelfAttention::BackwardFused(const nn::Tensor& grad_context,
                                           int64_t s) {
  const int64_t d = static_cast<int64_t>(num_heads_) * head_dim_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const nn::Tensor& qkv = *qkv_;
  for (int h = 0; h < num_heads_; ++h) {
    const size_t hi = static_cast<size_t>(h);
    const int64_t off = static_cast<int64_t>(h) * head_dim_;
    const nn::ConstMatView qh = nn::ColumnsView(qkv, off, head_dim_);
    const nn::ConstMatView kh = nn::ColumnsView(qkv, d + off, head_dim_);
    const nn::ConstMatView vh = nn::ColumnsView(qkv, 2 * d + off, head_dim_);
    const nn::ConstMatView dctx =
        nn::ColumnsView(grad_context, off, head_dim_);
    const nn::MutMatView dqh =
        nn::MutColumnsView(&grad_qkv_, off, head_dim_);
    const nn::MutMatView dkh =
        nn::MutColumnsView(&grad_qkv_, d + off, head_dim_);
    const nn::MutMatView dvh =
        nn::MutColumnsView(&grad_qkv_, 2 * d + off, head_dim_);

    // ctx_h = P · V:  dP = dctx · Vᵀ, dV = Pᵀ · dctx.
    nn::Tensor& grad_probs = ws_.Get(kGradProbs, {s, s});
    nn::MatMulTransposedBView(dctx, vh, &grad_probs);
    nn::MatMulTransposedAView(nn::FullView(probs_[hi]), dctx, dvh);
    // Through softmax, then scores = scale · Q Kᵀ (the additive mask is
    // constant, so it drops out of the gradient).
    nn::Tensor& grad_scores = ws_.Get(kGradScores, {s, s});
    nn::SoftmaxRowsBackward(probs_[hi], grad_probs, &grad_scores);
    nn::Scale(&grad_scores, scale);
    nn::MatMulView(nn::FullView(grad_scores), kh, dqh);
    nn::MatMulTransposedAView(nn::FullView(grad_scores), qh, dkh);
  }
}

void MultiHeadSelfAttention::BackwardReference(const nn::Tensor& grad_context,
                                               int64_t s) {
  const int64_t d = static_cast<int64_t>(num_heads_) * head_dim_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const nn::Tensor& qkv = *qkv_;
  for (int h = 0; h < num_heads_; ++h) {
    const size_t hi = static_cast<size_t>(h);
    const int64_t off = static_cast<int64_t>(h) * head_dim_;
    nn::Tensor& grad_head_ctx = ws_.Get(kGradHeadCtx, {s, head_dim_});
    nn::Tensor& v_head = ws_.Get(kVHead, {s, head_dim_});
    ExtractBand(grad_context, off, head_dim_, &grad_head_ctx);
    ExtractBand(qkv, 2 * d + off, head_dim_, &v_head);
    // ctx_h = P · V:  dP = dctx · Vᵀ, dV = Pᵀ · dctx.
    nn::Tensor& grad_probs = ws_.Get(kGradProbs, {s, s});
    nn::Tensor& grad_vh = ws_.Get(kGradVHead, {s, head_dim_});
    nn::MatMulTransposedB(grad_head_ctx, v_head, &grad_probs);
    nn::MatMulTransposedA(probs_[hi], grad_head_ctx, &grad_vh);
    // Through softmax, then scores = scale · Q Kᵀ (the additive mask is
    // constant, so it drops out of the gradient).
    nn::Tensor& grad_scores = ws_.Get(kGradScores, {s, s});
    nn::SoftmaxRowsBackward(probs_[hi], grad_probs, &grad_scores);
    nn::Scale(&grad_scores, scale);
    nn::Tensor& k_head = ws_.Get(kKHead, {s, head_dim_});
    nn::Tensor& q_head = ws_.Get(kQHead, {s, head_dim_});
    ExtractBand(qkv, d + off, head_dim_, &k_head);
    ExtractBand(qkv, off, head_dim_, &q_head);
    nn::Tensor& grad_qh = ws_.Get(kGradQHead, {s, head_dim_});
    nn::Tensor& grad_kh = ws_.Get(kGradKHead, {s, head_dim_});
    nn::MatMul(grad_scores, k_head, &grad_qh);
    nn::MatMulTransposedA(grad_scores, q_head, &grad_kh);

    InsertBand(grad_qh, off, &grad_qkv_);
    InsertBand(grad_kh, d + off, &grad_qkv_);
    InsertBand(grad_vh, 2 * d + off, &grad_qkv_);
  }
}

nn::ParameterList MultiHeadSelfAttention::Parameters() {
  nn::ParameterList params;
  for (nn::Linear* layer : {&wqkv_, &wo_}) {
    nn::AppendParameters(layer->Parameters(), &params);
  }
  return params;
}

}  // namespace doduo::transformer
