#include "doduo/transformer/attention.h"

#include <cmath>

#include "doduo/nn/ops.h"

namespace doduo::transformer {

namespace {

// Copies the columns [head*hd, (head+1)*hd) of src [s, d] into dst [s, hd].
void ExtractHead(const nn::Tensor& src, int head, int head_dim,
                 nn::Tensor* dst) {
  const int64_t s = src.rows();
  dst->ResizeUninitialized({s, head_dim});
  const int64_t offset = static_cast<int64_t>(head) * head_dim;
  for (int64_t i = 0; i < s; ++i) {
    const float* in = src.row(i) + offset;
    float* out = dst->row(i);
    for (int64_t j = 0; j < head_dim; ++j) out[j] = in[j];
  }
}

// Writes src [s, hd] into the columns of dst [s, d] for the given head.
void InsertHead(const nn::Tensor& src, int head, int head_dim,
                nn::Tensor* dst) {
  const int64_t s = src.rows();
  const int64_t offset = static_cast<int64_t>(head) * head_dim;
  for (int64_t i = 0; i < s; ++i) {
    const float* in = src.row(i);
    float* out = dst->row(i) + offset;
    for (int64_t j = 0; j < head_dim; ++j) out[j] = in[j];
  }
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(
    const std::string& name, const TransformerConfig& config, util::Rng* rng)
    : num_heads_(config.num_heads),
      head_dim_(config.head_dim()),
      wq_(name + ".wq", config.hidden_dim, config.hidden_dim, rng),
      wk_(name + ".wk", config.hidden_dim, config.hidden_dim, rng),
      wv_(name + ".wv", config.hidden_dim, config.hidden_dim, rng),
      wo_(name + ".wo", config.hidden_dim, config.hidden_dim, rng) {
  q_heads_.resize(static_cast<size_t>(num_heads_));
  k_heads_.resize(static_cast<size_t>(num_heads_));
  v_heads_.resize(static_cast<size_t>(num_heads_));
  probs_.resize(static_cast<size_t>(num_heads_));
}

const nn::Tensor& MultiHeadSelfAttention::Forward(const nn::Tensor& x,
                                                  const AttentionMask* mask) {
  DODUO_CHECK_EQ(x.ndim(), 2);
  const int64_t s = x.rows();
  if (mask != nullptr) {
    DODUO_CHECK(mask->ndim() == 2 && mask->rows() == s && mask->cols() == s)
        << "attention mask must be [seq, seq]";
  }
  const nn::Tensor& q = wq_.Forward(x);
  const nn::Tensor& k = wk_.Forward(x);
  const nn::Tensor& v = wv_.Forward(x);

  context_.ResizeUninitialized(
      {s, static_cast<int64_t>(num_heads_) * head_dim_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  nn::Tensor scores;
  nn::Tensor head_context;
  for (int h = 0; h < num_heads_; ++h) {
    const size_t hi = static_cast<size_t>(h);
    ExtractHead(q, h, head_dim_, &q_heads_[hi]);
    ExtractHead(k, h, head_dim_, &k_heads_[hi]);
    ExtractHead(v, h, head_dim_, &v_heads_[hi]);

    nn::MatMulTransposedB(q_heads_[hi], k_heads_[hi], &scores);
    nn::Scale(&scores, scale);
    if (mask != nullptr) nn::AddInPlace(&scores, *mask);
    nn::SoftmaxRows(scores, &probs_[hi]);
    nn::MatMul(probs_[hi], v_heads_[hi], &head_context);
    InsertHead(head_context, h, head_dim_, &context_);
  }
  output_ = &wo_.Forward(context_);
  return *output_;
}

const nn::Tensor& MultiHeadSelfAttention::Backward(
    const nn::Tensor& grad_out) {
  DODUO_CHECK(output_ != nullptr) << "Backward before Forward";
  const nn::Tensor& grad_context = wo_.Backward(grad_out);
  const int64_t s = grad_context.rows();
  const int64_t d = static_cast<int64_t>(num_heads_) * head_dim_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  grad_q_.ResizeUninitialized({s, d});
  grad_k_.ResizeUninitialized({s, d});
  grad_v_.ResizeUninitialized({s, d});

  nn::Tensor grad_head_ctx, grad_probs, grad_scores, grad_qh, grad_kh,
      grad_vh;
  for (int h = 0; h < num_heads_; ++h) {
    const size_t hi = static_cast<size_t>(h);
    ExtractHead(grad_context, h, head_dim_, &grad_head_ctx);
    // ctx_h = P · V:  dP = dctx · Vᵀ, dV = Pᵀ · dctx.
    nn::MatMulTransposedB(grad_head_ctx, v_heads_[hi], &grad_probs);
    nn::MatMulTransposedA(probs_[hi], grad_head_ctx, &grad_vh);
    // Through softmax, then scores = scale · Q Kᵀ (the additive mask is
    // constant, so it drops out of the gradient).
    nn::SoftmaxRowsBackward(probs_[hi], grad_probs, &grad_scores);
    nn::Scale(&grad_scores, scale);
    nn::MatMul(grad_scores, k_heads_[hi], &grad_qh);
    nn::MatMulTransposedA(grad_scores, q_heads_[hi], &grad_kh);

    InsertHead(grad_qh, h, head_dim_, &grad_q_);
    InsertHead(grad_kh, h, head_dim_, &grad_k_);
    InsertHead(grad_vh, h, head_dim_, &grad_v_);
  }

  // x feeds all three projections; sum their input gradients.
  grad_input_ = wq_.Backward(grad_q_);
  nn::AddInPlace(&grad_input_, wk_.Backward(grad_k_));
  nn::AddInPlace(&grad_input_, wv_.Backward(grad_v_));
  return grad_input_;
}

nn::ParameterList MultiHeadSelfAttention::Parameters() {
  nn::ParameterList params;
  for (nn::Linear* layer : {&wq_, &wk_, &wv_, &wo_}) {
    nn::AppendParameters(layer->Parameters(), &params);
  }
  return params;
}

}  // namespace doduo::transformer
