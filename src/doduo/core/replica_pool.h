#ifndef DODUO_CORE_REPLICA_POOL_H_
#define DODUO_CORE_REPLICA_POOL_H_

#include <memory>
#include <vector>

#include "doduo/core/annotator.h"
#include "doduo/core/model.h"
#include "doduo/nn/tensor.h"
#include "doduo/util/mutex.h"
#include "doduo/util/thread_annotations.h"

namespace doduo::core {

/// A pool of inference replicas of one model, built for concurrent serving
/// (DESIGN §12): the forward pass caches per-request state inside
/// DoduoModel, so each concurrently-executing request needs its own model
/// instance — but never its own weight snapshot.
///
/// The split: at construction the pool snapshots the primary's parameters
/// exactly once into one immutable, shared copy
/// (`std::shared_ptr<const std::vector<nn::Tensor>>`), then materializes
/// `num_replicas` models from it. Replica 0 aliases the primary model
/// itself (no copy); replicas 1..n-1 are fresh models that *borrow* the
/// shared snapshot (DoduoModel::AdoptWeights) — no per-replica weight copy
/// exists, and when the primary was itself loaded from an mmap-ed v2
/// checkpoint the snapshot aliases the mapping, so every replica in every
/// worker process reads the same physical pages (DESIGN §14). Any
/// precomputed int8 weight tables ride along by shared_ptr the same way.
/// Every replica carries its own per-request workspace
/// (encoder arenas, forward caches), so replica r is safe to use from one
/// thread at a time, and different replicas are safe to use concurrently.
///
/// Callers that serve long-running traffic (serve::DynamicBatcher) build
/// one pool at startup and reuse it for every batch; the per-call batch
/// path (Annotator::ForEachTable) builds a short-lived pool per call so a
/// freshly-trained primary is always re-snapshotted.
class ReplicaPool {
 public:
  /// Builds `num_replicas` (clamped to >= 1) replicas of `primary`. All
  /// pointers must outlive the pool. `relation_vocab` may be nullptr for
  /// types-only models. The primary's weights must not change while the
  /// pool is in use (replicas 1..n-1 keep the construction-time snapshot;
  /// replica 0 would drift).
  ReplicaPool(DoduoModel* primary, const table::TableSerializer* serializer,
              const table::LabelVocab* type_vocab,
              const table::LabelVocab* relation_vocab, int num_replicas);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  int num_replicas() const { return static_cast<int>(models_.size()); }

  /// Replica r's model: replica 0 is the primary, the rest are pool-owned
  /// copies restored from the shared snapshot. One thread at a time per
  /// replica.
  DoduoModel* model(int r) const;

  /// An annotator bound to replica r. Its batch entry points never fan out
  /// across the compute pool (replica fan-out capped at 1): parallelism
  /// across replicas is the pool owner's job, so a worker thread driving
  /// `annotator(r)->AnnotateTypesBatch(...)` gets the plain sequential
  /// validate -> serialize -> forward -> decode path on its own replica.
  Annotator* annotator(int r) const;

  /// The shared immutable weight snapshot taken at construction.
  const std::shared_ptr<const std::vector<nn::Tensor>>& weights() const {
    return weights_;
  }

  /// RAII enforcement of the one-thread-per-replica contract: holds replica
  /// `r` exclusively for the scope's lifetime and aborts (DODUO_CHECK) if
  /// the replica is already in use — two batcher workers sharing an index,
  /// or a caller fanning one replica out across the compute pool, is a
  /// protocol bug that would silently corrupt per-request forward state.
  /// The guard costs one uncontended mutex acquisition per batch, nothing
  /// per table.
  class ScopedUse {
   public:
    ScopedUse(ReplicaPool* pool, int r);
    ~ScopedUse();

    ScopedUse(const ScopedUse&) = delete;
    ScopedUse& operator=(const ScopedUse&) = delete;

   private:
    ReplicaPool* const pool_;
    const int r_;
  };

 private:
  std::shared_ptr<const std::vector<nn::Tensor>> weights_;
  std::vector<DoduoModel*> models_;  // [0] = primary; rest own_models_
  std::vector<std::unique_ptr<DoduoModel>> owned_models_;
  std::vector<std::unique_ptr<Annotator>> annotators_;

  // Everything above is immutable after construction (replica state lives
  // inside the models, one thread per replica); the in-use ledger is the
  // pool's only mutable shared state.
  mutable util::Mutex mu_{"core.replica_pool"};
  std::vector<bool> in_use_ DODUO_GUARDED_BY(mu_);
};

}  // namespace doduo::core

#endif  // DODUO_CORE_REPLICA_POOL_H_
