#include "doduo/core/model_io.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <utility>

#include "doduo/nn/serialize.h"
#include "doduo/util/metrics.h"
#include "doduo/util/rng.h"

namespace doduo::core {

namespace {

using util::Status;

Status SaveLabels(const std::string& path, const table::LabelVocab& vocab) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  for (int i = 0; i < vocab.size(); ++i) out << vocab.Name(i) << "\n";
  return Status::Ok();
}

util::Result<table::LabelVocab> LoadLabels(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  table::LabelVocab vocab;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) vocab.AddLabel(line);
  }
  return vocab;
}

Status SaveConfig(const std::string& path, const DoduoConfig& config) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << "vocab_size=" << config.encoder.vocab_size << "\n"
      << "max_positions=" << config.encoder.max_positions << "\n"
      << "hidden_dim=" << config.encoder.hidden_dim << "\n"
      << "num_layers=" << config.encoder.num_layers << "\n"
      << "num_heads=" << config.encoder.num_heads << "\n"
      << "ffn_dim=" << config.encoder.ffn_dim << "\n"
      << "num_types=" << config.num_types << "\n"
      << "num_relations=" << config.num_relations << "\n"
      << "multi_label=" << (config.multi_label ? 1 : 0) << "\n"
      << "max_tokens_per_column=" << config.serializer.max_tokens_per_column
      << "\n"
      << "max_total_tokens=" << config.serializer.max_total_tokens << "\n"
      << "calibration_temperature="
      // max_digits10 so the fitted temperature round-trips bit-exact
      // through the text config.
      << std::setprecision(std::numeric_limits<double>::max_digits10)
      << config.calibration_temperature << "\n";
  return Status::Ok();
}

util::Result<DoduoConfig> LoadConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  DoduoConfig config;
  config.encoder.dropout = 0.0f;  // inference only
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const long value = std::strtol(line.c_str() + eq + 1, nullptr, 10);
    if (key == "vocab_size") config.encoder.vocab_size = value;
    else if (key == "max_positions") config.encoder.max_positions = value;
    else if (key == "hidden_dim") config.encoder.hidden_dim = value;
    else if (key == "num_layers") config.encoder.num_layers = value;
    else if (key == "num_heads") config.encoder.num_heads = value;
    else if (key == "ffn_dim") config.encoder.ffn_dim = value;
    else if (key == "num_types") config.num_types = value;
    else if (key == "num_relations") config.num_relations = value;
    else if (key == "multi_label") config.multi_label = value != 0;
    else if (key == "max_tokens_per_column")
      config.serializer.max_tokens_per_column = value;
    else if (key == "max_total_tokens")
      config.serializer.max_total_tokens = value;
    else if (key == "calibration_temperature") {
      // The one non-integer config entry; strtol would floor it to 1.
      const double temperature = std::strtod(line.c_str() + eq + 1, nullptr);
      if (temperature > 0.0) config.calibration_temperature = temperature;
    }
  }
  if (config.num_relations == 0) {
    config.tasks = TaskSet::kTypesOnly;
  }
  return config;
}

}  // namespace

util::Result<std::unique_ptr<LoadedModel>> LoadModelDir(
    const std::string& dir) {
  auto loaded = std::make_unique<LoadedModel>();
  auto config = LoadConfig(dir + "/config.txt");
  if (!config.ok()) return config.status();
  loaded->config = config.value();

  auto vocab = text::Vocab::Load(dir + "/vocab.txt");
  if (!vocab.ok()) return vocab.status();
  loaded->vocab = std::move(vocab).value();

  auto types = LoadLabels(dir + "/types.txt");
  if (!types.ok()) return types.status();
  loaded->types = std::move(types).value();
  if (loaded->config.num_relations > 0) {
    auto relations = LoadLabels(dir + "/relations.txt");
    if (!relations.ok()) return relations.status();
    loaded->relations = std::move(relations).value();
  }

  util::Rng rng(1);
  loaded->model = std::make_unique<DoduoModel>(loaded->config, &rng);
  static util::Histogram* const checkpoint_us =
      util::GetHistogram("load.checkpoint_us");
  Status status;
  {
    util::ScopedTimer timer(checkpoint_us, "load.checkpoint_us");
    status =
        nn::LoadParameters(dir + "/model.ckpt", loaded->model->Parameters());
  }
  if (!status.ok()) return status;
  loaded->model->set_training(false);
  loaded->tokenizer =
      std::make_unique<text::WordPieceTokenizer>(&loaded->vocab);
  loaded->serializer = std::make_unique<table::TableSerializer>(
      loaded->tokenizer.get(), loaded->config.serializer);
  return loaded;
}

util::Status SaveModelDir(const std::string& dir, DoduoModel* model,
                          const text::Vocab& vocab,
                          const table::LabelVocab& types,
                          const table::LabelVocab& relations,
                          const SaveModelOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  if (options.checkpoint_version != 1 && options.checkpoint_version != 2) {
    return Status::InvalidArgument("unsupported checkpoint_version " +
                                   std::to_string(options.checkpoint_version));
  }
  if (options.quant_int8 && options.checkpoint_version != 2) {
    return Status::InvalidArgument("int8 storage requires checkpoint v2");
  }
  const std::string ckpt = dir + "/model.ckpt";
  Status ckpt_status;
  if (options.checkpoint_version == 2) {
    ckpt_status = nn::SaveParametersV2(ckpt, model->Parameters(),
                                       {.quant_int8 = options.quant_int8});
  } else {
    ckpt_status = nn::SaveParameters(ckpt, model->Parameters());
  }
  for (const Status& status :
       {ckpt_status, vocab.Save(dir + "/vocab.txt"),
        SaveLabels(dir + "/types.txt", types),
        SaveLabels(dir + "/relations.txt", relations),
        SaveConfig(dir + "/config.txt", model->config())}) {
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace doduo::core
