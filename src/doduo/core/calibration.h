#ifndef DODUO_CORE_CALIBRATION_H_
#define DODUO_CORE_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/table/dataset.h"
#include "doduo/table/serializer.h"

namespace doduo::core {

/// One calibration observation for the type task: the raw logits of a
/// column and its gold label set (one entry for single-label models).
struct CalibrationExample {
  std::vector<float> logits;
  std::vector<int> labels;
};

/// Fits the temperature-scaling parameter T by minimizing validation NLL
/// (Guo et al. 2017): softmax cross-entropy for single-label models,
/// per-class binary cross-entropy for multi-label. One scalar, fit after
/// training, so calibrated confidences change while argmax predictions do
/// not. Returns 1.0 (identity) for an empty or label-less input.
double FitTemperature(const std::vector<CalibrationExample>& examples,
                      bool multi_label);

/// Calibrated top-1 confidence of a logit row: max softmax(z/T) for
/// single-label models, sigmoid(max z / T) for multi-label. `temperature`
/// must be > 0.
double CalibratedConfidence(const float* logits, int64_t num_classes,
                            double temperature, bool multi_label);

/// Runs the model forward over `table_indices` (eval mode) and collects
/// one CalibrationExample per labeled column of the type task.
std::vector<CalibrationExample> CollectTypeCalibration(
    DoduoModel* model, const table::TableSerializer* serializer,
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices);

}  // namespace doduo::core

#endif  // DODUO_CORE_CALIBRATION_H_
