#ifndef DODUO_CORE_MODEL_IO_H_
#define DODUO_CORE_MODEL_IO_H_

#include <memory>
#include <string>

#include "doduo/core/annotator.h"
#include "doduo/core/config.h"
#include "doduo/core/model.h"
#include "doduo/table/dataset.h"
#include "doduo/table/serializer.h"
#include "doduo/text/vocab.h"
#include "doduo/text/wordpiece_tokenizer.h"
#include "doduo/util/status.h"

namespace doduo::core {

// Model directory format, shared by doduo_cli (train/annotate/embed) and
// doduo_serve: model.ckpt + vocab.txt + types.txt + relations.txt +
// config.txt (key=value). Relations are optional (types-only models).

/// Everything a loaded model needs, with stable addresses (the tokenizer,
/// model, and serializer point at the sibling members, so LoadedModel is
/// heap-allocated and non-movable once wired up).
struct LoadedModel {
  DoduoConfig config;
  text::Vocab vocab;
  table::LabelVocab types;
  table::LabelVocab relations;
  std::unique_ptr<text::WordPieceTokenizer> tokenizer;
  std::unique_ptr<DoduoModel> model;
  std::unique_ptr<table::TableSerializer> serializer;

  /// The relation vocabulary, or nullptr for a types-only model — the shape
  /// Annotator and ReplicaPool expect.
  const table::LabelVocab* relation_vocab() const {
    return config.num_relations > 0 ? &relations : nullptr;
  }

  /// An annotator over the loaded model. The LoadedModel must outlive it.
  Annotator MakeAnnotator() {
    return Annotator(model.get(), serializer.get(), &types, relation_vocab());
  }
};

/// Loads a saved model directory; the config's dropout is forced to 0
/// (inference only). Fails with a precise Status naming the unreadable or
/// corrupt file. Cold-start cost is recorded in util::metrics: histogram
/// "load.checkpoint_us" (checkpoint wall time) plus counters
/// "load.bytes_mapped" / "load.bytes_copied" — visible in doduo_serve
/// --stats.
[[nodiscard]] util::Result<std::unique_ptr<LoadedModel>> LoadModelDir(
    const std::string& dir);

/// How SaveModelDir writes the checkpoint.
struct SaveModelOptions {
  /// 1 = legacy parse-and-copy stream; 2 = mmap-able aligned format
  /// (DESIGN §14). Default v2.
  int checkpoint_version = 2;
  /// v2 only: store Linear weights as int8 + per-channel scales.
  bool quant_int8 = false;
};

/// Saves `model` and its vocabularies as a model directory (creates `dir`).
[[nodiscard]] util::Status SaveModelDir(const std::string& dir,
                                        DoduoModel* model,
                                        const text::Vocab& vocab,
                                        const table::LabelVocab& types,
                                        const table::LabelVocab& relations,
                                        const SaveModelOptions& options = {});

}  // namespace doduo::core

#endif  // DODUO_CORE_MODEL_IO_H_
