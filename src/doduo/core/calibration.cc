#include "doduo/core/calibration.h"

#include <algorithm>
#include <cmath>

#include "doduo/core/trainer.h"
#include "doduo/util/check.h"

namespace doduo::core {
namespace {

/// Mean NLL of the examples at temperature T. Single-label: softmax
/// cross-entropy against labels[0]. Multi-label: binary cross-entropy of
/// every class against membership in the label set, in the numerically
/// stable max(x,0) - x*y + log1p(exp(-|x|)) form.
double MeanNll(const std::vector<CalibrationExample>& examples,
               bool multi_label, double temperature) {
  double total = 0.0;
  size_t terms = 0;
  for (const CalibrationExample& example : examples) {
    if (example.labels.empty() || example.logits.empty()) continue;
    if (multi_label) {
      for (size_t c = 0; c < example.logits.size(); ++c) {
        const double x = example.logits[c] / temperature;
        const double y =
            std::find(example.labels.begin(), example.labels.end(),
                      static_cast<int>(c)) != example.labels.end()
                ? 1.0
                : 0.0;
        total += std::max(x, 0.0) - x * y + std::log1p(std::exp(-std::abs(x)));
        ++terms;
      }
    } else {
      const int gold = example.labels[0];
      if (gold < 0 || gold >= static_cast<int>(example.logits.size())) {
        continue;
      }
      double max_z = example.logits[0] / temperature;
      for (float z : example.logits) {
        max_z = std::max(max_z, static_cast<double>(z) / temperature);
      }
      double sum_exp = 0.0;
      for (float z : example.logits) {
        sum_exp += std::exp(static_cast<double>(z) / temperature - max_z);
      }
      const double gold_z =
          static_cast<double>(example.logits[static_cast<size_t>(gold)]) /
          temperature;
      total += -(gold_z - max_z - std::log(sum_exp));
      ++terms;
    }
  }
  if (terms == 0) return 0.0;
  return total / static_cast<double>(terms);
}

}  // namespace

double FitTemperature(const std::vector<CalibrationExample>& examples,
                      bool multi_label) {
  bool any = false;
  for (const CalibrationExample& example : examples) {
    if (!example.labels.empty() && !example.logits.empty()) any = true;
  }
  if (!any) return 1.0;

  // Golden-section search over log T: MeanNll is smooth and unimodal in
  // the scaling parameter, and the log domain keeps the bracket symmetric
  // around the identity T=1.
  const double kGolden = 0.6180339887498949;
  double lo = std::log(0.05);
  double hi = std::log(20.0);
  double a = hi - kGolden * (hi - lo);
  double b = lo + kGolden * (hi - lo);
  double fa = MeanNll(examples, multi_label, std::exp(a));
  double fb = MeanNll(examples, multi_label, std::exp(b));
  for (int iter = 0; iter < 60 && hi - lo > 1e-4; ++iter) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - kGolden * (hi - lo);
      fa = MeanNll(examples, multi_label, std::exp(a));
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + kGolden * (hi - lo);
      fb = MeanNll(examples, multi_label, std::exp(b));
    }
  }
  return std::exp(0.5 * (lo + hi));
}

double CalibratedConfidence(const float* logits, int64_t num_classes,
                            double temperature, bool multi_label) {
  DODUO_CHECK_GT(num_classes, 0);
  DODUO_CHECK_GT(temperature, 0.0);
  double max_z = logits[0];
  for (int64_t c = 1; c < num_classes; ++c) {
    max_z = std::max(max_z, static_cast<double>(logits[c]));
  }
  if (multi_label) {
    // Confidence of the strongest class's own binary decision.
    return 1.0 / (1.0 + std::exp(-max_z / temperature));
  }
  double sum_exp = 0.0;
  for (int64_t c = 0; c < num_classes; ++c) {
    sum_exp += std::exp((static_cast<double>(logits[c]) - max_z) /
                        temperature);
  }
  return 1.0 / sum_exp;  // == exp(0) / sum over shifted logits
}

std::vector<CalibrationExample> CollectTypeCalibration(
    DoduoModel* model, const table::TableSerializer* serializer,
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices) {
  model->set_training(false);
  ExampleBuilder builder(serializer, &model->config());
  std::vector<CalibrationExample> out;
  for (const TypeExample& example :
       builder.BuildTypeExamples(dataset, table_indices)) {
    const nn::Tensor& logits = model->ForwardTypes(example.input);
    DODUO_CHECK_EQ(logits.rows(),
                   static_cast<int64_t>(example.labels.size()));
    for (int64_t row = 0; row < logits.rows(); ++row) {
      CalibrationExample ce;
      ce.logits.assign(logits.data() + row * logits.cols(),
                       logits.data() + (row + 1) * logits.cols());
      ce.labels = example.labels[static_cast<size_t>(row)];
      out.push_back(std::move(ce));
    }
  }
  return out;
}

}  // namespace doduo::core
