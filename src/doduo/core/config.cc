#include "doduo/core/config.h"

#include "doduo/util/check.h"

namespace doduo::core {

void DoduoConfig::Validate() const {
  encoder.Validate();
  DODUO_CHECK_GT(num_types, 0) << "set num_types from the dataset";
  if (tasks != TaskSet::kTypesOnly) {
    DODUO_CHECK_GT(num_relations, 0)
        << "relation task enabled but num_relations == 0";
  }
  DODUO_CHECK_GT(epochs, 0);
  DODUO_CHECK_GT(batch_size, 0);
  DODUO_CHECK_GT(learning_rate, 0.0);
  DODUO_CHECK_LE(serializer.max_total_tokens, encoder.max_positions)
      << "serializer may emit sequences longer than the encoder accepts";
}

}  // namespace doduo::core
