#include "doduo/core/replica_pool.h"

#include <algorithm>
#include <utility>

#include "doduo/nn/parameter.h"
#include "doduo/util/check.h"
#include "doduo/util/rng.h"

namespace doduo::core {

ReplicaPool::ReplicaPool(DoduoModel* primary,
                         const table::TableSerializer* serializer,
                         const table::LabelVocab* type_vocab,
                         const table::LabelVocab* relation_vocab,
                         int num_replicas) {
  DODUO_CHECK(primary != nullptr);
  DODUO_CHECK(serializer != nullptr);
  DODUO_CHECK(type_vocab != nullptr);
  num_replicas = std::max(1, num_replicas);
  primary->set_training(false);

  // The one immutable weight copy every replica is built from. Snapshot
  // once, no matter how many replicas follow.
  weights_ = std::make_shared<const std::vector<nn::Tensor>>(
      primary->SnapshotWeights());

  models_.reserve(static_cast<size_t>(num_replicas));
  models_.push_back(primary);
  owned_models_.reserve(static_cast<size_t>(num_replicas - 1));
  const nn::ParameterList primary_params = primary->Parameters();
  for (int r = 1; r < num_replicas; ++r) {
    util::Rng rng(1);  // initializer values are immediately overwritten
    auto replica = std::make_unique<DoduoModel>(primary->config(), &rng);
    // Zero-copy: every replica borrows the shared snapshot instead of
    // materializing its own weight copy, so pool RSS is O(1) in the number
    // of replicas (and, for an mmap-ed v2 checkpoint, shared across
    // processes too — DESIGN §14).
    replica->AdoptWeights(weights_);
    // Carry over any checkpoint-precomputed int8 weights; the tables are
    // immutable and shared_ptr-held, so replicas reference one copy.
    const nn::ParameterList replica_params = replica->Parameters();
    DODUO_CHECK_EQ(replica_params.size(), primary_params.size());
    for (size_t i = 0; i < primary_params.size(); ++i) {
      const nn::Parameter* src = primary_params[i];
      if (src->prequant != nullptr && src->prequant_revision == src->revision) {
        replica_params[i]->AttachPrequant(src->prequant);
      }
    }
    replica->set_mask_builder(primary->mask_builder());
    replica->set_training(false);
    models_.push_back(replica.get());
    owned_models_.push_back(std::move(replica));
  }

  annotators_.reserve(models_.size());
  for (DoduoModel* model : models_) {
    auto annotator = std::make_unique<Annotator>(model, serializer,
                                                 type_vocab, relation_vocab);
    annotator->set_max_batch_replicas(1);
    annotators_.push_back(std::move(annotator));
  }
  in_use_.assign(models_.size(), false);
}

ReplicaPool::ScopedUse::ScopedUse(ReplicaPool* pool, int r)
    : pool_(pool), r_(r) {
  DODUO_CHECK(pool != nullptr);
  DODUO_CHECK(r >= 0 && r < pool->num_replicas());
  util::MutexLock lock(&pool->mu_);
  DODUO_CHECK(!pool->in_use_[static_cast<size_t>(r)])
      << "replica" << r << "is already in use by another thread "
      << "(one thread per replica; see DESIGN §13)";
  pool->in_use_[static_cast<size_t>(r)] = true;
}

ReplicaPool::ScopedUse::~ScopedUse() {
  util::MutexLock lock(&pool_->mu_);
  pool_->in_use_[static_cast<size_t>(r_)] = false;
}

DoduoModel* ReplicaPool::model(int r) const {
  DODUO_CHECK(r >= 0 && r < num_replicas());
  return models_[static_cast<size_t>(r)];
}

Annotator* ReplicaPool::annotator(int r) const {
  DODUO_CHECK(r >= 0 && r < num_replicas());
  return annotators_[static_cast<size_t>(r)].get();
}

}  // namespace doduo::core
