#ifndef DODUO_CORE_MODEL_H_
#define DODUO_CORE_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "doduo/core/config.h"
#include "doduo/nn/activations.h"
#include "doduo/nn/linear.h"
#include "doduo/table/serializer.h"
#include "doduo/transformer/bert.h"

namespace doduo::core {

/// A two-layer classification head: Linear(in → hidden) + tanh +
/// Linear(hidden → out). Used for both the column-type head (in = d) and
/// the column-relation head (in = 2d), per Section 4.3.
class MlpHead {
 public:
  MlpHead(const std::string& name, int64_t in_dim, int64_t hidden_dim,
          int64_t out_dim, util::Rng* rng);

  const nn::Tensor& Forward(const nn::Tensor& x);
  const nn::Tensor& Backward(const nn::Tensor& grad_out);
  nn::ParameterList Parameters();

 private:
  nn::Linear dense_;
  nn::TanhLayer activation_;
  nn::Linear output_;
};

/// Builds an additive attention mask for a serialized table, or an empty
/// tensor for full attention. The TURL baseline plugs its visibility
/// matrix in here; DODUO itself uses full self-attention.
using AttentionMaskBuilder =
    std::function<transformer::AttentionMask(const table::SerializedTable&)>;

/// The DODUO model: a shared Transformer encoder with a column-type head
/// over each column's [CLS] embedding and a column-relation head over
/// concatenated pairs of [CLS] embeddings (Figure 1 of the paper).
class DoduoModel {
 public:
  DoduoModel(const DoduoConfig& config, util::Rng* rng);

  // -- Forward passes -------------------------------------------------------

  /// Encodes a serialized table and returns the per-column type logits
  /// [num_columns, num_types]. Caches state for BackwardTypes.
  const nn::Tensor& ForwardTypes(const table::SerializedTable& input);

  /// Encodes a serialized table and returns relation logits
  /// [pairs.size(), num_relations] for the given (column, column) index
  /// pairs. Caches state for BackwardRelations.
  const nn::Tensor& ForwardRelations(
      const table::SerializedTable& input,
      const std::vector<std::pair<int, int>>& pairs);

  // -- Backward passes ------------------------------------------------------

  /// grad_logits from the type loss; propagates through head and encoder.
  void BackwardTypes(const nn::Tensor& grad_logits);

  /// grad_logits from the relation loss.
  void BackwardRelations(const nn::Tensor& grad_logits);

  // -- Inference helpers ----------------------------------------------------

  /// Contextualized column embeddings [num_columns, hidden] of a serialized
  /// table (the case-study representation). Eval mode only.
  nn::Tensor ColumnEmbeddings(const table::SerializedTable& input);

  /// [CLS]→[CLS] attention of the last encoder layer, averaged over heads:
  /// [num_columns, num_columns]. Call after a forward pass on `input`
  /// (used by the Figure 6 analysis). Eval mode only.
  nn::Tensor ColumnAttention(const table::SerializedTable& input);

  // -- Plumbing -------------------------------------------------------------

  nn::ParameterList Parameters();
  void set_training(bool training) { encoder_.set_training(training); }
  const DoduoConfig& config() const { return config_; }

  /// Installs the temperature fit by core/calibration.h (> 0). Stored on
  /// the config so SaveModelDir persists it with the checkpoint.
  void set_calibration_temperature(double temperature) {
    config_.calibration_temperature = temperature;
  }
  transformer::BertModel* encoder() { return &encoder_; }

  /// Installs a visibility-mask builder (TURL baseline); nullptr restores
  /// full attention.
  void set_mask_builder(AttentionMaskBuilder builder) {
    mask_builder_ = std::move(builder);
  }
  const AttentionMaskBuilder& mask_builder() const { return mask_builder_; }

  /// Snapshots / restores all parameter values (best-checkpoint selection).
  /// Restoring copies the snapshot into owned storage, so the model stays
  /// trainable afterwards.
  std::vector<nn::Tensor> SnapshotWeights();
  void RestoreWeights(const std::vector<nn::Tensor>& snapshot);

  /// Points this model's parameters at `snapshot` without copying any
  /// floats (nn::Tensor::Borrowed): the model becomes an inference-only
  /// replica sharing the snapshot's physical storage — the zero-copy half
  /// of DESIGN §14. The snapshot is pinned by each adopted parameter, so it
  /// may outlive the caller's reference.
  void AdoptWeights(std::shared_ptr<const std::vector<nn::Tensor>> snapshot);

 private:
  const nn::Tensor& Encode(const table::SerializedTable& input);

  DoduoConfig config_;
  transformer::BertModel encoder_;
  MlpHead type_head_;
  std::unique_ptr<MlpHead> relation_head_;  // null when num_relations == 0
  AttentionMaskBuilder mask_builder_;

  // Caches of the last forward.
  std::vector<int64_t> cls_positions_;
  std::vector<std::pair<int, int>> pairs_;
  int64_t sequence_length_ = 0;
  nn::Tensor cls_embeddings_;   // [n, d] gathered rows
  nn::Tensor pair_embeddings_;  // [p, 2d]
  nn::Tensor grad_hidden_;      // scatter buffer [s, d]
};

}  // namespace doduo::core

#endif  // DODUO_CORE_MODEL_H_
