#ifndef DODUO_CORE_TRAINER_H_
#define DODUO_CORE_TRAINER_H_

#include <utility>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/eval/metrics.h"
#include "doduo/nn/optimizer.h"
#include "doduo/table/dataset.h"
#include "doduo/table/serializer.h"

namespace doduo::core {

/// One training/evaluation example for the column-type task: a serialized
/// sequence plus one label set per [CLS] marker.
struct TypeExample {
  table::SerializedTable input;
  std::vector<std::vector<int>> labels;
};

/// One example for the column-relation task: a serialized sequence, the
/// column-index pairs to classify, and one label set per pair.
struct RelationExample {
  table::SerializedTable input;
  std::vector<std::pair<int, int>> pairs;
  std::vector<std::vector<int>> labels;
};

/// Builds task examples from annotated tables according to the input mode:
/// table-wise (whole table per sequence) or single-column (one sequence per
/// column / column pair), matching the paper's DODUO vs DOSOLO_SCol.
class ExampleBuilder {
 public:
  ExampleBuilder(const table::TableSerializer* serializer,
                 const DoduoConfig* config);

  std::vector<TypeExample> BuildTypeExamples(
      const table::ColumnAnnotationDataset& dataset,
      const std::vector<size_t>& table_indices) const;

  std::vector<RelationExample> BuildRelationExamples(
      const table::ColumnAnnotationDataset& dataset,
      const std::vector<size_t>& table_indices) const;

 private:
  const table::TableSerializer* serializer_;
  const DoduoConfig* config_;
};

/// Evaluation output: the raw prediction/label sets plus aggregate scores.
struct EvalResult {
  eval::LabeledSets sets;
  eval::Prf micro;
  eval::Prf macro;
};

/// Per-epoch validation curve of a training run.
struct TrainHistory {
  std::vector<double> valid_type_f1;
  std::vector<double> valid_relation_f1;
  int best_epoch = -1;      // by combined score
  double best_score = 0.0;  // combined (mean of task F1s)
  int best_type_epoch = -1;
  int best_relation_epoch = -1;
};

/// Fine-tunes a DoduoModel with the paper's Algorithm 1: tasks alternate
/// every epoch, each with its own Adam optimizer and linear-decay schedule;
/// the checkpoint with the best validation micro-F1 is kept.
class Trainer {
 public:
  Trainer(DoduoModel* model, const table::TableSerializer* serializer);

  /// Trains and leaves the model at the best-combined-score checkpoint.
  /// Per-task best checkpoints are retained for RestoreBest*Checkpoint
  /// (multi-task training reports each task at its own best epoch).
  TrainHistory Train(const table::ColumnAnnotationDataset& dataset,
                     const table::DatasetSplits& splits);

  /// Restores the checkpoint with the best validation type / relation F1.
  /// No-ops (keeping current weights) when that task was not trained.
  void RestoreBestTypeCheckpoint();
  void RestoreBestRelationCheckpoint();

  /// Predicts and scores column types over the given tables.
  EvalResult EvaluateTypes(const table::ColumnAnnotationDataset& dataset,
                           const std::vector<size_t>& table_indices);

  /// Predicts and scores column relations over the annotated pairs of the
  /// given tables.
  EvalResult EvaluateRelations(const table::ColumnAnnotationDataset& dataset,
                               const std::vector<size_t>& table_indices);

 private:
  /// Multi-label: classes above the sigmoid threshold (or argmax if none);
  /// single-label: argmax.
  std::vector<int> DecodeRow(const nn::Tensor& logits, int64_t row) const;

  double TrainTypeEpoch(std::vector<TypeExample>* examples, util::Rng* rng,
                        nn::Adam* optimizer,
                        const nn::LinearDecaySchedule& schedule);
  double TrainRelationEpoch(std::vector<RelationExample>* examples,
                            util::Rng* rng, nn::Adam* optimizer,
                            const nn::LinearDecaySchedule& schedule);

  DoduoModel* model_;
  const table::TableSerializer* serializer_;
  ExampleBuilder builder_;
  std::vector<nn::Tensor> best_type_weights_;
  std::vector<nn::Tensor> best_relation_weights_;
};

}  // namespace doduo::core

#endif  // DODUO_CORE_TRAINER_H_
