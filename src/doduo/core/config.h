#ifndef DODUO_CORE_CONFIG_H_
#define DODUO_CORE_CONFIG_H_

#include <cstdint>

#include "doduo/table/serializer.h"
#include "doduo/transformer/config.h"

namespace doduo::core {

/// How the model consumes tables (Section 4 / the Table 6–7 ablations).
enum class InputMode {
  kTableWise,     // DODUO: serialize the whole table, one [CLS] per column
  kSingleColumn,  // DOSOLO_SCol: one column (or column pair) per sequence
};

/// Which annotation tasks are trained.
enum class TaskSet {
  kTypesAndRelations,  // multi-task (DODUO)
  kTypesOnly,          // DOSOLO for the type task / VizNet setting
  kRelationsOnly,      // DOSOLO for the relation task
};

/// Full configuration of a DODUO model + trainer.
struct DoduoConfig {
  transformer::TransformerConfig encoder;
  table::SerializerOptions serializer;

  int num_types = 0;      // |C_type| (> 0)
  int num_relations = 0;  // |C_rel| (0 when the dataset has none)
  bool multi_label = true;  // BCE (WikiTable) vs CE (VizNet)

  InputMode input_mode = InputMode::kTableWise;
  TaskSet tasks = TaskSet::kTypesAndRelations;

  // Training hyperparameters. The learning rate is larger than the paper's
  // 5e-5 because the substituted encoder is ~3 orders of magnitude smaller
  // than BERT Base (see DESIGN.md).
  int epochs = 10;
  int batch_size = 8;
  double learning_rate = 5e-4;
  uint64_t seed = 42;
  bool verbose = false;

  /// Multi-label decision threshold on sigmoid scores; if no class
  /// exceeds it, the argmax class is predicted.
  float multi_label_threshold = 0.5f;

  /// Temperature-scaling parameter for calibrated confidences (fit on the
  /// validation split after training; see core/calibration.h). 1.0 means
  /// uncalibrated. Never changes which class is predicted.
  double calibration_temperature = 1.0;

  /// Dies if inconsistent (encoder.vocab_size and num_types must be set,
  /// relation task requires num_relations, ...).
  void Validate() const;
};

}  // namespace doduo::core

#endif  // DODUO_CORE_CONFIG_H_
