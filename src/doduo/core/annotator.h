#ifndef DODUO_CORE_ANNOTATOR_H_
#define DODUO_CORE_ANNOTATOR_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/table/dataset.h"
#include "doduo/table/serializer.h"

namespace doduo::core {

/// The toolbox-style public API (the "few lines of Python" interface the
/// paper releases, in C++): hand it a table, get column types, column
/// relations, or contextualized column embeddings back.
///
///   Annotator annotator(&model, &serializer, &types, &relations);
///   auto types = annotator.AnnotateTypes(my_table);
///   auto embeddings = annotator.ColumnEmbeddings(my_table);
class Annotator {
 public:
  /// All pointers must outlive the annotator. `relation_vocab` may be
  /// nullptr when the model has no relation head.
  Annotator(DoduoModel* model, const table::TableSerializer* serializer,
            const table::LabelVocab* type_vocab,
            const table::LabelVocab* relation_vocab);

  /// Predicted semantic type names per column (one or more per column for
  /// multi-label models).
  std::vector<std::vector<std::string>> AnnotateTypes(
      const table::Table& table) const;

  /// Predicted relation names between the given column pairs.
  std::vector<std::string> AnnotateRelations(
      const table::Table& table,
      const std::vector<std::pair<int, int>>& pairs) const;

  /// Relations between the key column (0) and every other column.
  std::vector<std::string> AnnotateKeyRelations(
      const table::Table& table) const;

  /// Contextualized column embeddings [num_columns, hidden_dim].
  nn::Tensor ColumnEmbeddings(const table::Table& table) const;

  // -- Batched inference ----------------------------------------------------
  //
  // The bulk path: tables are serialized up front, then encoder forward
  // passes for independent tables run concurrently on the global compute
  // pool (util::ComputePool), one model replica per worker. Results are
  // index-aligned with the input and identical to looping the scalar calls
  // (replicas share the same weights and the kernels are bit-deterministic
  // across thread counts). Falls back to a sequential loop when the pool
  // has one thread or fewer than two tables are given.

  /// AnnotateTypes for every table: result[t][column] = type names.
  std::vector<std::vector<std::vector<std::string>>> AnnotateTypesBatch(
      std::span<const table::Table> tables) const;

  /// ColumnEmbeddings for every table: result[t] = [num_columns, hidden].
  std::vector<nn::Tensor> ColumnEmbeddingsBatch(
      std::span<const table::Table> tables) const;

 private:
  /// Serializes `tables` and invokes `fn(model, table_index, serialized)`
  /// once per table, fanning out across model replicas when profitable.
  /// `fn` must only touch per-index output slots.
  void ForEachTable(
      std::span<const table::Table> tables,
      const std::function<void(DoduoModel*, size_t,
                               const table::SerializedTable&)>& fn) const;

  DoduoModel* model_;
  const table::TableSerializer* serializer_;
  const table::LabelVocab* type_vocab_;
  const table::LabelVocab* relation_vocab_;
};

}  // namespace doduo::core

#endif  // DODUO_CORE_ANNOTATOR_H_
