#ifndef DODUO_CORE_ANNOTATOR_H_
#define DODUO_CORE_ANNOTATOR_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/table/dataset.h"
#include "doduo/table/sanitizer.h"
#include "doduo/table/serializer.h"
#include "doduo/util/metrics.h"
#include "doduo/util/status.h"

namespace doduo::core {

/// Per-column result of the robust (dirty-input) annotation path. Exactly
/// one of three shapes:
///  - annotated: labels non-empty, confidence set, skipped_reason empty;
///  - abstained: labels empty, abstained true, confidence set (it was
///    measured, and fell below the threshold);
///  - skipped:   labels empty, skipped_reason a stable token from
///    table::SkipReasonName ("empty_column", "mostly_null", ...).
struct ColumnOutcome {
  std::vector<std::string> labels;
  double confidence = 0.0;  // calibrated top-1 confidence in [0, 1]
  std::string skipped_reason;
  bool abstained = false;

  bool annotated() const { return !labels.empty(); }
};

/// Knobs of the robust annotation path.
struct AnnotateOptions {
  /// Run the table::ColumnSanitizer pass (per-column skip classification +
  /// UTF-8 repair + cell clamping). Off: every column is annotated as-is.
  bool sanitize = true;
  /// Columns whose calibrated confidence falls below this threshold return
  /// an abstained outcome instead of labels (0 = never abstain).
  double abstain_below = 0.0;
  table::SanitizerOptions sanitizer;
};

/// Applies `abstain_below` to an annotated outcome in place: below the
/// threshold the labels are dropped and `abstained` is set. Bumps the
/// "annotate.abstained" counter; idempotent on skipped or already
/// abstained outcomes. doduo_serve uses it to apply per-request thresholds
/// to outcomes computed once per batch.
void ApplyAbstention(ColumnOutcome* outcome, double abstain_below);

/// The toolbox-style public API (the "few lines of Python" interface the
/// paper releases, in C++): hand it a table, get column types, column
/// relations, or contextualized column embeddings back.
///
///   Annotator annotator(&model, &serializer, &types, &relations);
///   auto types = annotator.AnnotateTypes(my_table);
///   if (!types.ok()) { /* surface types.status() */ }
///
/// Error contract (DESIGN §10): every entry point validates its input and
/// returns a non-OK Status — naming the offending table, column index, or
/// pair — instead of aborting the process. Malformed inputs covered:
/// zero-column tables, tables whose column count exceeds the serializer's
/// token budget, out-of-range or duplicate relation pairs, and relation
/// calls on a model built without a relation head. Valid inputs produce
/// exactly the same bytes as before the Status migration.
class Annotator {
 public:
  /// All pointers must outlive the annotator. `relation_vocab` may be
  /// nullptr when the model has no relation head.
  Annotator(DoduoModel* model, const table::TableSerializer* serializer,
            const table::LabelVocab* type_vocab,
            const table::LabelVocab* relation_vocab);

  /// Predicted semantic type names per column (one or more per column for
  /// multi-label models).
  [[nodiscard]] util::Result<std::vector<std::vector<std::string>>>
  AnnotateTypes(
      const table::Table& table) const;

  /// The dirty-input entry point: never fails a whole table. Every column
  /// of `table` gets exactly one ColumnOutcome — a label set with a
  /// calibrated confidence, an abstention, or a machine-readable skip
  /// reason from the sanitizer pass. Tables wider than the serializer's
  /// token budget are annotated in column chunks instead of erroring; a
  /// zero-column table yields an empty vector. On clean input with
  /// default options the labels are byte-identical to AnnotateTypes.
  std::vector<ColumnOutcome> AnnotateTypesRobust(
      const table::Table& table, const AnnotateOptions& options = {}) const;

  /// AnnotateTypesRobust for every table, fanning independent tables
  /// across model replicas like AnnotateTypesBatch. Index-aligned with the
  /// input; never fails.
  std::vector<std::vector<ColumnOutcome>> AnnotateTypesRobustBatch(
      std::span<const table::Table> tables,
      const AnnotateOptions& options = {}) const;

  /// Predicted relation names between the given column pairs. Pairs must be
  /// in-range column indices and free of duplicates; an empty pair list
  /// yields an empty result.
  [[nodiscard]] util::Result<std::vector<std::string>> AnnotateRelations(
      const table::Table& table,
      const std::vector<std::pair<int, int>>& pairs) const;

  /// Relations between the key column (0) and every other column.
  [[nodiscard]] util::Result<std::vector<std::string>> AnnotateKeyRelations(
      const table::Table& table) const;

  /// Contextualized column embeddings [num_columns, hidden_dim].
  [[nodiscard]] util::Result<nn::Tensor> ColumnEmbeddings(const table::Table& table) const;

  // -- Batched inference ----------------------------------------------------
  //
  // The bulk path: tables are validated and serialized up front, then
  // encoder forward passes for independent tables run concurrently on the
  // global compute pool (util::ComputePool), one model replica per worker.
  // Results are index-aligned with the input and identical to looping the
  // scalar calls (replicas share the same weights and the kernels are
  // bit-deterministic across thread counts). Falls back to a sequential
  // loop when the pool has one thread or fewer than two tables are given.
  // A malformed table fails the whole batch before any forward pass runs;
  // the error message names the failing table index.

  /// AnnotateTypes for every table: result[t][column] = type names.
  [[nodiscard]] util::Result<std::vector<std::vector<std::vector<std::string>>>>
  AnnotateTypesBatch(std::span<const table::Table> tables) const;

  /// ColumnEmbeddings for every table: result[t] = [num_columns, hidden].
  [[nodiscard]] util::Result<std::vector<nn::Tensor>> ColumnEmbeddingsBatch(
      std::span<const table::Table> tables) const;

  /// Caps how many model replicas a batch call may fan out across
  /// (0 = no cap, use the compute pool size; 1 = always sequential).
  /// core::ReplicaPool sets 1 on its per-replica annotators so a serving
  /// worker that already owns a replica never builds nested replicas.
  void set_max_batch_replicas(int cap) { max_batch_replicas_ = cap; }
  int max_batch_replicas() const { return max_batch_replicas_; }

  // -- Observability --------------------------------------------------------

  /// Snapshot of the process-wide pipeline metrics (serialize/forward/head
  /// latencies, table and error counters; see util/metrics.h and
  /// DESIGN §10). Also available as JSON via util::MetricsToJson().
  static util::MetricsSnapshot StatsSnapshot();

 private:
  /// Validates and serializes `tables`, then invokes
  /// `fn(model, table_index, serialized)` once per table, fanning out
  /// across model replicas when profitable. `fn` must only touch per-index
  /// output slots. Fails without calling `fn` if any table is malformed.
  [[nodiscard]] util::Status ForEachTable(
      std::span<const table::Table> tables,
      const std::function<void(DoduoModel*, size_t,
                               const table::SerializedTable&)>& fn) const;

  /// Replica fan-out skeleton shared by ForEachTable and the robust batch:
  /// invokes `fn(model, index)` for every index in [0, count), striding
  /// indices across replicas (sequential when only one replica is
  /// profitable or the caller is already a pool worker).
  void FanOut(size_t count,
              const std::function<void(DoduoModel*, size_t)>& fn) const;

  /// The per-table robust pipeline (sanitize, chunk, forward, decode) run
  /// on one model replica.
  std::vector<ColumnOutcome> RobustOutcomes(
      DoduoModel* model, const table::Table& table,
      const AnnotateOptions& options) const;

  /// Non-OK when any pair index is out of range for `table` or the same
  /// pair appears twice.
  [[nodiscard]] util::Status ValidatePairs(
      const table::Table& table,
      const std::vector<std::pair<int, int>>& pairs) const;

  DoduoModel* model_;
  const table::TableSerializer* serializer_;
  const table::LabelVocab* type_vocab_;
  const table::LabelVocab* relation_vocab_;
  int max_batch_replicas_ = 0;
};

/// True when a batch of `num_tables` cannot occupy all `pool_threads`
/// compute-pool replicas — the batch fan-out clamps to the table count —
/// in which case a util::logging warning naming both numbers is emitted.
/// `doduo_cli annotate --batch` calls this so a user who asked for more
/// threads than they gave tables learns why the extra threads sit idle.
bool WarnIfBatchClampedToTableCount(size_t num_tables, int pool_threads);

}  // namespace doduo::core

#endif  // DODUO_CORE_ANNOTATOR_H_
