#ifndef DODUO_CORE_ANNOTATOR_H_
#define DODUO_CORE_ANNOTATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/table/dataset.h"
#include "doduo/table/serializer.h"

namespace doduo::core {

/// The toolbox-style public API (the "few lines of Python" interface the
/// paper releases, in C++): hand it a table, get column types, column
/// relations, or contextualized column embeddings back.
///
///   Annotator annotator(&model, &serializer, &types, &relations);
///   auto types = annotator.AnnotateTypes(my_table);
///   auto embeddings = annotator.ColumnEmbeddings(my_table);
class Annotator {
 public:
  /// All pointers must outlive the annotator. `relation_vocab` may be
  /// nullptr when the model has no relation head.
  Annotator(DoduoModel* model, const table::TableSerializer* serializer,
            const table::LabelVocab* type_vocab,
            const table::LabelVocab* relation_vocab);

  /// Predicted semantic type names per column (one or more per column for
  /// multi-label models).
  std::vector<std::vector<std::string>> AnnotateTypes(
      const table::Table& table) const;

  /// Predicted relation names between the given column pairs.
  std::vector<std::string> AnnotateRelations(
      const table::Table& table,
      const std::vector<std::pair<int, int>>& pairs) const;

  /// Relations between the key column (0) and every other column.
  std::vector<std::string> AnnotateKeyRelations(
      const table::Table& table) const;

  /// Contextualized column embeddings [num_columns, hidden_dim].
  nn::Tensor ColumnEmbeddings(const table::Table& table) const;

 private:
  DoduoModel* model_;
  const table::TableSerializer* serializer_;
  const table::LabelVocab* type_vocab_;
  const table::LabelVocab* relation_vocab_;
};

}  // namespace doduo::core

#endif  // DODUO_CORE_ANNOTATOR_H_
