#ifndef DODUO_CORE_ANNOTATOR_H_
#define DODUO_CORE_ANNOTATOR_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "doduo/core/model.h"
#include "doduo/table/dataset.h"
#include "doduo/table/serializer.h"
#include "doduo/util/metrics.h"
#include "doduo/util/status.h"

namespace doduo::core {

/// The toolbox-style public API (the "few lines of Python" interface the
/// paper releases, in C++): hand it a table, get column types, column
/// relations, or contextualized column embeddings back.
///
///   Annotator annotator(&model, &serializer, &types, &relations);
///   auto types = annotator.AnnotateTypes(my_table);
///   if (!types.ok()) { /* surface types.status() */ }
///
/// Error contract (DESIGN §10): every entry point validates its input and
/// returns a non-OK Status — naming the offending table, column index, or
/// pair — instead of aborting the process. Malformed inputs covered:
/// zero-column tables, tables whose column count exceeds the serializer's
/// token budget, out-of-range or duplicate relation pairs, and relation
/// calls on a model built without a relation head. Valid inputs produce
/// exactly the same bytes as before the Status migration.
class Annotator {
 public:
  /// All pointers must outlive the annotator. `relation_vocab` may be
  /// nullptr when the model has no relation head.
  Annotator(DoduoModel* model, const table::TableSerializer* serializer,
            const table::LabelVocab* type_vocab,
            const table::LabelVocab* relation_vocab);

  /// Predicted semantic type names per column (one or more per column for
  /// multi-label models).
  [[nodiscard]] util::Result<std::vector<std::vector<std::string>>>
  AnnotateTypes(
      const table::Table& table) const;

  /// Predicted relation names between the given column pairs. Pairs must be
  /// in-range column indices and free of duplicates; an empty pair list
  /// yields an empty result.
  [[nodiscard]] util::Result<std::vector<std::string>> AnnotateRelations(
      const table::Table& table,
      const std::vector<std::pair<int, int>>& pairs) const;

  /// Relations between the key column (0) and every other column.
  [[nodiscard]] util::Result<std::vector<std::string>> AnnotateKeyRelations(
      const table::Table& table) const;

  /// Contextualized column embeddings [num_columns, hidden_dim].
  [[nodiscard]] util::Result<nn::Tensor> ColumnEmbeddings(const table::Table& table) const;

  // -- Batched inference ----------------------------------------------------
  //
  // The bulk path: tables are validated and serialized up front, then
  // encoder forward passes for independent tables run concurrently on the
  // global compute pool (util::ComputePool), one model replica per worker.
  // Results are index-aligned with the input and identical to looping the
  // scalar calls (replicas share the same weights and the kernels are
  // bit-deterministic across thread counts). Falls back to a sequential
  // loop when the pool has one thread or fewer than two tables are given.
  // A malformed table fails the whole batch before any forward pass runs;
  // the error message names the failing table index.

  /// AnnotateTypes for every table: result[t][column] = type names.
  [[nodiscard]] util::Result<std::vector<std::vector<std::vector<std::string>>>>
  AnnotateTypesBatch(std::span<const table::Table> tables) const;

  /// ColumnEmbeddings for every table: result[t] = [num_columns, hidden].
  [[nodiscard]] util::Result<std::vector<nn::Tensor>> ColumnEmbeddingsBatch(
      std::span<const table::Table> tables) const;

  /// Caps how many model replicas a batch call may fan out across
  /// (0 = no cap, use the compute pool size; 1 = always sequential).
  /// core::ReplicaPool sets 1 on its per-replica annotators so a serving
  /// worker that already owns a replica never builds nested replicas.
  void set_max_batch_replicas(int cap) { max_batch_replicas_ = cap; }
  int max_batch_replicas() const { return max_batch_replicas_; }

  // -- Observability --------------------------------------------------------

  /// Snapshot of the process-wide pipeline metrics (serialize/forward/head
  /// latencies, table and error counters; see util/metrics.h and
  /// DESIGN §10). Also available as JSON via util::MetricsToJson().
  static util::MetricsSnapshot StatsSnapshot();

 private:
  /// Validates and serializes `tables`, then invokes
  /// `fn(model, table_index, serialized)` once per table, fanning out
  /// across model replicas when profitable. `fn` must only touch per-index
  /// output slots. Fails without calling `fn` if any table is malformed.
  [[nodiscard]] util::Status ForEachTable(
      std::span<const table::Table> tables,
      const std::function<void(DoduoModel*, size_t,
                               const table::SerializedTable&)>& fn) const;

  /// Non-OK when any pair index is out of range for `table` or the same
  /// pair appears twice.
  [[nodiscard]] util::Status ValidatePairs(
      const table::Table& table,
      const std::vector<std::pair<int, int>>& pairs) const;

  DoduoModel* model_;
  const table::TableSerializer* serializer_;
  const table::LabelVocab* type_vocab_;
  const table::LabelVocab* relation_vocab_;
  int max_batch_replicas_ = 0;
};

/// True when a batch of `num_tables` cannot occupy all `pool_threads`
/// compute-pool replicas — the batch fan-out clamps to the table count —
/// in which case a util::logging warning naming both numbers is emitted.
/// `doduo_cli annotate --batch` calls this so a user who asked for more
/// threads than they gave tables learns why the extra threads sit idle.
bool WarnIfBatchClampedToTableCount(size_t num_tables, int pool_threads);

}  // namespace doduo::core

#endif  // DODUO_CORE_ANNOTATOR_H_
