#include "doduo/core/trainer.h"

#include <algorithm>
#include <cmath>

#include "doduo/nn/losses.h"
#include "doduo/nn/ops.h"
#include "doduo/util/logging.h"

namespace doduo::core {

namespace {

// Multi-hot targets [rows, num_classes] from label sets.
nn::Tensor MultiHot(const std::vector<std::vector<int>>& labels,
                    int num_classes) {
  nn::Tensor targets(
      {static_cast<int64_t>(labels.size()), num_classes});
  for (size_t i = 0; i < labels.size(); ++i) {
    for (int label : labels[i]) {
      DODUO_CHECK(label >= 0 && label < num_classes);
      targets.at(static_cast<int64_t>(i), label) = 1.0f;
    }
  }
  return targets;
}

// Primary (first) label per row for the CE objective.
std::vector<int> PrimaryLabels(const std::vector<std::vector<int>>& labels) {
  std::vector<int> primary;
  primary.reserve(labels.size());
  for (const auto& set : labels) {
    DODUO_CHECK(!set.empty());
    primary.push_back(set[0]);
  }
  return primary;
}

}  // namespace

ExampleBuilder::ExampleBuilder(const table::TableSerializer* serializer,
                               const DoduoConfig* config)
    : serializer_(serializer), config_(config) {
  DODUO_CHECK(serializer != nullptr);
  DODUO_CHECK(config != nullptr);
}

std::vector<TypeExample> ExampleBuilder::BuildTypeExamples(
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices) const {
  std::vector<TypeExample> examples;
  for (size_t index : table_indices) {
    const table::AnnotatedTable& annotated = dataset.tables[index];
    if (config_->input_mode == InputMode::kTableWise) {
      TypeExample example;
      example.input = serializer_->SerializeTable(annotated.table).value();
      example.labels = annotated.column_types;
      examples.push_back(std::move(example));
    } else {
      for (int c = 0; c < annotated.table.num_columns(); ++c) {
        TypeExample example;
        example.input =
            serializer_->SerializeColumn(annotated.table, c).value();
        example.labels = {annotated.column_types[static_cast<size_t>(c)]};
        examples.push_back(std::move(example));
      }
    }
  }
  return examples;
}

std::vector<RelationExample> ExampleBuilder::BuildRelationExamples(
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices) const {
  std::vector<RelationExample> examples;
  for (size_t index : table_indices) {
    const table::AnnotatedTable& annotated = dataset.tables[index];
    if (annotated.relations.empty()) continue;
    if (config_->input_mode == InputMode::kTableWise) {
      RelationExample example;
      example.input = serializer_->SerializeTable(annotated.table).value();
      for (const table::RelationAnnotation& rel : annotated.relations) {
        example.pairs.emplace_back(rel.column_a, rel.column_b);
        example.labels.push_back(rel.labels);
      }
      examples.push_back(std::move(example));
    } else {
      for (const table::RelationAnnotation& rel : annotated.relations) {
        RelationExample example;
        example.input = serializer_
                            ->SerializeColumnPair(annotated.table,
                                                  rel.column_a, rel.column_b)
                            .value();
        example.pairs = {{0, 1}};
        example.labels = {rel.labels};
        examples.push_back(std::move(example));
      }
    }
  }
  return examples;
}

Trainer::Trainer(DoduoModel* model,
                 const table::TableSerializer* serializer)
    : model_(model),
      serializer_(serializer),
      builder_(serializer, &model->config()) {
  DODUO_CHECK(model != nullptr);
}

std::vector<int> Trainer::DecodeRow(const nn::Tensor& logits,
                                    int64_t row) const {
  const int64_t c = logits.cols();
  const float* z = logits.row(row);
  if (!model_->config().multi_label) {
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (z[j] > z[best]) best = j;
    }
    return {static_cast<int>(best)};
  }
  std::vector<int> predicted;
  // sigmoid(z) > threshold  ⇔  z > logit(threshold).
  const float threshold = model_->config().multi_label_threshold;
  const float z_threshold =
      std::log(threshold) - std::log(1.0f - threshold);
  int64_t best = 0;
  for (int64_t j = 0; j < c; ++j) {
    if (z[j] > z_threshold) predicted.push_back(static_cast<int>(j));
    if (z[j] > z[best]) best = j;
  }
  if (predicted.empty()) predicted.push_back(static_cast<int>(best));
  return predicted;
}

double Trainer::TrainTypeEpoch(std::vector<TypeExample>* examples,
                               util::Rng* rng, nn::Adam* optimizer,
                               const nn::LinearDecaySchedule& schedule) {
  const DoduoConfig& config = model_->config();
  std::vector<size_t> order(examples->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  double epoch_loss = 0.0;
  int64_t count = 0;
  int in_batch = 0;
  for (size_t idx : order) {
    const TypeExample& example = (*examples)[idx];
    const nn::Tensor& logits = model_->ForwardTypes(example.input);
    nn::LossResult loss;
    if (config.multi_label) {
      loss = nn::BinaryCrossEntropyWithLogits(
          logits, MultiHot(example.labels, config.num_types), {});
    } else {
      loss = nn::SoftmaxCrossEntropy(logits, PrimaryLabels(example.labels));
    }
    epoch_loss += loss.loss;
    ++count;
    nn::Scale(&loss.grad_logits,
              1.0f / static_cast<float>(config.batch_size));
    model_->BackwardTypes(loss.grad_logits);
    if (++in_batch == config.batch_size) {
      optimizer->Step(schedule.LearningRate(optimizer->step_count()));
      in_batch = 0;
    }
  }
  if (in_batch > 0) {
    optimizer->Step(schedule.LearningRate(optimizer->step_count()));
  }
  return count > 0 ? epoch_loss / static_cast<double>(count) : 0.0;
}

double Trainer::TrainRelationEpoch(std::vector<RelationExample>* examples,
                                   util::Rng* rng, nn::Adam* optimizer,
                                   const nn::LinearDecaySchedule& schedule) {
  const DoduoConfig& config = model_->config();
  std::vector<size_t> order(examples->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  double epoch_loss = 0.0;
  int64_t count = 0;
  int in_batch = 0;
  for (size_t idx : order) {
    const RelationExample& example = (*examples)[idx];
    const nn::Tensor& logits =
        model_->ForwardRelations(example.input, example.pairs);
    nn::LossResult loss;
    if (config.multi_label) {
      loss = nn::BinaryCrossEntropyWithLogits(
          logits, MultiHot(example.labels, config.num_relations), {});
    } else {
      loss = nn::SoftmaxCrossEntropy(logits, PrimaryLabels(example.labels));
    }
    epoch_loss += loss.loss;
    ++count;
    nn::Scale(&loss.grad_logits,
              1.0f / static_cast<float>(config.batch_size));
    model_->BackwardRelations(loss.grad_logits);
    if (++in_batch == config.batch_size) {
      optimizer->Step(schedule.LearningRate(optimizer->step_count()));
      in_batch = 0;
    }
  }
  if (in_batch > 0) {
    optimizer->Step(schedule.LearningRate(optimizer->step_count()));
  }
  return count > 0 ? epoch_loss / static_cast<double>(count) : 0.0;
}

TrainHistory Trainer::Train(const table::ColumnAnnotationDataset& dataset,
                            const table::DatasetSplits& splits) {
  const DoduoConfig& config = model_->config();
  util::Rng rng(config.seed);

  const bool train_types = config.tasks != TaskSet::kRelationsOnly;
  const bool train_relations = config.tasks != TaskSet::kTypesOnly;

  std::vector<TypeExample> type_examples;
  std::vector<RelationExample> relation_examples;
  if (train_types) {
    type_examples = builder_.BuildTypeExamples(dataset, splits.train);
  }
  if (train_relations) {
    relation_examples =
        builder_.BuildRelationExamples(dataset, splits.train);
    DODUO_CHECK(!relation_examples.empty())
        << "relation task enabled but the training split has no relations";
  }

  nn::ParameterList params = model_->Parameters();
  nn::AdamOptions adam_options;
  adam_options.learning_rate = config.learning_rate;

  // One optimizer and schedule per task (Algorithm 1, line 6-10): each task
  // keeps its own Adam moments and decay position.
  const int64_t type_steps =
      train_types
          ? (static_cast<int64_t>(type_examples.size()) + config.batch_size -
             1) / config.batch_size * config.epochs
          : 0;
  const int64_t relation_steps =
      train_relations
          ? (static_cast<int64_t>(relation_examples.size()) +
             config.batch_size - 1) / config.batch_size * config.epochs
          : 0;
  nn::Adam type_optimizer(params, adam_options);
  nn::Adam relation_optimizer(params, adam_options);
  nn::LinearDecaySchedule type_schedule(config.learning_rate,
                                        std::max<int64_t>(1, type_steps));
  nn::LinearDecaySchedule relation_schedule(
      config.learning_rate, std::max<int64_t>(1, relation_steps));

  TrainHistory history;
  std::vector<nn::Tensor> best_weights;
  best_type_weights_.clear();
  best_relation_weights_.clear();
  double best_type_f1 = -1.0;
  double best_relation_f1 = -1.0;

  model_->set_training(true);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double type_loss = 0.0;
    double relation_loss = 0.0;
    if (train_types) {
      type_loss =
          TrainTypeEpoch(&type_examples, &rng, &type_optimizer,
                         type_schedule);
    }
    if (train_relations) {
      relation_loss = TrainRelationEpoch(&relation_examples, &rng,
                                         &relation_optimizer,
                                         relation_schedule);
    }

    // Validation micro-F1 (per task) drives checkpoint selection; each
    // task keeps the checkpoint of its own best epoch.
    model_->set_training(false);
    double score = 0.0;
    int score_terms = 0;
    if (train_types) {
      const EvalResult result = EvaluateTypes(dataset, splits.valid);
      history.valid_type_f1.push_back(result.micro.f1);
      score += result.micro.f1;
      ++score_terms;
      if (result.micro.f1 > best_type_f1) {
        best_type_f1 = result.micro.f1;
        history.best_type_epoch = epoch;
        best_type_weights_ = model_->SnapshotWeights();
      }
    }
    if (train_relations) {
      const EvalResult result = EvaluateRelations(dataset, splits.valid);
      history.valid_relation_f1.push_back(result.micro.f1);
      score += result.micro.f1;
      ++score_terms;
      if (result.micro.f1 > best_relation_f1) {
        best_relation_f1 = result.micro.f1;
        history.best_relation_epoch = epoch;
        best_relation_weights_ = model_->SnapshotWeights();
      }
    }
    model_->set_training(true);
    if (score_terms > 0) score /= score_terms;

    if (score >= history.best_score) {
      history.best_score = score;
      history.best_epoch = epoch;
      best_weights = model_->SnapshotWeights();
    }
    if (config.verbose) {
      DODUO_LOG(Info) << "epoch " << epoch + 1 << "/" << config.epochs
                      << " type_loss=" << type_loss
                      << " rel_loss=" << relation_loss
                      << " valid_score=" << score;
    }
  }
  model_->set_training(false);
  if (!best_weights.empty()) model_->RestoreWeights(best_weights);
  return history;
}

void Trainer::RestoreBestTypeCheckpoint() {
  if (!best_type_weights_.empty()) {
    model_->RestoreWeights(best_type_weights_);
  }
}

void Trainer::RestoreBestRelationCheckpoint() {
  if (!best_relation_weights_.empty()) {
    model_->RestoreWeights(best_relation_weights_);
  }
}

EvalResult Trainer::EvaluateTypes(
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices) {
  model_->set_training(false);
  const std::vector<TypeExample> examples =
      builder_.BuildTypeExamples(dataset, table_indices);
  EvalResult result;
  for (const TypeExample& example : examples) {
    const nn::Tensor& logits = model_->ForwardTypes(example.input);
    DODUO_CHECK_EQ(logits.rows(),
                   static_cast<int64_t>(example.labels.size()));
    for (int64_t row = 0; row < logits.rows(); ++row) {
      result.sets.predicted.push_back(DecodeRow(logits, row));
      result.sets.actual.push_back(
          example.labels[static_cast<size_t>(row)]);
    }
  }
  const auto counts =
      eval::CountPerClass(result.sets, model_->config().num_types);
  result.micro = eval::MicroPrf(counts);
  result.macro = eval::MacroPrf(counts);
  return result;
}

EvalResult Trainer::EvaluateRelations(
    const table::ColumnAnnotationDataset& dataset,
    const std::vector<size_t>& table_indices) {
  model_->set_training(false);
  const std::vector<RelationExample> examples =
      builder_.BuildRelationExamples(dataset, table_indices);
  EvalResult result;
  for (const RelationExample& example : examples) {
    const nn::Tensor& logits =
        model_->ForwardRelations(example.input, example.pairs);
    for (int64_t row = 0; row < logits.rows(); ++row) {
      result.sets.predicted.push_back(DecodeRow(logits, row));
      result.sets.actual.push_back(
          example.labels[static_cast<size_t>(row)]);
    }
  }
  const auto counts =
      eval::CountPerClass(result.sets, model_->config().num_relations);
  result.micro = eval::MicroPrf(counts);
  result.macro = eval::MacroPrf(counts);
  return result;
}

}  // namespace doduo::core
