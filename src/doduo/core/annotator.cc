#include "doduo/core/annotator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "doduo/core/replica_pool.h"
#include "doduo/util/logging.h"
#include "doduo/util/thread_pool.h"

namespace doduo::core {

namespace {

// Pipeline metrics (DESIGN §10). Resolved once per process; the annotate
// hot path only pays relaxed atomic adds.
struct AnnotatorMetrics {
  util::Counter* tables = util::GetCounter("annotator.tables_total");
  util::Counter* columns = util::GetCounter("annotator.columns_total");
  util::Counter* errors = util::GetCounter("annotator.errors_total");
  util::Counter* batches = util::GetCounter("annotator.batches_total");
  util::Histogram* annotate_us =
      util::GetHistogram("annotator.annotate_us");
  util::Histogram* batch_us = util::GetHistogram("annotator.batch_us");
};

AnnotatorMetrics& Metrics() {
  static AnnotatorMetrics metrics;
  return metrics;
}

util::Status CountError(util::Status status) {
  Metrics().errors->Increment();
  return status;
}

// Shared by the scalar and batched type paths so both decode logits
// identically.
std::vector<std::vector<std::string>> DecodeTypeLogits(
    const nn::Tensor& logits, const DoduoConfig& config,
    const table::LabelVocab& type_vocab) {
  std::vector<std::vector<std::string>> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    std::vector<std::string> names;
    if (config.multi_label) {
      const float threshold = config.multi_label_threshold;
      const float z_threshold =
          std::log(threshold) - std::log(1.0f - threshold);
      int64_t best = 0;
      for (int64_t j = 0; j < logits.cols(); ++j) {
        if (z[j] > z_threshold) {
          names.push_back(type_vocab.Name(static_cast<int>(j)));
        }
        if (z[j] > z[best]) best = j;
      }
      if (names.empty()) {
        names.push_back(type_vocab.Name(static_cast<int>(best)));
      }
    } else {
      int64_t best = 0;
      for (int64_t j = 1; j < logits.cols(); ++j) {
        if (z[j] > z[best]) best = j;
      }
      names.push_back(type_vocab.Name(static_cast<int>(best)));
    }
    annotations.push_back(std::move(names));
  }
  return annotations;
}

}  // namespace

Annotator::Annotator(DoduoModel* model,
                     const table::TableSerializer* serializer,
                     const table::LabelVocab* type_vocab,
                     const table::LabelVocab* relation_vocab)
    : model_(model),
      serializer_(serializer),
      type_vocab_(type_vocab),
      relation_vocab_(relation_vocab) {
  DODUO_CHECK(model != nullptr);
  DODUO_CHECK(serializer != nullptr);
  DODUO_CHECK(type_vocab != nullptr);
}

util::Result<std::vector<std::vector<std::string>>> Annotator::AnnotateTypes(
    const table::Table& table) const {
  util::ScopedTimer timer(Metrics().annotate_us, "annotator.annotate_types");
  auto input = serializer_->SerializeTable(table);
  if (!input.ok()) return CountError(input.status());
  model_->set_training(false);
  const nn::Tensor& logits = model_->ForwardTypes(input.value());
  Metrics().tables->Increment();
  Metrics().columns->Increment(
      static_cast<uint64_t>(table.num_columns()));
  return DecodeTypeLogits(logits, model_->config(), *type_vocab_);
}

util::Status Annotator::ValidatePairs(
    const table::Table& table,
    const std::vector<std::pair<int, int>>& pairs) const {
  const int n = table.num_columns();
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto [a, b] = pairs[p];
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return util::Status::InvalidArgument(
          "relation pair " + std::to_string(p) + " = (" + std::to_string(a) +
          ", " + std::to_string(b) + ") is out of range for table '" +
          table.id() + "' with " + std::to_string(n) + " columns");
    }
    // Pair lists are short (at most one per column pair of one table), so
    // the quadratic duplicate scan costs nothing and allocates nothing.
    for (size_t q = 0; q < p; ++q) {
      if (pairs[q] == pairs[p]) {
        return util::Status::InvalidArgument(
            "duplicate relation pair (" + std::to_string(a) + ", " +
            std::to_string(b) + ") at positions " + std::to_string(q) +
            " and " + std::to_string(p) + " for table '" + table.id() + "'");
      }
    }
  }
  return util::Status::Ok();
}

util::Status Annotator::ForEachTable(
    std::span<const table::Table> tables,
    const std::function<void(DoduoModel*, size_t,
                             const table::SerializedTable&)>& fn) const {
  util::ScopedTimer timer(Metrics().batch_us, "annotator.batch");
  model_->set_training(false);

  // Serialization is cheap relative to the encoder and shares the tokenizer,
  // so it happens up front on the calling thread — which also means every
  // table is validated before the first forward pass runs.
  std::vector<table::SerializedTable> serialized;
  serialized.reserve(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    auto input = serializer_->SerializeTable(tables[t]);
    if (!input.ok()) {
      return CountError(util::Status(
          input.status().code(),
          "table " + std::to_string(t) + " of " +
              std::to_string(tables.size()) + ": " +
              input.status().message()));
    }
    serialized.push_back(std::move(input).value());
  }
  Metrics().batches->Increment();
  Metrics().tables->Increment(tables.size());
  for (const table::Table& table : tables) {
    Metrics().columns->Increment(static_cast<uint64_t>(table.num_columns()));
  }

  util::ThreadPool* pool = util::ComputePool();
  size_t replicas_wanted = std::min<size_t>(
      static_cast<size_t>(pool->num_threads()), tables.size());
  if (max_batch_replicas_ > 0) {
    replicas_wanted = std::min<size_t>(
        replicas_wanted, static_cast<size_t>(max_batch_replicas_));
  }
  if (replicas_wanted <= 1 || util::ThreadPool::InWorker()) {
    for (size_t t = 0; t < tables.size(); ++t) {
      fn(model_, t, serialized[t]);
    }
    return util::Status::Ok();
  }

  // The forward pass caches state in the model, so concurrent tables need
  // separate replicas. ReplicaPool snapshots the weights once into an
  // immutable shared copy and materializes the replicas from it; replica 0
  // is the primary model itself (the caller's ParallelFor chunk).
  const ReplicaPool replicas(model_, serializer_, type_vocab_,
                             relation_vocab_,
                             static_cast<int>(replicas_wanted));

  const size_t stride = replicas_wanted;
  pool->ParallelFor(
      0, static_cast<int64_t>(replicas_wanted), /*grain=*/1,
      [&](int64_t replica_begin, int64_t replica_end) {
        for (int64_t r = replica_begin; r < replica_end; ++r) {
          DoduoModel* model = replicas.model(static_cast<int>(r));
          for (size_t t = static_cast<size_t>(r); t < tables.size();
               t += stride) {
            fn(model, t, serialized[t]);
          }
        }
      });
  return util::Status::Ok();
}

bool WarnIfBatchClampedToTableCount(size_t num_tables, int pool_threads) {
  if (num_tables == 0 || pool_threads <= 0 ||
      static_cast<size_t>(pool_threads) <= num_tables) {
    return false;
  }
  DODUO_LOG(Warning) << "batch of " << num_tables << " table(s) cannot use "
                     << pool_threads
                     << " compute threads; batch fan-out is clamped to the "
                        "table count and the extra threads stay idle";
  return true;
}

util::Result<std::vector<std::vector<std::vector<std::string>>>>
Annotator::AnnotateTypesBatch(std::span<const table::Table> tables) const {
  std::vector<std::vector<std::vector<std::string>>> results(tables.size());
  const DoduoConfig& config = model_->config();
  util::Status status = ForEachTable(
      tables, [&](DoduoModel* model, size_t index,
                  const table::SerializedTable& input) {
        results[index] =
            DecodeTypeLogits(model->ForwardTypes(input), config, *type_vocab_);
      });
  if (!status.ok()) return status;
  return results;
}

util::Result<std::vector<nn::Tensor>> Annotator::ColumnEmbeddingsBatch(
    std::span<const table::Table> tables) const {
  std::vector<nn::Tensor> results(tables.size());
  util::Status status = ForEachTable(
      tables, [&](DoduoModel* model, size_t index,
                  const table::SerializedTable& input) {
        results[index] = model->ColumnEmbeddings(input);
      });
  if (!status.ok()) return status;
  return results;
}

util::Result<std::vector<std::string>> Annotator::AnnotateRelations(
    const table::Table& table,
    const std::vector<std::pair<int, int>>& pairs) const {
  util::ScopedTimer timer(Metrics().annotate_us,
                          "annotator.annotate_relations");
  if (relation_vocab_ == nullptr) {
    return CountError(util::Status::FailedPrecondition(
        "model was built without a relation head; AnnotateRelations is "
        "unavailable"));
  }
  auto input = serializer_->SerializeTable(table);
  if (!input.ok()) return CountError(input.status());
  util::Status pair_status = ValidatePairs(table, pairs);
  if (!pair_status.ok()) return CountError(std::move(pair_status));
  if (pairs.empty()) return std::vector<std::string>{};
  model_->set_training(false);
  const nn::Tensor& logits = model_->ForwardRelations(input.value(), pairs);
  Metrics().tables->Increment();
  std::vector<std::string> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (z[j] > z[best]) best = j;
    }
    annotations.push_back(relation_vocab_->Name(static_cast<int>(best)));
  }
  return annotations;
}

util::Result<std::vector<std::string>> Annotator::AnnotateKeyRelations(
    const table::Table& table) const {
  if (table.num_columns() == 0) {
    return CountError(util::Status::InvalidArgument(
        "table '" + table.id() + "' has no columns"));
  }
  std::vector<std::pair<int, int>> pairs;
  for (int c = 1; c < table.num_columns(); ++c) pairs.emplace_back(0, c);
  return AnnotateRelations(table, pairs);
}

util::Result<nn::Tensor> Annotator::ColumnEmbeddings(
    const table::Table& table) const {
  util::ScopedTimer timer(Metrics().annotate_us, "annotator.embed");
  auto input = serializer_->SerializeTable(table);
  if (!input.ok()) return CountError(input.status());
  model_->set_training(false);
  Metrics().tables->Increment();
  Metrics().columns->Increment(static_cast<uint64_t>(table.num_columns()));
  return model_->ColumnEmbeddings(input.value());
}

util::MetricsSnapshot Annotator::StatsSnapshot() {
  return util::SnapshotMetrics();
}

}  // namespace doduo::core
