#include "doduo/core/annotator.h"

#include <cmath>

namespace doduo::core {

Annotator::Annotator(DoduoModel* model,
                     const table::TableSerializer* serializer,
                     const table::LabelVocab* type_vocab,
                     const table::LabelVocab* relation_vocab)
    : model_(model),
      serializer_(serializer),
      type_vocab_(type_vocab),
      relation_vocab_(relation_vocab) {
  DODUO_CHECK(model != nullptr);
  DODUO_CHECK(serializer != nullptr);
  DODUO_CHECK(type_vocab != nullptr);
}

std::vector<std::vector<std::string>> Annotator::AnnotateTypes(
    const table::Table& table) const {
  model_->set_training(false);
  const table::SerializedTable input = serializer_->SerializeTable(table);
  const nn::Tensor& logits = model_->ForwardTypes(input);
  const DoduoConfig& config = model_->config();

  std::vector<std::vector<std::string>> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    std::vector<std::string> names;
    if (config.multi_label) {
      const float threshold = config.multi_label_threshold;
      const float z_threshold =
          std::log(threshold) - std::log(1.0f - threshold);
      int64_t best = 0;
      for (int64_t j = 0; j < logits.cols(); ++j) {
        if (z[j] > z_threshold) {
          names.push_back(type_vocab_->Name(static_cast<int>(j)));
        }
        if (z[j] > z[best]) best = j;
      }
      if (names.empty()) {
        names.push_back(type_vocab_->Name(static_cast<int>(best)));
      }
    } else {
      int64_t best = 0;
      for (int64_t j = 1; j < logits.cols(); ++j) {
        if (z[j] > z[best]) best = j;
      }
      names.push_back(type_vocab_->Name(static_cast<int>(best)));
    }
    annotations.push_back(std::move(names));
  }
  return annotations;
}

std::vector<std::string> Annotator::AnnotateRelations(
    const table::Table& table,
    const std::vector<std::pair<int, int>>& pairs) const {
  DODUO_CHECK(relation_vocab_ != nullptr)
      << "model was built without a relation head";
  model_->set_training(false);
  const table::SerializedTable input = serializer_->SerializeTable(table);
  const nn::Tensor& logits = model_->ForwardRelations(input, pairs);
  std::vector<std::string> annotations;
  annotations.reserve(static_cast<size_t>(logits.rows()));
  for (int64_t row = 0; row < logits.rows(); ++row) {
    const float* z = logits.row(row);
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (z[j] > z[best]) best = j;
    }
    annotations.push_back(relation_vocab_->Name(static_cast<int>(best)));
  }
  return annotations;
}

std::vector<std::string> Annotator::AnnotateKeyRelations(
    const table::Table& table) const {
  std::vector<std::pair<int, int>> pairs;
  for (int c = 1; c < table.num_columns(); ++c) pairs.emplace_back(0, c);
  if (pairs.empty()) return {};
  return AnnotateRelations(table, pairs);
}

nn::Tensor Annotator::ColumnEmbeddings(const table::Table& table) const {
  model_->set_training(false);
  return model_->ColumnEmbeddings(serializer_->SerializeTable(table));
}

}  // namespace doduo::core
